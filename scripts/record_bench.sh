#!/usr/bin/env sh
# Records the per-PR performance trajectory (ROADMAP item): runs the SIMD
# micro bench, the serving-throughput bench, the FFT micro bench (including
# the 2D schedule A/B pair), and the fig15 2D-FFTopt pipeline bench, and
# merges the results into BENCH_PR<N>.json at the repo root, so perf
# regressions show up in review as a diffable artifact.
#
# Usage: scripts/record_bench.sh <pr-number> [build-dir] [extra bench args]
#   scripts/record_bench.sh 2            # writes BENCH_PR2.json from ./build
#   scripts/record_bench.sh 3 build --full
#
# Extra args go to the bench_common harness binaries only; bench_micro_fft
# is google-benchmark (different flag spelling) and always runs its full
# default suite.
set -eu

PR=${1:?usage: record_bench.sh <pr-number> [build-dir] [extra bench args]}
BUILD=${2:-build}
shift
if [ $# -gt 0 ]; then shift; fi

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BIN="$ROOT/$BUILD"
OUT="$ROOT/BENCH_PR$PR.json"
TMP_SIMD=$(mktemp)
TMP_SERVE=$(mktemp)
TMP_FIG15=$(mktemp)
TMP_FFT=$(mktemp)
trap 'rm -f "$TMP_SIMD" "$TMP_SERVE" "$TMP_FIG15" "$TMP_FFT"' EXIT

for exe in bench_micro_simd bench_serve_throughput bench_fig15_2d_fftopt; do
  if [ ! -x "$BIN/$exe" ]; then
    echo "record_bench.sh: $BIN/$exe not built (run the tier-1 cmake build first)" >&2
    exit 1
  fi
done

echo "running bench_micro_simd ..." >&2
"$BIN/bench_micro_simd" --json "$TMP_SIMD" "$@" >/dev/null
echo "running bench_serve_throughput ..." >&2
"$BIN/bench_serve_throughput" --json "$TMP_SERVE" "$@" >/dev/null
echo "running bench_fig15_2d_fftopt ..." >&2
"$BIN/bench_fig15_2d_fftopt" --json "$TMP_FIG15" "$@" >/dev/null

# bench_micro_fft is optional (needs google-benchmark at configure time).
# set -eu above aborts the script (and leaves $OUT unwritten) if it fails.
if [ -x "$BIN/bench_micro_fft" ]; then
  echo "running bench_micro_fft ..." >&2
  "$BIN/bench_micro_fft" --benchmark_format=json >"$TMP_FFT"
else
  echo "record_bench.sh: $BIN/bench_micro_fft not built, skipping" >&2
  printf 'null\n' >"$TMP_FFT"
fi

{
  printf '{\n"pr": %s,\n"bench_micro_simd":\n' "$PR"
  cat "$TMP_SIMD"
  printf ',\n"bench_serve_throughput":\n'
  cat "$TMP_SERVE"
  printf ',\n"bench_fig15_2d_fftopt":\n'
  cat "$TMP_FIG15"
  printf ',\n"bench_micro_fft":\n'
  cat "$TMP_FFT"
  printf '}\n'
} > "$OUT"

echo "wrote $OUT" >&2
