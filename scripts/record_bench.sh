#!/usr/bin/env sh
# Records the per-PR performance trajectory (ROADMAP item): runs the SIMD
# micro bench and the serving-throughput bench with --json and merges the
# results into BENCH_PR<N>.json at the repo root, so perf regressions show
# up in review as a diffable artifact.
#
# Usage: scripts/record_bench.sh <pr-number> [build-dir] [extra bench args]
#   scripts/record_bench.sh 2            # writes BENCH_PR2.json from ./build
#   scripts/record_bench.sh 3 build --full
set -eu

PR=${1:?usage: record_bench.sh <pr-number> [build-dir] [extra bench args]}
BUILD=${2:-build}
shift
if [ $# -gt 0 ]; then shift; fi

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BIN="$ROOT/$BUILD"
OUT="$ROOT/BENCH_PR$PR.json"
TMP_SIMD=$(mktemp)
TMP_SERVE=$(mktemp)
trap 'rm -f "$TMP_SIMD" "$TMP_SERVE"' EXIT

for exe in bench_micro_simd bench_serve_throughput; do
  if [ ! -x "$BIN/$exe" ]; then
    echo "record_bench.sh: $BIN/$exe not built (run the tier-1 cmake build first)" >&2
    exit 1
  fi
done

echo "running bench_micro_simd ..." >&2
"$BIN/bench_micro_simd" --json "$TMP_SIMD" "$@" >/dev/null
echo "running bench_serve_throughput ..." >&2
"$BIN/bench_serve_throughput" --json "$TMP_SERVE" "$@" >/dev/null

{
  printf '{\n"pr": %s,\n"bench_micro_simd":\n' "$PR"
  cat "$TMP_SIMD"
  printf ',\n"bench_serve_throughput":\n'
  cat "$TMP_SERVE"
  printf '}\n'
} > "$OUT"

echo "wrote $OUT" >&2
