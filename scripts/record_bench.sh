#!/usr/bin/env sh
# Records the per-PR performance trajectory (ROADMAP item): runs the SIMD
# micro bench, the serving-throughput bench (whose per-shape rows include
# the loopback-socket axis — the framed wire protocol through
# net::SocketServer priced against in-process serve-8 — and the
# sharded_router axis — a shard::Router fronting two workers priced
# against the direct socket), the FFT micro bench (including
# the 2D schedule A/B pairs), the fig15 2D-FFTopt pipeline bench, and the
# fig14/fig19 TurboFNO benches (whose trailing figures record the
# real-vs-complex RFFT-lane A/B with spectral_path-tagged rows), and merges
# the results into BENCH_PR<N>.json at the repo root, so perf regressions
# show up in review as a diffable artifact.
#
# Usage: scripts/record_bench.sh <pr-number> [build-dir] [extra bench args]
#   scripts/record_bench.sh 2            # writes BENCH_PR2.json from ./build
#   scripts/record_bench.sh 3 build --full
#   scripts/record_bench.sh 4 --full     # build-dir may be omitted
#
# Extra args go to the bench_common harness binaries only; bench_micro_fft
# is google-benchmark (different flag spelling) and always runs its full
# default suite.
#
# Failure contract: any bench exiting non-zero aborts the script with that
# bench's name and exit code, and BENCH_PR<N>.json is written atomically
# (tmp + rename) — a failed or interrupted run never leaves a partial or
# truncated artifact behind.
set -eu

PR=${1:?usage: record_bench.sh <pr-number> [build-dir] [extra bench args]}
shift
BUILD=build
# The build dir is positional but optional: treat a leading "-" as the start
# of the extra bench args instead of silently using "--full" as a directory.
if [ $# -gt 0 ] && [ "${1#-}" = "$1" ]; then
  BUILD=$1
  shift
fi

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BIN="$ROOT/$BUILD"
OUT="$ROOT/BENCH_PR$PR.json"
TMP_SIMD=$(mktemp)
TMP_SERVE=$(mktemp)
TMP_FIG15=$(mktemp)
TMP_FIG14=$(mktemp)
TMP_FIG19=$(mktemp)
TMP_FFT=$(mktemp)
# The merged artifact's temp file must live on the SAME filesystem as $OUT:
# mv is only an atomic rename within one filesystem, and a /tmp tempfile
# would degrade it to copy-then-unlink — killable mid-copy, leaving exactly
# the truncated BENCH_PR<N>.json this script promises never to write.
TMP_OUT=$(mktemp "$ROOT/BENCH_PR$PR.json.XXXXXX")
trap 'rm -f "$TMP_SIMD" "$TMP_SERVE" "$TMP_FIG15" "$TMP_FIG14" "$TMP_FIG19" "$TMP_FFT" "$TMP_OUT"' EXIT

for exe in bench_micro_simd bench_serve_throughput bench_fig15_2d_fftopt \
           bench_fig14_1d_turbofno bench_fig19_2d_turbofno; do
  if [ ! -x "$BIN/$exe" ]; then
    echo "record_bench.sh: $BIN/$exe not built (run the tier-1 cmake build first)" >&2
    exit 1
  fi
done

# Runs one bench, propagating its exit code with a diagnostic instead of
# writing a partial artifact.  $1 = bench name, $2 = json output path; the
# remaining args are the harness flags.
run_bench() {
  rb_name=$1
  rb_json=$2
  shift 2
  echo "running $rb_name ..." >&2
  rb_rc=0
  "$BIN/$rb_name" --json "$rb_json" "$@" >/dev/null || rb_rc=$?
  if [ "$rb_rc" -ne 0 ]; then
    echo "record_bench.sh: $rb_name failed (exit $rb_rc); not writing $OUT" >&2
    exit "$rb_rc"
  fi
  if [ ! -s "$rb_json" ]; then
    echo "record_bench.sh: $rb_name wrote no JSON; not writing $OUT" >&2
    exit 1
  fi
}

run_bench bench_micro_simd "$TMP_SIMD" "$@"
run_bench bench_serve_throughput "$TMP_SERVE" "$@"
run_bench bench_fig15_2d_fftopt "$TMP_FIG15" "$@"
run_bench bench_fig14_1d_turbofno "$TMP_FIG14" "$@"
run_bench bench_fig19_2d_turbofno "$TMP_FIG19" "$@"

# bench_micro_fft is optional (needs google-benchmark at configure time).
if [ -x "$BIN/bench_micro_fft" ]; then
  echo "running bench_micro_fft ..." >&2
  rc=0
  "$BIN/bench_micro_fft" --benchmark_format=json >"$TMP_FFT" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "record_bench.sh: bench_micro_fft failed (exit $rc); not writing $OUT" >&2
    exit "$rc"
  fi
  if [ ! -s "$TMP_FFT" ]; then
    echo "record_bench.sh: bench_micro_fft wrote no JSON; not writing $OUT" >&2
    exit 1
  fi
else
  echo "record_bench.sh: $BIN/bench_micro_fft not built, skipping" >&2
  printf 'null\n' >"$TMP_FFT"
fi

{
  printf '{\n"pr": %s,\n"bench_micro_simd":\n' "$PR"
  cat "$TMP_SIMD"
  printf ',\n"bench_serve_throughput":\n'
  cat "$TMP_SERVE"
  printf ',\n"bench_fig15_2d_fftopt":\n'
  cat "$TMP_FIG15"
  printf ',\n"bench_fig14_1d_turbofno":\n'
  cat "$TMP_FIG14"
  printf ',\n"bench_fig19_2d_turbofno":\n'
  cat "$TMP_FIG19"
  printf ',\n"bench_micro_fft":\n'
  cat "$TMP_FFT"
  printf '}\n'
} > "$TMP_OUT"
mv "$TMP_OUT" "$OUT"

echo "wrote $OUT" >&2
