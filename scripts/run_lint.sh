#!/usr/bin/env sh
# Runs the repo-invariant linter (tools/lint/check_invariants.py) and its
# fixture self-test.  The same entry point serves three callers:
#   - developers:  scripts/run_lint.sh
#   - ctest:       the `lint_invariants` / `lint_selftest` tests (CMake
#                  wires them when a python3 is found)
#   - CI:          the lint step of .github/workflows/ci.yml
#
# Exit status: 0 when every invariant holds and the self-test passes.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
linter="$repo_root/tools/lint/check_invariants.py"

python=${PYTHON:-python3}
if ! command -v "$python" >/dev/null 2>&1; then
  echo "run_lint.sh: no python3 on PATH (set PYTHON=...)" >&2
  exit 2
fi

"$python" "$linter" --self-test
"$python" "$linter" --root "$repo_root"
