// Quickstart: build a 1D Fourier Neural Operator with the fully fused
// TurboFNO backend and run inference on a batch of Burgers-style initial
// conditions.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/api.hpp"

int main() {
  using namespace turbofno;

  // 1. Configure the model: 1 input channel lifted to 64 hidden channels,
  //    4 spectral layers keeping 64 of 256 frequencies, fully fused kernels.
  core::Fno1dConfig cfg;
  cfg.in_channels = 1;
  cfg.hidden = 64;
  cfg.out_channels = 1;
  cfg.n = 256;
  cfg.modes = 64;
  cfg.layers = 4;
  cfg.backend = core::Backend::FullyFused;

  const std::size_t batch = 16;
  core::Fno1d model(cfg);  // capacity is elastic; reserve() ahead of time if desired
  model.reserve(batch);

  // 2. Generate a batch of band-limited initial conditions.
  CTensor u(Shape{batch, cfg.in_channels, cfg.n});
  core::burgers_batch(u.span(), batch, cfg.in_channels, cfg.n, /*seed=*/2024u);

  // 3. Run the operator.
  CTensor v(Shape{batch, cfg.out_channels, cfg.n});
  model.forward(u.span(), v.span());

  // 4. Inspect the result.
  double in_energy = 0.0;
  double out_energy = 0.0;
  for (const auto& x : u.span()) in_energy += norm2(x);
  for (const auto& x : v.span()) out_energy += norm2(x);
  std::printf("TurboFNO quickstart\n");
  std::printf("  model: %zu layers, hidden=%zu, n=%zu, modes=%zu, backend=fully-fused\n",
              cfg.layers, cfg.hidden, cfg.n, cfg.modes);
  std::printf("  batch: %zu signals of %zu points\n", batch, cfg.n);
  std::printf("  input energy  %.4f\n", in_energy);
  std::printf("  output energy %.4f\n", out_energy);
  std::printf("  sample output v[0][0][0..7]:");
  for (std::size_t i = 0; i < 8; ++i) std::printf(" %+.4f", v.at(0, 0, i).re);
  std::printf("\nOK\n");
  return 0;
}
