// Spectral Poisson solver: solves -laplacian(u) = f on a periodic 2D domain
// with the TurboFNO FFT library (real transforms along Y, complex along X),
// then verifies the residual.  Demonstrates that the FFT substrate is a
// complete, reusable library — the FFT -> pointwise multiply -> iFFT motif
// the paper's introduction cites from quantum chemistry and CFD.
//
//   $ ./examples/spectral_poisson
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "core/api.hpp"
#include "fft/fft2d.hpp"
#include "fft/plan.hpp"
#include "fft/real.hpp"

namespace {

using namespace turbofno;

// Forward 2D FFT of a real field stored as c32 with zero imaginary part.
void fft2d(const CTensor& in, CTensor& out, std::size_t nx, std::size_t ny, bool inverse) {
  fft::Plan2dDesc d;
  d.nx = nx;
  d.ny = ny;
  d.dir = inverse ? fft::Direction::Inverse : fft::Direction::Forward;
  fft::FftPlan2d(d).execute(in.span(), out.span(), 1);
}

}  // namespace

int main() {
  const std::size_t nx = 128;
  const std::size_t ny = 128;
  const double L = 2.0 * std::numbers::pi;

  // Manufactured solution u* = sin(3x)cos(5y) + 0.5 sin(x+y):
  // f = -lap(u*) = 34 sin(3x)cos(5y) + sin(x+y).
  CTensor f(Shape{nx, ny});
  CTensor u_exact(Shape{nx, ny});
  for (std::size_t i = 0; i < nx; ++i) {
    const double x = L * static_cast<double>(i) / nx;
    for (std::size_t j = 0; j < ny; ++j) {
      const double y = L * static_cast<double>(j) / ny;
      u_exact.at(i, j) = {static_cast<float>(std::sin(3 * x) * std::cos(5 * y) +
                                             0.5 * std::sin(x + y)),
                          0.0f};
      f.at(i, j) = {static_cast<float>(34.0 * std::sin(3 * x) * std::cos(5 * y) +
                                       std::sin(x + y)),
                    0.0f};
    }
  }

  // Solve in frequency space: u_hat[kx,ky] = f_hat / (kx^2 + ky^2).
  CTensor f_hat(Shape{nx, ny});
  fft2d(f, f_hat, nx, ny, false);
  auto wavenumber = [](std::size_t k, std::size_t n) -> double {
    const auto ik = static_cast<std::ptrdiff_t>(k);
    const auto in = static_cast<std::ptrdiff_t>(n);
    return static_cast<double>(ik <= in / 2 ? ik : ik - in);  // signed frequency
  };
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      const double kx = wavenumber(i, nx);
      const double ky = wavenumber(j, ny);
      const double k2 = kx * kx + ky * ky;
      if (k2 == 0.0) {
        f_hat.at(i, j) = c32{};  // zero-mean gauge
      } else {
        f_hat.at(i, j) *= static_cast<float>(1.0 / k2);
      }
    }
  }
  CTensor u(Shape{nx, ny});
  fft2d(f_hat, u, nx, ny, true);

  const double err = core::rel_l2_error(u.span(), u_exact.span());
  std::printf("Spectral Poisson solve on %zux%zu periodic grid\n", nx, ny);
  std::printf("  relative L2 error vs manufactured solution: %.3e\n", err);

  // And the same pointwise-multiply motif through the real-transform API.
  const std::size_t n1 = 1024;
  std::vector<float> sig(n1);
  for (std::size_t i = 0; i < n1; ++i) {
    sig[i] = std::sin(2.0f * std::numbers::pi_v<float> * 7.0f * static_cast<float>(i) / n1);
  }
  const std::size_t modes = 16;
  fft::RfftPlan rfwd(n1, modes);
  fft::IrfftPlan rinv(n1, modes);
  std::vector<c32> half(modes);
  std::vector<float> smooth(n1);
  rfwd.execute(sig, half, 1);
  rinv.execute(half, smooth, 1);
  double d = 0.0;
  for (std::size_t i = 0; i < n1; ++i) d = std::max(d, std::abs(double(smooth[i]) - sig[i]));
  std::printf("  rfft lowpass round trip (tone inside band): max dev %.3e\n", d);
  std::printf("%s\n", err < 1e-4 && d < 1e-4 ? "OK" : "FAILED");
  return err < 1e-4 && d < 1e-4 ? 0 : 1;
}
