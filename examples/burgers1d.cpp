// Burgers' equation surrogate scenario (the canonical 1D FNO benchmark):
// drives the spectral layer with every backend on the same batch of initial
// conditions and reports wall-clock, traffic, and the A100 model — the
// decision a practitioner makes when picking a backend.
//
//   $ ./examples/burgers1d
#include <cstdio>

#include "core/api.hpp"
#include "gpusim/pipeline_model.hpp"
#include "runtime/env.hpp"
#include "runtime/timer.hpp"

int main() {
  using namespace turbofno;

  // Problem sized like the FNO-1D Burgers benchmark: resolution 1024,
  // 64 hidden channels, 64 retained modes.
  baseline::Spectral1dProblem prob;
  prob.batch = 128;
  prob.hidden = 64;
  prob.out_dim = 64;
  prob.n = 1024;
  prob.modes = 64;

  CTensor u(Shape{prob.batch, prob.hidden, prob.n});
  core::burgers_batch(u.span(), prob.batch, prob.hidden, prob.n, 7u);
  CTensor w(Shape{prob.out_dim, prob.hidden});
  core::init_weights(w.span(), prob.hidden, prob.out_dim, 11u);
  CTensor v(Shape{prob.batch, prob.out_dim, prob.n});

  std::printf("Burgers 1D spectral layer: batch=%zu hidden=%zu n=%zu modes=%zu\n\n", prob.batch,
              prob.hidden, prob.n, prob.modes);
  std::printf("%-22s %10s %14s %12s %10s\n", "backend", "cpu ms", "traffic", "launches",
              "a100 ms");

  const gpusim::GpuSpec spec;
  double base_ms = 0.0;
  for (const auto variant : fused::kAllVariants) {
    auto pipe = fused::make_pipeline1d(variant, prob);
    const double s =
        runtime::time_best_of(3, [&] { pipe->run(u.span(), w.span(), v.span()); });
    const auto total = pipe->counters().total();
    const double model_ms = gpusim::predict(spec, pipe->counters()).total_seconds * 1e3;
    if (variant == fused::Variant::PyTorch) base_ms = s * 1e3;
    std::printf("%-22s %10.3f %14s %12llu %10.4f", std::string(pipe->name()).c_str(), s * 1e3,
                runtime::format_bytes(static_cast<double>(total.bytes_total())).c_str(),
                static_cast<unsigned long long>(total.kernel_launches), model_ms);
    if (variant != fused::Variant::PyTorch) {
      std::printf("   (%.0f%% of PyTorch time)", 100.0 * s * 1e3 / base_ms);
    }
    std::printf("\n");
  }

  // Sanity: the fused result must match the baseline.
  auto base = fused::make_pipeline1d(fused::Variant::PyTorch, prob);
  CTensor vb(Shape{prob.batch, prob.out_dim, prob.n});
  base->run(u.span(), w.span(), vb.span());
  auto fusedp = fused::make_pipeline1d(fused::Variant::FullyFused, prob);
  fusedp->run(u.span(), w.span(), v.span());
  std::printf("\nfused vs baseline relative L2 error: %.2e\nOK\n",
              core::rel_l2_error(v.span(), vb.span()));
  return 0;
}
