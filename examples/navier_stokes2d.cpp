// 2D Navier-Stokes-style scenario (the paper's 2D FNO setting): a stack of
// vorticity fields pushed through a full Fno2d model, then a backend
// comparison of the single spectral layer on the same shapes, showing the
// 2D behaviour the paper reports — gains dominated by the along-X FFT
// stage, fusion adding a smaller increment than in 1D.
//
//   $ ./examples/navier_stokes2d
#include <cstdio>

#include "core/api.hpp"
#include "gpusim/pipeline_model.hpp"
#include "runtime/env.hpp"
#include "runtime/timer.hpp"

int main() {
  using namespace turbofno;

  // Full model inference first.
  core::Fno2dConfig cfg;
  cfg.in_channels = 1;
  cfg.hidden = 32;
  cfg.out_channels = 1;
  cfg.nx = 64;
  cfg.ny = 64;
  cfg.modes_x = 16;
  cfg.modes_y = 16;
  cfg.layers = 4;
  cfg.backend = core::Backend::FullyFused;

  const std::size_t batch = 8;
  core::Fno2d model(cfg);
  model.reserve(batch);
  CTensor u(Shape{batch, cfg.in_channels, cfg.nx, cfg.ny});
  for (std::size_t b = 0; b < batch; ++b) {
    core::vorticity_field(u.span().subspan(b * cfg.nx * cfg.ny, cfg.nx * cfg.ny), cfg.nx,
                          cfg.ny, 100u + static_cast<unsigned>(b));
  }
  CTensor v(Shape{batch, cfg.out_channels, cfg.nx, cfg.ny});
  runtime::Timer t;
  model.forward(u.span(), v.span());
  std::printf("Fno2d forward: batch=%zu %zux%zu, %zu layers, hidden=%zu -> %.2f ms\n\n", batch,
              cfg.nx, cfg.ny, cfg.layers, cfg.hidden, t.seconds() * 1e3);

  // Single spectral layer at the paper's 2D evaluation shape.
  baseline::Spectral2dProblem prob;
  prob.batch = 8;
  prob.hidden = 64;
  prob.out_dim = 64;
  prob.nx = 256;
  prob.ny = 128;
  prob.modes_x = 64;
  prob.modes_y = 64;

  CTensor u2(Shape{prob.batch, prob.hidden, prob.nx, prob.ny});
  core::fill_random(u2.span(), 3u);
  CTensor w(Shape{prob.out_dim, prob.hidden});
  core::init_weights(w.span(), prob.hidden, prob.out_dim, 5u);
  CTensor v2(Shape{prob.batch, prob.out_dim, prob.nx, prob.ny});

  std::printf("2D spectral layer, paper shape (256x128 field, 64x64 modes, BS=%zu, K=%zu):\n",
              prob.batch, prob.hidden);
  std::printf("%-22s %10s %14s %10s\n", "backend", "cpu ms", "traffic", "a100 ms");
  const gpusim::GpuSpec spec;
  for (const auto variant : fused::kAllVariants) {
    auto pipe = fused::make_pipeline2d(variant, prob);
    const double s =
        runtime::time_best_of(3, [&] { pipe->run(u2.span(), w.span(), v2.span()); });
    const auto total = pipe->counters().total();
    std::printf("%-22s %10.3f %14s %10.4f\n", std::string(pipe->name()).c_str(), s * 1e3,
                runtime::format_bytes(static_cast<double>(total.bytes_total())).c_str(),
                gpusim::predict(spec, pipe->counters()).total_seconds * 1e3);
  }
  std::printf("OK\n");
  return 0;
}
