// Darcy-flow pipeline explorer: demonstrates the analysis-facing half of the
// public API — per-stage traffic counters, the GPU cost model, and the
// shared-memory bank simulator — on a Darcy-shaped 2D workload.  This is the
// tool a performance engineer would use to decide whether fusion pays off
// on a new problem shape before writing any kernel.
//
//   $ ./examples/darcy_pipeline_explorer
#include <cstdio>

#include "core/api.hpp"
#include "gpusim/layouts.hpp"
#include "gpusim/pipeline_model.hpp"
#include "runtime/env.hpp"

int main() {
  using namespace turbofno;

  baseline::Spectral2dProblem prob;
  prob.batch = 4;
  prob.hidden = 32;
  prob.out_dim = 32;
  prob.nx = 128;
  prob.ny = 128;
  prob.modes_x = 32;
  prob.modes_y = 32;

  CTensor u(Shape{prob.batch, prob.hidden, prob.nx, prob.ny});
  core::darcy_batch(u.span(), prob.batch, prob.hidden, prob.nx, prob.ny, 77u);
  CTensor w(Shape{prob.out_dim, prob.hidden});
  core::init_weights(w.span(), prob.hidden, prob.out_dim, 13u);
  CTensor v(Shape{prob.batch, prob.out_dim, prob.nx, prob.ny});

  std::printf("Darcy 2D spectral layer: batch=%zu hidden=%zu field=%zux%zu modes=%zux%zu\n\n",
              prob.batch, prob.hidden, prob.nx, prob.ny, prob.modes_x, prob.modes_y);

  const gpusim::GpuSpec spec;
  std::printf("device model: %s (%.0f GB/s, %.1f TFLOP/s fp32, ridge %.1f flop/byte)\n\n",
              spec.name, spec.dram_bytes_per_s / 1e9, spec.fp32_flop_per_s / 1e12,
              gpusim::ridge_point(spec));

  for (const auto variant : {fused::Variant::PyTorch, fused::Variant::FullyFused}) {
    auto pipe = fused::make_pipeline2d(variant, prob);
    pipe->run(u.span(), w.span(), v.span());
    const auto pred = gpusim::predict(spec, pipe->counters());
    std::printf("%s stage breakdown:\n", std::string(pipe->name()).c_str());
    std::printf("  %-22s %12s %12s %12s %9s\n", "stage", "read", "written", "a100 us", "bound");
    for (std::size_t i = 0; i < pipe->counters().stages().size(); ++i) {
      const auto& s = pipe->counters().stages()[i];
      const auto& m = pred.stages[i];
      std::printf("  %-22s %12s %12s %12.2f %9s\n", s.name.c_str(),
                  runtime::format_bytes(static_cast<double>(s.bytes_read)).c_str(),
                  runtime::format_bytes(static_cast<double>(s.bytes_written)).c_str(),
                  m.cost.seconds * 1e6,
                  m.cost.bound == gpusim::Bound::Memory    ? "memory"
                  : m.cost.bound == gpusim::Bound::Compute ? "compute"
                                                           : "launch");
    }
    std::printf("  total predicted: %.2f us\n\n", pred.total_seconds * 1e6);
  }

  // The shared-memory half of the story: why the fused kernel's swizzles
  // matter on real hardware.
  std::printf("shared-memory bank audit (from the Fig 7/8 simulator):\n");
  const auto before = gpusim::replay(gpusim::fig7a_gemm_load_vkfft_layout());
  const auto after = gpusim::replay(gpusim::fig7a_gemm_load_turbofno_layout());
  std::printf("  FFT->GEMM forwarding: %.0f%% -> %.0f%% bank utilization\n",
              100.0 * before.utilization(), 100.0 * after.utilization());
  const auto e_before = gpusim::replay(gpusim::fig8_gemm_epilogue_store(false));
  const auto e_after = gpusim::replay(gpusim::fig8_gemm_epilogue_store(true));
  std::printf("  GEMM->iFFT epilogue:  %.0f%% -> %.0f%% bank utilization\n",
              100.0 * e_before.utilization(), 100.0 * e_after.utilization());
  std::printf("OK\n");
  return 0;
}
