// Serving-layer demo: a long-lived InferenceServer coalescing a mixed
// stream of small 1D and 2D FNO requests into dynamic micro-batches.
//
//   $ ./examples/serve_demo
//
// Two models are registered (a 1D Burgers-style operator and a small 2D
// operator); 96 interleaved requests are submitted — most through futures,
// some through completion callbacks — and the batching statistics plus the
// per-stage latency counters are printed at the end.
#include <atomic>
#include <cstdio>
#include <future>
#include <vector>

#include "core/api.hpp"
#include "core/workload.hpp"

int main() {
  using namespace turbofno;

  serve::InferenceServer::Options opts;
  opts.policy.max_batch = 8;       // coalesce up to 8 requests per forward
  opts.policy.max_delay_s = 1e-3;  // ... or flush after 1 ms, whichever first
  opts.workers = 2;                // the two models can execute concurrently
  serve::InferenceServer server(opts);

  core::Fno1dConfig cfg1;
  cfg1.in_channels = 1;
  cfg1.hidden = 16;
  cfg1.out_channels = 1;
  cfg1.n = 256;
  cfg1.modes = 64;
  cfg1.layers = 2;
  const serve::ModelId burgers = server.load_model(cfg1);

  core::Fno2dConfig cfg2;
  cfg2.in_channels = 1;
  cfg2.hidden = 8;
  cfg2.out_channels = 1;
  cfg2.nx = 32;
  cfg2.ny = 32;
  cfg2.modes_x = 8;
  cfg2.modes_y = 8;
  cfg2.layers = 2;
  const serve::ModelId darcy = server.load_model(cfg2);

  // A mixed request stream: two 1D requests for every 2D request.
  const std::size_t total = 96;
  std::vector<std::future<serve::InferResponse>> futures;
  std::atomic<std::size_t> callback_done{0};
  for (std::size_t i = 0; i < total; ++i) {
    const bool is_2d = (i % 3 == 2);
    const serve::ModelId model = is_2d ? darcy : burgers;
    std::vector<c32> input(server.input_elems(model));
    core::fill_random(input, 0xd5eeu + static_cast<unsigned>(i));
    if (i % 7 == 0) {
      // Callback delivery: runs on an executor thread.
      server.submit(model, std::move(input), [&callback_done](serve::InferResponse&& r) {
        if (r.status == serve::Status::Ok) callback_done.fetch_add(1);
      });
    } else {
      futures.push_back(server.submit(model, std::move(input)));
    }
  }

  server.drain();

  std::size_t ok = 0;
  double max_total_ms = 0.0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.status == serve::Status::Ok) ++ok;
    max_total_ms = std::max(max_total_ms, r.timing.total_s * 1e3);
  }

  const auto st = server.stats();
  std::printf("TurboFNO serve demo\n");
  std::printf("  requests: %zu submitted (%zu futures ok, %zu callbacks ok)\n", total, ok,
              callback_done.load());
  std::printf("  micro-batches: %llu executed, avg size %.2f, max size %zu\n",
              static_cast<unsigned long long>(st.batches), st.avg_micro_batch(),
              st.max_micro_batch);
  std::printf("  worst request latency: %.3f ms\n", max_total_ms);

  std::printf("  per-stage serving counters:\n");
  const auto counters = server.latency_counters();
  for (const auto& s : counters.stages()) {
    std::printf("    %-10s %9.3f ms  %8llu launches  %10llu bytes\n", s.name.c_str(),
                s.seconds * 1e3, static_cast<unsigned long long>(s.kernel_launches),
                static_cast<unsigned long long>(s.bytes_total()));
  }
  std::printf("OK\n");
  return 0;
}
