// Serving-layer demo (API v2): a long-lived InferenceServer on a shared
// Engine, coalescing a mixed stream of 1D and 2D FNO requests into dynamic
// micro-batches with two-level QoS and zero-copy submission.
//
//   $ ./examples/serve_demo
//
// Three models are registered — a 1D Burgers-style operator, a small 2D
// operator, and a copy of the 1D operator restored from a serialized
// WeightBundle checkpoint (it must agree bitwise with its source).  96
// interleaved requests are submitted: one in four at Priority::High, some
// zero-copy into caller-owned buffers, some through completion callbacks.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "core/api.hpp"

int main() {
  using namespace turbofno;

  auto engine = std::make_shared<Engine>();

  serve::InferenceServer::Options opts;
  opts.policy.max_batch = 8;       // coalesce up to 8 requests per forward
  opts.policy.max_delay_s = 1e-3;  // ... or flush after 1 ms, whichever first
  opts.workers = 2;                // distinct models can execute concurrently
  serve::InferenceServer server(opts, engine);

  Fno1dConfig cfg1;
  cfg1.in_channels = 1;
  cfg1.hidden = 16;
  cfg1.out_channels = 1;
  cfg1.n = 256;
  cfg1.modes = 64;
  cfg1.layers = 2;
  cfg1.backend = Backend::Auto;  // resolved from the problem shape
  const serve::ModelId burgers = server.load_model(cfg1);

  Fno2dConfig cfg2;
  cfg2.in_channels = 1;
  cfg2.hidden = 8;
  cfg2.out_channels = 1;
  cfg2.nx = 32;
  cfg2.ny = 32;
  cfg2.modes_x = 8;
  cfg2.modes_y = 8;
  cfg2.layers = 2;
  const serve::ModelId darcy = server.load_model(cfg2);

  // Checkpoint round trip: snapshot the burgers model's weights and load
  // them into a differently seeded config — the serving results must be
  // bitwise-identical to the source model's.
  const WeightBundle checkpoint =
      engine->create_session(engine->register_model(cfg1)).gather();
  Fno1dConfig cfg1_restored = cfg1;
  cfg1_restored.seed += 1u;  // would diverge without the checkpoint
  const serve::ModelId burgers_restored = server.load_model(cfg1_restored, checkpoint);

  const std::size_t total = 96;
  std::vector<std::future<serve::InferResponse>> futures;
  std::atomic<std::size_t> callback_done{0};

  // Zero-copy lane: caller-owned buffers for the restored model, paired
  // with owning submissions of the same inputs to the source model.
  std::vector<std::vector<c32>> zc_in;
  std::vector<std::vector<c32>> zc_out;
  std::vector<std::future<serve::InferResponse>> zc_futs;
  std::vector<std::future<serve::InferResponse>> src_futs;

  for (std::size_t i = 0; i < total; ++i) {
    const bool is_2d = (i % 3 == 2);
    const serve::ModelId model = is_2d ? darcy : burgers;
    std::vector<c32> input(server.input_elems(model));
    core::fill_random(input, 0xd5eeu + static_cast<unsigned>(i));
    const serve::SubmitOptions so{i % 4 == 0 ? serve::Priority::High
                                             : serve::Priority::Normal};
    if (!is_2d && i % 6 == 1) {
      // Same input through the restored checkpoint (zero-copy) and the
      // source model (owning) — compared bitwise at the end.
      zc_in.push_back(input);
      zc_out.emplace_back(server.output_elems(burgers_restored));
      src_futs.push_back(server.submit(burgers, std::move(input), so));
      zc_futs.push_back(server.submit(burgers_restored,
                                      std::span<const c32>(zc_in.back()),
                                      std::span<c32>(zc_out.back()), so));
    } else if (i % 7 == 0) {
      // Callback delivery: runs on an executor thread.
      server.submit(model, std::move(input),
                    [&callback_done](serve::InferResponse&& r) {
                      if (r.status == serve::Status::Ok) callback_done.fetch_add(1);
                    },
                    so);
    } else {
      futures.push_back(server.submit(model, std::move(input), so));
    }
  }

  server.drain();

  std::size_t ok = 0;
  double max_total_ms = 0.0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.status == serve::Status::Ok) ++ok;
    max_total_ms = std::max(max_total_ms, r.timing.total_s * 1e3);
  }
  std::size_t checkpoint_matches = 0;
  for (std::size_t i = 0; i < zc_futs.size(); ++i) {
    const auto zr = zc_futs[i].get();
    const auto sr = src_futs[i].get();
    if (zr.status == serve::Status::Ok && sr.status == serve::Status::Ok &&
        std::memcmp(zc_out[i].data(), sr.output.data(),
                    zc_out[i].size() * sizeof(c32)) == 0) {
      ++checkpoint_matches;
    }
  }

  const auto st = server.stats();
  std::printf("TurboFNO serve demo (API v%d)\n", TURBOFNO_API_VERSION);
  std::printf("  requests: %zu submitted (%zu futures ok, %zu callbacks ok, %zu high-QoS)\n",
              total, ok, callback_done.load(), static_cast<std::size_t>(st.high_submitted));
  std::printf("  zero-copy checkpoint lane: %zu/%zu bitwise-identical to the source model\n",
              checkpoint_matches, zc_futs.size());
  std::printf("  micro-batches: %llu executed, avg size %.2f, max size %zu"
              " (%llu starvation promotions)\n",
              static_cast<unsigned long long>(st.batches), st.avg_micro_batch(),
              st.max_micro_batch, static_cast<unsigned long long>(st.starvation_promotions));
  std::printf("  worst request latency: %.3f ms\n", max_total_ms);

  std::printf("  per-stage serving counters:\n");
  const auto counters = server.latency_counters();
  for (const auto& s : counters.stages()) {
    std::printf("    %-10s %9.3f ms  %8llu launches  %10llu bytes\n", s.name.c_str(),
                s.seconds * 1e3, static_cast<unsigned long long>(s.kernel_launches),
                static_cast<unsigned long long>(s.bytes_total()));
  }
  std::printf("%s\n", checkpoint_matches == zc_futs.size() ? "OK" : "MISMATCH");
  return checkpoint_matches == zc_futs.size() ? 0 : 1;
}
