// Network serving client (API v2): speaks the TurboFNO wire protocol to a
// net::SocketServer, either across the wire to a running server or against
// an in-process loopback server it spins up itself.
//
//   $ ./examples/net_client --loopback
//       Self-contained demo: starts a SocketServer on an ephemeral port,
//       registers a 1D and a 2D model, runs complex, real (RFFT), and
//       High-QoS deadline requests over the socket, and proves the wire
//       results bitwise-identical to direct Session::run on the same
//       engine.  Exits 0 only if every check passes.
//
//   $ ./examples/net_client --host 10.0.0.5 --port 7470 --model 0 \
//         --dims 1,256 [--real] [--qos high] [--deadline-us 50000]
//       Remote mode: sends one random request of the given shape to an
//       already-running server and prints the response status and timing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/api.hpp"

using namespace turbofno;

namespace {

std::vector<std::uint32_t> parse_dims(const std::string& s) {
  std::vector<std::uint32_t> dims;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    dims.push_back(static_cast<std::uint32_t>(std::stoul(s.substr(pos, next - pos))));
    pos = next + 1;
  }
  return dims;
}

void fill_random_f32(std::span<float> x, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : x) v = dist(rng);
}

int remote_main(const std::string& host, int port, std::uint32_t model,
                const std::vector<std::uint32_t>& dims, bool real, net::Qos qos,
                std::uint32_t deadline_us) {
  std::uint64_t elems = 1;
  for (const auto d : dims) elems *= d;

  net::Client cli;
  cli.connect(static_cast<std::uint16_t>(port), host);

  net::Client::Result r;
  if (real) {
    std::vector<float> input(elems);
    fill_random_f32(input, 0x7f01u);
    r = cli.infer_real(model, dims, input, qos, deadline_us);
  } else {
    std::vector<c32> input(elems);
    core::fill_random(input, 0x7f01u);
    r = cli.infer_c32(model, dims, input, qos, deadline_us);
  }

  std::printf("net_client: model %u  %s  status=%s\n", model, real ? "f32" : "c32",
              net::wire_status_name(r.head.status).data());
  std::printf("  queue %.3f ms  exec %.3f ms  total %.3f ms  micro-batch %u\n",
              r.head.queue_us * 1e-3, r.head.exec_us * 1e-3, r.head.total_us * 1e-3,
              r.head.micro_batch);
  return r.head.status == net::WireStatus::Ok ? 0 : 1;
}

int loopback_main() {
  net::SocketServer::Options opts;
  opts.port = 0;  // ephemeral
  opts.serve.workers = 2;
  net::SocketServer srv(opts);

  Fno1dConfig cfg1;
  cfg1.in_channels = 2;
  cfg1.hidden = 8;
  cfg1.out_channels = 2;
  cfg1.n = 128;
  cfg1.modes = 32;
  cfg1.layers = 2;
  const serve::ModelId m1 = srv.load_model(cfg1);

  Fno2dConfig cfg2;
  cfg2.in_channels = 1;
  cfg2.hidden = 8;
  cfg2.out_channels = 1;
  cfg2.nx = 16;
  cfg2.ny = 16;
  cfg2.modes_x = 4;
  cfg2.modes_y = 4;
  cfg2.layers = 2;
  const serve::ModelId m2 = srv.load_model(cfg2);

  srv.start();
  std::printf("net_client --loopback: server on 127.0.0.1:%u\n", srv.port());

  // Reference sessions on the same engine: identical configs seed identical
  // weights, so the wire results must agree bitwise with direct runs.
  auto& eng = *srv.server()->engine();
  core::Session ref1 = eng.create_session(eng.register_model(cfg1));
  core::Session ref2 = eng.create_session(eng.register_model(cfg2));

  net::Client cli;
  cli.connect(srv.port());

  int failures = 0;
  const auto check = [&](const char* what, bool ok) {
    std::printf("  %-34s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  };

  {  // 1D complex lane.
    const std::uint32_t dims[] = {2, 128};
    std::vector<c32> input(ref1.input_elems());
    core::fill_random(input, 0xc0ffeeu);
    std::vector<c32> want(ref1.output_elems());
    ref1.run(input, want);
    const auto r = cli.infer_c32(static_cast<std::uint32_t>(m1), dims, input);
    check("1D c32 bitwise vs Session::run",
          r.head.status == net::WireStatus::Ok &&
              r.payload_c32().size() == want.size() &&
              std::memcmp(r.payload_c32().data(), want.data(), want.size() * sizeof(c32)) == 0);
  }

  {  // 2D complex lane, High QoS.
    const std::uint32_t dims[] = {1, 16, 16};
    std::vector<c32> input(ref2.input_elems());
    core::fill_random(input, 0xfeedu);
    std::vector<c32> want(ref2.output_elems());
    ref2.run(input, want);
    const auto r = cli.infer_c32(static_cast<std::uint32_t>(m2), dims, input, net::Qos::High);
    check("2D c32 High-QoS bitwise",
          r.head.status == net::WireStatus::Ok &&
              r.payload_c32().size() == want.size() &&
              std::memcmp(r.payload_c32().data(), want.data(), want.size() * sizeof(c32)) == 0);
  }

  {  // 1D real (RFFT) lane.
    const std::uint32_t dims[] = {2, 128};
    std::vector<float> input(ref1.input_elems());
    fill_random_f32(input, 0xbeefu);
    std::vector<float> want(ref1.output_elems());
    ref1.run_real(input, want);
    const auto r = cli.infer_real(static_cast<std::uint32_t>(m1), dims, input);
    check("1D f32 (RFFT lane) bitwise",
          r.head.status == net::WireStatus::Ok &&
              r.payload_f32().size() == want.size() &&
              std::memcmp(r.payload_f32().data(), want.data(), want.size() * sizeof(float)) == 0);
  }

  {  // Typed errors keep the stream alive.
    const std::uint32_t dims[] = {2, 128};
    std::vector<c32> input(2 * 128);
    const auto r = cli.infer_c32(9999u, dims, input);
    check("unknown model -> UnknownModel",
          r.head.status == net::WireStatus::UnknownModel);
    check("stream survives the typed error", cli.connected());
  }

  const auto st = srv.stats();
  std::printf("  frames decoded %llu, responses sent %llu, protocol errors %llu\n",
              static_cast<unsigned long long>(st.frames_decoded),
              static_cast<unsigned long long>(st.responses_sent),
              static_cast<unsigned long long>(st.protocol_errors));

  cli.close();
  srv.stop();
  std::printf("%s\n", failures == 0 ? "OK" : "MISMATCH");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;
  std::uint32_t model = 0;
  std::vector<std::uint32_t> dims;
  bool real = false;
  bool loopback = (argc == 1);
  net::Qos qos = net::Qos::Normal;
  std::uint32_t deadline_us = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--loopback") {
      loopback = true;
    } else if (a == "--host") {
      host = next();
    } else if (a == "--port") {
      port = std::atoi(next().c_str());
    } else if (a == "--model") {
      model = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (a == "--dims") {
      dims = parse_dims(next());
    } else if (a == "--real") {
      real = true;
    } else if (a == "--qos") {
      qos = next() == "high" ? net::Qos::High : net::Qos::Normal;
    } else if (a == "--deadline-us") {
      deadline_us = static_cast<std::uint32_t>(std::stoul(next()));
    } else {
      std::fprintf(stderr,
                   "usage: net_client [--loopback] | --port P [--host H] --model ID "
                   "--dims a,b[,c] [--real] [--qos high|normal] [--deadline-us N]\n");
      return 2;
    }
  }

  if (loopback) return loopback_main();
  if (port < 0) port = static_cast<int>(net::default_port());
  if (dims.empty()) {
    std::fprintf(stderr, "net_client: remote mode needs --dims (e.g. --dims 1,256)\n");
    return 2;
  }
  return remote_main(host, port, model, dims, real, qos, deadline_us);
}
