// Tensor substrate: c32 arithmetic, aligned buffers, tensor views.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"
#include "tensor/tensor.hpp"

namespace turbofno {
namespace {

// ------------------------------------------------------------------ c32

TEST(Complex, MultiplicationMatchesHandComputed) {
  const c32 a{1.0f, 2.0f};
  const c32 b{3.0f, -4.0f};
  const c32 p = a * b;  // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
  EXPECT_FLOAT_EQ(p.re, 11.0f);
  EXPECT_FLOAT_EQ(p.im, 2.0f);
}

TEST(Complex, CmaddAccumulates) {
  c32 acc{1.0f, 1.0f};
  cmadd(acc, c32{2.0f, 0.0f}, c32{0.0f, 3.0f});  // += 6i
  EXPECT_FLOAT_EQ(acc.re, 1.0f);
  EXPECT_FLOAT_EQ(acc.im, 7.0f);
}

TEST(Complex, ConjugateAndNorm) {
  const c32 a{3.0f, 4.0f};
  EXPECT_FLOAT_EQ(conj(a).im, -4.0f);
  EXPECT_FLOAT_EQ(norm2(a), 25.0f);
  EXPECT_FLOAT_EQ(abs(a), 5.0f);
}

TEST(Complex, QuarterTurnHelpers) {
  const c32 a{1.0f, 2.0f};
  const c32 minus_i = mul_neg_i(a);  // a * (-i) = (2, -1)
  EXPECT_FLOAT_EQ(minus_i.re, 2.0f);
  EXPECT_FLOAT_EQ(minus_i.im, -1.0f);
  const c32 plus_i = mul_pos_i(a);  // a * i = (-2, 1)
  EXPECT_FLOAT_EQ(plus_i.re, -2.0f);
  EXPECT_FLOAT_EQ(plus_i.im, 1.0f);
}

TEST(Complex, TwiddleUnitCircle) {
  const c32 w0 = twiddle(0, 8);
  EXPECT_FLOAT_EQ(w0.re, 1.0f);
  EXPECT_FLOAT_EQ(w0.im, 0.0f);
  const c32 w2 = twiddle(2, 8);  // e^{-i pi/2} = -i
  EXPECT_NEAR(w2.re, 0.0f, 1e-7);
  EXPECT_NEAR(w2.im, -1.0f, 1e-7);
  const c32 w4 = twiddle(4, 8);  // e^{-i pi} = -1
  EXPECT_NEAR(w4.re, -1.0f, 1e-7);
  EXPECT_NEAR(w4.im, 0.0f, 1e-6);
}

TEST(Complex, IsTrivial) {
  static_assert(std::is_trivially_copyable_v<c32>);
  static_assert(std::is_trivially_default_constructible_v<c32>);
  const c32 zero{};
  EXPECT_EQ(zero.re, 0.0f);
  EXPECT_EQ(zero.im, 0.0f);
}

// --------------------------------------------------------- AlignedBuffer

TEST(AlignedBuffer, AllocatesAlignedZeroedStorage) {
  AlignedBuffer<c32> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBufferAlignment, 0u);
  for (const auto& v : buf) {
    EXPECT_EQ(v.re, 0.0f);
    EXPECT_EQ(v.im, 0.0f);
  }
}

TEST(AlignedBuffer, CopyIsDeep) {
  AlignedBuffer<float> a(8);
  a[3] = 42.0f;
  AlignedBuffer<float> b(a);
  b[3] = 7.0f;
  EXPECT_EQ(a[3], 42.0f);
  EXPECT_EQ(b[3], 7.0f);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<float> a(8);
  a[0] = 5.0f;
  const float* p = a.data();
  AlignedBuffer<float> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 5.0f);
}

TEST(AlignedBuffer, ResizeZeroReleases) {
  AlignedBuffer<float> a(8);
  a.resize(0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.data(), nullptr);
}

TEST(AlignedBuffer, ResizeSameSizeRezeros) {
  AlignedBuffer<float> a(8);
  a[2] = 9.0f;
  a.resize(8);
  EXPECT_EQ(a[2], 0.0f);
}

// ------------------------------------------------------------------ Shape

TEST(Shape, NumelAndEquality) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s, (Shape{2, 3, 4}));
  EXPECT_FALSE(s == (Shape{2, 3, 5}));
  EXPECT_FALSE(s == (Shape{2, 3}));
  EXPECT_EQ(s.str(), "[2, 3, 4]");
}

TEST(Shape, EmptyShapeHasZeroNumel) {
  const Shape s{};
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 0u);
}

TEST(Shape, RejectsRankAboveFour) {
  EXPECT_THROW((Shape{1, 2, 3, 4, 5}), std::invalid_argument);
}

// ----------------------------------------------------------------- Tensor

TEST(Tensor, IndexedAccessRoundTrips) {
  CTensor t(Shape{2, 3, 4});
  t.at(1, 2, 3) = {1.0f, -1.0f};
  EXPECT_EQ(t.at(1, 2, 3).re, 1.0f);
  EXPECT_EQ(t.data()[(1 * 3 + 2) * 4 + 3].re, 1.0f);
}

TEST(Tensor, AtChecksRankAndBounds) {
  CTensor t(Shape{2, 3});
  EXPECT_THROW(t.at(0, 0, 0), std::out_of_range);  // rank mismatch
  EXPECT_THROW(t.at(2, 0), std::out_of_range);     // out of bounds
}

TEST(Tensor, RowSliceIsContiguousLeadingAxis) {
  FTensor t(Shape{3, 4});
  t.at(1, 0) = 5.0f;
  const auto r = t.row(1);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0], 5.0f);
}

TEST(Tensor, ReshapeReallocatesWhenNeeded) {
  FTensor t(Shape{4, 4});
  t.at(0, 0) = 1.0f;
  t.reshape(Shape{2, 8});
  EXPECT_EQ(t.numel(), 16u);
  t.reshape(Shape{3, 3});
  EXPECT_EQ(t.numel(), 9u);
}

TEST(Tensor, Rank4Access) {
  CTensor t(Shape{2, 2, 2, 2});
  t.at(1, 0, 1, 0) = {2.0f, 3.0f};
  EXPECT_EQ(t.at(1, 0, 1, 0).im, 3.0f);
  EXPECT_EQ(t.numel(), 16u);
}

}  // namespace
}  // namespace turbofno
