// Loopback fault-injection and end-to-end tests of the socket serving
// front-end.
//
// The golden property mirrors serve_test's: a request served over the
// wire — framed, checksummed, decoded, queued, batched — must produce
// payload bytes bitwise-identical to running the same input through a
// direct core::Session on the same engine.  On top of that, this suite
// attacks the server: malformed frames, client disconnects mid-request,
// slow readers that trip write backpressure, shutdown with in-flight
// frames, and a multi-threaded mixed-model soak.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "net/client.hpp"
#include "net/socket_server.hpp"
#include "test_util.hpp"

namespace turbofno::net {
namespace {

using turbofno::testing::random_signal;

core::Fno1dConfig small_1d() {
  core::Fno1dConfig c;
  c.in_channels = 2;
  c.hidden = 8;
  c.out_channels = 2;
  c.n = 64;
  c.modes = 16;
  c.layers = 2;
  return c;
}

core::Fno2dConfig small_2d() {
  core::Fno2dConfig c;
  c.in_channels = 1;
  c.hidden = 8;
  c.out_channels = 1;
  c.nx = 16;
  c.ny = 16;
  c.modes_x = 4;
  c.modes_y = 4;
  c.layers = 2;
  return c;
}

/// A 1D model with a fat (128 KiB) payload, for buffer-pressure tests.
core::Fno1dConfig fat_1d() {
  core::Fno1dConfig c;
  c.in_channels = 1;
  c.hidden = 2;
  c.out_channels = 1;
  c.n = 16384;
  c.modes = 8;
  c.layers = 1;
  return c;
}

std::vector<float> random_real(std::size_t n, unsigned seed) {
  const auto z = random_signal(n, seed);
  std::vector<float> r(n);
  for (std::size_t i = 0; i < n; ++i) r[i] = z[i].re;
  return r;
}

bool bitwise_equal(std::span<const std::byte> got, const void* want, std::size_t bytes) {
  return got.size() == bytes && std::memcmp(got.data(), want, bytes) == 0;
}

/// Waits (bounded) until `pred` holds — for counters that update as the
/// server's io/executor threads make progress.
template <typename Pred>
bool eventually(Pred pred, double timeout_s = 5.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// Patches one body byte of an encoded frame and re-seals the checksum, so
/// the frame is *structurally* valid but semantically malformed.
void patch_body_byte(std::vector<std::byte>& frame, std::size_t body_off, std::uint8_t value) {
  frame[kHeaderBytes + body_off] = static_cast<std::byte>(value);
  const std::uint32_t body_len = load_u32le(frame.data() + 8);
  store_u32le(frame.data() + 12, crc32({frame.data() + kHeaderBytes, body_len}));
}

std::vector<std::byte> valid_request_frame(std::uint32_t model, std::size_t elems,
                                           std::uint64_t correlation = 77) {
  RequestHead h;
  h.correlation = correlation;
  h.model = model;
  h.dtype = Dtype::F32;
  h.qos = Qos::Normal;
  h.ndim = 1;
  h.dims[0] = static_cast<std::uint32_t>(elems);
  const std::vector<float> payload(elems, 0.5f);
  std::vector<std::byte> frame(encoded_request_bytes(1, elems * 4));
  encode_request(frame, h,
                 {reinterpret_cast<const std::byte*>(payload.data()), elems * 4});
  return frame;
}

// --------------------------------------------------------------- golden E2E

TEST(NetServer, LoopbackBitwiseEqualToSession) {
  SocketServer::Options o;
  o.port = 0;
  o.io_threads = 2;
  o.serve.workers = 2;
  SocketServer srv(o);
  const auto m1 = static_cast<std::uint32_t>(srv.load_model(small_1d()));
  const auto m2 = static_cast<std::uint32_t>(srv.load_model(small_2d()));
  srv.start();

  // Direct references on the same engine: same configs seed the same
  // weights, so Session::run / run_real is the ground truth bit for bit.
  auto& eng = *srv.server()->engine();
  core::Session ref1 = eng.create_session(eng.register_model(small_1d()));
  core::Session ref2 = eng.create_session(eng.register_model(small_2d()));

  Client cli;
  cli.connect(srv.port());

  const core::Fno1dConfig c1 = small_1d();
  const core::Fno2dConfig c2 = small_2d();
  const std::uint32_t dims1[] = {static_cast<std::uint32_t>(c1.in_channels),
                                 static_cast<std::uint32_t>(c1.n)};
  const std::uint32_t dims2[] = {static_cast<std::uint32_t>(c2.in_channels),
                                 static_cast<std::uint32_t>(c2.nx),
                                 static_cast<std::uint32_t>(c2.ny)};

  // 1D complex lane.
  {
    const auto in = random_signal(ref1.input_elems(), 101);
    std::vector<c32> want(ref1.output_elems());
    ref1.run(in, want);
    const auto r = cli.infer_c32(m1, dims1, in, Qos::High);
    ASSERT_EQ(r.head.status, WireStatus::Ok) << wire_status_name(r.head.status);
    EXPECT_GE(r.head.micro_batch, 1u);
    EXPECT_TRUE(bitwise_equal(r.payload(), want.data(), want.size() * sizeof(c32)));
  }
  // 2D complex lane.
  {
    const auto in = random_signal(ref2.input_elems(), 202);
    std::vector<c32> want(ref2.output_elems());
    ref2.run(in, want);
    const auto r = cli.infer_c32(m2, dims2, in);
    ASSERT_EQ(r.head.status, WireStatus::Ok);
    EXPECT_TRUE(bitwise_equal(r.payload(), want.data(), want.size() * sizeof(c32)));
  }
  // 1D real (RFFT) lane.
  {
    const auto in = random_real(ref1.input_elems(), 303);
    std::vector<float> want(ref1.output_elems());
    ref1.run_real(in, want);
    const auto r = cli.infer_real(m1, dims1, in);
    ASSERT_EQ(r.head.status, WireStatus::Ok);
    EXPECT_TRUE(bitwise_equal(r.payload(), want.data(), want.size() * sizeof(float)));
  }
  // 2D real lane.
  {
    const auto in = random_real(ref2.input_elems(), 404);
    std::vector<float> want(ref2.output_elems());
    ref2.run_real(in, want);
    const auto r = cli.infer_real(m2, dims2, in, Qos::High);
    ASSERT_EQ(r.head.status, WireStatus::Ok);
    EXPECT_TRUE(bitwise_equal(r.payload(), want.data(), want.size() * sizeof(float)));
  }
  srv.stop();
  const auto s = srv.stats();
  EXPECT_EQ(s.frames_decoded, 4u);
  EXPECT_EQ(s.responses_sent, 4u);
  EXPECT_EQ(s.protocol_errors, 0u);
}

// --------------------------------------------------------- malformed frames

TEST(NetServer, MalformedFramesGetTypedErrorsAndIntegrityErrorsClose) {
  SocketServer::Options o;
  o.port = 0;
  SocketServer srv(o);
  const auto m = static_cast<std::uint32_t>(srv.load_model(small_1d()));
  const std::size_t elems = 2 * 64;
  srv.start();

  const auto expect_error_then_close = [&](std::vector<std::byte> bytes, WireStatus want) {
    Client cli;
    cli.connect(srv.port());
    cli.send_bytes(bytes);
    Client::Result r;
    ASSERT_TRUE(cli.recv_response(r)) << "no error response for " << wire_status_name(want);
    EXPECT_EQ(r.head.status, want) << wire_status_name(r.head.status);
    EXPECT_TRUE(r.payload().empty());
    EXPECT_TRUE(cli.recv_closed()) << "connection not closed after " << wire_status_name(want);
  };

  // Integrity errors: typed response, then the server closes the stream.
  {
    auto f = valid_request_frame(m, elems);
    f[0] = static_cast<std::byte>('X');
    expect_error_then_close(std::move(f), WireStatus::BadMagic);
  }
  {
    auto f = valid_request_frame(m, elems);
    f[4] = static_cast<std::byte>(9);
    expect_error_then_close(std::move(f), WireStatus::BadVersion);
  }
  {
    auto f = valid_request_frame(m, elems);
    f.back() ^= static_cast<std::byte>(1);  // body bit flip: CRC mismatch
    expect_error_then_close(std::move(f), WireStatus::BadChecksum);
  }

  // Recoverable errors: typed response, connection survives and serves a
  // following good request.
  const auto expect_error_then_ok = [&](std::vector<std::byte> bytes, WireStatus want) {
    Client cli;
    cli.connect(srv.port());
    cli.send_bytes(bytes);
    Client::Result r;
    ASSERT_TRUE(cli.recv_response(r));
    EXPECT_EQ(r.head.status, want) << wire_status_name(r.head.status);
    const std::uint32_t dims[] = {2, 64};
    const std::vector<float> in(elems, 1.0f);
    const auto ok = cli.infer_real(m, dims, in);
    EXPECT_EQ(ok.head.status, WireStatus::Ok) << "connection did not survive "
                                              << wire_status_name(want);
  };

  {
    // Shape/payload disagreement: dims claim twice the payload.
    auto f = valid_request_frame(m, elems);
    patch_body_byte(f, 20, 0xFF);  // corrupt dims[0] low byte
    expect_error_then_ok(std::move(f), WireStatus::ShapeMismatch);
  }
  {
    // Unknown model id.
    auto f = valid_request_frame(m, elems);
    patch_body_byte(f, 8, 0xEE);  // model low byte -> unregistered id
    expect_error_then_ok(std::move(f), WireStatus::UnknownModel);
  }
  {
    // dtype out of range: body prefix undecodable.
    auto f = valid_request_frame(m, elems);
    patch_body_byte(f, 12, 7);
    expect_error_then_ok(std::move(f), WireStatus::BadFrame);
  }
  {
    // Payload that matches the declared dims but not the model's shape:
    // reaches the inference server, which refuses it as InvalidInput.
    auto f = valid_request_frame(m, elems / 2);
    expect_error_then_ok(std::move(f), WireStatus::InvalidInput);
  }

  srv.stop();
  EXPECT_GE(srv.stats().protocol_errors, 6u);
}

TEST(NetServer, OverLimitDeclaredLengthCloses) {
  SocketServer::Options o;
  o.port = 0;
  o.max_frame_bytes = 4096;
  SocketServer srv(o);
  const auto m = static_cast<std::uint32_t>(srv.load_model(small_1d()));
  srv.start();

  Client cli;
  cli.connect(srv.port());
  // 8192 payload bytes declared and sent; the server rejects on the
  // *declared* length right after the header, never buffering the body.
  const auto f = valid_request_frame(m, 2048);
  cli.send_bytes(f);
  Client::Result r;
  ASSERT_TRUE(cli.recv_response(r));
  EXPECT_EQ(r.head.status, WireStatus::TooLarge);
  EXPECT_TRUE(cli.recv_closed());
  srv.stop();
}

// ------------------------------------------------------ client disconnects

TEST(NetServer, ClientDisconnectMidFrameAndMidRequestIsClean) {
  SocketServer::Options o;
  o.port = 0;
  SocketServer srv(o);
  const auto m = static_cast<std::uint32_t>(srv.load_model(small_1d()));
  const std::size_t elems = 2 * 64;
  srv.start();

  // Disconnect mid-header.
  {
    Client cli;
    cli.connect(srv.port());
    const auto f = valid_request_frame(m, elems);
    cli.send_bytes({f.data(), 7});
    cli.close();
  }
  // Disconnect mid-body.
  {
    Client cli;
    cli.connect(srv.port());
    const auto f = valid_request_frame(m, elems);
    cli.send_bytes({f.data(), f.size() - 13});
    cli.close();
  }
  // Disconnect after a full request, before the response: the in-flight
  // inference finishes against buffers the server owns; its response is
  // dropped, never written into freed memory.
  {
    Client cli;
    cli.connect(srv.port());
    cli.send_request(m, Dtype::F32, std::vector<std::uint32_t>{2, 64},
                     std::vector<std::byte>(elems * 4));
    cli.close();
  }
  ASSERT_TRUE(eventually([&] { return srv.stats().connections_closed >= 3; }));

  // The server is unharmed: a fresh client round-trips.
  Client cli;
  cli.connect(srv.port());
  const std::uint32_t dims[] = {2, 64};
  const std::vector<float> in(elems, 2.0f);
  const auto r = cli.infer_real(m, dims, in);
  EXPECT_EQ(r.head.status, WireStatus::Ok);
  srv.stop();
}

// ------------------------------------------------------------- backpressure

TEST(NetServer, SlowReaderTripsWriteBackpressureAndLosesNothing) {
  SocketServer::Options o;
  o.port = 0;
  o.max_buffered_bytes = 64 * 1024;  // well below the responses in flight
  o.socket_sndbuf_bytes = 32 * 1024;  // keep the kernel from absorbing them
  SocketServer srv(o);
  const auto m = static_cast<std::uint32_t>(srv.load_model(fat_1d()));
  srv.start();

  constexpr std::size_t kRequests = 32;  // 32 x 128 KiB responses = 4 MiB
  const std::size_t elems = 16384;
  const auto in = random_real(elems, 7);
  const std::vector<std::uint32_t> dims = {1, 16384};

  Client cli;
  // A tiny receive buffer caps the TCP window, so the kernel cannot absorb
  // the response backlog — it must pile up in the server's write queue.
  cli.set_recv_buffer(16 * 1024);
  cli.connect(srv.port());

  // Reader thread starts slow (lets the outbound queue pile up), then
  // drains everything; the sender pipelines without waiting.
  std::atomic<std::size_t> ok{0};
  std::thread reader([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    Client::Result r;
    for (std::size_t i = 0; i < kRequests; ++i) {
      if (!cli.recv_response(r)) break;
      if (r.head.status == WireStatus::Ok && r.payload().size() == elems * 4) ++ok;
    }
  });
  for (std::size_t i = 0; i < kRequests; ++i) {
    cli.send_request(m, Dtype::F32, dims,
                     {reinterpret_cast<const std::byte*>(in.data()), elems * 4});
  }
  reader.join();
  EXPECT_EQ(ok.load(), kRequests);
  // The slow reader must have parked its connection's reads at least once.
  EXPECT_GE(srv.stats().backpressure_pauses, 1u);
  EXPECT_EQ(srv.stats().dropped_responses, 0u);
  srv.stop();
}

// ------------------------------------------------- shutdown with in-flight

TEST(NetServer, StopDeliversEveryDecodedFrameThenCloses) {
  SocketServer::Options o;
  o.port = 0;
  SocketServer srv(o);
  const auto m = static_cast<std::uint32_t>(srv.load_model(small_1d()));
  const std::size_t elems = 2 * 64;
  srv.start();

  Client cli;
  cli.connect(srv.port());
  constexpr std::size_t kRequests = 16;
  const auto in = random_real(elems, 11);
  const std::vector<std::uint32_t> dims = {2, 64};
  for (std::size_t i = 0; i < kRequests; ++i) {
    cli.send_request(m, Dtype::F32, dims,
                     {reinterpret_cast<const std::byte*>(in.data()), elems * 4});
  }
  // Wait until every frame is decoded and in flight, then stop: drain
  // semantics require each accepted request to be answered before close.
  ASSERT_TRUE(eventually([&] { return srv.stats().frames_decoded == kRequests; }));
  srv.stop();

  std::size_t responses = 0;
  Client::Result r;
  while (cli.recv_response(r)) {
    EXPECT_EQ(r.head.status, WireStatus::Ok);
    ++responses;
  }
  EXPECT_EQ(responses, kRequests);  // ... and then EOF, which ends the loop
  EXPECT_FALSE(srv.running());
}

// -------------------------------------------------- admission over the wire

TEST(NetServer, DeadlineInfeasibleNormalShedsWhileHighServes) {
  SocketServer::Options o;
  o.port = 0;
  SocketServer srv(o);
  const auto m = static_cast<std::uint32_t>(srv.load_model(small_1d()));
  const std::size_t elems = 2 * 64;
  srv.start();

  // Teach admission control that this model "costs" an hour per request:
  // any Normal deadline in microseconds range is hopeless.
  srv.server()->set_exec_estimate(m, 3600.0);

  Client cli;
  cli.connect(srv.port());
  const std::uint32_t dims[] = {2, 64};
  const std::vector<float> in(elems, 1.0f);

  // Normal + 1 s deadline: shed at admission, typed on the wire.
  const auto shed = cli.infer_real(m, dims, in, Qos::Normal, 1'000'000);
  EXPECT_EQ(shed.head.status, WireStatus::Shed) << wire_status_name(shed.head.status);
  EXPECT_TRUE(shed.payload().empty());

  // High without a deadline: admission control is unarmed; completes fine.
  const auto ok = cli.infer_real(m, dims, in, Qos::High);
  EXPECT_EQ(ok.head.status, WireStatus::Ok);

  const auto s = srv.server()->stats();
  EXPECT_EQ(s.shed_normal, 1u);
  EXPECT_EQ(s.shed_high, 0u);
  srv.stop();
}

// ---------------------------------------------------------------- the soak

TEST(NetServer, EightClientThreadsMixedModelsBitwiseSoak) {
  SocketServer::Options o;
  o.port = 0;
  o.io_threads = 2;
  o.serve.workers = 2;
  o.serve.policy.max_batch = 4;
  SocketServer srv(o);
  const auto m1 = static_cast<std::uint32_t>(srv.load_model(small_1d()));
  const auto m2 = static_cast<std::uint32_t>(srv.load_model(small_2d()));
  srv.start();

  auto& eng = *srv.server()->engine();
  const auto h1 = eng.register_model(small_1d());
  const auto h2 = eng.register_model(small_2d());

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 6;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Per-thread reference sessions: Sessions are independent, and
      // running them per-thread keeps the ground truth off the shared path.
      core::Session ref1 = eng.create_session(h1);
      core::Session ref2 = eng.create_session(h2);
      Client cli;
      cli.connect(srv.port());
      const std::uint32_t dims1[] = {2, 64};
      const std::uint32_t dims2[] = {1, 16, 16};
      for (std::size_t round = 0; round < kRounds; ++round) {
        const unsigned seed = static_cast<unsigned>(1000 * t + round);
        const Qos qos = (t + round) % 2 == 0 ? Qos::High : Qos::Normal;
        // 1D complex.
        {
          const auto in = random_signal(ref1.input_elems(), seed);
          std::vector<c32> want(ref1.output_elems());
          ref1.run(in, want);
          const auto r = cli.infer_c32(m1, dims1, in, qos);
          if (r.head.status != WireStatus::Ok ||
              !bitwise_equal(r.payload(), want.data(), want.size() * sizeof(c32))) {
            ++failures;
          }
        }
        // 2D complex.
        {
          const auto in = random_signal(ref2.input_elems(), seed + 1);
          std::vector<c32> want(ref2.output_elems());
          ref2.run(in, want);
          const auto r = cli.infer_c32(m2, dims2, in, qos);
          if (r.head.status != WireStatus::Ok ||
              !bitwise_equal(r.payload(), want.data(), want.size() * sizeof(c32))) {
            ++failures;
          }
        }
        // 1D real lane.
        {
          const auto in = random_real(ref1.input_elems(), seed + 2);
          std::vector<float> want(ref1.output_elems());
          ref1.run_real(in, want);
          const auto r = cli.infer_real(m1, dims1, in, qos);
          if (r.head.status != WireStatus::Ok ||
              !bitwise_equal(r.payload(), want.data(), want.size() * sizeof(float))) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);

  // The io thread tallies responses_sent just after the kernel takes the
  // last byte — a client can observe its response slightly earlier.
  EXPECT_TRUE(eventually(
      [&] { return srv.stats().responses_sent == kThreads * kRounds * 3; }));
  const auto s = srv.stats();
  EXPECT_EQ(s.frames_decoded, kThreads * kRounds * 3);
  EXPECT_EQ(s.protocol_errors, 0u);
  srv.stop();
  EXPECT_EQ(srv.stats().connections_closed, srv.stats().connections_accepted);
}

// ----------------------------------------------------------- lifecycle races

// Regression tests for data races on the server's lifecycle state that
// ThreadSanitizer flagged: running()/port()/stats() used to read plain
// members that start()/stop() wrote concurrently, and the listen fd was
// close()d while io thread 0 could still pass it to accept4.  They now go
// through atomics (the fd is shut down at stop() and closed only after the
// io threads join) and a lifecycle mutex serializes start()/stop().  These
// tests run under the tsan CI job, where any regression is a hard failure.

TEST(NetServer, ObserversAreSafeDuringStartAndStop) {
  SocketServer::Options o;
  o.port = 0;
  SocketServer srv(o);
  (void)srv.load_model(small_1d());

  std::atomic<bool> observers_run{true};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::thread> observers;
  observers.reserve(3);
  for (int t = 0; t < 3; ++t) {
    observers.emplace_back([&] {
      while (observers_run.load(std::memory_order_acquire)) {
        // Each of these used to race the start()/stop() writes below.
        sink.fetch_add(srv.running() ? 1 : 0, std::memory_order_relaxed);
        sink.fetch_add(srv.port(), std::memory_order_relaxed);
        sink.fetch_add(srv.stats().connections_accepted, std::memory_order_relaxed);
      }
    });
  }

  srv.start();
  EXPECT_TRUE(srv.running());
  // Give the observers time to overlap the running server, then wind down
  // while they are still spinning.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  srv.stop();
  EXPECT_FALSE(srv.running());

  observers_run.store(false, std::memory_order_release);
  for (auto& t : observers) t.join();
}

TEST(NetServer, ConcurrentStopCallsAreSerialized) {
  SocketServer::Options o;
  o.port = 0;
  SocketServer srv(o);
  const auto m = static_cast<std::uint32_t>(srv.load_model(small_1d()));
  srv.start();

  // Leave a request in flight so stop() has real wind-down work to race on.
  Client cli;
  cli.connect(srv.port());
  cli.send_bytes(valid_request_frame(m, small_1d().in_channels * small_1d().n));

  std::vector<std::thread> stoppers;
  stoppers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    stoppers.emplace_back([&srv] { srv.stop(); });
  }
  for (auto& t : stoppers) t.join();
  EXPECT_FALSE(srv.running());
  // Idempotent after the dust settles (the destructor calls it again too).
  srv.stop();
}

TEST(NetServer, StopWhileClientsConnect) {
  // Accept-vs-stop: clients hammer connect while stop() retires the listen
  // socket.  Connections may fail (the server is going away) but nothing
  // may crash or race on the fd.
  SocketServer::Options o;
  o.port = 0;
  SocketServer srv(o);
  (void)srv.load_model(small_1d());
  srv.start();
  const std::uint16_t port = srv.port();

  std::atomic<bool> keep_connecting{true};
  std::thread connector([&] {
    while (keep_connecting.load(std::memory_order_acquire)) {
      try {
        Client cli;
        cli.connect(port);
      } catch (const std::exception&) {
        // refused mid-shutdown: expected
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  srv.stop();
  keep_connecting.store(false, std::memory_order_release);
  connector.join();
  EXPECT_FALSE(srv.running());
}

// ---------------------------------------------------------------- env knobs

TEST(NetServer, EnvKnobsDrivePortAndFrameLimit) {
  // TURBOFNO_NET_PORT=0 via the environment: the default-port sentinel
  // resolves to an ephemeral bind.
  ::setenv("TURBOFNO_NET_PORT", "0", 1);
  ::setenv("TURBOFNO_NET_MAX_FRAME", "4096", 1);
  {
    SocketServer srv;  // all defaults: port and frame limit come from env
    const auto m = static_cast<std::uint32_t>(srv.load_model(small_1d()));
    srv.start();
    EXPECT_NE(srv.port(), 0);  // ephemeral bind resolved to a real port

    Client cli;
    cli.connect(srv.port());
    // A frame over the env-configured 4096-byte limit is rejected.
    const auto f = valid_request_frame(m, 2048);  // 8 KiB payload
    cli.send_bytes(f);
    Client::Result r;
    ASSERT_TRUE(cli.recv_response(r));
    EXPECT_EQ(r.head.status, WireStatus::TooLarge);
    EXPECT_TRUE(cli.recv_closed());
    srv.stop();
  }
  ::unsetenv("TURBOFNO_NET_PORT");
  ::unsetenv("TURBOFNO_NET_MAX_FRAME");
}

}  // namespace
}  // namespace turbofno::net
