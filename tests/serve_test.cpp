// Deterministic end-to-end tests of the batched inference serving layer.
//
// The golden property: a request served through InferenceServer — whatever
// micro-batch it happens to ride in — must produce results bitwise-identical
// to running the same input through a serial, batch-1 core::Fno model built
// from the same config.  This holds on every SIMD backend (the comparison is
// within one build, so the suite is golden under TURBOFNO_SIMD=avx2 and
// =scalar alike), and makes batching a pure throughput optimization.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "core/fno.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace turbofno::serve {
namespace {

using turbofno::testing::max_err;
using turbofno::testing::random_signal;

core::Fno1dConfig small_1d() {
  core::Fno1dConfig c;
  c.in_channels = 2;
  c.hidden = 8;
  c.out_channels = 2;
  c.n = 64;
  c.modes = 16;
  c.layers = 2;
  return c;
}

core::Fno1dConfig wide_1d() {
  core::Fno1dConfig c;
  c.in_channels = 1;
  c.hidden = 12;
  c.out_channels = 1;
  c.n = 128;
  c.modes = 32;
  c.layers = 1;
  return c;
}

core::Fno2dConfig small_2d() {
  core::Fno2dConfig c;
  c.in_channels = 1;
  c.hidden = 8;
  c.out_channels = 1;
  c.nx = 16;
  c.ny = 16;
  c.modes_x = 4;
  c.modes_y = 4;
  c.layers = 2;
  return c;
}

::testing::AssertionResult bitwise_equal(std::span<const c32> a, std::span<const c32> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(c32)) != 0) {
    return ::testing::AssertionFailure() << "outputs differ, max |err| = " << max_err(a, b);
  }
  return ::testing::AssertionSuccess();
}

TEST(ServeGolden, MixedShapeStreamMatchesSerialExecutionBitwise) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 200e-6;
  so.workers = 2;
  InferenceServer server(so);

  const ModelId m0 = server.load_model(small_1d());
  const ModelId m1 = server.load_model(wide_1d());
  const ModelId m2 = server.load_model(small_2d());
  const ModelId models[] = {m0, m1, m2};

  // Serial references: batch-1 models from the same configs (same seeds,
  // hence bitwise-identical weights).
  core::Fno1d ref0(small_1d(), 1);
  core::Fno1d ref1(wide_1d(), 1);
  core::Fno2d ref2(small_2d(), 1);

  // Fixed-seed request stream, interleaving the three shapes.
  constexpr std::size_t kTotal = 48;
  std::vector<std::vector<c32>> inputs(kTotal);
  std::vector<std::future<InferResponse>> futs;
  futs.reserve(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    const ModelId m = models[i % 3];
    inputs[i] = random_signal(server.input_elems(m), 7000u + static_cast<unsigned>(i));
    futs.push_back(server.submit(m, inputs[i]));
  }
  server.drain();

  for (std::size_t i = 0; i < kTotal; ++i) {
    const ModelId m = models[i % 3];
    auto resp = futs[i].get();
    ASSERT_EQ(resp.status, Status::Ok) << "request " << i;
    EXPECT_GE(resp.timing.micro_batch, 1u);
    EXPECT_LE(resp.timing.micro_batch, so.policy.max_batch);

    std::vector<c32> expect(server.output_elems(m));
    switch (i % 3) {
      case 0:
        ref0.forward(inputs[i], expect);
        break;
      case 1:
        ref1.forward(inputs[i], expect);
        break;
      default:
        ref2.forward(inputs[i], expect);
        break;
    }
    EXPECT_TRUE(bitwise_equal(resp.output, expect)) << "request " << i;
  }

  const auto st = server.stats();
  EXPECT_EQ(st.submitted, kTotal);
  EXPECT_EQ(st.completed, kTotal);
  EXPECT_EQ(st.batched_requests, kTotal);
  EXPECT_GE(st.batches, (kTotal + so.policy.max_batch - 1) / so.policy.max_batch);
}

TEST(ServeGolden, ShutdownWithInflightRequestsDrainsAndStaysGolden) {
  InferenceServer::Options so;
  so.policy.max_batch = 5;
  so.policy.max_delay_s = 10.0;  // only size triggers or the shutdown flush
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());
  core::Fno1d ref(small_1d(), 1);

  constexpr std::size_t kTotal = 17;  // 3 full batches + 2 stragglers
  std::vector<std::vector<c32>> inputs(kTotal);
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < kTotal; ++i) {
    inputs[i] = random_signal(server.input_elems(m), 8100u + static_cast<unsigned>(i));
    futs.push_back(server.submit(m, inputs[i]));
  }
  // Immediately wind down with work still queued and in flight.
  server.stop(InferenceServer::StopMode::Drain);

  for (std::size_t i = 0; i < kTotal; ++i) {
    auto resp = futs[i].get();
    ASSERT_EQ(resp.status, Status::Ok) << "request " << i;
    std::vector<c32> expect(server.output_elems(m));
    ref.forward(inputs[i], expect);
    EXPECT_TRUE(bitwise_equal(resp.output, expect)) << "request " << i;
  }
  EXPECT_EQ(server.stats().completed, kTotal);

  // Submissions after shutdown are refused, not dropped.
  auto late = server.submit(m, random_signal(server.input_elems(m), 1u));
  EXPECT_EQ(late.get().status, Status::ShutDown);
}

TEST(ServeShutdown, AbortCompletesQueuedRequestsWithShutDownStatus) {
  InferenceServer::Options so;
  so.policy.max_batch = 64;     // never size-triggered
  so.policy.max_delay_s = 10.0;  // never deadline-triggered in test time
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 8; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 10u + i)));
  }
  server.stop(InferenceServer::StopMode::Abort);

  for (auto& f : futs) {
    const auto resp = f.get();
    EXPECT_EQ(resp.status, Status::ShutDown);
    EXPECT_TRUE(resp.output.empty());
  }
  const auto st = server.stats();
  EXPECT_EQ(st.shut_down, 8u);
  EXPECT_EQ(st.completed, 0u);
}

TEST(ServeLimits, BacklogAndInputValidation) {
  InferenceServer::Options so;
  so.policy.max_batch = 64;
  so.policy.max_delay_s = 10.0;
  so.policy.queue_capacity = 2;
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 5; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 20u + i)));
  }
  // A wrong-size input is refused regardless of queue state.
  auto bad = server.submit(m, random_signal(3, 1u));
  EXPECT_EQ(bad.get().status, Status::InvalidInput);

  std::size_t rejected = 0;
  server.stop(InferenceServer::StopMode::Abort);
  for (auto& f : futs) {
    const auto resp = f.get();
    if (resp.status == Status::Rejected) ++rejected;
  }
  EXPECT_EQ(rejected, 3u);  // capacity 2 of 5 accepted
  EXPECT_EQ(server.stats().rejected, 4u);  // 3 backlog + 1 invalid input
}

TEST(ServeFlush, FlushBoundsLatencyEvenWhileAModelIsBusy) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 10.0;  // flush(), not the deadline, must release work
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  // 6 requests: the first 4 size-trigger a launch (the model is then busy);
  // the 2 stragglers would otherwise wait out the 10 s deadline.
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 6; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 30u + i)));
  }
  server.flush();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].wait_for(std::chrono::seconds(5)), std::future_status::ready)
        << "request " << i << " stalled past flush()";
    EXPECT_EQ(futs[i].get().status, Status::Ok);
  }
}

TEST(ServeShutdown, ConcurrentStopCallsAreSafe) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 10.0;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 9; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 60u + i)));
  }
  // Two racing Drain stops (plus the destructor's, later): exactly one owns
  // the wind-down, the others wait for it.
  std::thread racer([&server] { server.stop(InferenceServer::StopMode::Drain); });
  server.stop(InferenceServer::StopMode::Drain);
  racer.join();
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);
  EXPECT_EQ(server.stats().completed, 9u);
}

TEST(ServeLatency, CountersAccumulateAcrossBatches) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 100e-6;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 12; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 40u + i)));
  }
  server.drain();
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);

  const auto counters = server.latency_counters();
  const auto total = counters.total();
  EXPECT_GE(total.kernel_launches, 3u);  // 12 requests, micro-batches <= 4
  bool saw_execute = false;
  for (const auto& s : counters.stages()) {
    if (s.name == "execute") {
      saw_execute = true;
      EXPECT_GT(s.seconds, 0.0);
    }
  }
  EXPECT_TRUE(saw_execute);
  const std::size_t in_bytes = server.input_elems(m) * sizeof(c32);
  EXPECT_EQ(total.bytes_read, 12 * in_bytes);
}

}  // namespace
}  // namespace turbofno::serve
