// Deterministic end-to-end tests of the batched inference serving layer.
//
// The golden property: a request served through InferenceServer — whatever
// micro-batch it happens to ride in — must produce results bitwise-identical
// to running the same input through a serial, batch-1 core::Fno model built
// from the same config.  This holds on every SIMD backend (the comparison is
// within one build, so the suite is golden under TURBOFNO_SIMD=avx2 and
// =scalar alike), and makes batching a pure throughput optimization.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/fno.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace turbofno::serve {
namespace {

using turbofno::testing::max_err;
using turbofno::testing::random_signal;

core::Fno1dConfig small_1d() {
  core::Fno1dConfig c;
  c.in_channels = 2;
  c.hidden = 8;
  c.out_channels = 2;
  c.n = 64;
  c.modes = 16;
  c.layers = 2;
  return c;
}

core::Fno1dConfig wide_1d() {
  core::Fno1dConfig c;
  c.in_channels = 1;
  c.hidden = 12;
  c.out_channels = 1;
  c.n = 128;
  c.modes = 32;
  c.layers = 1;
  return c;
}

core::Fno2dConfig small_2d() {
  core::Fno2dConfig c;
  c.in_channels = 1;
  c.hidden = 8;
  c.out_channels = 1;
  c.nx = 16;
  c.ny = 16;
  c.modes_x = 4;
  c.modes_y = 4;
  c.layers = 2;
  return c;
}

::testing::AssertionResult bitwise_equal(std::span<const c32> a, std::span<const c32> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(c32)) != 0) {
    return ::testing::AssertionFailure() << "outputs differ, max |err| = " << max_err(a, b);
  }
  return ::testing::AssertionSuccess();
}

TEST(ServeGolden, MixedShapeStreamMatchesSerialExecutionBitwise) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 200e-6;
  so.workers = 2;
  InferenceServer server(so);

  const ModelId m0 = server.load_model(small_1d());
  const ModelId m1 = server.load_model(wide_1d());
  const ModelId m2 = server.load_model(small_2d());
  const ModelId models[] = {m0, m1, m2};

  // Serial references: batch-1 models from the same configs (same seeds,
  // hence bitwise-identical weights).
  core::Fno1d ref0(small_1d());
  core::Fno1d ref1(wide_1d());
  core::Fno2d ref2(small_2d());

  // Fixed-seed request stream, interleaving the three shapes.
  constexpr std::size_t kTotal = 48;
  std::vector<std::vector<c32>> inputs(kTotal);
  std::vector<std::future<InferResponse>> futs;
  futs.reserve(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    const ModelId m = models[i % 3];
    inputs[i] = random_signal(server.input_elems(m), 7000u + static_cast<unsigned>(i));
    futs.push_back(server.submit(m, inputs[i]));
  }
  server.drain();

  for (std::size_t i = 0; i < kTotal; ++i) {
    const ModelId m = models[i % 3];
    auto resp = futs[i].get();
    ASSERT_EQ(resp.status, Status::Ok) << "request " << i;
    EXPECT_GE(resp.timing.micro_batch, 1u);
    EXPECT_LE(resp.timing.micro_batch, so.policy.max_batch);

    std::vector<c32> expect(server.output_elems(m));
    switch (i % 3) {
      case 0:
        ref0.forward(inputs[i], expect);
        break;
      case 1:
        ref1.forward(inputs[i], expect);
        break;
      default:
        ref2.forward(inputs[i], expect);
        break;
    }
    EXPECT_TRUE(bitwise_equal(resp.output, expect)) << "request " << i;
  }

  const auto st = server.stats();
  EXPECT_EQ(st.submitted, kTotal);
  EXPECT_EQ(st.completed, kTotal);
  EXPECT_EQ(st.batched_requests, kTotal);
  EXPECT_GE(st.batches, (kTotal + so.policy.max_batch - 1) / so.policy.max_batch);
}

TEST(ServeGolden, ShutdownWithInflightRequestsDrainsAndStaysGolden) {
  InferenceServer::Options so;
  so.policy.max_batch = 5;
  so.policy.max_delay_s = 10.0;  // only size triggers or the shutdown flush
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());
  core::Fno1d ref(small_1d());

  constexpr std::size_t kTotal = 17;  // 3 full batches + 2 stragglers
  std::vector<std::vector<c32>> inputs(kTotal);
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < kTotal; ++i) {
    inputs[i] = random_signal(server.input_elems(m), 8100u + static_cast<unsigned>(i));
    futs.push_back(server.submit(m, inputs[i]));
  }
  // Immediately wind down with work still queued and in flight.
  server.stop(InferenceServer::StopMode::Drain);

  for (std::size_t i = 0; i < kTotal; ++i) {
    auto resp = futs[i].get();
    ASSERT_EQ(resp.status, Status::Ok) << "request " << i;
    std::vector<c32> expect(server.output_elems(m));
    ref.forward(inputs[i], expect);
    EXPECT_TRUE(bitwise_equal(resp.output, expect)) << "request " << i;
  }
  EXPECT_EQ(server.stats().completed, kTotal);

  // Submissions after shutdown are refused, not dropped.
  auto late = server.submit(m, random_signal(server.input_elems(m), 1u));
  EXPECT_EQ(late.get().status, Status::ShutDown);
}

TEST(ServeShutdown, AbortCompletesQueuedRequestsWithShutDownStatus) {
  InferenceServer::Options so;
  so.policy.max_batch = 64;     // never size-triggered
  so.policy.max_delay_s = 10.0;  // never deadline-triggered in test time
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 8; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 10u + i)));
  }
  server.stop(InferenceServer::StopMode::Abort);

  for (auto& f : futs) {
    const auto resp = f.get();
    EXPECT_EQ(resp.status, Status::ShutDown);
    EXPECT_TRUE(resp.output.empty());
  }
  const auto st = server.stats();
  EXPECT_EQ(st.shut_down, 8u);
  EXPECT_EQ(st.completed, 0u);
}

TEST(ServeLimits, BacklogAndInputValidation) {
  InferenceServer::Options so;
  so.policy.max_batch = 64;
  so.policy.max_delay_s = 10.0;
  so.policy.queue_capacity = 2;
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 5; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 20u + i)));
  }
  // A wrong-size input is refused regardless of queue state.
  auto bad = server.submit(m, random_signal(3, 1u));
  EXPECT_EQ(bad.get().status, Status::InvalidInput);

  std::size_t rejected = 0;
  server.stop(InferenceServer::StopMode::Abort);
  for (auto& f : futs) {
    const auto resp = f.get();
    if (resp.status == Status::Rejected) ++rejected;
  }
  EXPECT_EQ(rejected, 3u);  // capacity 2 of 5 accepted
  EXPECT_EQ(server.stats().rejected, 4u);  // 3 backlog + 1 invalid input
}

TEST(ServeFlush, FlushBoundsLatencyEvenWhileAModelIsBusy) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 10.0;  // flush(), not the deadline, must release work
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  // 6 requests: the first 4 size-trigger a launch (the model is then busy);
  // the 2 stragglers would otherwise wait out the 10 s deadline.
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 6; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 30u + i)));
  }
  server.flush();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].wait_for(std::chrono::seconds(5)), std::future_status::ready)
        << "request " << i << " stalled past flush()";
    EXPECT_EQ(futs[i].get().status, Status::Ok);
  }
}

TEST(ServeShutdown, ConcurrentStopCallsAreSafe) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 10.0;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 9; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 60u + i)));
  }
  // Two racing Drain stops (plus the destructor's, later): exactly one owns
  // the wind-down, the others wait for it.
  std::thread racer([&server] { server.stop(InferenceServer::StopMode::Drain); });
  server.stop(InferenceServer::StopMode::Drain);
  racer.join();
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);
  EXPECT_EQ(server.stats().completed, 9u);
}

TEST(ServeLatency, CountersAccumulateAcrossBatches) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 100e-6;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < 12; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 40u + i)));
  }
  server.drain();
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::Ok);

  const auto counters = server.latency_counters();
  const auto total = counters.total();
  EXPECT_GE(total.kernel_launches, 3u);  // 12 requests, micro-batches <= 4
  bool saw_execute = false;
  for (const auto& s : counters.stages()) {
    if (s.name == "execute") {
      saw_execute = true;
      EXPECT_GT(s.seconds, 0.0);
    }
  }
  EXPECT_TRUE(saw_execute);
  // Gather counts only bytes the server actually staged: multi-request
  // micro-batches copy, single-request ones run zero-copy on the request
  // memory, so the total is bounded by (not necessarily equal to) the
  // whole stream.
  const std::size_t in_bytes = server.input_elems(m) * sizeof(c32);
  EXPECT_LE(total.bytes_read, 12 * in_bytes);
}

// ------------------------------------------------------------ zero-copy v2

TEST(ServeZeroCopy, SingleRequestBatchesCopyNoBytesAndStayGolden) {
  InferenceServer::Options so;
  so.policy.max_batch = 8;
  so.policy.max_delay_s = 100e-6;
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());
  core::Fno1d ref(small_1d());

  for (unsigned i = 0; i < 3; ++i) {
    const auto input = random_signal(server.input_elems(m), 9100u + i);
    std::vector<c32> output(server.output_elems(m));
    auto fut = server.submit(m, std::span<const c32>(input), std::span<c32>(output));
    server.drain();  // each request rides a micro-batch of one
    const auto resp = fut.get();
    ASSERT_EQ(resp.status, Status::Ok);
    EXPECT_EQ(resp.timing.micro_batch, 1u);
    EXPECT_TRUE(resp.output.empty()) << "zero-copy results land in the caller buffer";

    std::vector<c32> expect(output.size());
    ref.forward(input, expect);
    EXPECT_TRUE(bitwise_equal(output, expect));
  }

  // The gather/scatter counters prove no input or output bytes moved
  // through the staging area.
  const auto counters = server.latency_counters();
  for (const auto& s : counters.stages()) {
    if (s.name == "gather") EXPECT_EQ(s.bytes_read, 0u);
    if (s.name == "scatter") EXPECT_EQ(s.bytes_written, 0u);
  }
  EXPECT_EQ(server.stats().completed, 3u);
}

TEST(ServeZeroCopy, ViewAndOwningSubmissionsAgreeBitwiseInSharedBatches) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 200e-6;
  so.workers = 2;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());
  core::Fno1d ref(small_1d());

  constexpr std::size_t kTotal = 16;
  std::vector<std::vector<c32>> inputs(kTotal);
  std::vector<std::vector<c32>> view_outputs(kTotal);
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < kTotal; ++i) {
    inputs[i] = random_signal(server.input_elems(m), 9300u + static_cast<unsigned>(i));
    if (i % 2 == 0) {
      view_outputs[i].resize(server.output_elems(m));
      futs.push_back(server.submit(m, std::span<const c32>(inputs[i]),
                                   std::span<c32>(view_outputs[i])));
    } else {
      futs.push_back(server.submit(m, inputs[i]));  // owning wrapper
    }
  }
  server.drain();

  for (std::size_t i = 0; i < kTotal; ++i) {
    const auto resp = futs[i].get();
    ASSERT_EQ(resp.status, Status::Ok) << i;
    std::vector<c32> expect(server.output_elems(m));
    ref.forward(inputs[i], expect);
    const auto& got = (i % 2 == 0) ? view_outputs[i] : resp.output;
    EXPECT_TRUE(bitwise_equal(got, expect)) << i;
  }
}

TEST(ServeZeroCopy, MisshapenViewsAreRejected) {
  InferenceServer server;
  const ModelId m = server.load_model(small_1d());
  const auto input = random_signal(server.input_elems(m), 1u);
  std::vector<c32> short_out(server.output_elems(m) - 1);
  auto fut = server.submit(m, std::span<const c32>(input), std::span<c32>(short_out));
  EXPECT_EQ(fut.get().status, Status::InvalidInput);

  const auto short_in = random_signal(server.input_elems(m) - 1, 2u);
  std::vector<c32> out(server.output_elems(m));
  fut = server.submit(m, std::span<const c32>(short_in), std::span<c32>(out));
  EXPECT_EQ(fut.get().status, Status::InvalidInput);
}

// ------------------------------------------------------------------- QoS v2

namespace {

/// Sequence recorder shared by the QoS tests: completion callbacks append
/// (tag) under a lock; drain() in the test then makes the order stable.
struct CompletionLog {
  std::mutex mu;
  std::vector<std::string> order;
  void add(std::string tag) {
    const std::lock_guard<std::mutex> lock(mu);
    order.push_back(std::move(tag));
  }
};

}  // namespace

TEST(ServeQos, HighPriorityOvertakesQueuedNormalWork) {
  InferenceServer::Options so;
  so.policy.max_batch = 1;          // one request per micro-batch: pop order == completion order
  so.policy.max_delay_s = 10.0;     // launches come from the size trigger / relaunch chain only
  so.policy.starvation_s = 30.0;    // guard never fires in this test
  so.workers = 1;                   // a single executor serializes everything
  InferenceServer server(so);

  // The blocker occupies the only worker while the burst is enqueued, so
  // the pop order of the burst is decided strictly by QoS, not timing.
  core::Fno1dConfig heavy = wide_1d();
  heavy.n = 512;
  heavy.modes = 128;
  heavy.layers = 3;
  const ModelId blocker_model = server.load_model(heavy);
  const ModelId m = server.load_model(small_1d());

  CompletionLog log;
  auto cb = [&log](const char* tag) {
    return [&log, tag](InferResponse&& r) {
      ASSERT_EQ(r.status, Status::Ok);
      log.add(tag);
    };
  };

  server.submit(blocker_model, random_signal(server.input_elems(blocker_model), 1u),
                cb("blocker"));
  // First burst request launches immediately behind the blocker in the
  // worker queue and pins the model busy; the rest pile up and are popped
  // by QoS class when the chain relaunches.
  for (int i = 0; i < 4; ++i) {
    server.submit(m, random_signal(server.input_elems(m), 100u + i), cb("normal"));
  }
  for (int i = 0; i < 4; ++i) {
    server.submit(m, random_signal(server.input_elems(m), 200u + i), cb("high"),
                  SubmitOptions{Priority::High});
  }
  server.drain();

  ASSERT_EQ(log.order.size(), 9u);
  // normal#1 rode the already-launched first batch; the queued remainder
  // must pop all highs before the normals.
  std::vector<std::string> burst(log.order.begin(), log.order.end());
  burst.erase(std::remove(burst.begin(), burst.end(), "blocker"), burst.end());
  const std::vector<std::string> want = {"normal", "high", "high", "high", "high",
                                         "normal", "normal", "normal"};
  EXPECT_EQ(burst, want);
  EXPECT_EQ(server.stats().high_submitted, 4u);
  EXPECT_EQ(server.stats().starvation_promotions, 0u);
}

TEST(ServeQos, StarvationGuardPromotesOverdueNormalWork) {
  InferenceServer::Options so;
  so.policy.max_batch = 1;
  so.policy.max_delay_s = 10.0;
  so.policy.starvation_s = 1e-9;  // every queued Normal is immediately overdue
  so.workers = 1;
  InferenceServer server(so);

  core::Fno1dConfig heavy = wide_1d();
  heavy.n = 512;
  heavy.modes = 128;
  heavy.layers = 3;
  const ModelId blocker_model = server.load_model(heavy);
  const ModelId m = server.load_model(small_1d());

  CompletionLog log;
  auto cb = [&log](const char* tag) {
    return [&log, tag](InferResponse&& r) {
      ASSERT_EQ(r.status, Status::Ok);
      log.add(tag);
    };
  };

  server.submit(blocker_model, random_signal(server.input_elems(blocker_model), 1u),
                cb("blocker"));
  for (int i = 0; i < 2; ++i) {
    server.submit(m, random_signal(server.input_elems(m), 300u + i), cb("normal"));
  }
  for (int i = 0; i < 2; ++i) {
    server.submit(m, random_signal(server.input_elems(m), 400u + i), cb("high"),
                  SubmitOptions{Priority::High});
  }
  server.drain();

  std::vector<std::string> burst(log.order.begin(), log.order.end());
  burst.erase(std::remove(burst.begin(), burst.end(), "blocker"), burst.end());
  // All normals are overdue from the instant they queue, so the guard pops
  // them ahead of the younger high-priority work.
  const std::vector<std::string> want = {"normal", "normal", "high", "high"};
  EXPECT_EQ(burst, want);
  EXPECT_GE(server.stats().starvation_promotions, 1u);
}

TEST(ServeQos, PriorityNeverChangesValuesOnlyOrder) {
  InferenceServer::Options so;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 200e-6;
  so.workers = 2;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());
  core::Fno1d ref(small_1d());

  constexpr std::size_t kTotal = 12;
  std::vector<std::vector<c32>> inputs(kTotal);
  std::vector<std::future<InferResponse>> futs;
  for (std::size_t i = 0; i < kTotal; ++i) {
    inputs[i] = random_signal(server.input_elems(m), 9500u + static_cast<unsigned>(i));
    const SubmitOptions opts{i % 3 == 0 ? Priority::High : Priority::Normal};
    futs.push_back(server.submit(m, inputs[i], opts));
  }
  server.drain();
  for (std::size_t i = 0; i < kTotal; ++i) {
    const auto resp = futs[i].get();
    ASSERT_EQ(resp.status, Status::Ok);
    EXPECT_EQ(resp.priority, i % 3 == 0 ? Priority::High : Priority::Normal);
    std::vector<c32> expect(server.output_elems(m));
    ref.forward(inputs[i], expect);
    EXPECT_TRUE(bitwise_equal(resp.output, expect)) << i;
  }
}

// The admission-control contract (SubmitOptions::deadline_s): a deadline
// the backlog makes infeasible is refused as Status::Shed at submission,
// judged per QoS class — Normal counts the whole backlog, High counts
// only the High backlog — so under saturation Normal sheds first while
// feasible High work keeps being admitted.  set_exec_estimate() pins the
// learned per-request estimate, making these tests deterministic.

TEST(ServeAdmission, InfeasibleNormalShedsWhileFeasibleHighAdmits) {
  InferenceServer::Options so;
  so.policy.max_batch = 1;
  so.policy.max_delay_s = 10.0;
  so.workers = 1;
  InferenceServer server(so);

  // The blocker pins the only worker so the small model's backlog holds
  // still while the probes below are judged.
  core::Fno1dConfig heavy = wide_1d();
  heavy.n = 512;
  heavy.modes = 128;
  heavy.layers = 3;
  const ModelId blocker_model = server.load_model(heavy);
  const ModelId m = server.load_model(small_1d());

  server.submit(blocker_model, random_signal(server.input_elems(blocker_model), 1u),
                [](InferResponse&& r) { ASSERT_EQ(r.status, Status::Ok); });
  // Saturate m: the first request launches (model busy, parked behind the
  // blocker in the worker queue); five more queue up.  None carry
  // deadlines, so none of these shed.
  std::vector<std::future<InferResponse>> admitted;
  for (int i = 0; i < 6; ++i) {
    admitted.push_back(server.submit(m, random_signal(server.input_elems(m), 50u + i)));
  }
  EXPECT_GE(server.queue_depth(m), 4u);

  // Teach admission that m costs ~1 s per request.  Backlog ahead of a
  // Normal probe is >= 5 (queue + busy), so a 2 s deadline is hopeless;
  // a High probe only competes with the (empty) High backlog, so the
  // same 2 s deadline is feasible.
  server.set_exec_estimate(m, 1.0);
  EXPECT_DOUBLE_EQ(server.exec_estimate(m), 1.0);

  auto shed_normal = server.submit(m, random_signal(server.input_elems(m), 90u),
                                   SubmitOptions{Priority::Normal, 2.0});
  EXPECT_EQ(shed_normal.get().status, Status::Shed);

  server.set_exec_estimate(m, 1.0);
  auto high_ok = server.submit(m, random_signal(server.input_elems(m), 91u),
                               SubmitOptions{Priority::High, 2.0});

  // A High deadline below even its own class's wait sheds too.
  server.set_exec_estimate(m, 1.0);
  auto shed_high = server.submit(m, random_signal(server.input_elems(m), 92u),
                                 SubmitOptions{Priority::High, 0.5});
  EXPECT_EQ(shed_high.get().status, Status::Shed);

  const auto mid = server.stats();
  EXPECT_EQ(mid.shed_normal, 1u);
  EXPECT_EQ(mid.shed_high, 1u);

  // Every admitted request — including the deadline-armed High one —
  // completes normally; shedding refused doomed work, nothing else.
  server.drain();
  EXPECT_EQ(high_ok.get().status, Status::Ok);
  for (auto& f : admitted) EXPECT_EQ(f.get().status, Status::Ok);
  EXPECT_EQ(server.stats().completed, 8u);  // blocker + 6 + high_ok
}

TEST(ServeAdmission, NoDeadlineNeverShedsAndEstimateIsLearned) {
  InferenceServer::Options so;
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  // Before anything completes there is no estimate: deadline-armed work
  // is admitted optimistically ("admit and learn").
  EXPECT_DOUBLE_EQ(server.exec_estimate(m), 0.0);
  auto first = server.submit(m, random_signal(server.input_elems(m), 1u),
                             SubmitOptions{Priority::Normal, 1e-9});
  EXPECT_EQ(first.get().status, Status::Ok);
  // ... and completing it taught the server a positive estimate.  The
  // response is delivered just before the executor's bookkeeping, so give
  // the update a moment to land.
  server.drain();
  for (int i = 0; i < 1000 && server.exec_estimate(m) == 0.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(server.exec_estimate(m), 0.0);

  // An absurd estimate cannot shed deadline-less work.
  server.set_exec_estimate(m, 3600.0);
  auto second = server.submit(m, random_signal(server.input_elems(m), 2u));
  EXPECT_EQ(second.get().status, Status::Ok);
  EXPECT_EQ(server.stats().shed_normal, 0u);
  EXPECT_EQ(server.stats().shed_high, 0u);
  EXPECT_EQ(server.queue_depth(m), 0u);
}

TEST(ServeAdmission, ExecEstimateConvergesUnderSteadyLoad) {
  InferenceServer::Options so;
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  // Poison the estimate with an absurd seed, then run steady singleton
  // load: the 0.75/0.25 EWMA must forget it geometrically.  After 40
  // completions the seed's residue is 0.75^40 * 1000 ~ 1e-2 s, and the
  // true per-request cost of this tiny model is far below a second, so
  // the learned estimate lands under 1 s or the EWMA is broken.
  server.set_exec_estimate(m, 1000.0);
  for (int i = 0; i < 40; ++i) {
    auto f = server.submit(m, random_signal(server.input_elems(m), 70u + i));
    ASSERT_EQ(f.get().status, Status::Ok);
  }
  server.drain();
  // The estimate update lands in the executor's bookkeeping just after
  // the response fires; poll briefly for the last one.
  for (int i = 0; i < 1000 && server.exec_estimate(m) >= 1.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_LT(server.exec_estimate(m), 1.0);
  EXPECT_GT(server.exec_estimate(m), 0.0);
}

TEST(ServeAdmission, SeededEstimateFlipsShedDecisionDeterministically) {
  InferenceServer::Options so;
  so.workers = 1;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  // Idle model, 1 s deadline.  Estimate 5 s/request: (backlog 0 + this
  // request) * 5 s > 1 s, so admission must shed — deterministically,
  // no timing involved.
  server.set_exec_estimate(m, 5.0);
  auto shed = server.submit(m, random_signal(server.input_elems(m), 1u),
                            SubmitOptions{Priority::Normal, 1.0});
  EXPECT_EQ(shed.get().status, Status::Shed);

  // Re-seed at 0.1 s/request: the same deadline is now feasible.
  server.set_exec_estimate(m, 0.1);
  auto ok = server.submit(m, random_signal(server.input_elems(m), 2u),
                          SubmitOptions{Priority::Normal, 1.0});
  EXPECT_EQ(ok.get().status, Status::Ok);
  EXPECT_EQ(server.stats().shed_normal, 1u);
}

// ------------------------------------------------------- adaptive batching

TEST(ServeAdaptive, SustainedOverloadGrowsMicroBatchesPastMaxBatch) {
  InferenceServer::Options so;
  so.workers = 1;
  so.policy.max_batch = 8;
  so.policy.max_delay_s = 10.0;
  so.policy.adaptive = true;
  so.policy.growth_limit = 4;  // cap: 8 * 4 = 32
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  // Seed sustained overload: arrivals (1 us apart) vastly outpace
  // execution (10 s per request), so the batch cap opens to
  // max_batch * growth_limit and the speculative launch target rides the
  // cap — the 32 requests below must ride ONE micro-batch of 32.
  server.set_exec_estimate(m, 10.0);
  server.set_arrival_estimate(m, 1e-6);
  EXPECT_DOUBLE_EQ(server.arrival_estimate(m), 1e-6);

  constexpr std::size_t kRequests = 32;
  std::vector<std::future<InferResponse>> futs;
  futs.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 700u + i)));
  }
  for (auto& f : futs) {
    const auto r = f.get();
    ASSERT_EQ(r.status, Status::Ok);
    EXPECT_EQ(r.timing.micro_batch, kRequests);  // grown past max_batch 8
  }
  server.drain();
  const auto st = server.stats();
  EXPECT_GE(st.grown_batches, 1u);
  EXPECT_EQ(st.max_micro_batch, kRequests);
}

TEST(ServeAdaptive, SparseTrafficLaunchesSingletonsImmediately) {
  InferenceServer::Options so;
  so.workers = 1;
  so.policy.max_batch = 8;
  so.policy.max_delay_s = 10.0;  // non-adaptive batching would sit on this
  so.policy.adaptive = true;
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  // Arrivals 100 s apart: the expected fill within max_delay is under one
  // request, so the speculative target is 1 and a lone submission must
  // launch immediately instead of waiting out the 10 s delay window.
  server.set_arrival_estimate(m, 100.0);
  const auto t0 = std::chrono::steady_clock::now();
  auto f = server.submit(m, random_signal(server.input_elems(m), 9u));
  const auto r = f.get();
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(r.status, Status::Ok);
  EXPECT_EQ(r.timing.micro_batch, 1u);
  EXPECT_LT(waited, 5.0);  // far below the 10 s delay trigger
}

TEST(ServeAdaptive, OffByDefaultKeepsMicroBatchesWithinMaxBatch) {
  InferenceServer::Options so;
  so.workers = 1;
  so.policy.max_batch = 4;
  so.policy.max_delay_s = 100e-6;
  ASSERT_FALSE(so.policy.adaptive);  // growth is strictly opt-in
  InferenceServer server(so);
  const ModelId m = server.load_model(small_1d());

  // Even with overload-shaped estimates seeded, a non-adaptive server
  // never exceeds max_batch.
  server.set_exec_estimate(m, 10.0);
  server.set_arrival_estimate(m, 1e-6);
  std::vector<std::future<InferResponse>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(server.submit(m, random_signal(server.input_elems(m), 800u + i)));
  }
  for (auto& f : futs) {
    const auto r = f.get();
    ASSERT_EQ(r.status, Status::Ok);
    EXPECT_LE(r.timing.micro_batch, so.policy.max_batch);
  }
  EXPECT_EQ(server.stats().grown_batches, 0u);
}

}  // namespace
}  // namespace turbofno::serve
