// Trace substrate: counters, FLOP conventions, text tables and heatmaps.
#include <gtest/gtest.h>

#include "trace/counters.hpp"
#include "trace/table.hpp"

namespace turbofno::trace {
namespace {

TEST(Counters, StageLookupCreatesOnceAndAccumulates) {
  PipelineCounters pc("test");
  pc.stage("fft").bytes_read = 100;
  pc.stage("fft").bytes_written = 50;
  pc.stage("gemm").flops = 999;
  EXPECT_EQ(pc.stages().size(), 2u);
  EXPECT_EQ(pc.stage("fft").bytes_total(), 150u);
}

TEST(Counters, TotalSumsAllStages) {
  PipelineCounters pc("test");
  auto& a = pc.stage("a");
  a.bytes_read = 10;
  a.flops = 5;
  a.kernel_launches = 1;
  a.seconds = 0.5;
  auto& b = pc.stage("b");
  b.bytes_written = 20;
  b.flops = 7;
  b.kernel_launches = 2;
  b.seconds = 0.25;
  const auto t = pc.total();
  EXPECT_EQ(t.bytes_read, 10u);
  EXPECT_EQ(t.bytes_written, 20u);
  EXPECT_EQ(t.flops, 12u);
  EXPECT_EQ(t.kernel_launches, 3u);
  EXPECT_DOUBLE_EQ(t.seconds, 0.75);
}

TEST(Counters, ClearEmptiesStages) {
  PipelineCounters pc("test");
  pc.stage("x").flops = 1;
  pc.clear();
  EXPECT_TRUE(pc.stages().empty());
  EXPECT_EQ(pc.total().flops, 0u);
}

TEST(Counters, CgemmFlopConvention) {
  // One complex MAC = 6 (mul) + 2 (add) real FLOPs.
  EXPECT_EQ(cgemm_flops(1, 1, 1), 8u);
  EXPECT_EQ(cgemm_flops(10, 20, 30), 10u * 20u * 30u * 8u);
}

TEST(Counters, FftFlopConvention) {
  // n log2(n) / 2 butterflies x 10 real FLOPs.
  EXPECT_EQ(fft_flops(2), 10u);
  EXPECT_EQ(fft_flops(8), 3u * 4u * 10u);
  EXPECT_EQ(fft_flops(1), 0u);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "200.50"});
  const std::string s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("200.50"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumericFormatters) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(1.5), "+50.0%");
  EXPECT_EQ(TextTable::pct(0.8), "-20.0%");
}

TEST(AsciiHeatmapTest, GlyphBucketsFollowSpeedup) {
  AsciiHeatmap h({"r0", "r1"}, {"c0", "c1"});
  h.set(0, 0, 90.0);   // ##
  h.set(0, 1, -50.0);  // --
  h.set(1, 0, 10.0);   // .
  h.set(1, 1, 30.0);   // +
  const std::string s = h.str();
  EXPECT_NE(s.find("##"), std::string::npos);
  EXPECT_NE(s.find("--"), std::string::npos);
  EXPECT_NE(s.find("legend"), std::string::npos);
}

TEST(AsciiHeatmapTest, OutOfRangeCellThrows) {
  AsciiHeatmap h({"r"}, {"c"});
  EXPECT_THROW(h.set(1, 0, 0.0), std::out_of_range);
  EXPECT_THROW(h.set(0, 1, 0.0), std::out_of_range);
}

}  // namespace
}  // namespace turbofno::trace
