// Baseline pipeline internals: the memcopy stages and counter accounting.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/memcopy_stages.hpp"
#include "baseline/pipeline1d.hpp"
#include "test_util.hpp"

namespace turbofno::baseline {
namespace {

using turbofno::testing::max_err;
using turbofno::testing::random_signal;

TEST(TruncateCopy, KeepsLowPrefixPerRow) {
  const std::size_t rows = 3;
  const std::size_t n = 8;
  const std::size_t keep = 3;
  const auto src = random_signal(rows * n, 701u);
  std::vector<c32> dst(rows * keep, c32{});
  trace::StageCounters sc{"t", 0, 0, 0, 0, 0.0};
  truncate_copy(src, dst, rows, n, keep, &sc);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < keep; ++j) {
      EXPECT_EQ(dst[r * keep + j].re, src[r * n + j].re);
    }
  }
  EXPECT_EQ(sc.bytes_read, rows * keep * sizeof(c32));
  EXPECT_EQ(sc.bytes_written, rows * keep * sizeof(c32));
  EXPECT_EQ(sc.kernel_launches, 1u);
}

TEST(PadCopy, InsertsAndZeroFills) {
  const std::size_t rows = 2;
  const std::size_t keep = 3;
  const std::size_t n = 8;
  const auto src = random_signal(rows * keep, 709u);
  std::vector<c32> dst(rows * n, c32{9.0f, 9.0f});
  trace::StageCounters sc{"p", 0, 0, 0, 0, 0.0};
  pad_copy(src, dst, rows, keep, n, &sc);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < keep; ++j) EXPECT_EQ(dst[r * n + j].re, src[r * keep + j].re);
    for (std::size_t j = keep; j < n; ++j) {
      EXPECT_EQ(dst[r * n + j].re, 0.0f);
      EXPECT_EQ(dst[r * n + j].im, 0.0f);
    }
  }
  EXPECT_EQ(sc.bytes_written, rows * n * sizeof(c32));  // zeros count as writes
}

TEST(TruncateCopy2d, KeepsLowCornerBlock) {
  const std::size_t nx = 4;
  const std::size_t ny = 6;
  const std::size_t kx = 2;
  const std::size_t ky = 3;
  const auto src = random_signal(nx * ny, 719u);
  std::vector<c32> dst(kx * ky, c32{});
  truncate_copy_2d(src, dst, 1, nx, ny, kx, ky, nullptr);
  for (std::size_t x = 0; x < kx; ++x) {
    for (std::size_t y = 0; y < ky; ++y) {
      EXPECT_EQ(dst[x * ky + y].re, src[x * ny + y].re);
    }
  }
}

TEST(PadCopy2d, ZeroesOutsideCorner) {
  const std::size_t nx = 4;
  const std::size_t ny = 4;
  const std::size_t kx = 2;
  const std::size_t ky = 2;
  const auto src = random_signal(kx * ky, 727u);
  std::vector<c32> dst(nx * ny, c32{5.0f, 5.0f});
  pad_copy_2d(src, dst, 1, kx, ky, nx, ny, nullptr);
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) {
      if (x < kx && y < ky) {
        EXPECT_EQ(dst[x * ny + y].re, src[x * ky + y].re);
      } else {
        EXPECT_EQ(dst[x * ny + y].re, 0.0f);
      }
    }
  }
}

TEST(TruncPadRoundTrip, IsIdentityOnKeptRegion) {
  const std::size_t rows = 4;
  const std::size_t n = 16;
  const std::size_t keep = 5;
  const auto spec = random_signal(rows * keep, 733u);
  std::vector<c32> padded(rows * n);
  pad_copy(spec, padded, rows, keep, n, nullptr);
  std::vector<c32> back(rows * keep);
  truncate_copy(padded, back, rows, n, keep, nullptr);
  EXPECT_EQ(max_err(back, spec), 0.0);
}

TEST(BaselinePipeline, RecordsFiveStagesWithFullTraffic) {
  const Spectral1dProblem prob{2, 8, 8, 64, 16};
  const auto u = random_signal(prob.input_elems(), 739u);
  const auto w = random_signal(prob.weight_elems(), 743u);
  std::vector<c32> v(prob.output_elems());
  BaselinePipeline1d pipe(prob);
  pipe.run(u, w, v);
  const auto& stages = pipe.counters().stages();
  ASSERT_EQ(stages.size(), 5u);
  EXPECT_EQ(stages[0].name, "fft");
  EXPECT_EQ(stages[1].name, "truncate-copy");
  EXPECT_EQ(stages[2].name, "cgemm");
  EXPECT_EQ(stages[3].name, "pad-copy");
  EXPECT_EQ(stages[4].name, "ifft");
  // Baseline FFT writes the FULL spectrum (no built-in truncation).
  EXPECT_EQ(stages[0].bytes_written,
            prob.batch * prob.hidden * prob.n * sizeof(c32));
  // Each stage is one kernel launch.
  for (const auto& s : pipe.counters().stages()) EXPECT_EQ(s.kernel_launches, 1u);
}

TEST(BaselinePipeline, CountersResetBetweenRuns) {
  const Spectral1dProblem prob{1, 8, 8, 32, 8};
  const auto u = random_signal(prob.input_elems(), 751u);
  const auto w = random_signal(prob.weight_elems(), 757u);
  std::vector<c32> v(prob.output_elems());
  BaselinePipeline1d pipe(prob);
  pipe.run(u, w, v);
  const auto first = pipe.counters().total().bytes_total();
  pipe.run(u, w, v);
  EXPECT_EQ(pipe.counters().total().bytes_total(), first) << "counters must not accumulate";
}

}  // namespace
}  // namespace turbofno::baseline
