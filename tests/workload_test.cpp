// Workload generators: determinism, physical plausibility, error metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/workload.hpp"
#include "fft/plan.hpp"
#include "test_util.hpp"

namespace turbofno::core {
namespace {

using turbofno::testing::max_err;

TEST(Workload, FillRandomIsDeterministic) {
  std::vector<c32> a(128);
  std::vector<c32> b(128);
  fill_random(a, 3u);
  fill_random(b, 3u);
  EXPECT_EQ(max_err(a, b), 0.0);
  fill_random(b, 4u);
  EXPECT_GT(max_err(a, b), 0.0);
}

TEST(Workload, BurgersFieldIsRealAndBandLimited) {
  const std::size_t n = 256;
  std::vector<c32> x(n);
  burgers_initial_condition(x, n, 9u, /*harmonics=*/8);
  for (const auto& v : x) EXPECT_EQ(v.im, 0.0f);

  fft::PlanDesc d;
  d.n = n;
  const fft::FftPlan plan(d);
  std::vector<c32> freq(n);
  plan.execute(x, freq, 1);
  // Energy above harmonic 8 (and below the conjugate tail) must vanish.
  double high = 0.0;
  double low = 0.0;
  for (std::size_t f = 0; f < n; ++f) {
    const std::size_t dist = std::min(f, n - f);  // distance to DC
    (dist <= 8 ? low : high) += norm2(freq[f]);
  }
  EXPECT_LT(high, 1e-5 * (low + 1e-12));
}

TEST(Workload, BurgersBatchVariesAcrossSignals) {
  const std::size_t n = 64;
  std::vector<c32> x(2 * 2 * n);
  burgers_batch(x, 2, 2, n, 13u);
  EXPECT_GT(max_err(std::span<const c32>(x.data(), n),
                    std::span<const c32>(x.data() + n, n)),
            1e-3);
}

TEST(Workload, DarcyFieldIsTwoPhase) {
  const std::size_t nx = 32;
  const std::size_t ny = 32;
  std::vector<c32> x(nx * ny);
  darcy_coefficient_field(x, nx, ny, 21u);
  std::size_t high = 0;
  std::size_t low = 0;
  for (const auto& v : x) {
    EXPECT_TRUE(v.re == 12.0f || v.re == 3.0f) << v.re;
    EXPECT_EQ(v.im, 0.0f);
    (v.re == 12.0f ? high : low) += 1;
  }
  // Both phases present (threshold of a zero-mean field).
  EXPECT_GT(high, nx * ny / 10);
  EXPECT_GT(low, nx * ny / 10);
}

TEST(Workload, VorticityFieldIsSmooth) {
  const std::size_t nx = 32;
  const std::size_t ny = 32;
  std::vector<c32> x(nx * ny);
  vorticity_field(x, nx, ny, 31u);
  // Smoothness proxy: neighbour differences small relative to field range.
  float range = 0.0f;
  for (const auto& v : x) range = std::max(range, std::fabs(v.re));
  ASSERT_GT(range, 0.0f);
  float max_step = 0.0f;
  for (std::size_t ix = 0; ix + 1 < nx; ++ix) {
    for (std::size_t iy = 0; iy + 1 < ny; ++iy) {
      max_step = std::max(max_step, std::fabs(x[ix * ny + iy].re - x[(ix + 1) * ny + iy].re));
      max_step = std::max(max_step, std::fabs(x[ix * ny + iy].re - x[ix * ny + iy + 1].re));
    }
  }
  EXPECT_LT(max_step, 0.75f * range);
}

TEST(Workload, ErrorMetricsBehave) {
  std::vector<c32> a = {{1.0f, 0.0f}, {0.0f, 1.0f}};
  std::vector<c32> b = a;
  EXPECT_EQ(rel_l2_error(a, b), 0.0);
  EXPECT_EQ(max_abs_error(a, b), 0.0);
  b[0].re = 1.5f;
  EXPECT_NEAR(max_abs_error(a, b), 0.5, 1e-7);
  EXPECT_GT(rel_l2_error(a, b), 0.0);
}

TEST(Workload, RelErrorIsScaleInvariant) {
  std::vector<c32> a = {{2.0f, 0.0f}, {0.0f, 2.0f}};
  std::vector<c32> b = {{1.0f, 0.0f}, {0.0f, 1.0f}};
  const double e1 = rel_l2_error(a, b);
  std::vector<c32> a10 = {{20.0f, 0.0f}, {0.0f, 20.0f}};
  std::vector<c32> b10 = {{10.0f, 0.0f}, {0.0f, 10.0f}};
  EXPECT_NEAR(rel_l2_error(a10, b10), e1, 1e-9);
}

}  // namespace
}  // namespace turbofno::core
