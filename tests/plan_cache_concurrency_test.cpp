// Concurrency and eviction behavior of the shared FFT plan cache.
//
// The serving layer hits the cache from every executor worker, so the
// invariants under contention are load-bearing: a descriptor is built
// exactly once (no lost or duplicated plans), every thread sees the same
// instance, and the hit/miss counters add up deterministically.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "fft/plan_cache.hpp"
#include "test_util.hpp"

namespace turbofno::fft {
namespace {

std::vector<PlanDesc> mixed_shapes() {
  std::vector<PlanDesc> v;
  for (const std::size_t n : {std::size_t{64}, std::size_t{128}, std::size_t{256}}) {
    PlanDesc full;
    full.n = n;
    v.push_back(full);

    PlanDesc trunc;
    trunc.n = n;
    trunc.keep = n / 4;
    v.push_back(trunc);

    PlanDesc pad;
    pad.n = n;
    pad.dir = Direction::Inverse;
    pad.nonzero = n / 4;
    v.push_back(pad);

    PlanDesc inv;
    inv.n = n;
    inv.dir = Direction::Inverse;
    v.push_back(inv);
  }
  return v;  // 12 distinct descriptors
}

TEST(PlanCacheConcurrency, HammeredMixedShapesAgreeWithStableCounts) {
  plan_cache_clear();
  plan_cache_reset_stats();

  const auto shapes = mixed_shapes();
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 200;

  // Per-thread view of which plan instance each descriptor resolved to.
  std::vector<std::vector<const FftPlan*>> seen(
      kThreads, std::vector<const FftPlan*>(shapes.size(), nullptr));
  std::atomic<std::size_t> disagreements{0};
  std::atomic<bool> start{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      for (std::size_t it = 0; it < kIters; ++it) {
        for (std::size_t s = 0; s < shapes.size(); ++s) {
          // Stagger the visit order per thread so the first touch of each
          // descriptor races between different threads.
          const std::size_t idx = (s + t) % shapes.size();
          const auto plan = acquire_plan(shapes[idx]);
          if (seen[t][idx] == nullptr) {
            seen[t][idx] = plan.get();
          } else if (seen[t][idx] != plan.get()) {
            disagreements.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();

  // Same instance within each thread across iterations...
  EXPECT_EQ(disagreements.load(), 0u);
  // ... and across threads.
  for (std::size_t t = 1; t < kThreads; ++t) {
    for (std::size_t s = 0; s < shapes.size(); ++s) {
      EXPECT_EQ(seen[t][s], seen[0][s]) << "thread " << t << " shape " << s;
    }
  }

  // No lost or duplicated plans: one cache entry per descriptor, and the
  // counters balance exactly.
  EXPECT_EQ(cached_plan_count(), shapes.size());
  const auto st = plan_cache_stats();
  EXPECT_EQ(st.misses, shapes.size());
  EXPECT_EQ(st.hits + st.misses, kThreads * kIters * shapes.size());
  EXPECT_EQ(st.evictions, 0u);
  EXPECT_EQ(st.size, shapes.size());
}

TEST(PlanCacheConcurrency, ReferencesStayValidWhileCached) {
  plan_cache_clear();
  PlanDesc d;
  d.n = 128;
  d.keep = 32;
  const FftPlan& a = cached_plan(d);
  const FftPlan& b = cached_plan(d);
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(a.pruned());
}

TEST(PlanCacheEviction, CapacityEvictsLruButAcquiredPlansSurvive) {
  plan_cache_clear();
  plan_cache_reset_stats();
  set_plan_cache_capacity(4);

  PlanDesc first;
  first.n = 64;
  first.keep = 16;
  const auto held = acquire_plan(first);

  for (const std::size_t n :
       {std::size_t{128}, std::size_t{256}, std::size_t{512}, std::size_t{1024},
        std::size_t{2048}, std::size_t{4096}}) {
    PlanDesc d;
    d.n = n;
    (void)acquire_plan(d);
  }

  const auto st = plan_cache_stats();
  EXPECT_LE(st.size, 4u);
  EXPECT_EQ(st.capacity, 4u);
  EXPECT_GE(st.evictions, 3u);  // 7 inserts into a 4-slot cache
  EXPECT_EQ(cached_plan_count(), st.size);

  // The evicted-but-held plan still executes correctly.
  const auto u = turbofno::testing::random_signal(64, 99u);
  std::vector<c32> out(16);
  held->execute(u, out, 1);
  EXPECT_EQ(held->desc().n, 64u);

  // Re-acquiring the evicted descriptor builds a fresh instance.
  plan_cache_reset_stats();
  (void)acquire_plan(first);
  EXPECT_EQ(plan_cache_stats().misses, 1u);

  set_plan_cache_capacity(0);  // restore the unbounded default for later tests
  plan_cache_clear();
}

TEST(PlanCacheEviction, ClearCountsEvictionsAndEmptiesTheCache) {
  plan_cache_clear();
  plan_cache_reset_stats();
  PlanDesc d;
  d.n = 64;
  (void)acquire_plan(d);
  d.keep = 16;
  (void)acquire_plan(d);
  EXPECT_EQ(cached_plan_count(), 2u);
  plan_cache_clear();
  EXPECT_EQ(cached_plan_count(), 0u);
  EXPECT_EQ(plan_cache_stats().evictions, 2u);
}

}  // namespace
}  // namespace turbofno::fft
