// Twiddle tables and bit utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fft/twiddle.hpp"

namespace turbofno::fft {
namespace {

TEST(Twiddle, TableMatchesClosedForm) {
  const TwiddleTable table(64);
  for (std::size_t L = 2; L <= 64; L *= 2) {
    const auto seg = table.forward(L);
    ASSERT_EQ(seg.size(), L / 2);
    for (std::size_t j = 0; j < L / 2; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(j) / static_cast<double>(L);
      EXPECT_NEAR(seg[j].re, std::cos(ang), 1e-6) << "L=" << L << " j=" << j;
      EXPECT_NEAR(seg[j].im, std::sin(ang), 1e-6);
    }
  }
}

TEST(Twiddle, InverseIsConjugate) {
  const TwiddleTable table(32);
  for (std::size_t L = 2; L <= 32; L *= 2) {
    const auto f = table.forward(L);
    const auto i = table.inverse(L);
    for (std::size_t j = 0; j < L / 2; ++j) {
      EXPECT_EQ(i[j].re, f[j].re);
      EXPECT_EQ(i[j].im, -f[j].im);
    }
  }
}

TEST(Twiddle, UnitModulus) {
  const TwiddleTable table(128);
  for (std::size_t L = 2; L <= 128; L *= 2) {
    for (const auto w : table.forward(L)) {
      EXPECT_NEAR(norm2(w), 1.0f, 1e-6f);
    }
  }
}

TEST(Twiddle, CacheReturnsStableReference) {
  const TwiddleTable& a = twiddles_for(256);
  const TwiddleTable& b = twiddles_for(256);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 256u);
}

TEST(Twiddle, RejectsNonPow2) {
  EXPECT_THROW(TwiddleTable(3), std::invalid_argument);
  EXPECT_THROW(TwiddleTable(0), std::invalid_argument);
  EXPECT_THROW(TwiddleTable(1), std::invalid_argument);
}

TEST(BitUtils, IsPow2) {
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(1));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(BitUtils, Log2u) {
  EXPECT_EQ(log2u(1), 0u);
  EXPECT_EQ(log2u(2), 1u);
  EXPECT_EQ(log2u(1024), 10u);
}

TEST(BitUtils, BitReverseInvolution) {
  for (std::size_t bits = 1; bits <= 10; ++bits) {
    for (std::size_t v = 0; v < (std::size_t{1} << bits); v += 7) {
      EXPECT_EQ(bit_reverse(bit_reverse(v, bits), bits), v);
    }
  }
}

TEST(BitUtils, BitReverseKnownValues) {
  EXPECT_EQ(bit_reverse(0b001, 3), 0b100u);
  EXPECT_EQ(bit_reverse(0b011, 3), 0b110u);
  EXPECT_EQ(bit_reverse(0b1, 1), 0b1u);
  EXPECT_EQ(bit_reverse(0, 5), 0u);
}

TEST(BitUtils, BitReverseIsPermutation) {
  const std::size_t bits = 6;
  std::vector<bool> seen(1 << bits, false);
  for (std::size_t v = 0; v < (std::size_t{1} << bits); ++v) {
    const std::size_t r = bit_reverse(v, bits);
    ASSERT_LT(r, seen.size());
    EXPECT_FALSE(seen[r]);
    seen[r] = true;
  }
}

}  // namespace
}  // namespace turbofno::fft
