// Weight-bundle serialization: round trips, corruption handling, and model
// checkpoint restore.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/fno.hpp"
#include "core/serialize.hpp"
#include "core/workload.hpp"
#include "test_util.hpp"

namespace turbofno::core {
namespace {

using turbofno::testing::max_err;

WeightBundle sample_bundle() {
  WeightBundle b;
  b.entries.push_back({"alpha", {{1.0f, 2.0f}, {3.0f, 4.0f}}});
  b.entries.push_back({"beta", {{-1.0f, 0.5f}}});
  b.entries.push_back({"empty", {}});
  return b;
}

TEST(Serialize, BundleRoundTripsThroughBytes) {
  const auto b = sample_bundle();
  const auto bytes = save_bundle(b);
  const auto back = load_bundle(bytes);
  ASSERT_EQ(back.entries.size(), 3u);
  EXPECT_EQ(back.entries[0].name, "alpha");
  EXPECT_EQ(back.entries[0].data[1].im, 4.0f);
  EXPECT_EQ(back.entries[1].data[0].re, -1.0f);
  EXPECT_TRUE(back.entries[2].data.empty());
}

TEST(Serialize, FindLocatesByName) {
  const auto b = sample_bundle();
  ASSERT_NE(b.find("beta"), nullptr);
  EXPECT_EQ(b.find("beta")->data.size(), 1u);
  EXPECT_EQ(b.find("nope"), nullptr);
}

TEST(Serialize, RejectsBadMagic) {
  auto bytes = save_bundle(sample_bundle());
  bytes[0] ^= 0xff;
  EXPECT_THROW(load_bundle(bytes), std::runtime_error);
}

TEST(Serialize, RejectsTruncation) {
  const auto bytes = save_bundle(sample_bundle());
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{6}}) {
    EXPECT_THROW(load_bundle(std::span<const std::uint8_t>(bytes.data(), cut)),
                 std::runtime_error)
        << "cut=" << cut;
  }
}

TEST(Serialize, RejectsUnknownVersion) {
  auto bytes = save_bundle(sample_bundle());
  bytes[4] = 99;  // version field
  EXPECT_THROW(load_bundle(bytes), std::runtime_error);
}

TEST(Serialize, FileRoundTrip) {
  const auto b = sample_bundle();
  const std::string path = "/tmp/turbofno_bundle_test.bin";
  save_bundle_file(b, path);
  const auto back = load_bundle_file(path);
  EXPECT_EQ(back.entries.size(), b.entries.size());
  std::remove(path.c_str());
}

TEST(Serialize, ModelCheckpointRestoresExactOutputs) {
  Fno1dConfig cfg;
  cfg.hidden = 16;
  cfg.n = 64;
  cfg.modes = 16;
  cfg.layers = 2;
  const std::size_t batch = 2;

  // Model A: snapshot its spectral weights and output.
  Fno1d a(cfg);
  a.reserve(batch);
  std::vector<c32> u(batch * cfg.in_channels * cfg.n);
  burgers_batch(u, batch, cfg.in_channels, cfg.n, 3u);
  std::vector<c32> va(batch * cfg.out_channels * cfg.n);
  a.forward(u, va);
  const auto bundle = gather_weights(a);

  // Model B: different seed (different weights), then restore A's.
  Fno1dConfig cfg_b = cfg;
  cfg_b.seed += 12345u;
  Fno1d b(cfg_b);
  b.reserve(batch);
  std::vector<c32> vb(batch * cfg.out_channels * cfg.n);
  b.forward(u, vb);
  EXPECT_GT(max_err(vb, va), 0.0) << "different seeds must differ before restore";

  scatter_weights(b, bundle);
  // The bundle is a complete checkpoint (lift / spectral.* / residual.* /
  // project), so the restored model's outputs match A's bitwise.
  for (std::size_t l = 0; l < a.spectral_layers().size(); ++l) {
    EXPECT_EQ(max_err(b.spectral_layers()[l].weights(), a.spectral_layers()[l].weights()), 0.0)
        << "layer " << l;
  }
  b.forward(u, vb);
  EXPECT_EQ(max_err(vb, va), 0.0) << "restored checkpoint must reproduce outputs bitwise";
}

TEST(Serialize, Fno2dCheckpointRoundTripsBitwise) {
  Fno2dConfig cfg;
  cfg.hidden = 8;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.modes_x = 4;
  cfg.modes_y = 4;
  cfg.layers = 2;
  Fno2d a(cfg);
  std::vector<c32> u(cfg.in_channels * cfg.nx * cfg.ny);
  vorticity_field(u, cfg.nx, cfg.ny, 11u);
  std::vector<c32> va(cfg.out_channels * cfg.nx * cfg.ny);
  a.forward(u, va);

  // Through bytes, into a differently seeded model.
  const auto bytes = save_bundle(gather_weights(a));
  Fno2dConfig cfg_b = cfg;
  cfg_b.seed += 999u;
  Fno2d b(cfg_b);
  std::vector<c32> vb(va.size());
  b.forward(u, vb);
  EXPECT_GT(max_err(vb, va), 0.0);
  scatter_weights(b, load_bundle(bytes));
  b.forward(u, vb);
  EXPECT_EQ(max_err(vb, va), 0.0);
}

TEST(Serialize, Fno2dScatterRejectsWrongArchitecture) {
  Fno2dConfig small;
  small.hidden = 8;
  small.nx = 16;
  small.ny = 16;
  small.modes_x = 4;
  small.modes_y = 4;
  small.layers = 1;
  Fno2d a(small);
  const auto bundle = gather_weights(a);

  Fno2dConfig big = small;
  big.hidden = 16;
  Fno2d b(big);
  EXPECT_THROW(scatter_weights(b, bundle), std::runtime_error);

  Fno2dConfig more_layers = small;
  more_layers.layers = 2;
  Fno2d c(more_layers);
  EXPECT_THROW(scatter_weights(c, bundle), std::runtime_error);

  // The reverse direction must fail too: a deeper checkpoint's extra
  // layer tensors cannot be dropped silently into a shallower model.
  const auto deep_bundle = gather_weights(c);
  Fno2d d(small);
  EXPECT_THROW(scatter_weights(d, deep_bundle), std::runtime_error);
}

TEST(Serialize, ScatterRejectsWrongArchitecture) {
  Fno1dConfig small;
  small.hidden = 8;
  small.n = 32;
  small.modes = 8;
  small.layers = 1;
  Fno1d a(small);
  auto bundle = gather_weights(a);

  Fno1dConfig big = small;
  big.hidden = 16;  // weight sizes differ
  Fno1d b(big);
  EXPECT_THROW(scatter_weights(b, bundle), std::runtime_error);

  bundle.entries[0].name = "spectral.7";  // missing expected name
  EXPECT_THROW(scatter_weights(a, bundle), std::runtime_error);
}

}  // namespace
}  // namespace turbofno::core
