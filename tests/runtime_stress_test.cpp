// Concurrency stress for the runtime substrate: an oversubscribed
// ThreadPool hammered from many submitters, parallel_for nested inside
// pool jobs, and scratch-arena reuse across job waves.  These tests are
// deliberately timing-heavy rather than value-heavy — their job is to give
// ThreadSanitizer and the asan job real interleavings to chew on (the CI
// build-tsan and sanitize jobs run this binary), while the assertions pin
// the invariants that survive any interleaving: every submitted job runs
// exactly once, wait_idle really waits, nested scopes rewind, and a
// steady-state wave workload stops growing the arena after warm-up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "runtime/thread_pool.hpp"

namespace turbofno::runtime {
namespace {

TEST(ThreadPoolStress, OversubscribedSubmittersAllJobsRunOnce) {
  // More workers than cores and more submitters than workers: every queue
  // and wake path contends.
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kSubmitters = 6;
  constexpr std::size_t kJobsPer = 400;
  ThreadPool pool(kWorkers);
  std::atomic<std::size_t> ran{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &ran] {
      for (std::size_t j = 0; j < kJobsPer; ++j) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(ran.load(), kSubmitters * kJobsPer);
}

TEST(ThreadPoolStress, WaitIdleObservesJobsSubmittedByJobs) {
  // Jobs that submit follow-up jobs: wait_idle must not return while the
  // follow-ups are still queued or running.
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kRoots = 64;
  for (std::size_t i = 0; i < kRoots; ++i) {
    pool.submit([&pool, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2 * kRoots);
}

TEST(ThreadPoolStress, DestructorDrainsQueuedJobs) {
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kJobs = 500;
  {
    ThreadPool pool(2);
    for (std::size_t i = 0; i < kJobs; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor contract is drain-then-join.
  }
  EXPECT_EQ(ran.load(), kJobs);
}

TEST(RuntimeStress, NestedParallelForInsidePoolJobs) {
  // The serving shape: pool workers each run a data-parallel kernel.  The
  // inner parallel_for may build an OpenMP team per region; correctness
  // must not depend on how the oversubscription resolves.
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 32;
  constexpr std::size_t kN = 1024;
  std::atomic<std::size_t> total{0};
  for (std::size_t j = 0; j < kJobs; ++j) {
    pool.submit([&total] {
      std::atomic<std::size_t> local{0};
      parallel_for(0, kN, 64, [&local](std::size_t lo, std::size_t hi) {
        auto& arena = tls_scratch();
        const auto scope = arena.scope();
        const std::span<std::size_t> buf = arena.alloc<std::size_t>(hi - lo);
        for (std::size_t i = lo; i < hi; ++i) buf[i - lo] = i;
        std::size_t sum = 0;
        for (std::size_t i = 0; i < hi - lo; ++i) sum += buf[i];
        local.fetch_add(sum, std::memory_order_relaxed);
      });
      total.fetch_add(local.load(), std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(total.load(), kJobs * (kN * (kN - 1) / 2));
}

TEST(RuntimeStress, ArenaStopsGrowingAfterWarmupWave) {
  // Steady-state contract: wave after wave of identically-shaped jobs must
  // reuse each worker thread's high-water arena storage, not grow it.
  // Warm-up is tracked per worker thread (not per wave): under scheduler
  // skew a worker may pick up its first-ever job arbitrarily late, and only
  // a thread's first identically-shaped job is allowed to grow its arena.
  ThreadPool pool(4);
  constexpr std::size_t kWaves = 8;
  constexpr std::size_t kJobsPerWave = 32;
  constexpr std::size_t kElems = 4096;

  std::atomic<bool> grew_after_warmup{false};

  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    for (std::size_t j = 0; j < kJobsPerWave; ++j) {
      pool.submit([&grew_after_warmup] {
        thread_local bool warmed = false;
        auto& arena = tls_scratch();
        const std::size_t before = arena.bytes_reserved();
        {
          const auto scope = arena.scope();
          const std::span<float> a = arena.alloc<float>(kElems);
          const std::span<float> b = arena.alloc<float>(2 * kElems);
          a[0] = 1.0f;
          b[2 * kElems - 1] = 2.0f;
          {
            const auto inner = arena.scope();  // nested scope rewinds
            const std::span<float> c = arena.alloc<float>(kElems / 2);
            c[0] = a[0] + b[2 * kElems - 1];
          }
        }
        const std::size_t after = arena.bytes_reserved();
        if (warmed && after != before) {
          grew_after_warmup.store(true, std::memory_order_relaxed);
        }
        warmed = true;
      });
    }
    pool.wait_idle();
  }
  EXPECT_FALSE(grew_after_warmup.load())
      << "scratch arena grew during steady-state waves";
}

TEST(RuntimeStress, ScopeRewindMakesStorageReusable) {
  auto& arena = tls_scratch();
  std::size_t reserved = 0;
  {
    const auto scope = arena.scope();
    (void)arena.alloc<double>(1 << 14);
    reserved = arena.bytes_reserved();
  }
  // The same shape allocated again after the rewind reuses the block.
  for (int i = 0; i < 16; ++i) {
    const auto scope = arena.scope();
    const std::span<double> w = arena.alloc<double>(1 << 14);
    w[0] = static_cast<double>(i);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
  }
}

}  // namespace
}  // namespace turbofno::runtime
