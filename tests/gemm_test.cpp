// Blocked CGEMM vs the naive reference over a shape grid, alpha/beta cases,
// and every instantiated tile configuration.
#include <gtest/gtest.h>

#include <vector>

#include "gemm/cgemm.hpp"
#include "gemm/reference.hpp"
#include "test_util.hpp"

namespace turbofno::gemm {
namespace {

using turbofno::testing::max_err;
using turbofno::testing::random_signal;

struct GemmCase {
  std::size_t m, n, k;
};

double gemm_tol(std::size_t k) { return 4e-5 * std::sqrt(static_cast<double>(k) + 1.0); }

class CgemmShapes : public ::testing::TestWithParam<GemmCase> {};

TEST_P(CgemmShapes, MatchesReference) {
  const auto [M, N, K] = GetParam();
  const auto A = random_signal(M * K, 301u + static_cast<unsigned>(M));
  const auto B = random_signal(K * N, 307u + static_cast<unsigned>(N));
  std::vector<c32> C(M * N, c32{});
  std::vector<c32> Cref(M * N, c32{});
  cgemm(M, N, K, c32{1.0f, 0.0f}, A.data(), K, B.data(), N, c32{0.0f, 0.0f}, C.data(), N);
  cgemm_reference(M, N, K, c32{1.0f, 0.0f}, A.data(), K, B.data(), N, c32{0.0f, 0.0f},
                  Cref.data(), N);
  EXPECT_LT(max_err(C, Cref), gemm_tol(K)) << "M=" << M << " N=" << N << " K=" << K;
}

TEST_P(CgemmShapes, ComplexAlphaBetaAccumulate) {
  const auto [M, N, K] = GetParam();
  const auto A = random_signal(M * K, 311u);
  const auto B = random_signal(K * N, 313u);
  const auto C0 = random_signal(M * N, 317u);
  const c32 alpha{0.5f, -1.25f};
  const c32 beta{-0.75f, 0.25f};
  std::vector<c32> C(C0);
  std::vector<c32> Cref(C0);
  cgemm(M, N, K, alpha, A.data(), K, B.data(), N, beta, C.data(), N);
  cgemm_reference(M, N, K, alpha, A.data(), K, B.data(), N, beta, Cref.data(), N);
  EXPECT_LT(max_err(C, Cref), gemm_tol(K));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CgemmShapes,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{4, 4, 4}, GemmCase{7, 5, 3},
                      GemmCase{16, 16, 16}, GemmCase{31, 33, 17}, GemmCase{32, 32, 8},
                      GemmCase{64, 64, 8}, GemmCase{64, 64, 64}, GemmCase{65, 63, 9},
                      GemmCase{128, 32, 8}, GemmCase{33, 128, 130}, GemmCase{256, 16, 16},
                      GemmCase{512, 64, 128},  // tall-and-skinny (the FNO shape)
                      GemmCase{1000, 48, 72}, GemmCase{100, 1, 100}, GemmCase{1, 100, 100}));

// Every instantiated tile configuration must agree with the reference on an
// edge-stressing shape (not a multiple of any tile dim).
template <class Cfg>
void check_tiles() {
  const std::size_t M = 45;
  const std::size_t N = 37;
  const std::size_t K = 19;
  const auto A = random_signal(M * K, 331u);
  const auto B = random_signal(K * N, 337u);
  const auto C0 = random_signal(M * N, 347u);
  std::vector<c32> C(C0);
  std::vector<c32> Cref(C0);
  const c32 alpha{1.5f, 0.5f};
  const c32 beta{0.25f, -0.5f};
  cgemm_tiled<Cfg>(M, N, K, alpha, A.data(), K, B.data(), N, beta, C.data(), N);
  cgemm_reference(M, N, K, alpha, A.data(), K, B.data(), N, beta, Cref.data(), N);
  EXPECT_LT(max_err(C, Cref), gemm_tol(K))
      << "tiles " << Cfg::Mtb << "x" << Cfg::Ntb << "x" << Cfg::Ktb;
}

TEST(CgemmTiles, FusedTableOneShape) { check_tiles<FusedTiles>(); }
TEST(CgemmTiles, StandaloneShape) { check_tiles<StandaloneTiles>(); }
TEST(CgemmTiles, SmallTiles) { check_tiles<AblTilesSmall>(); }
TEST(CgemmTiles, WideN) { check_tiles<AblTilesWideN>(); }
TEST(CgemmTiles, TallM) { check_tiles<AblTilesTallM>(); }
TEST(CgemmTiles, DeepK) { check_tiles<AblTilesDeepK>(); }
TEST(CgemmTiles, SmallRegisterTile) { check_tiles<AblTilesReg2>(); }
TEST(CgemmTiles, LargeRegisterTile) { check_tiles<AblTilesReg8>(); }

TEST(Cgemm, ZeroSizedProblemsAreNoOps) {
  std::vector<c32> C(4, c32{7.0f, 7.0f});
  cgemm(0, 2, 2, c32{1.0f, 0.0f}, nullptr, 1, nullptr, 1, c32{0.0f, 0.0f}, C.data(), 2);
  EXPECT_EQ(C[0].re, 7.0f);  // untouched
  cgemm(2, 0, 2, c32{1.0f, 0.0f}, nullptr, 1, nullptr, 1, c32{0.0f, 0.0f}, C.data(), 2);
  EXPECT_EQ(C[1].re, 7.0f);
}

TEST(Cgemm, KZeroScalesByBeta) {
  const std::size_t M = 8;
  const std::size_t N = 8;
  const auto C0 = random_signal(M * N, 353u);
  std::vector<c32> C(C0);
  // K == 0: C = beta * C exactly.
  cgemm(M, N, 0, c32{1.0f, 0.0f}, nullptr, 1, nullptr, 1, c32{2.0f, 0.0f}, C.data(), N);
  for (std::size_t i = 0; i < M * N; ++i) {
    EXPECT_NEAR(C[i].re, 2.0f * C0[i].re, 1e-6);
    EXPECT_NEAR(C[i].im, 2.0f * C0[i].im, 1e-6);
  }
}

TEST(Cgemm, IdentityBIsACopy) {
  const std::size_t n = 24;
  const auto A = random_signal(n * n, 359u);
  std::vector<c32> I(n * n, c32{});
  for (std::size_t i = 0; i < n; ++i) I[i * n + i] = {1.0f, 0.0f};
  std::vector<c32> C(n * n, c32{});
  cgemm(n, n, n, c32{1.0f, 0.0f}, A.data(), n, I.data(), n, c32{0.0f, 0.0f}, C.data(), n);
  EXPECT_LT(max_err(C, A), 1e-5);
}

TEST(Cgemm, PureImaginaryAlphaRotates) {
  // alpha = i must rotate every output by 90 degrees: C_i = i * (A B).
  const std::size_t M = 12;
  const std::size_t N = 10;
  const std::size_t K = 8;
  const auto A = random_signal(M * K, 367u);
  const auto B = random_signal(K * N, 373u);
  std::vector<c32> C1(M * N, c32{});
  std::vector<c32> Ci(M * N, c32{});
  cgemm(M, N, K, c32{1.0f, 0.0f}, A.data(), K, B.data(), N, c32{0.0f, 0.0f}, C1.data(), N);
  cgemm(M, N, K, c32{0.0f, 1.0f}, A.data(), K, B.data(), N, c32{0.0f, 0.0f}, Ci.data(), N);
  for (std::size_t i = 0; i < M * N; ++i) {
    EXPECT_NEAR(Ci[i].re, -C1[i].im, 1e-4);
    EXPECT_NEAR(Ci[i].im, C1[i].re, 1e-4);
  }
}

TEST(Cgemm, LeadingDimensionsLargerThanWidth) {
  const std::size_t M = 10;
  const std::size_t N = 6;
  const std::size_t K = 5;
  const std::size_t lda = K + 3;
  const std::size_t ldb = N + 2;
  const std::size_t ldc = N + 4;
  const auto A = random_signal(M * lda, 379u);
  const auto B = random_signal(K * ldb, 383u);
  const auto C0 = random_signal(M * ldc, 389u);
  std::vector<c32> C(C0);
  std::vector<c32> Cref(C0);
  cgemm(M, N, K, c32{1.0f, 0.0f}, A.data(), lda, B.data(), ldb, c32{1.0f, 0.0f}, C.data(), ldc);
  cgemm_reference(M, N, K, c32{1.0f, 0.0f}, A.data(), lda, B.data(), ldb, c32{1.0f, 0.0f},
                  Cref.data(), ldc);
  EXPECT_LT(max_err(C, Cref), gemm_tol(K));
  // Padding columns must be untouched.
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t j = N; j < ldc; ++j) {
      EXPECT_EQ(C[i * ldc + j].re, C0[i * ldc + j].re);
    }
  }
}

TEST(CgemmBytes, TileShapeDrivesTrafficModel) {
  const TileShape small{32, 32, 8, 4, 4};
  const TileShape big{64, 64, 8, 4, 4};
  // Larger tiles -> fewer panel re-reads -> fewer modeled bytes.
  EXPECT_LT(cgemm_bytes(1024, 256, 64, big, false), cgemm_bytes(1024, 256, 64, small, false));
  EXPECT_GT(cgemm_bytes(64, 64, 64, small, true), cgemm_bytes(64, 64, 64, small, false));
}

}  // namespace
}  // namespace turbofno::gemm
