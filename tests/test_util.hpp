// Shared helpers for the TurboFNO test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <span>
#include <vector>

#include "tensor/complex.hpp"

namespace turbofno::testing {

inline std::vector<c32> random_signal(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<c32> v(n);
  for (auto& x : v) x = {dist(rng), dist(rng)};
  return v;
}

inline double max_err(std::span<const c32> a, std::span<const c32> b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a[i].re - b[i].re)));
    m = std::max(m, static_cast<double>(std::fabs(a[i].im - b[i].im)));
  }
  return m;
}

inline double rel_err(std::span<const c32> a, std::span<const c32> b) {
  double num = 0.0;
  double den = 1e-30;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    const double dr = static_cast<double>(a[i].re) - b[i].re;
    const double di = static_cast<double>(a[i].im) - b[i].im;
    num += dr * dr + di * di;
    den += static_cast<double>(b[i].re) * b[i].re + static_cast<double>(b[i].im) * b[i].im;
  }
  return std::sqrt(num / den);
}

/// FFT error grows ~ sqrt(log n) in float; this bound is loose but tight
/// enough to catch real bugs (wrong twiddle, wrong ordering, missed scale).
inline double fft_tol(std::size_t n) { return 2e-5 * std::sqrt(static_cast<double>(n)); }

}  // namespace turbofno::testing
