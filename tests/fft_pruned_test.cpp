// Pruned DIF kernel: correctness for every (n, m, p) and the Figure 5
// operation counts.
#include <gtest/gtest.h>

#include <vector>

#include "fft/dif_pruned.hpp"
#include "fft/opcount.hpp"
#include "fft/plan.hpp"
#include "fft/reference.hpp"
#include "fft/twiddle.hpp"
#include "test_util.hpp"

namespace turbofno::fft {
namespace {

using turbofno::testing::fft_tol;
using turbofno::testing::max_err;
using turbofno::testing::random_signal;

// --------------------------------------------------------------- block_need

// Brute force: bins below m whose index lands in block b at depth d.
std::size_t block_need_brute(std::size_t b, std::size_t d, std::size_t m) {
  const std::size_t r = bit_reverse(b, d);
  const std::size_t stride = std::size_t{1} << d;
  std::size_t count = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (k % stride == r) ++count;
  }
  return count;
}

TEST(BlockNeed, MatchesBruteForceOverGrid) {
  for (std::size_t d = 0; d <= 5; ++d) {
    const std::size_t blocks = std::size_t{1} << d;
    for (std::size_t m = 1; m <= 64; ++m) {
      for (std::size_t b = 0; b < blocks; ++b) {
        EXPECT_EQ(block_need(b, d, m), block_need_brute(b, d, m))
            << "b=" << b << " d=" << d << " m=" << m;
      }
    }
  }
}

TEST(BlockNeed, ChildrenSplitCeilFloor) {
  // need(even child) == ceil(need/2), need(odd child) == floor(need/2).
  for (std::size_t d = 0; d <= 4; ++d) {
    const std::size_t blocks = std::size_t{1} << d;
    for (std::size_t m = 1; m <= 48; ++m) {
      for (std::size_t b = 0; b < blocks; ++b) {
        const std::size_t need = block_need(b, d, m);
        EXPECT_EQ(block_need(2 * b, d + 1, m), (need + 1) / 2);
        EXPECT_EQ(block_need(2 * b + 1, d + 1, m), need / 2);
      }
    }
  }
}

// -------------------------------------------------------- pruned correctness

struct PrunedCase {
  std::size_t n;
  std::size_t m;
  std::size_t p;
};

class PrunedDif : public ::testing::TestWithParam<PrunedCase> {};

TEST_P(PrunedDif, ForwardMatchesReference) {
  const auto [n, m, p] = GetParam();
  const auto stored = random_signal(p, 101u + static_cast<unsigned>(n * 7 + m * 3 + p));
  std::vector<c32> buf(n, c32{});
  std::copy(stored.begin(), stored.end(), buf.begin());
  dif_pruned_run(buf, n, m, p, /*inverse=*/false);
  std::vector<c32> got(m);
  dif_gather(buf, got, n, m, 1.0f);

  std::vector<c32> ref(m);
  reference_dft(stored, ref, n);
  EXPECT_LT(max_err(got, ref), fft_tol(n)) << "n=" << n << " m=" << m << " p=" << p;
}

TEST_P(PrunedDif, InverseMatchesReference) {
  const auto [n, m, p] = GetParam();
  const auto stored = random_signal(p, 103u + static_cast<unsigned>(n + m + p));
  std::vector<c32> buf(n, c32{});
  std::copy(stored.begin(), stored.end(), buf.begin());
  dif_pruned_run(buf, n, m, p, /*inverse=*/true);
  std::vector<c32> got(m);
  dif_gather(buf, got, n, m, 1.0f / static_cast<float>(n));

  std::vector<c32> ref(m);
  reference_idft(stored, ref, n);
  EXPECT_LT(max_err(got, ref), fft_tol(n));
}

TEST_P(PrunedDif, MeasuredOpsEqualAnalyticCount) {
  const auto [n, m, p] = GetParam();
  std::vector<c32> buf(n, c32{1.0f, -1.0f});
  for (std::size_t i = p; i < n; ++i) buf[i] = c32{};
  const std::uint64_t measured = dif_pruned_run(buf, n, m, p, false);
  EXPECT_EQ(measured, count_pruned_ops(n, m, p).unit_ops);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PrunedDif,
    ::testing::Values(PrunedCase{4, 1, 4}, PrunedCase{4, 2, 4}, PrunedCase{4, 4, 4},
                      PrunedCase{8, 1, 8}, PrunedCase{8, 3, 8}, PrunedCase{8, 8, 2},
                      PrunedCase{16, 4, 16}, PrunedCase{16, 16, 4}, PrunedCase{16, 5, 7},
                      PrunedCase{32, 8, 32}, PrunedCase{32, 32, 8}, PrunedCase{64, 16, 64},
                      PrunedCase{64, 17, 33}, PrunedCase{128, 32, 128}, PrunedCase{128, 64, 64},
                      PrunedCase{256, 64, 256}, PrunedCase{256, 128, 128},
                      PrunedCase{256, 64, 64}, PrunedCase{512, 128, 512},
                      PrunedCase{1024, 256, 1024}, PrunedCase{1024, 1, 1}));

// Exhaustive small sweep: every (m, p) for n up to 32.
TEST(PrunedDifExhaustive, AllFiltersUpTo32) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    for (std::size_t m = 1; m <= n; ++m) {
      for (std::size_t p = 1; p <= n; ++p) {
        const auto stored = random_signal(p, static_cast<unsigned>(n * 1000 + m * 37 + p));
        std::vector<c32> buf(n, c32{});
        std::copy(stored.begin(), stored.end(), buf.begin());
        const std::uint64_t ops = dif_pruned_run(buf, n, m, p, false);
        std::vector<c32> got(m);
        dif_gather(buf, got, n, m, 1.0f);
        std::vector<c32> ref(m);
        reference_dft(stored, ref, n);
        ASSERT_LT(max_err(got, ref), fft_tol(n)) << "n=" << n << " m=" << m << " p=" << p;
        ASSERT_EQ(ops, count_pruned_ops(n, m, p).unit_ops) << "n=" << n << " m=" << m << " p=" << p;
      }
    }
  }
}

// ----------------------------------------------------------------- Figure 5

TEST(Figure5, FourPointTruncation25PercentIsThreeOps) {
  // Paper Fig 5(a): 4-point FFT keeping 1 of 4 outputs -> 3 ops (37.5%).
  EXPECT_EQ(count_pruned_ops(4, 1, 4).unit_ops, 3u);
  EXPECT_DOUBLE_EQ(pruned_fraction(4, 1, 4), 0.375);
}

TEST(Figure5, FourPointTruncation50PercentIsSixOps) {
  // Paper Fig 5(b): keeping 2 of 4 -> 6 ops (75%).
  EXPECT_EQ(count_pruned_ops(4, 2, 4).unit_ops, 6u);
  EXPECT_DOUBLE_EQ(pruned_fraction(4, 2, 4), 0.75);
}

TEST(Figure5, FourPointFullIsEightOps) {
  // Paper Fig 5(c): baseline two stages, 8 ops total.
  EXPECT_EQ(count_full_ops(4).unit_ops, 8u);
}

TEST(Figure5, ComputationReductionBandMatchesPaper) {
  // Section 5.1: "pruning reduces computation by 25%-67.5%".  The band
  // describes the combined forward-truncated + inverse-zero-padded pruning
  // at the per-thread FFT granularity the kernel uses (4..32 points, paper
  // Table 1: n1 = 8, n2 = 16) with 25% of the spectrum kept.
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    const std::size_t m = n / 4;
    const auto fwd = count_pruned_ops(n, m, n).unit_ops;   // truncated FFT
    const auto inv = count_pruned_ops(n, n, m).unit_ops;   // zero-padded iFFT
    const auto full = 2 * count_full_ops(n).unit_ops;
    const double reduction = 1.0 - static_cast<double>(fwd + inv) / static_cast<double>(full);
    EXPECT_GE(reduction, 0.25) << "n=" << n;
    EXPECT_LE(reduction, 0.675) << "n=" << n;
  }
  // Known anchors: 4-pt/25% -> 62.5%, 32-pt/25% -> 25.0%.
  EXPECT_DOUBLE_EQ(
      1.0 - static_cast<double>(count_pruned_ops(4, 1, 4).unit_ops +
                                count_pruned_ops(4, 4, 1).unit_ops) /
                static_cast<double>(2 * count_full_ops(4).unit_ops),
      0.625);
}

TEST(Figure5, MoreTruncationPrunesMore) {
  for (std::size_t n : {64u, 256u}) {
    for (std::size_t m = 1; m < n; m *= 2) {
      EXPECT_LE(count_pruned_ops(n, m, n).unit_ops, count_pruned_ops(n, 2 * m, n).unit_ops)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(OpCount, FullCountMatchesClassicFormula) {
  // Unpruned: log2(n) stages x n unit ops (every butterfly output).
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u, 256u, 1024u}) {
    EXPECT_EQ(count_full_ops(n).unit_ops, n * log2u(n));
  }
}

TEST(OpCount, MonotoneInKeep) {
  for (std::size_t m = 1; m <= 128; ++m) {
    EXPECT_LE(count_pruned_ops(128, m, 128).unit_ops,
              count_pruned_ops(128, std::min<std::size_t>(m + 1, 128), 128).unit_ops);
  }
}

TEST(OpCount, MonotoneInNonzeroPrefix) {
  for (std::size_t p = 1; p < 128; ++p) {
    EXPECT_LE(count_pruned_ops(128, 128, p).unit_ops,
              count_pruned_ops(128, 128, p + 1).unit_ops);
  }
}

TEST(OpCount, ZeroPadHalvesFirstStageMultiplies) {
  // With p <= n/2, stage one has no full butterflies at all: only copy +
  // twiddle-scale lanes, so cadd count drops by n/2 relative to full.
  const OpCount full = count_full_ops(64);
  const OpCount padded = count_pruned_ops(64, 64, 32);
  EXPECT_LT(padded.cadd, full.cadd);
  EXPECT_LT(padded.flops(), full.flops());
}

TEST(OpCount, FlopsOfPlanMatchCounter) {
  PlanDesc d;
  d.n = 256;
  d.keep = 64;
  const FftPlan plan(d);
  EXPECT_EQ(plan.flops_per_signal(), count_pruned_ops(256, 64, 256).flops());
  EXPECT_EQ(plan.unit_ops_per_signal(), count_pruned_ops(256, 64, 256).unit_ops);
}

}  // namespace
}  // namespace turbofno::fft
