// 1D pipeline ladder: every variant must compute the same spectral
// convolution as a direct reference, traffic counters must shrink up the
// ladder, and results must be independent of thread count.
#include <gtest/gtest.h>

#include <vector>

#include "fft/reference.hpp"
#include "fused/ladder.hpp"
#include "runtime/parallel.hpp"
#include "test_util.hpp"

namespace turbofno::fused {
namespace {

using baseline::Spectral1dProblem;
using turbofno::testing::max_err;
using turbofno::testing::random_signal;
using turbofno::testing::rel_err;

// Direct reference: per-signal DFT (double precision), naive mixing along
// hidden, zero-pad, inverse DFT.
std::vector<c32> reference_spectral_conv(const Spectral1dProblem& p, const std::vector<c32>& u,
                                         const std::vector<c32>& w) {
  const std::size_t B = p.batch;
  const std::size_t K = p.hidden;
  const std::size_t O = p.out_dim;
  const std::size_t N = p.n;
  const std::size_t M = p.modes;
  std::vector<c32> freq(B * K * M);
  for (std::size_t bk = 0; bk < B * K; ++bk) {
    fft::reference_dft(std::span<const c32>(u.data() + bk * N, N),
                       std::span<c32>(freq.data() + bk * M, M), N);
  }
  std::vector<c32> mixed(B * O * M, c32{});
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t o = 0; o < O; ++o) {
      for (std::size_t f = 0; f < M; ++f) {
        c32 acc{};
        for (std::size_t k = 0; k < K; ++k) {
          cmadd(acc, w[o * K + k], freq[(b * K + k) * M + f]);
        }
        mixed[(b * O + o) * M + f] = acc;
      }
    }
  }
  std::vector<c32> v(B * O * N);
  for (std::size_t bo = 0; bo < B * O; ++bo) {
    fft::reference_idft(std::span<const c32>(mixed.data() + bo * M, M),
                        std::span<c32>(v.data() + bo * N, N), N);
  }
  return v;
}

struct LadderCase {
  Variant variant;
  Spectral1dProblem prob;
};

std::vector<LadderCase> ladder_cases() {
  const std::vector<Spectral1dProblem> probs = {
      {2, 8, 8, 32, 8},    // tiny
      {3, 16, 8, 64, 16},  // rectangular O < K
      {1, 8, 24, 64, 32},  // O > K
      {4, 12, 12, 128, 64},
      {2, 9, 7, 64, 16},   // hidden not a multiple of k_tb
      {1, 8, 8, 64, 64},   // no truncation (modes == n)
      {2, 8, 8, 64, 1},    // extreme truncation
  };
  std::vector<LadderCase> cases;
  for (const auto v : kAllVariants) {
    for (const auto& p : probs) cases.push_back({v, p});
  }
  return cases;
}

class Ladder1d : public ::testing::TestWithParam<LadderCase> {};

TEST_P(Ladder1d, MatchesDirectReference) {
  const auto& [variant, prob] = GetParam();
  const auto u = random_signal(prob.input_elems(), 401u + static_cast<unsigned>(prob.n));
  const auto w = random_signal(prob.weight_elems(), 409u);
  std::vector<c32> v(prob.output_elems(), c32{});
  auto pipe = make_pipeline1d(variant, prob);
  pipe->run(u, w, v);
  const auto ref = reference_spectral_conv(prob, u, w);
  EXPECT_LT(rel_err(v, ref), 1e-4) << pipe->name();
}

TEST_P(Ladder1d, SecondRunIsIdentical) {
  const auto& [variant, prob] = GetParam();
  const auto u = random_signal(prob.input_elems(), 419u);
  const auto w = random_signal(prob.weight_elems(), 421u);
  std::vector<c32> v1(prob.output_elems(), c32{});
  std::vector<c32> v2(prob.output_elems(), c32{});
  auto pipe = make_pipeline1d(variant, prob);
  pipe->run(u, w, v1);
  pipe->run(u, w, v2);
  EXPECT_EQ(max_err(v1, v2), 0.0) << pipe->name() << ": reruns must be bit-identical";
}

TEST_P(Ladder1d, ThreadCountDoesNotChangeResult) {
  const auto& [variant, prob] = GetParam();
  const auto u = random_signal(prob.input_elems(), 431u);
  const auto w = random_signal(prob.weight_elems(), 433u);
  auto pipe = make_pipeline1d(variant, prob);

  runtime::set_thread_count(1);
  std::vector<c32> v1(prob.output_elems(), c32{});
  pipe->run(u, w, v1);
  runtime::set_thread_count(4);
  std::vector<c32> v4(prob.output_elems(), c32{});
  pipe->run(u, w, v4);
  runtime::set_thread_count(0);
  EXPECT_EQ(max_err(v1, v4), 0.0) << pipe->name() << ": schedule must not change arithmetic";
}

INSTANTIATE_TEST_SUITE_P(Grid, Ladder1d, ::testing::ValuesIn(ladder_cases()));

// ----------------------------------------------------------- cross-variant

TEST(Ladder1dEquivalence, AllVariantsAgreeWithBaseline) {
  const Spectral1dProblem prob{3, 24, 16, 128, 32};
  const auto u = random_signal(prob.input_elems(), 443u);
  const auto w = random_signal(prob.weight_elems(), 449u);
  auto base = make_pipeline1d(Variant::PyTorch, prob);
  std::vector<c32> vb(prob.output_elems());
  base->run(u, w, vb);
  for (const auto v : {Variant::FftOpt, Variant::FusedFftGemm, Variant::FusedGemmIfft,
                       Variant::FullyFused}) {
    auto pipe = make_pipeline1d(v, prob);
    std::vector<c32> vo(prob.output_elems());
    pipe->run(u, w, vo);
    EXPECT_LT(rel_err(vo, vb), 1e-4) << pipe->name();
  }
}

// -------------------------------------------------------------- counters

TEST(Ladder1dCounters, TrafficShrinksUpTheLadder) {
  const Spectral1dProblem prob{4, 32, 32, 256, 64};
  const auto u = random_signal(prob.input_elems(), 457u);
  const auto w = random_signal(prob.weight_elems(), 461u);
  std::vector<c32> v(prob.output_elems());

  std::vector<std::uint64_t> bytes;
  std::vector<std::uint64_t> launches;
  for (const auto var : kAllVariants) {
    auto pipe = make_pipeline1d(var, prob);
    pipe->run(u, w, v);
    bytes.push_back(pipe->counters().total().bytes_total());
    launches.push_back(pipe->counters().total().kernel_launches);
  }
  // PyTorch(0) > FftOpt(1) > partial fusions(2,3) > fully fused(4).
  EXPECT_GT(bytes[0], bytes[1]);
  EXPECT_GT(bytes[1], bytes[2]);
  EXPECT_GT(bytes[1], bytes[3]);
  EXPECT_GT(bytes[2], bytes[4]);
  EXPECT_GT(bytes[3], bytes[4]);
  // Launches: 5, 3, 2, 2, 1.
  EXPECT_EQ(launches[0], 5u);
  EXPECT_EQ(launches[1], 3u);
  EXPECT_EQ(launches[2], 2u);
  EXPECT_EQ(launches[3], 2u);
  EXPECT_EQ(launches[4], 1u);
}

TEST(Ladder1dCounters, FullyFusedMovesOnlyInOutAndWeights) {
  const Spectral1dProblem prob{2, 16, 16, 128, 32};
  const auto u = random_signal(prob.input_elems(), 463u);
  const auto w = random_signal(prob.weight_elems(), 467u);
  std::vector<c32> v(prob.output_elems());
  auto pipe = make_pipeline1d(Variant::FullyFused, prob);
  pipe->run(u, w, v);
  const auto total = pipe->counters().total();
  const std::uint64_t expect_read = (prob.input_elems() + prob.weight_elems()) * sizeof(c32);
  const std::uint64_t expect_write = prob.output_elems() * sizeof(c32);
  EXPECT_EQ(total.bytes_read, expect_read);
  EXPECT_EQ(total.bytes_written, expect_write);
}

TEST(Ladder1dCounters, PrunedFlopsBelowBaselineFlops) {
  const Spectral1dProblem prob{2, 16, 16, 256, 64};
  const auto u = random_signal(prob.input_elems(), 479u);
  const auto w = random_signal(prob.weight_elems(), 487u);
  std::vector<c32> v(prob.output_elems());
  auto base = make_pipeline1d(Variant::PyTorch, prob);
  auto fused = make_pipeline1d(Variant::FullyFused, prob);
  base->run(u, w, v);
  fused->run(u, w, v);
  EXPECT_LT(fused->counters().total().flops, base->counters().total().flops)
      << "truncation + pruning must reduce FLOPs";
}

TEST(Ladder1dProblem, ValidationRejectsBadShapes) {
  Spectral1dProblem p{0, 8, 8, 64, 16};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {1, 8, 8, 63, 16};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {1, 8, 8, 64, 65};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {1, 8, 8, 64, 0};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace turbofno::fused
