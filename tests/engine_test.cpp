// Engine/Session API v2: bitwise parity with direct core::Fno runs across
// every backend (Backend::Auto included), elastic capacity growth
// mid-stream, checkpoint loading, and the v1 deprecation shims.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/engine.hpp"
#include "core/serialize.hpp"
#include "core/workload.hpp"
#include "fused/ladder.hpp"
#include "test_util.hpp"

namespace turbofno::core {
namespace {

using turbofno::testing::max_err;

Fno1dConfig cfg_1d(Backend backend) {
  Fno1dConfig c;
  c.in_channels = 2;
  c.hidden = 8;
  c.out_channels = 2;
  c.n = 64;
  c.modes = 16;
  c.layers = 2;
  c.backend = backend;
  return c;
}

Fno2dConfig cfg_2d(Backend backend) {
  Fno2dConfig c;
  c.in_channels = 1;
  c.hidden = 8;
  c.out_channels = 1;
  c.nx = 16;
  c.ny = 16;
  c.modes_x = 4;
  c.modes_y = 4;
  c.layers = 2;
  c.backend = backend;
  return c;
}

::testing::AssertionResult bitwise_equal(std::span<const c32> a, std::span<const c32> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(c32)) != 0) {
    return ::testing::AssertionFailure() << "outputs differ, max |err| = " << max_err(a, b);
  }
  return ::testing::AssertionSuccess();
}

std::vector<Backend> all_backends_plus_auto() {
  std::vector<Backend> out(std::begin(fused::kAllVariants), std::end(fused::kAllVariants));
  out.push_back(Backend::Auto);
  return out;
}

TEST(EngineParity, SessionMatchesDirectFno1dBitwiseAllBackends) {
  for (const Backend backend : all_backends_plus_auto()) {
    const auto cfg = cfg_1d(backend);
    const std::size_t batch = 3;
    std::vector<c32> u(batch * cfg.in_channels * cfg.n);
    burgers_batch(u, batch, cfg.in_channels, cfg.n, 5u);

    Fno1d direct(cfg);
    std::vector<c32> want(batch * cfg.out_channels * cfg.n);
    direct.forward(u, want, batch);

    Engine engine;
    auto session = engine.create_session(engine.register_model(cfg), batch);
    std::vector<c32> got(want.size());
    session.run(u, got, batch);
    EXPECT_TRUE(bitwise_equal(got, want))
        << "backend " << fused::variant_name(backend);
  }
}

TEST(EngineParity, SessionMatchesDirectFno2dBitwiseAllBackends) {
  for (const Backend backend : all_backends_plus_auto()) {
    const auto cfg = cfg_2d(backend);
    const std::size_t batch = 2;
    std::vector<c32> u(batch * cfg.in_channels * cfg.nx * cfg.ny);
    for (std::size_t b = 0; b < batch; ++b) {
      vorticity_field(std::span<c32>(u).subspan(b * cfg.nx * cfg.ny, cfg.nx * cfg.ny), cfg.nx,
                      cfg.ny, 7u + static_cast<unsigned>(b));
    }

    Fno2d direct(cfg);
    std::vector<c32> want(batch * cfg.out_channels * cfg.nx * cfg.ny);
    direct.forward(u, want, batch);

    Engine engine;
    auto session = engine.create_session(engine.register_model(cfg), batch);
    std::vector<c32> got(want.size());
    session.run(u, got, batch);
    EXPECT_TRUE(bitwise_equal(got, want))
        << "backend " << fused::variant_name(backend);
  }
}

TEST(BackendAuto, ResolvesToAConcreteVariantAndMatchesItBitwise) {
  const auto cfg = cfg_1d(Backend::Auto);
  baseline::Spectral1dProblem prob{4, cfg.hidden, cfg.hidden, cfg.n, cfg.modes};
  const Backend chosen = fused::auto_variant_1d(prob);
  ASSERT_NE(chosen, Backend::Auto);
  ASSERT_NE(chosen, Backend::PyTorch) << "Auto must never pick the comparison baseline";

  auto explicit_cfg = cfg;
  explicit_cfg.backend = chosen;
  const std::size_t batch = 4;
  std::vector<c32> u(batch * cfg.in_channels * cfg.n);
  burgers_batch(u, batch, cfg.in_channels, cfg.n, 9u);

  Fno1d with_auto(cfg);
  Fno1d with_explicit(explicit_cfg);
  std::vector<c32> va(batch * cfg.out_channels * cfg.n);
  std::vector<c32> ve(va.size());
  with_auto.forward(u, va, batch);
  with_explicit.forward(u, ve, batch);
  EXPECT_TRUE(bitwise_equal(va, ve)) << "auto chose " << fused::variant_name(chosen);
}

TEST(BackendAuto, HeuristicFollowsShape) {
  // Deep truncation, cache-resident accumulator: the fully fused pass.
  baseline::Spectral1dProblem deep{1, 16, 16, 256, 32};
  EXPECT_EQ(fused::auto_variant_1d(deep), Backend::FullyFused);
  // Shallow truncation (modes > n/2): only the epilogue is worth fusing.
  baseline::Spectral1dProblem shallow{1, 16, 16, 256, 192};
  EXPECT_EQ(fused::auto_variant_1d(shallow), Backend::FusedGemmIfft);
  // Accumulator far beyond any L2 budget: stream through unfused kernels.
  baseline::Spectral1dProblem huge{1, 16, 4096, 32768, 16384};
  EXPECT_EQ(fused::auto_variant_1d(huge), Backend::FftOpt);

  baseline::Spectral2dProblem deep2{1, 8, 8, 64, 64, 8, 8};
  EXPECT_EQ(fused::auto_variant_2d(deep2), Backend::FullyFused);
  baseline::Spectral2dProblem shallow2{1, 8, 8, 64, 64, 8, 48};
  EXPECT_EQ(fused::auto_variant_2d(shallow2), Backend::FusedGemmIfft);
  baseline::Spectral2dProblem huge2{1, 256, 256, 1024, 1024, 512, 64};
  EXPECT_EQ(fused::auto_variant_2d(huge2), Backend::FftOpt);

  // resolve_variant is the identity on concrete rows.
  for (const Backend b : fused::kAllVariants) {
    EXPECT_EQ(fused::resolve_variant(b, deep), b);
    EXPECT_EQ(fused::resolve_variant(b, deep2), b);
  }
}

TEST(ElasticCapacity, SessionGrowsMidStreamBitwise) {
  const auto cfg = cfg_1d(Backend::FullyFused);
  const std::size_t max_batch = 6;
  std::vector<c32> u(max_batch * cfg.in_channels * cfg.n);
  burgers_batch(u, max_batch, cfg.in_channels, cfg.n, 21u);

  // Reference sized for the largest micro-batch up front.
  Fno1d ref(cfg);
  ref.reserve(max_batch);

  Engine engine;
  auto session = engine.create_session(engine.register_model(cfg), /*capacity_hint=*/2);
  EXPECT_GE(session.capacity(), 2u);

  for (const std::size_t batch : {std::size_t{2}, std::size_t{6}, std::size_t{3}}) {
    std::vector<c32> want(batch * cfg.out_channels * cfg.n);
    std::vector<c32> got(want.size());
    ref.forward(u, want, batch);
    session.run(u, got, batch);
    EXPECT_TRUE(bitwise_equal(got, want)) << "batch " << batch;
  }
  EXPECT_GE(session.capacity(), max_batch);
}

TEST(ElasticCapacity, PipelinesGrowBeyondConstructedCapacityAllVariants1d) {
  baseline::Spectral1dProblem small{2, 8, 8, 64, 16};
  baseline::Spectral1dProblem big = small;
  big.batch = 5;
  const auto u = turbofno::testing::random_signal(big.input_elems(), 3u);
  const auto w = turbofno::testing::random_signal(small.weight_elems(), 4u);
  for (const auto v : fused::kAllVariants) {
    auto grown = fused::make_pipeline1d(v, small);
    auto sized = fused::make_pipeline1d(v, big);
    std::vector<c32> vg(big.output_elems()), vs(big.output_elems());
    grown->run_batched(u, w, vg, big.batch);  // grows 2 -> 5 in place
    sized->run_batched(u, w, vs, big.batch);
    EXPECT_TRUE(bitwise_equal(vg, vs)) << fused::variant_name(v);
    EXPECT_EQ(grown->problem().batch, big.batch);
  }
}

TEST(ElasticCapacity, PipelinesGrowBeyondConstructedCapacityAllVariants2d) {
  baseline::Spectral2dProblem small{1, 8, 8, 16, 16, 4, 4};
  baseline::Spectral2dProblem big = small;
  big.batch = 4;
  const auto u = turbofno::testing::random_signal(big.input_elems(), 13u);
  const auto w = turbofno::testing::random_signal(small.weight_elems(), 14u);
  for (const auto v : fused::kAllVariants) {
    auto grown = fused::make_pipeline2d(v, small);
    auto sized = fused::make_pipeline2d(v, big);
    std::vector<c32> vg(big.output_elems()), vs(big.output_elems());
    grown->run_batched(u, w, vg, big.batch);
    sized->run_batched(u, w, vs, big.batch);
    EXPECT_TRUE(bitwise_equal(vg, vs)) << fused::variant_name(v);
    EXPECT_EQ(grown->problem().batch, big.batch);
  }
}

TEST(ElasticCapacity, UndersizedCallerBuffersStillThrow) {
  const auto cfg = cfg_1d(Backend::FullyFused);
  Fno1d model(cfg);
  std::vector<c32> u(2 * cfg.in_channels * cfg.n);
  std::vector<c32> v(2 * cfg.out_channels * cfg.n);
  EXPECT_THROW(model.forward(u, v, 3), std::invalid_argument);

  Engine engine;
  auto session = engine.create_session(engine.register_model(cfg));
  EXPECT_THROW(session.run(u, v, 3), std::invalid_argument);
}

TEST(EngineCheckpoint, LoadModelFromBundleReproducesSourceBitwise1d) {
  const auto cfg = cfg_1d(Backend::FullyFused);
  Engine engine;
  auto source = engine.create_session(engine.register_model(cfg), 2);
  const WeightBundle bundle = source.gather();

  // Same architecture, different seed: without the bundle the outputs
  // differ; with it they are bitwise-identical to the source session.
  auto other_cfg = cfg;
  other_cfg.seed += 42u;
  const std::size_t batch = 2;
  std::vector<c32> u(batch * cfg.in_channels * cfg.n);
  burgers_batch(u, batch, cfg.in_channels, cfg.n, 31u);
  std::vector<c32> want(batch * cfg.out_channels * cfg.n);
  source.run(u, want, batch);

  auto seeded = engine.create_session(engine.register_model(other_cfg), batch);
  std::vector<c32> got(want.size());
  seeded.run(u, got, batch);
  EXPECT_GT(max_err(got, want), 0.0);

  auto restored = engine.create_session(engine.load_model(other_cfg, bundle), batch);
  restored.run(u, got, batch);
  EXPECT_TRUE(bitwise_equal(got, want));
}

TEST(EngineCheckpoint, LoadModelFromBundleReproducesSourceBitwise2d) {
  const auto cfg = cfg_2d(Backend::FullyFused);
  Engine engine;
  auto source = engine.create_session(engine.register_model(cfg));
  const WeightBundle bundle = source.gather();

  std::vector<c32> u(cfg.in_channels * cfg.nx * cfg.ny);
  vorticity_field(u, cfg.nx, cfg.ny, 3u);
  std::vector<c32> want(cfg.out_channels * cfg.nx * cfg.ny);
  source.run(u, want, 1);

  auto other_cfg = cfg;
  other_cfg.seed += 42u;
  auto restored = engine.create_session(engine.load_model(other_cfg, bundle));
  std::vector<c32> got(want.size());
  restored.run(u, got, 1);
  EXPECT_TRUE(bitwise_equal(got, want));
}

TEST(EngineCheckpoint, LoadModelValidatesBundleUpFront) {
  const auto cfg = cfg_1d(Backend::FullyFused);
  Engine engine;
  auto source = engine.create_session(engine.register_model(cfg));
  WeightBundle bundle = source.gather();
  bundle.entries.pop_back();  // drop "project"
  EXPECT_THROW(engine.load_model(cfg, bundle), std::runtime_error);
}

// The v1 entry points must keep compiling (they warn; silenced here only
// because this test exists to exercise them) and produce identical models.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ApiV1Shims, DeprecatedConstructorsStillCompileAndMatch) {
  const auto cfg = cfg_1d(Backend::FullyFused);
  const std::size_t batch = 2;
  std::vector<c32> u(batch * cfg.in_channels * cfg.n);
  burgers_batch(u, batch, cfg.in_channels, cfg.n, 17u);

  Fno1d v1(cfg, batch);  // deprecated two-argument constructor
  Fno1d v2(cfg);
  v2.reserve(batch);
  ASSERT_EQ(v1.capacity(), v2.capacity());

  std::vector<c32> out1(batch * cfg.out_channels * cfg.n);
  std::vector<c32> out2(out1.size());
  v1.forward(u, out1, batch);
  v2.forward(u, out2, batch);
  EXPECT_TRUE(bitwise_equal(out1, out2));

  const auto cfg2 = cfg_2d(Backend::FullyFused);
  Fno2d w1(cfg2, 2);  // deprecated
  Fno2d w2(cfg2);
  w2.reserve(2);
  EXPECT_EQ(w1.capacity(), w2.capacity());
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace turbofno::core
