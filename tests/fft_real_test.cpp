// Real-input FFT plans (R2C / C2R): reference equivalence, conjugate
// symmetry, truncation, and round trips.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "fft/real.hpp"
#include "fft/reference.hpp"
#include "test_util.hpp"

namespace turbofno::fft {
namespace {

using turbofno::testing::fft_tol;
using turbofno::testing::max_err;

std::vector<float> random_reals(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

std::vector<c32> as_complex(const std::vector<float>& x) {
  std::vector<c32> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = {x[i], 0.0f};
  return z;
}

class RfftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RfftSizes, MatchesComplexReference) {
  const std::size_t n = GetParam();
  const auto x = random_reals(n, 1101u + static_cast<unsigned>(n));
  const auto xc = as_complex(x);
  std::vector<c32> ref(n);
  reference_dft(xc, ref, n);

  const RfftPlan plan(n);
  std::vector<c32> got(n / 2 + 1);
  plan.execute(x, got, 1);
  EXPECT_LT(max_err(got, std::span<const c32>(ref.data(), n / 2 + 1)), fft_tol(n)) << "n=" << n;
}

TEST_P(RfftSizes, RoundTripRecoversSignal) {
  const std::size_t n = GetParam();
  const auto x = random_reals(n, 1103u);
  const RfftPlan fwd(n);
  const IrfftPlan inv(n);
  std::vector<c32> spec(n / 2 + 1);
  std::vector<float> back(n);
  fwd.execute(x, spec, 1);
  inv.execute(spec, back, 1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], fft_tol(n)) << "i=" << i << " n=" << n;
  }
}

TEST_P(RfftSizes, EdgeBinsAreReal) {
  const std::size_t n = GetParam();
  const auto x = random_reals(n, 1109u);
  const RfftPlan plan(n);
  std::vector<c32> spec(n / 2 + 1);
  plan.execute(x, spec, 1);
  EXPECT_NEAR(spec[0].im, 0.0f, 1e-5);
  EXPECT_NEAR(spec[n / 2].im, 0.0f, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, RfftSizes,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256, 1024));

TEST(Rfft, TruncatedEqualsFullPrefix) {
  const std::size_t n = 128;
  const std::size_t keep = 20;
  const auto x = random_reals(n, 1117u);
  std::vector<c32> full(n / 2 + 1);
  RfftPlan(n).execute(x, full, 1);
  std::vector<c32> trunc(keep);
  RfftPlan(n, keep).execute(x, trunc, 1);
  EXPECT_LT(max_err(trunc, std::span<const c32>(full.data(), keep)), 1e-6);
}

TEST(Irfft, TruncatedSpectrumEqualsExplicitZeroPad) {
  const std::size_t n = 64;
  const std::size_t nonzero = 9;
  // Produce a valid half-spectrum, keep a prefix.
  const auto x = random_reals(n, 1123u);
  std::vector<c32> full(n / 2 + 1);
  RfftPlan(n).execute(x, full, 1);

  std::vector<c32> padded(full);
  for (std::size_t k = nonzero; k <= n / 2; ++k) padded[k] = c32{};
  std::vector<float> expect(n);
  IrfftPlan(n).execute(padded, expect, 1);

  std::vector<float> got(n);
  IrfftPlan(n, nonzero).execute(std::span<const c32>(full.data(), nonzero), got, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], expect[i], 1e-5);
}

TEST(Rfft, BatchedMatchesSingle) {
  const std::size_t n = 64;
  const std::size_t batch = 5;
  const auto x = random_reals(batch * n, 1129u);
  const RfftPlan plan(n, 16);
  std::vector<c32> batched(batch * 16);
  plan.execute(x, batched, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<c32> one(16);
    plan.execute(std::span<const float>(x.data() + b * n, n), one, 1);
    EXPECT_LT(max_err(std::span<const c32>(batched.data() + b * 16, 16), one), 0.0 + 1e-7);
  }
}

TEST(Rfft, CosineLandsInItsBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  std::vector<float> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = std::cos(2.0f * std::numbers::pi_v<float> * static_cast<float>(bin * j) /
                    static_cast<float>(n));
  }
  std::vector<c32> spec(n / 2 + 1);
  RfftPlan(n).execute(x, spec, 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const float expect = k == bin ? static_cast<float>(n) / 2.0f : 0.0f;
    EXPECT_NEAR(spec[k].re, expect, 1e-3) << k;
    EXPECT_NEAR(spec[k].im, 0.0f, 1e-3) << k;
  }
}

TEST(Rfft, RejectsBadSizes) {
  EXPECT_THROW(RfftPlan(2), std::invalid_argument);   // too small for the trick
  EXPECT_THROW(RfftPlan(24), std::invalid_argument);  // not pow2
  EXPECT_THROW(RfftPlan(64, 64), std::invalid_argument);  // keep > n/2+1
  EXPECT_THROW(IrfftPlan(64, 40), std::invalid_argument);
}

TEST(Rfft, LowpassRoundTripIsProjection) {
  // rfft -> keep few modes -> irfft == smoothing; applying twice == once.
  const std::size_t n = 128;
  const std::size_t modes = 8;
  const auto x = random_reals(n, 1151u);
  const RfftPlan fwd(n, modes);
  const IrfftPlan inv(n, modes);
  std::vector<c32> spec(modes);
  std::vector<float> once(n);
  fwd.execute(x, spec, 1);
  inv.execute(spec, once, 1);
  std::vector<float> twice(n);
  fwd.execute(once, spec, 1);
  inv.execute(spec, twice, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(twice[i], once[i], 1e-4);
}

}  // namespace
}  // namespace turbofno::fft
