// Real-input FFT plans (R2C / C2R): reference equivalence, conjugate
// symmetry, truncation, round trips, strided entry points, the shared plan
// cache, and the 2D real X stage.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "fft/fft2d.hpp"
#include "fft/plan.hpp"
#include "fft/plan_cache.hpp"
#include "fft/real.hpp"
#include "fft/real2d.hpp"
#include "fft/reference.hpp"
#include "test_util.hpp"

namespace turbofno::fft {
namespace {

using turbofno::testing::fft_tol;
using turbofno::testing::max_err;

std::vector<float> random_reals(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

std::vector<c32> as_complex(const std::vector<float>& x) {
  std::vector<c32> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = {x[i], 0.0f};
  return z;
}

class RfftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RfftSizes, MatchesComplexReference) {
  const std::size_t n = GetParam();
  const auto x = random_reals(n, 1101u + static_cast<unsigned>(n));
  const auto xc = as_complex(x);
  std::vector<c32> ref(n);
  reference_dft(xc, ref, n);

  const RfftPlan plan(n);
  std::vector<c32> got(n / 2 + 1);
  plan.execute(x, got, 1);
  EXPECT_LT(max_err(got, std::span<const c32>(ref.data(), n / 2 + 1)), fft_tol(n)) << "n=" << n;
}

TEST_P(RfftSizes, RoundTripRecoversSignal) {
  const std::size_t n = GetParam();
  const auto x = random_reals(n, 1103u);
  const RfftPlan fwd(n);
  const IrfftPlan inv(n);
  std::vector<c32> spec(n / 2 + 1);
  std::vector<float> back(n);
  fwd.execute(x, spec, 1);
  inv.execute(spec, back, 1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], fft_tol(n)) << "i=" << i << " n=" << n;
  }
}

TEST_P(RfftSizes, EdgeBinsAreReal) {
  const std::size_t n = GetParam();
  const auto x = random_reals(n, 1109u);
  const RfftPlan plan(n);
  std::vector<c32> spec(n / 2 + 1);
  plan.execute(x, spec, 1);
  EXPECT_NEAR(spec[0].im, 0.0f, 1e-5);
  EXPECT_NEAR(spec[n / 2].im, 0.0f, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, RfftSizes,
                         ::testing::Values(4, 8, 16, 32, 64, 128, 256, 1024));

TEST(Rfft, TruncatedEqualsFullPrefix) {
  const std::size_t n = 128;
  const std::size_t keep = 20;
  const auto x = random_reals(n, 1117u);
  std::vector<c32> full(n / 2 + 1);
  RfftPlan(n).execute(x, full, 1);
  std::vector<c32> trunc(keep);
  RfftPlan(n, keep).execute(x, trunc, 1);
  EXPECT_LT(max_err(trunc, std::span<const c32>(full.data(), keep)), 1e-6);
}

TEST(Irfft, TruncatedSpectrumEqualsExplicitZeroPad) {
  const std::size_t n = 64;
  const std::size_t nonzero = 9;
  // Produce a valid half-spectrum, keep a prefix.
  const auto x = random_reals(n, 1123u);
  std::vector<c32> full(n / 2 + 1);
  RfftPlan(n).execute(x, full, 1);

  std::vector<c32> padded(full);
  for (std::size_t k = nonzero; k <= n / 2; ++k) padded[k] = c32{};
  std::vector<float> expect(n);
  IrfftPlan(n).execute(padded, expect, 1);

  std::vector<float> got(n);
  IrfftPlan(n, nonzero).execute(std::span<const c32>(full.data(), nonzero), got, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], expect[i], 1e-5);
}

TEST(Rfft, BatchedMatchesSingle) {
  const std::size_t n = 64;
  const std::size_t batch = 5;
  const auto x = random_reals(batch * n, 1129u);
  const RfftPlan plan(n, 16);
  std::vector<c32> batched(batch * 16);
  plan.execute(x, batched, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<c32> one(16);
    plan.execute(std::span<const float>(x.data() + b * n, n), one, 1);
    EXPECT_LT(max_err(std::span<const c32>(batched.data() + b * 16, 16), one), 0.0 + 1e-7);
  }
}

TEST(Rfft, CosineLandsInItsBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  std::vector<float> x(n);
  for (std::size_t j = 0; j < n; ++j) {
    x[j] = std::cos(2.0f * std::numbers::pi_v<float> * static_cast<float>(bin * j) /
                    static_cast<float>(n));
  }
  std::vector<c32> spec(n / 2 + 1);
  RfftPlan(n).execute(x, spec, 1);
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const float expect = k == bin ? static_cast<float>(n) / 2.0f : 0.0f;
    EXPECT_NEAR(spec[k].re, expect, 1e-3) << k;
    EXPECT_NEAR(spec[k].im, 0.0f, 1e-3) << k;
  }
}

TEST(Rfft, RejectsBadSizes) {
  EXPECT_THROW(RfftPlan(2), std::invalid_argument);   // too small for the trick
  EXPECT_THROW(RfftPlan(24), std::invalid_argument);  // not pow2
  EXPECT_THROW(RfftPlan(64, 64), std::invalid_argument);  // keep > n/2+1
  EXPECT_THROW(IrfftPlan(64, 40), std::invalid_argument);
}

TEST(Rfft, LowpassRoundTripIsProjection) {
  // rfft -> keep few modes -> irfft == smoothing; applying twice == once.
  const std::size_t n = 128;
  const std::size_t modes = 8;
  const auto x = random_reals(n, 1151u);
  const RfftPlan fwd(n, modes);
  const IrfftPlan inv(n, modes);
  std::vector<c32> spec(modes);
  std::vector<float> once(n);
  fwd.execute(x, spec, 1);
  inv.execute(spec, once, 1);
  std::vector<float> twice(n);
  fwd.execute(once, spec, 1);
  inv.execute(spec, twice, 1);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(twice[i], once[i], 1e-4);
}

TEST(Rfft, StridedExecuteOneMatchesDense) {
  const std::size_t n = 64;
  const std::size_t keep = 20;
  const auto x = random_reals(2 * n, 1153u);  // column 0 of a 2-wide field
  const RfftPlan plan(n, keep);

  std::vector<float> col(n);
  for (std::size_t j = 0; j < n; ++j) col[j] = x[2 * j];
  std::vector<c32> dense(keep);
  plan.execute(col, dense, 1);

  std::vector<c32> work(plan.scratch_elems());
  for (const std::ptrdiff_t out_stride : {std::ptrdiff_t{1}, std::ptrdiff_t{3}}) {
    std::vector<c32> strided(keep * 3);
    plan.execute_one(x.data(), 2, strided.data(), out_stride, work);
    for (std::size_t k = 0; k < keep; ++k) {
      const c32 got = strided[k * static_cast<std::size_t>(out_stride)];
      EXPECT_NEAR(got.re, dense[k].re, 1e-5) << "k=" << k << " stride=" << out_stride;
      EXPECT_NEAR(got.im, dense[k].im, 1e-5) << "k=" << k << " stride=" << out_stride;
    }
  }
}

TEST(Irfft, StridedExecuteOneMatchesDense) {
  const std::size_t n = 64;
  const std::size_t nonzero = 12;
  const auto x = random_reals(n, 1163u);
  std::vector<c32> spec(n / 2 + 1);
  RfftPlan(n).execute(x, spec, 1);

  const IrfftPlan inv(n, nonzero);
  std::vector<float> dense(n);
  inv.execute(std::span<const c32>(spec.data(), nonzero), dense, 1);

  std::vector<c32> specs(nonzero * 2);
  for (std::size_t k = 0; k < nonzero; ++k) specs[2 * k] = spec[k];
  std::vector<float> strided(n * 2);
  std::vector<c32> work(inv.scratch_elems());
  inv.execute_one(specs.data(), 2, strided.data(), 2, work);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(strided[2 * j], dense[j], 1e-5) << "j=" << j;
  }
}

TEST(PlanCache, RealKeysDoNotAliasComplexPlans) {
  const std::size_t n = 128;
  PlanDesc cd;
  cd.n = n;
  const auto complex_fwd = acquire_plan(cd);
  const auto rfwd = acquire_rfft_plan(n);
  const auto rinv = acquire_irfft_plan(n);
  // Distinct transform kinds under one shape: three distinct objects.
  EXPECT_NE(static_cast<const void*>(complex_fwd.get()), static_cast<const void*>(rfwd.get()));
  EXPECT_NE(static_cast<const void*>(rfwd.get()), static_cast<const void*>(rinv.get()));
  // Re-acquiring is a cache hit yielding the same plan instance.
  plan_cache_reset_stats();
  const auto again = acquire_rfft_plan(n);
  EXPECT_EQ(again.get(), rfwd.get());
  EXPECT_GE(plan_cache_stats().hits, 1u);
  // Truncated flavors key separately from the full-bin ones.
  const auto trunc = acquire_rfft_plan(n, 10);
  EXPECT_NE(trunc.get(), rfwd.get());
  EXPECT_EQ(trunc->keep(), 10u);
}

// ---------------------------------------------------------------- 2D X stage

std::vector<c32> complex_x_stage_reference(std::size_t nx, std::size_t keep_x,
                                           const std::vector<float>& fields_in,
                                           std::size_t fields, std::size_t ny) {
  std::vector<c32> packed(fields_in.size());
  for (std::size_t i = 0; i < fields_in.size(); ++i) packed[i] = {fields_in[i], 0.0f};
  PlanDesc d;
  d.n = nx;
  d.keep = keep_x;
  const FftPlan plan(d);
  std::vector<c32> out(fields * keep_x * ny);
  fft2d_x_stage(plan, packed.data(), out.data(), fields, ny);
  return out;
}

TEST(Rfft2dXStage, MatchesComplexXStageOnRealInput) {
  const std::size_t nx = 32;
  const std::size_t ny = 16;
  const std::size_t fields = 3;
  for (const std::size_t keep_x : {std::size_t{5}, nx / 2 + 1}) {
    const auto in = random_reals(fields * nx * ny, 1171u);
    const auto ref = complex_x_stage_reference(nx, keep_x, in, fields, ny);
    std::vector<c32> got(fields * keep_x * ny);
    rfft2d_x_stage(nx, keep_x, in.data(), got.data(), fields, ny);
    EXPECT_LT(max_err(got, ref), fft_tol(nx)) << "keep_x=" << keep_x;
  }
}

TEST(Rfft2dXStage, TilesMatchWholeField) {
  const std::size_t nx = 16;
  const std::size_t ny = 8;
  const std::size_t fields = 2;
  const std::size_t keep_x = 5;
  const auto in = random_reals(fields * nx * ny, 1181u);

  std::vector<c32> whole(fields * keep_x * ny);
  rfft2d_x_stage(nx, keep_x, in.data(), whole.data(), fields, ny);

  // y-major tile layout: column y of field f lives at rows [y*keep_x, ...).
  std::vector<c32> tiles(fields * ny * keep_x);
  rfft2d_x_stage_to_tiles(nx, keep_x, in.data(), fields, ny,
                          [&](std::size_t f, std::size_t y0, std::size_t) {
                            return tiles.data() + (f * ny + y0) * keep_x;
                          });
  for (std::size_t f = 0; f < fields; ++f) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t k = 0; k < keep_x; ++k) {
        const c32 a = tiles[(f * ny + y) * keep_x + k];
        const c32 b = whole[(f * keep_x + k) * ny + y];
        EXPECT_NEAR(a.re, b.re, 1e-5) << f << "," << y << "," << k;
        EXPECT_NEAR(a.im, b.im, 1e-5) << f << "," << y << "," << k;
      }
    }
  }
}

TEST(Irfft2dXStage, RoundTripRecoversField) {
  const std::size_t nx = 32;
  const std::size_t ny = 8;
  const std::size_t fields = 2;
  const std::size_t keep_x = nx / 2 + 1;
  const auto in = random_reals(fields * nx * ny, 1187u);
  std::vector<c32> spec(fields * keep_x * ny);
  rfft2d_x_stage(nx, keep_x, in.data(), spec.data(), fields, ny);
  std::vector<float> back(fields * nx * ny);
  irfft2d_x_stage(nx, keep_x, spec.data(), back.data(), fields, ny);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(back[i], in[i], fft_tol(nx)) << "i=" << i;
  }
}

TEST(Irfft2dXStage, FromTilesMatchesWholeField) {
  const std::size_t nx = 16;
  const std::size_t ny = 8;
  const std::size_t fields = 2;
  const std::size_t nonzero_x = 5;
  const auto in = random_reals(fields * nx * ny, 1193u);
  std::vector<c32> spec(fields * nonzero_x * ny);
  rfft2d_x_stage(nx, nonzero_x, in.data(), spec.data(), fields, ny);

  std::vector<float> whole(fields * nx * ny);
  irfft2d_x_stage(nx, nonzero_x, spec.data(), whole.data(), fields, ny);

  // Repack the x-major spectrum into the y-major tile layout and scatter.
  std::vector<c32> tiles(fields * ny * nonzero_x);
  for (std::size_t f = 0; f < fields; ++f) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t k = 0; k < nonzero_x; ++k) {
        tiles[(f * ny + y) * nonzero_x + k] = spec[(f * nonzero_x + k) * ny + y];
      }
    }
  }
  std::vector<float> from_tiles(fields * nx * ny);
  irfft2d_x_stage_from_tiles(nx, nonzero_x,
                             [&](std::size_t f, std::size_t y0, std::size_t) {
                               return static_cast<const c32*>(tiles.data() +
                                                              (f * ny + y0) * nonzero_x);
                             },
                             from_tiles.data(), fields, ny);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_NEAR(from_tiles[i], whole[i], 1e-5) << "i=" << i;
  }
}

}  // namespace
}  // namespace turbofno::fft
