// Parity tests for the explicit SIMD layer (tensor/simd.hpp) and every
// kernel built on it: cvec ops against plain c32 arithmetic, the split
// CGEMM against the naive reference at non-tile-multiple dims, the FFT
// butterfly kernels across all radix paths and odd prunings, and the fused
// rank updates.  Each test runs the scalar backend and, when the binary was
// compiled with AVX2 support, the AVX2 backend through identical sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "fft/kernels.hpp"
#include "fft/plan.hpp"
#include "fft/reference.hpp"
#include "fft/twiddle.hpp"
#include "fused/fft_variant.hpp"
#include "gemm/cgemm.hpp"
#include "gemm/reference.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/simd.hpp"
#include "test_util.hpp"

namespace turbofno {
namespace {

using testing::max_err;
using testing::random_signal;

// ------------------------------------------------------------- cvec op parity

template <class B>
void check_cvec_ops() {
  const std::size_t lanes = B::lanes;
  const std::vector<c32> a = random_signal(lanes, 101u);
  const std::vector<c32> b = random_signal(lanes, 102u);

  std::vector<c32> out(lanes);

  // load/store round trip.
  B::store(out.data(), B::load(a.data()));
  EXPECT_EQ(0.0, max_err(out, a));

  // Arithmetic, lane by lane, against c32 operators.
  std::vector<c32> want(lanes);
  B::store(out.data(), B::cmul(B::load(a.data()), B::load(b.data())));
  for (std::size_t i = 0; i < lanes; ++i) want[i] = a[i] * b[i];
  EXPECT_LT(max_err(out, want), 1e-6);

  B::store(out.data(), B::cmadd(B::load(a.data()), B::load(b.data()), B::load(a.data())));
  for (std::size_t i = 0; i < lanes; ++i) {
    want[i] = a[i];
    cmadd(want[i], b[i], a[i]);
  }
  EXPECT_LT(max_err(out, want), 1e-6);

  B::store(out.data(), B::add(B::load(a.data()), B::load(b.data())));
  for (std::size_t i = 0; i < lanes; ++i) want[i] = a[i] + b[i];
  EXPECT_EQ(0.0, max_err(out, want));

  B::store(out.data(), B::sub(B::load(a.data()), B::load(b.data())));
  for (std::size_t i = 0; i < lanes; ++i) want[i] = a[i] - b[i];
  EXPECT_EQ(0.0, max_err(out, want));

  B::store(out.data(), B::mul_neg_i(B::load(a.data())));
  for (std::size_t i = 0; i < lanes; ++i) want[i] = mul_neg_i(a[i]);
  EXPECT_EQ(0.0, max_err(out, want));

  B::store(out.data(), B::mul_pos_i(B::load(a.data())));
  for (std::size_t i = 0; i < lanes; ++i) want[i] = mul_pos_i(a[i]);
  EXPECT_EQ(0.0, max_err(out, want));

  B::store(out.data(), B::scale(B::load(a.data()), 0.75f));
  for (std::size_t i = 0; i < lanes; ++i) want[i] = a[i] * 0.75f;
  EXPECT_EQ(0.0, max_err(out, want));

  // Broadcast fills every lane.
  B::store(out.data(), B::broadcast(b[0]));
  for (std::size_t i = 0; i < lanes; ++i) EXPECT_EQ(out[i], b[0]);

  // Split loads/stores agree with interleaved ones.
  std::vector<float> re(lanes);
  std::vector<float> im(lanes);
  B::store_split(re.data(), im.data(), B::load(a.data()));
  for (std::size_t i = 0; i < lanes; ++i) {
    EXPECT_EQ(re[i], a[i].re);
    EXPECT_EQ(im[i], a[i].im);
  }
  B::store(out.data(), B::load_split(re.data(), im.data()));
  EXPECT_EQ(0.0, max_err(out, a));
}

template <class B>
void check_cvec_partials() {
  const std::size_t lanes = B::lanes;
  const std::vector<c32> a = random_signal(lanes, 103u);
  const c32 zero{};
  const c32 sentinel{-3.0f, 5.0f};
  for (std::size_t count = 0; count <= lanes; ++count) {
    // Partial load: first `count` lanes real, the rest zero.
    std::vector<c32> out(lanes, c32{7.0f, 7.0f});
    B::store(out.data(), B::load_partial(a.data(), count));
    for (std::size_t i = 0; i < lanes; ++i) {
      const c32 want = i < count ? a[i] : zero;
      EXPECT_EQ(out[i], want) << "count=" << count << " lane=" << i;
    }
    // Partial store: lanes past `count` must be untouched.
    std::vector<c32> dst(lanes, sentinel);
    B::store_partial(dst.data(), B::load(a.data()), count);
    for (std::size_t i = 0; i < lanes; ++i) {
      const c32 want = i < count ? a[i] : sentinel;
      EXPECT_EQ(dst[i], want) << "count=" << count << " lane=" << i;
    }
  }
}

TEST(SimdCvec, ScalarOps) { check_cvec_ops<simd::ScalarBackend>(); }
TEST(SimdCvec, ScalarPartials) { check_cvec_partials<simd::ScalarBackend>(); }

#if TURBOFNO_SIMD_HAVE_AVX2
TEST(SimdCvec, Avx2Ops) { check_cvec_ops<simd::Avx2Backend>(); }
TEST(SimdCvec, Avx2Partials) { check_cvec_partials<simd::Avx2Backend>(); }
#endif

TEST(SimdCvec, ActiveBackendReport) {
#if TURBOFNO_SIMD_HAVE_AVX2
  EXPECT_STREQ("avx2", simd::active_backend());
  EXPECT_EQ(8u, simd::kLanes);
#else
  EXPECT_STREQ("scalar", simd::active_backend());
  EXPECT_EQ(1u, simd::kLanes);
#endif
  EXPECT_EQ(simd::round_up_lanes(1), simd::kLanes);
  EXPECT_EQ(simd::round_up_lanes(simd::kLanes), simd::kLanes);
}

TEST(SimdCvec, SplitInterleaveRoundTrip) {
  for (const std::size_t n : {1u, 3u, 7u, 8u, 9u, 31u, 64u}) {
    const std::vector<c32> src = random_signal(n, 104u + static_cast<unsigned>(n));
    std::vector<float> re(n);
    std::vector<float> im(n);
    std::vector<c32> back(n);
    simd::split_planes(src.data(), re.data(), im.data(), n);
    simd::interleave_planes(re.data(), im.data(), back.data(), n);
    EXPECT_EQ(0.0, max_err(back, src)) << "n=" << n;
  }
}

// --------------------------------------------------------------- cgemm parity

template <class Cfg, class B>
void check_cgemm_backend() {
  // Dims deliberately not multiples of the tile config; alpha/beta exercise
  // both epilogue paths.
  const c32 alphas[] = {c32{1.0f, 0.0f}, c32{0.7f, -0.3f}};
  const c32 betas[] = {c32{0.0f, 0.0f}, c32{-0.5f, 0.25f}};
  const std::size_t dims[][3] = {{1, 1, 1},    {3, 5, 7},    {17, 9, 33},
                                 {33, 31, 13}, {64, 64, 64}, {65, 33, 17}};
  unsigned seed = 1000;
  for (const auto& d : dims) {
    const std::size_t M = d[0];
    const std::size_t N = d[1];
    const std::size_t K = d[2];
    for (const c32 alpha : alphas) {
      for (const c32 beta : betas) {
        const std::vector<c32> A = random_signal(M * K, ++seed);
        const std::vector<c32> Bm = random_signal(K * N, ++seed);
        std::vector<c32> C = random_signal(M * N, ++seed);
        std::vector<c32> want = C;

        gemm::cgemm_tiled_backend<Cfg, B>(M, N, K, alpha, A.data(), K, Bm.data(), N, beta,
                                          C.data(), N);
        gemm::cgemm_reference(M, N, K, alpha, A.data(), K, Bm.data(), N, beta, want.data(), N);

        // K accumulated floats; the reference accumulates in the same
        // precision, so the error is just reassociation noise.
        const double tol = 1e-5 * std::sqrt(static_cast<double>(K)) * 4.0;
        EXPECT_LT(max_err(C, want), tol) << "M=" << M << " N=" << N << " K=" << K;
      }
    }
  }
}

TEST(SimdCgemm, ScalarFusedTiles) {
  check_cgemm_backend<gemm::FusedTiles, simd::ScalarBackend>();
}
TEST(SimdCgemm, ScalarStandaloneTiles) {
  check_cgemm_backend<gemm::StandaloneTiles, simd::ScalarBackend>();
}
#if TURBOFNO_SIMD_HAVE_AVX2
TEST(SimdCgemm, Avx2FusedTiles) { check_cgemm_backend<gemm::FusedTiles, simd::Avx2Backend>(); }
TEST(SimdCgemm, Avx2StandaloneTiles) {
  check_cgemm_backend<gemm::StandaloneTiles, simd::Avx2Backend>();
}
#endif

// ----------------------------------------------------------------- fft parity

template <class B>
void check_stockham_passes() {
  // Drive a full transform through the backend-explicit pass kernels and
  // compare against the double-precision DFT, covering the radix-4 path,
  // the radix-2 fallback pass, and sub-lane strides.
  for (const std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u, 256u, 512u}) {
    const std::vector<c32> input = random_signal(n, 300u + static_cast<unsigned>(n));
    const fft::TwiddleTable& tw = fft::twiddles_for(n);

    std::vector<c32> a = input;
    std::vector<c32> b(n);
    c32* src = a.data();
    c32* dst = b.data();
    std::size_t len = n;
    std::size_t s = 1;
    while (len > 1) {
      if (len % 4 == 0) {
        fft::kernels::pass_radix4<B, false>(src, dst, len / 4, s, tw.forward(len));
        len /= 4;
        s *= 4;
      } else {
        fft::kernels::pass_radix2<B, false>(src, dst, len / 2, s, tw.forward(len));
        len /= 2;
        s *= 2;
      }
      std::swap(src, dst);
    }

    std::vector<c32> want(n);
    fft::reference_dft(input, want, n);
    EXPECT_LT(max_err({src, n}, want), testing::fft_tol(n)) << "n=" << n;
  }
}

TEST(SimdFft, ScalarStockhamPasses) { check_stockham_passes<simd::ScalarBackend>(); }
#if TURBOFNO_SIMD_HAVE_AVX2
TEST(SimdFft, Avx2StockhamPasses) { check_stockham_passes<simd::Avx2Backend>(); }
#endif

template <class B>
void check_stockham_radix2_only() {
  // The pure radix-2 schedule walks s = 1, 2, 4, ... and so exercises every
  // sub-lane (s < planes) radix-2 path, which the mixed-radix sweep above
  // never reaches (its s jumps 1 -> 4).
  for (const std::size_t n : {2u, 4u, 8u, 16u, 64u, 128u}) {
    const std::vector<c32> input = random_signal(n, 340u + static_cast<unsigned>(n));
    const fft::TwiddleTable& tw = fft::twiddles_for(n);
    std::vector<c32> a = input;
    std::vector<c32> b(n);
    c32* src = a.data();
    c32* dst = b.data();
    std::size_t len = n;
    std::size_t s = 1;
    while (len > 1) {
      fft::kernels::pass_radix2<B, false>(src, dst, len / 2, s, tw.forward(len));
      len /= 2;
      s *= 2;
      std::swap(src, dst);
    }
    std::vector<c32> want(n);
    fft::reference_dft(input, want, n);
    EXPECT_LT(max_err({src, n}, want), testing::fft_tol(n)) << "n=" << n;
  }
}

TEST(SimdFft, ScalarStockhamRadix2Only) { check_stockham_radix2_only<simd::ScalarBackend>(); }
#if TURBOFNO_SIMD_HAVE_AVX2
TEST(SimdFft, Avx2StockhamRadix2Only) { check_stockham_radix2_only<simd::Avx2Backend>(); }

TEST(SimdFft, SubLanePassesMatchScalarBackend) {
  // Per-pass parity of the lane-major sub-lane paths against the scalar
  // backend, including l just past a vector (tail handling) and both
  // directions (the radix-4 quarter-turn differs).
  struct Case {
    std::size_t l, s;
    bool radix4;
  };
  for (const auto& [l, s, radix4] : std::vector<Case>{{4, 1, false},
                                                      {5, 1, false},
                                                      {8, 1, false},
                                                      {2, 2, false},
                                                      {3, 2, false},
                                                      {8, 2, false},
                                                      {4, 1, true},
                                                      {6, 1, true},
                                                      {16, 1, true}}) {
    const std::size_t radix = radix4 ? 4 : 2;
    const std::size_t len = radix * l;  // sub-transform length of this pass
    const std::size_t elems = s * len;
    // Build the pass twiddles directly (kernels accept any l; the table
    // only serves power-of-two lengths, which would exclude the tail cases).
    std::vector<c32> wf(len / 2), wi(len / 2);
    for (std::size_t j = 0; j < len / 2; ++j) {
      const double ang = -2.0 * M_PI * static_cast<double>(j) / static_cast<double>(len);
      wf[j] = c32{static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang))};
      wi[j] = c32{wf[j].re, -wf[j].im};
    }
    const auto src = random_signal(elems, 350u + static_cast<unsigned>(elems));
    std::vector<c32> ds(elems), dv(elems);
    for (const bool inverse : {false, true}) {
      const std::span<const c32> w = inverse ? wi : wf;
      if (radix4) {
        if (inverse) {
          fft::kernels::pass_radix4<simd::ScalarBackend, true>(src.data(), ds.data(), l, s, w);
          fft::kernels::pass_radix4<simd::Avx2Backend, true>(src.data(), dv.data(), l, s, w);
        } else {
          fft::kernels::pass_radix4<simd::ScalarBackend, false>(src.data(), ds.data(), l, s, w);
          fft::kernels::pass_radix4<simd::Avx2Backend, false>(src.data(), dv.data(), l, s, w);
        }
      } else {
        if (inverse) {
          fft::kernels::pass_radix2<simd::ScalarBackend, true>(src.data(), ds.data(), l, s, w);
          fft::kernels::pass_radix2<simd::Avx2Backend, true>(src.data(), dv.data(), l, s, w);
        } else {
          fft::kernels::pass_radix2<simd::ScalarBackend, false>(src.data(), ds.data(), l, s, w);
          fft::kernels::pass_radix2<simd::Avx2Backend, false>(src.data(), dv.data(), l, s, w);
        }
      }
      EXPECT_LT(max_err(dv, ds), 1e-6)
          << "l=" << l << " s=" << s << " radix=" << radix << " inv=" << inverse;
    }
  }
}
#endif

#if TURBOFNO_SIMD_HAVE_AVX2
TEST(SimdFft, BlockButterflyBackendsAgree) {
  // The pruned-DIF block butterfly must produce identical pruning decisions
  // and near-identical arithmetic on both backends, across odd nonzero
  // prefixes z and both need_odd settings.
  const std::size_t n = 64;
  const std::size_t half = n / 2;
  const fft::TwiddleTable& tw = fft::twiddles_for(n);
  const auto w = tw.forward(n);
  for (const std::size_t z : {1u, 3u, 7u, 31u, 32u, 33u, 47u, 63u, 64u}) {
    for (const bool need_odd : {false, true}) {
      std::vector<c32> xs = random_signal(n, 400u + static_cast<unsigned>(z));
      std::vector<c32> xv = xs;
      const auto ops_s =
          fft::kernels::block_butterfly<simd::ScalarBackend>(xs.data(), half, z, need_odd, w);
      const auto ops_v =
          fft::kernels::block_butterfly<simd::Avx2Backend>(xv.data(), half, z, need_odd, w);
      EXPECT_EQ(ops_s, ops_v) << "z=" << z << " need_odd=" << need_odd;
      EXPECT_LT(max_err(xv, xs), 1e-6) << "z=" << z << " need_odd=" << need_odd;
    }
  }
}
#endif

TEST(SimdFft, PrunedPlansOddFiltering) {
  // End-to-end pruned plans (the active backend) at keep/nonzero values
  // that are not lane multiples, against the double-precision reference.
  const std::size_t n = 128;
  for (const std::size_t keep : {1u, 5u, 13u, 64u, 127u}) {
    for (const std::size_t nonzero : {3u, 17u, 96u, 128u}) {
      const std::vector<c32> input = random_signal(nonzero, 500u + static_cast<unsigned>(keep));

      fft::PlanDesc d;
      d.n = n;
      d.dir = fft::Direction::Forward;
      d.keep = keep;
      d.nonzero = nonzero;
      const fft::FftPlan plan(d);

      std::vector<c32> out(keep);
      plan.execute(input, out, 1);

      std::vector<c32> want(keep);
      fft::reference_dft(input, want, n);
      EXPECT_LT(max_err(out, want), testing::fft_tol(n))
          << "keep=" << keep << " nonzero=" << nonzero;
    }
  }
}

// ---------------------------------------------------------- fused rank update

TEST(SimdFused, RankUpdateSplitMatchesInterleaved) {
  // Odd m forces lane padding in the split path; both must agree with the
  // plain interleaved update.
  for (const std::size_t m : {1u, 5u, 8u, 13u, 33u, 64u}) {
    const std::size_t out_dim = 6;
    const std::size_t hidden = 12;
    const std::size_t kc = 5;
    const std::size_t k0 = 4;
    const std::size_t ld = simd::round_up_lanes(m);

    const std::vector<c32> W = random_signal(out_dim * hidden, 600u + static_cast<unsigned>(m));
    const std::vector<c32> At = random_signal(kc * m, 601u);
    std::vector<c32> C = random_signal(out_dim * m, 602u);

    // Interleaved oracle.
    std::vector<c32> want = C;
    fused::rank_update(want.data(), m, W.data(), hidden, k0, At.data(), m, out_dim, m, kc);

    // Split path with zero-padded planes.
    AlignedBuffer<float> tsplit(2 * kc * ld);
    AlignedBuffer<float> acc(2 * out_dim * ld);
    float* tre = tsplit.data();
    float* tim = tre + kc * ld;
    float* are = acc.data();
    float* aim = are + out_dim * ld;
    for (std::size_t kk = 0; kk < kc; ++kk) {
      simd::split_planes(At.data() + kk * m, tre + kk * ld, tim + kk * ld, m);
    }
    for (std::size_t o = 0; o < out_dim; ++o) {
      simd::split_planes(C.data() + o * m, are + o * ld, aim + o * ld, m);
    }
    fused::rank_update_split(are, aim, W.data(), hidden, k0, tre, tim, ld, out_dim, kc);

    std::vector<c32> got(out_dim * m);
    for (std::size_t o = 0; o < out_dim; ++o) {
      simd::interleave_planes(are + o * ld, aim + o * ld, got.data() + o * m, m);
    }
    EXPECT_LT(max_err(got, want), 1e-5) << "m=" << m;
  }
}

}  // namespace
}  // namespace turbofno
