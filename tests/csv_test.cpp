// CSV export utility.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/csv.hpp"

namespace turbofno::trace {
namespace {

TEST(Csv, PlainSerialization) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "2"});
  w.add_row({"x", "y"});
  EXPECT_EQ(w.str(), "a,b\n1,2\nx,y\n");
}

TEST(Csv, QuotesCommasAndQuotes) {
  CsvWriter w({"name", "note"});
  w.add_row({"a,b", "he said \"hi\""});
  EXPECT_EQ(w.str(), "name,note\n\"a,b\",\"he said \"\"hi\"\"\"\n");
}

TEST(Csv, RowWidthChecked) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only"}), std::invalid_argument);
}

TEST(Csv, WriteToFileRoundTrips) {
  CsvWriter w({"k", "v"});
  w.add_row({"x", "1"});
  ASSERT_TRUE(w.write_to("/tmp", "turbofno_csv_test"));
  std::ifstream f("/tmp/turbofno_csv_test.csv");
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
  std::getline(f, line);
  EXPECT_EQ(line, "x,1");
  std::remove("/tmp/turbofno_csv_test.csv");
}

TEST(Csv, EmptyDirIsRejectedQuietly) {
  CsvWriter w({"a"});
  EXPECT_FALSE(w.write_to("", "x"));
  EXPECT_FALSE(w.write_to("/definitely/not/a/dir", "x"));
}

TEST(Csv, EnvDirReflectsEnvironment) {
  ::unsetenv("TURBOFNO_CSV_DIR");
  EXPECT_TRUE(CsvWriter::env_dir().empty());
  ::setenv("TURBOFNO_CSV_DIR", "/tmp", 1);
  EXPECT_EQ(CsvWriter::env_dir(), "/tmp");
  ::unsetenv("TURBOFNO_CSV_DIR");
}

}  // namespace
}  // namespace turbofno::trace
