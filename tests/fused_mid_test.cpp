// The fused 2D middle-stage schedule (TURBOFNO_FUSED_MID): bitwise
// equivalence against the unfused schedule across every ladder variant,
// batched entry points, group-boundary handling, both X-stage schedules,
// FftPlan2d's per-field fused execute, and the steady-state no-allocation
// property of the tile path.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fft/fft2d.hpp"
#include "fft/reference.hpp"
#include "fused/ladder.hpp"
#include "fused/pipeline2d.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "test_util.hpp"

namespace turbofno {
namespace {

using baseline::Spectral2dProblem;
using fused::Variant;
using testing::fft_tol;
using testing::max_err;
using testing::random_signal;

// Restores the schedule knobs (middle fusion, X-stage transpose, group
// override) even when a test fails mid-flight.
struct KnobGuard {
  bool prev_mid = fft::fused_mid_enabled();
  bool prev_tr = fft::fft2d_transpose_enabled();
  ~KnobGuard() {
    fft::set_fused_mid(prev_mid);
    fft::set_fft2d_transpose(prev_tr);
    fused::set_fused_mid_group(0);
  }
};

bool same_bits(std::span<const c32> a, std::span<const c32> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(c32)) == 0;
}

// ------------------------------------------------ pipeline ladder parity

struct MidCase {
  Spectral2dProblem prob;
  std::size_t group;  // fused-middle group override (0 = default policy)
};

class FusedMidLadder : public ::testing::TestWithParam<MidCase> {};

TEST_P(FusedMidLadder, BitwiseMatchesUnfusedScheduleAllVariants) {
  // The fused middle reorders memory, not arithmetic: every 1D transform
  // still gathers the same values into the same contiguous work buffer and
  // the k-loop accumulates in the same order, so the schedules must agree
  // bit for bit — for every ladder variant, under both X-stage schedules.
  const KnobGuard guard;
  const auto& [prob, group] = GetParam();
  const auto u = random_signal(prob.input_elems(), 811u + static_cast<unsigned>(prob.nx));
  const auto w = random_signal(prob.weight_elems(), 813u);

  for (const bool transposed : {true, false}) {
    fft::set_fft2d_transpose(transposed);
    for (const auto var : fused::kAllVariants) {
      auto pipe = fused::make_pipeline2d(var, prob);

      fft::set_fused_mid(false);
      std::vector<c32> v_unfused(prob.output_elems());
      pipe->run(u, w, v_unfused);

      fft::set_fused_mid(true);
      fused::set_fused_mid_group(group);
      std::vector<c32> v_fused(prob.output_elems());
      pipe->run(u, w, v_fused);

      EXPECT_TRUE(same_bits(v_fused, v_unfused))
          << pipe->name() << (transposed ? " transposed" : " per-column")
          << " group=" << group;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedMidLadder,
    ::testing::Values(MidCase{{1, 8, 8, 16, 16, 4, 4}, 0},
                      MidCase{{3, 8, 8, 16, 32, 8, 8}, 1},    // B % group == 0
                      MidCase{{5, 8, 6, 16, 16, 4, 8}, 2},    // ragged last group
                      MidCase{{2, 12, 6, 32, 16, 8, 4}, 0},   // K not a k_tb multiple
                      MidCase{{2, 6, 10, 16, 16, 16, 16}, 1}, // no truncation
                      MidCase{{1, 8, 8, 32, 32, 1, 1}, 0},    // extreme truncation
                      MidCase{{4, 8, 8, 16, 64, 4, 16}, 3})); // ny spanning slabs

TEST(FusedMidBatched, MicroBatchPrefixesBitwiseMatchAcrossSchedules) {
  // The serving path: micro-batches below capacity must agree between the
  // schedules too, including micro-batches that are not a multiple of the
  // fused group size.
  const KnobGuard guard;
  const Spectral2dProblem p{5, 8, 8, 16, 16, 4, 4};
  const auto u = random_signal(p.input_elems(), 821u);
  const auto w = random_signal(p.weight_elems(), 823u);
  const std::size_t in_stride = p.hidden * p.nx * p.ny;
  const std::size_t out_stride = p.out_dim * p.nx * p.ny;
  const std::span<const c32> uspan{u};

  for (const auto var : fused::kAllVariants) {
    auto pipe = fused::make_pipeline2d(var, p);
    for (std::size_t b = 1; b <= p.batch; ++b) {
      fft::set_fused_mid(false);
      std::vector<c32> ref(b * out_stride);
      pipe->run_batched(uspan.first(b * in_stride), w, ref, b);

      fft::set_fused_mid(true);
      fused::set_fused_mid_group(2);
      std::vector<c32> got(b * out_stride);
      pipe->run_batched(uspan.first(b * in_stride), w, got, b);
      EXPECT_TRUE(same_bits(got, ref)) << pipe->name() << " micro-batch " << b;
    }
  }
}

TEST(FusedMidLadderReference, FusedDefaultMatchesDirectReferenceViaBaseline) {
  // Anchor the fused schedule to ground truth (not only to its sibling):
  // the baseline pipeline computes through a completely different code path.
  const KnobGuard guard;
  fft::set_fused_mid(true);
  const Spectral2dProblem p{2, 16, 12, 32, 64, 8, 16};
  const auto u = random_signal(p.input_elems(), 827u);
  const auto w = random_signal(p.weight_elems(), 829u);
  auto base = fused::make_pipeline2d(Variant::PyTorch, p);
  std::vector<c32> vb(p.output_elems());
  base->run(u, w, vb);
  for (const auto var : {Variant::FftOpt, Variant::FusedFftGemm, Variant::FusedGemmIfft,
                         Variant::FullyFused}) {
    auto pipe = fused::make_pipeline2d(var, p);
    std::vector<c32> vo(p.output_elems());
    pipe->run(u, w, vo);
    EXPECT_LT(testing::rel_err(vo, vb), 1e-4) << pipe->name();
  }
}

// ------------------------------------------------ FftPlan2d fused execute

fft::FftPlan2d make2d(std::size_t nx, std::size_t ny, fft::Direction dir, std::size_t kx = 0,
                      std::size_t ky = 0) {
  fft::Plan2dDesc d;
  d.nx = nx;
  d.ny = ny;
  d.dir = dir;
  d.keep_x = kx;
  d.keep_y = ky;
  return fft::FftPlan2d(d);
}

// FftPlan2d only takes the fused per-field path when the batch can feed the
// worker pool; pin one thread so small-batch cases deterministically
// exercise it regardless of the test host's core count.
struct OneThreadGuard {
  OneThreadGuard() { runtime::set_thread_count(1); }
  ~OneThreadGuard() { runtime::set_thread_count(0); }
};

TEST(FusedMidPlan2d, BitwiseMatchesUnfusedBothDirectionsAndSchedules) {
  const KnobGuard guard;
  const OneThreadGuard threads;
  struct Case {
    std::size_t nx, ny, kx, ky, batch;
  };
  for (const auto& [nx, ny, kx, ky, batch] :
       {Case{2, 2, 0, 0, 1}, Case{2, 64, 0, 0, 2}, Case{64, 2, 0, 0, 2},
        Case{32, 32, 8, 4, 3}, Case{16, 64, 4, 16, 2}, Case{128, 32, 32, 8, 1}}) {
    const std::size_t kxe = kx == 0 ? nx : kx;
    const std::size_t kye = ky == 0 ? ny : ky;
    const auto field = random_signal(batch * nx * ny, 831u + static_cast<unsigned>(nx + ny));
    const auto spec = random_signal(batch * kxe * kye, 833u + static_cast<unsigned>(nx + ny));
    const fft::FftPlan2d fwd = make2d(nx, ny, fft::Direction::Forward, kx, ky);
    const fft::FftPlan2d inv = make2d(nx, ny, fft::Direction::Inverse, kx, ky);

    for (const bool transposed : {true, false}) {
      fft::set_fft2d_transpose(transposed);
      std::vector<c32> f0(batch * kxe * kye), f1(batch * kxe * kye);
      std::vector<c32> i0(batch * nx * ny), i1(batch * nx * ny);
      fft::set_fused_mid(false);
      fwd.execute(field, f0, batch);
      inv.execute(spec, i0, batch);
      fft::set_fused_mid(true);
      fwd.execute(field, f1, batch);
      inv.execute(spec, i1, batch);
      EXPECT_TRUE(same_bits(f1, f0)) << nx << "x" << ny << " fwd tr=" << transposed;
      EXPECT_TRUE(same_bits(i1, i0)) << nx << "x" << ny << " inv tr=" << transposed;
    }
  }
}

TEST(FusedMidPlan2d, FusedForwardMatchesReference) {
  const KnobGuard guard;
  const OneThreadGuard threads;
  fft::set_fused_mid(true);
  const std::size_t nx = 16, ny = 32;
  const auto in = random_signal(nx * ny, 839u);
  std::vector<c32> out(nx * ny);
  make2d(nx, ny, fft::Direction::Forward).execute(in, out, 1);

  std::vector<c32> mid(nx * ny), col(nx), colf(nx), want(nx * ny);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) col[x] = in[x * ny + y];
    fft::reference_dft(col, colf, nx);
    for (std::size_t x = 0; x < nx; ++x) mid[x * ny + y] = colf[x];
  }
  for (std::size_t x = 0; x < nx; ++x) {
    fft::reference_dft(std::span<const c32>(mid.data() + x * ny, ny),
                       std::span<c32>(want.data() + x * ny, ny), ny);
  }
  EXPECT_LT(max_err(out, want), fft_tol(nx * ny));
}

// ------------------------------------------------------- arena steady state

TEST(FusedMidScratch, SteadyStateDoesNotGrowOnTheTilePath) {
  // The tile path must reach a zero-per-forward allocation steady state:
  // after one warm-up run, repeated forwards grow neither the calling
  // thread's arena nor (observably) anything else the run touches.
  const KnobGuard guard;
  fft::set_fused_mid(true);
  fused::set_fused_mid_group(2);
  const Spectral2dProblem p{3, 8, 8, 32, 32, 8, 8};
  const auto u = random_signal(p.input_elems(), 841u);
  const auto w = random_signal(p.weight_elems(), 843u);
  std::vector<c32> v(p.output_elems());

  auto pipe = fused::make_pipeline2d(Variant::FullyFused, p);
  pipe->run(u, w, v);  // warm-up sizes the arena and the staging tiles
  const std::size_t reserved = runtime::tls_scratch().bytes_reserved();
  EXPECT_GT(reserved, 0u);
  for (int i = 0; i < 10; ++i) pipe->run(u, w, v);
  EXPECT_EQ(reserved, runtime::tls_scratch().bytes_reserved());

  // FftPlan2d's fused execute shares the property.
  const OneThreadGuard threads;  // batch=1 must still take the fused path
  const fft::FftPlan2d plan = make2d(p.nx, p.ny, fft::Direction::Forward, 8, 8);
  std::vector<c32> spec(8 * 8);
  plan.execute(std::span<const c32>(u).first(p.nx * p.ny), spec, 1);
  const std::size_t reserved2 = runtime::tls_scratch().bytes_reserved();
  for (int i = 0; i < 10; ++i) {
    plan.execute(std::span<const c32>(u).first(p.nx * p.ny), spec, 1);
  }
  EXPECT_EQ(reserved2, runtime::tls_scratch().bytes_reserved());
}

}  // namespace
}  // namespace turbofno
