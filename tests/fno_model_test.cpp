// Full FNO model: shape handling, determinism, backend equivalence at the
// model level, and numeric health on realistic workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/fno.hpp"
#include "core/workload.hpp"
#include "test_util.hpp"

namespace turbofno::core {
namespace {

using turbofno::testing::max_err;
using turbofno::testing::random_signal;
using turbofno::testing::rel_err;

Fno1dConfig small_1d_cfg(Backend backend) {
  Fno1dConfig cfg;
  cfg.in_channels = 2;
  cfg.hidden = 16;
  cfg.out_channels = 1;
  cfg.n = 64;
  cfg.modes = 16;
  cfg.layers = 3;
  cfg.backend = backend;
  return cfg;
}

TEST(Fno1dModel, ForwardProducesFiniteOutput) {
  const std::size_t batch = 3;
  const auto cfg = small_1d_cfg(Backend::FullyFused);
  Fno1d model(cfg);
  model.reserve(batch);
  std::vector<c32> u(batch * cfg.in_channels * cfg.n);
  burgers_batch(u, batch, cfg.in_channels, cfg.n, 42u);
  std::vector<c32> v(batch * cfg.out_channels * cfg.n, c32{});
  model.forward(u, v);
  double energy = 0.0;
  for (const auto& x : v) {
    ASSERT_TRUE(std::isfinite(x.re) && std::isfinite(x.im));
    energy += norm2(x);
  }
  EXPECT_GT(energy, 0.0) << "model must not be identically zero";
}

TEST(Fno1dModel, DeterministicAcrossRuns) {
  const std::size_t batch = 2;
  const auto cfg = small_1d_cfg(Backend::FullyFused);
  Fno1d model(cfg);
  model.reserve(batch);
  std::vector<c32> u(batch * cfg.in_channels * cfg.n);
  burgers_batch(u, batch, cfg.in_channels, cfg.n, 7u);
  std::vector<c32> v1(batch * cfg.out_channels * cfg.n);
  std::vector<c32> v2(batch * cfg.out_channels * cfg.n);
  model.forward(u, v1);
  model.forward(u, v2);
  EXPECT_EQ(max_err(v1, v2), 0.0);
}

TEST(Fno1dModel, AllBackendsAgreeEndToEnd) {
  const std::size_t batch = 2;
  std::vector<c32> u(batch * 2 * 64);
  burgers_batch(u, batch, 2, 64, 11u);
  std::vector<std::vector<c32>> outs;
  for (const auto backend :
       {Backend::PyTorch, Backend::FftOpt, Backend::FusedFftGemm, Backend::FusedGemmIfft,
        Backend::FullyFused}) {
    Fno1d model(small_1d_cfg(backend));
    model.reserve(batch);
    std::vector<c32> v(batch * 1 * 64, c32{});
    model.forward(u, v);
    outs.push_back(std::move(v));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_LT(rel_err(outs[i], outs[0]), 5e-4) << "backend " << i;
  }
}

TEST(Fno1dModel, SingleLayerNoActivationIsLinearOperator) {
  Fno1dConfig cfg = small_1d_cfg(Backend::FullyFused);
  cfg.layers = 1;  // single layer => final layer => no activation
  Fno1d model(cfg);
  const auto u1 = random_signal(cfg.in_channels * cfg.n, 909u);
  const auto u2 = random_signal(cfg.in_channels * cfg.n, 911u);
  std::vector<c32> mix(u1.size());
  for (std::size_t i = 0; i < mix.size(); ++i) mix[i] = u1[i] + u2[i];
  std::vector<c32> v1(cfg.n);
  std::vector<c32> v2(cfg.n);
  std::vector<c32> vm(cfg.n);
  model.forward(u1, v1);
  model.forward(u2, v2);
  model.forward(mix, vm);
  std::vector<c32> expect(cfg.n);
  for (std::size_t i = 0; i < cfg.n; ++i) expect[i] = v1[i] + v2[i];
  EXPECT_LT(rel_err(vm, expect), 1e-3);
}

TEST(Fno2dModel, ForwardProducesFiniteOutput) {
  Fno2dConfig cfg;
  cfg.in_channels = 1;
  cfg.hidden = 8;
  cfg.out_channels = 1;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.modes_x = 4;
  cfg.modes_y = 4;
  cfg.layers = 2;
  cfg.backend = Backend::FullyFused;
  const std::size_t batch = 2;
  Fno2d model(cfg);
  model.reserve(batch);
  std::vector<c32> u(batch * cfg.in_channels * cfg.nx * cfg.ny);
  darcy_batch(u, batch, cfg.in_channels, cfg.nx, cfg.ny, 5u);
  std::vector<c32> v(batch * cfg.out_channels * cfg.nx * cfg.ny, c32{});
  model.forward(u, v);
  for (const auto& x : v) ASSERT_TRUE(std::isfinite(x.re) && std::isfinite(x.im));
}

TEST(Fno2dModel, BackendsAgreeEndToEnd) {
  Fno2dConfig cfg;
  cfg.hidden = 8;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.modes_x = 4;
  cfg.modes_y = 4;
  cfg.layers = 2;
  const std::size_t batch = 1;
  std::vector<c32> u(batch * cfg.in_channels * cfg.nx * cfg.ny);
  vorticity_field(u, cfg.nx, cfg.ny, 17u);

  std::vector<std::vector<c32>> outs;
  for (const auto backend : {Backend::PyTorch, Backend::FullyFused}) {
    cfg.backend = backend;
    Fno2d model(cfg);
    model.reserve(batch);
    std::vector<c32> v(batch * cfg.out_channels * cfg.nx * cfg.ny, c32{});
    model.forward(u, v);
    outs.push_back(std::move(v));
  }
  EXPECT_LT(rel_err(outs[1], outs[0]), 5e-4);
}

TEST(PointwiseLinearTest, MatchesNaiveMixing) {
  const std::size_t in = 3;
  const std::size_t out = 4;
  const std::size_t batch = 2;
  const std::size_t spatial = 10;
  PointwiseLinear lin(in, out, 21u);
  const auto u = random_signal(batch * in * spatial, 919u);
  std::vector<c32> v(batch * out * spatial, c32{});
  lin.forward(u, v, batch, spatial);

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out; ++o) {
      for (std::size_t s = 0; s < spatial; ++s) {
        c32 acc{};
        for (std::size_t k = 0; k < in; ++k) {
          cmadd(acc, lin.weights()[o * in + k], u[(b * in + k) * spatial + s]);
        }
        EXPECT_NEAR(v[(b * out + o) * spatial + s].re, acc.re, 1e-4);
        EXPECT_NEAR(v[(b * out + o) * spatial + s].im, acc.im, 1e-4);
      }
    }
  }
}

TEST(ReluTest, ClampsBothComponents) {
  std::vector<c32> x = {{-1.0f, 2.0f}, {3.0f, -4.0f}, {-5.0f, -6.0f}, {7.0f, 8.0f}};
  relu_inplace(x);
  EXPECT_EQ(x[0].re, 0.0f);
  EXPECT_EQ(x[0].im, 2.0f);
  EXPECT_EQ(x[1].re, 3.0f);
  EXPECT_EQ(x[1].im, 0.0f);
  EXPECT_EQ(x[2].re, 0.0f);
  EXPECT_EQ(x[2].im, 0.0f);
  EXPECT_EQ(x[3].re, 7.0f);
  EXPECT_EQ(x[3].im, 8.0f);
}

}  // namespace
}  // namespace turbofno::core
