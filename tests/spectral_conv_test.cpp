// Spectral convolution layers: backend equivalence, per-mode extension,
// linearity, and weight initialization.
#include <gtest/gtest.h>

#include <vector>

#include "core/spectral_conv.hpp"
#include "fft/plan.hpp"
#include "test_util.hpp"

namespace turbofno::core {
namespace {

using turbofno::testing::max_err;
using turbofno::testing::random_signal;
using turbofno::testing::rel_err;

TEST(SpectralConv1dTest, BackendsProduceIdenticalOperators) {
  const std::size_t B = 2;
  const std::size_t K = 16;
  const std::size_t O = 16;
  const std::size_t N = 64;
  const std::size_t M = 16;
  const auto u = random_signal(B * K * N, 801u);

  std::vector<std::vector<c32>> outs;
  for (const auto backend :
       {Backend::PyTorch, Backend::FftOpt, Backend::FusedFftGemm, Backend::FusedGemmIfft,
        Backend::FullyFused}) {
    SpectralConv1d conv(B, K, O, N, M, backend, WeightScheme::Shared, /*seed=*/99u);
    std::vector<c32> v(B * O * N, c32{});
    conv.forward(u, v);
    outs.push_back(std::move(v));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_LT(rel_err(outs[i], outs[0]), 1e-4) << "backend " << i;
  }
}

TEST(SpectralConv1dTest, SameSeedSameWeights) {
  SpectralConv1d a(1, 8, 8, 32, 8, Backend::FullyFused, WeightScheme::Shared, 7u);
  SpectralConv1d b(1, 8, 8, 32, 8, Backend::PyTorch, WeightScheme::Shared, 7u);
  EXPECT_EQ(max_err(a.weights(), b.weights()), 0.0);
}

TEST(SpectralConv1dTest, DifferentSeedDifferentWeights) {
  SpectralConv1d a(1, 8, 8, 32, 8, Backend::FullyFused, WeightScheme::Shared, 7u);
  SpectralConv1d b(1, 8, 8, 32, 8, Backend::FullyFused, WeightScheme::Shared, 8u);
  EXPECT_GT(max_err(a.weights(), b.weights()), 0.0);
}

TEST(SpectralConv1dTest, OperatorIsLinear) {
  const std::size_t B = 1;
  const std::size_t K = 8;
  const std::size_t N = 64;
  SpectralConv1d conv(B, K, K, N, 16, Backend::FullyFused);
  const auto u1 = random_signal(B * K * N, 811u);
  const auto u2 = random_signal(B * K * N, 821u);
  std::vector<c32> sum_in(B * K * N);
  for (std::size_t i = 0; i < sum_in.size(); ++i) sum_in[i] = u1[i] + u2[i];

  std::vector<c32> v1(B * K * N);
  std::vector<c32> v2(B * K * N);
  std::vector<c32> vsum(B * K * N);
  conv.forward(u1, v1);
  conv.forward(u2, v2);
  conv.forward(sum_in, vsum);
  std::vector<c32> expect(B * K * N);
  for (std::size_t i = 0; i < expect.size(); ++i) expect[i] = v1[i] + v2[i];
  EXPECT_LT(rel_err(vsum, expect), 1e-4);
}

TEST(SpectralConv1dTest, OutputIsBandLimited) {
  // The operator projects onto the first `modes` frequencies: transforming
  // the output again must show no energy above the cutoff.
  const std::size_t N = 64;
  const std::size_t M = 8;
  SpectralConv1d conv(1, 4, 4, N, M, Backend::FullyFused);
  const auto u = random_signal(4 * N, 823u);
  std::vector<c32> v(4 * N);
  conv.forward(u, v);

  fft::PlanDesc d;
  d.n = N;
  const fft::FftPlan plan(d);
  for (std::size_t c = 0; c < 4; ++c) {
    std::vector<c32> freq(N);
    plan.execute(std::span<const c32>(v.data() + c * N, N), freq, 1);
    double high = 0.0;
    double low = 0.0;
    for (std::size_t f = 0; f < N; ++f) {
      (f < M ? low : high) += norm2(freq[f]);
    }
    EXPECT_LT(high, 1e-6 * (low + 1e-9)) << "channel " << c;
  }
}

TEST(SpectralConv1dTest, PerModeWithEqualWeightsMatchesShared) {
  const std::size_t B = 2;
  const std::size_t K = 8;
  const std::size_t O = 8;
  const std::size_t N = 32;
  const std::size_t M = 8;
  SpectralConv1d shared(B, K, O, N, M, Backend::FftOpt, WeightScheme::Shared, 5u);
  SpectralConv1d permode(B, K, O, N, M, Backend::FftOpt, WeightScheme::PerMode, 5u);
  // Copy the shared matrix into every mode slot.
  auto w = shared.weights();
  auto wp = permode.weights();
  ASSERT_EQ(wp.size(), M * w.size());
  for (std::size_t f = 0; f < M; ++f) {
    std::copy(w.begin(), w.end(), wp.begin() + f * w.size());
  }
  const auto u = random_signal(B * K * N, 827u);
  std::vector<c32> vs(B * O * N);
  std::vector<c32> vp(B * O * N);
  shared.forward(u, vs);
  permode.forward(u, vp);
  EXPECT_LT(rel_err(vp, vs), 1e-4);
}

TEST(SpectralConv1dTest, PerModeUsesDistinctMatricesPerFrequency) {
  // Zeroing all but mode f=1's matrix must kill every other frequency.
  const std::size_t K = 4;
  const std::size_t N = 32;
  const std::size_t M = 4;
  SpectralConv1d conv(1, K, K, N, M, Backend::FftOpt, WeightScheme::PerMode, 11u);
  auto w = conv.weights();
  for (std::size_t f = 0; f < M; ++f) {
    if (f == 1) continue;
    std::fill(w.begin() + f * K * K, w.begin() + (f + 1) * K * K, c32{});
  }
  const auto u = random_signal(K * N, 829u);
  std::vector<c32> v(K * N);
  conv.forward(u, v);

  fft::PlanDesc d;
  d.n = N;
  const fft::FftPlan plan(d);
  std::vector<c32> freq(N);
  plan.execute(std::span<const c32>(v.data(), N), freq, 1);
  for (std::size_t f = 0; f < N; ++f) {
    if (f == 1) continue;
    EXPECT_LT(norm2(freq[f]), 1e-6f) << "frequency " << f << " should be annihilated";
  }
}

TEST(SpectralConv2dTest, BackendsProduceIdenticalOperators) {
  const std::size_t B = 1;
  const std::size_t K = 8;
  const std::size_t O = 8;
  const auto u = random_signal(B * K * 16 * 32, 839u);
  std::vector<std::vector<c32>> outs;
  for (const auto backend :
       {Backend::PyTorch, Backend::FftOpt, Backend::FusedFftGemm, Backend::FusedGemmIfft,
        Backend::FullyFused}) {
    SpectralConv2d conv(B, K, O, 16, 32, 4, 8, backend, WeightScheme::Shared, 13u);
    std::vector<c32> v(B * O * 16 * 32, c32{});
    conv.forward(u, v);
    outs.push_back(std::move(v));
  }
  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_LT(rel_err(outs[i], outs[0]), 1e-4) << "backend " << i;
  }
}

TEST(SpectralConv2dTest, PerModeSchemeIsRejected) {
  EXPECT_THROW(SpectralConv2d(1, 4, 4, 16, 16, 4, 4, Backend::FftOpt, WeightScheme::PerMode),
               std::invalid_argument);
}

TEST(InitWeights, GlorotBoundRespected) {
  std::vector<c32> w(1000);
  init_weights(w, 64, 64, 3u);
  const float bound = std::sqrt(6.0f / 128.0f);
  for (const auto& x : w) {
    EXPECT_LE(std::fabs(x.re), bound);
    EXPECT_LE(std::fabs(x.im), bound);
  }
  // And not degenerate.
  double sum = 0.0;
  for (const auto& x : w) sum += std::fabs(x.re);
  EXPECT_GT(sum / w.size(), bound * 0.1);
}

}  // namespace
}  // namespace turbofno::core
