// Parallel runtime: partitioning, coverage, grain behaviour, overrides.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "runtime/env.hpp"
#include "runtime/parallel.hpp"
#include "runtime/timer.hpp"

namespace turbofno::runtime {
namespace {

TEST(Partition, CoversRangeWithoutOverlap) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (std::size_t parts : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_hi = 0;
      for (std::size_t p = 0; p < parts; ++p) {
        const Range r = partition(n, parts, p);
        EXPECT_EQ(r.lo, prev_hi);
        prev_hi = r.hi;
        covered += r.size();
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_hi, n);
    }
  }
}

TEST(Partition, BalancedWithinOne) {
  const std::size_t n = 103;
  const std::size_t parts = 8;
  std::size_t mn = n;
  std::size_t mx = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const Range r = partition(n, parts, p);
    mn = std::min(mn, r.size());
    mx = std::max(mx, r.size());
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeNeverCallsBody) {
  bool called = false;
  parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  parallel_for(7, 3, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, GrainLimitsSplitCount) {
  // With grain >= n the body must run exactly once, inline.
  std::atomic<int> calls{0};
  parallel_for(0, 100, 1000, [&](std::size_t lo, std::size_t hi) {
    calls.fetch_add(1);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 100u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelFor, SumMatchesSerial) {
  const std::size_t n = 1 << 16;
  std::vector<double> x(n);
  std::iota(x.begin(), x.end(), 0.0);
  std::atomic<long long> sum{0};
  parallel_for_each(0, n, 256, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(x[i]), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadCount, OverrideAndRestore) {
  const int original = thread_count();
  EXPECT_GE(original, 1);
  set_thread_count(2);
  EXPECT_EQ(thread_count(), 2);
  set_thread_count(0);
  EXPECT_EQ(thread_count(), original);
}

TEST(ThreadCount, OpenMpAvailabilityIsConsistent) {
  if (has_openmp()) {
    EXPECT_GE(thread_count(), 1);
  } else {
    EXPECT_EQ(thread_count(), 1);
  }
}

TEST(Env, ParsesIntegersWithFallback) {
  ::setenv("TURBOFNO_TEST_ENV", "42", 1);
  EXPECT_EQ(env_long("TURBOFNO_TEST_ENV", -1), 42);
  ::setenv("TURBOFNO_TEST_ENV", "notanumber", 1);
  EXPECT_EQ(env_long("TURBOFNO_TEST_ENV", -1), -1);
  ::unsetenv("TURBOFNO_TEST_ENV");
  EXPECT_EQ(env_long("TURBOFNO_TEST_ENV", 7), 7);
}

TEST(Env, RejectsOverflowAndPartialNumbers) {
  // strtol saturates to LONG_MIN/LONG_MAX and signals only via errno;
  // env_long must treat that as unparsable, not as a giant size knob.
  ::setenv("TURBOFNO_TEST_ENV", "99999999999999999999999999", 1);
  EXPECT_EQ(env_long("TURBOFNO_TEST_ENV", 5), 5);
  ::setenv("TURBOFNO_TEST_ENV", "-99999999999999999999999999", 1);
  EXPECT_EQ(env_long("TURBOFNO_TEST_ENV", 5), 5);
  ::setenv("TURBOFNO_TEST_ENV", "12abc", 1);  // trailing garbage
  EXPECT_EQ(env_long("TURBOFNO_TEST_ENV", 5), 5);
  ::setenv("TURBOFNO_TEST_ENV", "-3", 1);  // in-range negatives still parse
  EXPECT_EQ(env_long("TURBOFNO_TEST_ENV", 5), -3);
  ::unsetenv("TURBOFNO_TEST_ENV");
}

TEST(Env, ClampedVariantBoundsSizeKnobs) {
  ::setenv("TURBOFNO_TEST_ENV", "-8", 1);
  EXPECT_EQ(env_long_clamped("TURBOFNO_TEST_ENV", 0, 0, 100), 0);  // negative -> lo
  ::setenv("TURBOFNO_TEST_ENV", "1000", 1);
  EXPECT_EQ(env_long_clamped("TURBOFNO_TEST_ENV", 0, 0, 100), 100);  // -> hi
  ::setenv("TURBOFNO_TEST_ENV", "37", 1);
  EXPECT_EQ(env_long_clamped("TURBOFNO_TEST_ENV", 0, 0, 100), 37);
  ::setenv("TURBOFNO_TEST_ENV", "junk", 1);  // unparsable -> clamped fallback
  EXPECT_EQ(env_long_clamped("TURBOFNO_TEST_ENV", -5, 1, 100), 1);
  ::unsetenv("TURBOFNO_TEST_ENV");
}

TEST(FusedGrain, AlwaysAtLeastOneRowPerChunk) {
  // Consumers divide by the grain, so every override path must clamp >= 1.
  set_fused_grain(0);  // default policy
  for (std::size_t total : {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{64}}) {
    EXPECT_GE(fused_grain(total), 1u) << total;
  }
  set_fused_grain(5);
  EXPECT_EQ(fused_grain(64), 5u);
  set_fused_grain(0);
}

TEST(Env, FlagRecognizesTruthyValues) {
  for (const char* v : {"1", "on", "true", "yes"}) {
    ::setenv("TURBOFNO_TEST_FLAG", v, 1);
    EXPECT_TRUE(env_flag("TURBOFNO_TEST_FLAG")) << v;
  }
  ::setenv("TURBOFNO_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("TURBOFNO_TEST_FLAG"));
  ::unsetenv("TURBOFNO_TEST_FLAG");
  EXPECT_FALSE(env_flag("TURBOFNO_TEST_FLAG"));
}

TEST(Env, FormatHelpers) {
  EXPECT_EQ(format_bytes(512.0), "512.00 B");
  EXPECT_EQ(format_bytes(2048.0), "2.00 KiB");
  EXPECT_EQ(format_seconds(2.5), "2.500 s");
  EXPECT_EQ(format_seconds(0.002), "2.000 ms");
  EXPECT_EQ(format_seconds(3e-6), "3.000 us");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
  (void)sink;
}

TEST(Timer, BestOfReturnsMinimum) {
  int runs = 0;
  const double best = time_best_of(3, [&] { ++runs; });
  EXPECT_EQ(runs, 4);  // 1 warmup + 3 timed
  EXPECT_GE(best, 0.0);
}

}  // namespace
}  // namespace turbofno::runtime
