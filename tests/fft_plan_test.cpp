// FFT plan correctness against the O(n^2) double-precision reference DFT.
#include <gtest/gtest.h>

#include <vector>

#include "fft/plan.hpp"
#include "fft/reference.hpp"
#include "fft/twiddle.hpp"
#include "test_util.hpp"

namespace turbofno::fft {
namespace {

using turbofno::testing::fft_tol;
using turbofno::testing::max_err;
using turbofno::testing::random_signal;

FftPlan make_plan(std::size_t n, Direction dir, std::size_t keep = 0, std::size_t nonzero = 0) {
  PlanDesc d;
  d.n = n;
  d.dir = dir;
  d.keep = keep;
  d.nonzero = nonzero;
  return FftPlan(d);
}

// ---------------------------------------------------------------- full sizes

class FullFftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FullFftSizes, ForwardMatchesReference) {
  const std::size_t n = GetParam();
  const auto in = random_signal(n, 11u + static_cast<unsigned>(n));
  std::vector<c32> out(n);
  std::vector<c32> ref(n);
  make_plan(n, Direction::Forward).execute(in, out, 1);
  reference_dft(in, ref, n);
  EXPECT_LT(max_err(out, ref), fft_tol(n)) << "n=" << n;
}

TEST_P(FullFftSizes, InverseMatchesReference) {
  const std::size_t n = GetParam();
  const auto in = random_signal(n, 17u + static_cast<unsigned>(n));
  std::vector<c32> out(n);
  std::vector<c32> ref(n);
  make_plan(n, Direction::Inverse).execute(in, out, 1);
  reference_idft(in, ref, n);
  EXPECT_LT(max_err(out, ref), fft_tol(n)) << "n=" << n;
}

TEST_P(FullFftSizes, RoundTripRecoversInput) {
  const std::size_t n = GetParam();
  const auto in = random_signal(n, 23u + static_cast<unsigned>(n));
  std::vector<c32> freq(n);
  std::vector<c32> back(n);
  make_plan(n, Direction::Forward).execute(in, freq, 1);
  make_plan(n, Direction::Inverse).execute(freq, back, 1);
  EXPECT_LT(max_err(back, in), fft_tol(n));
}

TEST_P(FullFftSizes, ForwardIsLinear) {
  const std::size_t n = GetParam();
  const auto a = random_signal(n, 29u);
  const auto b = random_signal(n, 31u);
  const c32 alpha{0.7f, -0.3f};
  std::vector<c32> mix(n);
  for (std::size_t i = 0; i < n; ++i) mix[i] = alpha * a[i] + b[i];

  const FftPlan plan = make_plan(n, Direction::Forward);
  std::vector<c32> fa(n);
  std::vector<c32> fb(n);
  std::vector<c32> fmix(n);
  plan.execute(a, fa, 1);
  plan.execute(b, fb, 1);
  plan.execute(mix, fmix, 1);
  std::vector<c32> expect(n);
  for (std::size_t i = 0; i < n; ++i) expect[i] = alpha * fa[i] + fb[i];
  EXPECT_LT(max_err(fmix, expect), 4.0 * fft_tol(n));
}

TEST_P(FullFftSizes, ParsevalEnergyConserved) {
  const std::size_t n = GetParam();
  const auto in = random_signal(n, 37u);
  std::vector<c32> freq(n);
  make_plan(n, Direction::Forward).execute(in, freq, 1);
  double time_e = 0.0;
  double freq_e = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    time_e += norm2(in[i]);
    freq_e += norm2(freq[i]);
  }
  freq_e /= static_cast<double>(n);
  EXPECT_NEAR(freq_e / time_e, 1.0, 1e-3);
}

TEST_P(FullFftSizes, DeltaInputGivesFlatSpectrum) {
  const std::size_t n = GetParam();
  std::vector<c32> in(n, c32{});
  in[0] = {1.0f, 0.0f};
  std::vector<c32> freq(n);
  make_plan(n, Direction::Forward).execute(in, freq, 1);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(freq[k].re, 1.0f, 1e-5);
    EXPECT_NEAR(freq[k].im, 0.0f, 1e-5);
  }
}

TEST_P(FullFftSizes, SingleToneLandsInItsBin) {
  const std::size_t n = GetParam();
  if (n < 4) GTEST_SKIP();
  const std::size_t bin = n / 4 + 1;
  std::vector<c32> in(n);
  for (std::size_t j = 0; j < n; ++j) {
    in[j] = conj(twiddle(j * bin, n));  // e^{+2 pi i j bin / n}
  }
  std::vector<c32> freq(n);
  make_plan(n, Direction::Forward).execute(in, freq, 1);
  for (std::size_t k = 0; k < n; ++k) {
    const float expect = (k == bin) ? static_cast<float>(n) : 0.0f;
    EXPECT_NEAR(freq[k].re, expect, fft_tol(n) * n) << "k=" << k;
    EXPECT_NEAR(freq[k].im, 0.0f, fft_tol(n) * n) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FullFftSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096));

// ------------------------------------------------------------- trunc/zeropad

struct FilterCase {
  std::size_t n;
  std::size_t keep;
  std::size_t nonzero;
};

class FilteredFft : public ::testing::TestWithParam<FilterCase> {};

TEST_P(FilteredFft, TruncatedForwardEqualsFullPlusSlice) {
  const auto [n, keep, nonzero] = GetParam();
  const auto in = random_signal(n, 41u + static_cast<unsigned>(n + keep));
  std::vector<c32> full(n);
  make_plan(n, Direction::Forward).execute(in, full, 1);
  std::vector<c32> trunc(keep);
  make_plan(n, Direction::Forward, keep).execute(in, trunc, 1);
  EXPECT_LT(max_err(trunc, std::span<const c32>(full.data(), keep)), fft_tol(n));
  (void)nonzero;
}

TEST_P(FilteredFft, ZeroPaddedForwardEqualsExplicitPad) {
  const auto [n, keep, nonzero] = GetParam();
  const auto stored = random_signal(nonzero, 43u + static_cast<unsigned>(n));
  std::vector<c32> padded(n, c32{});
  std::copy(stored.begin(), stored.end(), padded.begin());
  std::vector<c32> expect(n);
  make_plan(n, Direction::Forward).execute(padded, expect, 1);
  std::vector<c32> got(n);
  make_plan(n, Direction::Forward, 0, nonzero).execute(stored, got, 1);
  EXPECT_LT(max_err(got, expect), fft_tol(n));
  (void)keep;
}

TEST_P(FilteredFft, ZeroPaddedInverseEqualsExplicitPad) {
  const auto [n, keep, nonzero] = GetParam();
  const auto spectrum = random_signal(nonzero, 47u);
  std::vector<c32> padded(n, c32{});
  std::copy(spectrum.begin(), spectrum.end(), padded.begin());
  std::vector<c32> expect(n);
  make_plan(n, Direction::Inverse).execute(padded, expect, 1);
  std::vector<c32> got(n);
  make_plan(n, Direction::Inverse, 0, nonzero).execute(spectrum, got, 1);
  EXPECT_LT(max_err(got, expect), fft_tol(n));
  (void)keep;
}

TEST_P(FilteredFft, TruncatedAndPaddedCompose) {
  const auto [n, keep, nonzero] = GetParam();
  const auto stored = random_signal(nonzero, 53u);
  std::vector<c32> padded(n, c32{});
  std::copy(stored.begin(), stored.end(), padded.begin());
  std::vector<c32> full(n);
  make_plan(n, Direction::Forward).execute(padded, full, 1);
  std::vector<c32> got(keep);
  make_plan(n, Direction::Forward, keep, nonzero).execute(stored, got, 1);
  EXPECT_LT(max_err(got, std::span<const c32>(full.data(), keep)), fft_tol(n));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FilteredFft,
    ::testing::Values(FilterCase{8, 2, 4}, FilterCase{16, 4, 8}, FilterCase{32, 8, 8},
                      FilterCase{64, 16, 32}, FilterCase{64, 64, 16}, FilterCase{128, 32, 64},
                      FilterCase{128, 64, 128}, FilterCase{256, 64, 64}, FilterCase{256, 128, 32},
                      FilterCase{256, 1, 1}, FilterCase{512, 128, 256}, FilterCase{1024, 64, 512},
                      FilterCase{128, 127, 127}, FilterCase{128, 3, 5}));

// ----------------------------------------------------------- batched/strided

TEST(FftBatched, ManySignalsMatchSingleExecutes) {
  const std::size_t n = 128;
  const std::size_t batch = 33;  // deliberately not a multiple of any grain
  const auto in = random_signal(n * batch, 59u);
  const FftPlan plan = make_plan(n, Direction::Forward);

  std::vector<c32> batched(n * batch);
  plan.execute(in, batched, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<c32> one(n);
    plan.execute(std::span<const c32>(in.data() + b * n, n), one, 1);
    EXPECT_LT(max_err(std::span<const c32>(batched.data() + b * n, n), one), 1e-6)
        << "signal " << b;
  }
}

TEST(FftBatched, TruncatedBatchPacksDensely) {
  const std::size_t n = 64;
  const std::size_t keep = 16;
  const std::size_t batch = 7;
  const auto in = random_signal(n * batch, 61u);
  const FftPlan plan = make_plan(n, Direction::Forward, keep);
  std::vector<c32> out(keep * batch, c32{-99.0f, -99.0f});
  plan.execute(in, out, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<c32> full(n);
    make_plan(n, Direction::Forward).execute(std::span<const c32>(in.data() + b * n, n), full, 1);
    EXPECT_LT(max_err(std::span<const c32>(out.data() + b * keep, keep),
                      std::span<const c32>(full.data(), keep)),
              fft_tol(n));
  }
}

TEST(FftStrided, StridedInputMatchesContiguous) {
  const std::size_t n = 64;
  const std::size_t stride = 5;
  const auto dense = random_signal(n, 67u);
  std::vector<c32> strided(n * stride, c32{});
  for (std::size_t i = 0; i < n; ++i) strided[i * stride] = dense[i];

  const FftPlan plan = make_plan(n, Direction::Forward);
  std::vector<c32> expect(n);
  plan.execute(dense, expect, 1);

  std::vector<c32> got(n);
  std::vector<c32> work(2 * n);
  plan.execute_one(strided.data(), static_cast<std::ptrdiff_t>(stride), got.data(), 1,
                   std::span<c32>(work));
  EXPECT_LT(max_err(got, expect), 1e-6);
}

TEST(FftStrided, StridedOutputMatchesContiguous) {
  const std::size_t n = 32;
  const std::size_t ostride = 3;
  const auto in = random_signal(n, 71u);
  const FftPlan plan = make_plan(n, Direction::Forward);
  std::vector<c32> expect(n);
  plan.execute(in, expect, 1);

  std::vector<c32> out(n * ostride, c32{});
  std::vector<c32> work(2 * n);
  plan.execute_one(in.data(), 1, out.data(), static_cast<std::ptrdiff_t>(ostride),
                   std::span<c32>(work));
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(out[k * ostride].re, expect[k].re, 1e-6);
    EXPECT_NEAR(out[k * ostride].im, expect[k].im, 1e-6);
  }
}

TEST(FftStrided, ExecStridedLayoutBatches) {
  // Signals along a "hidden" axis: element stride K, batch stride 1 — the
  // access pattern of the fused kernel's k-loop FFT variant.
  const std::size_t n = 32;
  const std::size_t k_channels = 6;
  const auto dense = random_signal(n * k_channels, 73u);
  // interleaved[j * k_channels + k] = signal k, element j.
  std::vector<c32> interleaved(n * k_channels);
  for (std::size_t k = 0; k < k_channels; ++k) {
    for (std::size_t j = 0; j < n; ++j) interleaved[j * k_channels + k] = dense[k * n + j];
  }
  const FftPlan plan = make_plan(n, Direction::Forward);
  ExecLayout layout;
  layout.in_elem_stride = static_cast<std::ptrdiff_t>(k_channels);
  layout.in_batch_stride = 1;
  layout.out_elem_stride = 1;
  layout.out_batch_stride = static_cast<std::ptrdiff_t>(n);
  std::vector<c32> got(n * k_channels);
  plan.execute_strided(interleaved.data(), got.data(), k_channels, layout);

  std::vector<c32> expect(n * k_channels);
  plan.execute(dense, expect, k_channels);
  EXPECT_LT(max_err(got, expect), 1e-6);
}

// ----------------------------------------------------------------- plan desc

TEST(FftPlanDesc, RejectsNonPowerOfTwo) {
  PlanDesc d;
  d.n = 24;
  EXPECT_THROW(FftPlan{d}, std::invalid_argument);
  d.n = 0;
  EXPECT_THROW(FftPlan{d}, std::invalid_argument);
  d.n = 1;
  EXPECT_THROW(FftPlan{d}, std::invalid_argument);
}

TEST(FftPlanDesc, RejectsOversizedFilter) {
  PlanDesc d;
  d.n = 64;
  d.keep = 65;
  EXPECT_THROW(FftPlan{d}, std::invalid_argument);
  d.keep = 0;
  d.nonzero = 100;
  EXPECT_THROW(FftPlan{d}, std::invalid_argument);
}

TEST(FftPlanDesc, ByteAccountingMatchesFilter) {
  PlanDesc d;
  d.n = 256;
  d.keep = 64;
  d.nonzero = 128;
  const FftPlan plan(d);
  EXPECT_EQ(plan.bytes_read_per_signal(), 128u * sizeof(c32));
  EXPECT_EQ(plan.bytes_written_per_signal(), 64u * sizeof(c32));
  EXPECT_TRUE(plan.pruned());
}

TEST(FftPlanDesc, FullPlanIsNotPruned) {
  PlanDesc d;
  d.n = 256;
  const FftPlan plan(d);
  EXPECT_FALSE(plan.pruned());
  EXPECT_EQ(plan.bytes_read_per_signal(), 256u * sizeof(c32));
}

TEST(FftPlanDesc, UnscaledInverseSkipsDivision) {
  const std::size_t n = 16;
  const auto in = random_signal(n, 79u);
  PlanDesc d;
  d.n = n;
  d.dir = Direction::Inverse;
  d.scale_inverse = false;
  std::vector<c32> unscaled(n);
  FftPlan(d).execute(in, unscaled, 1);
  d.scale_inverse = true;
  std::vector<c32> scaled(n);
  FftPlan(d).execute(in, scaled, 1);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(unscaled[i].re, scaled[i].re * n, 1e-4);
    EXPECT_NEAR(unscaled[i].im, scaled[i].im * n, 1e-4);
  }
}

}  // namespace
}  // namespace turbofno::fft
