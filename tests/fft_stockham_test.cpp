// Stockham kernels: the mixed radix-4/2 fast path against its pure radix-2
// verification twin and the reference DFT.
#include <gtest/gtest.h>

#include <vector>

#include "fft/reference.hpp"
#include "fft/stockham.hpp"
#include "test_util.hpp"

namespace turbofno::fft {
namespace {

using turbofno::testing::fft_tol;
using turbofno::testing::max_err;
using turbofno::testing::random_signal;

class StockhamSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StockhamSizes, MixedRadixForwardMatchesReference) {
  const std::size_t n = GetParam();
  const auto in = random_signal(n, 1001u + static_cast<unsigned>(n));
  std::vector<c32> buf(in);
  std::vector<c32> work(n);
  stockham_forward(buf, work, n);
  std::vector<c32> ref(n);
  reference_dft(in, ref, n);
  EXPECT_LT(max_err(buf, ref), fft_tol(n)) << "n=" << n;
}

TEST_P(StockhamSizes, MixedRadixAgreesWithRadix2) {
  const std::size_t n = GetParam();
  const auto in = random_signal(n, 1009u + static_cast<unsigned>(n));
  std::vector<c32> mixed(in);
  std::vector<c32> r2(in);
  std::vector<c32> work(n);
  stockham_forward(mixed, work, n);
  stockham_forward_radix2(r2, work, n);
  EXPECT_LT(max_err(mixed, r2), fft_tol(n)) << "n=" << n;
}

TEST_P(StockhamSizes, InverseUndoesForward) {
  const std::size_t n = GetParam();
  const auto in = random_signal(n, 1013u);
  std::vector<c32> buf(in);
  std::vector<c32> work(n);
  stockham_forward(buf, work, n);
  stockham_inverse(buf, work, n, /*scale=*/true);
  EXPECT_LT(max_err(buf, in), fft_tol(n));
}

TEST_P(StockhamSizes, Radix2InverseMatchesMixedInverse) {
  const std::size_t n = GetParam();
  const auto in = random_signal(n, 1019u);
  std::vector<c32> mixed(in);
  std::vector<c32> r2(in);
  std::vector<c32> work(n);
  stockham_inverse(mixed, work, n, true);
  stockham_inverse_radix2(r2, work, n, true);
  EXPECT_LT(max_err(mixed, r2), fft_tol(n));
}

// Odd and even log2(n): the mixed-radix driver takes a radix-2 tail on odd.
INSTANTIATE_TEST_SUITE_P(PowersOfTwo, StockhamSizes,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048,
                                           4096, 8192));

TEST(Stockham, UnscaledInverseIsNTimesScaled) {
  const std::size_t n = 64;
  const auto in = random_signal(n, 1021u);
  std::vector<c32> a(in);
  std::vector<c32> b(in);
  std::vector<c32> work(n);
  stockham_inverse(a, work, n, false);
  stockham_inverse(b, work, n, true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(a[i].re, b[i].re * n, 1e-3);
    EXPECT_NEAR(a[i].im, b[i].im * n, 1e-3);
  }
}

}  // namespace
}  // namespace turbofno::fft
