// 2D FFT plan: correctness against a reference 2D DFT, per-axis truncation,
// and the forward/inverse round trip the 2D FNO pipeline relies on.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "fft/fft2d.hpp"
#include "fft/reference.hpp"
#include "test_util.hpp"

namespace turbofno::fft {
namespace {

using turbofno::testing::fft_tol;
using turbofno::testing::max_err;
using turbofno::testing::random_signal;

// Reference 2D DFT via two reference_dft passes (double precision inside).
std::vector<c32> reference_fft2d(const std::vector<c32>& in, std::size_t nx, std::size_t ny) {
  std::vector<c32> mid(nx * ny);
  std::vector<c32> col(nx);
  std::vector<c32> colf(nx);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) col[x] = in[x * ny + y];
    reference_dft(col, colf, nx);
    for (std::size_t x = 0; x < nx; ++x) mid[x * ny + y] = colf[x];
  }
  std::vector<c32> out(nx * ny);
  for (std::size_t x = 0; x < nx; ++x) {
    reference_dft(std::span<const c32>(mid.data() + x * ny, ny),
                  std::span<c32>(out.data() + x * ny, ny), ny);
  }
  return out;
}

FftPlan2d make2d(std::size_t nx, std::size_t ny, Direction dir, std::size_t kx = 0,
                 std::size_t ky = 0) {
  Plan2dDesc d;
  d.nx = nx;
  d.ny = ny;
  d.dir = dir;
  d.keep_x = kx;
  d.keep_y = ky;
  return FftPlan2d(d);
}

struct Case2d {
  std::size_t nx;
  std::size_t ny;
};

class FullFft2d : public ::testing::TestWithParam<Case2d> {};

TEST_P(FullFft2d, ForwardMatchesReference) {
  const auto [nx, ny] = GetParam();
  const auto in = random_signal(nx * ny, 211u + static_cast<unsigned>(nx * ny));
  std::vector<c32> out(nx * ny);
  make2d(nx, ny, Direction::Forward).execute(in, out, 1);
  const auto ref = reference_fft2d(in, nx, ny);
  EXPECT_LT(max_err(out, ref), fft_tol(nx * ny));
}

TEST_P(FullFft2d, RoundTripRecoversInput) {
  const auto [nx, ny] = GetParam();
  const auto in = random_signal(nx * ny, 223u);
  std::vector<c32> freq(nx * ny);
  std::vector<c32> back(nx * ny);
  make2d(nx, ny, Direction::Forward).execute(in, freq, 1);
  make2d(nx, ny, Direction::Inverse).execute(freq, back, 1);
  EXPECT_LT(max_err(back, in), fft_tol(nx * ny));
}

INSTANTIATE_TEST_SUITE_P(Shapes, FullFft2d,
                         ::testing::Values(Case2d{4, 4}, Case2d{8, 16}, Case2d{16, 8},
                                           Case2d{32, 32}, Case2d{64, 16}, Case2d{16, 64}));

struct TruncCase2d {
  std::size_t nx, ny, kx, ky;
};

class TruncFft2d : public ::testing::TestWithParam<TruncCase2d> {};

TEST_P(TruncFft2d, TruncatedForwardEqualsFullPlusCornerSlice) {
  const auto [nx, ny, kx, ky] = GetParam();
  const auto in = random_signal(nx * ny, 227u + static_cast<unsigned>(kx + ky));
  const auto full = reference_fft2d(in, nx, ny);
  std::vector<c32> got(kx * ky);
  make2d(nx, ny, Direction::Forward, kx, ky).execute(in, got, 1);
  for (std::size_t x = 0; x < kx; ++x) {
    for (std::size_t y = 0; y < ky; ++y) {
      EXPECT_NEAR(got[x * ky + y].re, full[x * ny + y].re, fft_tol(nx * ny)) << x << "," << y;
      EXPECT_NEAR(got[x * ky + y].im, full[x * ny + y].im, fft_tol(nx * ny)) << x << "," << y;
    }
  }
}

TEST_P(TruncFft2d, PaddedInverseEqualsExplicitPad) {
  const auto [nx, ny, kx, ky] = GetParam();
  const auto spec = random_signal(kx * ky, 229u);
  // Explicit pad into a full field, then full inverse.
  std::vector<c32> padded(nx * ny, c32{});
  for (std::size_t x = 0; x < kx; ++x) {
    for (std::size_t y = 0; y < ky; ++y) padded[x * ny + y] = spec[x * ky + y];
  }
  std::vector<c32> expect(nx * ny);
  make2d(nx, ny, Direction::Inverse).execute(padded, expect, 1);

  std::vector<c32> got(nx * ny);
  make2d(nx, ny, Direction::Inverse, kx, ky).execute(spec, got, 1);
  EXPECT_LT(max_err(got, expect), fft_tol(nx * ny));
}

TEST_P(TruncFft2d, TruncThenPadRoundTripIsLowpass) {
  // fwd-trunc then inv-pad equals projecting onto the retained corner modes:
  // applying it twice changes nothing (idempotent projector).
  const auto [nx, ny, kx, ky] = GetParam();
  const auto in = random_signal(nx * ny, 233u);
  const FftPlan2d fwd = make2d(nx, ny, Direction::Forward, kx, ky);
  const FftPlan2d inv = make2d(nx, ny, Direction::Inverse, kx, ky);

  std::vector<c32> spec(kx * ky);
  std::vector<c32> once(nx * ny);
  fwd.execute(in, spec, 1);
  inv.execute(spec, once, 1);
  std::vector<c32> twice(nx * ny);
  fwd.execute(once, spec, 1);
  inv.execute(spec, twice, 1);
  EXPECT_LT(max_err(twice, once), 5.0 * fft_tol(nx * ny));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TruncFft2d,
                         ::testing::Values(TruncCase2d{8, 8, 2, 4}, TruncCase2d{16, 16, 4, 4},
                                           TruncCase2d{32, 16, 8, 4}, TruncCase2d{16, 32, 16, 8},
                                           TruncCase2d{64, 32, 16, 16},
                                           TruncCase2d{32, 32, 32, 8}));

TEST(Fft2dBatched, BatchedMatchesPerField) {
  const std::size_t nx = 16;
  const std::size_t ny = 32;
  const std::size_t batch = 5;
  const auto in = random_signal(batch * nx * ny, 239u);
  const FftPlan2d plan = make2d(nx, ny, Direction::Forward, 4, 8);
  std::vector<c32> batched(batch * 4 * 8);
  plan.execute(in, batched, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<c32> one(4 * 8);
    plan.execute(std::span<const c32>(in.data() + b * nx * ny, nx * ny), one, 1);
    EXPECT_LT(max_err(std::span<const c32>(batched.data() + b * 4 * 8, 4 * 8), one), 1e-6);
  }
}

TEST(Fft2dDesc, FlopAccountingIsPositiveAndPrunedIsSmaller) {
  const auto full = make2d(256, 128, Direction::Forward);
  const auto pruned = make2d(256, 128, Direction::Forward, 64, 64);
  EXPECT_GT(full.flops_per_field(), 0u);
  EXPECT_LT(pruned.flops_per_field(), full.flops_per_field());
}

TEST(Fft2dDesc, FieldElemCountsFollowDirection) {
  const auto fwd = make2d(32, 64, Direction::Forward, 8, 16);
  EXPECT_EQ(fwd.in_field_elems(), 32u * 64u);
  EXPECT_EQ(fwd.out_field_elems(), 8u * 16u);
  const auto inv = make2d(32, 64, Direction::Inverse, 8, 16);
  EXPECT_EQ(inv.in_field_elems(), 8u * 16u);
  EXPECT_EQ(inv.out_field_elems(), 32u * 64u);
}

TEST(Fft2dDesc, ValidationRejectsDegenerateDescriptors) {
  // The tile-granular X stage must never be handed an empty or undersized
  // slab, so the 2D descriptor is validated up front with 2D-level errors.
  for (const auto dir : {Direction::Forward, Direction::Inverse}) {
    EXPECT_THROW(make2d(1, 16, dir), std::invalid_argument);    // nx == 1
    EXPECT_THROW(make2d(16, 1, dir), std::invalid_argument);    // ny == 1
    EXPECT_THROW(make2d(0, 16, dir), std::invalid_argument);    // nx == 0
    EXPECT_THROW(make2d(16, 0, dir), std::invalid_argument);    // ny == 0
    EXPECT_THROW(make2d(12, 16, dir), std::invalid_argument);   // not pow2
    EXPECT_THROW(make2d(16, 24, dir), std::invalid_argument);
    EXPECT_THROW(make2d(16, 16, dir, 17, 4), std::invalid_argument);  // keep > n
    EXPECT_THROW(make2d(16, 16, dir, 4, 17), std::invalid_argument);
  }
}

TEST(Fft2dDesc, KeepZeroMeansFullAxisBitwise) {
  // keep == 0 is the documented "keep everything" convention; it must be
  // exactly the keep == n plan, not a near-miss.
  const std::size_t nx = 8, ny = 16;
  const auto in = random_signal(nx * ny, 241u);
  std::vector<c32> a(nx * ny), b(nx * ny);
  make2d(nx, ny, Direction::Forward, 0, 0).execute(in, a, 1);
  make2d(nx, ny, Direction::Forward, nx, ny).execute(in, b, 1);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].re, b[i].re) << i;
    EXPECT_EQ(a[i].im, b[i].im) << i;
  }
}

TEST(Fft2dEdgeShapes, MinimalKeepAndMinimalDimsMatchReference) {
  // The degenerate corners the fused tile API leans on: keep_x or keep_y of
  // 1 (a single surviving row/bin) and the smallest legal dims (2).
  struct Edge {
    std::size_t nx, ny, kx, ky;
  };
  for (const auto& [nx, ny, kx, ky] :
       {Edge{16, 16, 1, 4}, Edge{16, 16, 4, 1}, Edge{8, 8, 1, 1}, Edge{2, 16, 1, 4},
        Edge{16, 2, 4, 1}, Edge{2, 2, 1, 1}, Edge{2, 2, 2, 2}}) {
    const auto in = random_signal(nx * ny, 251u + static_cast<unsigned>(nx * ny + kx));
    const auto full = reference_fft2d(in, nx, ny);
    std::vector<c32> got(kx * ky);
    make2d(nx, ny, Direction::Forward, kx, ky).execute(in, got, 1);
    for (std::size_t x = 0; x < kx; ++x) {
      for (std::size_t y = 0; y < ky; ++y) {
        EXPECT_NEAR(got[x * ky + y].re, full[x * ny + y].re, fft_tol(nx * ny))
            << nx << "x" << ny << " keep " << kx << "x" << ky << " @" << x << "," << y;
        EXPECT_NEAR(got[x * ky + y].im, full[x * ny + y].im, fft_tol(nx * ny))
            << nx << "x" << ny << " keep " << kx << "x" << ky << " @" << x << "," << y;
      }
    }

    // And the padded inverse accepts the same degenerate spectra.
    const auto spec = random_signal(kx * ky, 257u);
    std::vector<c32> padded(nx * ny, c32{});
    for (std::size_t x = 0; x < kx; ++x) {
      for (std::size_t y = 0; y < ky; ++y) padded[x * ny + y] = spec[x * ky + y];
    }
    std::vector<c32> expect(nx * ny), back(nx * ny);
    make2d(nx, ny, Direction::Inverse).execute(padded, expect, 1);
    make2d(nx, ny, Direction::Inverse, kx, ky).execute(spec, back, 1);
    EXPECT_LT(max_err(back, expect), fft_tol(nx * ny)) << nx << "x" << ny;
  }
}

TEST(Fft2dEdgeShapes, ZeroBatchIsANoOp) {
  const FftPlan2d plan = make2d(8, 8, Direction::Forward, 2, 2);
  std::vector<c32> out(4, c32{1.0f, -1.0f});
  plan.execute(std::span<const c32>{}, out, 0);
  EXPECT_EQ(out[0].re, 1.0f);  // untouched
}

}  // namespace
}  // namespace turbofno::fft
