// SM occupancy / wave-quantization model (explains the Fig 14/19 slowdown
// corner at small batch x large hidden dim).
#include <gtest/gtest.h>

#include <string>

#include "gpusim/occupancy.hpp"

namespace turbofno::gpusim {
namespace {

TEST(Occupancy, ThreadLimitedKernel) {
  SmLimits sm;
  BlockResources b;
  b.threads = 1024;
  b.registers_per_thread = 32;
  b.shared_memory_bytes = 1024;
  const auto o = occupancy_of(sm, b);
  EXPECT_EQ(o.blocks_per_sm, 2u);  // 2048 / 1024
  EXPECT_DOUBLE_EQ(o.occupancy, 1.0);
  EXPECT_EQ(std::string(o.limiter), "threads");
}

TEST(Occupancy, RegisterLimitedKernel) {
  SmLimits sm;
  BlockResources b;
  b.threads = 256;
  b.registers_per_thread = 128;  // 32768 regs/block -> 2 blocks
  b.shared_memory_bytes = 0;
  const auto o = occupancy_of(sm, b);
  EXPECT_EQ(o.blocks_per_sm, 2u);
  EXPECT_EQ(std::string(o.limiter), "registers");
  EXPECT_DOUBLE_EQ(o.occupancy, 0.25);
}

TEST(Occupancy, SharedMemoryLimitedKernel) {
  SmLimits sm;
  BlockResources b;
  b.threads = 128;
  b.registers_per_thread = 32;
  b.shared_memory_bytes = 64 * 1024;  // 164K / 64K -> 2 blocks
  const auto o = occupancy_of(sm, b);
  EXPECT_EQ(o.blocks_per_sm, 2u);
  EXPECT_EQ(std::string(o.limiter), "shared memory");
}

TEST(Occupancy, OversizedBlockIsRejected) {
  SmLimits sm;
  BlockResources b;
  b.threads = 4096;
  const auto o = occupancy_of(sm, b);
  EXPECT_EQ(o.blocks_per_sm, 0u);
}

TEST(Occupancy, MaxBlockCapApplies) {
  SmLimits sm;
  BlockResources b;
  b.threads = 32;  // by threads: 64, but cap is 32
  b.registers_per_thread = 1;
  b.shared_memory_bytes = 0;
  const auto o = occupancy_of(sm, b);
  EXPECT_EQ(o.blocks_per_sm, sm.max_blocks);
}

TEST(WaveEfficiency, FullWaveIsPerfect) {
  SmLimits sm;
  BlockResources b;  // defaults: 256 thr, 64 regs -> 4 blocks/SM
  const auto o = occupancy_of(sm, b);
  const std::size_t wave = o.blocks_per_sm * sm.sm_count;
  EXPECT_DOUBLE_EQ(wave_efficiency(sm, b, wave), 1.0);
  EXPECT_DOUBLE_EQ(wave_efficiency(sm, b, 2 * wave), 1.0);
}

TEST(WaveEfficiency, TinyGridWastesTheDevice) {
  SmLimits sm;
  BlockResources b;
  // One block: one wave, almost all SMs idle.
  const double eff = wave_efficiency(sm, b, 1);
  EXPECT_LT(eff, 0.01);
  EXPECT_GT(eff, 0.0);
}

TEST(WaveEfficiency, TailWaveDegradesPartially) {
  SmLimits sm;
  BlockResources b;
  const auto o = occupancy_of(sm, b);
  const std::size_t wave = o.blocks_per_sm * sm.sm_count;
  const double eff = wave_efficiency(sm, b, wave + 1);  // 2 waves, 1 block in the tail
  EXPECT_NEAR(eff, static_cast<double>(wave + 1) / (2.0 * wave), 1e-12);
}

TEST(WaveEfficiency, EmptyGridIsZero) {
  SmLimits sm;
  BlockResources b;
  EXPECT_DOUBLE_EQ(wave_efficiency(sm, b, 0), 0.0);
}

TEST(FusedKernelModel, SharedMemoryGrowsWithModesAndFftLen) {
  const auto small = fused_kernel_block(64, 128);
  const auto big = fused_kernel_block(128, 256);
  EXPECT_LT(small.shared_memory_bytes, big.shared_memory_bytes);
  // Table 1 config must actually fit on an A100 SM.
  SmLimits sm;
  EXPECT_GE(occupancy_of(sm, small).blocks_per_sm, 1u);
  EXPECT_GE(occupancy_of(sm, big).blocks_per_sm, 1u);
}

TEST(FusedKernelModel, SmallBatchCornerHasLowWaveEfficiency) {
  // The paper's Fig 14 blue corner: small batch -> few blocks -> idle SMs.
  SmLimits sm;
  const auto block = fused_kernel_block(64, 128);
  const double small_batch = wave_efficiency(sm, block, fused_grid_1d(4, 128));
  const double large_batch = wave_efficiency(sm, block, fused_grid_1d(4096, 128));
  EXPECT_LT(small_batch, 0.2);
  EXPECT_GT(large_batch, 0.9);
}

TEST(FusedKernelModel, GridScalesWithBatchAndOutputTiles) {
  EXPECT_EQ(fused_grid_1d(10, 64, 32), 20u);
  EXPECT_EQ(fused_grid_1d(10, 65, 32), 30u);
  EXPECT_EQ(fused_grid_1d(1, 32, 32), 1u);
}

}  // namespace
}  // namespace turbofno::gpusim
