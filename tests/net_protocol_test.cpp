// Wire-protocol codec tests: round-trip properties over the whole option
// space (frame types, QoS classes, dtypes, 1..4-dim shapes, empty and
// large payloads), a golden little-endian byte layout (so the format is
// pinned against accidental re-ordering, on either host endianness), and
// a deterministic malformed-frame corpus covering every DecodeError.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "net/protocol.hpp"

namespace turbofno::net {
namespace {

std::vector<std::byte> patterned_payload(std::size_t bytes) {
  std::vector<std::byte> p(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    p[i] = static_cast<std::byte>((i * 131 + 17) & 0xff);
  }
  return p;
}

RequestHead make_head(std::span<const std::uint32_t> dims, Dtype dtype, Qos qos) {
  RequestHead h;
  h.correlation = 0x0123456789abcdefULL;
  h.model = 7;
  h.dtype = dtype;
  h.qos = qos;
  h.deadline_us = 2500;
  h.ndim = static_cast<std::uint16_t>(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) h.dims[i] = dims[i];
  return h;
}

std::vector<std::byte> encode_request_frame(const RequestHead& h,
                                            std::span<const std::byte> payload) {
  std::vector<std::byte> f(encoded_request_bytes(h.ndim, payload.size()));
  const std::size_t n = encode_request(f, h, payload);
  EXPECT_EQ(n, f.size());
  return f;
}

// ---------------------------------------------------------------- CRC-32

TEST(NetProtocol, Crc32KnownVector) {
  // The canonical IEEE 802.3 check value: crc32("123456789") == 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const std::byte*>(s), 9}), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

// ------------------------------------------------------------ round trips

TEST(NetProtocol, RequestRoundTripAllOptions) {
  const std::vector<std::vector<std::uint32_t>> shapes = {
      {64}, {2, 64}, {2, 16, 16}, {2, 3, 4, 5}};
  for (const Dtype dtype : {Dtype::C32, Dtype::F32}) {
    for (const Qos qos : {Qos::High, Qos::Normal}) {
      for (const auto& dims : shapes) {
        const RequestHead h = make_head(dims, dtype, qos);
        const std::size_t bytes = static_cast<std::size_t>(h.elems()) * dtype_bytes(dtype);
        const auto payload = patterned_payload(bytes);
        const auto frame = encode_request_frame(h, payload);

        FrameHeader fh;
        ASSERT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::None);
        EXPECT_EQ(fh.type, FrameType::Request);
        ASSERT_EQ(frame.size(), kHeaderBytes + fh.body_len);
        const std::span<const std::byte> body{frame.data() + kHeaderBytes, fh.body_len};
        ASSERT_EQ(verify_body(fh, body), DecodeError::None);

        RequestHead got;
        std::span<const std::byte> got_payload;
        ASSERT_EQ(decode_request(body, got, got_payload), DecodeError::None);
        EXPECT_EQ(got.correlation, h.correlation);
        EXPECT_EQ(got.model, h.model);
        EXPECT_EQ(got.dtype, h.dtype);
        EXPECT_EQ(got.qos, h.qos);
        EXPECT_EQ(got.deadline_us, h.deadline_us);
        ASSERT_EQ(got.ndim, h.ndim);
        for (std::uint16_t i = 0; i < h.ndim; ++i) EXPECT_EQ(got.dims[i], h.dims[i]);
        ASSERT_EQ(got_payload.size(), payload.size());
        EXPECT_EQ(std::memcmp(got_payload.data(), payload.data(), payload.size()), 0);
      }
    }
  }
}

TEST(NetProtocol, RequestRoundTripEmptyPayload) {
  // A zero dim is a legal shape whose payload is empty.
  const std::uint32_t dims[] = {0};
  const RequestHead h = make_head(dims, Dtype::F32, Qos::Normal);
  const auto frame = encode_request_frame(h, {});
  FrameHeader fh;
  ASSERT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::None);
  RequestHead got;
  std::span<const std::byte> payload;
  ASSERT_EQ(decode_request({frame.data() + kHeaderBytes, fh.body_len}, got, payload),
            DecodeError::None);
  EXPECT_TRUE(payload.empty());
}

TEST(NetProtocol, RequestRoundTripLargePayload) {
  // A payload right at a small server's frame limit still round-trips.
  const std::uint32_t dims[] = {1u << 18};  // 1 MiB of f32
  const RequestHead h = make_head(dims, Dtype::F32, Qos::High);
  const auto payload = patterned_payload((1u << 18) * 4);
  const auto frame = encode_request_frame(h, payload);
  FrameHeader fh;
  ASSERT_EQ(decode_header(frame, fh, kMaxMaxFrameBytes), DecodeError::None);
  const std::span<const std::byte> body{frame.data() + kHeaderBytes, frame.size() - kHeaderBytes};
  ASSERT_EQ(verify_body(fh, body), DecodeError::None);
  RequestHead got;
  std::span<const std::byte> got_payload;
  ASSERT_EQ(decode_request(body, got, got_payload), DecodeError::None);
  EXPECT_EQ(got_payload.size(), payload.size());
}

TEST(NetProtocol, ResponseRoundTrip) {
  ResponseHead h;
  h.correlation = 42;
  h.status = WireStatus::Ok;
  h.dtype = Dtype::C32;
  h.queue_us = 11;
  h.exec_us = 22;
  h.total_us = 33;
  h.micro_batch = 4;
  const auto payload = patterned_payload(64 * 8);
  std::vector<std::byte> frame(encoded_response_bytes(payload.size()));
  // The serving path writes the prefix first and the payload later (the
  // session fills it in place), then seals — mirror that order here.
  encode_response_prefix(frame, h, payload.size());
  std::memcpy(frame.data() + kHeaderBytes + kResponsePrefixBytes, payload.data(),
              payload.size());
  EXPECT_EQ(seal_response(frame), frame.size());

  FrameHeader fh;
  ASSERT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::None);
  EXPECT_EQ(fh.type, FrameType::Response);
  const std::span<const std::byte> body{frame.data() + kHeaderBytes, fh.body_len};
  ASSERT_EQ(verify_body(fh, body), DecodeError::None);
  ResponseHead got;
  std::span<const std::byte> got_payload;
  ASSERT_EQ(decode_response(body, got, got_payload), DecodeError::None);
  EXPECT_EQ(got.correlation, h.correlation);
  EXPECT_EQ(got.status, WireStatus::Ok);
  EXPECT_EQ(got.dtype, Dtype::C32);
  EXPECT_EQ(got.queue_us, 11u);
  EXPECT_EQ(got.exec_us, 22u);
  EXPECT_EQ(got.total_us, 33u);
  EXPECT_EQ(got.micro_batch, 4u);
  ASSERT_EQ(got_payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(got_payload.data(), payload.data(), payload.size()), 0);
}

TEST(NetProtocol, ErrorResponseHasNoPayload) {
  ResponseHead h;
  h.correlation = 9;
  h.status = WireStatus::BadChecksum;
  std::vector<std::byte> frame(encoded_response_bytes(0));
  EXPECT_EQ(encode_response(frame, h), kHeaderBytes + kResponsePrefixBytes);
  FrameHeader fh;
  ASSERT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::None);
  ResponseHead got;
  std::span<const std::byte> payload;
  ASSERT_EQ(decode_response({frame.data() + kHeaderBytes, fh.body_len}, got, payload),
            DecodeError::None);
  EXPECT_EQ(got.status, WireStatus::BadChecksum);
  EXPECT_TRUE(payload.empty());
}

// -------------------------------------------------------- golden layout

TEST(NetProtocol, GoldenByteLayout) {
  // Hand-computed frame: pins the on-wire layout (field order, offsets,
  // little-endianness) independently of the encode/decode pair agreeing.
  const std::uint32_t dims[] = {2, 3};
  RequestHead h;
  h.correlation = 0x1122334455667788ULL;
  h.model = 0xA1B2C3D4u;
  h.dtype = Dtype::F32;
  h.qos = Qos::High;
  h.deadline_us = 0x000F4240u;  // 1e6
  h.ndim = 2;
  h.dims[0] = dims[0];
  h.dims[1] = dims[1];
  const auto payload = patterned_payload(6 * 4);
  const auto frame = encode_request_frame(h, payload);

  const auto u8 = [&](std::size_t i) { return std::to_integer<unsigned>(frame[i]); };
  // Header: magic, version, type, reserved, body_len.
  EXPECT_EQ(u8(0), 'T');
  EXPECT_EQ(u8(1), 'F');
  EXPECT_EQ(u8(2), 'N');
  EXPECT_EQ(u8(3), 'O');
  EXPECT_EQ(u8(4), 1u);  // version
  EXPECT_EQ(u8(5), 1u);  // FrameType::Request
  EXPECT_EQ(u8(6), 0u);
  EXPECT_EQ(u8(7), 0u);
  const std::uint32_t body_len = 20 + 4 * 2 + 24;
  EXPECT_EQ(u8(8), body_len & 0xff);  // little-endian low byte first
  EXPECT_EQ(u8(9), 0u);
  // Body: correlation little-endian (low byte 0x88 first).
  EXPECT_EQ(u8(16), 0x88u);
  EXPECT_EQ(u8(23), 0x11u);
  // model
  EXPECT_EQ(u8(24), 0xD4u);
  EXPECT_EQ(u8(27), 0xA1u);
  // dtype, qos
  EXPECT_EQ(u8(28), 1u);  // F32
  EXPECT_EQ(u8(29), 0u);  // High
  // ndim
  EXPECT_EQ(u8(30), 2u);
  EXPECT_EQ(u8(31), 0u);
  // deadline_us = 1e6 = 0x000F4240
  EXPECT_EQ(u8(32), 0x40u);
  EXPECT_EQ(u8(33), 0x42u);
  EXPECT_EQ(u8(34), 0x0Fu);
  EXPECT_EQ(u8(35), 0x00u);
  // dims
  EXPECT_EQ(u8(36), 2u);
  EXPECT_EQ(u8(40), 3u);
  // payload begins at 20 + 4*2 = 28 into the body (44 absolute): 4-byte
  // aligned, as documented.
  EXPECT_EQ(request_prefix_bytes(2) % 4, 0u);
  EXPECT_EQ(u8(44), std::to_integer<unsigned>(payload[0]));
}

// ---------------------------------------------------- malformed corpus

TEST(NetProtocol, TruncatedHeaderNeedsMoreData) {
  const std::uint32_t dims[] = {4};
  const auto frame = encode_request_frame(make_head(dims, Dtype::F32, Qos::Normal),
                                          patterned_payload(16));
  FrameHeader fh;
  for (std::size_t n = 0; n < kHeaderBytes; ++n) {
    EXPECT_EQ(decode_header({frame.data(), n}, fh, kDefaultMaxFrameBytes),
              DecodeError::NeedMoreData);
  }
}

TEST(NetProtocol, BadMagicRejectedAndCloses) {
  const std::uint32_t dims[] = {4};
  auto frame = encode_request_frame(make_head(dims, Dtype::F32, Qos::Normal),
                                    patterned_payload(16));
  frame[0] = static_cast<std::byte>('X');
  FrameHeader fh;
  EXPECT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::BadMagic);
  EXPECT_TRUE(decode_error_closes(DecodeError::BadMagic));
  EXPECT_EQ(decode_error_status(DecodeError::BadMagic), WireStatus::BadMagic);
}

TEST(NetProtocol, BadVersionRejectedAndCloses) {
  const std::uint32_t dims[] = {4};
  auto frame = encode_request_frame(make_head(dims, Dtype::F32, Qos::Normal),
                                    patterned_payload(16));
  frame[4] = static_cast<std::byte>(99);
  FrameHeader fh;
  EXPECT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::BadVersion);
  EXPECT_TRUE(decode_error_closes(DecodeError::BadVersion));
  EXPECT_EQ(decode_error_status(DecodeError::BadVersion), WireStatus::BadVersion);
}

TEST(NetProtocol, BadFrameTypeRejectedAndCloses) {
  const std::uint32_t dims[] = {4};
  auto frame = encode_request_frame(make_head(dims, Dtype::F32, Qos::Normal),
                                    patterned_payload(16));
  frame[5] = static_cast<std::byte>(7);
  FrameHeader fh;
  EXPECT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::BadType);
  EXPECT_TRUE(decode_error_closes(DecodeError::BadType));
}

TEST(NetProtocol, OverLimitDeclaredLengthRejectedAndCloses) {
  const std::uint32_t dims[] = {4};
  const auto frame = encode_request_frame(make_head(dims, Dtype::F32, Qos::Normal),
                                          patterned_payload(16));
  FrameHeader fh;
  // The same frame decodes fine with a generous limit and TooLarge with a
  // tiny one — the check is against the *declared* length, pre-buffering,
  // so a malicious length cannot demand memory.
  EXPECT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::None);
  EXPECT_EQ(decode_header(frame, fh, 8), DecodeError::TooLarge);
  EXPECT_TRUE(decode_error_closes(DecodeError::TooLarge));
  EXPECT_EQ(decode_error_status(DecodeError::TooLarge), WireStatus::TooLarge);
}

TEST(NetProtocol, ChecksumMismatchRejectedAndCloses) {
  const std::uint32_t dims[] = {4};
  auto frame = encode_request_frame(make_head(dims, Dtype::F32, Qos::Normal),
                                    patterned_payload(16));
  FrameHeader fh;
  ASSERT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::None);
  frame[frame.size() - 1] ^= static_cast<std::byte>(0x01);  // flip one payload bit
  EXPECT_EQ(verify_body(fh, {frame.data() + kHeaderBytes, fh.body_len}),
            DecodeError::BadChecksum);
  EXPECT_TRUE(decode_error_closes(DecodeError::BadChecksum));
}

TEST(NetProtocol, ShapePayloadDisagreementRejected) {
  // Declared dims say 8 elements; payload carries 4. Recoverable (the
  // stream framing is intact) — the connection stays open.
  const std::uint32_t dims[] = {8};
  RequestHead h = make_head(dims, Dtype::F32, Qos::Normal);
  const auto payload = patterned_payload(4 * 4);
  std::vector<std::byte> frame(encoded_request_bytes(h.ndim, payload.size()));
  encode_request(frame, h, payload);
  FrameHeader fh;
  ASSERT_EQ(decode_header(frame, fh, kDefaultMaxFrameBytes), DecodeError::None);
  const std::span<const std::byte> body{frame.data() + kHeaderBytes, fh.body_len};
  ASSERT_EQ(verify_body(fh, body), DecodeError::None);
  RequestHead got;
  std::span<const std::byte> p;
  EXPECT_EQ(decode_request(body, got, p), DecodeError::ShapeMismatch);
  EXPECT_FALSE(decode_error_closes(DecodeError::ShapeMismatch));
  EXPECT_EQ(decode_error_status(DecodeError::ShapeMismatch), WireStatus::ShapeMismatch);
}

TEST(NetProtocol, BadBodyFieldsRejected) {
  const std::uint32_t dims[] = {4};
  const auto payload = patterned_payload(16);
  const RequestHead h = make_head(dims, Dtype::F32, Qos::Normal);
  const auto good = encode_request_frame(h, payload);
  const std::size_t body_len = good.size() - kHeaderBytes;

  const auto expect_bad = [&](std::size_t body_off, std::uint8_t value) {
    auto frame = good;
    frame[kHeaderBytes + body_off] = static_cast<std::byte>(value);
    RequestHead got;
    std::span<const std::byte> p;
    EXPECT_EQ(decode_request({frame.data() + kHeaderBytes, body_len}, got, p),
              DecodeError::BadBody);
  };
  expect_bad(12, 2);    // dtype out of range
  expect_bad(13, 2);    // qos out of range
  expect_bad(14, 0);    // ndim == 0
  expect_bad(14, 200);  // ndim > kMaxDims
  // Truncated body: shorter than the minimal prefix.
  RequestHead got;
  std::span<const std::byte> p;
  EXPECT_EQ(decode_request({good.data() + kHeaderBytes, 8}, got, p), DecodeError::BadBody);
  EXPECT_FALSE(decode_error_closes(DecodeError::BadBody));
  EXPECT_EQ(decode_error_status(DecodeError::BadBody), WireStatus::BadFrame);
}

TEST(NetProtocol, DimsOverflowCannotCollideWithPayload) {
  // 2^16 * 2^16 * 2^16 * 2 overflows 32 bits to a small number; the elems
  // product is computed in 64-bit so the declared payload cannot match.
  const std::uint32_t dims[] = {1u << 16, 1u << 16, 1u << 16, 2};
  RequestHead h = make_head(dims, Dtype::F32, Qos::Normal);
  const auto payload = patterned_payload(8);  // == (2^48 * 2 mod 2^32) * 4? no: tiny
  std::vector<std::byte> frame(encoded_request_bytes(h.ndim, payload.size()));
  encode_request(frame, h, payload);
  RequestHead got;
  std::span<const std::byte> p;
  EXPECT_EQ(decode_request({frame.data() + kHeaderBytes, frame.size() - kHeaderBytes}, got, p),
            DecodeError::ShapeMismatch);
}

// ------------------------------------------------------------- env knobs

TEST(NetProtocol, PortKnobParsesAndClamps) {
  ::unsetenv("TURBOFNO_NET_PORT");
  EXPECT_EQ(default_port(), 7470);
  ::setenv("TURBOFNO_NET_PORT", "8123", 1);
  EXPECT_EQ(default_port(), 8123);
  ::setenv("TURBOFNO_NET_PORT", "99999", 1);  // above the TCP range: clamped
  EXPECT_EQ(default_port(), 65535);
  ::setenv("TURBOFNO_NET_PORT", "-5", 1);
  EXPECT_EQ(default_port(), 0);
  ::setenv("TURBOFNO_NET_PORT", "12a", 1);  // trailing garbage: default
  EXPECT_EQ(default_port(), 7470);
  ::unsetenv("TURBOFNO_NET_PORT");
}

TEST(NetProtocol, MaxFrameKnobParsesAndClamps) {
  ::unsetenv("TURBOFNO_NET_MAX_FRAME");
  EXPECT_EQ(default_max_frame_bytes(), kDefaultMaxFrameBytes);
  ::setenv("TURBOFNO_NET_MAX_FRAME", "1048576", 1);
  EXPECT_EQ(default_max_frame_bytes(), 1048576u);
  ::setenv("TURBOFNO_NET_MAX_FRAME", "1", 1);  // below the floor: clamped up
  EXPECT_EQ(default_max_frame_bytes(), kMinMaxFrameBytes);
  ::setenv("TURBOFNO_NET_MAX_FRAME", "99999999999", 1);  // huge: clamped down
  EXPECT_EQ(default_max_frame_bytes(), kMaxMaxFrameBytes);
  ::setenv("TURBOFNO_NET_MAX_FRAME", "", 1);  // empty: default
  EXPECT_EQ(default_max_frame_bytes(), kDefaultMaxFrameBytes);
  ::unsetenv("TURBOFNO_NET_MAX_FRAME");
}

// ----------------------------------------------------------- control frames

TEST(NetProtocol, ControlFrameRoundTripsAllKinds) {
  for (const ControlKind kind : {ControlKind::Hello, ControlKind::HelloAck,
                                 ControlKind::Heartbeat, ControlKind::HeartbeatAck}) {
    ControlHead in;
    in.kind = kind;
    in.token = 0xfeedfacecafef00dULL;
    std::vector<std::byte> frame(encoded_control_bytes());
    const std::size_t len = encode_control(frame, in);
    ASSERT_EQ(len, kHeaderBytes + kControlBodyBytes);

    FrameHeader fh;
    ASSERT_EQ(decode_header({frame.data(), kHeaderBytes}, fh, 1 << 20), DecodeError::None);
    EXPECT_EQ(fh.type, FrameType::Control);  // type 3 passes the header check
    EXPECT_EQ(fh.body_len, kControlBodyBytes);
    const std::span<const std::byte> body{frame.data() + kHeaderBytes, fh.body_len};
    ASSERT_EQ(verify_body(fh, body), DecodeError::None);

    ControlHead out;
    ASSERT_EQ(decode_control(body, out), DecodeError::None);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.token, in.token);
  }
}

TEST(NetProtocol, ControlFrameGoldenByteLayout) {
  ControlHead h;
  h.kind = ControlKind::Heartbeat;
  h.token = 0x1122334455667788ULL;
  std::vector<std::byte> frame(encoded_control_bytes());
  (void)encode_control(frame, h);
  const auto* b = reinterpret_cast<const unsigned char*>(frame.data()) + kHeaderBytes;
  EXPECT_EQ(b[0], 3u);  // kind = Heartbeat
  EXPECT_EQ(b[1], 0u);  // zero padding
  EXPECT_EQ(b[2], 0u);
  EXPECT_EQ(b[3], 0u);
  // token, little-endian at body offset 4.
  EXPECT_EQ(b[4], 0x88u);
  EXPECT_EQ(b[5], 0x77u);
  EXPECT_EQ(b[11], 0x11u);
}

TEST(NetProtocol, MalformedControlBodiesRejected) {
  std::vector<std::byte> frame(encoded_control_bytes());
  ControlHead good;
  good.kind = ControlKind::Hello;
  good.token = 5;
  (void)encode_control(frame, good);

  ControlHead out;
  // Kind 0 and kinds past HeartbeatAck are BadBody.
  for (const unsigned bad_kind : {0u, 5u, 200u}) {
    auto f = frame;
    f[kHeaderBytes] = static_cast<std::byte>(bad_kind);
    EXPECT_EQ(decode_control({f.data() + kHeaderBytes, kControlBodyBytes}, out),
              DecodeError::BadBody)
        << "kind " << bad_kind;
  }
  // A truncated control body is BadBody, not a read past the end.
  EXPECT_EQ(decode_control({frame.data() + kHeaderBytes, kControlBodyBytes - 1}, out),
            DecodeError::BadBody);
}

}  // namespace
}  // namespace turbofno::net
