// Property suite over the fused pipeline ladder: the recorded traffic
// counters must equal the closed-form byte/FLOP formulas derived from the
// problem shape, for every variant over a shape grid.  These are the same
// identities the A100 predictions rest on, so drift here would silently
// corrupt every modeled figure.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "fft/fft2d.hpp"
#include "fft/opcount.hpp"
#include "fused/ladder.hpp"
#include "test_util.hpp"

namespace turbofno::fused {
namespace {

using baseline::Spectral1dProblem;
using baseline::Spectral2dProblem;
using turbofno::testing::random_signal;

class CounterLaws1d : public ::testing::TestWithParam<Spectral1dProblem> {};

trace::StageCounters run_total_1d(Variant var, const Spectral1dProblem& p) {
  const auto u = random_signal(p.input_elems(), 3001u);
  const auto w = random_signal(p.weight_elems(), 3003u);
  std::vector<c32> v(p.output_elems());
  auto pipe = make_pipeline1d(var, p);
  pipe->run(u, w, v);
  return pipe->counters().total();
}

TEST_P(CounterLaws1d, BaselineBytesFormula) {
  const auto& p = GetParam();
  const auto t = run_total_1d(Variant::PyTorch, p);
  const std::uint64_t e = sizeof(c32);
  // fft r/w full + trunc copy r/w + gemm (A=W once, B, C) + pad copy + ifft.
  const std::uint64_t expect_read =
      (p.batch * p.hidden * p.n) * e + (p.batch * p.hidden * p.modes) * e +
      (p.batch * p.hidden * p.modes + p.out_dim * p.hidden) * e +
      (p.batch * p.out_dim * p.modes) * e + (p.batch * p.out_dim * p.n) * e;
  const std::uint64_t expect_write =
      (p.batch * p.hidden * p.n) * e + (p.batch * p.hidden * p.modes) * e +
      (p.batch * p.out_dim * p.modes) * e + (p.batch * p.out_dim * p.n) * e +
      (p.batch * p.out_dim * p.n) * e;
  EXPECT_EQ(t.bytes_read, expect_read);
  EXPECT_EQ(t.bytes_written, expect_write);
  EXPECT_EQ(t.kernel_launches, 5u);
}

TEST_P(CounterLaws1d, FullyFusedBytesFormula) {
  const auto& p = GetParam();
  const auto t = run_total_1d(Variant::FullyFused, p);
  EXPECT_EQ(t.bytes_read, (p.input_elems() + p.weight_elems()) * sizeof(c32));
  EXPECT_EQ(t.bytes_written, p.output_elems() * sizeof(c32));
  EXPECT_EQ(t.kernel_launches, 1u);
}

TEST_P(CounterLaws1d, FusedFlopsDecomposition) {
  const auto& p = GetParam();
  const auto t = run_total_1d(Variant::FullyFused, p);
  const auto fwd = fft::count_pruned_ops(p.n, p.modes, p.n).flops();
  const auto inv = fft::count_pruned_ops(p.n, p.n, p.modes).flops();
  const std::uint64_t expect = p.batch * p.hidden * fwd +
                               trace::cgemm_flops(p.batch * p.modes, p.out_dim, p.hidden) +
                               p.batch * p.out_dim * inv;
  EXPECT_EQ(t.flops, expect);
}

TEST_P(CounterLaws1d, PartialFusionsBracketTheEndpoints) {
  const auto& p = GetParam();
  const auto base = run_total_1d(Variant::PyTorch, p).bytes_total();
  const auto a = run_total_1d(Variant::FftOpt, p).bytes_total();
  const auto b = run_total_1d(Variant::FusedFftGemm, p).bytes_total();
  const auto c = run_total_1d(Variant::FusedGemmIfft, p).bytes_total();
  const auto d = run_total_1d(Variant::FullyFused, p).bytes_total();
  EXPECT_GT(base, a);
  EXPECT_GE(a, b);
  EXPECT_GE(a, c);
  EXPECT_GE(b, d);
  EXPECT_GE(c, d);
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, CounterLaws1d,
                         ::testing::Values(Spectral1dProblem{1, 8, 8, 32, 8},
                                           Spectral1dProblem{3, 16, 8, 64, 16},
                                           Spectral1dProblem{2, 24, 32, 128, 64},
                                           Spectral1dProblem{5, 9, 7, 64, 64},
                                           Spectral1dProblem{4, 32, 32, 256, 64},
                                           Spectral1dProblem{2, 8, 8, 64, 1}));

class CounterLaws2d : public ::testing::TestWithParam<Spectral2dProblem> {};

// Restores the middle-stage schedule even when a test fails mid-flight.
struct FusedMidGuard {
  bool prev = fft::fused_mid_enabled();
  ~FusedMidGuard() { fft::set_fused_mid(prev); }
};

TEST_P(CounterLaws2d, FullyFusedBytesFormula) {
  const auto& p = GetParam();
  const auto u = random_signal(p.input_elems(), 3011u);
  const auto w = random_signal(p.weight_elems(), 3013u);
  std::vector<c32> v(p.output_elems());
  auto pipe = make_pipeline2d(Variant::FullyFused, p);
  const std::uint64_t e = sizeof(c32);
  const std::uint64_t mid = p.batch * p.hidden * p.modes_x * p.ny;     // after X stage
  const std::uint64_t mid_out = p.batch * p.out_dim * p.modes_x * p.ny;
  const FusedMidGuard guard;

  // Fused middle (default): the X spectra stay in staging tiles, so only
  // the true global tensors and the weights count as traffic.
  fft::set_fused_mid(true);
  pipe->run(u, w, v);
  auto t = pipe->counters().total();
  EXPECT_EQ(t.bytes_read, (p.input_elems() + p.weight_elems()) * e);
  EXPECT_EQ(t.bytes_written, p.output_elems() * e);
  EXPECT_EQ(t.kernel_launches, 3u);

  // Unfused middle: the x-major [B,K,mx,ny] intermediates go through
  // memory once in each direction.
  fft::set_fused_mid(false);
  pipe->run(u, w, v);
  t = pipe->counters().total();
  const std::uint64_t expect_read =
      p.input_elems() * e + (mid + p.weight_elems()) * e + mid_out * e;
  const std::uint64_t expect_write = mid * e + mid_out * e + p.output_elems() * e;
  EXPECT_EQ(t.bytes_read, expect_read);
  EXPECT_EQ(t.bytes_written, expect_write);
  EXPECT_EQ(t.kernel_launches, 3u);
}

TEST_P(CounterLaws2d, TruncationShrinksTheMiddle) {
  // The fused middle stage must move strictly fewer bytes than the input
  // whenever modes_x < nx (the Figure 4 write saving).
  const auto& p = GetParam();
  if (p.modes_x == p.nx) GTEST_SKIP();
  const auto u = random_signal(p.input_elems(), 3017u);
  const auto w = random_signal(p.weight_elems(), 3019u);
  std::vector<c32> v(p.output_elems());
  auto pipe = make_pipeline2d(Variant::FullyFused, p);
  pipe->run(u, w, v);
  std::uint64_t mid_bytes = 0;
  for (const auto& s : pipe->counters().stages()) {
    if (s.name == "fused-fft-cgemm-ifft") mid_bytes = s.bytes_total();
  }
  EXPECT_LT(mid_bytes,
            pipe->counters().stages().front().bytes_total());
}

INSTANTIATE_TEST_SUITE_P(ShapeGrid, CounterLaws2d,
                         ::testing::Values(Spectral2dProblem{1, 8, 8, 16, 16, 4, 4},
                                           Spectral2dProblem{2, 16, 8, 32, 16, 8, 8},
                                           Spectral2dProblem{1, 8, 16, 16, 32, 16, 8},
                                           Spectral2dProblem{2, 8, 8, 16, 16, 16, 16}));

// ------------------------------------------------- batched serving entries
//
// The serving layer coalesces independent requests into micro-batches, so
// each request's output must be bitwise-invariant to (a) the size of the
// batch it rides in ("linearity in the batch dimension": running a prefix
// equals the prefix of a full run) and (b) its position in the batch.  Any
// cross-request state leak in a pipeline breaks one of these.

bool same_bits(std::span<const c32> a, std::span<const c32> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(c32)) == 0;
}

TEST(BatchedEntry1d, EachRequestBitwiseInvariantToBatchCompositionAllVariants) {
  const Spectral1dProblem p{4, 8, 6, 64, 16};
  const auto u = random_signal(p.input_elems(), 4001u);
  const auto w = random_signal(p.weight_elems(), 4003u);
  const std::size_t in_stride = p.hidden * p.n;
  const std::size_t out_stride = p.out_dim * p.n;
  const std::span<const c32> uspan{u};

  for (const auto var : kAllVariants) {
    auto pipe = make_pipeline1d(var, p);
    std::vector<c32> full(p.output_elems());
    pipe->run_batched(u, w, full, p.batch);

    // Prefix runs equal prefixes of the full run (batch-dimension linearity).
    for (std::size_t b = 1; b < p.batch; ++b) {
      std::vector<c32> prefix(b * out_stride);
      pipe->run_batched(uspan.first(b * in_stride), w, prefix, b);
      EXPECT_TRUE(same_bits(prefix, std::span<const c32>(full).first(b * out_stride)))
          << variant_name(var) << " prefix batch " << b;
    }

    // Each request alone reproduces its slice (position invariance).
    for (std::size_t b = 0; b < p.batch; ++b) {
      std::vector<c32> one(out_stride);
      pipe->run_batched(uspan.subspan(b * in_stride, in_stride), w, one, 1);
      EXPECT_TRUE(same_bits(
          one, std::span<const c32>(full).subspan(b * out_stride, out_stride)))
          << variant_name(var) << " request " << b;
    }
  }
}

TEST(BatchedEntry1d, PermutedBatchPermutesOutputsBitwise) {
  const Spectral1dProblem p{3, 8, 8, 64, 16};
  const auto u = random_signal(p.input_elems(), 4011u);
  const auto w = random_signal(p.weight_elems(), 4013u);
  const std::size_t in_stride = p.hidden * p.n;
  const std::size_t out_stride = p.out_dim * p.n;
  const std::size_t perm[] = {2, 0, 1};

  auto pipe = make_pipeline1d(Variant::FullyFused, p);
  std::vector<c32> base(p.output_elems());
  pipe->run_batched(u, w, base, p.batch);

  std::vector<c32> u_perm(p.input_elems());
  for (std::size_t b = 0; b < p.batch; ++b) {
    std::memcpy(u_perm.data() + b * in_stride, u.data() + perm[b] * in_stride,
                in_stride * sizeof(c32));
  }
  std::vector<c32> out_perm(p.output_elems());
  pipe->run_batched(u_perm, w, out_perm, p.batch);
  for (std::size_t b = 0; b < p.batch; ++b) {
    EXPECT_TRUE(same_bits(
        std::span<const c32>(out_perm).subspan(b * out_stride, out_stride),
        std::span<const c32>(base).subspan(perm[b] * out_stride, out_stride)))
        << "slot " << b;
  }
}

TEST(BatchedEntry1d, OverCapacityThrowsAndZeroIsANoOp) {
  const Spectral1dProblem p{2, 8, 8, 32, 8};
  const auto u = random_signal(p.input_elems(), 4021u);
  const auto w = random_signal(p.weight_elems(), 4023u);
  std::vector<c32> v(p.output_elems());
  for (const auto var : kAllVariants) {
    auto pipe = make_pipeline1d(var, p);
    EXPECT_THROW(pipe->run_batched(u, w, v, p.batch + 1), std::invalid_argument)
        << variant_name(var);
    pipe->run_batched(u, w, v, 0);  // must not touch v or crash
    EXPECT_TRUE(pipe->counters().stages().empty()) << variant_name(var);
  }
}

TEST(BatchedEntry2d, EachRequestBitwiseInvariantToBatchCompositionAllVariants) {
  const Spectral2dProblem p{3, 8, 8, 16, 16, 4, 4};
  const auto u = random_signal(p.input_elems(), 4031u);
  const auto w = random_signal(p.weight_elems(), 4033u);
  const std::size_t in_stride = p.hidden * p.nx * p.ny;
  const std::size_t out_stride = p.out_dim * p.nx * p.ny;
  const std::span<const c32> uspan{u};

  for (const auto var : kAllVariants) {
    auto pipe = make_pipeline2d(var, p);
    std::vector<c32> full(p.output_elems());
    pipe->run_batched(u, w, full, p.batch);

    for (std::size_t b = 1; b < p.batch; ++b) {
      std::vector<c32> prefix(b * out_stride);
      pipe->run_batched(uspan.first(b * in_stride), w, prefix, b);
      EXPECT_TRUE(same_bits(prefix, std::span<const c32>(full).first(b * out_stride)))
          << variant_name(var) << " prefix batch " << b;
    }
    for (std::size_t b = 0; b < p.batch; ++b) {
      std::vector<c32> one(out_stride);
      pipe->run_batched(uspan.subspan(b * in_stride, in_stride), w, one, 1);
      EXPECT_TRUE(same_bits(
          one, std::span<const c32>(full).subspan(b * out_stride, out_stride)))
          << variant_name(var) << " request " << b;
    }
  }
}

TEST(BatchedEntry2d, CountersScaleWithTheMicroBatch) {
  // The counter formulas must describe the micro-batch actually executed,
  // not the planned capacity, or serving telemetry over-reports traffic.
  const Spectral2dProblem p{4, 8, 8, 16, 16, 4, 4};
  const auto u = random_signal(p.input_elems(), 4041u);
  const auto w = random_signal(p.weight_elems(), 4043u);
  auto pipe = make_pipeline2d(Variant::FullyFused, p);

  std::vector<c32> v(p.output_elems());
  pipe->run_batched(u, w, v, p.batch);
  const auto full = pipe->counters().total();

  const std::size_t half = p.batch / 2;
  pipe->run_batched(std::span<const c32>(u).first(half * p.hidden * p.nx * p.ny), w,
                    std::span<c32>(v).first(half * p.out_dim * p.nx * p.ny), half);
  const auto part = pipe->counters().total();

  // Input/output traffic halves exactly; the shared weight read does not.
  const std::uint64_t w_bytes = p.weight_elems() * sizeof(c32);
  EXPECT_EQ(part.bytes_read - w_bytes, (full.bytes_read - w_bytes) / 2);
  EXPECT_EQ(part.bytes_written, full.bytes_written / 2);
  EXPECT_EQ(part.flops, full.flops / 2);
}

}  // namespace
}  // namespace turbofno::fused
