// Sharded serving tests: topology routing, the router's bitwise
// transparency against a direct single-process server, correlation
// remapping under pipelined multi-client load, gap-queue/shed
// backpressure, and the supervisor's crash-restart loop (fork/exec'd
// tfno_shardd workers, SIGKILL fault injection mid-soak).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "net/client.hpp"
#include "net/socket_server.hpp"
#include "shard/router.hpp"
#include "shard/supervisor.hpp"
#include "shard/topology.hpp"
#include "shard/worker.hpp"
#include "test_util.hpp"

namespace turbofno::shard {
namespace {

using turbofno::testing::random_signal;

core::Fno1dConfig small_1d() {
  core::Fno1dConfig c;
  c.in_channels = 2;
  c.hidden = 8;
  c.out_channels = 2;
  c.n = 64;
  c.modes = 16;
  c.layers = 2;
  return c;
}

core::Fno2dConfig small_2d() {
  core::Fno2dConfig c;
  c.in_channels = 1;
  c.hidden = 8;
  c.out_channels = 1;
  c.nx = 16;
  c.ny = 16;
  c.modes_x = 4;
  c.modes_y = 4;
  c.layers = 2;
  return c;
}

/// A second, distinguishable 1D model (different hidden width => different
/// seeded weights), so cross-shard misrouting cannot go unnoticed.
core::Fno1dConfig alt_1d() {
  core::Fno1dConfig c = small_1d();
  c.hidden = 12;
  c.layers = 1;
  return c;
}

/// The mixed test topology: worker 0 owns globals {0, 2}, worker 1 owns
/// global {1} — local ids differ from global ids on purpose.
Topology test_topology() {
  Topology topo;
  topo.add(small_1d(), 0);
  topo.add(small_2d(), 1);
  topo.add(alt_1d(), 0);
  return topo;
}

std::vector<float> random_real(std::size_t n, unsigned seed) {
  const auto z = random_signal(n, seed);
  std::vector<float> r(n);
  for (std::size_t i = 0; i < n; ++i) r[i] = z[i].re;
  return r;
}

bool bitwise_equal(std::span<const std::byte> got, const void* want, std::size_t bytes) {
  return got.size() == bytes && std::memcmp(got.data(), want, bytes) == 0;
}

template <typename Pred>
bool eventually(Pred pred, double timeout_s = 10.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// tfno_shardd is built into the same output directory as the tests.
std::string shardd_path() {
  char buf[4096];
  const auto n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "tfno_shardd";
  buf[n] = '\0';
  const std::string self(buf);
  return self.substr(0, self.rfind('/')) + "/tfno_shardd";
}

/// An in-process two-worker fleet behind a router, all on ephemeral ports.
struct InProcessFleet {
  Topology topo = test_topology();
  Worker w0{topo, 0};
  Worker w1{topo, 1};
  Router router{test_topology()};  // Options{}: ephemeral public port

  InProcessFleet() {
    w0.start();
    w1.start();
    router.set_worker_endpoint(0, w0.port());
    router.set_worker_endpoint(1, w1.port());
    router.start();
  }
  ~InProcessFleet() {
    router.stop();
    w0.stop();
    w1.stop();
  }
};

// ----------------------------------------------------------------- topology

TEST(ShardTopology, RoutesGlobalIdsToOwnerLocalPairs) {
  const Topology topo = test_topology();
  EXPECT_EQ(topo.model_count(), 3u);
  EXPECT_EQ(topo.worker_count(), 2u);
  EXPECT_EQ(topo.owned_count(0), 2u);
  EXPECT_EQ(topo.owned_count(1), 1u);
  EXPECT_EQ(topo.owned(0), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(topo.owned(1), (std::vector<std::size_t>{1}));

  EXPECT_EQ(topo.route(0).worker, 0u);
  EXPECT_EQ(topo.route(0).local, 0u);
  EXPECT_EQ(topo.route(1).worker, 1u);
  EXPECT_EQ(topo.route(1).local, 0u);
  EXPECT_EQ(topo.route(2).worker, 0u);
  EXPECT_EQ(topo.route(2).local, 1u);
  EXPECT_THROW((void)topo.route(3), std::out_of_range);
}

TEST(ShardTopology, SpecSerializationRoundTrips) {
  const Topology topo = test_topology();
  const std::string spec = topo.spec();
  const Topology parsed = Topology::parse(spec);
  ASSERT_EQ(parsed.model_count(), topo.model_count());
  EXPECT_EQ(parsed.spec(), spec);  // canonical form is a fixed point
  for (std::size_t i = 0; i < topo.model_count(); ++i) {
    EXPECT_EQ(parsed.route(i).worker, topo.route(i).worker) << "model " << i;
    EXPECT_EQ(parsed.route(i).local, topo.route(i).local) << "model " << i;
    EXPECT_EQ(parsed.models()[i].is_2d, topo.models()[i].is_2d) << "model " << i;
  }
}

TEST(ShardTopology, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)Topology::parse("3d:1,2,3@0"), std::invalid_argument);
  EXPECT_THROW((void)Topology::parse("1d:1,2,3,4,5,6"), std::invalid_argument);   // no @
  EXPECT_THROW((void)Topology::parse("1d:1,2,3,4,5@0"), std::invalid_argument);   // 5 fields
  EXPECT_THROW((void)Topology::parse("1d:1,2,x,4,5,6@0"), std::invalid_argument);
  EXPECT_THROW((void)Topology::parse("1d:1,2,3,4,5,6@zero"), std::invalid_argument);
  EXPECT_THROW((void)Topology::parse(";"), std::invalid_argument);
}

// --------------------------------------------- router bitwise transparency

TEST(ShardRouter, MixedSoakBitwiseIdenticalToDirectServer) {
  // The reference: one ordinary single-process server holding all three
  // models, registered in global-id order.
  net::SocketServer::Options so;
  so.port = 0;
  net::SocketServer direct(so);
  const auto d0 = static_cast<std::uint32_t>(direct.load_model(small_1d()));
  const auto d1 = static_cast<std::uint32_t>(direct.load_model(small_2d()));
  const auto d2 = static_cast<std::uint32_t>(direct.load_model(alt_1d()));
  ASSERT_EQ(d0, 0u);
  ASSERT_EQ(d1, 1u);
  ASSERT_EQ(d2, 2u);
  direct.start();

  InProcessFleet fleet;

  net::Client via_router;
  via_router.connect(fleet.router.port());
  via_router.set_io_timeout(20.0);
  net::Client via_direct;
  via_direct.connect(direct.port());

  const std::uint32_t dims1[] = {2, 64};
  const std::uint32_t dims2[] = {1, 16, 16};
  const core::Fno1dConfig c1 = small_1d();
  const core::Fno2dConfig c2 = small_2d();
  const std::size_t in1 = static_cast<std::size_t>(c1.in_channels) * c1.n;
  const std::size_t in2 = static_cast<std::size_t>(c2.in_channels) * c2.nx * c2.ny;

  for (unsigned round = 0; round < 4; ++round) {
    const net::Qos qos = round % 2 == 0 ? net::Qos::High : net::Qos::Normal;
    // 1D complex on worker 0 (global 0 -> local 0).
    {
      const auto in = random_signal(in1, 100 + round);
      const auto a = via_direct.infer_c32(0, dims1, in, qos);
      const auto b = via_router.infer_c32(0, dims1, in, qos);
      ASSERT_EQ(a.head.status, net::WireStatus::Ok);
      ASSERT_EQ(b.head.status, net::WireStatus::Ok);
      EXPECT_TRUE(bitwise_equal(b.payload(), a.payload().data(), a.payload().size()));
    }
    // 2D complex on worker 1 (global 1 -> local 0: the remap case).
    {
      const auto in = random_signal(in2, 200 + round);
      const auto a = via_direct.infer_c32(1, dims2, in, qos);
      const auto b = via_router.infer_c32(1, dims2, in, qos);
      ASSERT_EQ(a.head.status, net::WireStatus::Ok);
      ASSERT_EQ(b.head.status, net::WireStatus::Ok);
      EXPECT_TRUE(bitwise_equal(b.payload(), a.payload().data(), a.payload().size()));
    }
    // 1D real (f32) lane on worker 0's second model (global 2 -> local 1).
    {
      const auto in = random_real(in1, 300 + round);
      const auto a = via_direct.infer_real(2, dims1, in, qos);
      const auto b = via_router.infer_real(2, dims1, in, qos);
      ASSERT_EQ(a.head.status, net::WireStatus::Ok);
      ASSERT_EQ(b.head.status, net::WireStatus::Ok);
      EXPECT_TRUE(bitwise_equal(b.payload(), a.payload().data(), a.payload().size()));
    }
    // 2D real lane, crossing back to worker 1.
    {
      const auto in = random_real(in2, 400 + round);
      const auto a = via_direct.infer_real(1, dims2, in, qos);
      const auto b = via_router.infer_real(1, dims2, in, qos);
      ASSERT_EQ(a.head.status, net::WireStatus::Ok);
      ASSERT_EQ(b.head.status, net::WireStatus::Ok);
      EXPECT_TRUE(bitwise_equal(b.payload(), a.payload().data(), a.payload().size()));
    }
  }
  const auto rs = fleet.router.stats();
  EXPECT_EQ(rs.frames_routed, 16u);
  EXPECT_EQ(rs.responses_relayed, 16u);
  EXPECT_EQ(rs.shed_by_router, 0u);
  EXPECT_EQ(rs.protocol_errors, 0u);
  direct.stop();
}

TEST(ShardRouter, PipelinedClientsCompleteOutOfOrderWithCorrectCorrelations) {
  InProcessFleet fleet;
  core::Engine ref_eng;
  const auto h0 = ref_eng.register_model(small_1d());
  const auto h1 = ref_eng.register_model(small_2d());

  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerModel = 8;
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::Session ref0 = ref_eng.create_session(h0);
      core::Session ref1 = ref_eng.create_session(h1);
      net::Client cli;
      cli.connect(fleet.router.port());
      cli.set_io_timeout(20.0);
      const std::vector<std::uint32_t> dims1 = {2, 64};
      const std::vector<std::uint32_t> dims2 = {1, 16, 16};

      // Fire everything (interleaved across both shards) before reading a
      // single response: the router must remap correlations so that each
      // answer — whatever order the two workers finish in — lands back on
      // the right request.
      std::map<std::uint64_t, std::vector<c32>> expect;
      for (std::size_t i = 0; i < kPerModel; ++i) {
        const unsigned seed = static_cast<unsigned>(7000 + 100 * t + i);
        {
          const auto in = random_signal(ref0.input_elems(), seed);
          std::vector<c32> want(ref0.output_elems());
          ref0.run(in, want);
          const auto corr = cli.send_request(
              0, net::Dtype::C32, dims1,
              {reinterpret_cast<const std::byte*>(in.data()), in.size() * sizeof(c32)});
          expect.emplace(corr, std::move(want));
        }
        {
          const auto in = random_signal(ref1.input_elems(), seed + 50);
          std::vector<c32> want(ref1.output_elems());
          ref1.run(in, want);
          const auto corr = cli.send_request(
              1, net::Dtype::C32, dims2,
              {reinterpret_cast<const std::byte*>(in.data()), in.size() * sizeof(c32)});
          expect.emplace(corr, std::move(want));
        }
      }
      net::Client::Result r;
      for (std::size_t i = 0; i < 2 * kPerModel; ++i) {
        if (!cli.recv_response(r) || r.head.status != net::WireStatus::Ok) {
          ++failures;
          return;
        }
        const auto it = expect.find(r.head.correlation);
        if (it == expect.end() ||
            !bitwise_equal(r.payload(), it->second.data(),
                           it->second.size() * sizeof(c32))) {
          ++failures;
          return;
        }
        expect.erase(it);
      }
      if (!expect.empty()) ++failures;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  const auto rs = fleet.router.stats();
  EXPECT_EQ(rs.frames_routed, kThreads * kPerModel * 2);
  EXPECT_EQ(rs.responses_relayed, kThreads * kPerModel * 2);
  EXPECT_EQ(rs.dropped_responses, 0u);
}

// ------------------------------------------- router protocol and liveness

TEST(ShardRouter, AnswersProtocolTrafficLikeAServer) {
  InProcessFleet fleet;

  // Heartbeat control frames are answered by the router itself.
  net::Client cli;
  cli.connect(fleet.router.port());
  EXPECT_TRUE(cli.ping(5.0));

  // Unknown global model id: typed error, connection survives.
  const std::vector<float> in(2 * 64, 1.0f);
  const std::uint32_t dims1[] = {2, 64};
  const auto bad = cli.infer_real(99, dims1, in);
  EXPECT_EQ(bad.head.status, net::WireStatus::UnknownModel);
  const auto ok = cli.infer_real(0, dims1, in);
  EXPECT_EQ(ok.head.status, net::WireStatus::Ok);

  // An integrity error (bad magic) closes the stream, like a real server.
  net::Client cli2;
  cli2.connect(fleet.router.port());
  std::vector<std::byte> junk(net::kHeaderBytes);
  junk[0] = static_cast<std::byte>('X');
  cli2.send_bytes(junk);
  net::Client::Result r;
  ASSERT_TRUE(cli2.recv_response(r));
  EXPECT_EQ(r.head.status, net::WireStatus::BadMagic);
  EXPECT_TRUE(cli2.recv_closed());

  // The router's own worker heartbeats flow once links are up.
  EXPECT_TRUE(eventually([&] {
    const auto s = fleet.router.stats();
    return s.heartbeats_sent >= 1 && s.heartbeats_acked >= 1;
  }));
}

TEST(ShardRouter, DownWorkerParksTrafficAndGapOverflowSheds) {
  // A router whose worker 1 endpoint is never provided: traffic for global
  // model 1 parks in the gap queue until the queue cap, then sheds.
  Topology topo = test_topology();
  Worker w0(topo, 0);
  w0.start();
  Router::Options ro;
  ro.port = 0;
  ro.gap_queue = 2;
  Router router(test_topology(), ro);
  router.set_worker_endpoint(0, w0.port());
  router.start();

  net::Client cli;
  cli.connect(router.port());
  cli.set_io_timeout(20.0);

  // Worker 0's shard still serves while worker 1 is absent.
  const std::uint32_t dims1[] = {2, 64};
  const std::vector<float> in1(2 * 64, 0.25f);
  EXPECT_EQ(cli.infer_real(0, dims1, in1).head.status, net::WireStatus::Ok);

  // Three pipelined requests at the absent worker: two park, the third
  // overflows the gap queue and is shed by the router — a typed answer,
  // not a silent drop.
  const std::vector<float> in2(16 * 16, 0.5f);
  const std::span<const std::byte> payload2{
      reinterpret_cast<const std::byte*>(in2.data()), in2.size() * 4};
  const std::vector<std::uint32_t> d2 = {1, 16, 16};
  const auto c1 = cli.send_request(1, net::Dtype::F32, d2, payload2);
  const auto c2 = cli.send_request(1, net::Dtype::F32, d2, payload2);
  const auto c3 = cli.send_request(1, net::Dtype::F32, d2, payload2);
  net::Client::Result r;
  ASSERT_TRUE(cli.recv_response(r));
  EXPECT_EQ(r.head.correlation, c3);
  EXPECT_EQ(r.head.status, net::WireStatus::Shed);
  EXPECT_TRUE(eventually([&] { return router.stats().gap_queued >= 2; }));

  // The late worker arrives; the parked requests flush and complete Ok.
  Worker w1(topo, 1);
  w1.start();
  router.set_worker_endpoint(1, w1.port());
  for (const std::uint64_t want : {c1, c2}) {
    ASSERT_TRUE(cli.recv_response(r));
    EXPECT_EQ(r.head.correlation, want);
    EXPECT_EQ(r.head.status, net::WireStatus::Ok);
  }
  const auto rs = router.stats();
  EXPECT_EQ(rs.shed_by_router, 1u);
  EXPECT_GE(rs.worker_connects, 2u);
  router.stop();
  w1.stop();
  w0.stop();
}

TEST(ShardRouter, StopAnswersParkedRequestsShutDown) {
  // Requests parked for a worker that never comes must be answered (not
  // dropped) when the router stops.
  Router::Options ro;
  ro.port = 0;
  ro.stop_flush_s = 2.0;
  Router router(test_topology(), ro);
  router.start();

  net::Client cli;
  cli.connect(router.port());
  cli.set_io_timeout(10.0);
  const std::vector<std::uint32_t> dims1 = {2, 64};
  const std::vector<float> in1(2 * 64, 1.0f);
  const auto corr =
      cli.send_request(0, net::Dtype::F32, dims1,
                       {reinterpret_cast<const std::byte*>(in1.data()), in1.size() * 4});
  ASSERT_TRUE(eventually([&] { return router.stats().gap_queued >= 1; }));
  router.stop();
  net::Client::Result r;
  ASSERT_TRUE(cli.recv_response(r));
  EXPECT_EQ(r.head.correlation, corr);
  EXPECT_EQ(r.head.status, net::WireStatus::ShutDown);
}

// --------------------------------------------- supervisor: process fleet

TEST(ShardSupervisor, KilledWorkerIsRestartedWithNoSilentDrops) {
  // Two fork/exec'd tfno_shardd workers behind a router.  Worker 0 is
  // SIGKILLed mid-soak; every request must still get SOME response (Ok or
  // a typed Shed/ShutDown — silent drops fail the io timeout), the
  // supervisor must restart the worker, and Ok responses on its shard must
  // resume.
  Topology topo;
  topo.add(small_1d(), 0);
  topo.add(small_1d(), 1);

  Router::Options ro;
  ro.port = 0;
  ro.heartbeat_s = 0.1;
  ro.redial_min_s = 0.02;
  Router router(topo, ro);

  Supervisor::Options so;
  so.shardd_path = shardd_path();
  so.heartbeat_s = 0.1;
  so.backoff_min_s = 0.02;
  so.poll_s = 0.005;
  Supervisor sup(topo, so, [&router](std::size_t index, std::uint16_t port) {
    router.set_worker_endpoint(index, port);
  });

  router.start();
  sup.start();
  ASSERT_TRUE(eventually([&] { return router.stats().worker_connects >= 2; }, 20.0))
      << "workers never handshook; shardd at " << shardd_path();

  // Reference output for payload checks (same config seeds same weights in
  // the fork/exec'd workers).
  core::Engine ref_eng;
  core::Session ref = ref_eng.create_session(ref_eng.register_model(small_1d()));
  const auto in = random_real(ref.input_elems(), 42);
  std::vector<float> want(ref.output_elems());
  ref.run_real(in, want);

  net::Client cli;
  cli.connect(router.port());
  cli.set_io_timeout(15.0);
  const std::uint32_t dims[] = {2, 64};

  constexpr std::size_t kRounds = 40;
  std::size_t ok = 0;
  std::size_t shed = 0;
  const pid_t first_pid = sup.worker_pid(0);
  ASSERT_GT(first_pid, 0);
  for (std::size_t i = 0; i < kRounds; ++i) {
    if (i == 10) sup.kill_worker(0);
    for (const std::uint32_t model : {0u, 1u}) {
      // A silent drop would hang here until the io timeout throws and
      // fails the test: every accepted request must be answered.
      const auto r = cli.infer_real(model, dims, in);
      if (r.head.status == net::WireStatus::Ok) {
        ASSERT_TRUE(bitwise_equal(r.payload(), want.data(), want.size() * 4));
        ++ok;
      } else {
        ASSERT_TRUE(r.head.status == net::WireStatus::Shed ||
                    r.head.status == net::WireStatus::ShutDown)
            << net::wire_status_name(r.head.status);
        ++shed;
      }
    }
  }
  EXPECT_EQ(ok + shed, 2 * kRounds);
  // Worker 1 was untouched: at least every round on its shard is Ok.
  EXPECT_GE(ok, kRounds);

  // The supervisor noticed the death and respawned with a fresh pid.
  ASSERT_TRUE(eventually([&] { return sup.stats().restarts >= 1; }, 20.0));
  ASSERT_TRUE(eventually(
      [&] {
        const pid_t p = sup.worker_pid(0);
        return p > 0 && p != first_pid;
      },
      20.0));

  // And the restarted shard serves Ok again (fresh handshake + flush).
  ASSERT_TRUE(eventually(
      [&] {
        const auto r = cli.infer_real(0, dims, in);
        return r.head.status == net::WireStatus::Ok &&
               bitwise_equal(r.payload(), want.data(), want.size() * 4);
      },
      20.0));

  const auto ss = sup.stats();
  EXPECT_GE(ss.spawns, 3u);
  EXPECT_GE(ss.endpoints_seen, 3u);
  sup.stop();
  router.stop();
}

}  // namespace
}  // namespace turbofno::shard
