// GPU execution-model tests: the bank-conflict model itself, the exact
// Figure 7 / Figure 8 utilization numbers, and cost-model properties.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/banks.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/layouts.hpp"
#include "gpusim/pipeline_model.hpp"
#include "gpusim/warp_access.hpp"

namespace turbofno::gpusim {
namespace {

// ------------------------------------------------------------- bank model

TEST(BankModel, ConflictFreeFullWarp) {
  std::vector<std::uint32_t> words(32);
  for (std::uint32_t i = 0; i < 32; ++i) words[i] = i;  // one word per bank
  const WarpTransaction t = replay_warp_access(words);
  EXPECT_EQ(t.cycles, 1u);
  EXPECT_EQ(t.banks_touched, 32u);
  EXPECT_DOUBLE_EQ(t.utilization(), 1.0);
}

TEST(BankModel, SameWordBroadcastsInOneCycle) {
  std::vector<std::uint32_t> words(32, 7u);  // all lanes read word 7
  const WarpTransaction t = replay_warp_access(words);
  EXPECT_EQ(t.cycles, 1u);
  EXPECT_EQ(t.banks_touched, 1u);
  EXPECT_EQ(t.max_conflict, 1u);
}

TEST(BankModel, TwoWayConflictTakesTwoCycles) {
  std::vector<std::uint32_t> words;
  for (std::uint32_t i = 0; i < 16; ++i) {
    words.push_back(i);        // banks 0..15
    words.push_back(i + 32);   // same banks, different words
  }
  const WarpTransaction t = replay_warp_access(words);
  EXPECT_EQ(t.cycles, 2u);
  EXPECT_EQ(t.banks_touched, 16u);
}

TEST(BankModel, WorstCase32WayConflict) {
  std::vector<std::uint32_t> words;
  for (std::uint32_t i = 0; i < 32; ++i) words.push_back(i * 32);  // all bank 0
  const WarpTransaction t = replay_warp_access(words);
  EXPECT_EQ(t.cycles, 32u);
  EXPECT_EQ(t.banks_touched, 1u);
  EXPECT_DOUBLE_EQ(t.utilization(), 32.0 / (32.0 * 32.0));
}

TEST(BankModel, EmptyAccessIsFree) {
  const WarpTransaction t = replay_warp_access({});
  EXPECT_EQ(t.cycles, 0u);
  EXPECT_EQ(t.lanes, 0u);
}

TEST(BankModel, ComplexAccessExpandsToWordPairs) {
  const std::vector<std::uint32_t> bytes = {0u, 8u, 16u};
  const auto words = complex_access_words(bytes);
  ASSERT_EQ(words.size(), 6u);
  EXPECT_EQ(words[0], 0u);
  EXPECT_EQ(words[1], 1u);
  EXPECT_EQ(words[2], 2u);
  EXPECT_EQ(words[3], 3u);
}

TEST(BankModel, AuditAggregatesAcrossInstructions) {
  BankConflictAudit audit;
  std::vector<std::uint32_t> conflict_free(32);
  for (std::uint32_t i = 0; i < 32; ++i) conflict_free[i] = i;
  audit.record(replay_warp_access(conflict_free));
  std::vector<std::uint32_t> all_bank0;
  for (std::uint32_t i = 0; i < 32; ++i) all_bank0.push_back(i * 32);
  audit.record(replay_warp_access(all_bank0));
  EXPECT_EQ(audit.instructions(), 2u);
  EXPECT_EQ(audit.total_cycles(), 33u);
  EXPECT_NEAR(audit.mean_cycles(), 16.5, 1e-12);
}

// ---------------------------------------------------------------- Figure 7

TEST(Figure7, VkFftLayoutGives25PercentUtilization) {
  // Paper Fig 7(a) top: thread groups 0-7, 8-15, ... collide -> 25%.
  const auto audit = replay(fig7a_gemm_load_vkfft_layout());
  EXPECT_NEAR(audit.utilization(), 0.25, 1e-9);
  EXPECT_NEAR(audit.mean_cycles(), 8.0, 1e-9);  // 8-way serialization
}

TEST(Figure7, TurboFnoLayoutGives100PercentUtilization) {
  // Paper Fig 7(a) bottom: consecutive elements of the same pencil -> 100%.
  const auto audit = replay(fig7a_gemm_load_turbofno_layout());
  EXPECT_NEAR(audit.utilization(), 1.0, 1e-9);
  EXPECT_NEAR(audit.mean_cycles(), 2.0, 1e-9);  // 64 word accesses, floor
}

TEST(Figure7, Fft16WritebackUnswizzledHits2Of32Banks) {
  // Paper Fig 7(b) left: "2 out of 32 banks active" = 6.25%.
  const auto pattern = fig7b_fft16_writeback(false);
  EXPECT_NEAR(pattern.bank_coverage(), 2.0 / 32.0, 1e-9);
  const auto audit = replay(pattern);
  EXPECT_NEAR(audit.utilization(), 0.0625, 1e-9);
}

TEST(Figure7, Fft16WritebackSwizzledIsConflictFree) {
  // Paper Fig 7(b) right: addr += tid restores 100%.
  const auto audit = replay(fig7b_fft16_writeback(true));
  EXPECT_NEAR(audit.utilization(), 1.0, 1e-9);
  EXPECT_NEAR(audit.mean_cycles(), 1.0, 1e-9);
}

TEST(Figure7, Fft8WritebackNeighboursDoNotConflict) {
  // Paper Fig 7(c): thread 0 and 1 land on byte 0 and 64 (banks 0 and 16).
  const auto pattern = fig7c_fft8_writeback(false);
  const auto& first = pattern.instructions.front().lane_byte_addrs;
  EXPECT_EQ(first[0], 0u);
  EXPECT_EQ(first[1], 64u);
}

TEST(Figure7, Fft8WritebackSwizzledIsConflictFree) {
  // Paper Fig 7(c): the smaller addr += tid/2 suffices for 100%.
  const auto audit = replay(fig7c_fft8_writeback(true));
  EXPECT_NEAR(audit.utilization(), 1.0, 1e-9);
}

TEST(Figure7, Fft8UnswizzledSerializes) {
  const auto audit = replay(fig7c_fft8_writeback(false));
  EXPECT_LT(audit.utilization(), 0.25);
  EXPECT_GT(audit.mean_cycles(), 4.0);
}

// ---------------------------------------------------------------- Figure 8

TEST(Figure8, EpilogueUnswizzledGives25Percent) {
  // Paper Fig 8(a): threads sharing a column group collide -> 25%.
  const auto audit = replay(fig8_gemm_epilogue_store(false));
  EXPECT_NEAR(audit.utilization(), 0.25, 1e-9);
  EXPECT_NEAR(audit.mean_cycles(), 8.0, 1e-9);
}

TEST(Figure8, EpilogueSwizzledGives100Percent) {
  // Paper Fig 8(b): addr += tid/4 -> 100% bank utilization.
  const auto audit = replay(fig8_gemm_epilogue_store(true));
  EXPECT_NEAR(audit.utilization(), 1.0, 1e-9);
  EXPECT_NEAR(audit.mean_cycles(), 2.0, 1e-9);
}

TEST(Figure8, SwizzleCoversWholeTileExactlyOnce) {
  // The swizzle is a permutation: every (row, col) cell written once.
  const auto pattern = fig8_gemm_epilogue_store(true);
  std::vector<int> hits(32 * 16, 0);
  for (const auto& ins : pattern.instructions) {
    for (const auto byte : ins.lane_byte_addrs) {
      ASSERT_LT(byte / 8, hits.size());
      hits[byte / 8] += 1;
    }
  }
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << "cell " << i;
}

TEST(Figure7, SwizzleCoversWholePencilExactlyOnce) {
  for (const bool sixteen : {true, false}) {
    const auto pattern = sixteen ? fig7b_fft16_writeback(true) : fig7c_fft8_writeback(true);
    const std::size_t cells = sixteen ? 256 : 128;
    std::vector<int> hits(cells, 0);
    for (const auto& ins : pattern.instructions) {
      for (const auto byte : ins.lane_byte_addrs) hits.at(byte / 8) += 1;
    }
    for (std::size_t i = 0; i < cells; ++i) EXPECT_EQ(hits[i], 1) << "cell " << i;
  }
}

// -------------------------------------------------------------- cost model

TEST(CostModel, MemoryBoundKernelScalesWithBytes) {
  const GpuSpec spec;
  const auto c1 = kernel_cost(spec, 1'000'000'000, 1000, 1);
  const auto c2 = kernel_cost(spec, 2'000'000'000, 1000, 1);
  EXPECT_EQ(c1.bound, Bound::Memory);
  EXPECT_NEAR(c2.seconds / c1.seconds, 2.0, 0.05);
}

TEST(CostModel, ComputeBoundKernelScalesWithFlops) {
  const GpuSpec spec;
  const auto c1 = kernel_cost(spec, 1000, 10'000'000'000'000ull, 1);
  const auto c2 = kernel_cost(spec, 1000, 20'000'000'000'000ull, 1);
  EXPECT_EQ(c1.bound, Bound::Compute);
  EXPECT_NEAR(c2.seconds / c1.seconds, 2.0, 0.05);
}

TEST(CostModel, LaunchOverheadDominatesTinyKernels) {
  const GpuSpec spec;
  const auto c = kernel_cost(spec, 64, 64, 5);
  EXPECT_EQ(c.bound, Bound::Launch);
  EXPECT_NEAR(c.seconds, 5.0 * spec.launch_overhead_s, 1e-9);
}

TEST(CostModel, BankSerializationDeratesCompute) {
  const GpuSpec spec;
  const auto fast = kernel_cost(spec, 0, 1'000'000'000'000ull, 1, 1.0);
  const auto slow = kernel_cost(spec, 0, 1'000'000'000'000ull, 1, 0.25);
  EXPECT_NEAR(slow.compute_seconds / fast.compute_seconds, 4.0, 1e-6);
}

TEST(CostModel, RidgePointIsPositive) {
  const GpuSpec spec;
  EXPECT_GT(ridge_point(spec), 1.0);   // A100 needs >1 flop/byte to saturate
  EXPECT_LT(ridge_point(spec), 100.0);
}

// ---------------------------------------------------------- pipeline model

TEST(PipelineModel, FewerBytesPredictFasterPipeline) {
  const GpuSpec spec;
  trace::PipelineCounters heavy("baseline");
  auto& h = heavy.stage("all");
  h.bytes_read = 4'000'000'000u;
  h.bytes_written = 4'000'000'000u;
  h.kernel_launches = 5;
  trace::PipelineCounters light("fused");
  auto& l = light.stage("all");
  l.bytes_read = 1'000'000'000u;
  l.bytes_written = 1'000'000'000u;
  l.kernel_launches = 1;
  EXPECT_GT(predicted_speedup(spec, heavy, light), 3.0);
}

TEST(PipelineModel, PredictionSumsStages) {
  const GpuSpec spec;
  trace::PipelineCounters pc("p");
  pc.stage("a").bytes_read = 1'000'000'000u;
  pc.stage("a").kernel_launches = 1;
  pc.stage("b").bytes_written = 1'000'000'000u;
  pc.stage("b").kernel_launches = 1;
  const auto pred = predict(spec, pc);
  ASSERT_EQ(pred.stages.size(), 2u);
  EXPECT_NEAR(pred.total_seconds, pred.stages[0].cost.seconds + pred.stages[1].cost.seconds,
              1e-12);
}

}  // namespace
}  // namespace turbofno::gpusim
