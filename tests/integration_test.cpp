// Cross-module integration: the full stack exercised together — models over
// pipelines over FFT/GEMM over the runtime — on realistic shapes, plus
// numeric-health (failure-injection) checks.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/api.hpp"
#include "gpusim/pipeline_model.hpp"
#include "test_util.hpp"

namespace turbofno {
namespace {

using turbofno::testing::max_err;
using turbofno::testing::random_signal;
using turbofno::testing::rel_err;

TEST(Integration, DeepModelAllBackendsAgree) {
  core::Fno1dConfig cfg;
  cfg.in_channels = 3;
  cfg.hidden = 24;  // not a multiple of k_tb
  cfg.out_channels = 2;
  cfg.n = 128;
  cfg.modes = 32;
  cfg.layers = 6;
  const std::size_t batch = 3;

  std::vector<c32> u(batch * cfg.in_channels * cfg.n);
  core::burgers_batch(u, batch, cfg.in_channels, cfg.n, 99u);

  std::vector<std::vector<c32>> outs;
  for (const auto backend : {core::Backend::PyTorch, core::Backend::FullyFused}) {
    cfg.backend = backend;
    core::Fno1d model(cfg);
    model.reserve(batch);
    std::vector<c32> v(batch * cfg.out_channels * cfg.n, c32{});
    model.forward(u, v);
    outs.push_back(std::move(v));
  }
  EXPECT_LT(rel_err(outs[1], outs[0]), 1e-3);
}

TEST(Integration, PipelineCountersFeedCostModelConsistently) {
  // Measured bytes recorded by the pipeline == what the predictor consumed.
  baseline::Spectral1dProblem prob{4, 16, 16, 128, 32};
  const auto u = random_signal(prob.input_elems(), 7u);
  const auto w = random_signal(prob.weight_elems(), 8u);
  std::vector<c32> v(prob.output_elems());
  auto pipe = fused::make_pipeline1d(fused::Variant::FullyFused, prob);
  pipe->run(u, w, v);
  const auto pred = gpusim::predict(gpusim::GpuSpec{}, pipe->counters());
  ASSERT_EQ(pred.stages.size(), pipe->counters().stages().size());
  EXPECT_GT(pred.total_seconds, 0.0);
  // The fused pipeline must be predicted faster than the baseline.
  auto base = fused::make_pipeline1d(fused::Variant::PyTorch, prob);
  base->run(u, w, v);
  EXPECT_GT(gpusim::predicted_speedup(gpusim::GpuSpec{}, base->counters(), pipe->counters()),
            1.0);
}

TEST(Integration, SpectralRoundTripThroughEveryLayerDepth) {
  // An identity-weight spectral conv is a low-pass projector; stacking it
  // repeatedly must be stable (projection is idempotent).
  const std::size_t N = 64;
  const std::size_t K = 8;
  const std::size_t M = 16;
  baseline::Spectral1dProblem prob{1, K, K, N, M};
  std::vector<c32> w(K * K, c32{});
  for (std::size_t i = 0; i < K; ++i) w[i * K + i] = {1.0f, 0.0f};

  auto pipe = fused::make_pipeline1d(fused::Variant::FullyFused, prob);
  auto u = random_signal(K * N, 21u);
  std::vector<c32> v(K * N);
  pipe->run(u, w, v);
  std::vector<c32> v2(K * N);
  pipe->run(v, w, v2);
  EXPECT_LT(rel_err(v2, v), 1e-4) << "projector must be idempotent";
}

TEST(Integration, NanInputsPropagateNotCrash) {
  // Failure injection: a NaN in one signal must not crash any pipeline and
  // must not leak into other batch entries (batch isolation).
  baseline::Spectral1dProblem prob{2, 8, 8, 64, 16};
  auto u = random_signal(prob.input_elems(), 31u);
  u[3] = {std::numeric_limits<float>::quiet_NaN(), 0.0f};  // batch 0 poisoned
  const auto w = random_signal(prob.weight_elems(), 32u);
  for (const auto var : fused::kAllVariants) {
    auto pipe = fused::make_pipeline1d(var, prob);
    std::vector<c32> v(prob.output_elems(), c32{});
    pipe->run(u, w, v);
    bool batch0_nan = false;
    bool batch1_clean = true;
    const std::size_t half = prob.output_elems() / 2;
    for (std::size_t i = 0; i < half; ++i) {
      if (std::isnan(v[i].re) || std::isnan(v[i].im)) batch0_nan = true;
    }
    for (std::size_t i = half; i < prob.output_elems(); ++i) {
      if (std::isnan(v[i].re) || std::isnan(v[i].im)) batch1_clean = false;
    }
    EXPECT_TRUE(batch0_nan) << fused::variant_name(var);
    EXPECT_TRUE(batch1_clean) << fused::variant_name(var) << ": NaN leaked across batch";
  }
}

TEST(Integration, ZeroInputGivesZeroOutputEverywhere) {
  baseline::Spectral2dProblem prob{1, 8, 8, 16, 16, 4, 4};
  std::vector<c32> u(prob.input_elems(), c32{});
  const auto w = random_signal(prob.weight_elems(), 41u);
  for (const auto var : fused::kAllVariants) {
    auto pipe = fused::make_pipeline2d(var, prob);
    std::vector<c32> v(prob.output_elems(), c32{1.0f, 1.0f});
    pipe->run(u, w, v);
    for (const auto& x : v) {
      ASSERT_EQ(x.re, 0.0f) << fused::variant_name(var);
      ASSERT_EQ(x.im, 0.0f) << fused::variant_name(var);
    }
  }
}

TEST(Integration, RepeatedConstructionIsCheapAndLeakFree) {
  // Plans share the process-wide twiddle cache; constructing many pipelines
  // must not blow up (smoke for the cache path under churn).
  for (int i = 0; i < 50; ++i) {
    baseline::Spectral1dProblem prob{1, 8, 8, 256, 64};
    auto pipe = fused::make_pipeline1d(fused::Variant::FullyFused, prob);
    ASSERT_NE(pipe, nullptr);
  }
  SUCCEED();
}

TEST(Integration, LargeishEndToEndUnderMemoryBudget) {
  // A realistic load: 64 signals x 64 channels x 1024 points through the
  // whole ladder, checking agreement at scale (not just toy sizes).
  baseline::Spectral1dProblem prob{64, 64, 64, 1024, 64};
  const auto u = random_signal(prob.input_elems(), 51u);
  const auto w = random_signal(prob.weight_elems(), 52u);
  std::vector<c32> base_out(prob.output_elems());
  auto base = fused::make_pipeline1d(fused::Variant::PyTorch, prob);
  base->run(u, w, base_out);
  std::vector<c32> fused_out(prob.output_elems());
  auto fusedp = fused::make_pipeline1d(fused::Variant::FullyFused, prob);
  fusedp->run(u, w, fused_out);
  EXPECT_LT(rel_err(fused_out, base_out), 1e-4);
}

}  // namespace
}  // namespace turbofno
