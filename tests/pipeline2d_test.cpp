// 2D pipeline ladder: reference equivalence, counter ordering, determinism.
#include <gtest/gtest.h>

#include <vector>

#include "fft/reference.hpp"
#include "fused/ladder.hpp"
#include "runtime/parallel.hpp"
#include "test_util.hpp"

namespace turbofno::fused {
namespace {

using baseline::Spectral2dProblem;
using turbofno::testing::max_err;
using turbofno::testing::random_signal;
using turbofno::testing::rel_err;

// Direct reference via per-axis reference DFTs and naive mixing.
std::vector<c32> reference_spectral_conv2d(const Spectral2dProblem& p, const std::vector<c32>& u,
                                           const std::vector<c32>& w) {
  const std::size_t B = p.batch;
  const std::size_t K = p.hidden;
  const std::size_t O = p.out_dim;
  const std::size_t NX = p.nx;
  const std::size_t NY = p.ny;
  const std::size_t MX = p.modes_x;
  const std::size_t MY = p.modes_y;

  // Forward 2D DFT, truncated to the [MX, MY] corner, per (b, k).
  std::vector<c32> freq(B * K * MX * MY);
  std::vector<c32> col(NX);
  std::vector<c32> colf(MX);
  std::vector<c32> mid(MX * NY);
  for (std::size_t bk = 0; bk < B * K; ++bk) {
    const c32* f = u.data() + bk * NX * NY;
    for (std::size_t y = 0; y < NY; ++y) {
      for (std::size_t x = 0; x < NX; ++x) col[x] = f[x * NY + y];
      fft::reference_dft(col, colf, NX);
      for (std::size_t x = 0; x < MX; ++x) mid[x * NY + y] = colf[x];
    }
    for (std::size_t x = 0; x < MX; ++x) {
      fft::reference_dft(std::span<const c32>(mid.data() + x * NY, NY),
                         std::span<c32>(freq.data() + bk * MX * MY + x * MY, MY), NY);
    }
  }

  // Mixing along hidden.
  const std::size_t modes = MX * MY;
  std::vector<c32> mixed(B * O * modes, c32{});
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t o = 0; o < O; ++o) {
      for (std::size_t fidx = 0; fidx < modes; ++fidx) {
        c32 acc{};
        for (std::size_t k = 0; k < K; ++k) {
          cmadd(acc, w[o * K + k], freq[(b * K + k) * modes + fidx]);
        }
        mixed[(b * O + o) * modes + fidx] = acc;
      }
    }
  }

  // Inverse: pad corner and 2D inverse DFT per (b, o).
  std::vector<c32> v(B * O * NX * NY);
  std::vector<c32> row(NY);
  std::vector<c32> mid2(MX * NY);
  std::vector<c32> colspec(MX);
  std::vector<c32> colout(NX);
  for (std::size_t bo = 0; bo < B * O; ++bo) {
    for (std::size_t x = 0; x < MX; ++x) {
      fft::reference_idft(std::span<const c32>(mixed.data() + bo * modes + x * MY, MY),
                          std::span<c32>(mid2.data() + x * NY, NY), NY);
    }
    for (std::size_t y = 0; y < NY; ++y) {
      for (std::size_t x = 0; x < MX; ++x) colspec[x] = mid2[x * NY + y];
      fft::reference_idft(colspec, colout, NX);
      for (std::size_t x = 0; x < NX; ++x) v[bo * NX * NY + x * NY + y] = colout[x];
    }
  }
  return v;
}

struct LadderCase2d {
  Variant variant;
  Spectral2dProblem prob;
};

std::vector<LadderCase2d> ladder_cases() {
  const std::vector<Spectral2dProblem> probs = {
      {1, 8, 8, 16, 16, 4, 4},
      {2, 8, 8, 16, 32, 8, 8},
      {1, 12, 6, 32, 16, 8, 4},   // hidden not multiple of k_tb, O < K
      {2, 6, 10, 16, 16, 16, 16}, // no truncation
      {1, 8, 8, 32, 32, 1, 1},    // extreme truncation
  };
  std::vector<LadderCase2d> cases;
  for (const auto v : kAllVariants) {
    for (const auto& p : probs) cases.push_back({v, p});
  }
  return cases;
}

class Ladder2d : public ::testing::TestWithParam<LadderCase2d> {};

TEST_P(Ladder2d, MatchesDirectReference) {
  const auto& [variant, prob] = GetParam();
  const auto u = random_signal(prob.input_elems(), 601u + static_cast<unsigned>(prob.nx));
  const auto w = random_signal(prob.weight_elems(), 607u);
  std::vector<c32> v(prob.output_elems(), c32{});
  auto pipe = make_pipeline2d(variant, prob);
  pipe->run(u, w, v);
  const auto ref = reference_spectral_conv2d(prob, u, w);
  EXPECT_LT(rel_err(v, ref), 1e-4) << pipe->name();
}

TEST_P(Ladder2d, ThreadCountDoesNotChangeResult) {
  const auto& [variant, prob] = GetParam();
  const auto u = random_signal(prob.input_elems(), 613u);
  const auto w = random_signal(prob.weight_elems(), 617u);
  auto pipe = make_pipeline2d(variant, prob);
  runtime::set_thread_count(1);
  std::vector<c32> v1(prob.output_elems(), c32{});
  pipe->run(u, w, v1);
  runtime::set_thread_count(3);
  std::vector<c32> v3(prob.output_elems(), c32{});
  pipe->run(u, w, v3);
  runtime::set_thread_count(0);
  EXPECT_EQ(max_err(v1, v3), 0.0) << pipe->name();
}

INSTANTIATE_TEST_SUITE_P(Grid, Ladder2d, ::testing::ValuesIn(ladder_cases()));

TEST(Ladder2dEquivalence, AllVariantsAgreeWithBaseline) {
  const Spectral2dProblem prob{2, 16, 12, 32, 64, 8, 16};
  const auto u = random_signal(prob.input_elems(), 619u);
  const auto w = random_signal(prob.weight_elems(), 631u);
  auto base = make_pipeline2d(Variant::PyTorch, prob);
  std::vector<c32> vb(prob.output_elems());
  base->run(u, w, vb);
  for (const auto v : {Variant::FftOpt, Variant::FusedFftGemm, Variant::FusedGemmIfft,
                       Variant::FullyFused}) {
    auto pipe = make_pipeline2d(v, prob);
    std::vector<c32> vo(prob.output_elems());
    pipe->run(u, w, vo);
    EXPECT_LT(rel_err(vo, vb), 1e-4) << pipe->name();
  }
}

TEST(Ladder2dCounters, TrafficShrinksUpTheLadder) {
  const Spectral2dProblem prob{2, 16, 16, 64, 64, 16, 16};
  const auto u = random_signal(prob.input_elems(), 641u);
  const auto w = random_signal(prob.weight_elems(), 643u);
  std::vector<c32> v(prob.output_elems());
  std::vector<std::uint64_t> bytes;
  std::vector<std::uint64_t> launches;
  for (const auto var : kAllVariants) {
    auto pipe = make_pipeline2d(var, prob);
    pipe->run(u, w, v);
    bytes.push_back(pipe->counters().total().bytes_total());
    launches.push_back(pipe->counters().total().kernel_launches);
  }
  EXPECT_GT(bytes[0], bytes[1]);  // baseline moves the most
  EXPECT_GE(bytes[1], bytes[2]);
  EXPECT_GE(bytes[1], bytes[3]);
  EXPECT_GE(bytes[2], bytes[4]);
  EXPECT_GE(bytes[3], bytes[4]);
  EXPECT_EQ(launches[0], 5u);
  EXPECT_EQ(launches[1], 5u);  // 2D FftOpt: x-fft, y-fft, gemm, y-ifft, x-ifft
  EXPECT_EQ(launches[2], 4u);
  EXPECT_EQ(launches[3], 4u);
  EXPECT_EQ(launches[4], 3u);
}

TEST(Ladder2dCounters, FirstStageDominates2dTraffic) {
  // The paper's Section 5.2 observation: in 2D the along-X FFT reads the
  // full field and dominates, so fusion gains are smaller than in 1D.
  const Spectral2dProblem prob{2, 32, 32, 128, 128, 32, 32};
  const auto u = random_signal(prob.input_elems(), 647u);
  const auto w = random_signal(prob.weight_elems(), 653u);
  std::vector<c32> v(prob.output_elems());
  auto pipe = make_pipeline2d(Variant::FullyFused, prob);
  pipe->run(u, w, v);
  const auto& stages = pipe->counters().stages();
  ASSERT_GE(stages.size(), 3u);
  const auto total = pipe->counters().total();
  std::uint64_t x_stage_bytes = 0;
  for (const auto& s : stages) {
    if (s.name == "fft-x-trunc" || s.name == "ifft-x-pad") x_stage_bytes += s.bytes_total();
  }
  EXPECT_GT(static_cast<double>(x_stage_bytes), 0.5 * static_cast<double>(total.bytes_total()));
}

TEST(Ladder2dProblem, ValidationRejectsBadShapes) {
  Spectral2dProblem p{1, 8, 8, 15, 16, 4, 4};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {1, 8, 8, 16, 16, 17, 4};
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {1, 0, 8, 16, 16, 4, 4};
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace turbofno::fused
