// The SIMD 4x4 complex transpose, the cache-blocked transpose built on it,
// and the transpose-based 2D FFT schedule: parity against the naive
// transpose / reference DFT on both backends, bitwise equivalence of the
// transposed and per-column X-stage schedules, and the steady-state
// no-allocation property of the scratch arena they share.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fft/fft2d.hpp"
#include "fft/reference.hpp"
#include "runtime/scratch.hpp"
#include "tensor/transpose.hpp"
#include "test_util.hpp"

namespace turbofno {
namespace {

using testing::fft_tol;
using testing::max_err;
using testing::random_signal;

// Restores the schedule that was in effect (API override or environment
// default) even when a test fails mid-flight, so a TURBOFNO_FFT2D_TRANSPOSE=0
// sweep keeps exercising the legacy path in later tests.
struct ScheduleGuard {
  bool prev = fft::fft2d_transpose_enabled();
  ~ScheduleGuard() { fft::set_fft2d_transpose(prev); }
};

// ------------------------------------------------------------- transpose ops

template <class B>
void check_transpose(std::size_t rows, std::size_t cols, std::size_t src_pad,
                     std::size_t dst_pad) {
  const std::size_t ss = cols + src_pad;
  const std::size_t ds = rows + dst_pad;
  const auto src = random_signal(rows * ss, 501u + static_cast<unsigned>(rows * 31 + cols));
  const c32 sentinel{1e30f, -1e30f};
  std::vector<c32> dst(cols * ds, sentinel);

  simd::transpose<B>(src.data(), ss, dst.data(), ds, rows, cols);

  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const c32 got = dst[j * ds + i];
      const c32 want = src[i * ss + j];
      ASSERT_EQ(got.re, want.re) << "rows=" << rows << " cols=" << cols << " @" << i << "," << j;
      ASSERT_EQ(got.im, want.im) << "rows=" << rows << " cols=" << cols << " @" << i << "," << j;
    }
  }
  // Stride padding must be untouched (the 2D scatter writes into live
  // neighboring columns of the output field).
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = rows; i < ds; ++i) {
      ASSERT_EQ(dst[j * ds + i].re, sentinel.re) << "padding clobbered at " << i << "," << j;
    }
  }
}

template <class B>
void check_transpose_shapes() {
  for (const auto& [rows, cols] :
       std::vector<std::pair<std::size_t, std::size_t>>{{1, 1},
                                                        {2, 2},
                                                        {2, 7},
                                                        {3, 5},
                                                        {4, 4},
                                                        {5, 4},
                                                        {8, 8},
                                                        {13, 4},
                                                        {4, 13},
                                                        {16, 16},
                                                        {33, 17},
                                                        {64, 33},
                                                        {40, 72}}) {
    check_transpose<B>(rows, cols, 0, 0);
    check_transpose<B>(rows, cols, 3, 5);  // strides beyond the dense dims
  }
}

TEST(Transpose, ScalarBackendAllShapes) { check_transpose_shapes<simd::ScalarBackend>(); }

TEST(Transpose, ActiveBackendAllShapes) { check_transpose_shapes<simd::Active>(); }

#if TURBOFNO_SIMD_HAVE_AVX2
TEST(Transpose, Avx2TileMatchesScalarTile) {
  const auto src = random_signal(16, 601u);
  std::vector<c32> scalar_dst(16), simd_dst(16);
  simd::transpose4x4<simd::ScalarBackend>(src.data(), 4, scalar_dst.data(), 4);
  simd::transpose4x4<simd::Avx2Backend>(src.data(), 4, simd_dst.data(), 4);
  EXPECT_EQ(0, std::memcmp(scalar_dst.data(), simd_dst.data(), 16 * sizeof(c32)));
}

TEST(Transpose, Avx2ZipPrimitives) {
  using B = simd::Avx2Backend;
  const auto in = random_signal(8, 602u);
  const auto a = B::pload(in.data());
  const auto b = B::pload(in.data() + 4);
  c32 out[4];

  const auto expect = [&out](c32 e0, c32 e1, c32 e2, c32 e3) {
    const c32 want[4] = {e0, e1, e2, e3};
    EXPECT_EQ(0, std::memcmp(out, want, sizeof want));
  };
  B::pstore(out, B::pzip_lo(a, b));
  expect(in[0], in[4], in[1], in[5]);
  B::pstore(out, B::pzip_hi(a, b));
  expect(in[2], in[6], in[3], in[7]);
  B::pstore(out, B::pzip_pair_lo(a, b));
  expect(in[0], in[1], in[4], in[5]);
  B::pstore(out, B::pzip_pair_hi(a, b));
  expect(in[2], in[3], in[6], in[7]);
  B::pstore(out, B::pset4(in[3], in[1], in[7], in[2]));
  expect(in[3], in[1], in[7], in[2]);
}
#endif  // TURBOFNO_SIMD_HAVE_AVX2

// ------------------------------------------------- 2D schedule equivalence

fft::FftPlan2d make2d(std::size_t nx, std::size_t ny, fft::Direction dir, std::size_t kx = 0,
                      std::size_t ky = 0) {
  fft::Plan2dDesc d;
  d.nx = nx;
  d.ny = ny;
  d.dir = dir;
  d.keep_x = kx;
  d.keep_y = ky;
  return fft::FftPlan2d(d);
}

struct SchedCase {
  std::size_t nx, ny, kx, ky, batch;
};

class TransposedSchedule : public ::testing::TestWithParam<SchedCase> {};

TEST_P(TransposedSchedule, BitwiseMatchesPerColumnBothDirections) {
  // The transpose schedule reorders memory, not arithmetic: every signal is
  // still gathered into the same contiguous work buffer before the
  // butterflies run, so the two schedules must agree bit for bit.
  const ScheduleGuard guard;
  const auto [nx, ny, kx, ky, batch] = GetParam();
  const std::size_t kxe = kx == 0 ? nx : kx;
  const std::size_t kye = ky == 0 ? ny : ky;

  const auto field = random_signal(batch * nx * ny, 701u + static_cast<unsigned>(nx + ny));
  const auto spec = random_signal(batch * kxe * kye, 703u + static_cast<unsigned>(nx + ny));

  const fft::FftPlan2d fwd = make2d(nx, ny, fft::Direction::Forward, kx, ky);
  const fft::FftPlan2d inv = make2d(nx, ny, fft::Direction::Inverse, kx, ky);

  std::vector<c32> fwd_col(batch * kxe * kye), fwd_tr(batch * kxe * kye);
  std::vector<c32> inv_col(batch * nx * ny), inv_tr(batch * nx * ny);

  fft::set_fft2d_transpose(false);
  ASSERT_FALSE(fft::fft2d_transpose_enabled());
  fwd.execute(field, fwd_col, batch);
  inv.execute(spec, inv_col, batch);

  fft::set_fft2d_transpose(true);
  ASSERT_TRUE(fft::fft2d_transpose_enabled());
  fwd.execute(field, fwd_tr, batch);
  inv.execute(spec, inv_tr, batch);

  EXPECT_EQ(0, std::memcmp(fwd_col.data(), fwd_tr.data(), fwd_col.size() * sizeof(c32)));
  EXPECT_EQ(0, std::memcmp(inv_col.data(), inv_tr.data(), inv_col.size() * sizeof(c32)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposedSchedule,
    ::testing::Values(SchedCase{2, 2, 0, 0, 1},        // below one 4x4 tile
                      SchedCase{2, 64, 0, 0, 2},       // nx not a tile multiple
                      SchedCase{64, 2, 0, 0, 2},       // ny not a tile multiple
                      SchedCase{8, 8, 0, 0, 3},
                      SchedCase{32, 32, 8, 4, 1},      // asymmetric keep
                      SchedCase{16, 64, 4, 16, 3},     // keep + batch
                      SchedCase{64, 16, 16, 4, 2},
                      SchedCase{64, 64, 16, 16, 2},
                      SchedCase{128, 32, 32, 8, 1}));  // ny spans two slabs

TEST(TransposedSchedule, ForwardMatchesReferenceAtTileEdges) {
  // Direct reference check (not just schedule equivalence) at the shapes
  // where the 4x4 tiles degenerate: nx or ny == 2.
  for (const auto& [nx, ny] :
       std::vector<std::pair<std::size_t, std::size_t>>{{2, 2}, {2, 16}, {16, 2}, {4, 32}}) {
    const auto in = random_signal(nx * ny, 709u + static_cast<unsigned>(nx * ny));
    std::vector<c32> out(nx * ny);
    make2d(nx, ny, fft::Direction::Forward).execute(in, out, 1);

    // Reference: column DFTs then row DFTs (double precision inside).
    std::vector<c32> mid(nx * ny), col(nx), colf(nx), want(nx * ny);
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) col[x] = in[x * ny + y];
      fft::reference_dft(col, colf, nx);
      for (std::size_t x = 0; x < nx; ++x) mid[x * ny + y] = colf[x];
    }
    for (std::size_t x = 0; x < nx; ++x) {
      fft::reference_dft(std::span<const c32>(mid.data() + x * ny, ny),
                         std::span<c32>(want.data() + x * ny, ny), ny);
    }
    EXPECT_LT(max_err(out, want), fft_tol(nx * ny)) << nx << "x" << ny;
  }
}

TEST(TransposedSchedule, RoundTripWithKeepAndBatch) {
  const std::size_t nx = 32, ny = 64, batch = 3;
  const auto in = random_signal(batch * nx * ny, 719u);
  const fft::FftPlan2d fwd = make2d(nx, ny, fft::Direction::Forward);
  const fft::FftPlan2d inv = make2d(nx, ny, fft::Direction::Inverse);
  std::vector<c32> freq(batch * nx * ny), back(batch * nx * ny);
  fwd.execute(in, freq, batch);
  inv.execute(freq, back, batch);
  EXPECT_LT(max_err(back, in), fft_tol(nx * ny));

  // Truncated fwd + padded inv applied twice is the idempotent low-pass
  // projector, per field in the batch.
  const fft::FftPlan2d fwd_t = make2d(nx, ny, fft::Direction::Forward, 8, 12);
  const fft::FftPlan2d inv_t = make2d(nx, ny, fft::Direction::Inverse, 8, 12);
  std::vector<c32> spec(batch * 8 * 12), once(batch * nx * ny), twice(batch * nx * ny);
  fwd_t.execute(in, spec, batch);
  inv_t.execute(spec, once, batch);
  fwd_t.execute(once, spec, batch);
  inv_t.execute(spec, twice, batch);
  EXPECT_LT(max_err(twice, once), 5.0 * fft_tol(nx * ny));
}

// --------------------------------------------------------------- scratch use

TEST(ScratchArena, SteadyStateDoesNotGrow) {
  const std::size_t nx = 64, ny = 64, batch = 2;
  const auto in = random_signal(batch * nx * ny, 727u);
  std::vector<c32> out(batch * 16 * 16);
  const fft::FftPlan2d plan = make2d(nx, ny, fft::Direction::Forward, 16, 16);

  plan.execute(in, out, batch);  // warm-up sizes the calling thread's arena
  const std::size_t reserved = runtime::tls_scratch().bytes_reserved();
  EXPECT_GT(reserved, 0u);
  for (int i = 0; i < 10; ++i) plan.execute(in, out, batch);
  EXPECT_EQ(reserved, runtime::tls_scratch().bytes_reserved());
}

TEST(ScratchArena, NestedScopesRewind) {
  auto& arena = runtime::tls_scratch();
  const std::size_t before = arena.bytes_reserved();
  {
    const auto outer = arena.scope();
    const auto a = arena.alloc<c32>(1024);
    a[0] = c32{1.0f, 2.0f};
    {
      const auto inner = arena.scope();
      const auto b = arena.alloc<float>(4096);
      b[0] = 3.0f;
    }
    // Inner scope rewound: the next inner-sized alloc reuses the same bytes.
    const auto c = arena.alloc<float>(4096);
    c[0] = 4.0f;
    EXPECT_EQ(a[0].re, 1.0f);  // outer allocation untouched by the rewind
    EXPECT_EQ(a[0].im, 2.0f);
  }
  EXPECT_GE(arena.bytes_reserved(), before);
}

}  // namespace
}  // namespace turbofno
