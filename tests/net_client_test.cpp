// net::Client dialing behavior: connect timeouts against full accept
// queues, read timeouts against accepting-but-mute peers, retry with
// backoff until a late listener appears, and the ping() liveness probe.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/socket_server.hpp"

namespace turbofno::net {
namespace {

/// A raw listening socket that never accept()s.  Connections land in the
/// kernel backlog (connect succeeds) but no byte is ever answered.
struct MuteListener {
  int fd = -1;
  std::uint16_t port = 0;

  explicit MuteListener(int backlog = 8) {
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    EXPECT_EQ(::listen(fd, backlog), 0);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    port = ntohs(bound.sin_port);
  }
  ~MuteListener() {
    if (fd >= 0) ::close(fd);
  }
};

core::Fno1dConfig tiny_1d() {
  core::Fno1dConfig c;
  c.in_channels = 1;
  c.hidden = 4;
  c.out_channels = 1;
  c.n = 32;
  c.modes = 4;
  c.layers = 1;
  return c;
}

TEST(NetClient, ReadTimesOutAgainstAMutePeer) {
  MuteListener mute;
  Client cli;
  Client::ConnectOptions co;
  co.timeout_s = 1.0;
  co.io_timeout_s = 0.2;  // reads give up fast
  cli.connect(mute.port, "127.0.0.1", co);
  ASSERT_TRUE(cli.connected());

  // The listener never answers: recv must throw the timeout error instead
  // of blocking forever.
  Client::Result r;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW((void)cli.recv_response(r), std::runtime_error);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(waited, 5.0);  // gave up near the configured 0.2 s, not forever
}

TEST(NetClient, ConnectTimesOutAgainstAFullBacklog) {
  // listen(fd, 1) with the queue pre-filled: further SYNs are dropped, so
  // a connect() can only time out.
  MuteListener mute(/*backlog=*/1);
  // Fill the accept queue (Linux allows backlog+1 pending; over-fill it).
  std::vector<Client> fillers(4);
  int queued = 0;
  for (auto& f : fillers) {
    try {
      Client::ConnectOptions co;
      co.timeout_s = 0.2;
      f.connect(mute.port, "127.0.0.1", co);
      ++queued;
    } catch (const std::exception&) {
      break;  // queue is full — exactly the state we want
    }
  }
  ASSERT_GE(queued, 1);

  Client cli;
  Client::ConnectOptions co;
  co.timeout_s = 0.25;
  co.attempts = 1;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(cli.connect(mute.port, "127.0.0.1", co), std::system_error);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_GE(waited, 0.2);  // it did wait out the timeout ...
  EXPECT_LT(waited, 5.0);  // ... and not the OS default of minutes
  EXPECT_FALSE(cli.connected());
}

TEST(NetClient, RetryWithBackoffReachesALateListener) {
  // Reserve an ephemeral port number, release it, and bring the real
  // server up on it only after a delay: the first dial(s) get
  // ECONNREFUSED and the retry loop must carry the client through.
  std::uint16_t port = 0;
  {
    MuteListener probe;
    port = probe.port;
  }
  SocketServer::Options o;
  o.port = port;
  SocketServer srv(o);
  (void)srv.load_model(tiny_1d());
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    srv.start();
  });

  Client cli;
  Client::ConnectOptions co;
  co.timeout_s = 0.5;
  co.attempts = 10;
  co.backoff_s = 0.05;
  cli.connect(port, "127.0.0.1", co);  // throws (and fails the test) if retries don't land
  EXPECT_TRUE(cli.connected());
  late.join();
  EXPECT_TRUE(cli.ping(2.0));
  srv.stop();
}

TEST(NetClient, ExhaustedRetriesThrowTheLastError) {
  std::uint16_t dead_port = 0;
  {
    MuteListener probe;
    dead_port = probe.port;  // released at scope exit: nothing listens here
  }
  Client cli;
  Client::ConnectOptions co;
  co.timeout_s = 0.2;
  co.attempts = 3;
  co.backoff_s = 0.01;
  EXPECT_THROW(cli.connect(dead_port, "127.0.0.1", co), std::system_error);
  EXPECT_FALSE(cli.connected());
}

TEST(NetClient, PingProbesServerLivenessWithoutDisturbingRequests) {
  SocketServer::Options o;
  o.port = 0;
  SocketServer srv(o);
  const auto m = static_cast<std::uint32_t>(srv.load_model(tiny_1d()));
  srv.start();

  Client cli;
  cli.connect(srv.port());
  EXPECT_TRUE(cli.ping(2.0));

  // An ordinary request still round-trips on the same connection, and the
  // io timeout ping temporarily installed is restored (no spurious
  // timeouts on the slow-ish first inference).
  const std::uint32_t dims[] = {1, 32};
  const std::vector<float> in(32, 1.0f);
  EXPECT_EQ(cli.infer_real(m, dims, in).head.status, WireStatus::Ok);
  EXPECT_TRUE(cli.ping(2.0));
  EXPECT_GE(srv.stats().control_frames, 2u);

  // Against a mute peer, ping reports false instead of hanging/throwing.
  MuteListener mute;
  Client dead;
  Client::ConnectOptions co;
  co.timeout_s = 1.0;
  dead.connect(mute.port, "127.0.0.1", co);
  EXPECT_FALSE(dead.ping(0.2));
  srv.stop();
}

}  // namespace
}  // namespace turbofno::net
