// FFT plan cache and strided-batched CGEMM.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fft/plan_cache.hpp"
#include "gemm/batched.hpp"
#include "gemm/reference.hpp"
#include "test_util.hpp"

namespace turbofno {
namespace {

using turbofno::testing::max_err;
using turbofno::testing::random_signal;

TEST(PlanCache, SameDescriptorSharesOnePlan) {
  fft::PlanDesc d;
  d.n = 512;
  d.keep = 128;
  const auto& a = fft::cached_plan(d);
  const auto& b = fft::cached_plan(d);
  EXPECT_EQ(&a, &b);
}

TEST(PlanCache, DistinctDescriptorsDistinctPlans) {
  fft::PlanDesc d;
  d.n = 512;
  const auto& full = fft::cached_plan(d);
  d.keep = 64;
  const auto& trunc = fft::cached_plan(d);
  EXPECT_NE(&full, &trunc);
  EXPECT_FALSE(full.pruned());
  EXPECT_TRUE(trunc.pruned());
}

TEST(PlanCache, DefaultedFieldsNormalizeToSameKey) {
  fft::PlanDesc a;
  a.n = 256;
  a.keep = 0;  // means n
  fft::PlanDesc b;
  b.n = 256;
  b.keep = 256;  // explicit n
  EXPECT_EQ(&fft::cached_plan(a), &fft::cached_plan(b));
}

TEST(PlanCache, ConcurrentLookupsAreSafe) {
  fft::PlanDesc d;
  d.n = 1024;
  d.keep = 256;
  std::vector<const fft::FftPlan*> seen(8, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] { seen[t] = &fft::cached_plan(d); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_GE(fft::cached_plan_count(), 1u);
}

TEST(CgemmBatched, IndependentInstancesMatchReference) {
  const std::size_t M = 9;
  const std::size_t N = 11;
  const std::size_t K = 7;
  const std::size_t batch = 5;
  const auto A = random_signal(batch * M * K, 2001u);
  const auto B = random_signal(batch * K * N, 2003u);
  std::vector<c32> C(batch * M * N, c32{});
  gemm::BatchedStrides strides;
  strides.a = static_cast<std::ptrdiff_t>(M * K);
  strides.b = static_cast<std::ptrdiff_t>(K * N);
  strides.c = static_cast<std::ptrdiff_t>(M * N);
  gemm::cgemm_batched(M, N, K, c32{1.0f, 0.0f}, A.data(), K, B.data(), N, c32{0.0f, 0.0f},
                      C.data(), N, batch, strides);
  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<c32> ref(M * N, c32{});
    gemm::cgemm_reference(M, N, K, c32{1.0f, 0.0f}, A.data() + i * M * K, K,
                          B.data() + i * K * N, N, c32{0.0f, 0.0f}, ref.data(), N);
    EXPECT_LT(max_err(std::span<const c32>(C.data() + i * M * N, M * N), ref), 1e-4)
        << "instance " << i;
  }
}

TEST(CgemmBatched, ZeroStrideBroadcastsOperand) {
  // The FNO case: one weight matrix A shared across the batch.
  const std::size_t M = 8;
  const std::size_t N = 16;
  const std::size_t K = 8;
  const std::size_t batch = 4;
  const auto A = random_signal(M * K, 2011u);
  const auto B = random_signal(batch * K * N, 2017u);
  std::vector<c32> C(batch * M * N, c32{});
  gemm::BatchedStrides strides;
  strides.a = 0;  // broadcast
  strides.b = static_cast<std::ptrdiff_t>(K * N);
  strides.c = static_cast<std::ptrdiff_t>(M * N);
  gemm::cgemm_batched(M, N, K, c32{1.0f, 0.0f}, A.data(), K, B.data(), N, c32{0.0f, 0.0f},
                      C.data(), N, batch, strides);
  for (std::size_t i = 0; i < batch; ++i) {
    std::vector<c32> ref(M * N, c32{});
    gemm::cgemm_reference(M, N, K, c32{1.0f, 0.0f}, A.data(), K, B.data() + i * K * N, N,
                          c32{0.0f, 0.0f}, ref.data(), N);
    EXPECT_LT(max_err(std::span<const c32>(C.data() + i * M * N, M * N), ref), 1e-4);
  }
}

TEST(CgemmBatched, EmptyBatchIsANoOp) {
  std::vector<c32> C(4, c32{3.0f, 3.0f});
  gemm::cgemm_batched(2, 2, 2, c32{1.0f, 0.0f}, nullptr, 2, nullptr, 2, c32{0.0f, 0.0f},
                      C.data(), 2, 0, {});
  EXPECT_EQ(C[0].re, 3.0f);
}

}  // namespace
}  // namespace turbofno
