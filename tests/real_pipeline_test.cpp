// Real-spectral (RFFT) lane: every 1D/2D ladder variant's run_batched_real
// must match a direct double-precision half-spectrum reference, the knob-off
// C2C emulation must agree with the knob-on RFFT schedule at the layer and
// model level, and the steady state must stay allocation-free.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/api.hpp"
#include "fft/fft2d.hpp"
#include "fft/real.hpp"
#include "fft/reference.hpp"
#include "fused/ladder.hpp"
#include "fused/pipeline2d.hpp"
#include "runtime/scratch.hpp"
#include "test_util.hpp"

namespace turbofno::fused {
namespace {

using baseline::Spectral1dProblem;
using baseline::Spectral2dProblem;
using turbofno::testing::random_signal;

std::vector<float> random_reals(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

double rel_err_f(std::span<const float> a, std::span<const float> b) {
  double num = 0.0;
  double den = 1e-30;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    num += d * d;
    den += static_cast<double>(b[i]) * b[i];
  }
  return std::sqrt(num / den);
}

std::vector<c32> pack(std::span<const float> x) {
  std::vector<c32> z(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) z[i] = {x[i], 0.0f};
  return z;
}

/// torch.fft.irfft bin completion: first `stored` bins -> full n-bin
/// conjugate-symmetric spectrum (DC, and Nyquist when stored, projected
/// real).
std::vector<c32> hermitian_full(std::span<const c32> bins, std::size_t n) {
  std::vector<c32> full(n, c32{});
  full[0] = {bins[0].re, 0.0f};
  for (std::size_t k = 1; k < bins.size(); ++k) {
    if (k == n - k) {
      full[k] = {bins[k].re, 0.0f};
    } else {
      full[k] = bins[k];
      full[n - k] = {bins[k].re, -bins[k].im};
    }
  }
  return full;
}

// Direct reference of the 1D real lane: full DFT of the real signal, keep
// modes/2+1 bins, mix along hidden, Hermitian-complete, inverse DFT, real
// part.
std::vector<float> reference_real_conv_1d(const Spectral1dProblem& p,
                                          const std::vector<float>& u,
                                          const std::vector<c32>& w) {
  const std::size_t B = p.batch;
  const std::size_t K = p.hidden;
  const std::size_t O = p.out_dim;
  const std::size_t N = p.n;
  const std::size_t MR = p.modes / 2 + 1;
  const auto uc = pack(u);
  std::vector<c32> freq(B * K * MR);
  for (std::size_t bk = 0; bk < B * K; ++bk) {
    fft::reference_dft(std::span<const c32>(uc.data() + bk * N, N),
                       std::span<c32>(freq.data() + bk * MR, MR), N);
  }
  std::vector<c32> mixed(B * O * MR, c32{});
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t o = 0; o < O; ++o) {
      for (std::size_t f = 0; f < MR; ++f) {
        c32 acc{};
        for (std::size_t k = 0; k < K; ++k) {
          cmadd(acc, w[o * K + k], freq[(b * K + k) * MR + f]);
        }
        mixed[(b * O + o) * MR + f] = acc;
      }
    }
  }
  std::vector<float> v(B * O * N);
  for (std::size_t bo = 0; bo < B * O; ++bo) {
    const auto full =
        hermitian_full(std::span<const c32>(mixed.data() + bo * MR, MR), N);
    std::vector<c32> time(N);
    fft::reference_idft(full, time, N);
    for (std::size_t j = 0; j < N; ++j) v[bo * N + j] = time[j].re;
  }
  return v;
}

// Direct reference of the 2D real lane: truncated X DFT per column
// (modes_x/2+1 bins), truncated Y DFT per row, mix, padded Y inverse,
// Hermitian X inverse per column.
std::vector<float> reference_real_conv_2d(const Spectral2dProblem& p,
                                          const std::vector<float>& u,
                                          const std::vector<c32>& w) {
  const std::size_t B = p.batch;
  const std::size_t K = p.hidden;
  const std::size_t O = p.out_dim;
  const std::size_t NX = p.nx;
  const std::size_t NY = p.ny;
  const std::size_t MY = p.modes_y;
  const std::size_t MXR = p.modes_x / 2 + 1;
  std::vector<c32> xf(B * K * MXR * NY);
  for (std::size_t f = 0; f < B * K; ++f) {
    for (std::size_t y = 0; y < NY; ++y) {
      std::vector<c32> col(NX);
      for (std::size_t x = 0; x < NX; ++x) col[x] = {u[(f * NX + x) * NY + y], 0.0f};
      std::vector<c32> bins(MXR);
      fft::reference_dft(col, bins, NX);
      for (std::size_t k = 0; k < MXR; ++k) xf[(f * MXR + k) * NY + y] = bins[k];
    }
  }
  std::vector<c32> freq(B * K * MXR * MY);
  for (std::size_t r = 0; r < B * K * MXR; ++r) {
    fft::reference_dft(std::span<const c32>(xf.data() + r * NY, NY),
                       std::span<c32>(freq.data() + r * MY, MY), NY);
  }
  const std::size_t modes = MXR * MY;
  std::vector<c32> mixed(B * O * modes, c32{});
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t o = 0; o < O; ++o) {
      for (std::size_t f = 0; f < modes; ++f) {
        c32 acc{};
        for (std::size_t k = 0; k < K; ++k) {
          cmadd(acc, w[o * K + k], freq[(b * K + k) * modes + f]);
        }
        mixed[(b * O + o) * modes + f] = acc;
      }
    }
  }
  std::vector<c32> xi(B * O * MXR * NY);
  for (std::size_t r = 0; r < B * O * MXR; ++r) {
    fft::reference_idft(std::span<const c32>(mixed.data() + r * MY, MY),
                        std::span<c32>(xi.data() + r * NY, NY), NY);
  }
  std::vector<float> v(B * O * NX * NY);
  for (std::size_t f = 0; f < B * O; ++f) {
    for (std::size_t y = 0; y < NY; ++y) {
      std::vector<c32> bins(MXR);
      for (std::size_t k = 0; k < MXR; ++k) bins[k] = xi[(f * MXR + k) * NY + y];
      const auto full = hermitian_full(bins, NX);
      std::vector<c32> col(NX);
      fft::reference_idft(full, col, NX);
      for (std::size_t x = 0; x < NX; ++x) v[(f * NX + x) * NY + y] = col[x].re;
    }
  }
  return v;
}

// --------------------------------------------------------------- 1D ladder

struct RealCase1d {
  Variant variant;
  Spectral1dProblem prob;
};

std::vector<RealCase1d> real_cases_1d() {
  const std::vector<Spectral1dProblem> probs = {
      {2, 8, 8, 32, 8},
      {1, 8, 24, 64, 32},
      {2, 9, 7, 64, 16},   // hidden not a multiple of k_tb
      {1, 8, 8, 64, 64},   // no truncation (modes == n)
      {2, 8, 8, 64, 1},    // extreme truncation (one retained bin)
  };
  std::vector<RealCase1d> cases;
  for (const auto v : kAllVariants) {
    for (const auto& p : probs) cases.push_back({v, p});
  }
  return cases;
}

class RealLadder1d : public ::testing::TestWithParam<RealCase1d> {};

TEST_P(RealLadder1d, MatchesDirectReference) {
  const auto& [variant, prob] = GetParam();
  const auto u = random_reals(prob.batch * prob.hidden * prob.n,
                              501u + static_cast<unsigned>(prob.n));
  const auto w = random_signal(prob.hidden * prob.out_dim, 509u);
  std::vector<float> v(prob.batch * prob.out_dim * prob.n, 0.0f);
  auto pipe = make_pipeline1d(variant, prob, /*real_input=*/true);
  pipe->run_batched_real(u, w, v, prob.batch);
  const auto ref = reference_real_conv_1d(prob, u, w);
  EXPECT_LT(rel_err_f(v, ref), 1e-4) << pipe->name();
}

TEST_P(RealLadder1d, SecondRunIsIdenticalAndAllocationFree) {
  const auto& [variant, prob] = GetParam();
  const auto u = random_reals(prob.batch * prob.hidden * prob.n, 521u);
  const auto w = random_signal(prob.hidden * prob.out_dim, 523u);
  std::vector<float> v1(prob.batch * prob.out_dim * prob.n, 0.0f);
  std::vector<float> v2(v1.size(), 0.0f);
  auto pipe = make_pipeline1d(variant, prob, true);
  pipe->run_batched_real(u, w, v1, prob.batch);
  const std::size_t reserved = runtime::tls_scratch().bytes_reserved();
  pipe->run_batched_real(u, w, v2, prob.batch);
  EXPECT_EQ(reserved, runtime::tls_scratch().bytes_reserved());
  for (std::size_t i = 0; i < v1.size(); ++i) EXPECT_EQ(v1[i], v2[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Ladder, RealLadder1d, ::testing::ValuesIn(real_cases_1d()));

// --------------------------------------------------------------- 2D ladder

struct RealCase2d {
  Variant variant;
  bool fused_mid;
  bool x_transpose;  // complex X-stage schedule knob — the real lane must
                     // be invariant under it
  Spectral2dProblem prob;
};

std::vector<RealCase2d> real_cases_2d() {
  const std::vector<Spectral2dProblem> probs = {
      {2, 6, 6, 16, 16, 6, 6},
      {1, 8, 4, 32, 16, 12, 8},
      {2, 5, 7, 16, 32, 16, 12},  // modes_x == nx (no X truncation)
  };
  std::vector<RealCase2d> cases;
  for (const auto v : kAllVariants) {
    for (const bool fm : {false, true}) {
      for (const bool tr : {false, true}) {
        for (const auto& p : probs) cases.push_back({v, fm, tr, p});
      }
    }
  }
  return cases;
}

class RealLadder2d : public ::testing::TestWithParam<RealCase2d> {};

TEST_P(RealLadder2d, MatchesDirectReference) {
  const auto& [variant, fused_mid, x_transpose, prob] = GetParam();
  const bool prev_mid = fft::fused_mid_enabled();
  const bool prev_tr = fft::fft2d_transpose_enabled();
  fft::set_fused_mid(fused_mid);
  fft::set_fft2d_transpose(x_transpose);
  set_fused_mid_group(2);  // exercise group chunking, not just whole-batch
  const auto u = random_reals(prob.batch * prob.hidden * prob.nx * prob.ny,
                              601u + static_cast<unsigned>(prob.nx));
  const auto w = random_signal(prob.hidden * prob.out_dim, 607u);
  std::vector<float> v(prob.batch * prob.out_dim * prob.nx * prob.ny, 0.0f);
  auto pipe = make_pipeline2d(variant, prob, /*real_input=*/true);
  pipe->run_batched_real(u, w, v, prob.batch);
  set_fused_mid_group(0);
  fft::set_fused_mid(prev_mid);
  fft::set_fft2d_transpose(prev_tr);
  const auto ref = reference_real_conv_2d(prob, u, w);
  EXPECT_LT(rel_err_f(v, ref), 1e-4)
      << pipe->name() << " fused_mid=" << fused_mid << " x_transpose=" << x_transpose;
}

INSTANTIATE_TEST_SUITE_P(Ladder, RealLadder2d, ::testing::ValuesIn(real_cases_2d()));

// ------------------------------------------------- layer + model level A/B

class RealSpectralKnob : public ::testing::Test {
 protected:
  void TearDown() override { fft::set_real_spectral(true); }
};

TEST_F(RealSpectralKnob, Conv1dKnobOffMatchesKnobOn) {
  core::SpectralConv1d conv(2, 8, 8, 64, 16, core::Backend::FullyFused);
  const auto u = random_reals(2 * 8 * 64, 701u);
  std::vector<float> on(2 * 8 * 64, 0.0f);
  std::vector<float> off(on.size(), 0.0f);
  fft::set_real_spectral(true);
  conv.forward_real(u, on, 2);
  fft::set_real_spectral(false);
  conv.forward_real(u, off, 2);
  EXPECT_LT(rel_err_f(on, off), 1e-4);
}

TEST_F(RealSpectralKnob, Conv2dKnobOffMatchesKnobOn) {
  core::SpectralConv2d conv(2, 6, 6, 16, 16, 8, 8, core::Backend::FullyFused);
  const auto u = random_reals(2 * 6 * 16 * 16, 709u);
  std::vector<float> on(u.size(), 0.0f);
  std::vector<float> off(u.size(), 0.0f);
  fft::set_real_spectral(true);
  conv.forward_real(u, on, 2);
  fft::set_real_spectral(false);
  conv.forward_real(u, off, 2);
  EXPECT_LT(rel_err_f(on, off), 1e-4);
}

TEST_F(RealSpectralKnob, Conv1dPerModeRealRuns) {
  core::SpectralConv1d conv(1, 6, 6, 32, 8, core::Backend::FftOpt,
                            core::WeightScheme::PerMode);
  const auto u = random_reals(6 * 32, 719u);
  std::vector<float> v(6 * 32, 0.0f);
  conv.forward_real(u, v, 1);
  double mag = 0.0;
  for (const float x : v) mag += std::fabs(x);
  EXPECT_GT(mag, 0.0);
}

TEST_F(RealSpectralKnob, Fno1dModelAgreesAcrossKnob) {
  core::Fno1dConfig cfg;
  cfg.hidden = 8;
  cfg.n = 64;
  cfg.modes = 16;
  cfg.layers = 2;
  cfg.backend = core::Backend::Auto;
  core::Fno1d model(cfg);
  const auto u = random_reals(cfg.in_channels * cfg.n, 727u);
  std::vector<float> on(cfg.out_channels * cfg.n, 0.0f);
  std::vector<float> off(on.size(), 0.0f);
  fft::set_real_spectral(true);
  model.forward_real(u, on, 1);
  fft::set_real_spectral(false);
  model.forward_real(u, off, 1);
  EXPECT_LT(rel_err_f(on, off), 1e-3);
}

TEST_F(RealSpectralKnob, SessionRunRealServes2d) {
  core::Engine engine;
  core::Fno2dConfig cfg;
  cfg.hidden = 6;
  cfg.nx = 16;
  cfg.ny = 16;
  cfg.modes_x = 8;
  cfg.modes_y = 8;
  cfg.layers = 2;
  cfg.backend = core::Backend::Auto;
  const auto m = engine.register_model(cfg);
  auto session = engine.create_session(m, 2);
  const std::size_t in = cfg.in_channels * cfg.nx * cfg.ny;
  const std::size_t out = cfg.out_channels * cfg.nx * cfg.ny;
  const auto u = random_reals(2 * in, 733u);
  std::vector<float> v(2 * out, 0.0f);
  session.run_real(u, v, 2);
  // Batch results must equal two singles (no cross-request coupling).
  std::vector<float> one(out, 0.0f);
  session.run_real(std::span<const float>(u.data(), in), one, 1);
  for (std::size_t i = 0; i < out; ++i) EXPECT_EQ(v[i], one[i]) << i;
}

}  // namespace
}  // namespace turbofno::fused
