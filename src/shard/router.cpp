#include "shard/router.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <deque>
#include <limits>
#include <stdexcept>
#include <system_error>
#include <unordered_map>
#include <vector>

#include "runtime/timer.hpp"

namespace turbofno::shard {

namespace {

[[nodiscard]] std::system_error sys_error(const char* what) {
  return {errno, std::generic_category(), what};
}

/// One queued outbound buffer (a fully-encoded frame).
struct OutBuf {
  std::vector<std::byte> data;
  std::size_t len = 0;
  std::size_t off = 0;
};

}  // namespace

// Frames are reassembled into a buffer with kHeaderBytes of headroom: the
// body starts at offset kHeaderBytes, so a forwarded/relayed frame is the
// reassembly buffer itself — rewrite two fields, reseal, write the header
// in place, move the vector into the out queue.  The payload is never
// copied inside the router.
struct Router::ClientConn {
  int fd = -1;
  // Read reassembly.
  std::array<std::byte, net::kHeaderBytes> hdr{};
  std::size_t hdr_got = 0;
  bool have_header = false;
  net::FrameHeader fh;
  std::vector<std::byte> buf;  // kHeaderBytes + fh.body_len
  std::size_t body_got = 0;
  // Write side.
  std::deque<OutBuf> out_q;
  std::size_t out_bytes = 0;
  bool reading_paused = false;
  bool want_close = false;
  bool dead = false;
};

struct Router::WorkerLink {
  std::size_t index = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool have_endpoint = false;

  enum class State { Down, Connecting, Handshaking, Up };
  State state = State::Down;
  int fd = -1;

  // Read reassembly (same headroom trick as ClientConn).
  std::array<std::byte, net::kHeaderBytes> hdr{};
  std::size_t hdr_got = 0;
  bool have_header = false;
  net::FrameHeader fh;
  std::vector<std::byte> buf;
  std::size_t body_got = 0;
  // Write side.
  std::deque<OutBuf> out_q;
  std::size_t out_bytes = 0;

  /// A forwarded request waiting for its worker response.
  struct Pending {
    std::shared_ptr<ClientConn> client;
    std::uint64_t client_corr = 0;
    net::Dtype dtype = net::Dtype::C32;
  };
  std::unordered_map<std::uint64_t, Pending> outstanding;

  /// A decoded-but-not-yet-forwarded request (worker down or window full).
  struct Parked {
    std::vector<std::byte> frame;  // full frame, model field already local
    std::shared_ptr<ClientConn> client;
    std::uint64_t client_corr = 0;
    net::Dtype dtype = net::Dtype::C32;
  };
  std::deque<Parked> gap;

  // Redial / liveness bookkeeping (seconds on the router clock).
  double next_dial_s = 0.0;
  double backoff_s = 0.0;
  double dial_start_s = 0.0;
  double last_ack_s = 0.0;
  double next_hb_s = 0.0;
};

struct Router::Impl {
  explicit Impl(Router* router) : r(router) {}

  Router* r;
  runtime::Timer clock;

  int ep = -1;
  int event_fd = -1;
  int listen_fd = -1;

  // Resolved options.
  std::size_t max_frame = 0;
  std::size_t window = 0;
  std::size_t gap_cap = 0;
  double hb_s = 0.0;
  double redial_min = 0.0;
  double redial_max = 0.0;

  std::uint64_t next_corr = 1;
  std::unordered_map<int, std::shared_ptr<ClientConn>> clients;
  std::vector<std::unique_ptr<WorkerLink>> links;
  std::unordered_map<int, WorkerLink*> link_by_fd;

  bool stopping = false;
  double stop_deadline_s = 0.0;

  // Cross-thread command queue (public API -> io thread).
  struct Endpoint {
    std::size_t index = 0;
    std::string host;
    std::uint16_t port = 0;
  };
  runtime::Mutex cmd_mu;
  std::vector<Endpoint> pending_endpoints TFNO_GUARDED_BY(cmd_mu);
  bool stop_requested TFNO_GUARDED_BY(cmd_mu) = false;

  // ---- helpers ----------------------------------------------------------
  void bump(std::uint64_t Stats::* f, std::uint64_t n = 1) {
    const runtime::MutexLock lock(r->stats_mu_);
    r->stats_.*f += n;
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto w = ::write(event_fd, &one, sizeof one);
  }

  // Client side.
  void accept_clients();
  void update_client_interest(const std::shared_ptr<ClientConn>& c);
  void enqueue_client(const std::shared_ptr<ClientConn>& c, std::vector<std::byte>&& frame,
                      std::size_t len, bool close_after);
  void queue_client_error(const std::shared_ptr<ClientConn>& c, std::uint64_t corr,
                          net::Dtype dtype, net::WireStatus status, bool close_after);
  void queue_client_status(const std::shared_ptr<ClientConn>& c, std::uint64_t corr,
                           net::Dtype dtype, net::WireStatus status);
  void flush_client(const std::shared_ptr<ClientConn>& c);
  void handle_client_read(const std::shared_ptr<ClientConn>& c);
  void process_client_frame(const std::shared_ptr<ClientConn>& c);
  void close_client(const std::shared_ptr<ClientConn>& c);

  // Worker side.
  void update_link_interest(WorkerLink& w);
  void enqueue_link(WorkerLink& w, std::vector<std::byte>&& frame, std::size_t len);
  void flush_link(WorkerLink& w);
  void dial(WorkerLink& w);
  void start_handshake(WorkerLink& w);
  void go_up(WorkerLink& w);
  void fail_link(WorkerLink& w, net::WireStatus shed_status = net::WireStatus::Shed);
  void handle_link_event(WorkerLink& w, std::uint32_t events);
  void handle_link_read(WorkerLink& w);
  void process_link_frame(WorkerLink& w);
  void dispatch_or_park(WorkerLink& w, WorkerLink::Parked&& p);
  void send_to_worker(WorkerLink& w, WorkerLink::Parked&& p);
  void flush_gap(WorkerLink& w);

  // Timers / commands / shutdown.
  void process_commands();
  void process_timers(double now);
  [[nodiscard]] double next_deadline(double now) const;
  void begin_stop();
  [[nodiscard]] bool stop_complete() const;
  void final_cleanup();
};

// --------------------------------------------------------------- client side

void Router::Impl::accept_clients() {
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient accept error: try next wake
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto c = std::make_shared<ClientConn>();
    c->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    clients.emplace(fd, std::move(c));
    bump(&Stats::clients_accepted);
  }
}

void Router::Impl::update_client_interest(const std::shared_ptr<ClientConn>& c) {
  if (c->dead) return;
  epoll_event ev{};
  ev.events = 0;
  if (!c->reading_paused && !c->want_close && !stopping) ev.events |= EPOLLIN;
  if (!c->out_q.empty()) ev.events |= EPOLLOUT;
  ev.data.fd = c->fd;
  ::epoll_ctl(ep, EPOLL_CTL_MOD, c->fd, &ev);
}

void Router::Impl::close_client(const std::shared_ptr<ClientConn>& c) {
  if (c->dead) return;
  c->dead = true;
  ::epoll_ctl(ep, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  clients.erase(c->fd);
  c->fd = -1;
  bump(&Stats::clients_closed);
}

void Router::Impl::flush_client(const std::shared_ptr<ClientConn>& c) {
  while (!c->out_q.empty()) {
    OutBuf& o = c->out_q.front();
    const auto w = ::send(c->fd, o.data.data() + o.off, o.len - o.off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_client(c);
      return;
    }
    o.off += static_cast<std::size_t>(w);
    if (o.off < o.len) break;
    c->out_bytes -= o.len;
    c->out_q.pop_front();
  }
  if (c->out_q.empty() && c->want_close) {
    close_client(c);
    return;
  }
  // Backpressure hysteresis: resume reads once the queue drained past half.
  if (c->reading_paused && c->out_bytes <= r->opts_.max_buffered_bytes / 2) {
    c->reading_paused = false;
  }
  update_client_interest(c);
}

void Router::Impl::enqueue_client(const std::shared_ptr<ClientConn>& c,
                                  std::vector<std::byte>&& frame, std::size_t len,
                                  bool close_after) {
  if (c->dead) {
    bump(&Stats::dropped_responses);
    return;
  }
  OutBuf o;
  o.data = std::move(frame);
  o.len = len;
  c->out_q.push_back(std::move(o));
  c->out_bytes += len;
  if (close_after) c->want_close = true;
  flush_client(c);  // opportunistic immediate write
  if (c->dead) return;
  if (!c->reading_paused && c->out_bytes > r->opts_.max_buffered_bytes) {
    c->reading_paused = true;
    update_client_interest(c);
  }
}

void Router::Impl::queue_client_error(const std::shared_ptr<ClientConn>& c, std::uint64_t corr,
                                      net::Dtype dtype, net::WireStatus status,
                                      bool close_after) {
  net::ResponseHead rh;
  rh.correlation = corr;
  rh.status = status;
  rh.dtype = dtype;
  std::vector<std::byte> frame(net::encoded_response_bytes(0));
  const std::size_t len = net::encode_response(frame, rh);
  bump(&Stats::protocol_errors);
  enqueue_client(c, std::move(frame), len, close_after);
}

/// A router-originated non-error verdict (Shed / ShutDown) for a request
/// the router accepted but could not get executed.
void Router::Impl::queue_client_status(const std::shared_ptr<ClientConn>& c, std::uint64_t corr,
                                       net::Dtype dtype, net::WireStatus status) {
  net::ResponseHead rh;
  rh.correlation = corr;
  rh.status = status;
  rh.dtype = dtype;
  std::vector<std::byte> frame(net::encoded_response_bytes(0));
  const std::size_t len = net::encode_response(frame, rh);
  enqueue_client(c, std::move(frame), len, /*close_after=*/false);
}

void Router::Impl::handle_client_read(const std::shared_ptr<ClientConn>& c) {
  while (!c->dead && !c->want_close && !c->reading_paused && !stopping) {
    if (!c->have_header) {
      const auto n =
          ::read(c->fd, c->hdr.data() + c->hdr_got, net::kHeaderBytes - c->hdr_got);
      if (n == 0) {
        close_client(c);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        close_client(c);
        return;
      }
      c->hdr_got += static_cast<std::size_t>(n);
      if (c->hdr_got < net::kHeaderBytes) continue;
      const net::DecodeError e = net::decode_header(c->hdr, c->fh, max_frame);
      if (e != net::DecodeError::None) {
        queue_client_error(c, 0, net::Dtype::C32, net::decode_error_status(e),
                           /*close_after=*/true);
        return;
      }
      c->have_header = true;
      c->buf.resize(net::kHeaderBytes + c->fh.body_len);
      c->body_got = 0;
      if (c->fh.body_len == 0) process_client_frame(c);
      continue;
    }
    const auto n = ::read(c->fd, c->buf.data() + net::kHeaderBytes + c->body_got,
                          c->fh.body_len - c->body_got);
    if (n == 0) {
      close_client(c);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_client(c);
      return;
    }
    c->body_got += static_cast<std::size_t>(n);
    if (c->body_got == c->fh.body_len) process_client_frame(c);
  }
}

void Router::Impl::process_client_frame(const std::shared_ptr<ClientConn>& c) {
  std::vector<std::byte> buf = std::move(c->buf);
  const net::FrameHeader fh = c->fh;
  c->have_header = false;
  c->hdr_got = 0;
  c->buf = {};
  c->body_got = 0;
  const std::span<const std::byte> body{buf.data() + net::kHeaderBytes, fh.body_len};

  if (const net::DecodeError e = net::verify_body(fh, body); e != net::DecodeError::None) {
    queue_client_error(c, 0, net::Dtype::C32, net::decode_error_status(e),
                       /*close_after=*/true);
    return;
  }
  if (fh.type == net::FrameType::Control) {
    // The router answers client-side control traffic itself, exactly like
    // a single-process server would: Hello -> model count, Heartbeat ->
    // token echo.  (Worker liveness is the router's own business.)
    net::ControlHead ch;
    if (net::decode_control(body, ch) != net::DecodeError::None ||
        (ch.kind != net::ControlKind::Hello && ch.kind != net::ControlKind::Heartbeat)) {
      queue_client_error(c, 0, net::Dtype::C32, net::WireStatus::BadFrame,
                         /*close_after=*/false);
      return;
    }
    net::ControlHead ack;
    ack.kind = ch.kind == net::ControlKind::Hello ? net::ControlKind::HelloAck
                                                  : net::ControlKind::HeartbeatAck;
    ack.token = ch.kind == net::ControlKind::Hello ? r->topo_.model_count() : ch.token;
    std::vector<std::byte> frame(net::encoded_control_bytes());
    const std::size_t len = net::encode_control(frame, ack);
    enqueue_client(c, std::move(frame), len, /*close_after=*/false);
    return;
  }
  if (fh.type != net::FrameType::Request) {
    queue_client_error(c, 0, net::Dtype::C32, net::WireStatus::BadFrame,
                       /*close_after=*/false);
    return;
  }
  net::RequestHead head;
  std::span<const std::byte> payload;
  const net::DecodeError e = net::decode_request(body, head, payload);
  if (e != net::DecodeError::None) {
    queue_client_error(c, e == net::DecodeError::ShapeMismatch ? head.correlation : 0,
                       net::Dtype::C32, net::decode_error_status(e),
                       net::decode_error_closes(e));
    return;
  }
  if (head.model >= r->topo_.model_count()) {
    queue_client_error(c, head.correlation, head.dtype, net::WireStatus::UnknownModel,
                       /*close_after=*/false);
    return;
  }
  const Route route = r->topo_.route(head.model);
  // Rewrite the model field to the worker-local id now; the correlation is
  // assigned (and the CRC resealed) at forward time, which may be after a
  // stay in the gap queue.
  net::store_u32le(buf.data() + net::kHeaderBytes + 8, route.local);
  WorkerLink::Parked p;
  p.frame = std::move(buf);
  p.client = c;
  p.client_corr = head.correlation;
  p.dtype = head.dtype;
  dispatch_or_park(*links[route.worker], std::move(p));
}

// --------------------------------------------------------------- worker side

void Router::Impl::update_link_interest(WorkerLink& w) {
  if (w.fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (!w.out_q.empty() || w.state == WorkerLink::State::Connecting) ev.events |= EPOLLOUT;
  ev.data.fd = w.fd;
  ::epoll_ctl(ep, EPOLL_CTL_MOD, w.fd, &ev);
}

void Router::Impl::enqueue_link(WorkerLink& w, std::vector<std::byte>&& frame,
                                std::size_t len) {
  OutBuf o;
  o.data = std::move(frame);
  o.len = len;
  w.out_q.push_back(std::move(o));
  w.out_bytes += len;
  flush_link(w);
}

void Router::Impl::flush_link(WorkerLink& w) {
  while (!w.out_q.empty()) {
    OutBuf& o = w.out_q.front();
    const auto s = ::send(w.fd, o.data.data() + o.off, o.len - o.off, MSG_NOSIGNAL);
    if (s < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      fail_link(w);
      return;
    }
    o.off += static_cast<std::size_t>(s);
    if (o.off < o.len) break;
    w.out_bytes -= o.len;
    w.out_q.pop_front();
  }
  update_link_interest(w);
}

void Router::Impl::dial(WorkerLink& w) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    w.next_dial_s = clock.seconds() + w.backoff_s;
    w.backoff_s = std::min(w.backoff_s * 2.0, redial_max);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(w.port);
  if (::inet_pton(AF_INET, w.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    w.have_endpoint = false;  // unroutable host: wait for a new endpoint
    return;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    w.next_dial_s = clock.seconds() + w.backoff_s;
    w.backoff_s = std::min(w.backoff_s * 2.0, redial_max);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  w.fd = fd;
  w.state = WorkerLink::State::Connecting;
  w.dial_start_s = clock.seconds();
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.fd = fd;
  if (::epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    w.fd = -1;
    w.state = WorkerLink::State::Down;
    w.next_dial_s = clock.seconds() + w.backoff_s;
    w.backoff_s = std::min(w.backoff_s * 2.0, redial_max);
    return;
  }
  link_by_fd[fd] = &w;
  if (rc == 0) start_handshake(w);
}

void Router::Impl::start_handshake(WorkerLink& w) {
  w.state = WorkerLink::State::Handshaking;
  w.dial_start_s = clock.seconds();
  net::ControlHead hello;
  hello.kind = net::ControlKind::Hello;
  hello.token = r->topo_.owned_count(w.index);
  std::vector<std::byte> frame(net::encoded_control_bytes());
  const std::size_t len = net::encode_control(frame, hello);
  enqueue_link(w, std::move(frame), len);
}

void Router::Impl::go_up(WorkerLink& w) {
  w.state = WorkerLink::State::Up;
  w.backoff_s = redial_min;
  const double now = clock.seconds();
  w.last_ack_s = now;
  w.next_hb_s = now + hb_s;
  bump(&Stats::worker_connects);
  flush_gap(w);
}

void Router::Impl::fail_link(WorkerLink& w, net::WireStatus shed_status) {
  if (w.fd >= 0) {
    link_by_fd.erase(w.fd);
    ::epoll_ctl(ep, EPOLL_CTL_DEL, w.fd, nullptr);
    ::close(w.fd);
    w.fd = -1;
    bump(&Stats::worker_disconnects);
  }
  w.state = WorkerLink::State::Down;
  w.have_header = false;
  w.hdr_got = 0;
  w.buf = {};
  w.body_got = 0;
  w.out_q.clear();
  w.out_bytes = 0;
  // Never silently drop accepted work: everything in flight at the dead
  // worker is answered Shed (the client may retry; the gap queue keeps
  // holding not-yet-forwarded requests for the reconnect).
  for (auto& [corr, pend] : w.outstanding) {
    bump(&Stats::shed_by_router);
    queue_client_status(pend.client, pend.client_corr, pend.dtype, shed_status);
  }
  w.outstanding.clear();
  w.next_dial_s = clock.seconds() + w.backoff_s;
  w.backoff_s = std::min(std::max(w.backoff_s, redial_min) * 2.0, redial_max);
}

void Router::Impl::dispatch_or_park(WorkerLink& w, WorkerLink::Parked&& p) {
  if (w.state == WorkerLink::State::Up && w.outstanding.size() < window && w.gap.empty()) {
    send_to_worker(w, std::move(p));
    return;
  }
  if (w.gap.size() < gap_cap) {
    w.gap.push_back(std::move(p));
    bump(&Stats::gap_queued);
    return;
  }
  // Gap queue full: per-worker backpressure's last resort.
  bump(&Stats::shed_by_router);
  queue_client_status(p.client, p.client_corr, p.dtype, net::WireStatus::Shed);
}

void Router::Impl::send_to_worker(WorkerLink& w, WorkerLink::Parked&& p) {
  const std::uint64_t corr = next_corr++;
  std::byte* body = p.frame.data() + net::kHeaderBytes;
  const auto body_len = static_cast<std::uint32_t>(p.frame.size() - net::kHeaderBytes);
  net::store_u64le(body, corr);  // model field was rewritten at decode time
  net::FrameHeader fh;
  fh.type = net::FrameType::Request;
  fh.body_len = body_len;
  fh.body_crc = net::crc32({body, body_len});
  net::encode_header(p.frame, fh);
  WorkerLink::Pending pend;
  pend.client = std::move(p.client);
  pend.client_corr = p.client_corr;
  pend.dtype = p.dtype;
  w.outstanding.emplace(corr, std::move(pend));
  const std::size_t len = p.frame.size();
  enqueue_link(w, std::move(p.frame), len);
  bump(&Stats::frames_routed);
}

void Router::Impl::flush_gap(WorkerLink& w) {
  while (w.state == WorkerLink::State::Up && !w.gap.empty() &&
         w.outstanding.size() < window) {
    WorkerLink::Parked p = std::move(w.gap.front());
    w.gap.pop_front();
    send_to_worker(w, std::move(p));
  }
}

void Router::Impl::handle_link_event(WorkerLink& w, std::uint32_t events) {
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    fail_link(w);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (w.state == WorkerLink::State::Connecting) {
      int soerr = 0;
      socklen_t len = sizeof soerr;
      ::getsockopt(w.fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        fail_link(w);
        return;
      }
      start_handshake(w);
    } else {
      flush_link(w);
    }
    if (w.fd < 0) return;
  }
  if ((events & EPOLLIN) != 0) handle_link_read(w);
}

void Router::Impl::handle_link_read(WorkerLink& w) {
  while (w.fd >= 0) {
    if (!w.have_header) {
      const auto n = ::read(w.fd, w.hdr.data() + w.hdr_got, net::kHeaderBytes - w.hdr_got);
      if (n == 0) {
        fail_link(w);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        fail_link(w);
        return;
      }
      w.hdr_got += static_cast<std::size_t>(n);
      if (w.hdr_got < net::kHeaderBytes) continue;
      if (net::decode_header(w.hdr, w.fh, max_frame) != net::DecodeError::None) {
        fail_link(w);  // a worker speaking garbage is treated as dead
        return;
      }
      w.have_header = true;
      w.buf.resize(net::kHeaderBytes + w.fh.body_len);
      w.body_got = 0;
      if (w.fh.body_len == 0) process_link_frame(w);
      continue;
    }
    const auto n = ::read(w.fd, w.buf.data() + net::kHeaderBytes + w.body_got,
                          w.fh.body_len - w.body_got);
    if (n == 0) {
      fail_link(w);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      fail_link(w);
      return;
    }
    w.body_got += static_cast<std::size_t>(n);
    if (w.body_got == w.fh.body_len) process_link_frame(w);
  }
}

void Router::Impl::process_link_frame(WorkerLink& w) {
  std::vector<std::byte> buf = std::move(w.buf);
  const net::FrameHeader fh = w.fh;
  w.have_header = false;
  w.hdr_got = 0;
  w.buf = {};
  w.body_got = 0;
  const std::span<const std::byte> body{buf.data() + net::kHeaderBytes, fh.body_len};

  if (net::verify_body(fh, body) != net::DecodeError::None) {
    fail_link(w);
    return;
  }
  if (fh.type == net::FrameType::Control) {
    net::ControlHead ch;
    if (net::decode_control(body, ch) != net::DecodeError::None) {
      bump(&Stats::protocol_errors);
      return;
    }
    if (ch.kind == net::ControlKind::HelloAck) {
      if (w.state != WorkerLink::State::Handshaking) return;
      if (ch.token != r->topo_.owned_count(w.index)) {
        // Registry mismatch (a worker serving the wrong topology): the
        // link never comes Up, the stats show the redial loop.
        bump(&Stats::protocol_errors);
        fail_link(w);
        return;
      }
      go_up(w);
    } else if (ch.kind == net::ControlKind::HeartbeatAck) {
      w.last_ack_s = clock.seconds();
      bump(&Stats::heartbeats_acked);
    }
    return;
  }
  if (fh.type != net::FrameType::Response) {
    bump(&Stats::protocol_errors);
    return;
  }
  net::ResponseHead rh;
  std::span<const std::byte> payload;
  if (net::decode_response(body, rh, payload) != net::DecodeError::None) {
    bump(&Stats::protocol_errors);
    return;
  }
  // Any traffic proves liveness (a busy worker may answer heartbeats late).
  w.last_ack_s = clock.seconds();
  const auto it = w.outstanding.find(rh.correlation);
  if (it == w.outstanding.end()) {
    // A worker-originated corr-0 error or a response for a request shed at
    // a previous link incarnation: nobody is waiting for it.
    bump(&Stats::dropped_responses);
    return;
  }
  WorkerLink::Pending pend = std::move(it->second);
  w.outstanding.erase(it);
  // Restore the client's correlation, reseal, and write the relay header
  // in place — the payload bytes the worker produced are never touched,
  // which is what makes the response bitwise-identical to a direct serve.
  net::store_u64le(buf.data() + net::kHeaderBytes, pend.client_corr);
  net::FrameHeader out;
  out.type = net::FrameType::Response;
  out.body_len = fh.body_len;
  out.body_crc = net::crc32({buf.data() + net::kHeaderBytes, fh.body_len});
  net::encode_header(buf, out);
  const std::size_t len = buf.size();
  bump(&Stats::responses_relayed);
  enqueue_client(pend.client, std::move(buf), len, /*close_after=*/false);
  flush_gap(w);
}

// ------------------------------------------------- commands / timers / stop

void Router::Impl::process_commands() {
  std::vector<Endpoint> endpoints;
  bool want_stop = false;
  {
    const runtime::MutexLock lock(cmd_mu);
    endpoints.swap(pending_endpoints);
    want_stop = stop_requested;
  }
  for (const Endpoint& e : endpoints) {
    if (e.index >= links.size()) continue;
    WorkerLink& w = *links[e.index];
    const bool changed = !w.have_endpoint || w.host != e.host || w.port != e.port;
    w.host = e.host;
    w.port = e.port;
    w.have_endpoint = true;
    if (changed && w.state != WorkerLink::State::Down) {
      fail_link(w);  // the old process is gone; shed its in-flight work
    }
    if (w.state == WorkerLink::State::Down) {
      w.backoff_s = redial_min;
      w.next_dial_s = clock.seconds();  // dial the new endpoint immediately
    }
  }
  if (want_stop && !stopping) begin_stop();
}

void Router::Impl::process_timers(double now) {
  for (auto& lp : links) {
    WorkerLink& w = *lp;
    switch (w.state) {
      case WorkerLink::State::Down:
        if (w.have_endpoint && !stopping && now >= w.next_dial_s) dial(w);
        break;
      case WorkerLink::State::Connecting:
      case WorkerLink::State::Handshaking:
        if (now - w.dial_start_s > hb_s * static_cast<double>(r->opts_.heartbeat_misses)) {
          fail_link(w);
        }
        break;
      case WorkerLink::State::Up:
        if (now - w.last_ack_s > hb_s * static_cast<double>(r->opts_.heartbeat_misses)) {
          fail_link(w);
          break;
        }
        if (now >= w.next_hb_s) {
          net::ControlHead hb;
          hb.kind = net::ControlKind::Heartbeat;
          hb.token = next_corr++;  // any unique nonce
          std::vector<std::byte> frame(net::encoded_control_bytes());
          const std::size_t len = net::encode_control(frame, hb);
          enqueue_link(w, std::move(frame), len);
          bump(&Stats::heartbeats_sent);
          w.next_hb_s = now + hb_s;
        }
        break;
    }
  }
}

double Router::Impl::next_deadline(double now) const {
  double next = now + 1.0;  // idle tick cap
  for (const auto& lp : links) {
    const WorkerLink& w = *lp;
    switch (w.state) {
      case WorkerLink::State::Down:
        if (w.have_endpoint && !stopping) next = std::min(next, w.next_dial_s);
        break;
      case WorkerLink::State::Connecting:
      case WorkerLink::State::Handshaking:
        next = std::min(
            next, w.dial_start_s + hb_s * static_cast<double>(r->opts_.heartbeat_misses));
        break;
      case WorkerLink::State::Up:
        next = std::min(next, w.next_hb_s);
        next = std::min(
            next, w.last_ack_s + hb_s * static_cast<double>(r->opts_.heartbeat_misses));
        break;
    }
  }
  if (stopping) next = std::min(next, stop_deadline_s);
  return next;
}

void Router::Impl::begin_stop() {
  stopping = true;
  stop_deadline_s = clock.seconds() + r->opts_.stop_flush_s;
  // Stop intake: no new clients, no new frames.  In-flight work at the
  // workers still completes and relays within the flush window.
  if (listen_fd >= 0) {
    ::epoll_ctl(ep, EPOLL_CTL_DEL, listen_fd, nullptr);
    ::close(listen_fd);
    listen_fd = -1;
  }
  r->bound_port_.store(0, std::memory_order_release);
  for (auto& [fd, c] : clients) {
    c->reading_paused = true;  // reads off; writes keep flushing
  }
  // Gap-queued requests were accepted but can no longer be executed before
  // shutdown: answer ShutDown, exactly like serve's StopMode::Abort.
  for (auto& lp : links) {
    while (!lp->gap.empty()) {
      WorkerLink::Parked p = std::move(lp->gap.front());
      lp->gap.pop_front();
      queue_client_status(p.client, p.client_corr, p.dtype, net::WireStatus::ShutDown);
    }
  }
  // Re-register client interests with reads off.
  for (auto& [fd, c] : clients) update_client_interest(c);
}

bool Router::Impl::stop_complete() const {
  for (const auto& lp : links) {
    if (!lp->outstanding.empty()) return false;
  }
  for (const auto& [fd, c] : clients) {
    if (!c->out_q.empty()) return false;
  }
  return true;
}

void Router::Impl::final_cleanup() {
  // Past the flush window (or drained): anything still outstanding is
  // answered ShutDown on a best-effort final flush, then all fds close.
  for (auto& lp : links) {
    fail_link(*lp, net::WireStatus::ShutDown);
  }
  std::vector<std::shared_ptr<ClientConn>> cs;
  cs.reserve(clients.size());
  for (auto& [fd, c] : clients) cs.push_back(c);
  for (auto& c : cs) {
    flush_client(c);
    if (!c->dead) close_client(c);
  }
  clients.clear();
}

void Router::io_loop() {
  Impl& im = *impl_;
  std::array<epoll_event, 64> events{};
  while (true) {
    im.process_commands();
    const double now = im.clock.seconds();
    im.process_timers(now);
    if (im.stopping && (im.stop_complete() || now >= im.stop_deadline_s)) break;
    const double wait_s = std::max(0.0, im.next_deadline(now) - now);
    const int timeout_ms = static_cast<int>(wait_s * 1e3) + 1;
    const int n = ::epoll_wait(im.ep, events.data(), static_cast<int>(events.size()),
                               timeout_ms);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == im.event_fd) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const auto got = ::read(im.event_fd, &drain, sizeof drain);
        continue;
      }
      if (fd == im.listen_fd) {
        im.accept_clients();
        continue;
      }
      if (const auto lit = im.link_by_fd.find(fd); lit != im.link_by_fd.end()) {
        im.handle_link_event(*lit->second, ev);
        continue;
      }
      const auto cit = im.clients.find(fd);
      if (cit == im.clients.end()) continue;
      const std::shared_ptr<ClientConn> c = cit->second;
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
        im.close_client(c);
        continue;
      }
      if ((ev & EPOLLOUT) != 0) im.flush_client(c);
      if (!c->dead && (ev & EPOLLIN) != 0) im.handle_client_read(c);
    }
  }
  im.final_cleanup();
}

// ----------------------------------------------------------------- lifecycle

Router::Router(Topology topo, Options opts)
    : topo_(std::move(topo)), opts_(opts), impl_(std::make_unique<Impl>(this)) {
  impl_->max_frame =
      opts_.max_frame_bytes != 0 ? opts_.max_frame_bytes : net::default_max_frame_bytes();
  impl_->window = opts_.worker_window != 0 ? opts_.worker_window : default_worker_window();
  impl_->gap_cap = opts_.gap_queue != static_cast<std::size_t>(-1) ? opts_.gap_queue
                                                                   : default_gap_queue();
  impl_->hb_s = opts_.heartbeat_s > 0.0 ? opts_.heartbeat_s : default_heartbeat_s();
  impl_->redial_min = opts_.redial_min_s > 0.0 ? opts_.redial_min_s : default_backoff_s();
  impl_->redial_max = std::max(opts_.redial_max_s, impl_->redial_min);
  for (std::size_t i = 0; i < topo_.worker_count(); ++i) {
    auto link = std::make_unique<WorkerLink>();
    link->index = i;
    link->backoff_s = impl_->redial_min;
    impl_->links.push_back(std::move(link));
  }
}

Router::~Router() { stop(); }

void Router::set_worker_endpoint(std::size_t index, std::uint16_t port,
                                 const std::string& host) {
  {
    const runtime::MutexLock lock(impl_->cmd_mu);
    impl_->pending_endpoints.push_back({index, host, port});
  }
  if (running()) impl_->wake();
}

void Router::start() {
  const runtime::MutexLock lock(lifecycle_mu_);
  if (started_) throw std::logic_error("shard::Router::start called twice");

  Impl& im = *impl_;
  const int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (lfd < 0) throw sys_error("socket");
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  const int port = opts_.port >= 0 ? opts_.port : default_shard_port();
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(lfd, opts_.backlog) != 0) {
    const auto err = sys_error("bind/listen");
    ::close(lfd);
    throw err;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&bound), &blen);
  im.listen_fd = lfd;
  im.event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  im.ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (im.event_fd < 0 || im.ep < 0) {
    const auto err = sys_error("eventfd/epoll_create1");
    ::close(lfd);
    im.listen_fd = -1;
    if (im.event_fd >= 0) ::close(im.event_fd);
    if (im.ep >= 0) ::close(im.ep);
    im.event_fd = im.ep = -1;
    throw err;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = im.event_fd;
  ::epoll_ctl(im.ep, EPOLL_CTL_ADD, im.event_fd, &ev);
  ev.data.fd = im.listen_fd;
  ::epoll_ctl(im.ep, EPOLL_CTL_ADD, im.listen_fd, &ev);

  bound_port_.store(ntohs(bound.sin_port), std::memory_order_release);
  started_ = true;
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
}

void Router::stop() {
  const runtime::MutexLock lock(lifecycle_mu_);
  if (!started_ || !running_.load(std::memory_order_acquire)) return;
  {
    const runtime::MutexLock cmd(impl_->cmd_mu);
    impl_->stop_requested = true;
  }
  impl_->wake();
  if (io_thread_.joinable()) io_thread_.join();
  running_.store(false, std::memory_order_release);
  Impl& im = *impl_;
  if (im.event_fd >= 0) ::close(im.event_fd);
  if (im.ep >= 0) ::close(im.ep);
  im.event_fd = im.ep = -1;
}

Router::Stats Router::stats() const {
  const runtime::MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace turbofno::shard
