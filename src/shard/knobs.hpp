// Environment knobs of the shard topology (router / worker / supervisor).
// Every default here is the value the corresponding Options field resolves
// to when left at its sentinel; the README "Runtime knobs" table documents
// each one (cross-checked by tools/lint/check_invariants.py).
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/env.hpp"

namespace turbofno::shard {

/// TURBOFNO_SHARD_PORT: the router's public listening port when
/// Router::Options::port is left at its -1 sentinel (default 7471 — one
/// above the single-process TURBOFNO_NET_PORT default, so both topologies
/// can run side by side).
[[nodiscard]] inline std::uint16_t default_shard_port() noexcept {
  return static_cast<std::uint16_t>(
      runtime::env_long_clamped("TURBOFNO_SHARD_PORT", 7471, 0, 65535));
}

/// TURBOFNO_SHARD_HEARTBEAT_MS: heartbeat period (milliseconds) of the
/// router's worker links and the supervisor's health probes (default 500).
[[nodiscard]] inline double default_heartbeat_s() noexcept {
  return static_cast<double>(
             runtime::env_long_clamped("TURBOFNO_SHARD_HEARTBEAT_MS", 500, 10, 60000)) *
         1e-3;
}

/// TURBOFNO_SHARD_WINDOW: per-worker in-flight request cap at the router
/// (default 64).  Requests beyond it queue in the gap buffer — per-worker
/// backpressure, so one slow shard cannot absorb unbounded router memory.
[[nodiscard]] inline std::size_t default_worker_window() noexcept {
  return static_cast<std::size_t>(
      runtime::env_long_clamped("TURBOFNO_SHARD_WINDOW", 64, 1, 65536));
}

/// TURBOFNO_SHARD_GAP_QUEUE: requests the router parks per worker while
/// that worker is down or its window is full (default 128); overflow is
/// answered Status::Shed immediately.
[[nodiscard]] inline std::size_t default_gap_queue() noexcept {
  return static_cast<std::size_t>(
      runtime::env_long_clamped("TURBOFNO_SHARD_GAP_QUEUE", 128, 0, 1 << 20));
}

/// TURBOFNO_SHARD_BACKOFF_MS: base restart/redial backoff (milliseconds,
/// default 50).  Doubles per consecutive failure, clamped at 2 s.
[[nodiscard]] inline double default_backoff_s() noexcept {
  return static_cast<double>(
             runtime::env_long_clamped("TURBOFNO_SHARD_BACKOFF_MS", 50, 1, 60000)) *
         1e-3;
}

inline constexpr double kMaxBackoffS = 2.0;

}  // namespace turbofno::shard
