// Shard worker: one process's slice of the model registry behind a
// private SocketServer.
//
// A worker is a thin composition: an InferenceServer holding only the
// models the topology assigns to this worker index (registered in global
// order, so local ids match Topology::route), fronted by the existing
// epoll SocketServer on a private port.  The wire protocol is unchanged —
// a worker is indistinguishable from a whole single-process server that
// happens to know fewer models — which is what makes the router's
// bitwise-transparency guarantee possible.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "core/engine.hpp"
#include "net/socket_server.hpp"
#include "serve/server.hpp"
#include "shard/topology.hpp"

namespace turbofno::shard {

class Worker {
 public:
  struct Options {
    /// Private listening port; 0 (the default) binds ephemeral — the
    /// worker announces the bound port (tfno_shardd prints it for the
    /// supervisor to harvest).
    int port = 0;
    std::size_t io_threads = 1;
    /// Batching policy of this shard's inference server.
    serve::InferenceServer::Options serve;
  };

  /// Builds the owned subset from the topology's configs (weights seeded
  /// per config — what fork/exec'd worker processes do).
  Worker(const Topology& topo, std::size_t index) : Worker(topo, index, Options{}) {}
  Worker(const Topology& topo, std::size_t index, Options opts);
  /// Adopts the owned subset from a prebuilt catalog engine instead
  /// (Engine::share_spec/adopt_spec): weights are shared, not re-seeded.
  /// `catalog_handles[i]` is global model i's handle in `catalog`.
  Worker(const Topology& topo, std::size_t index, const core::Engine& catalog,
         std::span<const core::ModelHandle> catalog_handles)
      : Worker(topo, index, catalog, catalog_handles, Options{}) {}
  Worker(const Topology& topo, std::size_t index, const core::Engine& catalog,
         std::span<const core::ModelHandle> catalog_handles, Options opts);
  /// stop()s if still running.
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void start();
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return front_->bound_port(); }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  /// Models this worker serves (the HelloAck token a router validates).
  [[nodiscard]] std::size_t model_count() const { return server_->model_count(); }
  [[nodiscard]] const std::shared_ptr<serve::InferenceServer>& server() const noexcept {
    return server_;
  }
  [[nodiscard]] net::SocketServer::Stats stats() const { return front_->stats(); }

 private:
  std::size_t index_;
  std::shared_ptr<serve::InferenceServer> server_;
  std::unique_ptr<net::SocketServer> front_;
};

}  // namespace turbofno::shard
