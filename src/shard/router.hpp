// Shard router: the public front door of a router/worker topology.
//
// Clients connect here speaking the ordinary wire protocol and cannot tell
// the difference from a single-process SocketServer — same framing, same
// typed errors, same close-on-integrity-error policy, bitwise-identical
// payloads.  Per accepted request frame the router:
//
//   1. looks the global model id up in the Topology's route table,
//   2. rewrites the body's correlation (to a router-assigned id unique
//      across all clients) and model field (to the worker-local id),
//      reseals the CRC, and forwards the frame to the owning worker,
//   3. on the response, restores the client's correlation, reseals, and
//      relays — out-of-order completion across clients and workers falls
//      out of the correlation remap table.
//
// Per-worker backpressure: at most `worker_window` requests are in flight
// per worker; excess (and all traffic while a worker is down) parks in a
// bounded gap queue, and overflow is answered Status::Shed by the router
// itself.  Worker links are health-checked with Heartbeat control frames
// and re-dialed with exponential backoff; a link failure sheds that
// worker's in-flight requests (never silently drops them) and the gap
// queue flushes after the Hello/HelloAck handshake of the reconnect.
//
// Threading: one epoll io thread owns every connection, link, and table;
// public methods post commands over an eventfd.  stats() is mutex-copied.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "runtime/thread_annotations.hpp"

#include "net/protocol.hpp"
#include "shard/knobs.hpp"
#include "shard/topology.hpp"

namespace turbofno::shard {

class Router {
 public:
  struct Options {
    /// Public listening port.  -1 resolves TURBOFNO_SHARD_PORT (default
    /// 7471); 0 binds an ephemeral port (read back with bound_port()).
    int port = 0;
    /// Largest accepted frame body; 0 resolves TURBOFNO_NET_MAX_FRAME.
    std::size_t max_frame_bytes = 0;
    /// Outbound bytes buffered per client before its reads are parked.
    std::size_t max_buffered_bytes = 4u << 20;
    /// In-flight requests per worker; 0 resolves TURBOFNO_SHARD_WINDOW.
    std::size_t worker_window = 0;
    /// Gap-queue bound per worker; SIZE_MAX resolves TURBOFNO_SHARD_GAP_QUEUE.
    std::size_t gap_queue = static_cast<std::size_t>(-1);
    /// Worker heartbeat period in seconds; 0 resolves
    /// TURBOFNO_SHARD_HEARTBEAT_MS.
    double heartbeat_s = 0.0;
    /// Unanswered periods before a link is declared dead.
    std::size_t heartbeat_misses = 3;
    /// Redial backoff bounds (doubles from min to max per failure).
    double redial_min_s = 0.0;  // 0 resolves TURBOFNO_SHARD_BACKOFF_MS
    double redial_max_s = kMaxBackoffS;
    int backlog = 64;
    /// stop() flushes pending client responses at most this long.
    double stop_flush_s = 5.0;
  };

  struct Stats {
    std::uint64_t clients_accepted = 0;
    std::uint64_t clients_closed = 0;
    std::uint64_t frames_routed = 0;      // requests forwarded to a worker
    std::uint64_t responses_relayed = 0;  // worker responses returned to clients
    std::uint64_t gap_queued = 0;         // requests parked for a down/full worker
    std::uint64_t shed_by_router = 0;     // Shed answered by the router itself
    std::uint64_t worker_connects = 0;    // links reaching Up (handshake done)
    std::uint64_t worker_disconnects = 0;  // link failures (EOF/error/hb timeout)
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t heartbeats_acked = 0;
    std::uint64_t protocol_errors = 0;    // typed errors answered to clients
    std::uint64_t dropped_responses = 0;  // worker responses with no live client
  };

  explicit Router(Topology topo) : Router(std::move(topo), Options{}) {}
  Router(Topology topo, Options opts);
  /// stop()s if still running.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Points worker `index`'s link at host:port.  Callable before start()
  /// and at any time after — the supervisor rewires restarted workers
  /// (fresh ephemeral port) through this.  Thread-safe.
  void set_worker_endpoint(std::size_t index, std::uint16_t port,
                           const std::string& host = "127.0.0.1");

  void start();
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint16_t port() const noexcept {
    return bound_port_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint16_t bound_port() const noexcept { return port(); }
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

 private:
  struct ClientConn;
  struct WorkerLink;
  struct Impl;

  void io_loop();

  Topology topo_;
  Options opts_;
  std::unique_ptr<Impl> impl_;

  runtime::Mutex lifecycle_mu_;
  bool started_ TFNO_GUARDED_BY(lifecycle_mu_) = false;
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> bound_port_{0};
  std::thread io_thread_;

  mutable runtime::Mutex stats_mu_;
  Stats stats_ TFNO_GUARDED_BY(stats_mu_);
};

}  // namespace turbofno::shard
