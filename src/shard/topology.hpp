// Shard topology: which worker owns which model of the global registry.
//
// The global model-id space is what clients address (a request frame's
// `model` field); each worker process registers only its owned subset, in
// global-id order, so a model's *local* id at its worker is its rank among
// that worker's models.  The router translates global -> (worker, local)
// on the way in and back on the way out; both sides derive the mapping
// from the same Topology, so no id table ever crosses the wire.
//
// A topology round-trips through a compact spec string (what tfno_shardd
// worker processes receive on their command line):
//
//   1d:in,hidden,out,n,modes,layers@worker
//   2d:in,hidden,out,nx,ny,modes_x,modes_y,layers@worker
//
// joined by ';' — e.g. "1d:2,8,2,64,16,2@0;2d:1,8,1,16,16,4,4,2@1".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace turbofno::shard {

/// One globally-addressable model and the worker that serves it.
struct ModelEntry {
  bool is_2d = false;
  core::Fno1dConfig cfg1;  // valid when !is_2d
  core::Fno2dConfig cfg2;  // valid when is_2d
  std::size_t worker = 0;
};

/// Where a global model id lives.
struct Route {
  std::size_t worker = 0;
  std::uint32_t local = 0;  // the model's id at that worker
};

class Topology {
 public:
  /// Appends a model owned by `worker`; returns its global id.
  std::size_t add(const core::Fno1dConfig& cfg, std::size_t worker);
  std::size_t add(const core::Fno2dConfig& cfg, std::size_t worker);

  [[nodiscard]] const std::vector<ModelEntry>& models() const noexcept { return models_; }
  [[nodiscard]] std::size_t model_count() const noexcept { return models_.size(); }

  /// Highest owner index + 1 (0 for an empty topology).
  [[nodiscard]] std::size_t worker_count() const noexcept;
  /// Models owned by `worker`.
  [[nodiscard]] std::size_t owned_count(std::size_t worker) const noexcept;
  /// Global ids owned by `worker`, in global order (== local-id order).
  [[nodiscard]] std::vector<std::size_t> owned(std::size_t worker) const;

  /// Maps a global id to its worker and worker-local id.  Throws
  /// std::out_of_range for an unknown id.
  [[nodiscard]] Route route(std::size_t global) const;

  /// Serializes to the spec-string grammar above.
  [[nodiscard]] std::string spec() const;
  /// Parses a spec string.  Throws std::invalid_argument with a message
  /// naming the offending entry.
  static Topology parse(const std::string& spec);

 private:
  std::vector<ModelEntry> models_;
};

}  // namespace turbofno::shard
