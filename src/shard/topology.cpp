#include "shard/topology.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace turbofno::shard {

std::size_t Topology::add(const core::Fno1dConfig& cfg, std::size_t worker) {
  ModelEntry e;
  e.is_2d = false;
  e.cfg1 = cfg;
  e.worker = worker;
  models_.push_back(e);
  return models_.size() - 1;
}

std::size_t Topology::add(const core::Fno2dConfig& cfg, std::size_t worker) {
  ModelEntry e;
  e.is_2d = true;
  e.cfg2 = cfg;
  e.worker = worker;
  models_.push_back(e);
  return models_.size() - 1;
}

std::size_t Topology::worker_count() const noexcept {
  std::size_t n = 0;
  for (const auto& m : models_) n = std::max(n, m.worker + 1);
  return n;
}

std::size_t Topology::owned_count(std::size_t worker) const noexcept {
  std::size_t n = 0;
  for (const auto& m : models_) {
    if (m.worker == worker) ++n;
  }
  return n;
}

std::vector<std::size_t> Topology::owned(std::size_t worker) const {
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (models_[i].worker == worker) ids.push_back(i);
  }
  return ids;
}

Route Topology::route(std::size_t global) const {
  if (global >= models_.size()) {
    throw std::out_of_range("shard::Topology::route: unknown model id");
  }
  Route r;
  r.worker = models_[global].worker;
  // Local id = rank among the owner's models in global order; the worker
  // registers its subset in the same order, so the two derivations agree.
  std::uint32_t local = 0;
  for (std::size_t i = 0; i < global; ++i) {
    if (models_[i].worker == r.worker) ++local;
  }
  r.local = local;
  return r;
}

std::string Topology::spec() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (i != 0) out << ';';
    const ModelEntry& m = models_[i];
    if (m.is_2d) {
      out << "2d:" << m.cfg2.in_channels << ',' << m.cfg2.hidden << ',' << m.cfg2.out_channels
          << ',' << m.cfg2.nx << ',' << m.cfg2.ny << ',' << m.cfg2.modes_x << ','
          << m.cfg2.modes_y << ',' << m.cfg2.layers;
    } else {
      out << "1d:" << m.cfg1.in_channels << ',' << m.cfg1.hidden << ',' << m.cfg1.out_channels
          << ',' << m.cfg1.n << ',' << m.cfg1.modes << ',' << m.cfg1.layers;
    }
    out << '@' << m.worker;
  }
  return out.str();
}

namespace {

[[noreturn]] void bad_entry(const std::string& entry, const char* why) {
  throw std::invalid_argument("shard::Topology::parse: " + std::string(why) + " in \"" + entry +
                              "\"");
}

/// Parses the comma-separated field list + "@worker" suffix of one entry.
std::vector<std::size_t> parse_fields(const std::string& entry, const std::string& rest,
                                      std::size_t expect, std::size_t& worker) {
  const auto at = rest.rfind('@');
  if (at == std::string::npos) bad_entry(entry, "missing @worker suffix");
  std::vector<std::size_t> fields;
  std::size_t pos = 0;
  const std::string list = rest.substr(0, at);
  while (pos <= list.size()) {
    const auto comma = list.find(',', pos);
    const std::string tok =
        list.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    std::size_t used = 0;
    std::size_t v = 0;
    try {
      v = std::stoul(tok, &used);
    } catch (const std::exception&) {
      bad_entry(entry, "non-numeric field");
    }
    if (used != tok.size() || tok.empty()) bad_entry(entry, "non-numeric field");
    fields.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (fields.size() != expect) bad_entry(entry, "wrong field count");
  const std::string wtok = rest.substr(at + 1);
  std::size_t used = 0;
  try {
    worker = std::stoul(wtok, &used);
  } catch (const std::exception&) {
    bad_entry(entry, "bad worker index");
  }
  if (used != wtok.size() || wtok.empty()) bad_entry(entry, "bad worker index");
  return fields;
}

}  // namespace

Topology Topology::parse(const std::string& spec) {
  Topology topo;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto semi = spec.find(';', pos);
    const std::string entry =
        spec.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() : semi + 1;
    if (entry.empty()) bad_entry(entry, "empty entry");
    std::size_t worker = 0;
    if (entry.rfind("1d:", 0) == 0) {
      const auto f = parse_fields(entry, entry.substr(3), 6, worker);
      core::Fno1dConfig cfg;
      cfg.in_channels = f[0];
      cfg.hidden = f[1];
      cfg.out_channels = f[2];
      cfg.n = f[3];
      cfg.modes = f[4];
      cfg.layers = f[5];
      topo.add(cfg, worker);
    } else if (entry.rfind("2d:", 0) == 0) {
      const auto f = parse_fields(entry, entry.substr(3), 8, worker);
      core::Fno2dConfig cfg;
      cfg.in_channels = f[0];
      cfg.hidden = f[1];
      cfg.out_channels = f[2];
      cfg.nx = f[3];
      cfg.ny = f[4];
      cfg.modes_x = f[5];
      cfg.modes_y = f[6];
      cfg.layers = f[7];
      topo.add(cfg, worker);
    } else {
      bad_entry(entry, "unknown entry kind (want 1d:/2d:)");
    }
  }
  return topo;
}

}  // namespace turbofno::shard
