#include "shard/worker.hpp"

#include <stdexcept>

namespace turbofno::shard {

namespace {

net::SocketServer::Options front_options(const Worker::Options& opts) {
  net::SocketServer::Options so;
  so.port = opts.port;
  so.io_threads = opts.io_threads;
  return so;
}

}  // namespace

Worker::Worker(const Topology& topo, std::size_t index, Options opts)
    : index_(index), server_(std::make_shared<serve::InferenceServer>(opts.serve)) {
  // Register the owned subset in global order: local id i is the i-th
  // owned model, exactly the mapping Topology::route computes.
  for (const std::size_t g : topo.owned(index)) {
    const ModelEntry& m = topo.models()[g];
    if (m.is_2d) {
      server_->load_model(m.cfg2);
    } else {
      server_->load_model(m.cfg1);
    }
  }
  front_ = std::make_unique<net::SocketServer>(front_options(opts), server_);
}

Worker::Worker(const Topology& topo, std::size_t index, const core::Engine& catalog,
               std::span<const core::ModelHandle> catalog_handles, Options opts)
    : index_(index), server_(std::make_shared<serve::InferenceServer>(opts.serve)) {
  if (catalog_handles.size() != topo.model_count()) {
    throw std::invalid_argument("shard::Worker: catalog_handles/topology size mismatch");
  }
  for (const std::size_t g : topo.owned(index)) {
    server_->adopt_model(catalog, catalog_handles[g]);
  }
  front_ = std::make_unique<net::SocketServer>(front_options(opts), server_);
}

Worker::~Worker() { stop(); }

void Worker::start() { front_->start(); }

void Worker::stop() { front_->stop(); }

}  // namespace turbofno::shard
