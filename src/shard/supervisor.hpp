// Shard supervisor: spawns and babysits the worker fleet.
//
// Per worker index the supervisor fork/execs
//
//   <shardd> --worker --index I --topology <spec>
//
// and harvests the `TFNO_SHARDD_PORT=<port>` line the worker prints once
// its ephemeral private port is bound; the port is handed to the
// `on_endpoint` callback (normally Router::set_worker_endpoint), so a
// restarted worker — fresh port and all — is rewired automatically.
//
// Liveness is monitored two ways: process exit (waitpid) and protocol
// heartbeats (a Heartbeat control frame over a short-timeout net::Client
// dial each period; `heartbeat_misses` consecutive failures get the worker
// SIGKILLed and respawned).  Restarts back off exponentially from
// `backoff_min_s` to `backoff_max_s`, resetting once a worker answers a
// heartbeat again — a crash-looping shard degrades to periodic retries
// instead of a fork storm, and the router sheds its traffic meanwhile.
//
// stop() joins the monitor thread BEFORE terminating the fleet, so a stop
// can never race a restart.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/subprocess.hpp"
#include "runtime/thread_annotations.hpp"

#include "shard/knobs.hpp"
#include "shard/topology.hpp"

namespace turbofno::shard {

class Supervisor {
 public:
  struct Options {
    /// Path of the worker executable (normally tfno_shardd itself).
    std::string shardd_path;
    /// Heartbeat probe period in seconds; 0 resolves
    /// TURBOFNO_SHARD_HEARTBEAT_MS.
    double heartbeat_s = 0.0;
    /// Consecutive missed probes before a worker is killed + respawned.
    std::size_t heartbeat_misses = 3;
    /// Restart backoff bounds (doubles per consecutive failure).
    double backoff_min_s = 0.0;  // 0 resolves TURBOFNO_SHARD_BACKOFF_MS
    double backoff_max_s = kMaxBackoffS;
    /// Monitor thread poll period.
    double poll_s = 0.015;
    /// Extra argv appended to every worker spawn (test hook).
    std::vector<std::string> extra_args;
  };

  struct Stats {
    std::uint64_t spawns = 0;          // includes the initial fleet
    std::uint64_t restarts = 0;        // spawns after a death/kill
    std::uint64_t heartbeat_kills = 0;  // workers killed for missed probes
    std::uint64_t endpoints_seen = 0;  // TFNO_SHARDD_PORT lines harvested
  };

  /// `on_endpoint(index, port)` fires (from the monitor thread) every time
  /// a worker announces its private port — initial spawn and restarts.
  Supervisor(Topology topo, Options opts,
             std::function<void(std::size_t, std::uint16_t)> on_endpoint);
  /// stop()s if still running.
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns the fleet and starts the monitor thread.
  void start();
  /// Joins the monitor, then SIGTERM/waits (SIGKILL after grace) the fleet.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] Stats stats() const;
  /// Worker `index`'s current pid, or -1 while it is down (test hook).
  [[nodiscard]] pid_t worker_pid(std::size_t index) const;
  /// SIGKILLs worker `index` (fault-injection test hook); the monitor
  /// notices the death and restarts it with backoff.
  void kill_worker(std::size_t index);

 private:
  struct WorkerProc {
    runtime::Subprocess proc;
    std::string pipe_buf;       // unparsed stdout tail
    bool announced = false;     // TFNO_SHARDD_PORT seen for this incarnation
    std::uint16_t port = 0;
    bool ever_spawned = false;
    double respawn_at_s = 0.0;  // monitor-clock deadline while down
    double backoff_s = 0.0;
    std::size_t missed_beats = 0;
    double next_probe_s = 0.0;
  };

  void monitor_loop();
  void spawn_worker_locked(std::size_t index, double now) TFNO_REQUIRES(mu_);
  void drain_pipe_locked(std::size_t index) TFNO_REQUIRES(mu_);

  Topology topo_;
  Options opts_;
  std::function<void(std::size_t, std::uint16_t)> on_endpoint_;
  double hb_s_ = 0.0;

  mutable runtime::Mutex mu_;
  std::vector<std::unique_ptr<WorkerProc>> workers_ TFNO_GUARDED_BY(mu_);
  Stats stats_ TFNO_GUARDED_BY(mu_);
  bool started_ TFNO_GUARDED_BY(mu_) = false;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread monitor_;
};

}  // namespace turbofno::shard
