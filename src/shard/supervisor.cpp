#include "shard/supervisor.hpp"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "net/client.hpp"
#include "runtime/timer.hpp"

namespace turbofno::shard {

namespace {

constexpr char kPortPrefix[] = "TFNO_SHARDD_PORT=";

/// True (and `port` set) when `line` is a worker port announcement.
bool parse_port_line(const std::string& line, std::uint16_t& port) {
  const std::size_t plen = sizeof kPortPrefix - 1;
  if (line.compare(0, plen, kPortPrefix) != 0) return false;
  try {
    std::size_t used = 0;
    const unsigned long v = std::stoul(line.substr(plen), &used);
    if (used == 0 || v > 65535) return false;
    port = static_cast<std::uint16_t>(v);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// One connect+heartbeat probe against a worker's private port.  Short
/// timeouts: a probe is a liveness check, not a request.
bool probe_worker(std::uint16_t port) noexcept {
  try {
    net::Client c;
    net::Client::ConnectOptions co;
    co.timeout_s = 0.25;
    co.attempts = 1;
    co.io_timeout_s = 0.5;
    c.connect(port, "127.0.0.1", co);
    return c.ping(0.5);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

Supervisor::Supervisor(Topology topo, Options opts,
                       std::function<void(std::size_t, std::uint16_t)> on_endpoint)
    : topo_(std::move(topo)), opts_(std::move(opts)), on_endpoint_(std::move(on_endpoint)) {
  if (opts_.shardd_path.empty()) {
    throw std::invalid_argument("shard::Supervisor: shardd_path is required");
  }
  hb_s_ = opts_.heartbeat_s > 0.0 ? opts_.heartbeat_s : default_heartbeat_s();
  if (opts_.backoff_min_s <= 0.0) opts_.backoff_min_s = default_backoff_s();
  opts_.backoff_max_s = std::max(opts_.backoff_max_s, opts_.backoff_min_s);
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::spawn_worker_locked(std::size_t index, double now) {
  WorkerProc& w = *workers_[index];
  std::vector<std::string> argv = {opts_.shardd_path,  "--worker",
                                   "--index",          std::to_string(index),
                                   "--topology",       topo_.spec()};
  argv.insert(argv.end(), opts_.extra_args.begin(), opts_.extra_args.end());
  w.proc = runtime::Subprocess::spawn(argv);
  w.pipe_buf.clear();
  w.announced = false;
  w.port = 0;
  w.missed_beats = 0;
  w.respawn_at_s = 0.0;
  ++stats_.spawns;
  if (w.ever_spawned) ++stats_.restarts;
  w.ever_spawned = true;
  (void)now;
}

void Supervisor::drain_pipe_locked(std::size_t index) {
  WorkerProc& w = *workers_[index];
  if (!w.proc.valid()) return;
  w.proc.read_stdout(w.pipe_buf);
  std::size_t nl;
  while ((nl = w.pipe_buf.find('\n')) != std::string::npos) {
    const std::string line = w.pipe_buf.substr(0, nl);
    w.pipe_buf.erase(0, nl + 1);
    std::uint16_t port = 0;
    if (parse_port_line(line, port)) {
      w.announced = true;
      w.port = port;
      ++stats_.endpoints_seen;
      if (on_endpoint_) on_endpoint_(index, port);
    }
  }
}

void Supervisor::monitor_loop() {
  runtime::Timer clock;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    {
      const runtime::MutexLock lock(mu_);
      const double now = clock.seconds();
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        WorkerProc& w = *workers_[i];
        drain_pipe_locked(i);
        if (w.proc.valid()) {
          if (w.proc.poll_exit()) {
            // Harvest any final output (a dying worker may have announced
            // just before the crash), then schedule the restart.
            drain_pipe_locked(i);
            w.proc = runtime::Subprocess{};
            w.announced = false;
            w.backoff_s = w.backoff_s <= 0.0
                              ? opts_.backoff_min_s
                              : std::min(w.backoff_s * 2.0, opts_.backoff_max_s);
            w.respawn_at_s = now + w.backoff_s;
            continue;
          }
          if (w.announced && now >= w.next_probe_s) {
            w.next_probe_s = now + hb_s_;
            if (probe_worker(w.port)) {
              w.missed_beats = 0;
              w.backoff_s = 0.0;  // healthy again: future restarts start small
            } else if (++w.missed_beats >= opts_.heartbeat_misses) {
              // A wedged worker (alive but unresponsive) is as dead as a
              // crashed one: kill it and let the exit path respawn.
              w.proc.signal(SIGKILL);
              ++stats_.heartbeat_kills;
              w.missed_beats = 0;
            }
          }
        } else if (w.ever_spawned && now >= w.respawn_at_s) {
          spawn_worker_locked(i, now);
          w.next_probe_s = now + hb_s_;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(opts_.poll_s));
  }
}

void Supervisor::start() {
  {
    const runtime::MutexLock lock(mu_);
    if (started_) throw std::logic_error("shard::Supervisor::start called twice");
    started_ = true;
    workers_.clear();
    for (std::size_t i = 0; i < topo_.worker_count(); ++i) {
      workers_.push_back(std::make_unique<WorkerProc>());
    }
    runtime::Timer clock;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      spawn_worker_locked(i, clock.seconds());
      workers_[i]->next_probe_s = hb_s_;  // first probe after one period
    }
  }
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Supervisor::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  // Monitor first: once it is joined, nothing can restart what we kill.
  stop_requested_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
  {
    const runtime::MutexLock lock(mu_);
    for (auto& wp : workers_) {
      if (wp->proc.valid()) wp->proc.terminate(/*grace_s=*/2.0);
    }
  }
  running_.store(false, std::memory_order_release);
}

Supervisor::Stats Supervisor::stats() const {
  const runtime::MutexLock lock(mu_);
  return stats_;
}

pid_t Supervisor::worker_pid(std::size_t index) const {
  const runtime::MutexLock lock(mu_);
  if (index >= workers_.size() || !workers_[index]->proc.valid()) return -1;
  return workers_[index]->proc.pid();
}

void Supervisor::kill_worker(std::size_t index) {
  const runtime::MutexLock lock(mu_);
  if (index < workers_.size()) workers_[index]->proc.signal(SIGKILL);
}

}  // namespace turbofno::shard
