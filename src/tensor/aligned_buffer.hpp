// Cache-line/SIMD aligned owning buffer.
//
// All kernel operands in TurboFNO live in 64-byte-aligned storage so the
// compiler can emit aligned vector loads and tiles never straddle cache
// lines unnecessarily.  RAII per the Core Guidelines: no raw new/delete
// escapes this header.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <utility>

namespace turbofno {

inline constexpr std::size_t kBufferAlignment = 64;

template <class T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer holds POD kernel operands only");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { resize(n); }

  AlignedBuffer(const AlignedBuffer& other) { *this = other; }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      resize(other.size_);
      if (size_ != 0) std::memcpy(data_.get(), other.data_.get(), size_ * sizeof(T));
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;

  /// Reallocates (contents are NOT preserved) and zero-fills.
  void resize(std::size_t n) {
    if (n == size_) {
      zero();
      return;
    }
    if (n == 0) {
      data_.reset();
      size_ = 0;
      return;
    }
    const std::size_t bytes = round_up(n * sizeof(T));
    void* p = std::aligned_alloc(kBufferAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    data_.reset(static_cast<T*>(p));
    size_ = n;
    zero();
  }

  void zero() noexcept {
    if (size_ != 0) std::memset(data_.get(), 0, size_ * sizeof(T));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }

  T& operator[](std::size_t i) noexcept { return data_.get()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_.get()[i]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data(), size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept { return {data(), size_}; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

 private:
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + kBufferAlignment - 1) / kBufferAlignment * kBufferAlignment;
  }

  struct FreeDeleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<T, FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace turbofno
