// Single-precision complex value type used throughout TurboFNO.
//
// We deliberately do not use std::complex<float> in the hot kernels: its
// operator* performs NaN-correct Annex-G multiplication unless -ffast-math is
// on, and its aliasing guarantees inhibit vectorization of interleaved
// buffers.  `c32` is a trivially-copyable POD with fused-multiply-add helpers
// that GCC auto-vectorizes cleanly at -O3.
#pragma once

#include <cmath>
#include <cstddef>
#include <iosfwd>
#include <numbers>

namespace turbofno {

struct c32 {
  // No default member initializers: c32 must stay a trivial type so buffers
  // of it can be memset/memcpy'd.  c32{} still value-initializes to zero.
  float re;
  float im;

  c32() = default;
  constexpr c32(float r, float i) : re(r), im(i) {}
  explicit constexpr c32(float r) : re(r), im(0.0f) {}

  friend constexpr c32 operator+(c32 a, c32 b) { return {a.re + b.re, a.im + b.im}; }
  friend constexpr c32 operator-(c32 a, c32 b) { return {a.re - b.re, a.im - b.im}; }
  friend constexpr c32 operator*(c32 a, c32 b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  friend constexpr c32 operator*(float s, c32 a) { return {s * a.re, s * a.im}; }
  friend constexpr c32 operator*(c32 a, float s) { return {s * a.re, s * a.im}; }
  friend constexpr c32 operator-(c32 a) { return {-a.re, -a.im}; }

  constexpr c32& operator+=(c32 b) {
    re += b.re;
    im += b.im;
    return *this;
  }
  constexpr c32& operator-=(c32 b) {
    re -= b.re;
    im -= b.im;
    return *this;
  }
  constexpr c32& operator*=(c32 b) {
    *this = *this * b;
    return *this;
  }
  constexpr c32& operator*=(float s) {
    re *= s;
    im *= s;
    return *this;
  }

  friend constexpr bool operator==(c32 a, c32 b) { return a.re == b.re && a.im == b.im; }

  /// a += b * c without an intermediate temporary; the canonical inner-loop op.
  friend constexpr void cmadd(c32& acc, c32 b, c32 c) {
    acc.re += b.re * c.re - b.im * c.im;
    acc.im += b.re * c.im + b.im * c.re;
  }

  friend constexpr c32 conj(c32 a) { return {a.re, -a.im}; }
  friend float abs(c32 a) { return std::hypot(a.re, a.im); }
  friend constexpr float norm2(c32 a) { return a.re * a.re + a.im * a.im; }

  /// Multiplication by -i (quarter-turn), used by pruned radix-4 butterflies.
  friend constexpr c32 mul_neg_i(c32 a) { return {a.im, -a.re}; }
  friend constexpr c32 mul_pos_i(c32 a) { return {-a.im, a.re}; }
};

static_assert(sizeof(c32) == 8, "c32 must be two packed floats");

/// exp(-2*pi*i * k / n) — the DFT twiddle factor (forward sign convention).
inline c32 twiddle(std::size_t k, std::size_t n) {
  const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
  return {static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang))};
}

}  // namespace turbofno
