// Cache-blocked complex matrix transpose on the SIMD layer.
//
// The 2D FFT's X stage runs one stride-ny transform per column when executed
// in place; the transpose-based schedule (fft/fft2d.cpp) instead swaps the
// field into row-major order, runs contiguous transforms, and swaps back.
// That trade only pays off if the transpose itself moves whole cache lines,
// so the inner loop is a 4x4 tile held entirely in registers
// (B::ptranspose4, 8 shuffles on AVX2) and tiles are walked in TB x TB
// super-blocks so both the gather side and the scatter side stay resident
// in L1/L2.  Backends without packed 4-wide vectors (planes != 4) fall back
// to a scalar 4x4 tile, which keeps the blocked walk and its locality.
//
// The fused-middle schedule (fft2d_x_stage_to_tiles/_from_tiles) halves the
// transpose count: only the side that faces the x-major global tensors (the
// gather from u on forward, the scatter into v on inverse) remains; the
// other side is replaced by y-major staging tiles consumed in place.
#pragma once

#include <cstddef>

#include "tensor/complex.hpp"
#include "tensor/simd.hpp"

namespace turbofno::simd {

/// Transposes one 4x4 c32 tile: dst[j * dst_stride + i] = src[i * src_stride + j].
/// Strides are in c32 units; src and dst must not overlap.
template <class B = Active>
inline void transpose4x4(const c32* src, std::size_t src_stride, c32* dst,
                         std::size_t dst_stride) noexcept {
  if constexpr (B::planes == 4) {
    auto r0 = B::pload(src);
    auto r1 = B::pload(src + src_stride);
    auto r2 = B::pload(src + 2 * src_stride);
    auto r3 = B::pload(src + 3 * src_stride);
    B::ptranspose4(r0, r1, r2, r3);
    B::pstore(dst, r0);
    B::pstore(dst + dst_stride, r1);
    B::pstore(dst + 2 * dst_stride, r2);
    B::pstore(dst + 3 * dst_stride, r3);
  } else {
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        dst[j * dst_stride + i] = src[i * src_stride + j];
      }
    }
  }
}

/// Blocked out-of-place transpose of a [rows, cols] c32 matrix:
///   dst[j * dst_stride + i] = src[i * src_stride + j]
/// for i < rows, j < cols.  Any rows/cols (edges run scalar); src and dst
/// must not overlap.
template <class B = Active>
void transpose(const c32* src, std::size_t src_stride, c32* dst, std::size_t dst_stride,
               std::size_t rows, std::size_t cols) noexcept {
  // 32x32 c32 super-block = 8 KiB read + 8 KiB written, comfortably L1-sized
  // alongside the FFT work buffers.
  constexpr std::size_t kBlock = 32;
  for (std::size_t r0 = 0; r0 < rows; r0 += kBlock) {
    const std::size_t r_lim = r0 + kBlock < rows ? r0 + kBlock : rows;
    for (std::size_t c0 = 0; c0 < cols; c0 += kBlock) {
      const std::size_t c_lim = c0 + kBlock < cols ? c0 + kBlock : cols;
      std::size_t i = r0;
      for (; i + 4 <= r_lim; i += 4) {
        std::size_t j = c0;
        for (; j + 4 <= c_lim; j += 4) {
          transpose4x4<B>(src + i * src_stride + j, src_stride, dst + j * dst_stride + i,
                          dst_stride);
        }
        for (; j < c_lim; ++j) {
          for (std::size_t di = 0; di < 4; ++di) {
            dst[j * dst_stride + i + di] = src[(i + di) * src_stride + j];
          }
        }
      }
      for (; i < r_lim; ++i) {
        for (std::size_t j = c0; j < c_lim; ++j) {
          dst[j * dst_stride + i] = src[i * src_stride + j];
        }
      }
    }
  }
}

}  // namespace turbofno::simd
