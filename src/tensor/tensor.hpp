// Dense row-major tensor with shape/stride views.
//
// TurboFNO tensors follow the FNO layout convention of the paper:
//   1D spectral layer input:  [Batch, HiddenDim, DimY]
//   2D spectral layer input:  [Batch, HiddenDim, DimX, DimY]
// The innermost (last) axis is contiguous.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>

#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"

namespace turbofno {

inline constexpr std::size_t kMaxRank = 4;

/// Value type for tensor shapes; a fixed-capacity rank<=4 dimension list.
class Shape {
 public:
  constexpr Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) {
    if (dims.size() > kMaxRank) throw std::invalid_argument("Shape: rank > 4");
    rank_ = dims.size();
    std::size_t i = 0;
    for (auto d : dims) dims_[i++] = d;
  }

  [[nodiscard]] constexpr std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] constexpr std::size_t operator[](std::size_t i) const noexcept { return dims_[i]; }
  [[nodiscard]] constexpr std::size_t numel() const noexcept {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return rank_ == 0 ? 0 : n;
  }
  friend constexpr bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i)
      if (a.dims_[i] != b.dims_[i]) return false;
    return true;
  }

  [[nodiscard]] std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      s += std::to_string(dims_[i]);
      if (i + 1 < rank_) s += ", ";
    }
    return s + "]";
  }

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

template <class T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(shape), buf_(shape.numel()) {}

  void reshape(Shape shape) {
    if (shape.numel() != buf_.size()) {
      buf_.resize(shape.numel());
    }
    shape_ = shape;
  }

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.rank(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const noexcept { return shape_[i]; }
  [[nodiscard]] std::size_t numel() const noexcept { return buf_.size(); }

  [[nodiscard]] T* data() noexcept { return buf_.data(); }
  [[nodiscard]] const T* data() const noexcept { return buf_.data(); }
  [[nodiscard]] std::span<T> span() noexcept { return buf_.span(); }
  [[nodiscard]] std::span<const T> span() const noexcept { return buf_.span(); }

  void zero() noexcept { buf_.zero(); }

  // Rank-checked indexed access (debug/test paths; kernels use raw spans).
  T& at(std::size_t i0) { return buf_[check(i0, 1)]; }
  T& at(std::size_t i0, std::size_t i1) { return buf_[check(i0 * shape_[1] + i1, 2)]; }
  T& at(std::size_t i0, std::size_t i1, std::size_t i2) {
    return buf_[check((i0 * shape_[1] + i1) * shape_[2] + i2, 3)];
  }
  T& at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) {
    return buf_[check(((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3, 4)];
  }
  const T& at(std::size_t i0) const { return const_cast<Tensor*>(this)->at(i0); }
  const T& at(std::size_t i0, std::size_t i1) const { return const_cast<Tensor*>(this)->at(i0, i1); }
  const T& at(std::size_t i0, std::size_t i1, std::size_t i2) const {
    return const_cast<Tensor*>(this)->at(i0, i1, i2);
  }
  const T& at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const {
    return const_cast<Tensor*>(this)->at(i0, i1, i2, i3);
  }

  /// Contiguous slice of the leading axis: rows [i0, i0+1) flattened.
  [[nodiscard]] std::span<T> row(std::size_t i0) {
    const std::size_t stride = numel() / shape_[0];
    return {data() + i0 * stride, stride};
  }
  [[nodiscard]] std::span<const T> row(std::size_t i0) const {
    const std::size_t stride = numel() / shape_[0];
    return {data() + i0 * stride, stride};
  }

 private:
  std::size_t check(std::size_t flat, std::size_t expect_rank) const {
    if (shape_.rank() != expect_rank) throw std::out_of_range("Tensor: rank mismatch in at()");
    if (flat >= buf_.size()) throw std::out_of_range("Tensor: index out of range");
    return flat;
  }

  Shape shape_{};
  AlignedBuffer<T> buf_{};
};

using CTensor = Tensor<c32>;
using FTensor = Tensor<float>;

}  // namespace turbofno
