// Explicit SIMD complex-arithmetic layer.
//
// The hot kernels (Stockham/DIF butterflies, CGEMM micro-kernel, fused
// rank updates) operate on complex lanes through one `cvec` interface with
// two backends:
//
//   ScalarBackend  one complex per "vector"; compiles to exactly the scalar
//                  code the seed shipped.  Always available.
//   Avx2Backend    8 complex lanes held split-complex (one __m256 of reals,
//                  one of imaginaries) so a complex multiply is 2 mul + 2 FMA
//                  with no shuffles.  Compiled only when the TU is built with
//                  -mavx2 -mfma (CMake option TURBOFNO_SIMD=avx2/auto).
//
// Data in memory stays interleaved (AoS, `c32`) at API boundaries;
// `load`/`store` de/re-interleave in registers.  The packed GEMM tiles and
// fused accumulators instead keep split (SoA) float planes and use the
// `load_split` family, which is pure vertical arithmetic.
//
// Backend selection is compile-time: `simd::Active` is the backend every
// kernel TU uses; `simd::active_backend()` reports it at runtime so benches
// and tests can prove which code ran.  Defining TURBOFNO_SIMD_FORCE_SCALAR
// (CMake -DTURBOFNO_SIMD=scalar) pins `Active` to the scalar backend even on
// AVX2 hardware.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/complex.hpp"

#if !defined(TURBOFNO_SIMD_FORCE_SCALAR) && defined(__AVX2__) && defined(__FMA__)
#define TURBOFNO_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#else
#define TURBOFNO_SIMD_HAVE_AVX2 0
#endif

namespace turbofno::simd {

// ------------------------------------------------------------------- scalar

struct ScalarBackend {
  static constexpr std::size_t lanes = 1;
  static constexpr const char* name() noexcept { return "scalar"; }

  struct cvec {
    float re;
    float im;
  };

  static cvec zero() noexcept { return {0.0f, 0.0f}; }
  static cvec broadcast(c32 v) noexcept { return {v.re, v.im}; }
  static cvec broadcast_split(float re, float im) noexcept { return {re, im}; }

  /// Interleaved (AoS) loads/stores of `lanes` consecutive c32.
  static cvec load(const c32* p) noexcept { return {p->re, p->im}; }
  static void store(c32* p, cvec v) noexcept {
    p->re = v.re;
    p->im = v.im;
  }
  /// Masked tail ops: only the first `count` (< lanes is allowed, 0 is a
  /// no-op) complex elements are touched; untouched lanes read as zero.
  static cvec load_partial(const c32* p, std::size_t count) noexcept {
    return count != 0 ? load(p) : zero();
  }
  static void store_partial(c32* p, cvec v, std::size_t count) noexcept {
    if (count != 0) store(p, v);
  }

  /// Split (SoA) loads/stores from separate re/im planes.
  static cvec load_split(const float* re, const float* im) noexcept { return {*re, *im}; }
  static void store_split(float* re, float* im, cvec v) noexcept {
    *re = v.re;
    *im = v.im;
  }

  static cvec add(cvec a, cvec b) noexcept { return {a.re + b.re, a.im + b.im}; }
  static cvec sub(cvec a, cvec b) noexcept { return {a.re - b.re, a.im - b.im}; }
  static cvec cmul(cvec a, cvec b) noexcept {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  /// acc + a * b (complex FMA).
  static cvec cmadd(cvec acc, cvec a, cvec b) noexcept {
    return {acc.re + a.re * b.re - a.im * b.im, acc.im + a.re * b.im + a.im * b.re};
  }
  static cvec scale(cvec a, float s) noexcept { return {a.re * s, a.im * s}; }
  static cvec mul_neg_i(cvec a) noexcept { return {a.im, -a.re}; }
  static cvec mul_pos_i(cvec a) noexcept { return {-a.im, a.re}; }

  // Packed (interleaved) complex vectors: `planes` complexes kept in AoS
  // order.  Add/sub/load/store are shuffle-free, which makes this the right
  // representation for butterfly networks (mostly +/-, one twiddle multiply);
  // the split `cvec` form wins when the loop is broadcast-FMA dominated
  // (GEMM).  Scalar backend: one complex, plain c32 arithmetic.
  static constexpr std::size_t planes = 1;
  using pvec = c32;
  static pvec pload(const c32* p) noexcept { return *p; }
  static void pstore(c32* p, pvec v) noexcept { *p = v; }
  static pvec pset1(c32 v) noexcept { return v; }
  static pvec padd(pvec a, pvec b) noexcept { return a + b; }
  static pvec psub(pvec a, pvec b) noexcept { return a - b; }
  static pvec pcmul(pvec a, pvec b) noexcept { return a * b; }
  /// acc + a * b on packed lanes.  (Spelled out: the class-scope cvec
  /// overloads would otherwise shadow the c32 friends.)
  static pvec pcmadd(pvec acc, pvec a, pvec b) noexcept {
    return {acc.re + a.re * b.re - a.im * b.im, acc.im + a.re * b.im + a.im * b.re};
  }
  static pvec pmul_neg_i(pvec a) noexcept { return {a.im, -a.re}; }
  static pvec pmul_pos_i(pvec a) noexcept { return {-a.im, a.re}; }
  static pvec pscale(pvec a, float s) noexcept { return {a.re * s, a.im * s}; }
  static pvec pconj(pvec a) noexcept { return {a.re, -a.im}; }
  /// Reverses the complex-lane order (lane k <- lane planes-1-k); the
  /// descending-index operand of conjugate-symmetric untangle loops.
  static pvec preverse(pvec a) noexcept { return a; }
};

// --------------------------------------------------------------------- avx2

#if TURBOFNO_SIMD_HAVE_AVX2

struct Avx2Backend {
  static constexpr std::size_t lanes = 8;
  static constexpr const char* name() noexcept { return "avx2"; }

  struct cvec {
    __m256 re;
    __m256 im;
  };

  static cvec zero() noexcept { return {_mm256_setzero_ps(), _mm256_setzero_ps()}; }
  static cvec broadcast(c32 v) noexcept {
    return {_mm256_set1_ps(v.re), _mm256_set1_ps(v.im)};
  }
  static cvec broadcast_split(float re, float im) noexcept {
    return {_mm256_set1_ps(re), _mm256_set1_ps(im)};
  }

  /// Deinterleave 8 consecutive c32 (16 floats) into split registers.
  static cvec load(const c32* p) noexcept {
    const float* f = reinterpret_cast<const float*>(p);
    const __m256 a = _mm256_loadu_ps(f);      // r0 i0 r1 i1 r2 i2 r3 i3
    const __m256 b = _mm256_loadu_ps(f + 8);  // r4 i4 r5 i5 r6 i6 r7 i7
    return deinterleave(a, b);
  }
  static void store(c32* p, cvec v) noexcept {
    __m256 a, b;
    interleave(v, a, b);
    float* f = reinterpret_cast<float*>(p);
    _mm256_storeu_ps(f, a);
    _mm256_storeu_ps(f + 8, b);
  }

  static cvec load_partial(const c32* p, std::size_t count) noexcept {
    const float* f = reinterpret_cast<const float*>(p);
    const std::size_t floats = 2 * count;  // count <= lanes
    const __m256 a = _mm256_maskload_ps(f, float_mask(floats > 8 ? 8 : floats));
    const __m256 b = _mm256_maskload_ps(f + 8, float_mask(floats > 8 ? floats - 8 : 0));
    return deinterleave(a, b);
  }
  static void store_partial(c32* p, cvec v, std::size_t count) noexcept {
    __m256 a, b;
    interleave(v, a, b);
    float* f = reinterpret_cast<float*>(p);
    const std::size_t floats = 2 * count;
    _mm256_maskstore_ps(f, float_mask(floats > 8 ? 8 : floats), a);
    _mm256_maskstore_ps(f + 8, float_mask(floats > 8 ? floats - 8 : 0), b);
  }

  static cvec load_split(const float* re, const float* im) noexcept {
    return {_mm256_loadu_ps(re), _mm256_loadu_ps(im)};
  }
  static void store_split(float* re, float* im, cvec v) noexcept {
    _mm256_storeu_ps(re, v.re);
    _mm256_storeu_ps(im, v.im);
  }

  static cvec add(cvec a, cvec b) noexcept {
    return {_mm256_add_ps(a.re, b.re), _mm256_add_ps(a.im, b.im)};
  }
  static cvec sub(cvec a, cvec b) noexcept {
    return {_mm256_sub_ps(a.re, b.re), _mm256_sub_ps(a.im, b.im)};
  }
  static cvec cmul(cvec a, cvec b) noexcept {
    return {_mm256_fmsub_ps(a.re, b.re, _mm256_mul_ps(a.im, b.im)),
            _mm256_fmadd_ps(a.re, b.im, _mm256_mul_ps(a.im, b.re))};
  }
  static cvec cmadd(cvec acc, cvec a, cvec b) noexcept {
    return {_mm256_fmadd_ps(a.re, b.re, _mm256_fnmadd_ps(a.im, b.im, acc.re)),
            _mm256_fmadd_ps(a.re, b.im, _mm256_fmadd_ps(a.im, b.re, acc.im))};
  }
  static cvec scale(cvec a, float s) noexcept {
    const __m256 vs = _mm256_set1_ps(s);
    return {_mm256_mul_ps(a.re, vs), _mm256_mul_ps(a.im, vs)};
  }
  static cvec mul_neg_i(cvec a) noexcept {
    return {a.im, _mm256_sub_ps(_mm256_setzero_ps(), a.re)};
  }
  static cvec mul_pos_i(cvec a) noexcept {
    return {_mm256_sub_ps(_mm256_setzero_ps(), a.im), a.re};
  }

  // Packed (interleaved) complex vectors: 4 complexes per __m256 in AoS
  // order.  Loads/stores/add/sub are shuffle-free; the complex multiply is
  // the classic moveldup/movehdup/fmaddsub sequence (3 shuffles + 2 mul-ops
  // per 4 multiplies).
  static constexpr std::size_t planes = 4;
  struct pvec {
    __m256 v;
  };
  static pvec pload(const c32* p) noexcept {
    return {_mm256_loadu_ps(reinterpret_cast<const float*>(p))};
  }
  static void pstore(c32* p, pvec v) noexcept {
    _mm256_storeu_ps(reinterpret_cast<float*>(p), v.v);
  }
  static pvec pset1(c32 v) noexcept {
    // Broadcast the 64-bit (re, im) pair into all four complex slots.
    return {_mm256_castpd_ps(_mm256_broadcast_sd(reinterpret_cast<const double*>(&v)))};
  }
  static pvec padd(pvec a, pvec b) noexcept { return {_mm256_add_ps(a.v, b.v)}; }
  static pvec psub(pvec a, pvec b) noexcept { return {_mm256_sub_ps(a.v, b.v)}; }
  static pvec pcmul(pvec a, pvec b) noexcept {
    const __m256 bre = _mm256_moveldup_ps(b.v);                    // b.re b.re ...
    const __m256 bim = _mm256_movehdup_ps(b.v);                    // b.im b.im ...
    const __m256 aswap = _mm256_permute_ps(a.v, 0b10110001);       // a.im a.re ...
    // even lanes: a.re*b.re - a.im*b.im; odd lanes: a.im*b.re + a.re*b.im.
    return {_mm256_fmaddsub_ps(a.v, bre, _mm256_mul_ps(aswap, bim))};
  }
  static pvec pcmadd(pvec acc, pvec a, pvec b) noexcept { return padd(acc, pcmul(a, b)); }
  /// Four distinct complexes packed into one vector (lane-major twiddle
  /// gathers in the sub-lane Stockham passes).
  static pvec pset4(c32 a, c32 b, c32 c, c32 d) noexcept {
    return {_mm256_setr_ps(a.re, a.im, b.re, b.im, c.re, c.im, d.re, d.im)};
  }
  // Complex-granularity shuffles.  A c32 is one 64-bit lane, so these are
  // double-precision unpacks/permutes under the hood (the casts are free).
  /// (a0,b0,a1,b1) — interleave the low complex pairs of a and b.
  static pvec pzip_lo(pvec a, pvec b) noexcept {
    const __m256d t0 = _mm256_unpacklo_pd(_mm256_castps_pd(a.v), _mm256_castps_pd(b.v));
    const __m256d t1 = _mm256_unpackhi_pd(_mm256_castps_pd(a.v), _mm256_castps_pd(b.v));
    return {_mm256_castpd_ps(_mm256_permute2f128_pd(t0, t1, 0x20))};
  }
  /// (a2,b2,a3,b3) — interleave the high complex pairs of a and b.
  static pvec pzip_hi(pvec a, pvec b) noexcept {
    const __m256d t0 = _mm256_unpacklo_pd(_mm256_castps_pd(a.v), _mm256_castps_pd(b.v));
    const __m256d t1 = _mm256_unpackhi_pd(_mm256_castps_pd(a.v), _mm256_castps_pd(b.v));
    return {_mm256_castpd_ps(_mm256_permute2f128_pd(t0, t1, 0x31))};
  }
  /// (a0,a1,b0,b1) — concatenate the low complex pairs (128-bit halves).
  static pvec pzip_pair_lo(pvec a, pvec b) noexcept {
    return {_mm256_permute2f128_ps(a.v, b.v, 0x20)};
  }
  /// (a2,a3,b2,b3) — concatenate the high complex pairs.
  static pvec pzip_pair_hi(pvec a, pvec b) noexcept {
    return {_mm256_permute2f128_ps(a.v, b.v, 0x31)};
  }
  /// In-register 4x4 complex transpose: treating r0..r3 as the rows of a
  /// 4x4 c32 tile, swaps element (i, j) with (j, i).  8 shuffles total —
  /// the primitive behind both the cache-blocked 2D-FFT transpose and the
  /// lane-major sub-lane butterfly passes.
  static void ptranspose4(pvec& r0, pvec& r1, pvec& r2, pvec& r3) noexcept {
    const __m256d a = _mm256_castps_pd(r0.v);
    const __m256d b = _mm256_castps_pd(r1.v);
    const __m256d c = _mm256_castps_pd(r2.v);
    const __m256d d = _mm256_castps_pd(r3.v);
    const __m256d t0 = _mm256_unpacklo_pd(a, b);  // a0 b0 a2 b2
    const __m256d t1 = _mm256_unpackhi_pd(a, b);  // a1 b1 a3 b3
    const __m256d t2 = _mm256_unpacklo_pd(c, d);  // c0 d0 c2 d2
    const __m256d t3 = _mm256_unpackhi_pd(c, d);  // c1 d1 c3 d3
    r0 = {_mm256_castpd_ps(_mm256_permute2f128_pd(t0, t2, 0x20))};  // a0 b0 c0 d0
    r1 = {_mm256_castpd_ps(_mm256_permute2f128_pd(t1, t3, 0x20))};  // a1 b1 c1 d1
    r2 = {_mm256_castpd_ps(_mm256_permute2f128_pd(t0, t2, 0x31))};  // a2 b2 c2 d2
    r3 = {_mm256_castpd_ps(_mm256_permute2f128_pd(t1, t3, 0x31))};  // a3 b3 c3 d3
  }
  static pvec pmul_neg_i(pvec a) noexcept {
    // (re, im) -> (im, -re): swap within each pair, negate the new im lane.
    const __m256 swapped = _mm256_permute_ps(a.v, 0b10110001);
    return {_mm256_xor_ps(swapped, odd_sign_mask())};
  }
  static pvec pmul_pos_i(pvec a) noexcept {
    // (re, im) -> (-im, re): negate im first, then swap within each pair.
    const __m256 negated = _mm256_xor_ps(a.v, odd_sign_mask());
    return {_mm256_permute_ps(negated, 0b10110001)};
  }
  static pvec pscale(pvec a, float s) noexcept {
    return {_mm256_mul_ps(a.v, _mm256_set1_ps(s))};
  }
  static pvec pconj(pvec a) noexcept { return {_mm256_xor_ps(a.v, odd_sign_mask())}; }
  /// Reverses the complex-lane order: (a0,a1,a2,a3) -> (a3,a2,a1,a0).  Each
  /// c32 is one 64-bit lane, so this is a single cross-lane double permute.
  static pvec preverse(pvec a) noexcept {
    return {_mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(a.v), 0b00011011))};
  }

 private:
  /// -0.0f in the odd (imaginary) lanes: xor flips their sign.
  static __m256 odd_sign_mask() noexcept {
    return _mm256_castsi256_ps(
        _mm256_set_epi32(static_cast<int>(0x80000000u), 0, static_cast<int>(0x80000000u), 0,
                         static_cast<int>(0x80000000u), 0, static_cast<int>(0x80000000u), 0));
  }
  static cvec deinterleave(__m256 a, __m256 b) noexcept {
    // a = r0 i0 r1 i1 r2 i2 r3 i3, b = r4 i4 r5 i5 r6 i6 r7 i7
    const __m256 lo = _mm256_permute2f128_ps(a, b, 0x20);  // r0 i0 r1 i1 r4 i4 r5 i5
    const __m256 hi = _mm256_permute2f128_ps(a, b, 0x31);  // r2 i2 r3 i3 r6 i6 r7 i7
    return {_mm256_shuffle_ps(lo, hi, _MM_SHUFFLE(2, 0, 2, 0)),
            _mm256_shuffle_ps(lo, hi, _MM_SHUFFLE(3, 1, 3, 1))};
  }
  static void interleave(cvec v, __m256& a, __m256& b) noexcept {
    const __m256 lo = _mm256_unpacklo_ps(v.re, v.im);  // r0 i0 r1 i1 r4 i4 r5 i5
    const __m256 hi = _mm256_unpackhi_ps(v.re, v.im);  // r2 i2 r3 i3 r6 i6 r7 i7
    a = _mm256_permute2f128_ps(lo, hi, 0x20);
    b = _mm256_permute2f128_ps(lo, hi, 0x31);
  }
  /// All-ones mask on the first `valid` (0..8) float lanes.
  static __m256i float_mask(std::size_t valid) noexcept {
    alignas(32) static constexpr std::int32_t kMask[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                           0,  0,  0,  0,  0,  0,  0,  0};
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMask + 8 - valid));
  }
};

using Active = Avx2Backend;

#else

using Active = ScalarBackend;

#endif  // TURBOFNO_SIMD_HAVE_AVX2

inline constexpr std::size_t kLanes = Active::lanes;

/// Which backend the library's kernels were compiled against.
inline const char* active_backend() noexcept { return Active::name(); }

/// Rounds n up to a whole number of complex lanes (used for tile leading
/// dimensions so vector rows never straddle a tail).
inline constexpr std::size_t round_up_lanes(std::size_t n) noexcept {
  return (n + kLanes - 1) / kLanes * kLanes;
}

/// Split an interleaved c32 run into separate re/im planes (and back).
template <class B = Active>
inline void split_planes(const c32* src, float* re, float* im, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + B::lanes <= n; i += B::lanes) {
    B::store_split(re + i, im + i, B::load(src + i));
  }
  for (; i < n; ++i) {
    re[i] = src[i].re;
    im[i] = src[i].im;
  }
}

template <class B = Active>
inline void interleave_planes(const float* re, const float* im, c32* dst, std::size_t n) noexcept {
  std::size_t i = 0;
  for (; i + B::lanes <= n; i += B::lanes) {
    B::store(dst + i, B::load_split(re + i, im + i));
  }
  for (; i < n; ++i) {
    dst[i] = c32{re[i], im[i]};
  }
}

}  // namespace turbofno::simd
