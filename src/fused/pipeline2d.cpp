#include "fused/pipeline2d.hpp"

#include <algorithm>
#include <stdexcept>

#include "fft/fft2d.hpp"
#include "fft/plan_cache.hpp"
#include "gemm/batched.hpp"
#include "gemm/config.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "runtime/timer.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fused {

namespace {

constexpr std::size_t kTb = gemm::FusedTiles::Ktb;

fft::PlanDesc x_trunc_desc(const baseline::Spectral2dProblem& p) {
  fft::PlanDesc d;
  d.n = p.nx;
  d.dir = fft::Direction::Forward;
  d.keep = p.modes_x;
  return d;
}

fft::PlanDesc x_pad_desc(const baseline::Spectral2dProblem& p) {
  fft::PlanDesc d;
  d.n = p.nx;
  d.dir = fft::Direction::Inverse;
  d.nonzero = p.modes_x;
  return d;
}

}  // namespace

Pipeline2dBase::Pipeline2dBase(baseline::Spectral2dProblem prob, const char* counters_name)
    : prob_(prob),
      fft_x_trunc_(fft::acquire_plan(x_trunc_desc(prob))),
      ifft_x_pad_(fft::acquire_plan(x_pad_desc(prob))),
      fwd_y_(prob.ny, prob.modes_y),
      inv_y_(prob.ny, prob.modes_y),
      counters_(counters_name) {
  prob_.validate();
  mid_in_.resize(prob_.batch * prob_.hidden * prob_.modes_x * prob_.ny);
  mid_out_.resize(prob_.batch * prob_.out_dim * prob_.modes_x * prob_.ny);
}

void Pipeline2dBase::check_batch(std::size_t batch) const {
  if (batch > prob_.batch) {
    throw std::invalid_argument("pipeline2d: micro-batch exceeds the planned capacity");
  }
}

void Pipeline2dBase::run_fft_x_trunc(std::span<const c32> u, std::span<c32> dst,
                                     std::size_t batch) {
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t NX = prob_.nx;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;

  runtime::Timer t;
  // One (batch, channel) field per X-stage unit; fft2d_x_stage picks the
  // transpose-based or per-column schedule.
  fft::fft2d_x_stage(*fft_x_trunc_, u.data(), dst.data(), B * K, NY);
  auto& sc = counters_.stage("fft-x-trunc");
  sc.seconds = t.seconds();
  sc.bytes_read = B * K * NX * NY * sizeof(c32);
  sc.bytes_written = B * K * MX * NY * sizeof(c32);  // only modes_x rows
  sc.flops = B * K * NY * fft_x_trunc_->flops_per_signal();
  sc.kernel_launches = 1;
}

void Pipeline2dBase::run_ifft_x_pad(std::span<const c32> src, std::span<c32> v,
                                    std::size_t batch) {
  const std::size_t B = batch;
  const std::size_t O = prob_.out_dim;
  const std::size_t NX = prob_.nx;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;

  runtime::Timer t;
  fft::fft2d_x_stage(*ifft_x_pad_, src.data(), v.data(), B * O, NY);
  auto& sc = counters_.stage("ifft-x-pad");
  sc.seconds = t.seconds();
  sc.bytes_read = B * O * MX * NY * sizeof(c32);
  sc.bytes_written = B * O * NX * NY * sizeof(c32);
  sc.flops = B * O * NY * ifft_x_pad_->flops_per_signal();
  sc.kernel_launches = 1;
}

// ---------------------------------------------------------------- FftOpt (A)

FftOptPipeline2d::FftOptPipeline2d(baseline::Spectral2dProblem prob)
    : Pipeline2dBase(prob, "fftopt-2d") {
  freq_.resize(prob_.batch * prob_.hidden * prob_.modes_x * prob_.modes_y);
  mixed_.resize(prob_.batch * prob_.out_dim * prob_.modes_x * prob_.modes_y);
}

void FftOptPipeline2d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FftOptPipeline2d::run_batched(std::span<const c32> u, std::span<const c32> w,
                        std::span<c32> v, std::size_t batch) {
  check_batch(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;
  const std::size_t MY = prob_.modes_y;
  const std::size_t modes = MX * MY;

  run_fft_x_trunc(u, mid_in_.span(), B);

  // Stage 2: truncated FFT along Y (unfused).
  {
    runtime::Timer t;
    fwd_y_.plan().execute(mid_in_.span(), freq_.span(), B * K * MX);
    auto& sc = counters_.stage("fft-y-trunc");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * MX * NY * sizeof(c32);
    sc.bytes_written = B * K * modes * sizeof(c32);
    sc.flops = B * K * MX * fwd_y_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  // Stage 3: batched CGEMM.
  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;
    strides.b = static_cast<std::ptrdiff_t>(K * modes);
    strides.c = static_cast<std::ptrdiff_t>(O * modes);
    gemm::cgemm_batched(O, modes, K, c32{1.0f, 0.0f}, w.data(), K, freq_.data(), modes,
                        c32{0.0f, 0.0f}, mixed_.data(), modes, B, strides);
    auto& sc = counters_.stage("cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * modes + O * K) * sizeof(c32);
    sc.bytes_written = B * O * modes * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * modes, O, K);
    sc.kernel_launches = 1;
  }

  // Stage 4: zero-padded iFFT along Y (unfused).
  {
    runtime::Timer t;
    inv_y_.plan().execute(mixed_.span(), mid_out_.span(), B * O * MX);
    auto& sc = counters_.stage("ifft-y-pad");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * modes * sizeof(c32);
    sc.bytes_written = B * O * MX * NY * sizeof(c32);
    sc.flops = B * O * MX * inv_y_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  run_ifft_x_pad(mid_out_.span(), v, B);
}

// --------------------------------------------------------- FusedFftGemm (B)

FusedFftGemmPipeline2d::FusedFftGemmPipeline2d(baseline::Spectral2dProblem prob)
    : Pipeline2dBase(prob, "fused-fft-gemm-2d") {
  mixed_.resize(prob_.batch * prob_.out_dim * prob_.modes_x * prob_.modes_y);
}

void FusedFftGemmPipeline2d::run(std::span<const c32> u, std::span<const c32> w,
                                 std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FusedFftGemmPipeline2d::run_batched(std::span<const c32> u, std::span<const c32> w,
                        std::span<c32> v, std::size_t batch) {
  check_batch(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;
  const std::size_t MY = prob_.modes_y;
  const std::size_t modes = MX * MY;

  run_fft_x_trunc(u, mid_in_.span(), B);

  // Fused FFT-Y + CGEMM: one task per (batch, x-row), iterating the hidden
  // dim like the GEMM k-loop (Figure 6(c)).
  {
    runtime::Timer t;
    const std::size_t ld = simd::round_up_lanes(MY);
    runtime::parallel_for(0, B * MX, runtime::fused_grain(B * MX),
                          [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      const std::span<c32> tile = arena.alloc<c32>(kTb * ld);
      const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
      const std::span<float> acc = arena.alloc<float>(2 * O * ld);
      const std::span<c32> work = arena.alloc<c32>(fwd_y_.plan().scratch_elems());
      // rank_update_split streams whole ld-wide rows, so the tile planes'
      // lane padding must be zero; the arena hands out raw storage.
      std::fill(tsplit.begin(), tsplit.end(), 0.0f);
      float* tre = tsplit.data();
      float* tim = tre + kTb * ld;
      float* are = acc.data();
      float* aim = are + O * ld;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t b = i / MX;
        const std::size_t x = i % MX;
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          // Channel k's row for this x sits at ((b*K + k) * MX + x) * NY.
          fwd_y_.forward_tile(mid_in_.data() + ((b * K + k0) * MX + x) * NY, MX * NY, kc,
                              tile.data(), ld, work);
          for (std::size_t kk = 0; kk < kc; ++kk) {
            simd::split_planes(tile.data() + kk * ld, tre + kk * ld, tim + kk * ld, MY);
          }
          rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
        }
        for (std::size_t o = 0; o < O; ++o) {
          simd::interleave_planes(are + o * ld, aim + o * ld,
                                  mixed_.data() + ((b * O + o) * MX + x) * MY, MY);
        }
      }
    });
    auto& sc = counters_.stage("fused-fft-cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * MX * NY + O * K) * sizeof(c32);
    sc.bytes_written = B * O * modes * sizeof(c32);
    sc.flops = B * K * MX * fwd_y_.plan().flops_per_signal() + trace::cgemm_flops(B * modes, O, K);
    sc.kernel_launches = 1;
  }

  // Separate zero-padded iFFT along Y.
  {
    runtime::Timer t;
    inv_y_.plan().execute(mixed_.span(), mid_out_.span(), B * O * MX);
    auto& sc = counters_.stage("ifft-y-pad");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * modes * sizeof(c32);
    sc.bytes_written = B * O * MX * NY * sizeof(c32);
    sc.flops = B * O * MX * inv_y_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  run_ifft_x_pad(mid_out_.span(), v, B);
}

// --------------------------------------------------------- FusedGemmIfft (C)

FusedGemmIfftPipeline2d::FusedGemmIfftPipeline2d(baseline::Spectral2dProblem prob)
    : Pipeline2dBase(prob, "fused-gemm-ifft-2d") {
  freq_.resize(prob_.batch * prob_.hidden * prob_.modes_x * prob_.modes_y);
}

void FusedGemmIfftPipeline2d::run(std::span<const c32> u, std::span<const c32> w,
                                  std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FusedGemmIfftPipeline2d::run_batched(std::span<const c32> u, std::span<const c32> w,
                        std::span<c32> v, std::size_t batch) {
  check_batch(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;
  const std::size_t MY = prob_.modes_y;
  const std::size_t modes = MX * MY;

  run_fft_x_trunc(u, mid_in_.span(), B);

  // Separate truncated FFT along Y.
  {
    runtime::Timer t;
    fwd_y_.plan().execute(mid_in_.span(), freq_.span(), B * K * MX);
    auto& sc = counters_.stage("fft-y-trunc");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * MX * NY * sizeof(c32);
    sc.bytes_written = B * K * modes * sizeof(c32);
    sc.flops = B * K * MX * fwd_y_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  // Fused CGEMM + iFFT-Y epilogue per (batch, x-row).
  {
    runtime::Timer t;
    const std::size_t ld = simd::round_up_lanes(MY);
    runtime::parallel_for(0, B * MX, runtime::fused_grain(B * MX),
                          [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
      const std::span<float> acc = arena.alloc<float>(2 * O * ld);
      const std::span<c32> row = arena.alloc<c32>(ld);
      const std::span<c32> work = arena.alloc<c32>(inv_y_.plan().scratch_elems());
      std::fill(tsplit.begin(), tsplit.end(), 0.0f);
      float* tre = tsplit.data();
      float* tim = tre + kTb * ld;
      float* are = acc.data();
      float* aim = are + O * ld;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t b = i / MX;
        const std::size_t x = i % MX;
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          // Gather the k-major tile straight into SoA planes (rows are MY
          // apart within a channel, channels MX*MY apart) — the split is
          // the gather copy the seed already paid.
          for (std::size_t kk = 0; kk < kc; ++kk) {
            simd::split_planes(freq_.data() + ((b * K + k0 + kk) * MX + x) * MY, tre + kk * ld,
                               tim + kk * ld, MY);
          }
          rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
        }
        for (std::size_t o = 0; o < O; ++o) {
          simd::interleave_planes(are + o * ld, aim + o * ld, row.data(), MY);
          inv_y_.inverse_row(row.data(), mid_out_.data() + ((b * O + o) * MX + x) * NY, work);
        }
      }
    });
    auto& sc = counters_.stage("fused-cgemm-ifft");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * modes + O * K) * sizeof(c32);
    sc.bytes_written = B * O * MX * NY * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * modes, O, K) + B * O * MX * inv_y_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  run_ifft_x_pad(mid_out_.span(), v, B);
}

// ------------------------------------------------------------ FullyFused (D)

FullyFusedPipeline2d::FullyFusedPipeline2d(baseline::Spectral2dProblem prob)
    : Pipeline2dBase(prob, "fully-fused-2d") {}

void FullyFusedPipeline2d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FullyFusedPipeline2d::run_batched(std::span<const c32> u, std::span<const c32> w,
                        std::span<c32> v, std::size_t batch) {
  check_batch(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;
  const std::size_t MY = prob_.modes_y;
  const std::size_t modes = MX * MY;

  run_fft_x_trunc(u, mid_in_.span(), B);

  // Fused FFT-Y + CGEMM + iFFT-Y per (batch, x-row): the middle of the
  // pipeline never touches global memory (Figure 9's fused kernel).
  {
    runtime::Timer t;
    const std::size_t ld = simd::round_up_lanes(MY);
    runtime::parallel_for(0, B * MX, runtime::fused_grain(B * MX),
                          [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      const std::span<c32> tile = arena.alloc<c32>(kTb * ld);
      const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
      const std::span<float> acc = arena.alloc<float>(2 * O * ld);
      const std::span<c32> row = arena.alloc<c32>(ld);
      const std::span<c32> work = arena.alloc<c32>(fwd_y_.plan().scratch_elems());
      std::fill(tsplit.begin(), tsplit.end(), 0.0f);
      float* tre = tsplit.data();
      float* tim = tre + kTb * ld;
      float* are = acc.data();
      float* aim = are + O * ld;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t b = i / MX;
        const std::size_t x = i % MX;
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          fwd_y_.forward_tile(mid_in_.data() + ((b * K + k0) * MX + x) * NY, MX * NY, kc,
                              tile.data(), ld, work);
          for (std::size_t kk = 0; kk < kc; ++kk) {
            simd::split_planes(tile.data() + kk * ld, tre + kk * ld, tim + kk * ld, MY);
          }
          rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
        }
        for (std::size_t o = 0; o < O; ++o) {
          simd::interleave_planes(are + o * ld, aim + o * ld, row.data(), MY);
          inv_y_.inverse_row(row.data(), mid_out_.data() + ((b * O + o) * MX + x) * NY, work);
        }
      }
    });
    auto& sc = counters_.stage("fused-fft-cgemm-ifft");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * MX * NY + O * K) * sizeof(c32);
    sc.bytes_written = B * O * MX * NY * sizeof(c32);
    sc.flops = B * K * MX * fwd_y_.plan().flops_per_signal() +
               trace::cgemm_flops(B * modes, O, K) +
               B * O * MX * inv_y_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  run_ifft_x_pad(mid_out_.span(), v, B);
}

}  // namespace turbofno::fused
