#include "fused/pipeline2d.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "fft/fft2d.hpp"
#include "fft/plan_cache.hpp"
#include "fft/real2d.hpp"
#include "gemm/batched.hpp"
#include "gemm/config.hpp"
#include "runtime/env.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "runtime/timer.hpp"
#include "tensor/simd.hpp"
#include "tensor/transpose.hpp"

namespace turbofno::fused {

namespace {

constexpr std::size_t kTb = gemm::FusedTiles::Ktb;

// x-rows handled jointly by one fused middle task on the y-major staging
// layout: 8 c32 x-columns span one 64-byte cache line of a staging row, so
// the blocked SIMD transpose that feeds (or drains) the k-loop touches
// every staging line exactly once per block.  Row-by-row strided gathers
// would instead re-touch each k-tile's 8 channel tiles per x-row — a
// ~512 KiB working set that measurably thrashes.  On the x-major unfused
// layout rows are contiguous and blocking is pointless, so xb = 1 there
// (bitwise identical either way; blocking is pure data movement).
constexpr std::size_t kXBlock = 8;

// Cache budget for one fused-middle batch group's staging tiles (input plus
// output planes together).  Groups sized under this stay resident between
// the X stage that fills them and the middle/inverse stages that drain
// them, which is where the skipped mid_in_/mid_out_ round trip turns into
// wall-clock.
constexpr std::size_t kMidStagingBudgetBytes = 8u << 20;

std::atomic<std::size_t> g_mid_group_override{0};

std::size_t env_mid_group() noexcept {
  static const std::size_t v = static_cast<std::size_t>(
      runtime::env_long_clamped("TURBOFNO_FUSED_MID_GROUP", 0, 0, 1L << 20));
  return v;
}

fft::PlanDesc x_trunc_desc(const baseline::Spectral2dProblem& p) {
  fft::PlanDesc d;
  d.n = p.nx;
  d.dir = fft::Direction::Forward;
  d.keep = p.modes_x;
  return d;
}

fft::PlanDesc x_pad_desc(const baseline::Spectral2dProblem& p) {
  fft::PlanDesc d;
  d.n = p.nx;
  d.dir = fft::Direction::Inverse;
  d.nonzero = p.modes_x;
  return d;
}

}  // namespace

void set_fused_mid_group(std::size_t g) noexcept {
  g_mid_group_override.store(g, std::memory_order_relaxed);
}

std::size_t fused_mid_group_override() noexcept {
  const std::size_t ov = g_mid_group_override.load(std::memory_order_relaxed);
  if (ov > 0) return ov;
  return env_mid_group();
}

Pipeline2dBase::Pipeline2dBase(baseline::Spectral2dProblem prob, const char* counters_name)
    : prob_(prob),
      fft_x_trunc_(fft::acquire_plan(x_trunc_desc(prob))),
      ifft_x_pad_(fft::acquire_plan(x_pad_desc(prob))),
      fwd_y_(prob.ny, prob.modes_y),
      inv_y_(prob.ny, prob.modes_y),
      counters_(counters_name) {
  prob_.validate();
  // Schedule buffers (mid_in_/mid_out_ or the staging tiles) are sized
  // lazily by run_mid, so a pipeline only ever holds the intermediates of
  // the schedule it actually runs.
}

void Pipeline2dBase::ensure_mid_buffers(std::size_t batch, bool fused_mid, std::size_t group) {
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t MX = prob_.modes_x;
  const std::size_t NY = prob_.ny;
  if (fused_mid) {
    const std::size_t bg = std::max<std::size_t>(group, 1);
    ensure(staging_in_, bg * K * NY * MX);
    ensure(staging_out_, bg * O * NY * MX);
  } else {
    ensure(mid_in_, batch * K * MX * NY);
    ensure(mid_out_, batch * O * MX * NY);
  }
}

void Pipeline2dBase::reserve(std::size_t batch) {
  if (batch != 0) {
    // Pre-size the active middle schedule's buffers so a batch this large
    // triggers no allocation on the run path (mid_group() caps the fused
    // staging at one cache-budget group).  Grow the buffers BEFORE bumping
    // the capacity mark: a bad_alloc here must not leave problem().batch
    // claiming workspaces that were never grown.
    const bool fused_mid = fft::fused_mid_enabled();
    ensure_mid_buffers(batch, fused_mid, fused_mid ? mid_group(batch) : 0);
  }
  if (batch > prob_.batch) prob_.batch = batch;
}

void Pipeline2dBase::check_spans(std::span<const c32> u, std::span<c32> v,
                                 std::size_t batch) const {
  const std::size_t field = prob_.nx * prob_.ny;
  baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * field, prob_.out_dim * field,
                              batch, "pipeline2d");
}

void Pipeline2dBase::check_spans_real(std::span<const float> u, std::span<float> v,
                                      std::size_t batch) const {
  const std::size_t field = prob_.nx * prob_.ny;
  baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * field, prob_.out_dim * field,
                              batch, "pipeline2d(real)");
}

std::size_t Pipeline2dBase::mid_group(std::size_t batch) const noexcept {
  if (batch == 0) return 1;
  const std::size_t ov = fused_mid_group_override();
  if (ov > 0) return std::min(ov, batch);
  const std::size_t per_b =
      (prob_.hidden + prob_.out_dim) * prob_.modes_x * prob_.ny * sizeof(c32);
  const std::size_t bg = std::max<std::size_t>(kMidStagingBudgetBytes / per_b, 1);
  return std::min(bg, batch);
}

void Pipeline2dBase::gather_xblock(const MidView& mv, std::size_t bl, std::size_t k0,
                                   std::size_t kc, std::size_t x0, std::size_t xc,
                                   std::size_t xb, std::size_t ny, c32* gbuf) noexcept {
  // One line-efficient transpose per channel: staging columns [x0, x0+xc)
  // become contiguous rows of gbuf.
  for (std::size_t kk = 0; kk < kc; ++kk) {
    simd::transpose(mv.in_row(bl, k0 + kk, x0), static_cast<std::size_t>(mv.in_y),
                    gbuf + kk * xb * ny, ny, ny, xc);
  }
}

void Pipeline2dBase::scatter_xblock(const MidView& mv, std::size_t bl, std::size_t o,
                                    std::size_t x0, std::size_t xc, std::size_t ny,
                                    const c32* sbuf) noexcept {
  // Contiguous rows back into staging columns, one transpose per output
  // channel block.
  simd::transpose(sbuf, ny, mv.out_row(bl, o, x0), static_cast<std::size_t>(mv.out_y), xc,
                  ny);
}

void Pipeline2dBase::y_forward_rows(const fft::FftPlan& plan, const MidView& mv,
                                    std::size_t channels, std::size_t mx, std::size_t my,
                                    c32* spectra) {
  runtime::parallel_for(0, mv.count * channels * mx, 16,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    const std::span<c32> work = arena.alloc<c32>(plan.scratch_elems());
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t bl = r / (channels * mx);
      const std::size_t c = (r / mx) % channels;
      const std::size_t x = r % mx;
      plan.execute_one(mv.in_row(bl, c, x), mv.in_y,
                       spectra + ((bl * channels + c) * mx + x) * my, 1, work);
    }
    // tfno-hot-end
  });
}

void Pipeline2dBase::y_inverse_rows(const fft::FftPlan& plan, const MidView& mv,
                                    std::size_t channels, std::size_t mx, std::size_t my,
                                    const c32* spectra) {
  runtime::parallel_for(0, mv.count * channels * mx, 16,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    const std::span<c32> work = arena.alloc<c32>(plan.scratch_elems());
    for (std::size_t r = lo; r < hi; ++r) {
      const std::size_t bl = r / (channels * mx);
      const std::size_t c = (r / mx) % channels;
      const std::size_t x = r % mx;
      plan.execute_one(spectra + ((bl * channels + c) * mx + x) * my, 1,
                       mv.out_row(bl, c, x), mv.out_y, work);
    }
    // tfno-hot-end
  });
}


void Pipeline2dBase::run_fft_x_trunc(std::span<const c32> u, std::span<c32> dst,
                                     std::size_t batch) {
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t NX = prob_.nx;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;

  runtime::Timer t;
  // One (batch, channel) field per X-stage unit; fft2d_x_stage picks the
  // transpose-based or per-column schedule.
  fft::fft2d_x_stage(*fft_x_trunc_, u.data(), dst.data(), B * K, NY);
  auto& sc = counters_.stage("fft-x-trunc");
  sc.seconds = t.seconds();
  sc.bytes_read = B * K * NX * NY * sizeof(c32);
  sc.bytes_written = B * K * MX * NY * sizeof(c32);  // only modes_x rows
  sc.flops = B * K * NY * fft_x_trunc_->flops_per_signal();
  sc.kernel_launches = 1;
}

void Pipeline2dBase::run_ifft_x_pad(std::span<const c32> src, std::span<c32> v,
                                    std::size_t batch) {
  const std::size_t B = batch;
  const std::size_t O = prob_.out_dim;
  const std::size_t NX = prob_.nx;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;

  runtime::Timer t;
  fft::fft2d_x_stage(*ifft_x_pad_, src.data(), v.data(), B * O, NY);
  auto& sc = counters_.stage("ifft-x-pad");
  sc.seconds = t.seconds();
  sc.bytes_read = B * O * MX * NY * sizeof(c32);
  sc.bytes_written = B * O * NX * NY * sizeof(c32);
  sc.flops = B * O * NY * ifft_x_pad_->flops_per_signal();
  sc.kernel_launches = 1;
}

void Pipeline2dBase::run_mid(std::span<const c32> u, std::span<c32> v, std::size_t batch,
                             bool fused_mid, std::size_t group,
                             const std::function<void(const MidView&)>& middle) {
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NX = prob_.nx;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;

  if (!fused_mid) {
    // Unfused middle: materialize the x-major intermediates for the whole
    // batch, exactly the PR-3 schedule.
    ensure_mid_buffers(B, false, 0);
    run_fft_x_trunc(u, mid_in_.span(), B);
    MidView mv;
    mv.in = mid_in_.data();
    mv.out = mid_out_.data();
    mv.count = B;
    mv.in_y = 1;
    mv.out_y = 1;
    mv.in_x = NY;
    mv.out_x = NY;
    mv.chan = MX * NY;
    mv.in_b = K * MX * NY;
    mv.out_b = O * MX * NY;
    middle(mv);
    run_ifft_x_pad(mid_out_.span(), v, B);
    return;
  }

  // Fused middle: stage one batch group of y-major X-spectra tiles at a
  // time.  Each group runs X -> middle -> inverse X back to back so the
  // tiles are consumed while still cache-resident; the parallel_for inside
  // each phase keeps the worker pool busy (group * K * slab tasks).
  const std::size_t bg = std::max<std::size_t>(group, 1);
  ensure_mid_buffers(B, true, bg);

  for (std::size_t b0 = 0; b0 < B; b0 += bg) {
    const std::size_t g = std::min(bg, B - b0);
    {
      runtime::Timer t;
      fft::fft2d_x_stage_to_tiles(
          *fft_x_trunc_, u.data() + b0 * K * NX * NY, g * K, NY,
          [this, MX, NY](std::size_t f, std::size_t y0, std::size_t) {
            return staging_in_.data() + (f * NY + y0) * MX;
          });
      counters_.stage("fft-x-trunc").seconds += t.seconds();
    }

    MidView mv;
    mv.in = staging_in_.data();
    mv.out = staging_out_.data();
    mv.count = g;
    mv.in_y = static_cast<std::ptrdiff_t>(MX);
    mv.out_y = static_cast<std::ptrdiff_t>(MX);
    mv.in_x = 1;
    mv.out_x = 1;
    mv.chan = NY * MX;
    mv.in_b = K * NY * MX;
    mv.out_b = O * NY * MX;
    middle(mv);

    {
      runtime::Timer t;
      fft::fft2d_x_stage_from_tiles(
          *ifft_x_pad_,
          [this, MX, NY](std::size_t f, std::size_t y0, std::size_t) {
            return static_cast<const c32*>(staging_out_.data() + (f * NY + y0) * MX);
          },
          v.data() + b0 * O * NX * NY, g * O, NY);
      counters_.stage("ifft-x-pad").seconds += t.seconds();
    }
  }

  // Closed-form per-run accounting.  The staging tiles are the CPU analogue
  // of the paper's shared-memory residency, so — like the fused kernels'
  // on-chip operands — they count zero global-memory traffic: the X stages
  // touch only the true global tensors u and v.
  const std::uint64_t e = sizeof(c32);
  auto& sx = counters_.stage("fft-x-trunc");
  sx.bytes_read = B * K * NX * NY * e;
  sx.bytes_written = 0;
  sx.flops = B * K * NY * fft_x_trunc_->flops_per_signal();
  sx.kernel_launches = 1;
  auto& si = counters_.stage("ifft-x-pad");
  si.bytes_read = 0;
  si.bytes_written = B * O * NX * NY * e;
  si.flops = B * O * NY * ifft_x_pad_->flops_per_signal();
  si.kernel_launches = 1;
}

void Pipeline2dBase::run_mid_real(std::span<const float> u, std::span<float> v,
                                  std::size_t batch, bool fused_mid, std::size_t group,
                                  const std::function<void(const MidView&)>& middle) {
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NX = prob_.nx;
  const std::size_t NY = prob_.ny;
  const std::size_t MXR = real_modes_x();

  if (!fused_mid) {
    // Unfused middle: the MX-sized intermediates are a capacity superset of
    // the MXR-packed real layout the view strides describe.
    ensure_mid_buffers(B, false, 0);
    {
      runtime::Timer t;
      fft::rfft2d_x_stage(NX, MXR, u.data(), mid_in_.data(), B * K, NY);
      counters_.stage("fft-x-trunc").seconds += t.seconds();
    }
    MidView mv;
    mv.in = mid_in_.data();
    mv.out = mid_out_.data();
    mv.count = B;
    mv.in_y = 1;
    mv.out_y = 1;
    mv.in_x = NY;
    mv.out_x = NY;
    mv.chan = MXR * NY;
    mv.in_b = K * MXR * NY;
    mv.out_b = O * MXR * NY;
    middle(mv);
    {
      runtime::Timer t;
      fft::irfft2d_x_stage(NX, MXR, mid_out_.data(), v.data(), B * O, NY);
      counters_.stage("ifft-x-pad").seconds += t.seconds();
    }
  } else {
    // Fused middle: identical group staging to run_mid, with the tiles'
    // column spectra packed MXR apart.
    const std::size_t bg = std::max<std::size_t>(group, 1);
    ensure_mid_buffers(B, true, bg);

    for (std::size_t b0 = 0; b0 < B; b0 += bg) {
      const std::size_t g = std::min(bg, B - b0);
      {
        runtime::Timer t;
        fft::rfft2d_x_stage_to_tiles(
            NX, MXR, u.data() + b0 * K * NX * NY, g * K, NY,
            [this, MXR, NY](std::size_t f, std::size_t y0, std::size_t) {
              return staging_in_.data() + (f * NY + y0) * MXR;
            });
        counters_.stage("fft-x-trunc").seconds += t.seconds();
      }

      MidView mv;
      mv.in = staging_in_.data();
      mv.out = staging_out_.data();
      mv.count = g;
      mv.in_y = static_cast<std::ptrdiff_t>(MXR);
      mv.out_y = static_cast<std::ptrdiff_t>(MXR);
      mv.in_x = 1;
      mv.out_x = 1;
      mv.chan = NY * MXR;
      mv.in_b = K * NY * MXR;
      mv.out_b = O * NY * MXR;
      middle(mv);

      {
        runtime::Timer t;
        fft::irfft2d_x_stage_from_tiles(
            NX, MXR,
            [this, MXR, NY](std::size_t f, std::size_t y0, std::size_t) {
              return static_cast<const c32*>(staging_out_.data() + (f * NY + y0) * MXR);
            },
            v.data() + b0 * O * NX * NY, g * O, NY);
        counters_.stage("ifft-x-pad").seconds += t.seconds();
      }
    }
  }

  // Closed-form per-run accounting.  The real X stages run one full-length
  // packed C2C transform per column *pair* plus an O(MXR) untangle per
  // column; field traffic is real floats, and — as in run_mid — the fused
  // staging tiles count as on-chip (zero global bytes).
  const std::uint64_t e = sizeof(c32);
  const auto fx = fft::acquire_plan({NX, fft::Direction::Forward});
  const auto ix = fft::acquire_plan({NX, fft::Direction::Inverse});
  auto& sx = counters_.stage("fft-x-trunc");
  sx.bytes_read = B * K * NX * NY * sizeof(float);
  sx.bytes_written = fused_mid ? 0 : B * K * MXR * NY * e;
  sx.flops = B * K * (NY / 2) * fx->flops_per_signal() + B * K * NY * 8 * MXR;
  sx.kernel_launches = 1;
  auto& si = counters_.stage("ifft-x-pad");
  si.bytes_read = fused_mid ? 0 : B * O * MXR * NY * e;
  si.bytes_written = B * O * NX * NY * sizeof(float);
  si.flops = B * O * (NY / 2) * ix->flops_per_signal() + B * O * NY * 8 * MXR;
  si.kernel_launches = 1;
}

// ---------------------------------------------------------------- FftOpt (A)

FftOptPipeline2d::FftOptPipeline2d(baseline::Spectral2dProblem prob)
    : Pipeline2dBase(prob, "fftopt-2d") {}

void FftOptPipeline2d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FftOptPipeline2d::ensure_variant_buffers(std::size_t gcap) {
  const std::size_t modes = prob_.modes_x * prob_.modes_y;
  ensure(freq_, gcap * prob_.hidden * modes);
  ensure(mixed_, gcap * prob_.out_dim * modes);
}

void FftOptPipeline2d::reserve(std::size_t batch) {
  if (batch != 0) {
    ensure_variant_buffers(fft::fused_mid_enabled() ? mid_group(batch) : batch);
  }
  Pipeline2dBase::reserve(batch);
}

void FftOptPipeline2d::middle_group(const MidView& mv, std::span<const c32> w,
                                    std::size_t mx) {
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t MY = prob_.modes_y;
  const std::size_t modes = mx * MY;

  // Stage 2: truncated FFT along Y (unfused).
  {
    runtime::Timer t;
    y_forward_rows(fwd_y_.plan(), mv, K, mx, MY, freq_.data());
    counters_.stage("fft-y-trunc").seconds += t.seconds();
  }

  // Stage 3: batched CGEMM over the group.
  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;
    strides.b = static_cast<std::ptrdiff_t>(K * modes);
    strides.c = static_cast<std::ptrdiff_t>(O * modes);
    gemm::cgemm_batched(O, modes, K, c32{1.0f, 0.0f}, w.data(), K, freq_.data(), modes,
                        c32{0.0f, 0.0f}, mixed_.data(), modes, mv.count, strides);
    counters_.stage("cgemm").seconds += t.seconds();
  }

  // Stage 4: zero-padded iFFT along Y (unfused).
  {
    runtime::Timer t;
    y_inverse_rows(inv_y_.plan(), mv, O, mx, MY, mixed_.data());
    counters_.stage("ifft-y-pad").seconds += t.seconds();
  }
}

void FftOptPipeline2d::run_batched(std::span<const c32> u, std::span<const c32> w,
                        std::span<c32> v, std::size_t batch) {
  check_spans(u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const bool fused_mid = fft::fused_mid_enabled();
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;
  const std::size_t modes = MX * prob_.modes_y;

  const std::size_t gcap = fused_mid ? mid_group(B) : B;
  ensure_variant_buffers(gcap);

  run_mid(u, v, B, fused_mid, gcap,
          [&](const MidView& mv) { middle_group(mv, w, MX); });

  const std::uint64_t e = sizeof(c32);
  auto& sy = counters_.stage("fft-y-trunc");
  sy.bytes_read = fused_mid ? 0 : B * K * MX * NY * e;
  sy.bytes_written = B * K * modes * e;
  sy.flops = B * K * MX * fwd_y_.plan().flops_per_signal();
  sy.kernel_launches = 1;
  auto& sg = counters_.stage("cgemm");
  sg.bytes_read = (B * K * modes + O * K) * e;
  sg.bytes_written = B * O * modes * e;
  sg.flops = trace::cgemm_flops(B * modes, O, K);
  sg.kernel_launches = 1;
  auto& sp = counters_.stage("ifft-y-pad");
  sp.bytes_read = B * O * modes * e;
  sp.bytes_written = fused_mid ? 0 : B * O * MX * NY * e;
  sp.flops = B * O * MX * inv_y_.plan().flops_per_signal();
  sp.kernel_launches = 1;
}

void FftOptPipeline2d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                        std::span<float> v, std::size_t batch) {
  check_spans_real(u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const bool fused_mid = fft::fused_mid_enabled();
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MXR = real_modes_x();
  const std::size_t modes = MXR * prob_.modes_y;

  const std::size_t gcap = fused_mid ? mid_group(B) : B;
  ensure_variant_buffers(gcap);

  run_mid_real(u, v, B, fused_mid, gcap,
               [&](const MidView& mv) { middle_group(mv, w, MXR); });

  const std::uint64_t e = sizeof(c32);
  auto& sy = counters_.stage("fft-y-trunc");
  sy.bytes_read = fused_mid ? 0 : B * K * MXR * NY * e;
  sy.bytes_written = B * K * modes * e;
  sy.flops = B * K * MXR * fwd_y_.plan().flops_per_signal();
  sy.kernel_launches = 1;
  auto& sg = counters_.stage("cgemm");
  sg.bytes_read = (B * K * modes + O * K) * e;
  sg.bytes_written = B * O * modes * e;
  sg.flops = trace::cgemm_flops(B * modes, O, K);
  sg.kernel_launches = 1;
  auto& sp = counters_.stage("ifft-y-pad");
  sp.bytes_read = B * O * modes * e;
  sp.bytes_written = fused_mid ? 0 : B * O * MXR * NY * e;
  sp.flops = B * O * MXR * inv_y_.plan().flops_per_signal();
  sp.kernel_launches = 1;
}

// --------------------------------------------------------- FusedFftGemm (B)

FusedFftGemmPipeline2d::FusedFftGemmPipeline2d(baseline::Spectral2dProblem prob)
    : Pipeline2dBase(prob, "fused-fft-gemm-2d") {}

void FusedFftGemmPipeline2d::run(std::span<const c32> u, std::span<const c32> w,
                                 std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FusedFftGemmPipeline2d::ensure_variant_buffers(std::size_t gcap) {
  ensure(mixed_, gcap * prob_.out_dim * prob_.modes_x * prob_.modes_y);
}

void FusedFftGemmPipeline2d::reserve(std::size_t batch) {
  if (batch != 0) {
    ensure_variant_buffers(fft::fused_mid_enabled() ? mid_group(batch) : batch);
  }
  Pipeline2dBase::reserve(batch);
}

void FusedFftGemmPipeline2d::middle_group(const MidView& mv, std::span<const c32> w,
                                          std::size_t mx) {
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MY = prob_.modes_y;

  // Fused FFT-Y + CGEMM: one task per (batch, x-block), iterating the
  // hidden dim like the GEMM k-loop (Figure 6(c)).  On the y-major
  // staging, each k-tile channel moves through one blocked SIMD
  // transpose so the k-loop streams contiguous rows (see kXBlock).
  {
    runtime::Timer t;
    const std::size_t ld = simd::round_up_lanes(MY);
    const bool tiled = mv.in_y != 1;
    const std::size_t xb = tiled ? std::min<std::size_t>(kXBlock, mx) : 1;
    const std::size_t nblk = (mx + xb - 1) / xb;
    runtime::parallel_for(0, mv.count * nblk, runtime::fused_grain(mv.count * nblk),
                          [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
      const std::span<c32> tile = arena.alloc<c32>(kTb * ld);
      const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
      const std::span<float> acc = arena.alloc<float>(xb * 2 * O * ld);
      const std::span<c32> gbuf =
          tiled ? arena.alloc<c32>(kTb * xb * NY) : std::span<c32>{};
      const std::span<c32> work = arena.alloc<c32>(fwd_y_.plan().scratch_elems());
      // rank_update_split streams whole ld-wide rows, so the tile planes'
      // lane padding must be zero; the arena hands out raw storage.
      std::fill(tsplit.begin(), tsplit.end(), 0.0f);
      float* tre = tsplit.data();
      float* tim = tre + kTb * ld;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t bl = i / nblk;
        const std::size_t x0 = (i % nblk) * xb;
        const std::size_t xc = std::min(xb, mx - x0);
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          if (tiled) gather_xblock(mv, bl, k0, kc, x0, xc, xb, NY, gbuf.data());
          for (std::size_t xi = 0; xi < xc; ++xi) {
            float* are = acc.data() + xi * 2 * O * ld;
            float* aim = are + O * ld;
            if (tiled) {
              fwd_y_.forward_tile(gbuf.data() + xi * NY, xb * NY, kc, tile.data(), ld,
                                  work);
            } else {
              fwd_y_.forward_tile(mv.in_row(bl, k0, x0 + xi), mv.chan, kc, tile.data(),
                                  ld, work, mv.in_y);
            }
            for (std::size_t kk = 0; kk < kc; ++kk) {
              simd::split_planes(tile.data() + kk * ld, tre + kk * ld, tim + kk * ld, MY);
            }
            rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
          }
        }
        for (std::size_t xi = 0; xi < xc; ++xi) {
          const float* are = acc.data() + xi * 2 * O * ld;
          const float* aim = are + O * ld;
          for (std::size_t o = 0; o < O; ++o) {
            simd::interleave_planes(are + o * ld, aim + o * ld,
                                    mixed_.data() + ((bl * O + o) * mx + x0 + xi) * MY,
                                    MY);
          }
        }
      }
      // tfno-hot-end
    });
    counters_.stage("fused-fft-cgemm").seconds += t.seconds();
  }

  // Separate zero-padded iFFT along Y.
  {
    runtime::Timer t;
    y_inverse_rows(inv_y_.plan(), mv, O, mx, MY, mixed_.data());
    counters_.stage("ifft-y-pad").seconds += t.seconds();
  }
}

void FusedFftGemmPipeline2d::run_batched(std::span<const c32> u, std::span<const c32> w,
                        std::span<c32> v, std::size_t batch) {
  check_spans(u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const bool fused_mid = fft::fused_mid_enabled();
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;
  const std::size_t modes = MX * prob_.modes_y;

  const std::size_t gcap = fused_mid ? mid_group(B) : B;
  ensure_variant_buffers(gcap);

  run_mid(u, v, B, fused_mid, gcap,
          [&](const MidView& mv) { middle_group(mv, w, MX); });

  const std::uint64_t e = sizeof(c32);
  auto& sf = counters_.stage("fused-fft-cgemm");
  sf.bytes_read = ((fused_mid ? 0 : B * K * MX * NY) + O * K) * e;
  sf.bytes_written = B * O * modes * e;
  sf.flops = B * K * MX * fwd_y_.plan().flops_per_signal() + trace::cgemm_flops(B * modes, O, K);
  sf.kernel_launches = 1;
  auto& sp = counters_.stage("ifft-y-pad");
  sp.bytes_read = B * O * modes * e;
  sp.bytes_written = fused_mid ? 0 : B * O * MX * NY * e;
  sp.flops = B * O * MX * inv_y_.plan().flops_per_signal();
  sp.kernel_launches = 1;
}

void FusedFftGemmPipeline2d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                              std::span<float> v, std::size_t batch) {
  check_spans_real(u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const bool fused_mid = fft::fused_mid_enabled();
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MXR = real_modes_x();
  const std::size_t modes = MXR * prob_.modes_y;

  const std::size_t gcap = fused_mid ? mid_group(B) : B;
  ensure_variant_buffers(gcap);

  run_mid_real(u, v, B, fused_mid, gcap,
               [&](const MidView& mv) { middle_group(mv, w, MXR); });

  const std::uint64_t e = sizeof(c32);
  auto& sf = counters_.stage("fused-fft-cgemm");
  sf.bytes_read = ((fused_mid ? 0 : B * K * MXR * NY) + O * K) * e;
  sf.bytes_written = B * O * modes * e;
  sf.flops =
      B * K * MXR * fwd_y_.plan().flops_per_signal() + trace::cgemm_flops(B * modes, O, K);
  sf.kernel_launches = 1;
  auto& sp = counters_.stage("ifft-y-pad");
  sp.bytes_read = B * O * modes * e;
  sp.bytes_written = fused_mid ? 0 : B * O * MXR * NY * e;
  sp.flops = B * O * MXR * inv_y_.plan().flops_per_signal();
  sp.kernel_launches = 1;
}

// --------------------------------------------------------- FusedGemmIfft (C)

FusedGemmIfftPipeline2d::FusedGemmIfftPipeline2d(baseline::Spectral2dProblem prob)
    : Pipeline2dBase(prob, "fused-gemm-ifft-2d") {}

void FusedGemmIfftPipeline2d::run(std::span<const c32> u, std::span<const c32> w,
                                  std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FusedGemmIfftPipeline2d::ensure_variant_buffers(std::size_t gcap) {
  ensure(freq_, gcap * prob_.hidden * prob_.modes_x * prob_.modes_y);
}

void FusedGemmIfftPipeline2d::reserve(std::size_t batch) {
  if (batch != 0) {
    ensure_variant_buffers(fft::fused_mid_enabled() ? mid_group(batch) : batch);
  }
  Pipeline2dBase::reserve(batch);
}

void FusedGemmIfftPipeline2d::middle_group(const MidView& mv, std::span<const c32> w,
                                           std::size_t mx) {
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MY = prob_.modes_y;

  // Separate truncated FFT along Y.
  {
    runtime::Timer t;
    y_forward_rows(fwd_y_.plan(), mv, K, mx, MY, freq_.data());
    counters_.stage("fft-y-trunc").seconds += t.seconds();
  }

  // Fused CGEMM + iFFT-Y epilogue per (batch, x-block).  The gather side
  // reads freq_ rows contiguously; only the scatter into the y-major
  // staging needs the blocked transpose (see kXBlock).
  {
    runtime::Timer t;
    const std::size_t ld = simd::round_up_lanes(MY);
    const bool tiled = mv.out_y != 1;
    const std::size_t xb = tiled ? std::min<std::size_t>(kXBlock, mx) : 1;
    const std::size_t nblk = (mx + xb - 1) / xb;
    runtime::parallel_for(0, mv.count * nblk, runtime::fused_grain(mv.count * nblk),
                          [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
      const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
      const std::span<float> acc = arena.alloc<float>(xb * 2 * O * ld);
      const std::span<c32> row = arena.alloc<c32>(ld);
      const std::span<c32> sbuf = tiled ? arena.alloc<c32>(xb * NY) : std::span<c32>{};
      const std::span<c32> work = arena.alloc<c32>(inv_y_.plan().scratch_elems());
      std::fill(tsplit.begin(), tsplit.end(), 0.0f);
      float* tre = tsplit.data();
      float* tim = tre + kTb * ld;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t bl = i / nblk;
        const std::size_t x0 = (i % nblk) * xb;
        const std::size_t xc = std::min(xb, mx - x0);
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          for (std::size_t xi = 0; xi < xc; ++xi) {
            float* are = acc.data() + xi * 2 * O * ld;
            float* aim = are + O * ld;
            // Gather the k-major tile straight into SoA planes (rows are
            // MY apart within a channel, channels mx*MY apart) — the
            // split is the gather copy the seed already paid.
            for (std::size_t kk = 0; kk < kc; ++kk) {
              simd::split_planes(
                  freq_.data() + ((bl * K + k0 + kk) * mx + x0 + xi) * MY,
                  tre + kk * ld, tim + kk * ld, MY);
            }
            rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
          }
        }
        for (std::size_t o = 0; o < O; ++o) {
          for (std::size_t xi = 0; xi < xc; ++xi) {
            const float* are = acc.data() + xi * 2 * O * ld;
            const float* aim = are + O * ld;
            simd::interleave_planes(are + o * ld, aim + o * ld, row.data(), MY);
            if (tiled) {
              inv_y_.inverse_row(row.data(), sbuf.data() + xi * NY, work);
            } else {
              inv_y_.inverse_row(row.data(), mv.out_row(bl, o, x0 + xi), work, mv.out_y);
            }
          }
          if (tiled) scatter_xblock(mv, bl, o, x0, xc, NY, sbuf.data());
        }
      }
      // tfno-hot-end
    });
    counters_.stage("fused-cgemm-ifft").seconds += t.seconds();
  }
}

void FusedGemmIfftPipeline2d::run_batched(std::span<const c32> u, std::span<const c32> w,
                        std::span<c32> v, std::size_t batch) {
  check_spans(u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const bool fused_mid = fft::fused_mid_enabled();
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;
  const std::size_t modes = MX * prob_.modes_y;

  const std::size_t gcap = fused_mid ? mid_group(B) : B;
  ensure_variant_buffers(gcap);

  run_mid(u, v, B, fused_mid, gcap,
          [&](const MidView& mv) { middle_group(mv, w, MX); });

  const std::uint64_t e = sizeof(c32);
  auto& sy = counters_.stage("fft-y-trunc");
  sy.bytes_read = fused_mid ? 0 : B * K * MX * NY * e;
  sy.bytes_written = B * K * modes * e;
  sy.flops = B * K * MX * fwd_y_.plan().flops_per_signal();
  sy.kernel_launches = 1;
  auto& sf = counters_.stage("fused-cgemm-ifft");
  sf.bytes_read = (B * K * modes + O * K) * e;
  sf.bytes_written = fused_mid ? 0 : B * O * MX * NY * e;
  sf.flops = trace::cgemm_flops(B * modes, O, K) + B * O * MX * inv_y_.plan().flops_per_signal();
  sf.kernel_launches = 1;
}

void FusedGemmIfftPipeline2d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                               std::span<float> v, std::size_t batch) {
  check_spans_real(u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const bool fused_mid = fft::fused_mid_enabled();
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MXR = real_modes_x();
  const std::size_t modes = MXR * prob_.modes_y;

  const std::size_t gcap = fused_mid ? mid_group(B) : B;
  ensure_variant_buffers(gcap);

  run_mid_real(u, v, B, fused_mid, gcap,
               [&](const MidView& mv) { middle_group(mv, w, MXR); });

  const std::uint64_t e = sizeof(c32);
  auto& sy = counters_.stage("fft-y-trunc");
  sy.bytes_read = fused_mid ? 0 : B * K * MXR * NY * e;
  sy.bytes_written = B * K * modes * e;
  sy.flops = B * K * MXR * fwd_y_.plan().flops_per_signal();
  sy.kernel_launches = 1;
  auto& sf = counters_.stage("fused-cgemm-ifft");
  sf.bytes_read = (B * K * modes + O * K) * e;
  sf.bytes_written = fused_mid ? 0 : B * O * MXR * NY * e;
  sf.flops = trace::cgemm_flops(B * modes, O, K) + B * O * MXR * inv_y_.plan().flops_per_signal();
  sf.kernel_launches = 1;
}

// ------------------------------------------------------------ FullyFused (D)

FullyFusedPipeline2d::FullyFusedPipeline2d(baseline::Spectral2dProblem prob)
    : Pipeline2dBase(prob, "fully-fused-2d") {}

void FullyFusedPipeline2d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FullyFusedPipeline2d::middle_group(const MidView& mv, std::span<const c32> w,
                                        std::size_t mx) {
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MY = prob_.modes_y;

  // Fused FFT-Y + CGEMM + iFFT-Y per (batch, x-block): the middle of the
  // pipeline never touches global memory (Figure 9's fused kernel).  On
  // the fused y-major staging, a block of kXBlock x-rows moves through
  // one SIMD transpose per k-tile channel (and back per output channel)
  // so the k-loop always streams contiguous rows.
  runtime::Timer t;
  const std::size_t ld = simd::round_up_lanes(MY);
  const bool tiled = mv.in_y != 1;  // y-major staging on both sides
  const std::size_t xb = tiled ? std::min<std::size_t>(kXBlock, mx) : 1;
  const std::size_t nblk = (mx + xb - 1) / xb;
  runtime::parallel_for(0, mv.count * nblk, runtime::fused_grain(mv.count * nblk),
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    const std::span<c32> tile = arena.alloc<c32>(kTb * ld);
    const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
    const std::span<float> acc = arena.alloc<float>(xb * 2 * O * ld);
    const std::span<c32> row = arena.alloc<c32>(ld);
    const std::span<c32> gbuf =
        tiled ? arena.alloc<c32>(kTb * xb * NY) : std::span<c32>{};
    const std::span<c32> sbuf = tiled ? arena.alloc<c32>(xb * NY) : std::span<c32>{};
    const std::span<c32> work = arena.alloc<c32>(fwd_y_.plan().scratch_elems());
    // rank_update_split streams whole ld-wide rows, so the tile planes'
    // lane padding must be zero; the arena hands out raw storage.
    std::fill(tsplit.begin(), tsplit.end(), 0.0f);
    float* tre = tsplit.data();
    float* tim = tre + kTb * ld;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t bl = i / nblk;
      const std::size_t x0 = (i % nblk) * xb;
      const std::size_t xc = std::min(xb, mx - x0);
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
        const std::size_t kc = std::min(kTb, K - k0);
        if (tiled) gather_xblock(mv, bl, k0, kc, x0, xc, xb, NY, gbuf.data());
        for (std::size_t xi = 0; xi < xc; ++xi) {
          float* are = acc.data() + xi * 2 * O * ld;
          float* aim = are + O * ld;
          if (tiled) {
            fwd_y_.forward_tile(gbuf.data() + xi * NY, xb * NY, kc, tile.data(), ld, work);
          } else {
            fwd_y_.forward_tile(mv.in_row(bl, k0, x0 + xi), mv.chan, kc, tile.data(), ld,
                                work, mv.in_y);
          }
          for (std::size_t kk = 0; kk < kc; ++kk) {
            simd::split_planes(tile.data() + kk * ld, tre + kk * ld, tim + kk * ld, MY);
          }
          rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
        }
      }
      for (std::size_t o = 0; o < O; ++o) {
        for (std::size_t xi = 0; xi < xc; ++xi) {
          const float* are = acc.data() + xi * 2 * O * ld;
          const float* aim = are + O * ld;
          simd::interleave_planes(are + o * ld, aim + o * ld, row.data(), MY);
          if (tiled) {
            inv_y_.inverse_row(row.data(), sbuf.data() + xi * NY, work);
          } else {
            inv_y_.inverse_row(row.data(), mv.out_row(bl, o, x0 + xi), work, mv.out_y);
          }
        }
        if (tiled) scatter_xblock(mv, bl, o, x0, xc, NY, sbuf.data());
      }
    }
    // tfno-hot-end
  });
  counters_.stage("fused-fft-cgemm-ifft").seconds += t.seconds();
}

void FullyFusedPipeline2d::run_batched(std::span<const c32> u, std::span<const c32> w,
                        std::span<c32> v, std::size_t batch) {
  check_spans(u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const bool fused_mid = fft::fused_mid_enabled();
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;
  const std::size_t modes = MX * prob_.modes_y;

  const std::size_t gcap = fused_mid ? mid_group(B) : B;
  run_mid(u, v, B, fused_mid, gcap,
          [&](const MidView& mv) { middle_group(mv, w, MX); });

  const std::uint64_t e = sizeof(c32);
  auto& sf = counters_.stage("fused-fft-cgemm-ifft");
  sf.bytes_read = ((fused_mid ? 0 : B * K * MX * NY) + O * K) * e;
  sf.bytes_written = fused_mid ? 0 : B * O * MX * NY * e;
  sf.flops = B * K * MX * fwd_y_.plan().flops_per_signal() +
             trace::cgemm_flops(B * modes, O, K) +
             B * O * MX * inv_y_.plan().flops_per_signal();
  sf.kernel_launches = 1;
}

void FullyFusedPipeline2d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                            std::span<float> v, std::size_t batch) {
  check_spans_real(u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const bool fused_mid = fft::fused_mid_enabled();
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NY = prob_.ny;
  const std::size_t MXR = real_modes_x();
  const std::size_t modes = MXR * prob_.modes_y;

  const std::size_t gcap = fused_mid ? mid_group(B) : B;
  run_mid_real(u, v, B, fused_mid, gcap,
               [&](const MidView& mv) { middle_group(mv, w, MXR); });

  const std::uint64_t e = sizeof(c32);
  auto& sf = counters_.stage("fused-fft-cgemm-ifft");
  sf.bytes_read = ((fused_mid ? 0 : B * K * MXR * NY) + O * K) * e;
  sf.bytes_written = fused_mid ? 0 : B * O * MXR * NY * e;
  sf.flops = B * K * MXR * fwd_y_.plan().flops_per_signal() +
             trace::cgemm_flops(B * modes, O, K) +
             B * O * MXR * inv_y_.plan().flops_per_signal();
  sf.kernel_launches = 1;
}

}  // namespace turbofno::fused
