// The four TurboFNO 1D pipeline variants (ladder stages A-D).
//
// Shared structure: a "thread block" task owns one batch signal group and
// iterates the hidden dimension in k_tb-channel tiles, exactly like the
// GEMM k-loop (Figure 6(c)-(e)).  What differs between variants is which
// stage boundaries still round-trip through (simulated) global memory.
#pragma once

#include <memory>
#include <span>

#include "baseline/problem.hpp"
#include "fft/real.hpp"
#include "fused/fft_variant.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"
#include "trace/counters.hpp"

namespace turbofno::fused {

// Every variant carries a second, real-spectral lane (run_batched_real):
// real samples in/out, modes/2+1 retained RFFT bins instead of modes, and
// the C2R Hermitian-projecting inverse.  The half-spectrum is a capacity
// subset of the complex lane's workspaces, so both lanes share buffers; the
// real plans are acquired lazily on first use (they require n >= 4, which a
// complex-only pipeline must not be forced to satisfy).

/// Stage A: built-in truncation/zero-padding/pruning, kernels unfused.
/// Three launches: truncated FFT -> batched CGEMM -> zero-padded iFFT; the
/// separate memcopy passes of the baseline disappear.
class FftOptPipeline1d {
 public:
  explicit FftOptPipeline1d(baseline::Spectral1dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);
  /// Grows the workspaces so micro-batches up to `batch` run without a
  /// reallocation; problem().batch becomes the high-water capacity.
  void reserve(std::size_t batch);
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const baseline::Spectral1dProblem& problem() const noexcept { return prob_; }

 private:
  baseline::Spectral1dProblem prob_;
  KLoopFft fwd_;
  EpilogueIfft inv_;
  std::shared_ptr<const fft::RfftPlan> rfwd_;   // lazy: real lane only
  std::shared_ptr<const fft::IrfftPlan> rinv_;  // lazy: real lane only
  AlignedBuffer<c32> freq_;   // [batch, hidden, modes]
  AlignedBuffer<c32> mixed_;  // [batch, out_dim, modes]
  trace::PipelineCounters counters_{"fftopt-1d"};
};

/// Stage B: forward FFT fused with the CGEMM k-loop; iFFT separate.
class FusedFftGemmPipeline1d {
 public:
  explicit FusedFftGemmPipeline1d(baseline::Spectral1dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);
  /// Grows the workspaces so micro-batches up to `batch` run without a
  /// reallocation; problem().batch becomes the high-water capacity.
  void reserve(std::size_t batch);
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const baseline::Spectral1dProblem& problem() const noexcept { return prob_; }

 private:
  baseline::Spectral1dProblem prob_;
  KLoopFft fwd_;
  EpilogueIfft inv_;
  std::shared_ptr<const fft::RfftPlan> rfwd_;
  std::shared_ptr<const fft::IrfftPlan> rinv_;
  AlignedBuffer<c32> mixed_;  // [batch, out_dim, modes]
  trace::PipelineCounters counters_{"fused-fft-gemm-1d"};
};

/// Stage C: forward FFT separate; iFFT fused as the CGEMM epilogue.
class FusedGemmIfftPipeline1d {
 public:
  explicit FusedGemmIfftPipeline1d(baseline::Spectral1dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);
  /// Grows the workspaces so micro-batches up to `batch` run without a
  /// reallocation; problem().batch becomes the high-water capacity.
  void reserve(std::size_t batch);
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const baseline::Spectral1dProblem& problem() const noexcept { return prob_; }

 private:
  baseline::Spectral1dProblem prob_;
  KLoopFft fwd_;
  EpilogueIfft inv_;
  std::shared_ptr<const fft::RfftPlan> rfwd_;
  std::shared_ptr<const fft::IrfftPlan> rinv_;
  AlignedBuffer<c32> freq_;  // [batch, hidden, modes]
  trace::PipelineCounters counters_{"fused-gemm-ifft-1d"};
};

/// Stage D: the fully fused FFT-CGEMM-iFFT pass.  One launch; the only
/// global traffic is the input read, the weight read, and the output write.
class FullyFusedPipeline1d {
 public:
  explicit FullyFusedPipeline1d(baseline::Spectral1dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);
  /// Grows the workspaces so micro-batches up to `batch` run without a
  /// reallocation; problem().batch becomes the high-water capacity.
  void reserve(std::size_t batch);
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const baseline::Spectral1dProblem& problem() const noexcept { return prob_; }

 private:
  baseline::Spectral1dProblem prob_;
  KLoopFft fwd_;
  EpilogueIfft inv_;
  std::shared_ptr<const fft::RfftPlan> rfwd_;
  std::shared_ptr<const fft::IrfftPlan> rinv_;
  trace::PipelineCounters counters_{"fully-fused-1d"};
};

}  // namespace turbofno::fused
