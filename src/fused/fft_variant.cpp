#include "fused/fft_variant.hpp"

namespace turbofno::fused {

namespace {

fft::PlanDesc trunc_desc(std::size_t n, std::size_t modes) {
  fft::PlanDesc d;
  d.n = n;
  d.dir = fft::Direction::Forward;
  d.keep = modes;
  return d;
}

fft::PlanDesc pad_desc(std::size_t n, std::size_t modes) {
  fft::PlanDesc d;
  d.n = n;
  d.dir = fft::Direction::Inverse;
  d.nonzero = modes;
  return d;
}

}  // namespace

KLoopFft::KLoopFft(std::size_t n, std::size_t modes) : modes_(modes), plan_(trunc_desc(n, modes)) {}

void KLoopFft::forward_tile(const c32* u_base, std::size_t channel_stride, std::size_t count,
                            c32* tile, std::size_t tile_ld, std::span<c32> work) const {
  for (std::size_t kk = 0; kk < count; ++kk) {
    plan_.execute_one(u_base + kk * channel_stride, 1, tile + kk * tile_ld, 1, work);
  }
}

EpilogueIfft::EpilogueIfft(std::size_t n, std::size_t modes)
    : modes_(modes), plan_(pad_desc(n, modes)) {}

void EpilogueIfft::inverse_row(const c32* c_row, c32* v_row, std::span<c32> work) const {
  plan_.execute_one(c_row, 1, v_row, 1, work);
}

void rank_update(c32* C, std::size_t ldc, const c32* W, std::size_t ldw, std::size_t k0,
                 const c32* At, std::size_t lda_t, std::size_t out_dim, std::size_t m,
                 std::size_t kc) {
  for (std::size_t o = 0; o < out_dim; ++o) {
    c32* crow = C + o * ldc;
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const c32 wv = W[o * ldw + k0 + kk];
      const c32* arow = At + kk * lda_t;
      for (std::size_t f = 0; f < m; ++f) {
        cmadd(crow[f], wv, arow[f]);
      }
    }
  }
}

}  // namespace turbofno::fused
