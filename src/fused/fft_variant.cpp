#include "fused/fft_variant.hpp"

#include "fft/plan_cache.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fused {

namespace {

fft::PlanDesc trunc_desc(std::size_t n, std::size_t modes) {
  fft::PlanDesc d;
  d.n = n;
  d.dir = fft::Direction::Forward;
  d.keep = modes;
  return d;
}

fft::PlanDesc pad_desc(std::size_t n, std::size_t modes) {
  fft::PlanDesc d;
  d.n = n;
  d.dir = fft::Direction::Inverse;
  d.nonzero = modes;
  return d;
}

}  // namespace

KLoopFft::KLoopFft(std::size_t n, std::size_t modes)
    : modes_(modes), plan_(fft::acquire_plan(trunc_desc(n, modes))) {}

void KLoopFft::forward_tile(const c32* u_base, std::size_t channel_stride, std::size_t count,
                            c32* tile, std::size_t tile_ld, std::span<c32> work,
                            std::ptrdiff_t elem_stride) const {
  for (std::size_t kk = 0; kk < count; ++kk) {
    plan_->execute_one(u_base + kk * channel_stride, elem_stride, tile + kk * tile_ld, 1, work);
  }
}

EpilogueIfft::EpilogueIfft(std::size_t n, std::size_t modes)
    : modes_(modes), plan_(fft::acquire_plan(pad_desc(n, modes))) {}

void EpilogueIfft::inverse_row(const c32* c_row, c32* v_row, std::span<c32> work,
                               std::ptrdiff_t out_elem_stride) const {
  plan_->execute_one(c_row, 1, v_row, out_elem_stride, work);
}

void rank_update(c32* C, std::size_t ldc, const c32* W, std::size_t ldw, std::size_t k0,
                 const c32* At, std::size_t lda_t, std::size_t out_dim, std::size_t m,
                 std::size_t kc) {
  using B = simd::Active;
  for (std::size_t o = 0; o < out_dim; ++o) {
    c32* crow = C + o * ldc;
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const c32 wv = W[o * ldw + k0 + kk];
      const typename B::pvec wvv = B::pset1(wv);
      const c32* arow = At + kk * lda_t;
      std::size_t f = 0;
      for (; f + B::planes <= m; f += B::planes) {
        B::pstore(crow + f, B::pcmadd(B::pload(crow + f), wvv, B::pload(arow + f)));
      }
      for (; f < m; ++f) {
        cmadd(crow[f], wv, arow[f]);
      }
    }
  }
}

void rank_update_split(float* c_re, float* c_im, const c32* W, std::size_t ldw, std::size_t k0,
                       const float* at_re, const float* at_im, std::size_t ld,
                       std::size_t out_dim, std::size_t kc) {
  using B = simd::Active;
  using V = typename B::cvec;
  constexpr std::size_t kStep = 2 * B::lanes;  // two accumulator vectors in flight
  for (std::size_t o = 0; o < out_dim; ++o) {
    float* cre = c_re + o * ld;
    float* cim = c_im + o * ld;
    const c32* wrow = W + o * ldw + k0;
    std::size_t f = 0;
    for (; f + kStep <= ld; f += kStep) {
      V acc0 = B::load_split(cre + f, cim + f);
      V acc1 = B::load_split(cre + f + B::lanes, cim + f + B::lanes);
      for (std::size_t kk = 0; kk < kc; ++kk) {
        const V wv = B::broadcast(wrow[kk]);
        const float* are = at_re + kk * ld + f;
        const float* aim = at_im + kk * ld + f;
        acc0 = B::cmadd(acc0, wv, B::load_split(are, aim));
        acc1 = B::cmadd(acc1, wv, B::load_split(are + B::lanes, aim + B::lanes));
      }
      B::store_split(cre + f, cim + f, acc0);
      B::store_split(cre + f + B::lanes, cim + f + B::lanes, acc1);
    }
    for (; f < ld; f += B::lanes) {
      V acc = B::load_split(cre + f, cim + f);
      for (std::size_t kk = 0; kk < kc; ++kk) {
        acc = B::cmadd(acc, B::broadcast(wrow[kk]),
                       B::load_split(at_re + kk * ld + f, at_im + kk * ld + f));
      }
      B::store_split(cre + f, cim + f, acc);
    }
  }
}

}  // namespace turbofno::fused
