// The optimization ladder of the paper's Table 2:
//
//   PyTorch        the 5-kernel baseline (comparison base)
//   FftOpt      A  built-in truncation / zero padding / pruning, unfused
//   FusedFftGemm B fused forward FFT + CGEMM, separate iFFT
//   FusedGemmIfft C separate forward FFT, fused CGEMM + iFFT epilogue
//   FullyFused   D single fused FFT-CGEMM-iFFT pass
//
// Every variant implements the same interface and refreshes its stage
// counters on each run, so benches compare wall-clock, traffic, and the
// A100 model on identical terms.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "baseline/problem.hpp"
#include "tensor/complex.hpp"
#include "trace/counters.hpp"

namespace turbofno::fused {

enum class Variant { PyTorch, FftOpt, FusedFftGemm, FusedGemmIfft, FullyFused };

[[nodiscard]] std::string_view variant_name(Variant v) noexcept;

/// All five Table 2 rows, in ladder order.
inline constexpr Variant kAllVariants[] = {Variant::PyTorch, Variant::FftOpt,
                                           Variant::FusedFftGemm, Variant::FusedGemmIfft,
                                           Variant::FullyFused};

class SpectralPipeline1d {
 public:
  virtual ~SpectralPipeline1d() = default;
  /// u [batch, hidden, n] -> v [batch, out_dim, n]; w [out_dim, hidden].
  virtual void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) = 0;
  /// Batched serving entry point: runs on the first `batch` signals only
  /// (batch <= problem().batch, which is the planned capacity).  Workspaces,
  /// plans, and packed weight planes are reused across calls, so a server
  /// can execute variable-size micro-batches on one pipeline instance.
  /// Each signal's result is bitwise-identical to a batch-1 run (no
  /// cross-request coupling); `batch == 0` is a no-op.
  virtual void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                           std::size_t batch) = 0;
  [[nodiscard]] virtual const trace::PipelineCounters& counters() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual const baseline::Spectral1dProblem& problem() const noexcept = 0;
};

class SpectralPipeline2d {
 public:
  virtual ~SpectralPipeline2d() = default;
  /// u [batch, hidden, nx, ny] -> v [batch, out_dim, nx, ny].
  virtual void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) = 0;
  /// Batched serving entry point; see SpectralPipeline1d::run_batched.
  virtual void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                           std::size_t batch) = 0;
  [[nodiscard]] virtual const trace::PipelineCounters& counters() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual const baseline::Spectral2dProblem& problem() const noexcept = 0;
};

std::unique_ptr<SpectralPipeline1d> make_pipeline1d(Variant v,
                                                    const baseline::Spectral1dProblem& prob);
std::unique_ptr<SpectralPipeline2d> make_pipeline2d(Variant v,
                                                    const baseline::Spectral2dProblem& prob);

}  // namespace turbofno::fused
