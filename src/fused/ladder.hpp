// The optimization ladder of the paper's Table 2:
//
//   PyTorch        the 5-kernel baseline (comparison base)
//   FftOpt      A  built-in truncation / zero padding / pruning, unfused
//   FusedFftGemm B fused forward FFT + CGEMM, separate iFFT
//   FusedGemmIfft C separate forward FFT, fused CGEMM + iFFT epilogue
//   FullyFused   D single fused FFT-CGEMM-iFFT pass
//
// Every variant implements the same interface and refreshes its stage
// counters on each run, so benches compare wall-clock, traffic, and the
// A100 model on identical terms.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "baseline/problem.hpp"
#include "tensor/complex.hpp"
#include "trace/counters.hpp"

namespace turbofno::fused {

/// The five concrete ladder rows, plus Auto: a deterministic heuristic that
/// resolves to one of the concrete rows from the problem shape alone (see
/// auto_variant_1d/2d).  Auto never reaches a pipeline constructor — the
/// factories resolve it first — so results are bitwise-identical to asking
/// for the chosen concrete variant explicitly.
enum class Variant { PyTorch, FftOpt, FusedFftGemm, FusedGemmIfft, FullyFused, Auto };

[[nodiscard]] std::string_view variant_name(Variant v) noexcept;

/// All five Table 2 rows, in ladder order (Auto is a selector, not a row).
inline constexpr Variant kAllVariants[] = {Variant::PyTorch, Variant::FftOpt,
                                           Variant::FusedFftGemm, Variant::FusedGemmIfft,
                                           Variant::FullyFused};

/// The concrete variant Variant::Auto resolves to for a problem shape.
/// Deterministic and shape-only (no runtime probing): the decision weighs
///   - L2 residency of the fused accumulator/middle tiles: when the per-task
///     working set of the fused k-loop outgrows the cache budget, the
///     streaming unfused kernels (FftOpt) win;
///   - the modes ratio: with shallow truncation (modes > n/2) the per-tile
///     pruned forward FFT saves little over the batched plan execution, so
///     only the pad+iFFT epilogue is worth fusing (FusedGemmIfft);
///   - otherwise the fully fused pass wins (FullyFused).
/// The cache budget defaults to 1 MiB and is overridable via the
/// TURBOFNO_AUTO_L2 environment variable (bytes).
///
/// `real_input` sizes the working set for the real-spectral (RFFT) lane:
/// the retained spectra shrink to modes/2+1 bins (1D) / modes_x/2+1 x-rows
/// (2D), so a shape whose complex working set spills the budget can still
/// resolve to a fused row when run through run_batched_real.
[[nodiscard]] Variant auto_variant_1d(const baseline::Spectral1dProblem& prob,
                                      bool real_input = false) noexcept;
[[nodiscard]] Variant auto_variant_2d(const baseline::Spectral2dProblem& prob,
                                      bool real_input = false) noexcept;

/// `v` itself for concrete variants; the auto_variant_* choice for Auto.
[[nodiscard]] Variant resolve_variant(Variant v, const baseline::Spectral1dProblem& prob,
                                      bool real_input = false) noexcept;
[[nodiscard]] Variant resolve_variant(Variant v, const baseline::Spectral2dProblem& prob,
                                      bool real_input = false) noexcept;

class SpectralPipeline1d {
 public:
  virtual ~SpectralPipeline1d() = default;
  /// u [batch, hidden, n] -> v [batch, out_dim, n]; w [out_dim, hidden].
  /// Runs at the current capacity (problem().batch).
  virtual void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) = 0;
  /// Batched serving entry point: runs on the first `batch` signals.
  /// problem().batch is a capacity *hint*, not a contract: a larger
  /// micro-batch grows the workspaces in place (see reserve) and runs.
  /// Workspaces, plans, and packed weight planes are reused across calls,
  /// so a server can execute variable-size micro-batches on one pipeline
  /// instance.  Each signal's result is bitwise-identical to a batch-1 run
  /// (no cross-request coupling); `batch == 0` is a no-op.
  virtual void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                           std::size_t batch) = 0;
  /// Real-spectral lane: u [batch, hidden, n] and v [batch, out_dim, n] hold
  /// real samples, and the whole spectral schedule runs on the RFFT
  /// half-spectrum — modes/2+1 retained bins instead of modes, a half-length
  /// packed complex transform per signal, and a Hermitian-projecting inverse
  /// (torch.fft.irfft semantics).  Requires n >= 4.  Shares every workspace
  /// with the complex lane (the half-spectrum is a capacity subset), so the
  /// two lanes may be interleaved on one pipeline instance.
  virtual void run_batched_real(std::span<const float> u, std::span<const c32> w,
                                std::span<float> v, std::size_t batch) = 0;
  /// Grows the workspaces to serve micro-batches up to `batch` without a
  /// reallocation on the run path; problem().batch becomes the high-water
  /// capacity.  Never shrinks.  Growth does not perturb results.
  virtual void reserve(std::size_t batch) = 0;
  [[nodiscard]] virtual const trace::PipelineCounters& counters() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual const baseline::Spectral1dProblem& problem() const noexcept = 0;
};

class SpectralPipeline2d {
 public:
  virtual ~SpectralPipeline2d() = default;
  /// u [batch, hidden, nx, ny] -> v [batch, out_dim, nx, ny].
  virtual void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) = 0;
  /// Batched serving entry point; see SpectralPipeline1d::run_batched.
  virtual void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                           std::size_t batch) = 0;
  /// Real-spectral lane; see SpectralPipeline1d::run_batched_real.  The
  /// X axis carries the real transform (modes_x/2+1 retained x-rows via the
  /// two-for-one column-pair X stage); the Y axis stays complex with the
  /// usual modes_y truncation.  Requires nx >= 4.
  virtual void run_batched_real(std::span<const float> u, std::span<const c32> w,
                                std::span<float> v, std::size_t batch) = 0;
  /// Elastic capacity growth; see SpectralPipeline1d::reserve.
  virtual void reserve(std::size_t batch) = 0;
  [[nodiscard]] virtual const trace::PipelineCounters& counters() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual const baseline::Spectral2dProblem& problem() const noexcept = 0;
};

/// Pipeline factories.  Variant::Auto is resolved (resolve_variant) before
/// construction, so the returned pipeline is always a concrete row and its
/// name() reports the resolved choice.  `real_input` only steers that Auto
/// resolution (half-spectrum working set); every returned pipeline serves
/// both the complex and the real lane.
std::unique_ptr<SpectralPipeline1d> make_pipeline1d(Variant v,
                                                    const baseline::Spectral1dProblem& prob,
                                                    bool real_input = false);
std::unique_ptr<SpectralPipeline2d> make_pipeline2d(Variant v,
                                                    const baseline::Spectral2dProblem& prob,
                                                    bool real_input = false);

}  // namespace turbofno::fused
