// The k-loop-aligned FFT variant (paper Section 2.3 / Figure 6).
//
// Instead of batching FFT pencils along the spatial axis, the fused kernel
// iterates one "thread block" (here: one task) along the hidden dimension,
// transforming k_tb channels at a time and depositing their truncated
// spectra straight into the tile that the CGEMM consumes as its streaming
// operand — the CPU analogue of writing the FFT output into the shared-
// memory A block.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "fft/plan.hpp"
#include "tensor/complex.hpp"

namespace turbofno::fused {

/// Forward, output-truncated FFT feeding the GEMM k-loop.
class KLoopFft {
 public:
  KLoopFft(std::size_t n, std::size_t modes);

  /// Transforms `count` channel signals into the k-major tile:
  /// tile[kk * tile_ld + f] = FFT(u_base + kk * channel_stride)[f], f < modes.
  /// `work` needs >= 2n elements.  `elem_stride` is the distance between a
  /// signal's samples (1 for the unfused x-major intermediate; modes_x when
  /// gathering from the fused middle's y-major staging tiles).
  void forward_tile(const c32* u_base, std::size_t channel_stride, std::size_t count, c32* tile,
                    std::size_t tile_ld, std::span<c32> work,
                    std::ptrdiff_t elem_stride = 1) const;

  [[nodiscard]] const fft::FftPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] std::size_t modes() const noexcept { return modes_; }

 private:
  std::size_t modes_;
  // Shared through the process-wide plan cache: every pipeline (and every
  // serving-layer micro-batch bucket) with the same (n, modes) reuses one
  // plan instead of re-deriving op counts and twiddles.
  std::shared_ptr<const fft::FftPlan> plan_;
};

/// Inverse, input-zero-padded FFT consuming GEMM output rows (the CGEMM
/// epilogue of Section 4.2).
class EpilogueIfft {
 public:
  EpilogueIfft(std::size_t n, std::size_t modes);

  /// v_row[0..n) = iFFT(pad_n(c_row[0..modes))).  `work` >= 2n elements.
  /// `out_elem_stride` spaces the output samples (1 for the unfused x-major
  /// intermediate; modes_x when scattering into y-major staging tiles).
  void inverse_row(const c32* c_row, c32* v_row, std::span<c32> work,
                   std::ptrdiff_t out_elem_stride = 1) const;

  [[nodiscard]] const fft::FftPlan& plan() const noexcept { return *plan_; }

 private:
  std::size_t modes_;
  std::shared_ptr<const fft::FftPlan> plan_;
};

/// The fused GEMM rank-kc update: C[O x m] += W[:, k0 .. k0+kc) * At[kc x m].
/// At rows are the freshly produced spectra (B-operand panel); W is the
/// [out_dim x hidden] weight matrix with leading dimension ldw.
/// Interleaved (c32) operands; vectorized along m.
void rank_update(c32* C, std::size_t ldc, const c32* W, std::size_t ldw, std::size_t k0,
                 const c32* At, std::size_t lda_t, std::size_t out_dim, std::size_t m,
                 std::size_t kc);

/// Split-complex rank update — the hot path of the fused pipelines.  The
/// accumulator and the spectra tile are separate re/im float planes with a
/// common leading dimension `ld` (a whole number of SIMD lanes, padding
/// zeroed), so the inner loop is a pure broadcast-FMA stream with no
/// shuffles:
///   c_{re,im}[o * ld + f]  += W[o, k0+kk] * at_{re,im}[kk * ld + f]
/// for all o < out_dim, kk < kc, f < ld.
void rank_update_split(float* c_re, float* c_im, const c32* W, std::size_t ldw, std::size_t k0,
                       const float* at_re, const float* at_im, std::size_t ld,
                       std::size_t out_dim, std::size_t kc);

}  // namespace turbofno::fused
