#include "fused/ladder.hpp"

#include "baseline/pipeline1d.hpp"
#include "baseline/pipeline2d.hpp"
#include "fused/pipeline1d.hpp"
#include "fused/pipeline2d.hpp"

namespace turbofno::fused {

std::string_view variant_name(Variant v) noexcept {
  switch (v) {
    case Variant::PyTorch:
      return "PyTorch";
    case Variant::FftOpt:
      return "FFT+GEMM+iFFT";
    case Variant::FusedFftGemm:
      return "Fused_FFT_GEMM+iFFT";
    case Variant::FusedGemmIfft:
      return "FFT+Fused_GEMM_iFFT";
    case Variant::FullyFused:
      return "Fused_FFT_GEMM_iFFT";
  }
  return "?";
}

namespace {

// Adapters giving every concrete pipeline the common virtual interface.
template <class Impl>
class Adapter1d final : public SpectralPipeline1d {
 public:
  explicit Adapter1d(const baseline::Spectral1dProblem& prob, std::string_view nm)
      : impl_(prob), name_(nm) {}
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) override {
    impl_.run(u, w, v);
  }
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch) override {
    impl_.run_batched(u, w, v, batch);
  }
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept override {
    return impl_.counters();
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const baseline::Spectral1dProblem& problem() const noexcept override {
    return impl_.problem();
  }

 private:
  Impl impl_;
  std::string_view name_;
};

template <class Impl>
class Adapter2d final : public SpectralPipeline2d {
 public:
  explicit Adapter2d(const baseline::Spectral2dProblem& prob, std::string_view nm)
      : impl_(prob), name_(nm) {}
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) override {
    impl_.run(u, w, v);
  }
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch) override {
    impl_.run_batched(u, w, v, batch);
  }
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept override {
    return impl_.counters();
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const baseline::Spectral2dProblem& problem() const noexcept override {
    return impl_.problem();
  }

 private:
  Impl impl_;
  std::string_view name_;
};

}  // namespace

std::unique_ptr<SpectralPipeline1d> make_pipeline1d(Variant v,
                                                    const baseline::Spectral1dProblem& prob) {
  switch (v) {
    case Variant::PyTorch:
      return std::make_unique<Adapter1d<baseline::BaselinePipeline1d>>(prob, variant_name(v));
    case Variant::FftOpt:
      return std::make_unique<Adapter1d<FftOptPipeline1d>>(prob, variant_name(v));
    case Variant::FusedFftGemm:
      return std::make_unique<Adapter1d<FusedFftGemmPipeline1d>>(prob, variant_name(v));
    case Variant::FusedGemmIfft:
      return std::make_unique<Adapter1d<FusedGemmIfftPipeline1d>>(prob, variant_name(v));
    case Variant::FullyFused:
      return std::make_unique<Adapter1d<FullyFusedPipeline1d>>(prob, variant_name(v));
  }
  return nullptr;
}

std::unique_ptr<SpectralPipeline2d> make_pipeline2d(Variant v,
                                                    const baseline::Spectral2dProblem& prob) {
  switch (v) {
    case Variant::PyTorch:
      return std::make_unique<Adapter2d<baseline::BaselinePipeline2d>>(prob, variant_name(v));
    case Variant::FftOpt:
      return std::make_unique<Adapter2d<FftOptPipeline2d>>(prob, variant_name(v));
    case Variant::FusedFftGemm:
      return std::make_unique<Adapter2d<FusedFftGemmPipeline2d>>(prob, variant_name(v));
    case Variant::FusedGemmIfft:
      return std::make_unique<Adapter2d<FusedGemmIfftPipeline2d>>(prob, variant_name(v));
    case Variant::FullyFused:
      return std::make_unique<Adapter2d<FullyFusedPipeline2d>>(prob, variant_name(v));
  }
  return nullptr;
}

}  // namespace turbofno::fused
