#include "fused/ladder.hpp"

#include "baseline/pipeline1d.hpp"
#include "baseline/pipeline2d.hpp"
#include "fused/pipeline1d.hpp"
#include "fused/pipeline2d.hpp"
#include "gemm/config.hpp"
#include "runtime/env.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fused {

std::string_view variant_name(Variant v) noexcept {
  switch (v) {
    case Variant::PyTorch:
      return "PyTorch";
    case Variant::FftOpt:
      return "FFT+GEMM+iFFT";
    case Variant::FusedFftGemm:
      return "Fused_FFT_GEMM+iFFT";
    case Variant::FusedGemmIfft:
      return "FFT+Fused_GEMM_iFFT";
    case Variant::FullyFused:
      return "Fused_FFT_GEMM_iFFT";
    case Variant::Auto:
      return "Auto";
  }
  return "?";
}

namespace {

// Cache budget the Auto heuristic assumes for the fused per-task working
// set.  Half of a typical 2 MiB per-core L2: the fused loops want their
// accumulator planes resident *alongside* the streaming input tile.
std::size_t auto_l2_budget() noexcept {
  static const std::size_t budget = static_cast<std::size_t>(runtime::env_long_clamped(
      "TURBOFNO_AUTO_L2", 1 << 20, 1 << 14, 1 << 28));
  return budget;
}

// Bytes one fused 1D task keeps hot per signal: the split accumulator
// planes (2 float planes of out_dim x ld), the k-tile and its split planes,
// and the FFT scratch (2n c32).  The real lane retains modes/2+1 bins, so
// its accumulator and tile rows are roughly half as wide; the FFT scratch
// term stays 2n c32 (the C2R inverse needs the full extended spectrum plus
// the packed half-length transform's workspace).
std::size_t fused_task_bytes_1d(const baseline::Spectral1dProblem& p,
                                bool real_input) noexcept {
  const std::size_t m = real_input ? p.modes / 2 + 1 : p.modes;
  const std::size_t ld = simd::round_up_lanes(m);
  const std::size_t acc = 2 * p.out_dim * ld * sizeof(float);
  const std::size_t tile =
      gemm::FusedTiles::Ktb * ld * (sizeof(c32) + 2 * sizeof(float));
  const std::size_t fft_work = 2 * p.n * sizeof(c32);
  return acc + tile + fft_work;
}

// Bytes one fused 2D middle task keeps hot per (batch, x-row) group: the
// Y-direction accumulator planes and k-tile (the 1D task shape with
// modes_y rows), which is what iterates inside the staged middle.  The
// real lane halves the X extent, not the Y task, so it is unchanged here.
std::size_t fused_task_bytes_2d(const baseline::Spectral2dProblem& p) noexcept {
  baseline::Spectral1dProblem mid;
  mid.batch = 1;
  mid.hidden = p.hidden;
  mid.out_dim = p.out_dim;
  mid.n = p.ny;
  mid.modes = p.modes_y;
  return fused_task_bytes_1d(mid, false);
}

}  // namespace

Variant auto_variant_1d(const baseline::Spectral1dProblem& p, bool real_input) noexcept {
  if (fused_task_bytes_1d(p, real_input) > auto_l2_budget()) {
    return Variant::FftOpt;  // fused accumulator would thrash; stream instead
  }
  // Shallow truncation: fuse the epilogue only.  The same 2*modes > n test
  // serves both lanes — the real forward is an n/2-point packed transform
  // keeping modes/2+1 of n/2+1 bins, so the kept-to-produced ratio matches
  // the complex lane's modes / n.
  if (2 * p.modes > p.n) {
    return Variant::FusedGemmIfft;
  }
  return Variant::FullyFused;
}

Variant auto_variant_2d(const baseline::Spectral2dProblem& p, bool real_input) noexcept {
  // The fused middle stages a [K+O, ny, mx] tile group between the X
  // stages; if even a single field's staging outgrows the budget, the tile
  // gathers degrade to memory streams and the unfused schedule wins.  The
  // real lane stages modes_x/2+1 x-rows instead of modes_x — the halved
  // footprint lets shapes that spill in the complex lane stay fused.
  const std::size_t mx = real_input ? p.modes_x / 2 + 1 : p.modes_x;
  const std::size_t staging = (p.hidden + p.out_dim) * mx * p.ny * sizeof(c32);
  if (staging > auto_l2_budget() || fused_task_bytes_2d(p) > auto_l2_budget()) {
    return Variant::FftOpt;
  }
  if (2 * p.modes_y > p.ny) {
    return Variant::FusedGemmIfft;
  }
  return Variant::FullyFused;
}

Variant resolve_variant(Variant v, const baseline::Spectral1dProblem& prob,
                        bool real_input) noexcept {
  return v == Variant::Auto ? auto_variant_1d(prob, real_input) : v;
}

Variant resolve_variant(Variant v, const baseline::Spectral2dProblem& prob,
                        bool real_input) noexcept {
  return v == Variant::Auto ? auto_variant_2d(prob, real_input) : v;
}

namespace {

// Adapters giving every concrete pipeline the common virtual interface.
template <class Impl>
class Adapter1d final : public SpectralPipeline1d {
 public:
  explicit Adapter1d(const baseline::Spectral1dProblem& prob, std::string_view nm)
      : impl_(prob), name_(nm) {}
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) override {
    impl_.run(u, w, v);
  }
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch) override {
    impl_.run_batched(u, w, v, batch);
  }
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch) override {
    impl_.run_batched_real(u, w, v, batch);
  }
  void reserve(std::size_t batch) override { impl_.reserve(batch); }
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept override {
    return impl_.counters();
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const baseline::Spectral1dProblem& problem() const noexcept override {
    return impl_.problem();
  }

 private:
  Impl impl_;
  std::string_view name_;
};

template <class Impl>
class Adapter2d final : public SpectralPipeline2d {
 public:
  explicit Adapter2d(const baseline::Spectral2dProblem& prob, std::string_view nm)
      : impl_(prob), name_(nm) {}
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) override {
    impl_.run(u, w, v);
  }
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch) override {
    impl_.run_batched(u, w, v, batch);
  }
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch) override {
    impl_.run_batched_real(u, w, v, batch);
  }
  void reserve(std::size_t batch) override { impl_.reserve(batch); }
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept override {
    return impl_.counters();
  }
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }
  [[nodiscard]] const baseline::Spectral2dProblem& problem() const noexcept override {
    return impl_.problem();
  }

 private:
  Impl impl_;
  std::string_view name_;
};

}  // namespace

std::unique_ptr<SpectralPipeline1d> make_pipeline1d(Variant v,
                                                    const baseline::Spectral1dProblem& prob,
                                                    bool real_input) {
  v = resolve_variant(v, prob, real_input);
  switch (v) {
    case Variant::PyTorch:
      return std::make_unique<Adapter1d<baseline::BaselinePipeline1d>>(prob, variant_name(v));
    case Variant::FftOpt:
      return std::make_unique<Adapter1d<FftOptPipeline1d>>(prob, variant_name(v));
    case Variant::FusedFftGemm:
      return std::make_unique<Adapter1d<FusedFftGemmPipeline1d>>(prob, variant_name(v));
    case Variant::FusedGemmIfft:
      return std::make_unique<Adapter1d<FusedGemmIfftPipeline1d>>(prob, variant_name(v));
    case Variant::FullyFused:
      return std::make_unique<Adapter1d<FullyFusedPipeline1d>>(prob, variant_name(v));
    case Variant::Auto:
      break;  // unreachable: resolve_variant returned a concrete row
  }
  return nullptr;
}

std::unique_ptr<SpectralPipeline2d> make_pipeline2d(Variant v,
                                                    const baseline::Spectral2dProblem& prob,
                                                    bool real_input) {
  v = resolve_variant(v, prob, real_input);
  switch (v) {
    case Variant::PyTorch:
      return std::make_unique<Adapter2d<baseline::BaselinePipeline2d>>(prob, variant_name(v));
    case Variant::FftOpt:
      return std::make_unique<Adapter2d<FftOptPipeline2d>>(prob, variant_name(v));
    case Variant::FusedFftGemm:
      return std::make_unique<Adapter2d<FusedFftGemmPipeline2d>>(prob, variant_name(v));
    case Variant::FusedGemmIfft:
      return std::make_unique<Adapter2d<FusedGemmIfftPipeline2d>>(prob, variant_name(v));
    case Variant::FullyFused:
      return std::make_unique<Adapter2d<FullyFusedPipeline2d>>(prob, variant_name(v));
    case Variant::Auto:
      break;  // unreachable: resolve_variant returned a concrete row
  }
  return nullptr;
}

}  // namespace turbofno::fused
