#include "fused/pipeline1d.hpp"

#include "gemm/batched.hpp"
#include "gemm/config.hpp"
#include "runtime/parallel.hpp"
#include "runtime/timer.hpp"

namespace turbofno::fused {

namespace {

constexpr std::size_t kTb = gemm::FusedTiles::Ktb;  // paper Table 1: k_tb = 8

}  // namespace

// ---------------------------------------------------------------- FftOpt (A)

FftOptPipeline1d::FftOptPipeline1d(baseline::Spectral1dProblem prob)
    : prob_(prob), fwd_(prob.n, prob.modes), inv_(prob.n, prob.modes) {
  prob_.validate();
  freq_.resize(prob_.batch * prob_.hidden * prob_.modes);
  mixed_.resize(prob_.batch * prob_.out_dim * prob_.modes);
}

void FftOptPipeline1d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  const std::size_t B = prob_.batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;
  counters_.clear();

  {
    runtime::Timer t;
    fwd_.plan().execute(u, freq_.span(), B * K);
    auto& sc = counters_.stage("fft-trunc");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(c32);
    sc.bytes_written = B * K * M * sizeof(c32);  // only the kept bins
    sc.flops = B * K * fwd_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;
    strides.b = static_cast<std::ptrdiff_t>(K * M);
    strides.c = static_cast<std::ptrdiff_t>(O * M);
    gemm::cgemm_batched(O, M, K, c32{1.0f, 0.0f}, w.data(), K, freq_.data(), M,
                        c32{0.0f, 0.0f}, mixed_.data(), M, B, strides);
    auto& sc = counters_.stage("cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * M + O * K) * sizeof(c32);
    sc.bytes_written = B * O * M * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * M, O, K);
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    inv_.plan().execute(mixed_.span(), v, B * O);
    auto& sc = counters_.stage("ifft-pad");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * M * sizeof(c32);  // only the stored prefix
    sc.bytes_written = B * O * N * sizeof(c32);
    sc.flops = B * O * inv_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }
}

// --------------------------------------------------------- FusedFftGemm (B)

FusedFftGemmPipeline1d::FusedFftGemmPipeline1d(baseline::Spectral1dProblem prob)
    : prob_(prob), fwd_(prob.n, prob.modes), inv_(prob.n, prob.modes) {
  prob_.validate();
  mixed_.resize(prob_.batch * prob_.out_dim * prob_.modes);
}

void FusedFftGemmPipeline1d::run(std::span<const c32> u, std::span<const c32> w,
                                 std::span<c32> v) {
  const std::size_t B = prob_.batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;
  counters_.clear();

  {
    runtime::Timer t;
    runtime::parallel_for(0, B, 1, [&](std::size_t lo, std::size_t hi) {
      AlignedBuffer<c32> tile(kTb * M);
      AlignedBuffer<c32> acc(O * M);
      AlignedBuffer<c32> work(2 * N);
      for (std::size_t b = lo; b < hi; ++b) {
        acc.zero();
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          // FFT directly into the GEMM operand tile (the shared-memory A
          // block of the paper) ...
          fwd_.forward_tile(u.data() + (b * K + k0) * N, N, kc, tile.data(), M, work.span());
          // ... and the MAC phase of the k-loop.
          rank_update(acc.data(), M, w.data(), K, k0, tile.data(), M, O, M, kc);
        }
        std::copy_n(acc.data(), O * M, mixed_.data() + b * O * M);
      }
    });
    auto& sc = counters_.stage("fused-fft-cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * N + O * K) * sizeof(c32);
    sc.bytes_written = B * O * M * sizeof(c32);
    sc.flops = B * K * fwd_.plan().flops_per_signal() + trace::cgemm_flops(B * M, O, K);
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    inv_.plan().execute(mixed_.span(), v, B * O);
    auto& sc = counters_.stage("ifft-pad");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * M * sizeof(c32);
    sc.bytes_written = B * O * N * sizeof(c32);
    sc.flops = B * O * inv_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }
}

// --------------------------------------------------------- FusedGemmIfft (C)

FusedGemmIfftPipeline1d::FusedGemmIfftPipeline1d(baseline::Spectral1dProblem prob)
    : prob_(prob), fwd_(prob.n, prob.modes), inv_(prob.n, prob.modes) {
  prob_.validate();
  freq_.resize(prob_.batch * prob_.hidden * prob_.modes);
}

void FusedGemmIfftPipeline1d::run(std::span<const c32> u, std::span<const c32> w,
                                  std::span<c32> v) {
  const std::size_t B = prob_.batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;
  counters_.clear();

  {
    runtime::Timer t;
    fwd_.plan().execute(u, freq_.span(), B * K);
    auto& sc = counters_.stage("fft-trunc");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(c32);
    sc.bytes_written = B * K * M * sizeof(c32);
    sc.flops = B * K * fwd_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    runtime::parallel_for(0, B, 1, [&](std::size_t lo, std::size_t hi) {
      AlignedBuffer<c32> acc(O * M);
      AlignedBuffer<c32> work(2 * N);
      for (std::size_t b = lo; b < hi; ++b) {
        acc.zero();
        // The stored spectra already have the k-major tile layout; the GEMM
        // streams them without any copy.
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          rank_update(acc.data(), M, w.data(), K, k0, freq_.data() + (b * K + k0) * M, M, O, M,
                      kc);
        }
        // iFFT epilogue straight out of the accumulator tile (the paper's
        // Figure 6(f): iFFT on the result matrix along the output dim).
        for (std::size_t o = 0; o < O; ++o) {
          inv_.inverse_row(acc.data() + o * M, v.data() + (b * O + o) * N, work.span());
        }
      }
    });
    auto& sc = counters_.stage("fused-cgemm-ifft");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * M + O * K) * sizeof(c32);
    sc.bytes_written = B * O * N * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * M, O, K) + B * O * inv_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }
}

// ------------------------------------------------------------ FullyFused (D)

FullyFusedPipeline1d::FullyFusedPipeline1d(baseline::Spectral1dProblem prob)
    : prob_(prob), fwd_(prob.n, prob.modes), inv_(prob.n, prob.modes) {
  prob_.validate();
}

void FullyFusedPipeline1d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  const std::size_t B = prob_.batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;
  counters_.clear();

  runtime::Timer t;
  runtime::parallel_for(0, B, 1, [&](std::size_t lo, std::size_t hi) {
    AlignedBuffer<c32> tile(kTb * M);  // FFT output == GEMM A-operand tile
    AlignedBuffer<c32> acc(O * M);     // C tile, never leaves cache
    AlignedBuffer<c32> work(2 * N);
    for (std::size_t b = lo; b < hi; ++b) {
      acc.zero();
      for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
        const std::size_t kc = std::min(kTb, K - k0);
        fwd_.forward_tile(u.data() + (b * K + k0) * N, N, kc, tile.data(), M, work.span());
        rank_update(acc.data(), M, w.data(), K, k0, tile.data(), M, O, M, kc);
      }
      for (std::size_t o = 0; o < O; ++o) {
        inv_.inverse_row(acc.data() + o * M, v.data() + (b * O + o) * N, work.span());
      }
    }
  });

  auto& sc = counters_.stage("fused-fft-cgemm-ifft");
  sc.seconds = t.seconds();
  sc.bytes_read = (B * K * N + O * K) * sizeof(c32);
  sc.bytes_written = B * O * N * sizeof(c32);
  sc.flops = B * K * fwd_.plan().flops_per_signal() + trace::cgemm_flops(B * M, O, K) +
             B * O * inv_.plan().flops_per_signal();
  sc.kernel_launches = 1;
}

}  // namespace turbofno::fused
