#include "fused/pipeline1d.hpp"

#include <algorithm>
#include <stdexcept>

#include "fft/plan_cache.hpp"
#include "gemm/batched.hpp"
#include "gemm/config.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "runtime/timer.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fused {

namespace {

constexpr std::size_t kTb = gemm::FusedTiles::Ktb;  // paper Table 1: k_tb = 8

void check_spans(const baseline::Spectral1dProblem& prob, std::span<const c32> u,
                 std::span<c32> v, std::size_t batch) {
  baseline::check_batch_spans(u.size(), v.size(), prob.hidden * prob.n, prob.out_dim * prob.n,
                              batch, "pipeline1d");
}

void check_spans_real(const baseline::Spectral1dProblem& prob, std::span<const float> u,
                      std::span<float> v, std::size_t batch) {
  baseline::check_batch_spans(u.size(), v.size(), prob.hidden * prob.n, prob.out_dim * prob.n,
                              batch, "pipeline1d(real)");
}

// The real lane retains the RFFT half-spectrum: modes/2+1 of the modes
// lowest bins.  Always <= modes, so the complex lane's workspaces cover it.
std::size_t real_modes(std::size_t modes) noexcept { return modes / 2 + 1; }

// Lazy acquisition keeps complex-only pipelines free of the RFFT's n >= 4
// requirement.  rfwd is assigned last so it doubles as the "ready" flag
// even if the inverse acquisition throws.
void ensure_real_plans(const baseline::Spectral1dProblem& prob,
                       std::shared_ptr<const fft::RfftPlan>& rfwd,
                       std::shared_ptr<const fft::IrfftPlan>& rinv) {
  if (rfwd) return;
  const std::size_t mr = real_modes(prob.modes);
  rinv = fft::acquire_irfft_plan(prob.n, mr);
  rfwd = fft::acquire_rfft_plan(prob.n, mr);
}

}  // namespace

// ---------------------------------------------------------------- FftOpt (A)

FftOptPipeline1d::FftOptPipeline1d(baseline::Spectral1dProblem prob)
    : prob_(prob), fwd_(prob.n, prob.modes), inv_(prob.n, prob.modes) {
  prob_.validate();
  freq_.resize(prob_.batch * prob_.hidden * prob_.modes);
  mixed_.resize(prob_.batch * prob_.out_dim * prob_.modes);
}

void FftOptPipeline1d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FftOptPipeline1d::reserve(std::size_t batch) {
  if (batch <= prob_.batch) return;
  // Grow before bumping the capacity mark: a bad_alloc mid-reserve must
  // not leave problem().batch claiming never-grown workspaces.
  freq_.resize(batch * prob_.hidden * prob_.modes);
  mixed_.resize(batch * prob_.out_dim * prob_.modes);
  prob_.batch = batch;
}

void FftOptPipeline1d::run_batched(std::span<const c32> u, std::span<const c32> w,
                                   std::span<c32> v, std::size_t batch) {
  check_spans(prob_, u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;

  {
    runtime::Timer t;
    fwd_.plan().execute(u, freq_.span(), B * K);
    auto& sc = counters_.stage("fft-trunc");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(c32);
    sc.bytes_written = B * K * M * sizeof(c32);  // only the kept bins
    sc.flops = B * K * fwd_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;
    strides.b = static_cast<std::ptrdiff_t>(K * M);
    strides.c = static_cast<std::ptrdiff_t>(O * M);
    gemm::cgemm_batched(O, M, K, c32{1.0f, 0.0f}, w.data(), K, freq_.data(), M,
                        c32{0.0f, 0.0f}, mixed_.data(), M, B, strides);
    auto& sc = counters_.stage("cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * M + O * K) * sizeof(c32);
    sc.bytes_written = B * O * M * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * M, O, K);
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    inv_.plan().execute(mixed_.span(), v, B * O);
    auto& sc = counters_.stage("ifft-pad");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * M * sizeof(c32);  // only the stored prefix
    sc.bytes_written = B * O * N * sizeof(c32);
    sc.flops = B * O * inv_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }
}

void FftOptPipeline1d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                        std::span<float> v, std::size_t batch) {
  check_spans_real(prob_, u, v, batch);
  ensure_real_plans(prob_, rfwd_, rinv_);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t MR = real_modes(prob_.modes);

  {
    runtime::Timer t;
    rfwd_->execute(u.first(B * K * N), freq_.span().first(B * K * MR), B * K);
    auto& sc = counters_.stage("fft-trunc");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(float);
    sc.bytes_written = B * K * MR * sizeof(c32);  // only the kept half-spectrum
    sc.flops = B * K * rfwd_->flops_per_signal();
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;
    strides.b = static_cast<std::ptrdiff_t>(K * MR);
    strides.c = static_cast<std::ptrdiff_t>(O * MR);
    gemm::cgemm_batched(O, MR, K, c32{1.0f, 0.0f}, w.data(), K, freq_.data(), MR,
                        c32{0.0f, 0.0f}, mixed_.data(), MR, B, strides);
    auto& sc = counters_.stage("cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * MR + O * K) * sizeof(c32);
    sc.bytes_written = B * O * MR * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * MR, O, K);
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    rinv_->execute(mixed_.span().first(B * O * MR), v.first(B * O * N), B * O);
    auto& sc = counters_.stage("ifft-pad");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * MR * sizeof(c32);  // only the stored prefix
    sc.bytes_written = B * O * N * sizeof(float);
    sc.flops = B * O * rinv_->flops_per_signal();
    sc.kernel_launches = 1;
  }
}

// --------------------------------------------------------- FusedFftGemm (B)

FusedFftGemmPipeline1d::FusedFftGemmPipeline1d(baseline::Spectral1dProblem prob)
    : prob_(prob), fwd_(prob.n, prob.modes), inv_(prob.n, prob.modes) {
  prob_.validate();
  mixed_.resize(prob_.batch * prob_.out_dim * prob_.modes);
}

void FusedFftGemmPipeline1d::run(std::span<const c32> u, std::span<const c32> w,
                                 std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FusedFftGemmPipeline1d::reserve(std::size_t batch) {
  if (batch <= prob_.batch) return;
  mixed_.resize(batch * prob_.out_dim * prob_.modes);
  prob_.batch = batch;
}

void FusedFftGemmPipeline1d::run_batched(std::span<const c32> u, std::span<const c32> w,
                                         std::span<c32> v, std::size_t batch) {
  check_spans(prob_, u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;

  {
    runtime::Timer t;
    const std::size_t ld = simd::round_up_lanes(M);
    runtime::parallel_for(0, B, 1, [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
      const std::span<c32> tile = arena.alloc<c32>(kTb * ld);
      const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);  // split tile planes
      const std::span<float> acc = arena.alloc<float>(2 * O * ld);  // split accumulator planes
      const std::span<c32> work = arena.alloc<c32>(fwd_.plan().scratch_elems());
      std::fill(tsplit.begin(), tsplit.end(), 0.0f);  // lane padding must stay zero
      float* tre = tsplit.data();
      float* tim = tre + kTb * ld;
      float* are = acc.data();
      float* aim = are + O * ld;
      for (std::size_t b = lo; b < hi; ++b) {
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          // FFT directly into the GEMM operand tile (the shared-memory A
          // block of the paper), split into SoA planes for the SIMD MAC ...
          fwd_.forward_tile(u.data() + (b * K + k0) * N, N, kc, tile.data(), ld, work);
          for (std::size_t kk = 0; kk < kc; ++kk) {
            simd::split_planes(tile.data() + kk * ld, tre + kk * ld, tim + kk * ld, M);
          }
          // ... and the MAC phase of the k-loop.
          rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
        }
        for (std::size_t o = 0; o < O; ++o) {
          simd::interleave_planes(are + o * ld, aim + o * ld, mixed_.data() + (b * O + o) * M, M);
        }
      }
      // tfno-hot-end
    });
    auto& sc = counters_.stage("fused-fft-cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * N + O * K) * sizeof(c32);
    sc.bytes_written = B * O * M * sizeof(c32);
    sc.flops = B * K * fwd_.plan().flops_per_signal() + trace::cgemm_flops(B * M, O, K);
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    inv_.plan().execute(mixed_.span(), v, B * O);
    auto& sc = counters_.stage("ifft-pad");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * M * sizeof(c32);
    sc.bytes_written = B * O * N * sizeof(c32);
    sc.flops = B * O * inv_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }
}

void FusedFftGemmPipeline1d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                              std::span<float> v, std::size_t batch) {
  check_spans_real(prob_, u, v, batch);
  ensure_real_plans(prob_, rfwd_, rinv_);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t MR = real_modes(prob_.modes);

  {
    runtime::Timer t;
    const std::size_t ld = simd::round_up_lanes(MR);
    runtime::parallel_for(0, B, 1, [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
      const std::span<c32> tile = arena.alloc<c32>(kTb * ld);
      const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
      const std::span<float> acc = arena.alloc<float>(2 * O * ld);
      const std::span<c32> work = arena.alloc<c32>(rfwd_->scratch_elems());
      std::fill(tsplit.begin(), tsplit.end(), 0.0f);  // lane padding must stay zero
      float* tre = tsplit.data();
      float* tim = tre + kTb * ld;
      float* are = acc.data();
      float* aim = are + O * ld;
      for (std::size_t b = lo; b < hi; ++b) {
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          // RFFT directly into the GEMM operand tile: one packed half-length
          // transform per channel, untangled to the MR kept bins.
          for (std::size_t kk = 0; kk < kc; ++kk) {
            rfwd_->execute_one(u.data() + (b * K + k0 + kk) * N, 1, tile.data() + kk * ld, 1,
                               work);
            simd::split_planes(tile.data() + kk * ld, tre + kk * ld, tim + kk * ld, MR);
          }
          rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
        }
        for (std::size_t o = 0; o < O; ++o) {
          simd::interleave_planes(are + o * ld, aim + o * ld, mixed_.data() + (b * O + o) * MR,
                                  MR);
        }
      }
      // tfno-hot-end
    });
    auto& sc = counters_.stage("fused-fft-cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(float) + O * K * sizeof(c32);
    sc.bytes_written = B * O * MR * sizeof(c32);
    sc.flops = B * K * rfwd_->flops_per_signal() + trace::cgemm_flops(B * MR, O, K);
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    rinv_->execute(mixed_.span().first(B * O * MR), v.first(B * O * N), B * O);
    auto& sc = counters_.stage("ifft-pad");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * MR * sizeof(c32);
    sc.bytes_written = B * O * N * sizeof(float);
    sc.flops = B * O * rinv_->flops_per_signal();
    sc.kernel_launches = 1;
  }
}

// --------------------------------------------------------- FusedGemmIfft (C)

FusedGemmIfftPipeline1d::FusedGemmIfftPipeline1d(baseline::Spectral1dProblem prob)
    : prob_(prob), fwd_(prob.n, prob.modes), inv_(prob.n, prob.modes) {
  prob_.validate();
  freq_.resize(prob_.batch * prob_.hidden * prob_.modes);
}

void FusedGemmIfftPipeline1d::run(std::span<const c32> u, std::span<const c32> w,
                                  std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FusedGemmIfftPipeline1d::reserve(std::size_t batch) {
  if (batch <= prob_.batch) return;
  freq_.resize(batch * prob_.hidden * prob_.modes);
  prob_.batch = batch;
}

void FusedGemmIfftPipeline1d::run_batched(std::span<const c32> u, std::span<const c32> w,
                                          std::span<c32> v, std::size_t batch) {
  check_spans(prob_, u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;

  {
    runtime::Timer t;
    fwd_.plan().execute(u, freq_.span(), B * K);
    auto& sc = counters_.stage("fft-trunc");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(c32);
    sc.bytes_written = B * K * M * sizeof(c32);
    sc.flops = B * K * fwd_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    const std::size_t ld = simd::round_up_lanes(M);
    runtime::parallel_for(0, B, 1, [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
      const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
      const std::span<float> acc = arena.alloc<float>(2 * O * ld);
      const std::span<c32> row = arena.alloc<c32>(ld);
      const std::span<c32> work = arena.alloc<c32>(inv_.plan().scratch_elems());
      std::fill(tsplit.begin(), tsplit.end(), 0.0f);
      float* tre = tsplit.data();
      float* tim = tre + kTb * ld;
      float* are = acc.data();
      float* aim = are + O * ld;
      for (std::size_t b = lo; b < hi; ++b) {
        std::fill(acc.begin(), acc.end(), 0.0f);
        // The stored spectra already have the k-major tile layout; splitting
        // them into SoA planes is the only copy the GEMM pays.
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          for (std::size_t kk = 0; kk < kc; ++kk) {
            simd::split_planes(freq_.data() + (b * K + k0 + kk) * M, tre + kk * ld,
                               tim + kk * ld, M);
          }
          rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
        }
        // iFFT epilogue straight out of the accumulator tile (the paper's
        // Figure 6(f): iFFT on the result matrix along the output dim).
        for (std::size_t o = 0; o < O; ++o) {
          simd::interleave_planes(are + o * ld, aim + o * ld, row.data(), M);
          inv_.inverse_row(row.data(), v.data() + (b * O + o) * N, work);
        }
      }
      // tfno-hot-end
    });
    auto& sc = counters_.stage("fused-cgemm-ifft");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * M + O * K) * sizeof(c32);
    sc.bytes_written = B * O * N * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * M, O, K) + B * O * inv_.plan().flops_per_signal();
    sc.kernel_launches = 1;
  }
}

void FusedGemmIfftPipeline1d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                               std::span<float> v, std::size_t batch) {
  check_spans_real(prob_, u, v, batch);
  ensure_real_plans(prob_, rfwd_, rinv_);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t MR = real_modes(prob_.modes);

  {
    runtime::Timer t;
    rfwd_->execute(u.first(B * K * N), freq_.span().first(B * K * MR), B * K);
    auto& sc = counters_.stage("fft-trunc");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(float);
    sc.bytes_written = B * K * MR * sizeof(c32);
    sc.flops = B * K * rfwd_->flops_per_signal();
    sc.kernel_launches = 1;
  }

  {
    runtime::Timer t;
    const std::size_t ld = simd::round_up_lanes(MR);
    runtime::parallel_for(0, B, 1, [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
      const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
      const std::span<float> acc = arena.alloc<float>(2 * O * ld);
      const std::span<c32> row = arena.alloc<c32>(ld);
      const std::span<c32> work = arena.alloc<c32>(rinv_->scratch_elems());
      std::fill(tsplit.begin(), tsplit.end(), 0.0f);
      float* tre = tsplit.data();
      float* tim = tre + kTb * ld;
      float* are = acc.data();
      float* aim = are + O * ld;
      for (std::size_t b = lo; b < hi; ++b) {
        std::fill(acc.begin(), acc.end(), 0.0f);
        for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
          const std::size_t kc = std::min(kTb, K - k0);
          for (std::size_t kk = 0; kk < kc; ++kk) {
            simd::split_planes(freq_.data() + (b * K + k0 + kk) * MR, tre + kk * ld,
                               tim + kk * ld, MR);
          }
          rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
        }
        // C2R epilogue straight out of the accumulator tile: Hermitian
        // extension + half-length inverse, real samples out.
        for (std::size_t o = 0; o < O; ++o) {
          simd::interleave_planes(are + o * ld, aim + o * ld, row.data(), MR);
          rinv_->execute_one(row.data(), 1, v.data() + (b * O + o) * N, 1, work);
        }
      }
      // tfno-hot-end
    });
    auto& sc = counters_.stage("fused-cgemm-ifft");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * MR + O * K) * sizeof(c32);
    sc.bytes_written = B * O * N * sizeof(float);
    sc.flops = trace::cgemm_flops(B * MR, O, K) + B * O * rinv_->flops_per_signal();
    sc.kernel_launches = 1;
  }
}

// ------------------------------------------------------------ FullyFused (D)

FullyFusedPipeline1d::FullyFusedPipeline1d(baseline::Spectral1dProblem prob)
    : prob_(prob), fwd_(prob.n, prob.modes), inv_(prob.n, prob.modes) {
  prob_.validate();
}

void FullyFusedPipeline1d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void FullyFusedPipeline1d::reserve(std::size_t batch) {
  // No batch-sized workspaces: per-task state lives in the thread arenas.
  if (batch > prob_.batch) prob_.batch = batch;
}

void FullyFusedPipeline1d::run_batched(std::span<const c32> u, std::span<const c32> w,
                                       std::span<c32> v, std::size_t batch) {
  check_spans(prob_, u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;

  runtime::Timer t;
  const std::size_t ld = simd::round_up_lanes(M);
  runtime::parallel_for(0, B, 1, [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    const std::span<c32> tile = arena.alloc<c32>(kTb * ld);  // FFT out == GEMM A tile
    const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);  // its SoA planes
    const std::span<float> acc = arena.alloc<float>(2 * O * ld);  // C planes, cache-resident
    const std::span<c32> row = arena.alloc<c32>(ld);
    const std::span<c32> work = arena.alloc<c32>(fwd_.plan().scratch_elems());
    std::fill(tsplit.begin(), tsplit.end(), 0.0f);
    float* tre = tsplit.data();
    float* tim = tre + kTb * ld;
    float* are = acc.data();
    float* aim = are + O * ld;
    for (std::size_t b = lo; b < hi; ++b) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
        const std::size_t kc = std::min(kTb, K - k0);
        fwd_.forward_tile(u.data() + (b * K + k0) * N, N, kc, tile.data(), ld, work);
        for (std::size_t kk = 0; kk < kc; ++kk) {
          simd::split_planes(tile.data() + kk * ld, tre + kk * ld, tim + kk * ld, M);
        }
        rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
      }
      for (std::size_t o = 0; o < O; ++o) {
        simd::interleave_planes(are + o * ld, aim + o * ld, row.data(), M);
        inv_.inverse_row(row.data(), v.data() + (b * O + o) * N, work);
      }
    }
    // tfno-hot-end
  });

  auto& sc = counters_.stage("fused-fft-cgemm-ifft");
  sc.seconds = t.seconds();
  sc.bytes_read = (B * K * N + O * K) * sizeof(c32);
  sc.bytes_written = B * O * N * sizeof(c32);
  sc.flops = B * K * fwd_.plan().flops_per_signal() + trace::cgemm_flops(B * M, O, K) +
             B * O * inv_.plan().flops_per_signal();
  sc.kernel_launches = 1;
}

void FullyFusedPipeline1d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                            std::span<float> v, std::size_t batch) {
  check_spans_real(prob_, u, v, batch);
  ensure_real_plans(prob_, rfwd_, rinv_);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t MR = real_modes(prob_.modes);

  runtime::Timer t;
  const std::size_t ld = simd::round_up_lanes(MR);
  const std::size_t work_elems = std::max(rfwd_->scratch_elems(), rinv_->scratch_elems());
  runtime::parallel_for(0, B, 1, [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    const std::span<c32> tile = arena.alloc<c32>(kTb * ld);  // RFFT out == GEMM A tile
    const std::span<float> tsplit = arena.alloc<float>(2 * kTb * ld);
    const std::span<float> acc = arena.alloc<float>(2 * O * ld);
    const std::span<c32> row = arena.alloc<c32>(ld);
    const std::span<c32> work = arena.alloc<c32>(work_elems);
    std::fill(tsplit.begin(), tsplit.end(), 0.0f);
    float* tre = tsplit.data();
    float* tim = tre + kTb * ld;
    float* are = acc.data();
    float* aim = are + O * ld;
    for (std::size_t b = lo; b < hi; ++b) {
      std::fill(acc.begin(), acc.end(), 0.0f);
      for (std::size_t k0 = 0; k0 < K; k0 += kTb) {
        const std::size_t kc = std::min(kTb, K - k0);
        for (std::size_t kk = 0; kk < kc; ++kk) {
          rfwd_->execute_one(u.data() + (b * K + k0 + kk) * N, 1, tile.data() + kk * ld, 1,
                             work);
          simd::split_planes(tile.data() + kk * ld, tre + kk * ld, tim + kk * ld, MR);
        }
        rank_update_split(are, aim, w.data(), K, k0, tre, tim, ld, O, kc);
      }
      for (std::size_t o = 0; o < O; ++o) {
        simd::interleave_planes(are + o * ld, aim + o * ld, row.data(), MR);
        rinv_->execute_one(row.data(), 1, v.data() + (b * O + o) * N, 1, work);
      }
    }
    // tfno-hot-end
  });

  auto& sc = counters_.stage("fused-fft-cgemm-ifft");
  sc.seconds = t.seconds();
  sc.bytes_read = B * K * N * sizeof(float) + O * K * sizeof(c32);
  sc.bytes_written = B * O * N * sizeof(float);
  sc.flops = B * K * rfwd_->flops_per_signal() + trace::cgemm_flops(B * MR, O, K) +
             B * O * rinv_->flops_per_signal();
  sc.kernel_launches = 1;
}

}  // namespace turbofno::fused
