// The four TurboFNO 2D pipeline variants (ladder stages A-D).
//
// 2D structure (Figure 4): the first FFT stage runs along DimX with
// truncation to modes_x rows; the middle of the pipeline — FFT along DimY,
// CGEMM over the hidden dim, iFFT along DimY — is where fusion applies; the
// last stage is the zero-padded inverse FFT along DimX.
#pragma once

#include <memory>
#include <span>

#include "baseline/problem.hpp"
#include "fft/plan.hpp"
#include "fused/fft_variant.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"
#include "trace/counters.hpp"

namespace turbofno::fused {

/// Common substrate for the 2D variants: the along-X truncated/padded
/// stages and the buffers every variant needs.
class Pipeline2dBase {
 public:
  explicit Pipeline2dBase(baseline::Spectral2dProblem prob, const char* counters_name);
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const baseline::Spectral2dProblem& problem() const noexcept { return prob_; }

 protected:
  /// Stage 1: truncated forward FFT along X: u [B,K,nx,ny] -> dst
  /// [B,K,mx,ny].  Writes only modes_x/nx of the rows (Fig 4's saving).
  /// `batch` <= prob_.batch selects the micro-batch actually present.
  void run_fft_x_trunc(std::span<const c32> u, std::span<c32> dst, std::size_t batch);
  /// Final stage: zero-padded inverse FFT along X: src [B,O,mx,ny] ->
  /// v [B,O,nx,ny].
  void run_ifft_x_pad(std::span<const c32> src, std::span<c32> v, std::size_t batch);
  /// Throws when a micro-batch exceeds the planned capacity.
  void check_batch(std::size_t batch) const;

  baseline::Spectral2dProblem prob_;
  // X-stage plans come from the process-wide cache so concurrent pipelines
  // (one per serving-layer model) share them.
  std::shared_ptr<const fft::FftPlan> fft_x_trunc_;
  std::shared_ptr<const fft::FftPlan> ifft_x_pad_;
  KLoopFft fwd_y_;      // truncated FFT along Y feeding the GEMM k-loop
  EpilogueIfft inv_y_;  // zero-padded iFFT along Y (CGEMM epilogue)
  AlignedBuffer<c32> mid_in_;   // [B, K, mx, ny] after the X stage
  AlignedBuffer<c32> mid_out_;  // [B, O, mx, ny] before the X inverse
  trace::PipelineCounters counters_;
};

/// Stage A: every kernel truncated/pruned, nothing fused (5 launches).
class FftOptPipeline2d : public Pipeline2dBase {
 public:
  explicit FftOptPipeline2d(baseline::Spectral2dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);

 private:
  AlignedBuffer<c32> freq_;   // [B, K, mx, my]
  AlignedBuffer<c32> mixed_;  // [B, O, mx, my]
};

/// Stage B: FFT-Y fused with CGEMM; iFFT-Y separate (4 launches).
class FusedFftGemmPipeline2d : public Pipeline2dBase {
 public:
  explicit FusedFftGemmPipeline2d(baseline::Spectral2dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);

 private:
  AlignedBuffer<c32> mixed_;  // [B, O, mx, my]
};

/// Stage C: FFT-Y separate; CGEMM fused with the iFFT-Y epilogue.
class FusedGemmIfftPipeline2d : public Pipeline2dBase {
 public:
  explicit FusedGemmIfftPipeline2d(baseline::Spectral2dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);

 private:
  AlignedBuffer<c32> freq_;  // [B, K, mx, my]
};

/// Stage D: fused FFT-Y + CGEMM + iFFT-Y between the two X stages
/// (3 launches).
class FullyFusedPipeline2d : public Pipeline2dBase {
 public:
  explicit FullyFusedPipeline2d(baseline::Spectral2dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
};

}  // namespace turbofno::fused
