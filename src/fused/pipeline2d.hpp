// The four TurboFNO 2D pipeline variants (ladder stages A-D).
//
// 2D structure (Figure 4): the first FFT stage runs along DimX with
// truncation to modes_x rows; the middle of the pipeline — FFT along DimY,
// CGEMM over the hidden dim, iFFT along DimY — is where fusion applies; the
// last stage is the zero-padded inverse FFT along DimX.
//
// Two middle-stage schedules share every variant's arithmetic:
//
//   fused middle (default, TURBOFNO_FUSED_MID=1): the X stage streams
//   y-major [slab, modes_x] tiles (fft::fft2d_x_stage_to_tiles) into a
//   cache-sized staging block covering a small group of batch elements;
//   the Y/CGEMM middle consumes the tiles with strided gathers and writes
//   its output tiles back the same way, and the inverse X stage drains
//   them (fft::fft2d_x_stage_from_tiles).  The full [B*K*mx*ny]
//   intermediate is never written or re-read, and both X-stage transposes
//   next to it disappear.
//
//   unfused middle (TURBOFNO_FUSED_MID=0): the PR-3 schedule — the X stage
//   materializes the x-major mid_in_/mid_out_ intermediates for the whole
//   batch.  Kept for A/B benchmarking; bitwise-identical results.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>

#include "baseline/problem.hpp"
#include "fft/plan.hpp"
#include "fused/fft_variant.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"
#include "trace/counters.hpp"

namespace turbofno::fused {

/// Overrides the batch-group size of the fused middle schedule (number of
/// batch elements staged between the X stages at once).  `g == 0` restores
/// the default policy (sized so the staging tiles fit a cache budget).
/// Also settable via TURBOFNO_FUSED_MID_GROUP (the API override wins).
/// Tests use small groups to exercise group-boundary handling.
void set_fused_mid_group(std::size_t g) noexcept;

/// The active group-size override (0 = default policy).
[[nodiscard]] std::size_t fused_mid_group_override() noexcept;

/// Common substrate for the 2D variants: the along-X truncated/padded
/// stages, the middle-stage scheduling (fused tiles vs materialized
/// intermediate), and the buffers every variant needs.
class Pipeline2dBase {
 public:
  explicit Pipeline2dBase(baseline::Spectral2dProblem prob, const char* counters_name);
  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const baseline::Spectral2dProblem& problem() const noexcept { return prob_; }

  /// Elastic capacity: problem().batch is a hint, not a contract.  Bumps
  /// the high-water capacity and pre-sizes the schedule buffers of the
  /// *currently active* middle schedule so a batch this large runs without
  /// reallocating (the run itself still lazily grows buffers, grow-only,
  /// if the schedule is flipped afterwards).  Variants with their own
  /// batch-scaled buffers shadow this and pre-size those too.
  void reserve(std::size_t batch);

 protected:
  /// Strided view of one batch group's middle-stage operands.  Rows are
  /// addressed as (bl, channel, x) with bl local to the group; `*_y` is the
  /// distance between a row's y samples (1 on the x-major unfused layout,
  /// modes_x on the y-major fused tiles).  Variant middle stages are
  /// written once against this view and run identically — bitwise — under
  /// both schedules.
  struct MidView {
    const c32* in = nullptr;  // post-X spectra, group base
    c32* out = nullptr;       // pre-inverse-X spectra, group base
    std::size_t count = 0;    // batch elements in the group (bl below is group-local)
    std::ptrdiff_t in_y = 1;
    std::ptrdiff_t out_y = 1;
    std::size_t in_x = 0;   // distance between consecutive x rows
    std::size_t out_x = 0;
    std::size_t chan = 0;   // distance between channels (modes_x * ny, both layouts)
    std::size_t in_b = 0;   // distance between batch elements
    std::size_t out_b = 0;

    [[nodiscard]] const c32* in_row(std::size_t bl, std::size_t k, std::size_t x) const noexcept {
      return in + bl * in_b + k * chan + x * in_x;
    }
    [[nodiscard]] c32* out_row(std::size_t bl, std::size_t o, std::size_t x) const noexcept {
      return out + bl * out_b + o * chan + x * out_x;
    }
  };

  /// Runs X stage -> middle -> inverse X stage over `batch` elements.
  /// `fused_mid` selects the schedule and `group` the fused batch-group
  /// size (both sampled once by the caller — from fused_mid_enabled() and
  /// mid_group() — so one run never mixes layouts or disagrees with the
  /// caller's group-sized buffers; `group` is ignored on the unfused
  /// schedule).  `middle` is invoked once per batch group (exactly once,
  /// covering everything, on the unfused schedule) and must only
  /// accumulate stage *timings* — byte/FLOP counters are closed-form per
  /// run and belong to the caller.
  void run_mid(std::span<const c32> u, std::span<c32> v, std::size_t batch, bool fused_mid,
               std::size_t group, const std::function<void(const MidView&)>& middle);

  /// Real-spectral twin of run_mid: the X stages are the two-for-one R2C /
  /// C2R column-pair stages (fft/real2d.hpp) keeping real_modes_x() x-rows,
  /// and the MidView strides are laid out for that narrower extent.  The
  /// same `middle` callables work on both lanes — they read every extent
  /// from the view (plus the mx the variant passes alongside).
  void run_mid_real(std::span<const float> u, std::span<float> v, std::size_t batch,
                    bool fused_mid, std::size_t group,
                    const std::function<void(const MidView&)>& middle);

  /// X-rows the real lane keeps: modes_x/2+1 RFFT bins (<= modes_x, so
  /// every MX-sized workspace covers the real layout).
  [[nodiscard]] std::size_t real_modes_x() const noexcept { return prob_.modes_x / 2 + 1; }

  /// Batch elements staged per fused-middle group: the override when one is
  /// set, otherwise as many as keep the in+out staging tiles within a cache
  /// budget (always >= 1).
  [[nodiscard]] std::size_t mid_group(std::size_t batch) const noexcept;

  /// Blocked tile I/O of the fused middle loops (single-sourced so the
  /// layout-sensitive transposes exist once): gather_xblock moves a k-tile's
  /// [ny, xc] y-major staging columns into contiguous gbuf rows (channel kk
  /// at gbuf + kk*xb*ny, row xi at + xi*ny); scatter_xblock moves xc
  /// contiguous sbuf rows back into output channel o's staging columns.
  static void gather_xblock(const MidView& mv, std::size_t bl, std::size_t k0,
                            std::size_t kc, std::size_t x0, std::size_t xc, std::size_t xb,
                            std::size_t ny, c32* gbuf) noexcept;
  static void scatter_xblock(const MidView& mv, std::size_t bl, std::size_t o,
                             std::size_t x0, std::size_t xc, std::size_t ny,
                             const c32* sbuf) noexcept;

  /// The unfused Y-stage passes over one group, single-sourced for the
  /// A/B/C variants: one plan.execute_one per (bl, channel, x) row.
  /// y_forward_rows reads view rows into the dense
  /// [group, channels, mx, my] spectra block; y_inverse_rows reads that
  /// block's my-element rows back out into view rows.
  static void y_forward_rows(const fft::FftPlan& plan, const MidView& mv,
                             std::size_t channels, std::size_t mx, std::size_t my,
                             c32* spectra);
  static void y_inverse_rows(const fft::FftPlan& plan, const MidView& mv,
                             std::size_t channels, std::size_t mx, std::size_t my,
                             const c32* spectra);

  /// Unfused stage 1: truncated forward FFT along X: u [B,K,nx,ny] -> dst
  /// [B,K,mx,ny].  Writes only modes_x/nx of the rows (Fig 4's saving).
  void run_fft_x_trunc(std::span<const c32> u, std::span<c32> dst, std::size_t batch);
  /// Unfused final stage: zero-padded inverse FFT along X: src [B,O,mx,ny]
  /// -> v [B,O,nx,ny].
  void run_ifft_x_pad(std::span<const c32> src, std::span<c32> v, std::size_t batch);

  /// Throws when the caller's buffers cannot hold `batch` fields (capacity
  /// itself is elastic; see reserve).
  void check_spans(std::span<const c32> u, std::span<c32> v, std::size_t batch) const;
  void check_spans_real(std::span<const float> u, std::span<float> v, std::size_t batch) const;

  /// Grow-only (re)allocation for the lazily sized schedule buffers.
  static void ensure(AlignedBuffer<c32>& buf, std::size_t elems) {
    if (buf.size() < elems) buf.resize(elems);
  }

  /// Single sizing authority for the middle-schedule buffers, shared by
  /// reserve() and run_mid() so the two can never disagree on a formula.
  void ensure_mid_buffers(std::size_t batch, bool fused_mid, std::size_t group);

  baseline::Spectral2dProblem prob_;
  // X-stage plans come from the process-wide cache so concurrent pipelines
  // (one per serving-layer model) share them.
  std::shared_ptr<const fft::FftPlan> fft_x_trunc_;
  std::shared_ptr<const fft::FftPlan> ifft_x_pad_;
  KLoopFft fwd_y_;      // truncated FFT along Y feeding the GEMM k-loop
  EpilogueIfft inv_y_;  // zero-padded iFFT along Y (CGEMM epilogue)
  // Schedule buffers, lazily sized by run_mid for the schedule in use:
  // the unfused intermediates cover the whole batch; the fused staging
  // tiles cover one batch group in y-major order.
  AlignedBuffer<c32> mid_in_;       // unfused [B, K, mx, ny] after the X stage
  AlignedBuffer<c32> mid_out_;      // unfused [B, O, mx, ny] before the X inverse
  AlignedBuffer<c32> staging_in_;   // fused [bg, K, ny, mx] y-major tiles
  AlignedBuffer<c32> staging_out_;  // fused [bg, O, ny, mx]
  trace::PipelineCounters counters_;
};

/// Stage A: every kernel truncated/pruned, nothing fused (5 launches).
class FftOptPipeline2d : public Pipeline2dBase {
 public:
  explicit FftOptPipeline2d(baseline::Spectral2dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);
  void reserve(std::size_t batch);  // also pre-sizes freq_/mixed_

 private:
  void ensure_variant_buffers(std::size_t gcap);  // single sizing authority
  // One group's Y-FFT -> CGEMM -> Y-iFFT middle, shared by both spectral
  // lanes: `mx` is the x-extent of the group's spectra (modes_x on the
  // complex lane, real_modes_x() on the real lane).
  void middle_group(const MidView& mv, std::span<const c32> w, std::size_t mx);

  AlignedBuffer<c32> freq_;   // [group, K, mx, my]
  AlignedBuffer<c32> mixed_;  // [group, O, mx, my]
};

/// Stage B: FFT-Y fused with CGEMM; iFFT-Y separate (4 launches).
class FusedFftGemmPipeline2d : public Pipeline2dBase {
 public:
  explicit FusedFftGemmPipeline2d(baseline::Spectral2dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);
  void reserve(std::size_t batch);  // also pre-sizes mixed_

 private:
  void ensure_variant_buffers(std::size_t gcap);
  void middle_group(const MidView& mv, std::span<const c32> w, std::size_t mx);

  AlignedBuffer<c32> mixed_;  // [group, O, mx, my]
};

/// Stage C: FFT-Y separate; CGEMM fused with the iFFT-Y epilogue.
class FusedGemmIfftPipeline2d : public Pipeline2dBase {
 public:
  explicit FusedGemmIfftPipeline2d(baseline::Spectral2dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);
  void reserve(std::size_t batch);  // also pre-sizes freq_

 private:
  void ensure_variant_buffers(std::size_t gcap);
  void middle_group(const MidView& mv, std::span<const c32> w, std::size_t mx);

  AlignedBuffer<c32> freq_;  // [group, K, mx, my]
};

/// Stage D: fused FFT-Y + CGEMM + iFFT-Y between the two X stages
/// (3 launches).
class FullyFusedPipeline2d : public Pipeline2dBase {
 public:
  explicit FullyFusedPipeline2d(baseline::Spectral2dProblem prob);
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);

 private:
  void middle_group(const MidView& mv, std::span<const c32> w, std::size_t mx);
};

}  // namespace turbofno::fused
