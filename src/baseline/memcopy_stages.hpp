// The extra memory-copy kernels of the PyTorch-like baseline.
//
// cuFFT cannot filter frequencies (the paper's limitation #2), so stock FNO
// implementations launch separate copy kernels to extract the retained modes
// after the forward FFT and to re-insert them (zero-padded) before the
// inverse FFT.  These are those kernels, with faithful traffic accounting.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/complex.hpp"
#include "trace/counters.hpp"

namespace turbofno::baseline {

/// Extracts the first `keep` of `n` elements of each of `rows` signals:
/// dst[r, 0..keep) = src[r, 0..keep).  src is rows x n, dst rows x keep.
void truncate_copy(std::span<const c32> src, std::span<c32> dst, std::size_t rows, std::size_t n,
                   std::size_t keep, trace::StageCounters* sc = nullptr);

/// Inserts `keep`-element signals into zeroed n-element slots:
/// dst[r, 0..keep) = src[r, .), dst[r, keep..n) = 0.
void pad_copy(std::span<const c32> src, std::span<c32> dst, std::size_t rows, std::size_t keep,
              std::size_t n, trace::StageCounters* sc = nullptr);

/// 2D variants over fields: src rows x [nx, ny] -> dst rows x [kx, ky]
/// keeping the low corner block.
void truncate_copy_2d(std::span<const c32> src, std::span<c32> dst, std::size_t rows,
                      std::size_t nx, std::size_t ny, std::size_t kx, std::size_t ky,
                      trace::StageCounters* sc = nullptr);

/// src rows x [kx, ky] -> dst rows x [nx, ny], zero elsewhere.
void pad_copy_2d(std::span<const c32> src, std::span<c32> dst, std::size_t rows, std::size_t kx,
                 std::size_t ky, std::size_t nx, std::size_t ny,
                 trace::StageCounters* sc = nullptr);

}  // namespace turbofno::baseline
