#include "baseline/pipeline2d.hpp"

#include <stdexcept>

#include <algorithm>

#include "baseline/memcopy_stages.hpp"
#include "fft/plan_cache.hpp"
#include "fft/real2d.hpp"
#include "gemm/batched.hpp"
#include "runtime/timer.hpp"

namespace turbofno::baseline {

namespace {

fft::Plan2dDesc full2d(std::size_t nx, std::size_t ny, fft::Direction dir) {
  fft::Plan2dDesc d;
  d.nx = nx;
  d.ny = ny;
  d.dir = dir;
  return d;
}

void check_spans(const Spectral2dProblem& prob, std::span<const c32> u, std::span<c32> v,
                 std::size_t batch) {
  const std::size_t field = prob.nx * prob.ny;
  check_batch_spans(u.size(), v.size(), prob.hidden * field, prob.out_dim * field, batch,
                    "BaselinePipeline2d");
}

}  // namespace

BaselinePipeline2d::BaselinePipeline2d(Spectral2dProblem prob)
    : prob_(prob),
      fwd_full_(full2d(prob.nx, prob.ny, fft::Direction::Forward)),
      inv_full_(full2d(prob.nx, prob.ny, fft::Direction::Inverse)) {
  prob_.validate();
  const std::size_t field = prob_.nx * prob_.ny;
  const std::size_t modes = prob_.modes_x * prob_.modes_y;
  freq_full_.resize(prob_.batch * prob_.hidden * field);
  freq_trunc_.resize(prob_.batch * prob_.hidden * modes);
  mixed_.resize(prob_.batch * prob_.out_dim * modes);
  mixed_full_.resize(prob_.batch * prob_.out_dim * field);
}

void BaselinePipeline2d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void BaselinePipeline2d::reserve(std::size_t batch) {
  if (batch <= prob_.batch) return;
  // Grow before bumping the capacity mark (exception safety).
  const std::size_t field = prob_.nx * prob_.ny;
  const std::size_t modes = prob_.modes_x * prob_.modes_y;
  freq_full_.resize(batch * prob_.hidden * field);
  freq_trunc_.resize(batch * prob_.hidden * modes);
  mixed_.resize(batch * prob_.out_dim * modes);
  mixed_full_.resize(batch * prob_.out_dim * field);
  prob_.batch = batch;
}

void BaselinePipeline2d::run_batched(std::span<const c32> u, std::span<const c32> w,
                                     std::span<c32> v, std::size_t batch) {
  check_spans(prob_, u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NX = prob_.nx;
  const std::size_t NY = prob_.ny;
  const std::size_t MX = prob_.modes_x;
  const std::size_t MY = prob_.modes_y;
  const std::size_t field = NX * NY;
  const std::size_t modes = MX * MY;

  // Stage 1: full 2D FFT.  cuFFT's 2D C2C makes two passes over global
  // memory (one per axis); the byte accounting reflects both.
  {
    runtime::Timer t;
    fwd_full_.execute(u, freq_full_.span(), B * K);
    auto& sc = counters_.stage("fft2d");
    sc.seconds = t.seconds();
    sc.bytes_read = 2 * B * K * field * sizeof(c32);
    sc.bytes_written = 2 * B * K * field * sizeof(c32);
    sc.flops = B * K * fwd_full_.flops_per_field();
    sc.kernel_launches = 1;
  }

  // Stage 2: truncate memcopy of the low-frequency corner.
  {
    runtime::Timer t;
    truncate_copy_2d(freq_full_.span(), freq_trunc_.span(), B * K, NX, NY, MX, MY,
                     &counters_.stage("truncate-copy"));
    counters_.stage("truncate-copy").seconds = t.seconds();
  }

  // Stage 3: batched CGEMM along the hidden dimension.
  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;
    strides.b = static_cast<std::ptrdiff_t>(K * modes);
    strides.c = static_cast<std::ptrdiff_t>(O * modes);
    gemm::cgemm_batched(O, modes, K, c32{1.0f, 0.0f}, w.data(), K, freq_trunc_.data(), modes,
                        c32{0.0f, 0.0f}, mixed_.data(), modes, B, strides);
    auto& sc = counters_.stage("cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * modes + O * K) * sizeof(c32);
    sc.bytes_written = B * O * modes * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * modes, O, K);
    sc.kernel_launches = 1;
  }

  // Stage 4: zero-pad memcopy back to the full field.
  {
    runtime::Timer t;
    pad_copy_2d(mixed_.span(), mixed_full_.span(), B * O, MX, MY, NX, NY,
                &counters_.stage("pad-copy"));
    counters_.stage("pad-copy").seconds = t.seconds();
  }

  // Stage 5: full 2D inverse FFT (again two global passes).
  {
    runtime::Timer t;
    inv_full_.execute(mixed_full_.span(), v, B * O);
    auto& sc = counters_.stage("ifft2d");
    sc.seconds = t.seconds();
    sc.bytes_read = 2 * B * O * field * sizeof(c32);
    sc.bytes_written = 2 * B * O * field * sizeof(c32);
    sc.flops = B * O * inv_full_.flops_per_field();
    sc.kernel_launches = 1;
  }
}

void BaselinePipeline2d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                          std::span<float> v, std::size_t batch) {
  const std::size_t field = prob_.nx * prob_.ny;
  check_batch_spans(u.size(), v.size(), prob_.hidden * field, prob_.out_dim * field, batch,
                    "BaselinePipeline2d(real)");
  if (!fwd_y_full_) {
    inv_y_full_ = fft::acquire_plan({prob_.ny, fft::Direction::Inverse});
    fwd_y_full_ = fft::acquire_plan({prob_.ny, fft::Direction::Forward});
  }
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NX = prob_.nx;
  const std::size_t NY = prob_.ny;
  const std::size_t MY = prob_.modes_y;
  const std::size_t KEEPX = NX / 2 + 1;       // full X half-spectrum
  const std::size_t MXR = prob_.modes_x / 2 + 1;  // kept X rows after truncation
  const std::size_t modes = MXR * MY;

  const std::size_t half = std::max(K, O) * KEEPX * NY;
  if (rbufA_.size() < B * half) rbufA_.resize(B * half);
  if (rbufB_.size() < B * half) rbufB_.resize(B * half);

  // Stage 1: full forward transform — R2C along X, then full C2C along Y.
  // Both passes go through global memory, mirroring cuFFT's 2D R2C.
  {
    runtime::Timer t;
    fft::rfft2d_x_stage(NX, KEEPX, u.data(), rbufA_.data(), B * K, NY);
    fwd_y_full_->execute(rbufA_.span().first(B * K * KEEPX * NY),
                         rbufB_.span().first(B * K * KEEPX * NY), B * K * KEEPX);
    auto& sc = counters_.stage("fft2d");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * field * sizeof(float) + B * K * KEEPX * NY * sizeof(c32);
    sc.bytes_written = 2 * B * K * KEEPX * NY * sizeof(c32);
    const auto fx = fft::acquire_plan({NX, fft::Direction::Forward});
    sc.flops = B * K * (NY / 2) * fx->flops_per_signal() + B * K * NY * 8 * KEEPX +
               B * K * KEEPX * fwd_y_full_->flops_per_signal();
    sc.kernel_launches = 2;
  }

  // Stage 2: truncate memcopy of the low-frequency half-spectrum corner.
  {
    runtime::Timer t;
    truncate_copy_2d(rbufB_.span().first(B * K * KEEPX * NY),
                     freq_trunc_.span().first(B * K * modes), B * K, KEEPX, NY, MXR, MY,
                     &counters_.stage("truncate-copy"));
    counters_.stage("truncate-copy").seconds = t.seconds();
  }

  // Stage 3: batched CGEMM over the retained half-spectrum.
  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;
    strides.b = static_cast<std::ptrdiff_t>(K * modes);
    strides.c = static_cast<std::ptrdiff_t>(O * modes);
    gemm::cgemm_batched(O, modes, K, c32{1.0f, 0.0f}, w.data(), K, freq_trunc_.data(), modes,
                        c32{0.0f, 0.0f}, mixed_.data(), modes, B, strides);
    auto& sc = counters_.stage("cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * modes + O * K) * sizeof(c32);
    sc.bytes_written = B * O * modes * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * modes, O, K);
    sc.kernel_launches = 1;
  }

  // Stage 4: zero-pad memcopy back to the full half-spectrum.
  {
    runtime::Timer t;
    pad_copy_2d(mixed_.span().first(B * O * modes), rbufA_.span().first(B * O * KEEPX * NY),
                B * O, MXR, MY, KEEPX, NY, &counters_.stage("pad-copy"));
    counters_.stage("pad-copy").seconds = t.seconds();
  }

  // Stage 5: full inverse — C2C along Y, then C2R along X.
  {
    runtime::Timer t;
    inv_y_full_->execute(rbufA_.span().first(B * O * KEEPX * NY),
                         rbufB_.span().first(B * O * KEEPX * NY), B * O * KEEPX);
    fft::irfft2d_x_stage(NX, KEEPX, rbufB_.data(), v.data(), B * O, NY);
    auto& sc = counters_.stage("ifft2d");
    sc.seconds = t.seconds();
    sc.bytes_read = 2 * B * O * KEEPX * NY * sizeof(c32);
    sc.bytes_written = B * O * KEEPX * NY * sizeof(c32) + B * O * field * sizeof(float);
    const auto ix = fft::acquire_plan({NX, fft::Direction::Inverse});
    sc.flops = B * O * KEEPX * inv_y_full_->flops_per_signal() +
               B * O * (NY / 2) * ix->flops_per_signal() + B * O * NY * 8 * KEEPX;
    sc.kernel_launches = 2;
  }
}

}  // namespace turbofno::baseline
