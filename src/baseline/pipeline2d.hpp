// The PyTorch-like 2D spectral-convolution pipeline (comparison base).
//
// Full 2D FFT (both passes over global memory, as cuFFT performs), truncate
// copy of the low-frequency corner, batched CGEMM, pad copy, full 2D iFFT.
#pragma once

#include <memory>
#include <span>

#include "baseline/problem.hpp"
#include "fft/fft2d.hpp"
#include "fft/plan.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"
#include "trace/counters.hpp"

namespace turbofno::baseline {

class BaselinePipeline2d {
 public:
  explicit BaselinePipeline2d(Spectral2dProblem prob);

  /// u [batch, hidden, nx, ny] -> v [batch, out_dim, nx, ny];
  /// w [out_dim, hidden].  Refreshes counters() per call.
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  /// Serving entry point: runs the first `batch` fields; capacities beyond
  /// problem().batch grow the intermediates in place (see reserve).
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  /// Real-spectral lane: the same five unfused kernels on real samples —
  /// full R2C along X (nx/2+1 rows kept), full C2C along Y, truncate the
  /// [modes_x/2+1, modes_y] corner, CGEMM, zero-pad, full C2C-Y + C2R-X
  /// inverse.  Requires nx >= 4 and ny a power of two.
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);
  /// Grows the full-size intermediates so micro-batches up to `batch` run
  /// without a reallocation; problem().batch becomes the high-water capacity.
  void reserve(std::size_t batch);

  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const Spectral2dProblem& problem() const noexcept { return prob_; }

 private:
  Spectral2dProblem prob_;
  fft::FftPlan2d fwd_full_;
  fft::FftPlan2d inv_full_;
  std::shared_ptr<const fft::FftPlan> fwd_y_full_;  // lazy: real lane only
  std::shared_ptr<const fft::FftPlan> inv_y_full_;  // lazy: real lane only
  // Real-lane half-spectrum ping/pong buffers, [batch, max(K,O), nx/2+1, ny].
  AlignedBuffer<c32> rbufA_;  // lazy: real lane only
  AlignedBuffer<c32> rbufB_;  // lazy: real lane only
  AlignedBuffer<c32> freq_full_;   // [batch, hidden, nx, ny]
  AlignedBuffer<c32> freq_trunc_;  // [batch, hidden, mx, my]
  AlignedBuffer<c32> mixed_;       // [batch, out_dim, mx, my]
  AlignedBuffer<c32> mixed_full_;  // [batch, out_dim, nx, ny]
  trace::PipelineCounters counters_{"pytorch-2d"};
};

}  // namespace turbofno::baseline
