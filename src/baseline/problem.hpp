// Problem descriptors shared by the baseline and fused spectral pipelines.
//
// Layouts follow the paper (Figure 2):
//   1D: input  u [Batch, HiddenDim, DimY]        (DimY contiguous)
//       output v [Batch, OutDim,    DimY]
//   2D: input  u [Batch, HiddenDim, DimX, DimY]  (DimY contiguous)
//       output v [Batch, OutDim,    DimX, DimY]
// Weights are a single complex matrix W [OutDim, HiddenDim] (row-major),
// applied at every retained frequency — the paper folds canonical FNO's
// per-mode weights into one tall-and-skinny CGEMM (Section 3.1).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace turbofno::baseline {

/// Shared guard of the pipelines' batched entry points: capacity is
/// elastic, so the only invalid batch is one the caller's own buffers
/// cannot hold.  Division (not batch * per_item, which can wrap for
/// absurd batch values) keeps the comparison overflow-safe; per-item
/// counts are non-zero by problem validation.
inline void check_batch_spans(std::size_t u_elems, std::size_t v_elems,
                              std::size_t in_per_item, std::size_t out_per_item,
                              std::size_t batch, const char* who) {
  if (u_elems / in_per_item < batch || v_elems / out_per_item < batch) {
    throw std::invalid_argument(std::string(who) +
                                ": buffer smaller than batch * per-item elems");
  }
}

struct Spectral1dProblem {
  std::size_t batch = 0;    // number of signals (paper's BS)
  std::size_t hidden = 0;   // K
  std::size_t out_dim = 0;  // OutputDim
  std::size_t n = 0;        // DimY, FFT length (power of two)
  std::size_t modes = 0;    // retained low-frequency bins (truncation)

  [[nodiscard]] std::size_t input_elems() const noexcept { return batch * hidden * n; }
  [[nodiscard]] std::size_t output_elems() const noexcept { return batch * out_dim * n; }
  [[nodiscard]] std::size_t weight_elems() const noexcept { return out_dim * hidden; }
  /// Rows of the logical tall-and-skinny GEMM (paper's M).
  [[nodiscard]] std::size_t gemm_m() const noexcept { return batch * modes; }

  void validate() const {
    if (batch == 0 || hidden == 0 || out_dim == 0) {
      throw std::invalid_argument("Spectral1dProblem: empty dimension");
    }
    if (n < 2 || (n & (n - 1)) != 0) throw std::invalid_argument("Spectral1dProblem: n not pow2");
    if (modes == 0 || modes > n) throw std::invalid_argument("Spectral1dProblem: bad modes");
  }
};

struct Spectral2dProblem {
  std::size_t batch = 0;
  std::size_t hidden = 0;
  std::size_t out_dim = 0;
  std::size_t nx = 0;       // DimX
  std::size_t ny = 0;       // DimY
  std::size_t modes_x = 0;  // dimX kept after truncation
  std::size_t modes_y = 0;  // dimY kept

  [[nodiscard]] std::size_t input_elems() const noexcept { return batch * hidden * nx * ny; }
  [[nodiscard]] std::size_t output_elems() const noexcept { return batch * out_dim * nx * ny; }
  [[nodiscard]] std::size_t weight_elems() const noexcept { return out_dim * hidden; }

  void validate() const {
    if (batch == 0 || hidden == 0 || out_dim == 0) {
      throw std::invalid_argument("Spectral2dProblem: empty dimension");
    }
    if (nx < 2 || (nx & (nx - 1)) != 0 || ny < 2 || (ny & (ny - 1)) != 0) {
      throw std::invalid_argument("Spectral2dProblem: dims not pow2");
    }
    if (modes_x == 0 || modes_x > nx || modes_y == 0 || modes_y > ny) {
      throw std::invalid_argument("Spectral2dProblem: bad modes");
    }
  }
};

}  // namespace turbofno::baseline
