#include "baseline/pipeline1d.hpp"

#include <stdexcept>

#include "baseline/memcopy_stages.hpp"
#include "fft/plan_cache.hpp"
#include "gemm/batched.hpp"
#include "runtime/timer.hpp"

namespace turbofno::baseline {

namespace {

fft::PlanDesc full_desc(std::size_t n, fft::Direction dir) {
  fft::PlanDesc d;
  d.n = n;
  d.dir = dir;
  return d;
}

void check_spans(const Spectral1dProblem& prob, std::span<const c32> u, std::span<c32> v,
                 std::size_t batch) {
  check_batch_spans(u.size(), v.size(), prob.hidden * prob.n, prob.out_dim * prob.n, batch,
                    "BaselinePipeline1d");
}

}  // namespace

BaselinePipeline1d::BaselinePipeline1d(Spectral1dProblem prob)
    : prob_(prob),
      fwd_full_(fft::acquire_plan(full_desc(prob.n, fft::Direction::Forward))),
      inv_full_(fft::acquire_plan(full_desc(prob.n, fft::Direction::Inverse))) {
  prob_.validate();
  freq_full_.resize(prob_.batch * prob_.hidden * prob_.n);
  freq_trunc_.resize(prob_.batch * prob_.hidden * prob_.modes);
  mixed_.resize(prob_.batch * prob_.out_dim * prob_.modes);
  mixed_full_.resize(prob_.batch * prob_.out_dim * prob_.n);
}

void BaselinePipeline1d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void BaselinePipeline1d::reserve(std::size_t batch) {
  if (batch <= prob_.batch) return;
  // Grow before bumping the capacity mark (exception safety).
  freq_full_.resize(batch * prob_.hidden * prob_.n);
  freq_trunc_.resize(batch * prob_.hidden * prob_.modes);
  mixed_.resize(batch * prob_.out_dim * prob_.modes);
  mixed_full_.resize(batch * prob_.out_dim * prob_.n);
  prob_.batch = batch;
}

void BaselinePipeline1d::run_batched(std::span<const c32> u, std::span<const c32> w,
                                     std::span<c32> v, std::size_t batch) {
  check_spans(prob_, u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const auto [B, K, O, N, M] =
      std::tuple{batch, prob_.hidden, prob_.out_dim, prob_.n, prob_.modes};

  // Stage 1: full forward FFT of every (batch, channel) signal.
  {
    runtime::Timer t;
    fwd_full_->execute(u, freq_full_.span(), B * K);
    auto& sc = counters_.stage("fft");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(c32);
    sc.bytes_written = B * K * N * sizeof(c32);
    sc.flops = B * K * fwd_full_->flops_per_signal();
    sc.kernel_launches = 1;
  }

  // Stage 2: truncate memcopy (cuFFT has no built-in filtering).
  {
    runtime::Timer t;
    truncate_copy(freq_full_.span(), freq_trunc_.span(), B * K, N, M,
                  &counters_.stage("truncate-copy"));
    counters_.stage("truncate-copy").seconds = t.seconds();
  }

  // Stage 3: batched CGEMM along the hidden dimension:
  // mixed[b] [O x M] = W [O x K] * freq_trunc[b] [K x M].
  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;  // the weight matrix is shared across the batch
    strides.b = static_cast<std::ptrdiff_t>(K * M);
    strides.c = static_cast<std::ptrdiff_t>(O * M);
    gemm::cgemm_batched(O, M, K, c32{1.0f, 0.0f}, w.data(), K, freq_trunc_.data(), M,
                        c32{0.0f, 0.0f}, mixed_.data(), M, B, strides);
    auto& sc = counters_.stage("cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * M + O * K) * sizeof(c32);
    sc.bytes_written = B * O * M * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * M, O, K);
    sc.kernel_launches = 1;  // one strided-batched cuBLAS call
  }

  // Stage 4: zero-pad memcopy back to full length.
  {
    runtime::Timer t;
    pad_copy(mixed_.span(), mixed_full_.span(), B * O, M, N, &counters_.stage("pad-copy"));
    counters_.stage("pad-copy").seconds = t.seconds();
  }

  // Stage 5: full inverse FFT.
  {
    runtime::Timer t;
    inv_full_->execute(mixed_full_.span(), v, B * O);
    auto& sc = counters_.stage("ifft");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * N * sizeof(c32);
    sc.bytes_written = B * O * N * sizeof(c32);
    sc.flops = B * O * inv_full_->flops_per_signal();
    sc.kernel_launches = 1;
  }
}

}  // namespace turbofno::baseline
