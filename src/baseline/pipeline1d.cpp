#include "baseline/pipeline1d.hpp"

#include <stdexcept>

#include "baseline/memcopy_stages.hpp"
#include "fft/plan_cache.hpp"
#include "gemm/batched.hpp"
#include "runtime/timer.hpp"

namespace turbofno::baseline {

namespace {

fft::PlanDesc full_desc(std::size_t n, fft::Direction dir) {
  fft::PlanDesc d;
  d.n = n;
  d.dir = dir;
  return d;
}

void check_spans(const Spectral1dProblem& prob, std::span<const c32> u, std::span<c32> v,
                 std::size_t batch) {
  check_batch_spans(u.size(), v.size(), prob.hidden * prob.n, prob.out_dim * prob.n, batch,
                    "BaselinePipeline1d");
}

}  // namespace

BaselinePipeline1d::BaselinePipeline1d(Spectral1dProblem prob)
    : prob_(prob),
      fwd_full_(fft::acquire_plan(full_desc(prob.n, fft::Direction::Forward))),
      inv_full_(fft::acquire_plan(full_desc(prob.n, fft::Direction::Inverse))) {
  prob_.validate();
  freq_full_.resize(prob_.batch * prob_.hidden * prob_.n);
  freq_trunc_.resize(prob_.batch * prob_.hidden * prob_.modes);
  mixed_.resize(prob_.batch * prob_.out_dim * prob_.modes);
  mixed_full_.resize(prob_.batch * prob_.out_dim * prob_.n);
}

void BaselinePipeline1d::run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v) {
  run_batched(u, w, v, prob_.batch);
}

void BaselinePipeline1d::reserve(std::size_t batch) {
  if (batch <= prob_.batch) return;
  // Grow before bumping the capacity mark (exception safety).
  freq_full_.resize(batch * prob_.hidden * prob_.n);
  freq_trunc_.resize(batch * prob_.hidden * prob_.modes);
  mixed_.resize(batch * prob_.out_dim * prob_.modes);
  mixed_full_.resize(batch * prob_.out_dim * prob_.n);
  prob_.batch = batch;
}

void BaselinePipeline1d::run_batched(std::span<const c32> u, std::span<const c32> w,
                                     std::span<c32> v, std::size_t batch) {
  check_spans(prob_, u, v, batch);
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const auto [B, K, O, N, M] =
      std::tuple{batch, prob_.hidden, prob_.out_dim, prob_.n, prob_.modes};

  // Stage 1: full forward FFT of every (batch, channel) signal.
  {
    runtime::Timer t;
    fwd_full_->execute(u, freq_full_.span(), B * K);
    auto& sc = counters_.stage("fft");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(c32);
    sc.bytes_written = B * K * N * sizeof(c32);
    sc.flops = B * K * fwd_full_->flops_per_signal();
    sc.kernel_launches = 1;
  }

  // Stage 2: truncate memcopy (cuFFT has no built-in filtering).
  {
    runtime::Timer t;
    truncate_copy(freq_full_.span(), freq_trunc_.span(), B * K, N, M,
                  &counters_.stage("truncate-copy"));
    counters_.stage("truncate-copy").seconds = t.seconds();
  }

  // Stage 3: batched CGEMM along the hidden dimension:
  // mixed[b] [O x M] = W [O x K] * freq_trunc[b] [K x M].
  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;  // the weight matrix is shared across the batch
    strides.b = static_cast<std::ptrdiff_t>(K * M);
    strides.c = static_cast<std::ptrdiff_t>(O * M);
    gemm::cgemm_batched(O, M, K, c32{1.0f, 0.0f}, w.data(), K, freq_trunc_.data(), M,
                        c32{0.0f, 0.0f}, mixed_.data(), M, B, strides);
    auto& sc = counters_.stage("cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * M + O * K) * sizeof(c32);
    sc.bytes_written = B * O * M * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * M, O, K);
    sc.kernel_launches = 1;  // one strided-batched cuBLAS call
  }

  // Stage 4: zero-pad memcopy back to full length.
  {
    runtime::Timer t;
    pad_copy(mixed_.span(), mixed_full_.span(), B * O, M, N, &counters_.stage("pad-copy"));
    counters_.stage("pad-copy").seconds = t.seconds();
  }

  // Stage 5: full inverse FFT.
  {
    runtime::Timer t;
    inv_full_->execute(mixed_full_.span(), v, B * O);
    auto& sc = counters_.stage("ifft");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * N * sizeof(c32);
    sc.bytes_written = B * O * N * sizeof(c32);
    sc.flops = B * O * inv_full_->flops_per_signal();
    sc.kernel_launches = 1;
  }
}

void BaselinePipeline1d::run_batched_real(std::span<const float> u, std::span<const c32> w,
                                          std::span<float> v, std::size_t batch) {
  check_batch_spans(u.size(), v.size(), prob_.hidden * prob_.n, prob_.out_dim * prob_.n, batch,
                    "BaselinePipeline1d(real)");
  if (!rfwd_full_) {
    rinv_full_ = fft::acquire_irfft_plan(prob_.n);  // all n/2+1 bins stored
    rfwd_full_ = fft::acquire_rfft_plan(prob_.n);
  }
  reserve(batch);
  counters_.clear();
  if (batch == 0) return;
  const auto [B, K, O, N, M] =
      std::tuple{batch, prob_.hidden, prob_.out_dim, prob_.n, prob_.modes};
  const std::size_t HALF = N / 2 + 1;   // full RFFT output per signal
  const std::size_t MR = M / 2 + 1;     // bins the real lane keeps

  // Stage 1: full forward RFFT (no built-in filtering, all bins stored).
  {
    runtime::Timer t;
    rfwd_full_->execute(u.first(B * K * N), freq_full_.span().first(B * K * HALF), B * K);
    auto& sc = counters_.stage("fft");
    sc.seconds = t.seconds();
    sc.bytes_read = B * K * N * sizeof(float);
    sc.bytes_written = B * K * HALF * sizeof(c32);
    sc.flops = B * K * rfwd_full_->flops_per_signal();
    sc.kernel_launches = 1;
  }

  // Stage 2: truncate memcopy down to the kept half-spectrum prefix.
  {
    runtime::Timer t;
    truncate_copy(freq_full_.span().first(B * K * HALF), freq_trunc_.span().first(B * K * MR),
                  B * K, HALF, MR, &counters_.stage("truncate-copy"));
    counters_.stage("truncate-copy").seconds = t.seconds();
  }

  // Stage 3: batched CGEMM over the retained bins.
  {
    runtime::Timer t;
    gemm::BatchedStrides strides;
    strides.a = 0;
    strides.b = static_cast<std::ptrdiff_t>(K * MR);
    strides.c = static_cast<std::ptrdiff_t>(O * MR);
    gemm::cgemm_batched(O, MR, K, c32{1.0f, 0.0f}, w.data(), K, freq_trunc_.data(), MR,
                        c32{0.0f, 0.0f}, mixed_.data(), MR, B, strides);
    auto& sc = counters_.stage("cgemm");
    sc.seconds = t.seconds();
    sc.bytes_read = (B * K * MR + O * K) * sizeof(c32);
    sc.bytes_written = B * O * MR * sizeof(c32);
    sc.flops = trace::cgemm_flops(B * MR, O, K);
    sc.kernel_launches = 1;
  }

  // Stage 4: zero-pad memcopy back to the full half-spectrum.
  {
    runtime::Timer t;
    pad_copy(mixed_.span().first(B * O * MR), mixed_full_.span().first(B * O * HALF), B * O, MR,
             HALF, &counters_.stage("pad-copy"));
    counters_.stage("pad-copy").seconds = t.seconds();
  }

  // Stage 5: full C2R inverse (Hermitian extension + half-length transform).
  {
    runtime::Timer t;
    rinv_full_->execute(mixed_full_.span().first(B * O * HALF), v.first(B * O * N), B * O);
    auto& sc = counters_.stage("ifft");
    sc.seconds = t.seconds();
    sc.bytes_read = B * O * HALF * sizeof(c32);
    sc.bytes_written = B * O * N * sizeof(float);
    sc.flops = B * O * rinv_full_->flops_per_signal();
    sc.kernel_launches = 1;
  }
}

}  // namespace turbofno::baseline
