// The PyTorch-like 1D spectral-convolution pipeline (comparison base).
//
// Mirrors Figure 1(b): five separate kernels with full-size intermediates —
// full FFT, truncate copy, batched CGEMM, pad copy, full iFFT.  No pruning,
// no built-in filtering: exactly what cuFFT + cuBLAS + memory kernels do.
#pragma once

#include <memory>
#include <span>

#include "baseline/problem.hpp"
#include "fft/plan.hpp"
#include "fft/real.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"
#include "trace/counters.hpp"

namespace turbofno::baseline {

class BaselinePipeline1d {
 public:
  explicit BaselinePipeline1d(Spectral1dProblem prob);

  /// u [batch, hidden, n] -> v [batch, out_dim, n]; w [out_dim, hidden].
  /// Refreshes counters() on every call.
  void run(std::span<const c32> u, std::span<const c32> w, std::span<c32> v);
  /// Serving entry point: runs the first `batch` signals; capacities beyond
  /// problem().batch grow the intermediates in place (see reserve).
  void run_batched(std::span<const c32> u, std::span<const c32> w, std::span<c32> v,
                   std::size_t batch);
  /// Real-spectral lane: the same five unfused kernels on real samples —
  /// full RFFT (all n/2+1 bins), truncate to modes/2+1, CGEMM, zero-pad
  /// back to n/2+1, full C2R inverse.  Requires n >= 4.
  void run_batched_real(std::span<const float> u, std::span<const c32> w, std::span<float> v,
                        std::size_t batch);
  /// Grows the full-size intermediates so micro-batches up to `batch` run
  /// without a reallocation; problem().batch becomes the high-water capacity.
  void reserve(std::size_t batch);

  [[nodiscard]] const trace::PipelineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const Spectral1dProblem& problem() const noexcept { return prob_; }

 private:
  Spectral1dProblem prob_;
  std::shared_ptr<const fft::FftPlan> fwd_full_;
  std::shared_ptr<const fft::FftPlan> inv_full_;
  std::shared_ptr<const fft::RfftPlan> rfwd_full_;   // lazy: real lane only
  std::shared_ptr<const fft::IrfftPlan> rinv_full_;  // lazy: real lane only
  // Full-size intermediates: the global-memory round trips fusion removes.
  AlignedBuffer<c32> freq_full_;   // [batch, hidden, n]
  AlignedBuffer<c32> freq_trunc_;  // [batch, hidden, modes]
  AlignedBuffer<c32> mixed_;       // [batch, out_dim, modes]
  AlignedBuffer<c32> mixed_full_;  // [batch, out_dim, n]
  trace::PipelineCounters counters_{"pytorch-1d"};
};

}  // namespace turbofno::baseline
