#include "baseline/memcopy_stages.hpp"

#include <cstring>

#include "runtime/parallel.hpp"

namespace turbofno::baseline {

void truncate_copy(std::span<const c32> src, std::span<c32> dst, std::size_t rows, std::size_t n,
                   std::size_t keep, trace::StageCounters* sc) {
  runtime::parallel_for(0, rows, 256, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      std::memcpy(dst.data() + r * keep, src.data() + r * n, keep * sizeof(c32));
    }
  });
  if (sc != nullptr) {
    sc->bytes_read += rows * keep * sizeof(c32);
    sc->bytes_written += rows * keep * sizeof(c32);
    sc->kernel_launches += 1;
  }
}

void pad_copy(std::span<const c32> src, std::span<c32> dst, std::size_t rows, std::size_t keep,
              std::size_t n, trace::StageCounters* sc) {
  runtime::parallel_for(0, rows, 256, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      std::memcpy(dst.data() + r * n, src.data() + r * keep, keep * sizeof(c32));
      std::memset(dst.data() + r * n + keep, 0, (n - keep) * sizeof(c32));
    }
  });
  if (sc != nullptr) {
    sc->bytes_read += rows * keep * sizeof(c32);
    sc->bytes_written += rows * n * sizeof(c32);  // zeros are real traffic
    sc->kernel_launches += 1;
  }
}

void truncate_copy_2d(std::span<const c32> src, std::span<c32> dst, std::size_t rows,
                      std::size_t nx, std::size_t ny, std::size_t kx, std::size_t ky,
                      trace::StageCounters* sc) {
  runtime::parallel_for(0, rows, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const c32* s = src.data() + r * nx * ny;
      c32* d = dst.data() + r * kx * ky;
      for (std::size_t x = 0; x < kx; ++x) {
        std::memcpy(d + x * ky, s + x * ny, ky * sizeof(c32));
      }
    }
  });
  if (sc != nullptr) {
    sc->bytes_read += rows * kx * ky * sizeof(c32);
    sc->bytes_written += rows * kx * ky * sizeof(c32);
    sc->kernel_launches += 1;
  }
}

void pad_copy_2d(std::span<const c32> src, std::span<c32> dst, std::size_t rows, std::size_t kx,
                 std::size_t ky, std::size_t nx, std::size_t ny, trace::StageCounters* sc) {
  runtime::parallel_for(0, rows, 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const c32* s = src.data() + r * kx * ky;
      c32* d = dst.data() + r * nx * ny;
      for (std::size_t x = 0; x < kx; ++x) {
        std::memcpy(d + x * ny, s + x * ky, ky * sizeof(c32));
        std::memset(d + x * ny + ky, 0, (ny - ky) * sizeof(c32));
      }
      std::memset(d + kx * ny, 0, (nx - kx) * ny * sizeof(c32));
    }
  });
  if (sc != nullptr) {
    sc->bytes_read += rows * kx * ky * sizeof(c32);
    sc->bytes_written += rows * nx * ny * sizeof(c32);
    sc->kernel_launches += 1;
  }
}

}  // namespace turbofno::baseline
