#include "gpusim/banks.hpp"

#include <algorithm>
#include <array>

namespace turbofno::gpusim {

WarpTransaction replay_warp_access(std::span<const std::uint32_t> word_addrs) {
  WarpTransaction t;
  t.lanes = word_addrs.size();
  if (word_addrs.empty()) return t;

  // Distinct words per bank determine serialization; identical words
  // broadcast within a cycle.
  std::array<std::vector<std::uint32_t>, kNumBanks> words_per_bank;
  for (const std::uint32_t w : word_addrs) {
    words_per_bank[w % kNumBanks].push_back(w);
  }
  for (std::size_t b = 0; b < kNumBanks; ++b) {
    auto& v = words_per_bank[b];
    if (v.empty()) continue;
    std::sort(v.begin(), v.end());
    const std::size_t distinct =
        static_cast<std::size_t>(std::unique(v.begin(), v.end()) - v.begin());
    t.banks_touched += 1;
    t.max_conflict = std::max(t.max_conflict, distinct);
  }
  t.cycles = t.max_conflict;
  return t;
}

void BankConflictAudit::record(const WarpTransaction& t) {
  instructions_ += 1;
  total_cycles_ += t.cycles;
  total_lanes_ += t.lanes;
}

std::vector<std::uint32_t> complex_access_words(std::span<const std::uint32_t> byte_addrs) {
  std::vector<std::uint32_t> words;
  words.reserve(byte_addrs.size() * 2);
  for (const std::uint32_t b : byte_addrs) {
    const std::uint32_t w = b / kBankWordBytes;
    words.push_back(w);
    words.push_back(w + 1);
  }
  return words;
}

}  // namespace turbofno::gpusim
