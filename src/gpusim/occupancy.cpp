#include "gpusim/occupancy.hpp"

#include <algorithm>
#include <cmath>

namespace turbofno::gpusim {

Occupancy occupancy_of(const SmLimits& sm, const BlockResources& block) {
  Occupancy o;
  if (block.threads == 0 || block.threads > sm.max_threads) {
    o.limiter = "threads/block";
    return o;
  }

  const std::size_t by_threads = sm.max_threads / block.threads;
  const std::size_t regs_per_block = block.registers_per_thread * block.threads;
  const std::size_t by_regs =
      regs_per_block == 0 ? sm.max_blocks : sm.registers / regs_per_block;
  const std::size_t by_smem = block.shared_memory_bytes == 0
                                  ? sm.max_blocks
                                  : sm.shared_memory_bytes / block.shared_memory_bytes;

  o.blocks_per_sm = std::min({by_threads, by_regs, by_smem, sm.max_blocks});
  if (o.blocks_per_sm == by_threads && by_threads <= by_regs && by_threads <= by_smem) {
    o.limiter = "threads";
  } else if (o.blocks_per_sm == by_regs && by_regs <= by_smem) {
    o.limiter = "registers";
  } else if (o.blocks_per_sm == by_smem) {
    o.limiter = "shared memory";
  } else {
    o.limiter = "max blocks";
  }
  o.occupancy = static_cast<double>(o.blocks_per_sm * block.threads) /
                static_cast<double>(sm.max_threads);
  return o;
}

double wave_efficiency(const SmLimits& sm, const BlockResources& block,
                       std::size_t grid_blocks) {
  if (grid_blocks == 0) return 0.0;
  const Occupancy o = occupancy_of(sm, block);
  if (o.blocks_per_sm == 0) return 0.0;
  const std::size_t wave = o.blocks_per_sm * sm.sm_count;
  const std::size_t waves = (grid_blocks + wave - 1) / wave;
  return static_cast<double>(grid_blocks) / static_cast<double>(waves * wave);
}

BlockResources fused_kernel_block(std::size_t modes, std::size_t fft_n) {
  BlockResources b;
  b.threads = 256;  // 8 warps: the 32x32 C tile at 4x4 per thread
  b.registers_per_thread = 64;
  // As double buffer (2 x m_s x k_s), Bs (k_s x n_s), sFFT (k_s x N_fft),
  // all complex (8 B) with Table 1 tiles m_s = n_s = 32, k_s = 8.
  const std::size_t as = 2 * modes * 8 * 8;
  const std::size_t bs = 8 * 32 * 8;
  const std::size_t sfft = 8 * fft_n * 8;
  b.shared_memory_bytes = as + bs + sfft;
  return b;
}

std::size_t fused_grid_1d(std::size_t batch, std::size_t out_dim, std::size_t n_tb) {
  return batch * ((out_dim + n_tb - 1) / n_tb);
}

}  // namespace turbofno::gpusim
