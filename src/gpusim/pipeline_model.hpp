// Predicts A100 pipeline time from the stage counters the CPU pipelines
// record, so every figure can be reported twice: measured on the CPU
// substrate and modeled on the paper's hardware.
#pragma once

#include <string>
#include <vector>

#include "gpusim/cost_model.hpp"
#include "trace/counters.hpp"

namespace turbofno::gpusim {

struct StagePrediction {
  std::string name;
  KernelCost cost;
};

struct PipelinePrediction {
  std::vector<StagePrediction> stages;
  double total_seconds = 0.0;
};

/// Applies the kernel cost model to each recorded stage.  Stages named with
/// a "fused" prefix are treated as a single launch regardless of recorded
/// launch counts (their launches were already merged by the pipeline).
PipelinePrediction predict(const GpuSpec& spec, const trace::PipelineCounters& counters);

/// Convenience: predicted speedup of `opt` over `base` (ratio of totals).
double predicted_speedup(const GpuSpec& spec, const trace::PipelineCounters& base,
                         const trace::PipelineCounters& opt);

}  // namespace turbofno::gpusim
