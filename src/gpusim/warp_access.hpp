// Warp access patterns: sequences of shared-memory instructions to replay
// against the bank model.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/banks.hpp"

namespace turbofno::gpusim {

/// One warp-synchronous shared-memory instruction: the byte address each
/// participating lane accesses (one c32 per lane).
struct WarpInstruction {
  std::vector<std::uint32_t> lane_byte_addrs;
};

/// A replayable phase: the ordered instructions one warp issues.
struct AccessPattern {
  std::vector<WarpInstruction> instructions;

  /// Mean fraction of the 32 banks addressed per instruction (the metric the
  /// paper quotes for Figure 7(b): "2 out of 32 banks active" = 6.25%).
  [[nodiscard]] double bank_coverage() const;
};

/// Replays every instruction (expanding c32 accesses to word pairs) and
/// returns the aggregate audit.
BankConflictAudit replay(const AccessPattern& pattern);

}  // namespace turbofno::gpusim
