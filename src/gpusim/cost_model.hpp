// Analytic A100 kernel cost model (roofline + launch overhead).
//
// The paper's performance claims reduce to memory-transaction and kernel-
// launch arithmetic (Section 5's analysis attributes the gains to traffic
// reduction).  Given a stage's global bytes, FLOPs and launch count, the
// model predicts its time on an A100-40GB PCIe as
//
//   t = launches * t_launch + max(bytes / BW_eff, flops / FLOPS_eff)
//
// with optional derating for shared-memory bank serialization.
#pragma once

#include <cstdint>

namespace turbofno::gpusim {

struct GpuSpec {
  const char* name = "NVIDIA A100-PCIE-40GB";
  double dram_bytes_per_s = 1.555e12;  // 1555 GB/s HBM2e
  double fp32_flop_per_s = 19.5e12;    // CUDA-core FP32 peak
  double launch_overhead_s = 5.0e-6;   // empirical kernel launch + sync cost
  double mem_efficiency = 0.85;        // achievable fraction of peak BW
  double compute_efficiency = 0.80;    // achievable fraction of peak FLOPs
};

enum class Bound { Memory, Compute, Launch };

struct KernelCost {
  double seconds = 0.0;
  double mem_seconds = 0.0;
  double compute_seconds = 0.0;
  double launch_seconds = 0.0;
  Bound bound = Bound::Memory;
};

/// Predicts one kernel (or fused kernel) stage.  `bank_utilization` in
/// (0, 1] derates the compute term: a phase running at 25% shared-memory
/// utilization spends 4x the cycles moving operands through shared memory.
KernelCost kernel_cost(const GpuSpec& spec, std::uint64_t bytes, std::uint64_t flops,
                       std::uint64_t launches, double bank_utilization = 1.0);

/// Arithmetic intensity (FLOPs/byte) at which the device transitions from
/// memory- to compute-bound.
double ridge_point(const GpuSpec& spec);

}  // namespace turbofno::gpusim
