#include "gpusim/cost_model.hpp"

#include <algorithm>

namespace turbofno::gpusim {

KernelCost kernel_cost(const GpuSpec& spec, std::uint64_t bytes, std::uint64_t flops,
                       std::uint64_t launches, double bank_utilization) {
  KernelCost c;
  const double util = std::clamp(bank_utilization, 1.0 / 64.0, 1.0);
  c.mem_seconds = static_cast<double>(bytes) / (spec.dram_bytes_per_s * spec.mem_efficiency);
  c.compute_seconds = static_cast<double>(flops) /
                      (spec.fp32_flop_per_s * spec.compute_efficiency) / util;
  c.launch_seconds = static_cast<double>(launches) * spec.launch_overhead_s;
  const double body = std::max(c.mem_seconds, c.compute_seconds);
  c.seconds = c.launch_seconds + body;
  if (c.launch_seconds > body) {
    c.bound = Bound::Launch;
  } else {
    c.bound = c.mem_seconds >= c.compute_seconds ? Bound::Memory : Bound::Compute;
  }
  return c;
}

double ridge_point(const GpuSpec& spec) {
  return (spec.fp32_flop_per_s * spec.compute_efficiency) /
         (spec.dram_bytes_per_s * spec.mem_efficiency);
}

}  // namespace turbofno::gpusim
