#include "gpusim/layouts.hpp"

namespace turbofno::gpusim {

namespace {
constexpr std::uint32_t kC32Bytes = 8;
}

AccessPattern fig7a_gemm_load_vkfft_layout() {
  // Shared A tile is column-major: pencil k occupies complex offsets
  // [k * kPencilLen, (k+1) * kPencilLen).  Under the VkFFT write assignment,
  // when GEMM lane t fetches its A fragment it lands on pencil t % 8 at
  // offset t / 8 (+ step per instruction): the eight lanes of each group
  // address the same bank pair.
  AccessPattern p;
  const std::size_t steps = kPencilLen / 4;  // 4 lanes cover one pencil
  for (std::size_t step = 0; step < steps; ++step) {
    WarpInstruction ins;
    ins.lane_byte_addrs.reserve(32);
    for (std::uint32_t t = 0; t < 32; ++t) {
      const std::uint32_t pencil = t % kPencils;
      const std::uint32_t offset = t / kPencils + static_cast<std::uint32_t>(step * 4);
      ins.lane_byte_addrs.push_back((pencil * kPencilLen + offset) * kC32Bytes);
    }
    p.instructions.push_back(std::move(ins));
  }
  return p;
}

AccessPattern fig7a_gemm_load_turbofno_layout() {
  // Same column-major tile, but lanes walk one pencil contiguously: lane t
  // reads offset t (+32 per instruction), covering all 32 banks each cycle.
  AccessPattern p;
  const std::size_t steps = kPencilLen / 32 * kPencils;
  for (std::size_t step = 0; step < steps; ++step) {
    const std::uint32_t pencil = static_cast<std::uint32_t>(step % kPencils);
    const std::uint32_t base = static_cast<std::uint32_t>(step / kPencils) * 32;
    WarpInstruction ins;
    ins.lane_byte_addrs.reserve(32);
    for (std::uint32_t t = 0; t < 32; ++t) {
      ins.lane_byte_addrs.push_back((pencil * kPencilLen + base + t) * kC32Bytes);
    }
    p.instructions.push_back(std::move(ins));
  }
  return p;
}

namespace {

// Final-stage FFT writeback: `threads` lanes each own `per_thread`
// consecutive complex outputs of a pencil of length threads*per_thread.
// Element e of lane t goes to offset t*per_thread + e; the swizzle rotates
// each lane's elements cyclically within its own segment by t/offset_div,
// so the skew is a permutation of the pencil (no padding, nothing spills).
AccessPattern fft_writeback(std::uint32_t threads, std::uint32_t per_thread,
                            std::uint32_t offset_div, bool swizzle) {
  AccessPattern p;
  for (std::uint32_t e = 0; e < per_thread; ++e) {
    WarpInstruction ins;
    ins.lane_byte_addrs.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      std::uint32_t elem = e;
      if (swizzle) elem = (e + t / offset_div) % per_thread;
      ins.lane_byte_addrs.push_back((t * per_thread + elem) * kC32Bytes);
    }
    p.instructions.push_back(std::move(ins));
  }
  return p;
}

}  // namespace

AccessPattern fig7b_fft16_writeback(bool swizzle) {
  // 16 lanes x 16 outputs each: unswizzled strides of 16 complex = 128 bytes
  // land every lane on the same bank pair (2/32 active).
  return fft_writeback(16, 16, 1, swizzle);
}

AccessPattern fig7c_fft8_writeback(bool swizzle) {
  // 16 lanes x 8 outputs: neighbours differ by 64 bytes (banks 0 vs 16), so
  // the smaller tid/2 skew suffices.
  return fft_writeback(16, 8, 2, swizzle);
}

AccessPattern fig8_gemm_epilogue_store(bool swizzle) {
  // Warp tile 32x16 complex; lane t owns the 4x4 block at rows
  // 4*(t/4)..4*(t/4)+3, cols 4*(t%4)..4*(t%4)+3.  Row stride is 16 complex
  // = 128 bytes = 32 words, so banks are decided by the column alone:
  // the eight lanes sharing t%4 collide (8 banks of 32 active).  Skewing by
  // t/4 complex (wrapped in-row) spreads each column instruction over all
  // banks exactly twice — the floor for 64 word accesses.
  AccessPattern p;
  constexpr std::uint32_t kRow = 16;  // complex per shared row
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      WarpInstruction ins;
      ins.lane_byte_addrs.reserve(32);
      for (std::uint32_t t = 0; t < 32; ++t) {
        const std::uint32_t row = 4 * (t / 4) + i;
        std::uint32_t col = 4 * (t % 4) + j;
        if (swizzle) col = (col + t / 4) % kRow;
        ins.lane_byte_addrs.push_back((row * kRow + col) * kC32Bytes);
      }
      p.instructions.push_back(std::move(ins));
    }
  }
  return p;
}

}  // namespace turbofno::gpusim
