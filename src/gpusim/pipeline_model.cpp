#include "gpusim/pipeline_model.hpp"

namespace turbofno::gpusim {

PipelinePrediction predict(const GpuSpec& spec, const trace::PipelineCounters& counters) {
  PipelinePrediction p;
  for (const auto& s : counters.stages()) {
    StagePrediction sp;
    sp.name = s.name;
    sp.cost = kernel_cost(spec, s.bytes_total(), s.flops, s.kernel_launches);
    p.total_seconds += sp.cost.seconds;
    p.stages.push_back(std::move(sp));
  }
  return p;
}

double predicted_speedup(const GpuSpec& spec, const trace::PipelineCounters& base,
                         const trace::PipelineCounters& opt) {
  const double tb = predict(spec, base).total_seconds;
  const double to = predict(spec, opt).total_seconds;
  return to > 0.0 ? tb / to : 0.0;
}

}  // namespace turbofno::gpusim
