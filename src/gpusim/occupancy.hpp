// SM occupancy / wave-quantization model.
//
// The paper's Fig 14/19 slowdown corner (small batch, large hidden dim) is
// an SM-utilization effect: the fused kernel assigns one thread block per
// (batch, spatial) pencil group, so small batches launch too few blocks to
// fill the device.  This model quantifies that: blocks-per-SM from the
// resource limits, then wave efficiency of a given grid.
#pragma once

#include <cstddef>

namespace turbofno::gpusim {

/// Per-SM hardware limits (A100 defaults).
struct SmLimits {
  std::size_t max_threads = 2048;
  std::size_t max_blocks = 32;
  std::size_t registers = 65536;
  std::size_t shared_memory_bytes = 164 * 1024;
  std::size_t sm_count = 108;
};

/// Resources one thread block consumes.
struct BlockResources {
  std::size_t threads = 256;
  std::size_t registers_per_thread = 64;
  std::size_t shared_memory_bytes = 0;
};

struct Occupancy {
  std::size_t blocks_per_sm = 0;   // simultaneous blocks one SM can host
  double occupancy = 0.0;          // resident threads / max threads
  const char* limiter = "";        // which resource capped it
};

/// Static occupancy of a kernel with the given per-block resources.
Occupancy occupancy_of(const SmLimits& sm, const BlockResources& block);

/// Wave efficiency of launching `grid_blocks`: useful work / (whole waves).
/// 1.0 when the grid fills complete waves; small grids waste most of the
/// last (only) wave.  Returns 0 for an empty grid.
double wave_efficiency(const SmLimits& sm, const BlockResources& block,
                       std::size_t grid_blocks);

/// Resources of the paper's fused FFT-CGEMM-iFFT block (Table 1 config):
/// 256 threads, and shared memory for As double-buffered tile + Bs tile +
/// the sFFT epilogue tile at the given mode count and FFT length.
BlockResources fused_kernel_block(std::size_t modes, std::size_t fft_n);

/// Grid size of the fused 1D kernel: one block per (batch) pencil group x
/// output-dim tiles.
std::size_t fused_grid_1d(std::size_t batch, std::size_t out_dim, std::size_t n_tb = 32);

}  // namespace turbofno::gpusim
