#include "gpusim/warp_access.hpp"

#include <algorithm>

namespace turbofno::gpusim {

double AccessPattern::bank_coverage() const {
  if (instructions.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& ins : instructions) {
    const auto words = complex_access_words(ins.lane_byte_addrs);
    const WarpTransaction t = replay_warp_access(words);
    acc += static_cast<double>(t.banks_touched) / static_cast<double>(kNumBanks);
  }
  return acc / static_cast<double>(instructions.size());
}

BankConflictAudit replay(const AccessPattern& pattern) {
  BankConflictAudit audit;
  for (const auto& ins : pattern.instructions) {
    const auto words = complex_access_words(ins.lane_byte_addrs);
    audit.record(replay_warp_access(words));
  }
  return audit;
}

}  // namespace turbofno::gpusim
