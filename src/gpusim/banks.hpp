// Shared-memory bank model (NVIDIA-style: 32 banks, 4-byte words).
//
// A warp instruction presents 32 word addresses (or a subset for partial
// warps).  Accesses to distinct words in the same bank serialize; accesses to
// the same word broadcast.  The paper's Figure 7/8 utilization numbers
// (25%, 6.25%, 100%) are statements about this model, which we reproduce
// exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace turbofno::gpusim {

inline constexpr std::size_t kNumBanks = 32;
inline constexpr std::size_t kBankWordBytes = 4;

/// Outcome of replaying one warp instruction against the bank model.
struct WarpTransaction {
  std::size_t cycles = 0;        // serialized passes (1 = conflict free)
  std::size_t banks_touched = 0; // distinct banks addressed
  std::size_t lanes = 0;         // participating lanes (word accesses)
  std::size_t max_conflict = 0;  // worst per-bank distinct-word count

  /// Paper's utilization metric: fraction of bank-cycles doing useful work.
  [[nodiscard]] double utilization() const noexcept {
    if (cycles == 0) return 0.0;
    return static_cast<double>(lanes) / static_cast<double>(cycles * kNumBanks);
  }
};

/// Replays one warp access: `word_addrs` are 4-byte word indices, one per
/// participating lane.  Identical addresses broadcast (count one word).
WarpTransaction replay_warp_access(std::span<const std::uint32_t> word_addrs);

/// Accumulates transactions over a whole kernel phase.
class BankConflictAudit {
 public:
  void record(const WarpTransaction& t);

  [[nodiscard]] std::size_t instructions() const noexcept { return instructions_; }
  [[nodiscard]] std::size_t total_cycles() const noexcept { return total_cycles_; }
  [[nodiscard]] std::size_t total_lanes() const noexcept { return total_lanes_; }

  /// Aggregate utilization over every replayed instruction.
  [[nodiscard]] double utilization() const noexcept {
    if (total_cycles_ == 0) return 0.0;
    return static_cast<double>(total_lanes_) / static_cast<double>(total_cycles_ * kNumBanks);
  }
  /// Average serialized cycles per instruction (1.0 = conflict free).
  [[nodiscard]] double mean_cycles() const noexcept {
    return instructions_ == 0 ? 0.0
                              : static_cast<double>(total_cycles_) /
                                    static_cast<double>(instructions_);
  }

 private:
  std::size_t instructions_ = 0;
  std::size_t total_cycles_ = 0;
  std::size_t total_lanes_ = 0;
};

/// Expands a per-lane *byte* address of an 8-byte complex access into its two
/// word addresses (a c32 store touches two consecutive banks).
std::vector<std::uint32_t> complex_access_words(std::span<const std::uint32_t> byte_addrs);

}  // namespace turbofno::gpusim
