// Shared-memory layout generators for the paper's Figures 7 and 8.
//
// Each generator emits the exact per-lane byte addresses one warp issues in
// the corresponding phase of the fused kernel; replaying them against the
// bank model reproduces the utilization numbers the paper reports:
//
//   Fig 7(a) top    VkFFT-style strided FFT output -> GEMM A-operand load:
//                   thread groups 0-7, 8-15, ... collide        -> 25%
//   Fig 7(a) bottom TurboFNO consecutive layout                 -> 100%
//   Fig 7(b)        16-elem/thread FFT writeback, no swizzle    -> 6.25%
//                   (2 of 32 banks active); with addr += tid    -> 100%
//   Fig 7(c)        8-elem/thread FFT writeback, no swizzle collides two
//                   threads apart; with addr += tid/2           -> 100%
//   Fig 8           CGEMM 4x4-tile epilogue store to the iFFT input tile,
//                   no swizzle                                  -> 25%;
//                   with addr += tid/4                          -> 100%
//
// Swizzled offsets wrap inside the row (mod the row width) so no padding is
// required, matching the paper's "without memory padding overhead".
#pragma once

#include <cstddef>

#include "gpusim/warp_access.hpp"

namespace turbofno::gpusim {

/// How many complex elements per shared tile pencil in the Fig 7 scenarios.
inline constexpr std::size_t kPencilLen = 64;
inline constexpr std::size_t kPencils = 8;  // == GEMM k_tb

/// Fig 7(a): a GEMM warp loading a column-major A fragment out of shared
/// memory that the FFT stage produced.
/// VkFFT assignment: FFT thread t held pencil t%8 at offset t/8, so a GEMM
/// column read serializes in groups of eight.
AccessPattern fig7a_gemm_load_vkfft_layout();
/// TurboFNO assignment: consecutive threads hold consecutive elements of the
/// same pencil; the GEMM column read is conflict-free.
AccessPattern fig7a_gemm_load_turbofno_layout();

/// Fig 7(b): final FFT stage writeback, 16 threads each owning 16
/// consecutive complex outputs of one pencil.  `swizzle` applies
/// addr += tid (in complex elements, wrapped in-pencil).
AccessPattern fig7b_fft16_writeback(bool swizzle);

/// Fig 7(c): same with 8 consecutive outputs per thread; swizzle is the
/// smaller addr += tid/2.
AccessPattern fig7c_fft8_writeback(bool swizzle);

/// Fig 8: CGEMM epilogue, a warp of 32 threads each storing its 4x4 complex
/// register tile into the 32x16 shared tile consumed by the iFFT.  `swizzle`
/// applies addr += tid/4 (complex elements, wrapped in-row).
AccessPattern fig8_gemm_epilogue_store(bool swizzle);

}  // namespace turbofno::gpusim
