// Performance accounting used by both the CPU pipelines and the GPU model.
//
// Every pipeline stage reports the global-memory bytes it would move and the
// complex FLOPs it performs.  The fused/unfused comparison in the paper is a
// statement about these counters; keeping them first-class lets tests assert
// the traffic reduction exactly rather than inferring it from wall-clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace turbofno::trace {

/// Byte/op/launch tally for one named pipeline stage.
struct StageCounters {
  std::string name;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t flops = 0;          // real FLOPs (1 cmul = 6, 1 cadd = 2)
  std::uint64_t kernel_launches = 0;
  double seconds = 0.0;             // measured wall-clock, if timed

  [[nodiscard]] std::uint64_t bytes_total() const noexcept { return bytes_read + bytes_written; }
  StageCounters& operator+=(const StageCounters& o) noexcept;
};

/// Ordered collection of stage counters for one pipeline execution.
class PipelineCounters {
 public:
  explicit PipelineCounters(std::string pipeline_name = {}) : name_(std::move(pipeline_name)) {}

  StageCounters& stage(const std::string& stage_name);
  [[nodiscard]] const std::vector<StageCounters>& stages() const noexcept { return stages_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] StageCounters total() const;
  void clear() noexcept { stages_.clear(); }

 private:
  std::string name_;
  std::vector<StageCounters> stages_;
};

/// FLOP conventions shared across modules.
inline constexpr std::uint64_t kFlopsPerCmul = 6;
inline constexpr std::uint64_t kFlopsPerCadd = 2;

/// Real FLOPs of a complex GEMM C[MxN] += A[MxK] B[KxN].
constexpr std::uint64_t cgemm_flops(std::uint64_t m, std::uint64_t n, std::uint64_t k) noexcept {
  return m * n * k * (kFlopsPerCmul + kFlopsPerCadd);
}

/// Real FLOPs of an unpruned radix-2 N-point complex FFT (per signal):
/// log2(N) stages of N/2 butterflies, each 1 cmul + 2 cadd = 10 real FLOPs.
std::uint64_t fft_flops(std::uint64_t n) noexcept;

}  // namespace turbofno::trace
