#include "trace/counters.hpp"

#include <bit>

namespace turbofno::trace {

StageCounters& StageCounters::operator+=(const StageCounters& o) noexcept {
  bytes_read += o.bytes_read;
  bytes_written += o.bytes_written;
  flops += o.flops;
  kernel_launches += o.kernel_launches;
  seconds += o.seconds;
  return *this;
}

StageCounters& PipelineCounters::stage(const std::string& stage_name) {
  for (auto& s : stages_) {
    if (s.name == stage_name) return s;
  }
  stages_.push_back(StageCounters{stage_name, 0, 0, 0, 0, 0.0});
  return stages_.back();
}

StageCounters PipelineCounters::total() const {
  StageCounters t{"total", 0, 0, 0, 0, 0.0};
  for (const auto& s : stages_) t += s;
  return t;
}

std::uint64_t fft_flops(std::uint64_t n) noexcept {
  if (n < 2) return 0;
  const auto stages = static_cast<std::uint64_t>(std::bit_width(n) - 1);
  const std::uint64_t butterflies = stages * (n / 2);
  return butterflies * (kFlopsPerCmul + 2 * kFlopsPerCadd);
}

}  // namespace turbofno::trace
