// Plain-text table / heatmap rendering for the benchmark harness.
//
// The bench binaries print the same rows and series the paper's figures
// plot; this module keeps their formatting consistent and pipe-friendly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace turbofno::trace {

/// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Renders with two-space column gaps; numeric-looking cells right-align.
  [[nodiscard]] std::string str() const;

  static std::string fmt(double v, int precision = 2);
  static std::string pct(double ratio, int precision = 1);  // 1.5 -> "150.0%"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// ASCII heatmap reproducing the paper's Fig 14 / Fig 19 style: rows are one
/// sweep axis, columns the other, each cell a signed speedup percentage
/// bucketed into glyphs (deep red=big speedup ... blue=slowdown).
class AsciiHeatmap {
 public:
  AsciiHeatmap(std::vector<std::string> row_labels, std::vector<std::string> col_labels);

  void set(std::size_t row, std::size_t col, double speedup_pct);
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> row_labels_;
  std::vector<std::string> col_labels_;
  std::vector<std::vector<double>> cells_;
};

}  // namespace turbofno::trace
