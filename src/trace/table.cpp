#include "trace/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace turbofno::trace {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, (ratio - 1.0) * 100.0);
  return buf;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' && c != '+' &&
        c != '%' && c != 'e' && c != 'x') {
      return false;
    }
  }
  return true;
}
}  // namespace

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

AsciiHeatmap::AsciiHeatmap(std::vector<std::string> row_labels, std::vector<std::string> col_labels)
    : row_labels_(std::move(row_labels)),
      col_labels_(std::move(col_labels)),
      cells_(row_labels_.size(), std::vector<double>(col_labels_.size(), 0.0)) {}

void AsciiHeatmap::set(std::size_t row, std::size_t col, double speedup_pct) {
  cells_.at(row).at(col) = speedup_pct;
}

std::string AsciiHeatmap::str() const {
  // Buckets mirror the paper's colour bar [-100%, +100%].
  auto glyph = [](double pct) -> const char* {
    if (pct >= 75.0) return " ## ";   // deep red
    if (pct >= 50.0) return " ++ ";
    if (pct >= 25.0) return " +  ";
    if (pct >= 0.0) return " .  ";
    if (pct >= -25.0) return " -  ";
    return " -- ";                    // blue (slower than baseline)
  };

  std::size_t label_w = 0;
  for (const auto& r : row_labels_) label_w = std::max(label_w, r.size());

  std::ostringstream os;
  os << std::string(label_w, ' ') << " |";
  for (const auto& c : col_labels_) {
    os << ' ' << (c.size() >= 3 ? c.substr(0, 3) : c + std::string(3 - c.size(), ' '));
  }
  os << "\n";
  os << std::string(label_w, '-') << "-+" << std::string(col_labels_.size() * 4, '-') << "\n";
  for (std::size_t r = 0; r < row_labels_.size(); ++r) {
    os << row_labels_[r] << std::string(label_w - row_labels_[r].size(), ' ') << " |";
    for (std::size_t c = 0; c < col_labels_.size(); ++c) os << glyph(cells_[r][c]);
    os << "\n";
  }
  os << "legend: ## >=+75%  ++ >=+50%  + >=+25%  . >=0%  - > -25%  -- <= -25% vs baseline\n";
  return os.str();
}

}  // namespace turbofno::trace
