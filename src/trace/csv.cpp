#include "trace/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runtime/env.hpp"

namespace turbofno::trace {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

namespace {

std::string escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string CsvWriter::str() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << escape(row[i]) << (i + 1 < row.size() ? "," : "");
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

bool CsvWriter::write_to(const std::string& dir, const std::string& name) const {
  if (dir.empty()) return false;
  std::ofstream f(dir + "/" + name + ".csv");
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

std::string CsvWriter::env_dir() { return runtime::env_string("TURBOFNO_CSV_DIR"); }

}  // namespace turbofno::trace
