// CSV export for benchmark results — set TURBOFNO_CSV_DIR to a directory
// and the figure benches drop one machine-readable file per figure next to
// their human-readable tables.
#pragma once

#include <string>
#include <vector>

namespace turbofno::trace {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Serializes with proper quoting of commas/quotes/newlines.
  [[nodiscard]] std::string str() const;

  /// Writes to `dir/name.csv`; returns false (without throwing) on IO
  /// failure or when dir is empty.
  bool write_to(const std::string& dir, const std::string& name) const;

  /// Value of TURBOFNO_CSV_DIR, or empty when unset.
  static std::string env_dir();

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace turbofno::trace
