#include "gemm/batched.hpp"

#include "gemm/cgemm.hpp"
#include "runtime/parallel.hpp"

namespace turbofno::gemm {

void cgemm_batched(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                   std::size_t lda, const c32* B, std::size_t ldb, c32 beta, c32* C,
                   std::size_t ldc, std::size_t batch, const BatchedStrides& strides) {
  if (batch == 0 || M == 0 || N == 0) return;
  // Parallelism across the batch; each instance runs the tiled kernel with
  // the runtime's nested-region guard (parallel_for inside a worker runs
  // inline, so there is no oversubscription).
  runtime::parallel_for(0, batch, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const c32* Ai = A + static_cast<std::ptrdiff_t>(i) * strides.a;
      const c32* Bi = B + static_cast<std::ptrdiff_t>(i) * strides.b;
      c32* Ci = C + static_cast<std::ptrdiff_t>(i) * strides.c;
      cgemm(M, N, K, alpha, Ai, lda, Bi, ldb, beta, Ci, ldc);
    }
  });
}

}  // namespace turbofno::gemm
