// Operand packing for the blocked CGEMM.
//
// Packing zero-fills tile remainders so the micro-kernel never branches on
// edges; zeros contribute nothing to the accumulation.
//
// Two layouts are produced:
//   - interleaved (c32) panels for the scalar backend, unchanged from the
//     seed kernel;
//   - split-complex (SoA) float panels for the SIMD backend, where each
//     k-slice stores all reals then all imaginaries so the micro-kernel's
//     inner loop is pure vertical FMA with no shuffles:
//       Apack[k] = { re[0..Mtb), im[0..Mtb) }   (2*Mtb floats per k)
//       Bpack[k] = { re[0..Ntb), im[0..Ntb) }   (2*Ntb floats per k)
#pragma once

#include <cstddef>
#include <cstring>

#include "tensor/complex.hpp"
#include "tensor/simd.hpp"

namespace turbofno::gemm {

/// Apack[k][i] = A[i0+i, k0+k]; rows beyond `mi` / depth beyond `kc` zeroed.
template <std::size_t Mtb, std::size_t Ktb>
inline void pack_a_tile(c32* Apack, const c32* A, std::size_t lda, std::size_t i0,
                        std::size_t k0, std::size_t mi, std::size_t kc) {
  for (std::size_t k = 0; k < Ktb; ++k) {
    c32* dst = Apack + k * Mtb;
    if (k < kc) {
      const c32* src = A + i0 * lda + (k0 + k);
      std::size_t i = 0;
      for (; i < mi; ++i) dst[i] = src[i * lda];
      for (; i < Mtb; ++i) dst[i] = c32{};
    } else {
      std::memset(dst, 0, Mtb * sizeof(c32));
    }
  }
}

/// Bpack[k][j] = B[k0+k, j0+j]; columns beyond `nj` / depth beyond `kc` zeroed.
template <std::size_t Ntb, std::size_t Ktb>
inline void pack_b_tile(c32* Bpack, const c32* B, std::size_t ldb, std::size_t k0,
                        std::size_t j0, std::size_t kc, std::size_t nj) {
  for (std::size_t k = 0; k < Ktb; ++k) {
    c32* dst = Bpack + k * Ntb;
    if (k < kc) {
      const c32* src = B + (k0 + k) * ldb + j0;
      std::memcpy(dst, src, nj * sizeof(c32));
      for (std::size_t j = nj; j < Ntb; ++j) dst[j] = c32{};
    } else {
      std::memset(dst, 0, Ntb * sizeof(c32));
    }
  }
}

/// Split-complex A panel: Apack[k][{re,im}][i] = A[i0+i, k0+k].
/// Rows beyond `mi` / depth beyond `kc` zeroed.  A is walked down a column
/// (stride lda), so this is a scalar gather regardless of backend.
template <std::size_t Mtb, std::size_t Ktb>
inline void pack_a_tile_split(float* Apack, const c32* A, std::size_t lda, std::size_t i0,
                              std::size_t k0, std::size_t mi, std::size_t kc) {
  for (std::size_t k = 0; k < Ktb; ++k) {
    float* re = Apack + k * 2 * Mtb;
    float* im = re + Mtb;
    if (k < kc) {
      const c32* src = A + i0 * lda + (k0 + k);
      std::size_t i = 0;
      for (; i < mi; ++i) {
        const c32 v = src[i * lda];
        re[i] = v.re;
        im[i] = v.im;
      }
      for (; i < Mtb; ++i) {
        re[i] = 0.0f;
        im[i] = 0.0f;
      }
    } else {
      std::memset(re, 0, 2 * Mtb * sizeof(float));
    }
  }
}

/// Split-complex B panel: Bpack[k][{re,im}][j] = B[k0+k, j0+j].  B rows are
/// contiguous, so the deinterleave runs at vector width.
template <std::size_t Ntb, std::size_t Ktb, class B = simd::Active>
inline void pack_b_tile_split(float* Bpack, const c32* Bsrc, std::size_t ldb, std::size_t k0,
                              std::size_t j0, std::size_t kc, std::size_t nj) {
  for (std::size_t k = 0; k < Ktb; ++k) {
    float* re = Bpack + k * 2 * Ntb;
    float* im = re + Ntb;
    if (k < kc) {
      const c32* src = Bsrc + (k0 + k) * ldb + j0;
      simd::split_planes<B>(src, re, im, nj);
      for (std::size_t j = nj; j < Ntb; ++j) {
        re[j] = 0.0f;
        im[j] = 0.0f;
      }
    } else {
      std::memset(re, 0, 2 * Ntb * sizeof(float));
    }
  }
}

}  // namespace turbofno::gemm
