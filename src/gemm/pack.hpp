// Operand packing for the blocked CGEMM.
//
// Packing zero-fills tile remainders so the micro-kernel never branches on
// edges; zeros contribute nothing to the accumulation.
#pragma once

#include <cstddef>
#include <cstring>

#include "tensor/complex.hpp"

namespace turbofno::gemm {

/// Apack[k][i] = A[i0+i, k0+k]; rows beyond `mi` / depth beyond `kc` zeroed.
template <std::size_t Mtb, std::size_t Ktb>
inline void pack_a_tile(c32* Apack, const c32* A, std::size_t lda, std::size_t i0,
                        std::size_t k0, std::size_t mi, std::size_t kc) {
  for (std::size_t k = 0; k < Ktb; ++k) {
    c32* dst = Apack + k * Mtb;
    if (k < kc) {
      const c32* src = A + i0 * lda + (k0 + k);
      std::size_t i = 0;
      for (; i < mi; ++i) dst[i] = src[i * lda];
      for (; i < Mtb; ++i) dst[i] = c32{};
    } else {
      std::memset(dst, 0, Mtb * sizeof(c32));
    }
  }
}

/// Bpack[k][j] = B[k0+k, j0+j]; columns beyond `nj` / depth beyond `kc` zeroed.
template <std::size_t Ntb, std::size_t Ktb>
inline void pack_b_tile(c32* Bpack, const c32* B, std::size_t ldb, std::size_t k0,
                        std::size_t j0, std::size_t kc, std::size_t nj) {
  for (std::size_t k = 0; k < Ktb; ++k) {
    c32* dst = Bpack + k * Ntb;
    if (k < kc) {
      const c32* src = B + (k0 + k) * ldb + j0;
      std::memcpy(dst, src, nj * sizeof(c32));
      for (std::size_t j = nj; j < Ntb; ++j) dst[j] = c32{};
    } else {
      std::memset(dst, 0, Ntb * sizeof(c32));
    }
  }
}

}  // namespace turbofno::gemm
