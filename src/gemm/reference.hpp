// Naive triple-loop complex GEMM: the correctness oracle for the blocked
// kernel and the fused pipelines.  Row-major throughout.
#pragma once

#include <cstddef>

#include "tensor/complex.hpp"

namespace turbofno::gemm {

/// C[MxN] = alpha * A[MxK] * B[KxN] + beta * C  (row-major, leading dims).
void cgemm_reference(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                     std::size_t lda, const c32* B, std::size_t ldb, c32 beta, c32* C,
                     std::size_t ldc);

}  // namespace turbofno::gemm
