#include "gemm/cgemm.hpp"

#include <algorithm>

#include "gemm/micro_kernel.hpp"
#include "gemm/pack.hpp"
#include "runtime/parallel.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/simd.hpp"

namespace turbofno::gemm {

namespace {

// Scalar-backend tile task: interleaved panels, the seed's auto-vectorized
// kernel.  Kept verbatim as the scalar baseline the SIMD path is benched
// against.
template <class Cfg>
void tile_task_scalar(std::size_t ti, std::size_t tj, std::size_t M, std::size_t N, std::size_t K,
                      c32 alpha, const c32* A, std::size_t lda, const c32* B, std::size_t ldb,
                      c32 beta, c32* C, std::size_t ldc, c32* Apack, c32* Bpack) {
  constexpr std::size_t Mtb = Cfg::Mtb;
  constexpr std::size_t Ntb = Cfg::Ntb;
  constexpr std::size_t Ktb = Cfg::Ktb;
  constexpr std::size_t Mt = Cfg::Mt;
  constexpr std::size_t Nt = Cfg::Nt;

  const std::size_t i0 = ti * Mtb;
  const std::size_t j0 = tj * Ntb;
  const std::size_t mi = std::min(Mtb, M - i0);
  const std::size_t nj = std::min(Ntb, N - j0);

  // Accumulators for the whole C tile, kept in a stack block; the register
  // micro-tiles stream through it.  (Mtb*Ntb c32 = 8 KiB at 32x32.)
  c32 acc_tile[Mtb * Ntb];
  std::fill(acc_tile, acc_tile + Mtb * Ntb, c32{});

  for (std::size_t k0 = 0; k0 < K; k0 += Ktb) {
    const std::size_t kc = std::min(Ktb, K - k0);
    pack_a_tile<Mtb, Ktb>(Apack, A, lda, i0, k0, mi, kc);
    pack_b_tile<Ntb, Ktb>(Bpack, B, ldb, k0, j0, kc, nj);

    for (std::size_t ii = 0; ii < Mtb; ii += Mt) {
      for (std::size_t jj = 0; jj < Ntb; jj += Nt) {
        c32 acc[Mt][Nt];
        for (std::size_t i = 0; i < Mt; ++i)
          for (std::size_t j = 0; j < Nt; ++j) acc[i][j] = acc_tile[(ii + i) * Ntb + (jj + j)];
        micro_accumulate<Mt, Nt, Mtb, Ntb>(acc, Apack, Bpack, kc, ii, jj);
        for (std::size_t i = 0; i < Mt; ++i)
          for (std::size_t j = 0; j < Nt; ++j) acc_tile[(ii + i) * Ntb + (jj + j)] = acc[i][j];
      }
    }
  }

  // Epilogue: C = alpha * acc + beta * C on the valid region.
  for (std::size_t i = 0; i < mi; ++i) {
    c32* crow = C + (i0 + i) * ldc + j0;
    const c32* arow = acc_tile + i * Ntb;
    if (beta == c32{0.0f, 0.0f}) {
      for (std::size_t j = 0; j < nj; ++j) crow[j] = alpha * arow[j];
    } else {
      for (std::size_t j = 0; j < nj; ++j) crow[j] = alpha * arow[j] + beta * crow[j];
    }
  }
}

// SIMD tile task: split-complex panels and accumulator planes; the register
// block runs the vector micro-kernel, the epilogue re-interleaves into C
// with masked tails.
template <class Cfg, class B>
void tile_task_simd(std::size_t ti, std::size_t tj, std::size_t M, std::size_t N, std::size_t K,
                    c32 alpha, const c32* A, std::size_t lda, const c32* Bm, std::size_t ldb,
                    c32 beta, c32* C, std::size_t ldc, float* Apack, float* Bpack) {
  constexpr std::size_t Mtb = Cfg::Mtb;
  constexpr std::size_t Ntb = Cfg::Ntb;
  constexpr std::size_t Ktb = Cfg::Ktb;
  constexpr std::size_t Mt = Cfg::Mt;
  constexpr std::size_t JW = kJBlock<B, Cfg::Nt>;
  static_assert(Ntb % JW == 0, "j-block must divide the tile width");
  using V = typename B::cvec;

  const std::size_t i0 = ti * Mtb;
  const std::size_t j0 = tj * Ntb;
  const std::size_t mi = std::min(Mtb, M - i0);
  const std::size_t nj = std::min(Ntb, N - j0);

  // Split accumulator planes for the whole C tile (re plane then im plane;
  // same bytes as the interleaved tile).
  alignas(kBufferAlignment) float acc_tile[2 * Mtb * Ntb];
  std::fill(acc_tile, acc_tile + 2 * Mtb * Ntb, 0.0f);

  for (std::size_t k0 = 0; k0 < K; k0 += Ktb) {
    const std::size_t kc = std::min(Ktb, K - k0);
    pack_a_tile_split<Mtb, Ktb>(Apack, A, lda, i0, k0, mi, kc);
    pack_b_tile_split<Ntb, Ktb, B>(Bpack, Bm, ldb, k0, j0, kc, nj);

    for (std::size_t ii = 0; ii < Mtb; ii += Mt) {
      for (std::size_t jj = 0; jj < Ntb; jj += JW) {
        micro_accumulate_split<B, Mt, JW, Mtb, Ntb>(acc_tile, Apack, Bpack, kc, ii, jj);
      }
    }
  }

  // Epilogue: C = alpha * acc + beta * C, re-interleaving the split planes.
  const V alpha_v = B::broadcast(alpha);
  const V beta_v = B::broadcast(beta);
  const bool beta_zero = beta == c32{0.0f, 0.0f};
  for (std::size_t i = 0; i < mi; ++i) {
    c32* crow = C + (i0 + i) * ldc + j0;
    const float* are = acc_tile + i * Ntb;
    const float* aim = acc_tile + Mtb * Ntb + i * Ntb;
    std::size_t j = 0;
    for (; j + B::lanes <= nj; j += B::lanes) {
      V res = B::cmul(alpha_v, B::load_split(are + j, aim + j));
      if (!beta_zero) res = B::cmadd(res, beta_v, B::load(crow + j));
      B::store(crow + j, res);
    }
    if (j < nj) {
      const std::size_t rem = nj - j;
      V res = B::cmul(alpha_v, B::load_split(are + j, aim + j));
      if (!beta_zero) res = B::cmadd(res, beta_v, B::load_partial(crow + j, rem));
      B::store_partial(crow + j, res, rem);
    }
  }
}

}  // namespace

template <class Cfg, class B>
void cgemm_tiled_backend(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                         std::size_t lda, const c32* Bm, std::size_t ldb, c32 beta, c32* C,
                         std::size_t ldc) {
  if (M == 0 || N == 0) return;
  const std::size_t tiles_m = (M + Cfg::Mtb - 1) / Cfg::Mtb;
  const std::size_t tiles_n = (N + Cfg::Ntb - 1) / Cfg::Ntb;

  runtime::parallel_for(0, tiles_m * tiles_n, 1, [&](std::size_t lo, std::size_t hi) {
    if constexpr (B::lanes == 1) {
      AlignedBuffer<c32> Apack(Cfg::Mtb * Cfg::Ktb);
      AlignedBuffer<c32> Bpack(Cfg::Ntb * Cfg::Ktb);
      for (std::size_t t = lo; t < hi; ++t) {
        tile_task_scalar<Cfg>(t / tiles_n, t % tiles_n, M, N, K, alpha, A, lda, Bm, ldb, beta, C,
                              ldc, Apack.data(), Bpack.data());
      }
    } else {
      AlignedBuffer<float> Apack(2 * Cfg::Mtb * Cfg::Ktb);
      AlignedBuffer<float> Bpack(2 * Cfg::Ntb * Cfg::Ktb);
      for (std::size_t t = lo; t < hi; ++t) {
        tile_task_simd<Cfg, B>(t / tiles_n, t % tiles_n, M, N, K, alpha, A, lda, Bm, ldb, beta, C,
                               ldc, Apack.data(), Bpack.data());
      }
    }
  });
}

template <class Cfg>
void cgemm_tiled(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                 std::size_t lda, const c32* B, std::size_t ldb, c32 beta, c32* C,
                 std::size_t ldc) {
  cgemm_tiled_backend<Cfg, simd::Active>(M, N, K, alpha, A, lda, B, ldb, beta, C, ldc);
}

// Instantiations for the public shapes + ablation sweep.
template void cgemm_tiled<FusedTiles>(std::size_t, std::size_t, std::size_t, c32, const c32*,
                                      std::size_t, const c32*, std::size_t, c32, c32*,
                                      std::size_t);
template void cgemm_tiled<StandaloneTiles>(std::size_t, std::size_t, std::size_t, c32, const c32*,
                                           std::size_t, const c32*, std::size_t, c32, c32*,
                                           std::size_t);
template void cgemm_tiled<AblTilesSmall>(std::size_t, std::size_t, std::size_t, c32, const c32*,
                                         std::size_t, const c32*, std::size_t, c32, c32*,
                                         std::size_t);
template void cgemm_tiled<AblTilesWideN>(std::size_t, std::size_t, std::size_t, c32, const c32*,
                                         std::size_t, const c32*, std::size_t, c32, c32*,
                                         std::size_t);
template void cgemm_tiled<AblTilesTallM>(std::size_t, std::size_t, std::size_t, c32, const c32*,
                                         std::size_t, const c32*, std::size_t, c32, c32*,
                                         std::size_t);
template void cgemm_tiled<AblTilesDeepK>(std::size_t, std::size_t, std::size_t, c32, const c32*,
                                         std::size_t, const c32*, std::size_t, c32, c32*,
                                         std::size_t);
template void cgemm_tiled<AblTilesReg2>(std::size_t, std::size_t, std::size_t, c32, const c32*,
                                        std::size_t, const c32*, std::size_t, c32, c32*,
                                        std::size_t);
template void cgemm_tiled<AblTilesReg8>(std::size_t, std::size_t, std::size_t, c32, const c32*,
                                        std::size_t, const c32*, std::size_t, c32, c32*,
                                        std::size_t);

// Explicit-backend instantiations for the parity tests and the SIMD micro
// bench.  The scalar pair always exists; the Active pair collapses onto it
// in a scalar-only build.
template void cgemm_tiled_backend<FusedTiles, simd::ScalarBackend>(std::size_t, std::size_t,
                                                                   std::size_t, c32, const c32*,
                                                                   std::size_t, const c32*,
                                                                   std::size_t, c32, c32*,
                                                                   std::size_t);
template void cgemm_tiled_backend<StandaloneTiles, simd::ScalarBackend>(std::size_t, std::size_t,
                                                                        std::size_t, c32,
                                                                        const c32*, std::size_t,
                                                                        const c32*, std::size_t,
                                                                        c32, c32*, std::size_t);
#if TURBOFNO_SIMD_HAVE_AVX2
template void cgemm_tiled_backend<FusedTiles, simd::Avx2Backend>(std::size_t, std::size_t,
                                                                 std::size_t, c32, const c32*,
                                                                 std::size_t, const c32*,
                                                                 std::size_t, c32, c32*,
                                                                 std::size_t);
template void cgemm_tiled_backend<StandaloneTiles, simd::Avx2Backend>(std::size_t, std::size_t,
                                                                      std::size_t, c32,
                                                                      const c32*, std::size_t,
                                                                      const c32*, std::size_t,
                                                                      c32, c32*, std::size_t);
#endif

void cgemm(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A, std::size_t lda,
           const c32* B, std::size_t ldb, c32 beta, c32* C, std::size_t ldc) {
  // The FNO GEMM is tall-and-skinny (huge M, moderate N/K); the standalone
  // 64x64 tile amortizes packing best for large M, while the 32x32 fused
  // shape wins when N is small.
  if (N >= 48) {
    cgemm_tiled<StandaloneTiles>(M, N, K, alpha, A, lda, B, ldb, beta, C, ldc);
  } else {
    cgemm_tiled<FusedTiles>(M, N, K, alpha, A, lda, B, ldb, beta, C, ldc);
  }
}

std::uint64_t cgemm_bytes(std::size_t M, std::size_t N, std::size_t K, const TileShape& tiles,
                          bool beta_nonzero) noexcept {
  const std::uint64_t tiles_m = (M + tiles.mtb - 1) / tiles.mtb;
  const std::uint64_t tiles_n = (N + tiles.ntb - 1) / tiles.ntb;
  // Each C tile reads its A panel row and B panel column once.
  const std::uint64_t a_reads = tiles_n * (static_cast<std::uint64_t>(M) * K);
  const std::uint64_t b_reads = tiles_m * (static_cast<std::uint64_t>(K) * N);
  const std::uint64_t c_write = static_cast<std::uint64_t>(M) * N;
  const std::uint64_t c_read = beta_nonzero ? c_write : 0;
  return (a_reads + b_reads + c_read + c_write) * sizeof(c32);
}

}  // namespace turbofno::gemm
