// Register-tile micro-kernel of the blocked CGEMM.
//
// Packed operand layout (both k-major) so the inner loop streams
// contiguously, the CPU analogue of the shared-memory A/B tiles in the
// paper's Figure 9 pseudocode:
//   Apack[Ktb][Mtb]  — Apack[k][i] = A[i, k0+k]  (column-major A tile)
//   Bpack[Ktb][Ntb]  — Bpack[k][j] = B[k0+k, j]
//
// The Mt x Nt accumulator block lives entirely in registers; GCC vectorizes
// the j-dimension (contiguous Bpack row) at -O3.
#pragma once

#include <cstddef>

#include "tensor/complex.hpp"

namespace turbofno::gemm {

/// acc[Mt][Nt] += Apack_col(k)[i0..i0+Mt) x Bpack_row(k)[j0..j0+Nt) over kc
/// values of k.
template <std::size_t Mt, std::size_t Nt, std::size_t Mtb, std::size_t Ntb>
inline void micro_accumulate(c32 (&acc)[Mt][Nt], const c32* Apack, const c32* Bpack,
                             std::size_t kc, std::size_t i0, std::size_t j0) {
  for (std::size_t k = 0; k < kc; ++k) {
    const c32* arow = Apack + k * Mtb + i0;
    const c32* brow = Bpack + k * Ntb + j0;
    for (std::size_t i = 0; i < Mt; ++i) {
      const c32 a = arow[i];
      for (std::size_t j = 0; j < Nt; ++j) {
        cmadd(acc[i][j], a, brow[j]);
      }
    }
  }
}

/// Writes the accumulator block into C with alpha/beta, honouring edge
/// bounds (mi/nj = valid rows/cols of this block).
template <std::size_t Mt, std::size_t Nt>
inline void micro_store(const c32 (&acc)[Mt][Nt], c32 alpha, c32 beta, c32* C, std::size_t ldc,
                        std::size_t mi, std::size_t nj) {
  for (std::size_t i = 0; i < mi; ++i) {
    for (std::size_t j = 0; j < nj; ++j) {
      C[i * ldc + j] = alpha * acc[i][j] + beta * C[i * ldc + j];
    }
  }
}

}  // namespace turbofno::gemm
