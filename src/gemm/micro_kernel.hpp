// Register-tile micro-kernels of the blocked CGEMM.
//
// Packed operand layout (both k-major) so the inner loop streams
// contiguously, the CPU analogue of the shared-memory A/B tiles in the
// paper's Figure 9 pseudocode:
//   Apack[Ktb][Mtb]  — Apack[k][i] = A[i, k0+k]  (column-major A tile)
//   Bpack[Ktb][Ntb]  — Bpack[k][j] = B[k0+k, j]
//
// Two kernels:
//   micro_accumulate        the seed's scalar kernel over interleaved (c32)
//                           panels; the scalar backend's GEMM path and the
//                           bench baseline.
//   micro_accumulate_split  explicit-SIMD kernel over split-complex (SoA)
//                           float panels (see pack.hpp).  The Mt x JW
//                           register block holds re/im vector pairs; each k
//                           step is a B-vector load, Mt broadcasts, and
//                           Mt * JW/lanes complex FMAs — no shuffles.
#pragma once

#include <cstddef>

#include "tensor/complex.hpp"
#include "tensor/simd.hpp"

namespace turbofno::gemm {

/// acc[Mt][Nt] += Apack_col(k)[i0..i0+Mt) x Bpack_row(k)[j0..j0+Nt) over kc
/// values of k.
template <std::size_t Mt, std::size_t Nt, std::size_t Mtb, std::size_t Ntb>
inline void micro_accumulate(c32 (&acc)[Mt][Nt], const c32* Apack, const c32* Bpack,
                             std::size_t kc, std::size_t i0, std::size_t j0) {
  for (std::size_t k = 0; k < kc; ++k) {
    const c32* arow = Apack + k * Mtb + i0;
    const c32* brow = Bpack + k * Ntb + j0;
    for (std::size_t i = 0; i < Mt; ++i) {
      const c32 a = arow[i];
      for (std::size_t j = 0; j < Nt; ++j) {
        cmadd(acc[i][j], a, brow[j]);
      }
    }
  }
}

/// Writes the accumulator block into C with alpha/beta, honouring edge
/// bounds (mi/nj = valid rows/cols of this block).
template <std::size_t Mt, std::size_t Nt>
inline void micro_store(const c32 (&acc)[Mt][Nt], c32 alpha, c32 beta, c32* C, std::size_t ldc,
                        std::size_t mi, std::size_t nj) {
  for (std::size_t i = 0; i < mi; ++i) {
    for (std::size_t j = 0; j < nj; ++j) {
      C[i * ldc + j] = alpha * acc[i][j] + beta * C[i * ldc + j];
    }
  }
}

/// The j-block width of the SIMD register tile for a config whose scalar
/// register tile is Mt x Nt: at least one full vector, otherwise Nt.
template <class B, std::size_t Nt>
inline constexpr std::size_t kJBlock = Nt >= B::lanes ? Nt : B::lanes;

/// Split-complex accumulator tile += Apack panel x Bpack panel over kc steps.
///
/// `acc` holds the Mtb x Ntb tile as two planes: re at [i * Ntb + j], im at
/// [Mtb * Ntb + i * Ntb + j].  The (i0, j0) register block of shape
/// Mt x JW stays in registers for the whole kc loop.
template <class B, std::size_t Mt, std::size_t JW, std::size_t Mtb, std::size_t Ntb>
inline void micro_accumulate_split(float* acc, const float* Apack, const float* Bpack,
                                   std::size_t kc, std::size_t i0, std::size_t j0) {
  static_assert(JW % B::lanes == 0, "j-block must be whole vectors");
  constexpr std::size_t NV = JW / B::lanes;
  using V = typename B::cvec;

  float* acc_re = acc + i0 * Ntb + j0;
  float* acc_im = acc + Mtb * Ntb + i0 * Ntb + j0;

  V r[Mt][NV];
  for (std::size_t i = 0; i < Mt; ++i) {
    for (std::size_t v = 0; v < NV; ++v) {
      r[i][v] = B::load_split(acc_re + i * Ntb + v * B::lanes, acc_im + i * Ntb + v * B::lanes);
    }
  }

  for (std::size_t k = 0; k < kc; ++k) {
    const float* bre = Bpack + k * 2 * Ntb + j0;
    const float* bim = bre + Ntb;
    V b[NV];
    for (std::size_t v = 0; v < NV; ++v) {
      b[v] = B::load_split(bre + v * B::lanes, bim + v * B::lanes);
    }
    const float* are = Apack + k * 2 * Mtb + i0;
    const float* aim = are + Mtb;
    for (std::size_t i = 0; i < Mt; ++i) {
      const V a = B::broadcast_split(are[i], aim[i]);
      for (std::size_t v = 0; v < NV; ++v) {
        r[i][v] = B::cmadd(r[i][v], a, b[v]);
      }
    }
  }

  for (std::size_t i = 0; i < Mt; ++i) {
    for (std::size_t v = 0; v < NV; ++v) {
      B::store_split(acc_re + i * Ntb + v * B::lanes, acc_im + i * Ntb + v * B::lanes, r[i][v]);
    }
  }
}

}  // namespace turbofno::gemm
