// Strided-batched CGEMM — the cuBLAS-style single-call interface the FNO
// pipelines use: one logical launch covering `batch` independent GEMMs with
// fixed strides between operand instances.
#pragma once

#include <cstddef>

#include "tensor/complex.hpp"

namespace turbofno::gemm {

struct BatchedStrides {
  std::ptrdiff_t a = 0;  // elements between consecutive A instances (0 = shared A)
  std::ptrdiff_t b = 0;  // elements between consecutive B instances (0 = shared B)
  std::ptrdiff_t c = 0;  // elements between consecutive C instances
};

/// For each i < batch:
///   C_i = alpha * A_i * B_i + beta * C_i      (row-major, as cgemm()).
/// A stride of zero broadcasts that operand across the batch (the FNO case:
/// one weight matrix A shared by every batch entry).
/// Parallelized over (batch x C tiles); deterministic.
void cgemm_batched(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                   std::size_t lda, const c32* B, std::size_t ldb, c32 beta, c32* C,
                   std::size_t ldc, std::size_t batch, const BatchedStrides& strides);

}  // namespace turbofno::gemm
