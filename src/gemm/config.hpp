// Blocking configuration of the TurboFNO CGEMM (paper Table 1).
//
// The kernel is "fully templated" (Section 3.1): thread-block tile shape and
// register tile factors are compile-time parameters, instantiated for the
// shapes the pipelines use plus an ablation sweep.  On the CPU substrate the
// thread-block tile becomes the per-task cache tile and the register tile
// the innermost accumulator block.
#pragma once

#include <cstddef>

namespace turbofno::gemm {

/// Compile-time tile shape.  Names mirror the paper:
///   Mtb x Ntb x Ktb — thread-block (cache) tile,
///   Mt x Nt         — per-thread register tile.
template <std::size_t Mtb_, std::size_t Ntb_, std::size_t Ktb_, std::size_t Mt_ = 4,
          std::size_t Nt_ = 4>
struct Tiles {
  static constexpr std::size_t Mtb = Mtb_;
  static constexpr std::size_t Ntb = Ntb_;
  static constexpr std::size_t Ktb = Ktb_;
  static constexpr std::size_t Mt = Mt_;
  static constexpr std::size_t Nt = Nt_;
  static_assert(Mtb % Mt == 0 && Ntb % Nt == 0, "register tile must divide block tile");
};

/// Paper Table 1: m_tb=32, n_tb=32, k_tb=8, m_t=n_t=4 for the fused kernel;
/// Section 3.1 quotes Mtb=Ntb=64 for the standalone CGEMM.  We expose both.
using FusedTiles = Tiles<32, 32, 8, 4, 4>;
using StandaloneTiles = Tiles<64, 64, 8, 4, 4>;

/// Runtime view of a tile configuration (for printing Table 1 and sweeps).
struct TileShape {
  std::size_t mtb = 0, ntb = 0, ktb = 0, mt = 0, nt = 0;
};

template <class Cfg>
constexpr TileShape shape_of() noexcept {
  return {Cfg::Mtb, Cfg::Ntb, Cfg::Ktb, Cfg::Mt, Cfg::Nt};
}

/// Warp-level tile of the paper's Table 1 (m_w x n_w = 32 x 16).  The CPU
/// substrate has no warps; the value is carried for the GPU cost model and
/// the Table 1 bench.
inline constexpr std::size_t kWarpTileM = 32;
inline constexpr std::size_t kWarpTileN = 16;

}  // namespace turbofno::gemm
