#include "gemm/reference.hpp"

namespace turbofno::gemm {

void cgemm_reference(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                     std::size_t lda, const c32* B, std::size_t ldb, c32 beta, c32* C,
                     std::size_t ldc) {
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      c32 acc{};
      for (std::size_t k = 0; k < K; ++k) {
        cmadd(acc, A[i * lda + k], B[k * ldb + j]);
      }
      C[i * ldc + j] = alpha * acc + beta * C[i * ldc + j];
    }
  }
}

}  // namespace turbofno::gemm
