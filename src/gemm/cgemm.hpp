// Blocked complex single-precision GEMM (row-major).
//
// The public entry point dispatches to a templated tiled kernel; the tile
// shapes are the paper's Table 1 configurations, plus a template header
// (`cgemm_tiled`) so benches can sweep alternatives (Section 3.1's "fully
// templated CGEMM kernel").
#pragma once

#include <cstddef>
#include <cstdint>

#include "gemm/config.hpp"
#include "tensor/complex.hpp"
#include "tensor/simd.hpp"

namespace turbofno::gemm {

/// C[MxN] = alpha * A[MxK] * B[KxN] + beta * C   (row-major).
/// Parallelized over C tiles; deterministic for a fixed tile config.
/// Runs the SIMD backend the library was compiled with (simd::Active).
void cgemm(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A, std::size_t lda,
           const c32* B, std::size_t ldb, c32 beta, c32* C, std::size_t ldc);

/// Same kernel with an explicit tile configuration (for the ablation bench).
template <class Cfg>
void cgemm_tiled(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                 std::size_t lda, const c32* B, std::size_t ldb, c32 beta, c32* C,
                 std::size_t ldc);

/// Explicit-backend variant so benches and parity tests can pit the scalar
/// and SIMD code paths against each other inside one binary.  Instantiated
/// in cgemm.cpp for {FusedTiles, StandaloneTiles} x {ScalarBackend, Active}.
template <class Cfg, class Backend>
void cgemm_tiled_backend(std::size_t M, std::size_t N, std::size_t K, c32 alpha, const c32* A,
                         std::size_t lda, const c32* B, std::size_t ldb, c32 beta, c32* C,
                         std::size_t ldc);

// Explicitly instantiated tile configurations (defined in cgemm.cpp).
using AblTilesSmall = Tiles<16, 16, 8, 4, 4>;
using AblTilesWideN = Tiles<32, 64, 8, 4, 4>;
using AblTilesTallM = Tiles<64, 32, 8, 4, 4>;
using AblTilesDeepK = Tiles<32, 32, 16, 4, 4>;
using AblTilesReg2 = Tiles<32, 32, 8, 2, 2>;
using AblTilesReg8 = Tiles<64, 64, 8, 8, 8>;

/// Bytes a cache-oblivious observer would count for one blocked CGEMM pass
/// (A and B read once per C tile row/col, C read+written once).
std::uint64_t cgemm_bytes(std::size_t M, std::size_t N, std::size_t K, const TileShape& tiles,
                          bool beta_nonzero) noexcept;

}  // namespace turbofno::gemm
