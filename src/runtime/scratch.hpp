// Per-thread scratch arena for kernel workspaces.
//
// The FFT and fused-pipeline hot loops need small per-task buffers (FFT
// ping-pong storage, transpose slabs, split-complex accumulator tiles).
// Allocating them as AlignedBuffers inside every parallel_for chunk put a
// heap round trip on the steady-state serving path; this arena instead
// hands out 64-byte-aligned slices of thread-local, grow-only storage.
// After a warm-up pass each thread reuses its high-water-mark allocation
// forever, so repeated forwards do no heap allocation at all.
//
// Usage inside a kernel:
//
//   auto& arena = runtime::tls_scratch();
//   const auto scope = arena.scope();          // rewinds on destruction
//   std::span<c32> work = arena.alloc<c32>(2 * n);   // NOT zero-filled
//
// Scopes nest (a parallel caller may hold one while worker chunks open their
// own on other threads, or the master thread re-enters on its own arena);
// each scope rewinds the bump pointer to where it was created.
//
// Sizing guidance: the arena is grow-only per thread, so only bounded,
// per-task workspaces belong here — FFT ping-pong buffers (2n), transpose
// slabs (16 columns x n), per-row accumulator planes, and the per-field
// y-major staging tile of FftPlan2d's fused middle (ny * keep_x, the
// largest steady resident at ~512 KiB for a 512^2 quarter-truncated
// field).  Whole-batch intermediates must NOT be arena-held: they would be
// retained per calling thread forever (see fft2d.cpp's unfused mid buffer
// and the pipelines' lazily sized member buffers).
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "tensor/aligned_buffer.hpp"

namespace turbofno::runtime {

class ScratchArena {
 public:
  class Scope {
   public:
    explicit Scope(ScratchArena& arena) noexcept
        : arena_(&arena), block_(arena.active_), used_(arena.used_) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { arena_->rewind(block_, used_); }

   private:
    ScratchArena* arena_;
    std::size_t block_;
    std::size_t used_;
  };

  /// Opens a rewind scope: every alloc() after this call is released when
  /// the returned object goes out of scope.
  [[nodiscard]] Scope scope() noexcept { return Scope(*this); }

  /// Returns `count` elements of uninitialized, 64-byte-aligned storage,
  /// valid until the enclosing scope ends.
  template <class T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>, "scratch holds POD operands only");
    return {static_cast<T*>(alloc_bytes(count * sizeof(T))), count};
  }

  /// Total backing storage reserved by this arena (diagnostics/tests: a
  /// steady-state workload must stop growing this after one warm-up pass).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept;

 private:
  void* alloc_bytes(std::size_t bytes);
  void rewind(std::size_t block, std::size_t used) noexcept {
    active_ = block;
    used_ = used;
  }

  std::vector<AlignedBuffer<std::byte>> blocks_;
  std::size_t active_ = 0;  // index of the block the bump pointer lives in
  std::size_t used_ = 0;    // bytes consumed in blocks_[active_]
};

/// The calling thread's arena (thread_local; safe inside parallel_for
/// bodies and ThreadPool workers).
ScratchArena& tls_scratch() noexcept;

}  // namespace turbofno::runtime
