// Clang thread-safety annotations + annotated mutex wrappers.
//
// The macros below expand to clang's capability-analysis attributes when the
// compiler supports them and to nothing elsewhere, so annotating a header
// costs nothing on gcc.  Building with -DTURBOFNO_THREAD_SAFETY=ON (clang
// only) turns on -Wthread-safety -Werror=thread-safety, which machine-checks
// that every access to a TFNO_GUARDED_BY member happens with its mutex held
// and that every TFNO_REQUIRES function is called under the right lock.
//
// The std::mutex family carries no capability attributes on libstdc++, so
// the analysis cannot see through std::lock_guard/std::unique_lock.  The
// annotated wrappers below (Mutex, SharedMutex, MutexLock, ReaderLock,
// WriterLock) are drop-in replacements that the analysis does understand;
// all mutex-guarded state in fft/, net/, serve/, runtime/ and core/ uses
// them.  MutexLock exposes native() for std::condition_variable waits (the
// wait atomically releases and reacquires, so the net capability state the
// analysis tracks is unchanged).
//
// Annotation cheat sheet:
//   TFNO_GUARDED_BY(mu)   member/global readable+writable only under mu
//   TFNO_REQUIRES(mu)     function must be called with mu held exclusively
//   TFNO_ACQUIRE(mu)      function acquires mu and does not release it
//   TFNO_RELEASE(mu)      function releases mu
//   TFNO_EXCLUDES(mu)     function must NOT be called with mu held
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TFNO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TFNO_THREAD_ANNOTATION
#define TFNO_THREAD_ANNOTATION(x)
#endif

#define TFNO_CAPABILITY(x) TFNO_THREAD_ANNOTATION(capability(x))
#define TFNO_SCOPED_CAPABILITY TFNO_THREAD_ANNOTATION(scoped_lockable)
#define TFNO_GUARDED_BY(x) TFNO_THREAD_ANNOTATION(guarded_by(x))
#define TFNO_PT_GUARDED_BY(x) TFNO_THREAD_ANNOTATION(pt_guarded_by(x))
#define TFNO_REQUIRES(...) TFNO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define TFNO_REQUIRES_SHARED(...) \
  TFNO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define TFNO_ACQUIRE(...) TFNO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define TFNO_ACQUIRE_SHARED(...) \
  TFNO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define TFNO_RELEASE(...) TFNO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TFNO_RELEASE_SHARED(...) \
  TFNO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TFNO_RELEASE_GENERIC(...) \
  TFNO_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TFNO_TRY_ACQUIRE(...) TFNO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TFNO_EXCLUDES(...) TFNO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define TFNO_ASSERT_CAPABILITY(x) TFNO_THREAD_ANNOTATION(assert_capability(x))
#define TFNO_RETURN_CAPABILITY(x) TFNO_THREAD_ANNOTATION(lock_returned(x))
#define TFNO_NO_THREAD_SAFETY_ANALYSIS TFNO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace turbofno::runtime {

/// std::mutex with the capability attribute the analysis needs.
class TFNO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TFNO_ACQUIRE() { mu_.lock(); }
  void unlock() TFNO_RELEASE() { mu_.unlock(); }
  bool try_lock() TFNO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable plumbing only (the
  /// analysis cannot follow it; MutexLock::native() is the intended user).
  [[nodiscard]] std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// std::shared_mutex with the capability attribute.
class TFNO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() TFNO_ACQUIRE() { mu_.lock(); }
  void unlock() TFNO_RELEASE() { mu_.unlock(); }
  void lock_shared() TFNO_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() TFNO_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (std::unique_lock underneath, so
/// condition variables can wait on native()).  Lock()/Unlock() support the
/// drop-the-lock-around-work pattern under analysis.
class TFNO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TFNO_ACQUIRE(mu) : mu_(mu), lk_(mu.native()) {}
  ~MutexLock() TFNO_RELEASE() {}  // lk_'s destructor releases if still held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Lock() TFNO_ACQUIRE() { lk_.lock(); }
  void Unlock() TFNO_RELEASE() { lk_.unlock(); }

  /// For std::condition_variable::wait/wait_for: the wait releases and
  /// reacquires atomically, so the held-capability state is unchanged
  /// across the call and the analysis stays sound.
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept { return lk_; }

  /// The mutex this lock holds (for TFNO_ASSERT_CAPABILITY-style helpers).
  [[nodiscard]] Mutex& mutex() noexcept { return mu_; }

 private:
  Mutex& mu_;
  std::unique_lock<std::mutex> lk_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class TFNO_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) TFNO_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() TFNO_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class TFNO_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) TFNO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() TFNO_RELEASE_GENERIC() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace turbofno::runtime
