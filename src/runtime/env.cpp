#include "runtime/env.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace turbofno::runtime {

long env_long(const char* name, long fallback) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;  // empty or trailing garbage
  // strtol saturates to LONG_MIN/LONG_MAX on overflow and only reports it via
  // errno; treating the saturated value as configuration would turn a typo'd
  // size knob into a near-infinite one, so out-of-range input falls back too.
  if (errno == ERANGE) return fallback;
  return parsed;
}

long env_long_clamped(const char* name, long fallback, long lo, long hi) noexcept {
  const long v = env_long(name, fallback);
  return v < lo ? lo : (v > hi ? hi : v);
}

bool env_flag(const char* name) noexcept {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0 ||
         std::strcmp(v, "true") == 0 || std::strcmp(v, "yes") == 0;
}

std::string env_string(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string{} : std::string{v};
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> units = {"B", "KiB", "MiB", "GiB", "TiB"};
  std::size_t u = 0;
  while (bytes >= 1024.0 && u + 1 < units.size()) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f %s", bytes, units[u]);
  return buf;
}

std::string format_seconds(double s) {
  char buf[48];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f us", s * 1e6);
  }
  return buf;
}

}  // namespace turbofno::runtime
