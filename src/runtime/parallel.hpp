// Shared-memory parallel runtime.
//
// A thin, testable veneer over OpenMP (per the hpc-parallel guides).  All
// library parallelism funnels through parallel_for so thread counts are
// controlled in one place and the kernels remain deterministic: iteration i
// always performs the same arithmetic regardless of the schedule.
#pragma once

#include <cstddef>
#include <functional>

namespace turbofno::runtime {

/// Number of worker threads the runtime will use (OpenMP max threads, or 1
/// when built without OpenMP).
int thread_count() noexcept;

/// Override the worker count for subsequent parallel regions.  `n <= 0`
/// restores the hardware default.  Primarily for tests and benchmarks.
void set_thread_count(int n) noexcept;

/// True when the library was compiled with OpenMP support.
bool has_openmp() noexcept;

/// Overrides the grain of the fused (batch x row) pipeline loops.  `g == 0`
/// restores the default policy.  Also settable via the TURBOFNO_FUSED_GRAIN
/// environment variable (the API override wins).
void set_fused_grain(std::size_t g) noexcept;

/// Effective grain for a fused row loop of `total` iterations: the override
/// when one is set, otherwise at least two rows per chunk.  Each chunk of
/// these loops sets up private FFT/GEMM workspaces, so on many-core hosts
/// single-row chunks spend a measurable fraction of their time on setup;
/// two-row chunks halve that without costing parallelism on the shapes
/// that matter (the ROADMAP's threaded-2D-fusion tuning item).
std::size_t fused_grain(std::size_t total) noexcept;

namespace detail {
void parallel_for_impl(std::size_t begin, std::size_t end, std::size_t grain,
                       const std::function<void(std::size_t, std::size_t)>& body);
}

/// Runs body(lo, hi) over a partition of [begin, end).  Chunks are at least
/// `grain` iterations; a range smaller than `grain` runs inline on the
/// calling thread (no fork overhead for tiny problems).
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, Body&& body) {
  detail::parallel_for_impl(begin, end, grain,
                            std::function<void(std::size_t, std::size_t)>(std::forward<Body>(body)));
}

/// Element-wise convenience: body(i) for i in [begin, end).
template <class Body>
void parallel_for_each(std::size_t begin, std::size_t end, std::size_t grain, Body&& body) {
  parallel_for(begin, end, grain, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

/// Static partition helper: splits [0, n) into `parts` near-equal ranges.
struct Range {
  std::size_t lo = 0;
  std::size_t hi = 0;
  [[nodiscard]] std::size_t size() const noexcept { return hi - lo; }
};
Range partition(std::size_t n, std::size_t parts, std::size_t which) noexcept;

}  // namespace turbofno::runtime
