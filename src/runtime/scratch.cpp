#include "runtime/scratch.hpp"

#include <algorithm>

namespace turbofno::runtime {

namespace {
// First block size: covers the 1D work buffers and a 16-column 2D slab at
// typical sizes without a second allocation, and doubles from there.
constexpr std::size_t kMinBlockBytes = std::size_t{256} * 1024;
}  // namespace

void* ScratchArena::alloc_bytes(std::size_t bytes) {
  // Keep every handout 64-byte aligned by rounding sizes to whole lines.
  bytes = (bytes + kBufferAlignment - 1) / kBufferAlignment * kBufferAlignment;
  if (bytes == 0) bytes = kBufferAlignment;

  // Advance past blocks that cannot fit the request.  Blocks grow
  // geometrically, so at most O(log) skips; skipped space is reclaimed when
  // the enclosing scope rewinds.
  while (active_ < blocks_.size() && used_ + bytes > blocks_[active_].size()) {
    ++active_;
    used_ = 0;
  }
  if (active_ == blocks_.size()) {
    const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size();
    blocks_.emplace_back(std::max({bytes, kMinBlockBytes, 2 * prev}));
    used_ = 0;
  }
  void* p = blocks_[active_].data() + used_;
  used_ += bytes;
  return p;
}

std::size_t ScratchArena::bytes_reserved() const noexcept {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size();
  return total;
}

ScratchArena& tls_scratch() noexcept {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace turbofno::runtime
