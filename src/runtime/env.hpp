// Small environment/configuration helpers shared by benches and examples.
#pragma once

#include <cstddef>
#include <string>

namespace turbofno::runtime {

/// Reads an integer environment variable, returning `fallback` when unset,
/// unparsable (trailing garbage), or out of `long`'s range (strtol ERANGE —
/// the silently saturated LONG_MIN/LONG_MAX never escapes as configuration).
long env_long(const char* name, long fallback) noexcept;

/// env_long() with the result clamped to [lo, hi].  Size/count knobs use
/// this so negative or absurd values degrade to the nearest sane bound
/// instead of flowing into allocation sizes or thread counts.
long env_long_clamped(const char* name, long fallback, long lo, long hi) noexcept;

/// True when env var `name` is set to a truthy value (1/on/true/yes).
bool env_flag(const char* name) noexcept;

/// Reads a string environment variable; empty when unset.  All TURBOFNO_*
/// knob reads go through this family (the repo-invariant linter rejects
/// raw getenv outside runtime/env), so every knob is greppable one way.
std::string env_string(const char* name);

/// Human-readable byte count ("1.5 GiB").
std::string format_bytes(double bytes);

/// Human-readable duration from seconds ("12.3 ms").
std::string format_seconds(double s);

}  // namespace turbofno::runtime
