// Small environment/configuration helpers shared by benches and examples.
#pragma once

#include <cstddef>
#include <string>

namespace turbofno::runtime {

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparsable.
long env_long(const char* name, long fallback) noexcept;

/// True when env var `name` is set to a truthy value (1/on/true/yes).
bool env_flag(const char* name) noexcept;

/// Human-readable byte count ("1.5 GiB").
std::string format_bytes(double bytes);

/// Human-readable duration from seconds ("12.3 ms").
std::string format_seconds(double s);

}  // namespace turbofno::runtime
