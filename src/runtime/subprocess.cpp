#include "runtime/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <system_error>
#include <thread>
#include <utility>

namespace turbofno::runtime {

Subprocess::~Subprocess() { close_pipe(); }

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      stdout_fd_(std::exchange(other.stdout_fd_, -1)),
      reaped_(std::exchange(other.reaped_, false)),
      exit_code_(std::exchange(other.exit_code_, -1)) {}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    close_pipe();
    pid_ = std::exchange(other.pid_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    reaped_ = std::exchange(other.reaped_, false);
    exit_code_ = std::exchange(other.exit_code_, -1);
  }
  return *this;
}

void Subprocess::close_pipe() noexcept {
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    throw std::invalid_argument("runtime::Subprocess::spawn: empty argv");
  }
  // The exec argv must be built BEFORE fork: only async-signal-safe calls
  // are allowed in the child of a multi-threaded parent, and malloc isn't.
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    throw std::system_error(errno, std::generic_category(), "pipe2");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::system_error(err, std::generic_category(), "fork");
  }
  if (pid == 0) {
    // Child: async-signal-safe only from here to exec.
    ::dup2(fds[1], STDOUT_FILENO);
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
  Subprocess p;
  p.pid_ = pid;
  p.stdout_fd_ = fds[0];
  return p;
}

std::size_t Subprocess::read_stdout(std::string& out) {
  if (stdout_fd_ < 0) return 0;
  std::size_t total = 0;
  char buf[4096];
  while (true) {
    const auto n = ::read(stdout_fd_, buf, sizeof buf);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      total += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {  // writer side closed (child exited)
      close_pipe();
    }
    return total;  // EAGAIN / EOF / error: nothing more now
  }
}

bool Subprocess::poll_exit() {
  if (reaped_) return true;
  if (pid_ <= 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r != pid_) return false;
  reaped_ = true;
  exit_code_ = WIFSIGNALED(status) ? 128 + WTERMSIG(status) : WEXITSTATUS(status);
  return true;
}

int Subprocess::wait() {
  if (reaped_) return exit_code_;
  int status = 0;
  while (::waitpid(pid_, &status, 0) != pid_) {
    if (errno != EINTR) {
      reaped_ = true;
      return exit_code_;  // ECHILD: someone else reaped; code unknown (-1)
    }
  }
  reaped_ = true;
  exit_code_ = WIFSIGNALED(status) ? 128 + WTERMSIG(status) : WEXITSTATUS(status);
  return exit_code_;
}

void Subprocess::signal(int signo) noexcept {
  if (pid_ > 0 && !reaped_) ::kill(pid_, signo);
}

int Subprocess::terminate(double grace_s) {
  if (pid_ <= 0) return exit_code_;
  signal(SIGTERM);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(grace_s);
  while (!poll_exit()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      signal(SIGKILL);
      return wait();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return exit_code_;
}

}  // namespace turbofno::runtime
