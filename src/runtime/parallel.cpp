#include "runtime/parallel.hpp"

#include <algorithm>
#include <atomic>

#include "runtime/env.hpp"

#if TURBOFNO_HAVE_OPENMP
#include <omp.h>
#endif

namespace turbofno::runtime {

namespace {
std::atomic<int> g_thread_override{0};
std::atomic<std::size_t> g_fused_grain{0};

std::size_t env_fused_grain() noexcept {
  // 0 means "no override"; negative or overflowing values clamp to 0 rather
  // than poisoning the chunk size of every fused loop.
  static const std::size_t v = static_cast<std::size_t>(
      env_long_clamped("TURBOFNO_FUSED_GRAIN", 0, 0, 1L << 30));
  return v;
}
}  // namespace

int thread_count() noexcept {
  const int ov = g_thread_override.load(std::memory_order_relaxed);
  if (ov > 0) return ov;
#if TURBOFNO_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

void set_thread_count(int n) noexcept {
  g_thread_override.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

bool has_openmp() noexcept {
#if TURBOFNO_HAVE_OPENMP
  return true;
#else
  return false;
#endif
}

void set_fused_grain(std::size_t g) noexcept {
  g_fused_grain.store(g, std::memory_order_relaxed);
}

std::size_t fused_grain(std::size_t total) noexcept {
  const std::size_t ov = g_fused_grain.load(std::memory_order_relaxed);
  if (ov > 0) return ov;
  const std::size_t env = env_fused_grain();
  if (env > 0) return env;
  // Default: at least 2 rows per chunk, and no more chunks than rows.
  return std::min<std::size_t>(2, std::max<std::size_t>(total, 1));
}

Range partition(std::size_t n, std::size_t parts, std::size_t which) noexcept {
  if (parts == 0) return {0, n};
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  const std::size_t lo = which * base + std::min(which, rem);
  const std::size_t hi = lo + base + (which < rem ? 1 : 0);
  return {lo, hi};
}

namespace detail {

void parallel_for_impl(std::size_t begin, std::size_t end, std::size_t grain,
                       const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const int nt = thread_count();
  const std::size_t max_parts = (n + g - 1) / g;
  const std::size_t parts = std::min<std::size_t>(static_cast<std::size_t>(nt), max_parts);

  if (parts <= 1) {
    body(begin, end);
    return;
  }

#if TURBOFNO_HAVE_OPENMP
#pragma omp parallel for schedule(static) num_threads(static_cast<int>(parts))
  for (std::size_t p = 0; p < parts; ++p) {
    const Range r = partition(n, parts, p);
    if (r.size() != 0) body(begin + r.lo, begin + r.hi);
  }
#else
  body(begin, end);
#endif
}

}  // namespace detail

}  // namespace turbofno::runtime
