// Monotonic wall-clock timing utilities used by benches and pipelines.
#pragma once

#include <chrono>
#include <cstddef>

namespace turbofno::runtime {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() noexcept { start_ = clock::now(); }
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` repeatedly: a warmup pass, then timed repetitions; returns the
/// minimum per-iteration seconds (minimum is the standard noise-robust
/// statistic for compute kernels).
template <class Fn>
double time_best_of(std::size_t reps, Fn&& fn) {
  fn();  // warmup / first-touch
  double best = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace turbofno::runtime
