// Long-lived task-parallel worker pool.
//
// parallel_for covers fork-join data parallelism inside one kernel; the
// serving layer additionally needs long-lived workers that pick up
// independent jobs (micro-batch executions) as they appear.  This pool is
// that second leg of the runtime: a fixed set of threads draining a FIFO
// job queue.  Jobs may themselves call parallel_for — OpenMP builds a team
// per region, so nesting is safe (if oversubscribed, merely slower).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/thread_annotations.hpp"

namespace turbofno::runtime {

class ThreadPool {
 public:
  /// Starts `workers` threads (at least one).
  explicit ThreadPool(std::size_t workers);
  /// Drains the queue, then stops and joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Jobs submitted after shutdown began are dropped.
  void submit(std::function<void()> job) TFNO_EXCLUDES(mu_);

  /// Blocks until the queue is empty and every worker is idle.  Does not
  /// prevent further submissions; jobs submitted by running jobs are waited
  /// for too.
  void wait_idle() TFNO_EXCLUDES(mu_);

  [[nodiscard]] std::size_t worker_count() const noexcept { return threads_.size(); }

 private:
  void worker_loop() TFNO_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;  // wait_idle: queue empty and none active
  std::deque<std::function<void()>> jobs_ TFNO_GUARDED_BY(mu_);
  std::vector<std::thread> threads_;  // written at construction, joined at destruction
  std::size_t active_ TFNO_GUARDED_BY(mu_) = 0;
  bool stopping_ TFNO_GUARDED_BY(mu_) = false;
};

}  // namespace turbofno::runtime
