#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace turbofno::runtime {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(workers, 1);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return !jobs_.empty() || stopping_; });
    if (jobs_.empty()) {
      // stopping_ with a drained queue: exit (destructor drains first).
      return;
    }
    std::function<void()> job = std::move(jobs_.front());
    jobs_.pop_front();
    ++active_;
    lock.unlock();
    job();
    lock.lock();
    --active_;
    if (jobs_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace turbofno::runtime
