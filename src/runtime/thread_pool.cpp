#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace turbofno::runtime {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(workers, 1);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const MutexLock lock(mu_);
    if (stopping_) return;
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (!(jobs_.empty() && active_ == 0)) idle_cv_.wait(lock.native());
}

void ThreadPool::worker_loop() {
  MutexLock lock(mu_);
  for (;;) {
    while (jobs_.empty() && !stopping_) work_cv_.wait(lock.native());
    if (jobs_.empty()) {
      // stopping_ with a drained queue: exit (destructor drains first).
      return;
    }
    std::function<void()> job = std::move(jobs_.front());
    jobs_.pop_front();
    ++active_;
    lock.Unlock();
    job();
    lock.Lock();
    --active_;
    if (jobs_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace turbofno::runtime
