// Minimal fork/exec child-process handle.
//
// Spawns argv[0] with an argument vector, captures the child's stdout on a
// nonblocking pipe (read_stdout drains whatever is available), and exposes
// poll/signal/wait primitives.  The post-fork, pre-exec window calls only
// async-signal-safe functions (dup2/execv/_exit), so spawning is safe from
// multi-threaded processes — and, unlike a bare fork, TSan-clean, because
// the child immediately replaces its (single-threaded) image.
#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

namespace turbofno::runtime {

class Subprocess {
 public:
  Subprocess() = default;
  /// Closes the pipe but does NOT kill or reap a still-running child; call
  /// terminate()/wait() first if the child must not outlive the handle.
  ~Subprocess();

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;

  /// fork/execs `argv` (argv[0] is the executable path).  Throws
  /// std::system_error when the pipe or fork fails; an exec failure
  /// surfaces as the child exiting 127.
  static Subprocess spawn(const std::vector<std::string>& argv);

  [[nodiscard]] bool valid() const noexcept { return pid_ > 0; }
  [[nodiscard]] pid_t pid() const noexcept { return pid_; }

  /// Appends any bytes currently readable from the child's stdout to
  /// `out`.  Nonblocking; returns the number of bytes appended (0 when
  /// nothing is pending or the pipe is closed).
  std::size_t read_stdout(std::string& out);

  /// waitpid(WNOHANG): true once the child has exited and been reaped
  /// (exit_code() is then valid; signal deaths report 128+signo).
  [[nodiscard]] bool poll_exit();
  /// Blocking waitpid.  Returns the exit code (128+signo for signals).
  int wait();
  [[nodiscard]] int exit_code() const noexcept { return exit_code_; }

  /// kill(2) with `signo`; no-op after the child has been reaped.
  void signal(int signo) noexcept;
  /// SIGTERM, bounded wait, then SIGKILL: always reaps.
  int terminate(double grace_s = 2.0);

 private:
  void close_pipe() noexcept;

  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  int exit_code_ = -1;
};

}  // namespace turbofno::runtime
