// Model weight serialization — a flat, versioned binary container so
// trained FNO weights can be checkpointed and reloaded across processes.
//
// Format (little endian):
//   magic "TFNO"  u32 version  u32 tensor_count
//   per tensor: u32 name_len, name bytes, u64 elem_count, elems (c32)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/complex.hpp"

namespace turbofno::core {

class Fno1d;
class Fno2d;

/// Named weight blobs gathered from / scattered into a model.
struct WeightBundle {
  struct Entry {
    std::string name;
    std::vector<c32> data;
  };
  std::vector<Entry> entries;

  [[nodiscard]] const Entry* find(const std::string& name) const noexcept;
};

/// Serializes a bundle to bytes / parses it back.  `load` throws
/// std::runtime_error on malformed input (bad magic, truncation, version).
std::vector<std::uint8_t> save_bundle(const WeightBundle& bundle);
WeightBundle load_bundle(std::span<const std::uint8_t> bytes);

/// File convenience wrappers.
void save_bundle_file(const WeightBundle& bundle, const std::string& path);
WeightBundle load_bundle_file(const std::string& path);

/// Gathers every learnable tensor of a model: "lift", "spectral.<l>",
/// "residual.<l>", and "project".  A bundle produced here is a complete
/// checkpoint — scattering it into a fresh model of the same architecture
/// reproduces the source model's outputs bitwise.
WeightBundle gather_weights(const Fno1d& model);
WeightBundle gather_weights(const Fno2d& model);
/// Writes a bundle's tensors back into the model; throws on any missing
/// name or size mismatch (a checkpoint for a different architecture).
void scatter_weights(Fno1d& model, const WeightBundle& bundle);
void scatter_weights(Fno2d& model, const WeightBundle& bundle);

inline constexpr std::uint32_t kBundleVersion = 1;

}  // namespace turbofno::core
