// TurboFNO Engine/Session — the v2 top-level serving-oriented API.
//
// An Engine owns the shared runtime configuration (worker-thread count for
// the parallel runtime, the process-wide FFT plan cache policy; per-thread
// scratch arenas are implicit) and a registry of model *specifications*:
// an architecture config plus either seeded weights or a deserialized
// WeightBundle checkpoint.  Registration materializes nothing heavy — the
// FFT plans, packed weight planes, and workspaces live in Sessions.
//
// A Session is one executable instance of a registered model.  Its
// workspace capacity is elastic: the `capacity_hint` passed at creation is
// a reservation, not a contract — any micro-batch size runs, growing the
// workspaces in place when needed (growth never perturbs results).
// Sessions are independent; running two sessions of the same model from
// two threads is safe (they share FFT plans through the concurrent plan
// cache but nothing mutable).
//
//   turbofno::core::Engine engine;
//   const auto m = engine.register_model(cfg);            // or load_model(cfg, bundle)
//   auto session = engine.create_session(m, /*capacity_hint=*/8);
//   session.run(input, output, /*batch=*/3);              // any batch size
//
// Results are bitwise-identical to a direct core::Fno1d/Fno2d forward with
// the same config — for every backend, including Backend::Auto (resolved
// deterministically from the problem shape; see fused::auto_variant_1d/2d).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "runtime/thread_annotations.hpp"

#include "core/config.hpp"
#include "core/fno.hpp"
#include "core/serialize.hpp"
#include "tensor/complex.hpp"

namespace turbofno::core {

/// Handle of a model registered with an Engine.
using ModelHandle = std::size_t;

/// Runtime knobs applied once at Engine construction.  The underlying
/// runtime (worker threads, FFT plan cache) is PROCESS-WIDE and shared by
/// every engine: a non-default option here reconfigures it for all
/// engines and sessions in the process, not just this instance.  In a
/// process with several engines, configure the runtime from exactly one
/// place (or leave these at their keep-current defaults).
struct EngineOptions {
  /// Worker threads for the parallel runtime (runtime::set_thread_count);
  /// 0 keeps the current/hardware default.
  int threads = 0;
  /// LRU capacity for the process-wide FFT plan cache
  /// (fft::set_plan_cache_capacity); 0 keeps the current policy.
  std::size_t plan_cache_capacity = 0;
};

namespace detail {

/// Immutable model specification shared by the engine and its sessions.
struct ModelSpec {
  bool is_2d = false;
  Fno1dConfig cfg1;
  Fno2dConfig cfg2;
  WeightBundle weights;      // empty entries => seeded from the config
  bool has_weights = false;
  std::size_t in_elems = 0;   // per batch item
  std::size_t out_elems = 0;  // per batch item
};

}  // namespace detail

class Session;

class Engine {
 public:
  explicit Engine(const EngineOptions& opts = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Registers a model whose weights are seeded from the config.  Cheap;
  /// thread-safe; handles stay valid for the engine's lifetime.
  ModelHandle register_model(const Fno1dConfig& cfg);
  ModelHandle register_model(const Fno2dConfig& cfg);

  /// Registers a model with weights from a serialized checkpoint (see
  /// core/serialize.hpp).  The bundle is validated against the
  /// architecture up front: a missing tensor or size mismatch throws here,
  /// not at first session creation.
  ModelHandle load_model(const Fno1dConfig& cfg, const WeightBundle& weights);
  ModelHandle load_model(const Fno2dConfig& cfg, const WeightBundle& weights);

  /// Creates an executable session.  `capacity_hint` pre-sizes the
  /// workspaces (elastic thereafter).  Thread-safe; the session may
  /// outlive neither the engine's model registry nor — being independent
  /// of other sessions — constrain them.
  [[nodiscard]] Session create_session(ModelHandle model, std::size_t capacity_hint = 1) const;

  [[nodiscard]] std::size_t model_count() const;
  [[nodiscard]] bool model_is_2d(ModelHandle m) const;
  /// Per-item element counts a request of model `m` must carry.
  [[nodiscard]] std::size_t input_elems(ModelHandle m) const;
  [[nodiscard]] std::size_t output_elems(ModelHandle m) const;

  [[nodiscard]] const EngineOptions& options() const noexcept { return opts_; }

  /// Registry partitioning (the shard topology's primitive): share_spec
  /// hands out a model's immutable specification, and adopt_spec registers
  /// it in another engine without re-seeding or copying weights — a shard
  /// worker adopting a subset of a catalog engine serves results
  /// bitwise-identical to the catalog serving them itself.
  [[nodiscard]] std::shared_ptr<const detail::ModelSpec> share_spec(ModelHandle m) const {
    return spec(m);
  }
  ModelHandle adopt_spec(std::shared_ptr<const detail::ModelSpec> s) {
    return add_spec(std::move(s));
  }

 private:
  ModelHandle add_spec(std::shared_ptr<const detail::ModelSpec> spec);
  [[nodiscard]] std::shared_ptr<const detail::ModelSpec> spec(ModelHandle m) const;

  EngineOptions opts_;
  mutable runtime::Mutex mu_;
  std::vector<std::shared_ptr<const detail::ModelSpec>> specs_ TFNO_GUARDED_BY(mu_);
};

/// One executable instance of a registered model.  Movable, not copyable.
class Session {
 public:
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;

  /// u [batch, in_channels, spatial] -> v [batch, out_channels, spatial].
  /// Any `batch` >= 1 runs; beyond the current capacity the workspaces
  /// grow in place.  Bitwise-identical to a direct core::Fno forward.
  void run(std::span<const c32> u, std::span<c32> v, std::size_t batch = 1);

  /// Real-input run: u/v hold real samples and the spectral layers execute
  /// their RFFT half-spectrum lane (TURBOFNO_REAL_SPECTRAL routes the
  /// internals; see SpectralConv1d::forward_real).  Requires the spatial
  /// leading axis (n / nx) >= 4.  Same elastic-capacity semantics as run().
  void run_real(std::span<const float> u, std::span<float> v, std::size_t batch = 1);

  /// Grows the workspaces so runs up to `batch` need no reallocation.
  void reserve(std::size_t batch);
  /// Current capacity high-water mark.
  [[nodiscard]] std::size_t capacity() const noexcept;

  [[nodiscard]] bool is_2d() const noexcept { return spec_->is_2d; }
  [[nodiscard]] std::size_t input_elems() const noexcept { return spec_->in_elems; }
  [[nodiscard]] std::size_t output_elems() const noexcept { return spec_->out_elems; }

  /// Snapshot of the session's current weights as a complete checkpoint.
  [[nodiscard]] WeightBundle gather() const;

  /// The underlying model, for advanced callers (weight editing, layer
  /// introspection).  Exactly one of these is non-null.
  [[nodiscard]] Fno1d* model1d() noexcept { return m1_.get(); }
  [[nodiscard]] Fno2d* model2d() noexcept { return m2_.get(); }

 private:
  friend class Engine;
  Session(std::shared_ptr<const detail::ModelSpec> spec, std::size_t capacity_hint);

  std::shared_ptr<const detail::ModelSpec> spec_;
  std::unique_ptr<Fno1d> m1_;
  std::unique_ptr<Fno2d> m2_;
};

}  // namespace turbofno::core
