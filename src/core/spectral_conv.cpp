#include "core/spectral_conv.hpp"

#include <algorithm>
#include <cmath>

#include "fft/plan_cache.hpp"
#include "fft/real.hpp"
#include "gemm/batched.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "runtime/timer.hpp"

namespace turbofno::core {

void init_weights(std::span<c32> w, std::size_t fan_in, std::size_t fan_out, unsigned seed) {
  std::mt19937 rng(seed);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (auto& x : w) x = {dist(rng), dist(rng)};
}

namespace {

void ensure(AlignedBuffer<c32>& buf, std::size_t elems) {
  if (buf.size() < elems) buf.resize(elems);
}

/// Writes the length-n spectrum a Hermitian-symmetric signal implies from its
/// first `stored` bins: DC (and, when present, Nyquist) projected real, the
/// upper half mirrored conjugate — exactly what the C2R inverse assumes.
void hermitian_extend(const c32* bins, std::size_t stored, c32* full, std::size_t n) {
  std::fill(full, full + n, c32{});
  full[0] = c32{bins[0].re, 0.0f};
  for (std::size_t k = 1; k < stored; ++k) {
    if (k == n - k) {
      full[k] = c32{bins[k].re, 0.0f};
    } else {
      full[k] = bins[k];
      full[n - k] = c32{bins[k].re, -bins[k].im};
    }
  }
}

}  // namespace

// ------------------------------------------------------------ SpectralConv1d

SpectralConv1d::SpectralConv1d(std::size_t batch, std::size_t hidden, std::size_t out_dim,
                               std::size_t n, std::size_t modes, Backend backend,
                               WeightScheme scheme, unsigned seed)
    : scheme_(scheme), backend_(backend) {
  prob_.batch = batch;
  prob_.hidden = hidden;
  prob_.out_dim = out_dim;
  prob_.n = n;
  prob_.modes = modes;
  prob_.validate();

  if (scheme_ == WeightScheme::Shared) {
    weights_.resize(out_dim * hidden);
    pipeline_ = fused::make_pipeline1d(backend, prob_);
  } else {
    weights_.resize(modes * out_dim * hidden);
    freq_.resize(batch * hidden * modes);
    mixed_.resize(batch * out_dim * modes);
  }
  init_weights(weights_.span(), hidden, out_dim, seed);
}

SpectralConv1d::~SpectralConv1d() = default;
SpectralConv1d::SpectralConv1d(SpectralConv1d&&) noexcept = default;
SpectralConv1d& SpectralConv1d::operator=(SpectralConv1d&&) noexcept = default;

void SpectralConv1d::forward(std::span<const c32> u, std::span<c32> v) {
  forward(u, v, prob_.batch);
}

void SpectralConv1d::forward(std::span<const c32> u, std::span<c32> v, std::size_t batch) {
  if (scheme_ == WeightScheme::Shared) {
    // Validate before reserving so a wild batch value throws instead of
    // attempting a batch-proportional allocation.
    baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * prob_.n,
                                prob_.out_dim * prob_.n, batch, "SpectralConv1d");
    reserve(batch);
    pipeline_->run_batched(u, weights_.span(), v, batch);
  } else {
    forward_per_mode(u, v, batch);
  }
}

void SpectralConv1d::reserve(std::size_t batch) {
  if (batch <= prob_.batch) return;
  if (scheme_ == WeightScheme::Shared) {
    pipeline_->reserve(batch);
    if (pipeline_real_) pipeline_real_->reserve(batch);
  } else {
    // Grow before bumping the capacity mark (exception safety).
    freq_.resize(batch * prob_.hidden * prob_.modes);
    mixed_.resize(batch * prob_.out_dim * prob_.modes);
  }
  prob_.batch = batch;
}

const trace::PipelineCounters& SpectralConv1d::counters() const {
  return scheme_ == WeightScheme::Shared ? pipeline_->counters() : permode_counters_;
}

fused::SpectralPipeline1d& SpectralConv1d::real_pipeline() {
  // The half-spectrum working set can flip the Auto resolution; when both
  // lanes resolve to the same row, the complex pipeline serves both (every
  // concrete row implements run_batched_real on shared workspaces).
  if (fused::resolve_variant(backend_, prob_, true) ==
      fused::resolve_variant(backend_, prob_, false)) {
    return *pipeline_;
  }
  if (!pipeline_real_) pipeline_real_ = fused::make_pipeline1d(backend_, prob_, true);
  return *pipeline_real_;
}

void SpectralConv1d::forward_real(std::span<const float> u, std::span<float> v,
                                  std::size_t batch) {
  if (scheme_ != WeightScheme::Shared) {
    forward_per_mode_real(u, v, batch);
    return;
  }
  baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * prob_.n,
                              prob_.out_dim * prob_.n, batch, "SpectralConv1d(real)");
  reserve(batch);
  if (fft::real_spectral_enabled()) {
    real_pipeline().run_batched_real(u, weights_.span(), v, batch);
  } else {
    forward_real_reference(u, v, batch);
  }
}

void SpectralConv1d::forward_real_reference(std::span<const float> u, std::span<float> v,
                                            std::size_t batch) {
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t MR = prob_.modes / 2 + 1;
  ensure(emu_in_, B * K * N);
  ensure(emu_freq_, B * K * MR);
  ensure(emu_mixed_, B * O * MR);
  ensure(emu_full_, B * O * N);
  ensure(emu_out_, B * O * N);

  runtime::parallel_for(0, B * K * N, 1 << 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) emu_in_[i] = c32{u[i], 0.0f};
  });

  fft::PlanDesc fd;
  fd.n = N;
  fd.keep = MR;
  const auto fwd = fft::acquire_plan(fd);
  fwd->execute(emu_in_.span().first(B * K * N), emu_freq_.span().first(B * K * MR), B * K);

  gemm::BatchedStrides strides;
  strides.a = 0;
  strides.b = static_cast<std::ptrdiff_t>(K * MR);
  strides.c = static_cast<std::ptrdiff_t>(O * MR);
  gemm::cgemm_batched(O, MR, K, c32{1.0f, 0.0f}, weights_.data(), K, emu_freq_.data(), MR,
                      c32{0.0f, 0.0f}, emu_mixed_.data(), MR, B, strides);

  runtime::parallel_for(0, B * O, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      hermitian_extend(emu_mixed_.data() + r * MR, MR, emu_full_.data() + r * N, N);
    }
  });

  fft::PlanDesc id;
  id.n = N;
  id.dir = fft::Direction::Inverse;
  const auto inv = fft::acquire_plan(id);
  inv->execute(emu_full_.span().first(B * O * N), emu_out_.span().first(B * O * N), B * O);

  runtime::parallel_for(0, B * O * N, 1 << 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) v[i] = emu_out_[i].re;
  });
}

void SpectralConv1d::forward_per_mode_real(std::span<const float> u, std::span<float> v,
                                           std::size_t batch) {
  baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * prob_.n,
                              prob_.out_dim * prob_.n, batch, "SpectralConv1d(real)");
  reserve(batch);
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t MR = prob_.modes / 2 + 1;  // per-mode matrices f < MR apply
  permode_counters_.clear();

  // One route regardless of the knob: the per-mode path is already the
  // reference-grade unfused schedule.
  const auto fwd = fft::acquire_rfft_plan(N, MR);
  const auto inv = fft::acquire_irfft_plan(N, MR);

  runtime::Timer t;
  fwd->execute(u.first(B * K * N), freq_.span().first(B * K * MR), B * K);
  runtime::parallel_for(0, B * MR, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t b = i / MR;
      const std::size_t f = i % MR;
      const c32* wf = weights_.data() + f * O * K;
      for (std::size_t o = 0; o < O; ++o) {
        c32 acc{};
        for (std::size_t k = 0; k < K; ++k) {
          cmadd(acc, wf[o * K + k], freq_[(b * K + k) * MR + f]);
        }
        mixed_[(b * O + o) * MR + f] = acc;
      }
    }
  });
  inv->execute(mixed_.span().first(B * O * MR), v.first(B * O * N), B * O);

  auto& sc = permode_counters_.stage("per-mode-spectral-conv");
  sc.seconds = t.seconds();
  sc.bytes_read =
      B * K * N * sizeof(float) + (MR * O * K + B * O * MR) * sizeof(c32);
  sc.bytes_written = (B * K * MR + B * O * MR) * sizeof(c32) + B * O * N * sizeof(float);
  sc.flops = B * K * fwd->flops_per_signal() + trace::cgemm_flops(B * MR, O, K) +
             B * O * inv->flops_per_signal();
  sc.kernel_launches = 3;
}

void SpectralConv1d::forward_per_mode(std::span<const c32> u, std::span<c32> v,
                                      std::size_t batch) {
  baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * prob_.n,
                              prob_.out_dim * prob_.n, batch, "SpectralConv1d");
  reserve(batch);
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;
  permode_counters_.clear();

  fft::PlanDesc fd;
  fd.n = N;
  fd.keep = M;
  const auto fwd = fft::acquire_plan(fd);
  fft::PlanDesc id;
  id.n = N;
  id.dir = fft::Direction::Inverse;
  id.nonzero = M;
  const auto inv = fft::acquire_plan(id);

  runtime::Timer t;
  fwd->execute(u, freq_.span().first(B * K * M), B * K);
  // Per-mode mixing: for each frequency f, an independent O x K matrix.
  runtime::parallel_for(0, B * M, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t b = i / M;
      const std::size_t f = i % M;
      const c32* wf = weights_.data() + f * O * K;
      for (std::size_t o = 0; o < O; ++o) {
        c32 acc{};
        for (std::size_t k = 0; k < K; ++k) {
          cmadd(acc, wf[o * K + k], freq_[(b * K + k) * M + f]);
        }
        mixed_[(b * O + o) * M + f] = acc;
      }
    }
  });
  inv->execute(mixed_.span().first(B * O * M), v, B * O);

  auto& sc = permode_counters_.stage("per-mode-spectral-conv");
  sc.seconds = t.seconds();
  sc.bytes_read = (B * K * N + M * O * K + B * O * M) * sizeof(c32);
  sc.bytes_written = (B * K * M + B * O * M + B * O * N) * sizeof(c32);
  sc.flops = B * K * fwd->flops_per_signal() + trace::cgemm_flops(B * M, O, K) +
             B * O * inv->flops_per_signal();
  sc.kernel_launches = 3;
}

// ------------------------------------------------------------ SpectralConv2d

SpectralConv2d::SpectralConv2d(std::size_t batch, std::size_t hidden, std::size_t out_dim,
                               std::size_t nx, std::size_t ny, std::size_t modes_x,
                               std::size_t modes_y, Backend backend, WeightScheme scheme,
                               unsigned seed)
    : scheme_(scheme), backend_(backend) {
  prob_.batch = batch;
  prob_.hidden = hidden;
  prob_.out_dim = out_dim;
  prob_.nx = nx;
  prob_.ny = ny;
  prob_.modes_x = modes_x;
  prob_.modes_y = modes_y;
  prob_.validate();
  if (scheme_ != WeightScheme::Shared) {
    throw std::invalid_argument("SpectralConv2d: PerMode scheme is 1D-only in this release");
  }
  weights_.resize(out_dim * hidden);
  pipeline_ = fused::make_pipeline2d(backend, prob_);
  init_weights(weights_.span(), hidden, out_dim, seed);
}

SpectralConv2d::~SpectralConv2d() = default;
SpectralConv2d::SpectralConv2d(SpectralConv2d&&) noexcept = default;
SpectralConv2d& SpectralConv2d::operator=(SpectralConv2d&&) noexcept = default;

void SpectralConv2d::forward(std::span<const c32> u, std::span<c32> v) {
  pipeline_->run(u, weights_.span(), v);
}

void SpectralConv2d::forward(std::span<const c32> u, std::span<c32> v, std::size_t batch) {
  const std::size_t field = prob_.nx * prob_.ny;
  baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * field, prob_.out_dim * field,
                              batch, "SpectralConv2d");
  reserve(batch);
  pipeline_->run_batched(u, weights_.span(), v, batch);
}

void SpectralConv2d::reserve(std::size_t batch) {
  pipeline_->reserve(batch);
  if (pipeline_real_) pipeline_real_->reserve(batch);
  if (batch > prob_.batch) prob_.batch = batch;
}

const trace::PipelineCounters& SpectralConv2d::counters() const { return pipeline_->counters(); }

fused::SpectralPipeline2d& SpectralConv2d::real_pipeline() {
  if (fused::resolve_variant(backend_, prob_, true) ==
      fused::resolve_variant(backend_, prob_, false)) {
    return *pipeline_;
  }
  if (!pipeline_real_) pipeline_real_ = fused::make_pipeline2d(backend_, prob_, true);
  return *pipeline_real_;
}

void SpectralConv2d::forward_real(std::span<const float> u, std::span<float> v,
                                  std::size_t batch) {
  const std::size_t field = prob_.nx * prob_.ny;
  baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * field, prob_.out_dim * field,
                              batch, "SpectralConv2d(real)");
  reserve(batch);
  if (fft::real_spectral_enabled()) {
    real_pipeline().run_batched_real(u, weights_.span(), v, batch);
  } else {
    forward_real_reference(u, v, batch);
  }
}

void SpectralConv2d::forward_real_reference(std::span<const float> u, std::span<float> v,
                                            std::size_t batch) {
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t NX = prob_.nx;
  const std::size_t NY = prob_.ny;
  const std::size_t MY = prob_.modes_y;
  const std::size_t MXR = prob_.modes_x / 2 + 1;
  const std::size_t modes = MXR * MY;
  ensure(emu_in_, B * K * NX * NY);
  ensure(emu_xf_, B * K * MXR * NY);
  ensure(emu_freq_, B * K * modes);
  ensure(emu_mixed_, B * O * modes);
  ensure(emu_xi_, B * O * MXR * NY);

  runtime::parallel_for(0, B * K * NX * NY, 1 << 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) emu_in_[i] = c32{u[i], 0.0f};
  });

  // Truncated C2C along X, column by column (reference path; not tuned).
  fft::PlanDesc xd;
  xd.n = NX;
  xd.keep = MXR;
  const auto xfwd = fft::acquire_plan(xd);
  fft::ExecLayout xl;
  xl.in_elem_stride = static_cast<std::ptrdiff_t>(NY);
  xl.in_batch_stride = 1;
  xl.out_elem_stride = static_cast<std::ptrdiff_t>(NY);
  xl.out_batch_stride = 1;
  for (std::size_t f = 0; f < B * K; ++f) {
    xfwd->execute_strided(emu_in_.data() + f * NX * NY, emu_xf_.data() + f * MXR * NY, NY, xl);
  }

  // Truncated C2C along Y (rows are contiguous after the X stage).
  fft::PlanDesc yd;
  yd.n = NY;
  yd.keep = MY;
  fft::acquire_plan(yd)->execute(emu_xf_.span().first(B * K * MXR * NY),
                                 emu_freq_.span().first(B * K * modes), B * K * MXR);

  gemm::BatchedStrides strides;
  strides.a = 0;
  strides.b = static_cast<std::ptrdiff_t>(K * modes);
  strides.c = static_cast<std::ptrdiff_t>(O * modes);
  gemm::cgemm_batched(O, modes, K, c32{1.0f, 0.0f}, weights_.data(), K, emu_freq_.data(), modes,
                      c32{0.0f, 0.0f}, emu_mixed_.data(), modes, B, strides);

  // Zero-padded C2C inverse along Y.
  fft::PlanDesc yi;
  yi.n = NY;
  yi.dir = fft::Direction::Inverse;
  yi.nonzero = MY;
  fft::acquire_plan(yi)->execute(emu_mixed_.span().first(B * O * modes),
                                 emu_xi_.span().first(B * O * MXR * NY), B * O * MXR);

  // Hermitian X inverse per column: extend the MXR stored bins to the full
  // conjugate-symmetric spectrum and take the real part of a full inverse.
  fft::PlanDesc xi;
  xi.n = NX;
  xi.dir = fft::Direction::Inverse;
  const auto xinv = fft::acquire_plan(xi);
  runtime::parallel_for(0, B * O * NY, 64, [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    const std::span<c32> bins = arena.alloc<c32>(MXR);
    const std::span<c32> zfull = arena.alloc<c32>(NX);
    const std::span<c32> zout = arena.alloc<c32>(NX);
    const std::span<c32> work = arena.alloc<c32>(xinv->scratch_elems());
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t f = i / NY;
      const std::size_t y = i % NY;
      const c32* col = emu_xi_.data() + f * MXR * NY + y;
      for (std::size_t k = 0; k < MXR; ++k) bins[k] = col[k * NY];
      hermitian_extend(bins.data(), MXR, zfull.data(), NX);
      xinv->execute_one(zfull.data(), 1, zout.data(), 1, work);
      float* out = v.data() + f * NX * NY + y;
      for (std::size_t x = 0; x < NX; ++x) out[x * NY] = zout[x].re;
    }
  });
}

}  // namespace turbofno::core
