#include "core/spectral_conv.hpp"

#include <cmath>

#include "fft/plan_cache.hpp"
#include "runtime/parallel.hpp"
#include "runtime/timer.hpp"

namespace turbofno::core {

void init_weights(std::span<c32> w, std::size_t fan_in, std::size_t fan_out, unsigned seed) {
  std::mt19937 rng(seed);
  const float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (auto& x : w) x = {dist(rng), dist(rng)};
}

// ------------------------------------------------------------ SpectralConv1d

SpectralConv1d::SpectralConv1d(std::size_t batch, std::size_t hidden, std::size_t out_dim,
                               std::size_t n, std::size_t modes, Backend backend,
                               WeightScheme scheme, unsigned seed)
    : scheme_(scheme) {
  prob_.batch = batch;
  prob_.hidden = hidden;
  prob_.out_dim = out_dim;
  prob_.n = n;
  prob_.modes = modes;
  prob_.validate();

  if (scheme_ == WeightScheme::Shared) {
    weights_.resize(out_dim * hidden);
    pipeline_ = fused::make_pipeline1d(backend, prob_);
  } else {
    weights_.resize(modes * out_dim * hidden);
    freq_.resize(batch * hidden * modes);
    mixed_.resize(batch * out_dim * modes);
  }
  init_weights(weights_.span(), hidden, out_dim, seed);
}

SpectralConv1d::~SpectralConv1d() = default;
SpectralConv1d::SpectralConv1d(SpectralConv1d&&) noexcept = default;
SpectralConv1d& SpectralConv1d::operator=(SpectralConv1d&&) noexcept = default;

void SpectralConv1d::forward(std::span<const c32> u, std::span<c32> v) {
  forward(u, v, prob_.batch);
}

void SpectralConv1d::forward(std::span<const c32> u, std::span<c32> v, std::size_t batch) {
  if (scheme_ == WeightScheme::Shared) {
    // Validate before reserving so a wild batch value throws instead of
    // attempting a batch-proportional allocation.
    baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * prob_.n,
                                prob_.out_dim * prob_.n, batch, "SpectralConv1d");
    reserve(batch);
    pipeline_->run_batched(u, weights_.span(), v, batch);
  } else {
    forward_per_mode(u, v, batch);
  }
}

void SpectralConv1d::reserve(std::size_t batch) {
  if (batch <= prob_.batch) return;
  if (scheme_ == WeightScheme::Shared) {
    pipeline_->reserve(batch);
  } else {
    // Grow before bumping the capacity mark (exception safety).
    freq_.resize(batch * prob_.hidden * prob_.modes);
    mixed_.resize(batch * prob_.out_dim * prob_.modes);
  }
  prob_.batch = batch;
}

const trace::PipelineCounters& SpectralConv1d::counters() const {
  return scheme_ == WeightScheme::Shared ? pipeline_->counters() : permode_counters_;
}

void SpectralConv1d::forward_per_mode(std::span<const c32> u, std::span<c32> v,
                                      std::size_t batch) {
  baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * prob_.n,
                              prob_.out_dim * prob_.n, batch, "SpectralConv1d");
  reserve(batch);
  if (batch == 0) return;
  const std::size_t B = batch;
  const std::size_t K = prob_.hidden;
  const std::size_t O = prob_.out_dim;
  const std::size_t N = prob_.n;
  const std::size_t M = prob_.modes;
  permode_counters_.clear();

  fft::PlanDesc fd;
  fd.n = N;
  fd.keep = M;
  const auto fwd = fft::acquire_plan(fd);
  fft::PlanDesc id;
  id.n = N;
  id.dir = fft::Direction::Inverse;
  id.nonzero = M;
  const auto inv = fft::acquire_plan(id);

  runtime::Timer t;
  fwd->execute(u, freq_.span().first(B * K * M), B * K);
  // Per-mode mixing: for each frequency f, an independent O x K matrix.
  runtime::parallel_for(0, B * M, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t b = i / M;
      const std::size_t f = i % M;
      const c32* wf = weights_.data() + f * O * K;
      for (std::size_t o = 0; o < O; ++o) {
        c32 acc{};
        for (std::size_t k = 0; k < K; ++k) {
          cmadd(acc, wf[o * K + k], freq_[(b * K + k) * M + f]);
        }
        mixed_[(b * O + o) * M + f] = acc;
      }
    }
  });
  inv->execute(mixed_.span().first(B * O * M), v, B * O);

  auto& sc = permode_counters_.stage("per-mode-spectral-conv");
  sc.seconds = t.seconds();
  sc.bytes_read = (B * K * N + M * O * K + B * O * M) * sizeof(c32);
  sc.bytes_written = (B * K * M + B * O * M + B * O * N) * sizeof(c32);
  sc.flops = B * K * fwd->flops_per_signal() + trace::cgemm_flops(B * M, O, K) +
             B * O * inv->flops_per_signal();
  sc.kernel_launches = 3;
}

// ------------------------------------------------------------ SpectralConv2d

SpectralConv2d::SpectralConv2d(std::size_t batch, std::size_t hidden, std::size_t out_dim,
                               std::size_t nx, std::size_t ny, std::size_t modes_x,
                               std::size_t modes_y, Backend backend, WeightScheme scheme,
                               unsigned seed)
    : scheme_(scheme) {
  prob_.batch = batch;
  prob_.hidden = hidden;
  prob_.out_dim = out_dim;
  prob_.nx = nx;
  prob_.ny = ny;
  prob_.modes_x = modes_x;
  prob_.modes_y = modes_y;
  prob_.validate();
  if (scheme_ != WeightScheme::Shared) {
    throw std::invalid_argument("SpectralConv2d: PerMode scheme is 1D-only in this release");
  }
  weights_.resize(out_dim * hidden);
  pipeline_ = fused::make_pipeline2d(backend, prob_);
  init_weights(weights_.span(), hidden, out_dim, seed);
}

SpectralConv2d::~SpectralConv2d() = default;
SpectralConv2d::SpectralConv2d(SpectralConv2d&&) noexcept = default;
SpectralConv2d& SpectralConv2d::operator=(SpectralConv2d&&) noexcept = default;

void SpectralConv2d::forward(std::span<const c32> u, std::span<c32> v) {
  pipeline_->run(u, weights_.span(), v);
}

void SpectralConv2d::forward(std::span<const c32> u, std::span<c32> v, std::size_t batch) {
  const std::size_t field = prob_.nx * prob_.ny;
  baseline::check_batch_spans(u.size(), v.size(), prob_.hidden * field, prob_.out_dim * field,
                              batch, "SpectralConv2d");
  reserve(batch);
  pipeline_->run_batched(u, weights_.span(), v, batch);
}

void SpectralConv2d::reserve(std::size_t batch) {
  pipeline_->reserve(batch);
  if (batch > prob_.batch) prob_.batch = batch;
}

const trace::PipelineCounters& SpectralConv2d::counters() const { return pipeline_->counters(); }

}  // namespace turbofno::core
