// Full Fourier Neural Operator models (inference).
//
// Architecture per Li et al. / the paper's Figure 1(a):
//   lifting (pointwise complex linear in_ch -> hidden)
//   L x [ SpectralConv + pointwise residual path, activation ]
//   projection (pointwise hidden -> out_ch)
//
// One deviation from canonical FNO is inherited from the paper: spectra are
// truncated to the first `modes` bins of a C2C transform (no conjugate-
// symmetric half), so intermediate fields are genuinely complex; the
// activation acts on real and imaginary parts independently.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/spectral_conv.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"

namespace turbofno::core {

/// Pointwise (1x1) complex channel mixing: v[b,o,s] = sum_k W[o,k] u[b,k,s].
class PointwiseLinear {
 public:
  PointwiseLinear(std::size_t in_ch, std::size_t out_ch, unsigned seed);

  /// u [batch, in_ch, spatial] -> v [batch, out_ch, spatial].
  void forward(std::span<const c32> u, std::span<c32> v, std::size_t batch,
               std::size_t spatial) const;

  [[nodiscard]] std::span<c32> weights() noexcept { return w_.span(); }
  [[nodiscard]] std::size_t in_channels() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_channels() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  AlignedBuffer<c32> w_;  // [out, in]
};

/// Component-wise ReLU (acts on re and im independently).
void relu_inplace(std::span<c32> x);

class Fno1d {
 public:
  /// `batch` is fixed at construction (pipelines pre-plan their workspaces).
  Fno1d(const Fno1dConfig& cfg, std::size_t batch);

  /// u [batch, in_channels, n] -> v [batch, out_channels, n].
  void forward(std::span<const c32> u, std::span<c32> v);
  /// Micro-batch variant for the serving layer: first `batch` (<= the
  /// planned capacity) signals; per-signal results are bitwise-identical
  /// to a batch-1 forward.
  void forward(std::span<const c32> u, std::span<c32> v, std::size_t batch);

  [[nodiscard]] const Fno1dConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t batch() const noexcept { return batch_; }
  [[nodiscard]] std::vector<SpectralConv1d>& spectral_layers() noexcept { return spectral_; }

 private:
  Fno1dConfig cfg_;
  std::size_t batch_;
  PointwiseLinear lift_;
  std::vector<SpectralConv1d> spectral_;
  std::vector<PointwiseLinear> residual_;
  PointwiseLinear project_;
  AlignedBuffer<c32> h0_;
  AlignedBuffer<c32> h1_;
  AlignedBuffer<c32> hres_;
};

class Fno2d {
 public:
  Fno2d(const Fno2dConfig& cfg, std::size_t batch);

  /// u [batch, in_channels, nx, ny] -> v [batch, out_channels, nx, ny].
  void forward(std::span<const c32> u, std::span<c32> v);
  /// Micro-batch variant; see Fno1d::forward.
  void forward(std::span<const c32> u, std::span<c32> v, std::size_t batch);

  [[nodiscard]] const Fno2dConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t batch() const noexcept { return batch_; }
  [[nodiscard]] std::vector<SpectralConv2d>& spectral_layers() noexcept { return spectral_; }

 private:
  Fno2dConfig cfg_;
  std::size_t batch_;
  PointwiseLinear lift_;
  std::vector<SpectralConv2d> spectral_;
  std::vector<PointwiseLinear> residual_;
  PointwiseLinear project_;
  AlignedBuffer<c32> h0_;
  AlignedBuffer<c32> h1_;
  AlignedBuffer<c32> hres_;
};

}  // namespace turbofno::core
