// Full Fourier Neural Operator models (inference).
//
// Architecture per Li et al. / the paper's Figure 1(a):
//   lifting (pointwise complex linear in_ch -> hidden)
//   L x [ SpectralConv + pointwise residual path, activation ]
//   projection (pointwise hidden -> out_ch)
//
// One deviation from canonical FNO is inherited from the paper: spectra are
// truncated to the first `modes` bins of a C2C transform (no conjugate-
// symmetric half), so intermediate fields are genuinely complex; the
// activation acts on real and imaginary parts independently.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/spectral_conv.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"

namespace turbofno::core {

/// Pointwise (1x1) complex channel mixing: v[b,o,s] = sum_k W[o,k] u[b,k,s].
class PointwiseLinear {
 public:
  PointwiseLinear(std::size_t in_ch, std::size_t out_ch, unsigned seed);

  /// u [batch, in_ch, spatial] -> v [batch, out_ch, spatial].
  void forward(std::span<const c32> u, std::span<c32> v, std::size_t batch,
               std::size_t spatial) const;
  /// Real-field variant: mixes with the real parts of the weights (the real
  /// model keeps every spatial tensor in floats; only the retained spectra
  /// are complex).
  void forward_real(std::span<const float> u, std::span<float> v, std::size_t batch,
                    std::size_t spatial) const;

  /// Mutable weight access [out, in].  Weight-invalidating: writing through
  /// this span changes what subsequent forwards compute, and any derived
  /// state a caller packed from the old values (split/SoA weight planes)
  /// must be re-derived.  Use the const overload for read-only access.
  [[nodiscard]] std::span<c32> weights() noexcept { return w_.span(); }
  [[nodiscard]] std::span<const c32> weights() const noexcept { return w_.span(); }
  [[nodiscard]] std::size_t in_channels() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_channels() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  AlignedBuffer<c32> w_;  // [out, in]
};

/// Component-wise ReLU (acts on re and im independently).
void relu_inplace(std::span<c32> x);
/// ReLU on a real field.
void relu_inplace(std::span<float> x);

class Fno1d {
 public:
  /// Capacity is elastic: the model starts sized for one signal and grows
  /// its workspaces on demand (reserve / a larger forward micro-batch).
  explicit Fno1d(const Fno1dConfig& cfg);
  /// v1 spelling with an up-front capacity.  `batch` is now only a
  /// reservation hint (equivalent to Fno1d(cfg) + reserve(batch)), not a
  /// frozen contract.  Removal horizon: TURBOFNO_API_VERSION 3.
  [[deprecated(
      "TurboFNO API v2: batch capacity is elastic — use Fno1d(cfg) (+ reserve), or serve "
      "through turbofno::Engine sessions")]]
  Fno1d(const Fno1dConfig& cfg, std::size_t batch) : Fno1d(cfg) {
    reserve(batch);
  }

  /// u [batch, in_channels, n] -> v [batch, out_channels, n] over the
  /// current capacity (see capacity()).
  void forward(std::span<const c32> u, std::span<c32> v);
  /// Micro-batch variant for the serving layer: first `batch` signals; a
  /// batch beyond the current capacity grows the workspaces in place.
  /// Per-signal results are bitwise-identical to a batch-1 forward.
  void forward(std::span<const c32> u, std::span<c32> v, std::size_t batch);
  /// Real-input forward: u [batch, in_channels, n] and v [batch,
  /// out_channels, n] hold real samples; every hidden field stays in floats
  /// and each spectral layer runs its RFFT half-spectrum lane (see
  /// SpectralConv1d::forward_real for the TURBOFNO_REAL_SPECTRAL knob
  /// semantics).  Requires n >= 4.
  void forward_real(std::span<const float> u, std::span<float> v, std::size_t batch);

  /// Grows the hidden-state workspaces (and every layer's) so forwards up
  /// to `batch` run without reallocation.  Never shrinks; growth does not
  /// perturb results or weights.
  void reserve(std::size_t batch);

  [[nodiscard]] const Fno1dConfig& config() const noexcept { return cfg_; }
  /// Current capacity high-water mark (grows, never shrinks).
  [[nodiscard]] std::size_t capacity() const noexcept { return batch_; }
  [[nodiscard]] std::size_t batch() const noexcept { return batch_; }

  /// Mutable layer access.  Weight-invalidating (see PointwiseLinear::
  /// weights): use the const overloads when only reading.
  [[nodiscard]] std::vector<SpectralConv1d>& spectral_layers() noexcept { return spectral_; }
  [[nodiscard]] const std::vector<SpectralConv1d>& spectral_layers() const noexcept {
    return spectral_;
  }
  [[nodiscard]] PointwiseLinear& lift() noexcept { return lift_; }
  [[nodiscard]] const PointwiseLinear& lift() const noexcept { return lift_; }
  [[nodiscard]] std::vector<PointwiseLinear>& residual_layers() noexcept { return residual_; }
  [[nodiscard]] const std::vector<PointwiseLinear>& residual_layers() const noexcept {
    return residual_;
  }
  [[nodiscard]] PointwiseLinear& projection() noexcept { return project_; }
  [[nodiscard]] const PointwiseLinear& projection() const noexcept { return project_; }

 private:
  Fno1dConfig cfg_;
  std::size_t batch_;
  PointwiseLinear lift_;
  std::vector<SpectralConv1d> spectral_;
  std::vector<PointwiseLinear> residual_;
  PointwiseLinear project_;
  AlignedBuffer<c32> h0_;
  AlignedBuffer<c32> h1_;
  AlignedBuffer<c32> hres_;
  // Real-lane hidden fields (lazy, grow-only; half the complex footprint).
  AlignedBuffer<float> r0_;
  AlignedBuffer<float> r1_;
  AlignedBuffer<float> rres_;
};

class Fno2d {
 public:
  /// Elastic capacity; see Fno1d.
  explicit Fno2d(const Fno2dConfig& cfg);
  /// v1 spelling; see the Fno1d two-argument constructor.
  [[deprecated(
      "TurboFNO API v2: batch capacity is elastic — use Fno2d(cfg) (+ reserve), or serve "
      "through turbofno::Engine sessions")]]
  Fno2d(const Fno2dConfig& cfg, std::size_t batch) : Fno2d(cfg) {
    reserve(batch);
  }

  /// u [batch, in_channels, nx, ny] -> v [batch, out_channels, nx, ny].
  void forward(std::span<const c32> u, std::span<c32> v);
  /// Micro-batch variant; see Fno1d::forward (elastic growth included).
  void forward(std::span<const c32> u, std::span<c32> v, std::size_t batch);
  /// Real-input forward; see Fno1d::forward_real.  Requires nx >= 4.
  void forward_real(std::span<const float> u, std::span<float> v, std::size_t batch);

  /// Elastic capacity growth; see Fno1d::reserve.
  void reserve(std::size_t batch);

  [[nodiscard]] const Fno2dConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return batch_; }
  [[nodiscard]] std::size_t batch() const noexcept { return batch_; }

  /// Mutable layer access is weight-invalidating; see Fno1d.
  [[nodiscard]] std::vector<SpectralConv2d>& spectral_layers() noexcept { return spectral_; }
  [[nodiscard]] const std::vector<SpectralConv2d>& spectral_layers() const noexcept {
    return spectral_;
  }
  [[nodiscard]] PointwiseLinear& lift() noexcept { return lift_; }
  [[nodiscard]] const PointwiseLinear& lift() const noexcept { return lift_; }
  [[nodiscard]] std::vector<PointwiseLinear>& residual_layers() noexcept { return residual_; }
  [[nodiscard]] const std::vector<PointwiseLinear>& residual_layers() const noexcept {
    return residual_;
  }
  [[nodiscard]] PointwiseLinear& projection() noexcept { return project_; }
  [[nodiscard]] const PointwiseLinear& projection() const noexcept { return project_; }

 private:
  Fno2dConfig cfg_;
  std::size_t batch_;
  PointwiseLinear lift_;
  std::vector<SpectralConv2d> spectral_;
  std::vector<PointwiseLinear> residual_;
  PointwiseLinear project_;
  AlignedBuffer<c32> h0_;
  AlignedBuffer<c32> h1_;
  AlignedBuffer<c32> hres_;
  // Real-lane hidden fields (lazy, grow-only; half the complex footprint).
  AlignedBuffer<float> r0_;
  AlignedBuffer<float> r1_;
  AlignedBuffer<float> rres_;
};

}  // namespace turbofno::core
