#include "core/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

namespace turbofno::core {

void fill_random(std::span<c32> x, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (auto& v : x) v = {dist(rng), dist(rng)};
}

void burgers_initial_condition(std::span<c32> x, std::size_t n, unsigned seed,
                               std::size_t harmonics) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> amp(-1.0f, 1.0f);
  std::uniform_real_distribution<float> phase(0.0f, 2.0f * std::numbers::pi_v<float>);
  std::vector<float> a(harmonics);
  std::vector<float> ph(harmonics);
  for (std::size_t h = 0; h < harmonics; ++h) {
    a[h] = amp(rng) / static_cast<float>(h + 1);  // red spectrum
    ph[h] = phase(rng);
  }
  for (std::size_t i = 0; i < n && i < x.size(); ++i) {
    float s = 0.0f;
    const float t = 2.0f * std::numbers::pi_v<float> * static_cast<float>(i) /
                    static_cast<float>(n);
    for (std::size_t h = 0; h < harmonics; ++h) {
      s += a[h] * std::sin(static_cast<float>(h + 1) * t + ph[h]);
    }
    x[i] = {s, 0.0f};
  }
}

void burgers_batch(std::span<c32> x, std::size_t batch, std::size_t channels, std::size_t n,
                   unsigned seed) {
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      burgers_initial_condition(x.subspan((b * channels + c) * n, n), n,
                                seed + static_cast<unsigned>(b * channels + c) * 2654435761u);
    }
  }
}

void darcy_coefficient_field(std::span<c32> x, std::size_t nx, std::size_t ny, unsigned seed) {
  // Smooth random field from a few 2D harmonics, thresholded into a
  // two-phase medium (the classic Darcy benchmark coefficient).
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> amp(-1.0f, 1.0f);
  constexpr std::size_t kH = 4;
  float a[kH][kH];
  float px[kH][kH];
  float py[kH][kH];
  std::uniform_real_distribution<float> phase(0.0f, 2.0f * std::numbers::pi_v<float>);
  for (std::size_t i = 0; i < kH; ++i) {
    for (std::size_t j = 0; j < kH; ++j) {
      a[i][j] = amp(rng) / static_cast<float>((i + 1) * (j + 1));
      px[i][j] = phase(rng);
      py[i][j] = phase(rng);
    }
  }
  for (std::size_t ix = 0; ix < nx; ++ix) {
    const float tx = 2.0f * std::numbers::pi_v<float> * static_cast<float>(ix) /
                     static_cast<float>(nx);
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const float ty = 2.0f * std::numbers::pi_v<float> * static_cast<float>(iy) /
                       static_cast<float>(ny);
      float s = 0.0f;
      for (std::size_t i = 0; i < kH; ++i) {
        for (std::size_t j = 0; j < kH; ++j) {
          s += a[i][j] * std::sin(static_cast<float>(i + 1) * tx + px[i][j]) *
               std::sin(static_cast<float>(j + 1) * ty + py[i][j]);
        }
      }
      // Two-phase medium: high/low permeability.
      x[ix * ny + iy] = {s > 0.0f ? 12.0f : 3.0f, 0.0f};
    }
  }
}

void darcy_batch(std::span<c32> x, std::size_t batch, std::size_t channels, std::size_t nx,
                 std::size_t ny, unsigned seed) {
  const std::size_t field = nx * ny;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      darcy_coefficient_field(x.subspan((b * channels + c) * field, field), nx, ny,
                              seed + static_cast<unsigned>(b * channels + c) * 2654435761u);
    }
  }
}

void vorticity_field(std::span<c32> x, std::size_t nx, std::size_t ny, unsigned seed,
                     std::size_t harmonics) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> amp(-1.0f, 1.0f);
  std::uniform_real_distribution<float> phase(0.0f, 2.0f * std::numbers::pi_v<float>);
  std::vector<float> a(harmonics * harmonics);
  std::vector<float> ph(harmonics * harmonics);
  for (auto& v : a) v = amp(rng);
  for (auto& v : ph) v = phase(rng);
  for (std::size_t ix = 0; ix < nx; ++ix) {
    const float tx = 2.0f * std::numbers::pi_v<float> * static_cast<float>(ix) /
                     static_cast<float>(nx);
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const float ty = 2.0f * std::numbers::pi_v<float> * static_cast<float>(iy) /
                       static_cast<float>(ny);
      float s = 0.0f;
      for (std::size_t i = 0; i < harmonics; ++i) {
        for (std::size_t j = 0; j < harmonics; ++j) {
          const float k2 = static_cast<float>((i + 1) * (i + 1) + (j + 1) * (j + 1));
          s += a[i * harmonics + j] / k2 *
               std::cos(static_cast<float>(i + 1) * tx + static_cast<float>(j + 1) * ty +
                        ph[i * harmonics + j]);
        }
      }
      x[ix * ny + iy] = {s, 0.0f};
    }
  }
}

double rel_l2_error(std::span<const c32> a, std::span<const c32> b) {
  double num = 0.0;
  double den = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double dr = static_cast<double>(a[i].re) - static_cast<double>(b[i].re);
    const double di = static_cast<double>(a[i].im) - static_cast<double>(b[i].im);
    num += dr * dr + di * di;
    den += static_cast<double>(b[i].re) * b[i].re + static_cast<double>(b[i].im) * b[i].im;
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

double max_abs_error(std::span<const c32> a, std::span<const c32> b) {
  double m = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    m = std::max(m, static_cast<double>(std::abs(a[i].re - b[i].re)));
    m = std::max(m, static_cast<double>(std::abs(a[i].im - b[i].im)));
  }
  return m;
}

}  // namespace turbofno::core
