#include "core/engine.hpp"

#include <utility>

#include "fft/plan_cache.hpp"
#include "runtime/parallel.hpp"

namespace turbofno::core {

Engine::Engine(const EngineOptions& opts) : opts_(opts) {
  if (opts_.threads > 0) runtime::set_thread_count(opts_.threads);
  if (opts_.plan_cache_capacity > 0) fft::set_plan_cache_capacity(opts_.plan_cache_capacity);
}

ModelHandle Engine::add_spec(std::shared_ptr<const detail::ModelSpec> spec) {
  const runtime::MutexLock lock(mu_);
  specs_.push_back(std::move(spec));
  return specs_.size() - 1;
}

std::shared_ptr<const detail::ModelSpec> Engine::spec(ModelHandle m) const {
  const runtime::MutexLock lock(mu_);
  return specs_.at(m);
}

ModelHandle Engine::register_model(const Fno1dConfig& cfg) {
  auto s = std::make_shared<detail::ModelSpec>();
  s->is_2d = false;
  s->cfg1 = cfg;
  s->in_elems = cfg.in_channels * cfg.n;
  s->out_elems = cfg.out_channels * cfg.n;
  return add_spec(std::move(s));
}

ModelHandle Engine::register_model(const Fno2dConfig& cfg) {
  auto s = std::make_shared<detail::ModelSpec>();
  s->is_2d = true;
  s->cfg2 = cfg;
  s->in_elems = cfg.in_channels * cfg.nx * cfg.ny;
  s->out_elems = cfg.out_channels * cfg.nx * cfg.ny;
  return add_spec(std::move(s));
}

ModelHandle Engine::load_model(const Fno1dConfig& cfg, const WeightBundle& weights) {
  // Validate up front by scattering into a capacity-1 probe model: a
  // missing tensor or architecture mismatch throws here instead of at
  // first use.  Constructing the probe is not free (it builds the layer
  // pipelines), but registration is a cold path and the probe guarantees
  // validation can never drift from what scatter_weights actually needs.
  Fno1d probe(cfg);
  scatter_weights(probe, weights);
  auto s = std::make_shared<detail::ModelSpec>();
  s->is_2d = false;
  s->cfg1 = cfg;
  s->weights = weights;
  s->has_weights = true;
  s->in_elems = cfg.in_channels * cfg.n;
  s->out_elems = cfg.out_channels * cfg.n;
  return add_spec(std::move(s));
}

ModelHandle Engine::load_model(const Fno2dConfig& cfg, const WeightBundle& weights) {
  Fno2d probe(cfg);
  scatter_weights(probe, weights);
  auto s = std::make_shared<detail::ModelSpec>();
  s->is_2d = true;
  s->cfg2 = cfg;
  s->weights = weights;
  s->has_weights = true;
  s->in_elems = cfg.in_channels * cfg.nx * cfg.ny;
  s->out_elems = cfg.out_channels * cfg.nx * cfg.ny;
  return add_spec(std::move(s));
}

Session Engine::create_session(ModelHandle model, std::size_t capacity_hint) const {
  return Session(spec(model), capacity_hint);
}

std::size_t Engine::model_count() const {
  const runtime::MutexLock lock(mu_);
  return specs_.size();
}

bool Engine::model_is_2d(ModelHandle m) const { return spec(m)->is_2d; }
std::size_t Engine::input_elems(ModelHandle m) const { return spec(m)->in_elems; }
std::size_t Engine::output_elems(ModelHandle m) const { return spec(m)->out_elems; }

// ---------------------------------------------------------------- Session

Session::Session(std::shared_ptr<const detail::ModelSpec> spec, std::size_t capacity_hint)
    : spec_(std::move(spec)) {
  if (spec_->is_2d) {
    m2_ = std::make_unique<Fno2d>(spec_->cfg2);
    if (spec_->has_weights) scatter_weights(*m2_, spec_->weights);
    m2_->reserve(capacity_hint);
  } else {
    m1_ = std::make_unique<Fno1d>(spec_->cfg1);
    if (spec_->has_weights) scatter_weights(*m1_, spec_->weights);
    m1_->reserve(capacity_hint);
  }
}

void Session::run(std::span<const c32> u, std::span<c32> v, std::size_t batch) {
  // Buffer-vs-batch validation happens in the model's forward (one frame
  // below) — one guard, one message, no drift.
  if (m1_) {
    m1_->forward(u, v, batch);
  } else {
    m2_->forward(u, v, batch);
  }
}

void Session::run_real(std::span<const float> u, std::span<float> v, std::size_t batch) {
  if (m1_) {
    m1_->forward_real(u, v, batch);
  } else {
    m2_->forward_real(u, v, batch);
  }
}

void Session::reserve(std::size_t batch) {
  if (m1_) {
    m1_->reserve(batch);
  } else {
    m2_->reserve(batch);
  }
}

std::size_t Session::capacity() const noexcept {
  return m1_ ? m1_->capacity() : m2_->capacity();
}

WeightBundle Session::gather() const {
  return m1_ ? gather_weights(*m1_) : gather_weights(*m2_);
}

}  // namespace turbofno::core
