// TurboFNO public API — single include for downstream users.
//
//   #include "core/api.hpp"
//
//   turbofno::core::Fno1dConfig cfg;
//   turbofno::core::Fno1d model(cfg, /*batch=*/16);
//   model.forward(input, output);
//
// Layers, pipelines, FFT plans, and the GEMM are also usable directly; see
// the per-module headers pulled in below.
#pragma once

#include "baseline/pipeline1d.hpp"    // IWYU pragma: export
#include "baseline/pipeline2d.hpp"    // IWYU pragma: export
#include "baseline/problem.hpp"       // IWYU pragma: export
#include "core/config.hpp"            // IWYU pragma: export
#include "core/fno.hpp"               // IWYU pragma: export
#include "core/spectral_conv.hpp"     // IWYU pragma: export
#include "core/workload.hpp"          // IWYU pragma: export
#include "fft/fft2d.hpp"              // IWYU pragma: export
#include "fft/plan.hpp"               // IWYU pragma: export
#include "fft/plan_cache.hpp"         // IWYU pragma: export
#include "fused/ladder.hpp"           // IWYU pragma: export
#include "gemm/cgemm.hpp"             // IWYU pragma: export
#include "gpusim/cost_model.hpp"      // IWYU pragma: export
#include "gpusim/layouts.hpp"         // IWYU pragma: export
#include "gpusim/pipeline_model.hpp"  // IWYU pragma: export
#include "serve/server.hpp"           // IWYU pragma: export
#include "tensor/tensor.hpp"          // IWYU pragma: export
#include "trace/counters.hpp"         // IWYU pragma: export
#include "trace/table.hpp"            // IWYU pragma: export
