// TurboFNO public API v2 — curated, versioned facade.
//
//   #include "core/api.hpp"
//
//   turbofno::Engine engine;
//   const auto model = engine.register_model(turbofno::Fno1dConfig{});
//   auto session = engine.create_session(model, /*capacity_hint=*/8);
//   session.run(input, output, /*batch=*/3);   // any batch; capacity is elastic
//
// This header exports exactly the supported surface: Engine/Session, the
// model configs (Backend::Auto included), the direct Fno models, weight
// serialization, the serving layer (in-process turbofno::serve and the
// socket front-end turbofno::net — wire protocol, SocketServer, Client),
// the sharded multi-process layer (turbofno::shard — Topology, Router,
// Worker, Supervisor), and the tracing vocabulary.  Deeper
// layers (fft/, gemm/, fused/ pipelines, gpusim/) remain available through
// their own headers but are not part of the v2 compatibility surface.
//
// v1 -> v2 migration (see README "Public API v2" for the full table):
//   Fno1d(cfg, batch)                  -> Fno1d(cfg) + reserve(batch), or an
//                                         Engine session (deprecated shim kept)
//   make_pipeline1d(variant, prob)     -> unchanged, or Backend::Auto via configs
//   InferenceServer::submit(id, vec)   -> unchanged (now a thin wrapper over the
//                                         zero-copy span submission)
//
// Deprecated entry points compile with warnings until TURBOFNO_API_VERSION 3.
#pragma once

// Major version of the public surface below.  Bumped when a deprecated
// entry point is removed or an exported type changes incompatibly.
#define TURBOFNO_API_VERSION 2

#include "core/config.hpp"            // IWYU pragma: export
#include "core/engine.hpp"            // IWYU pragma: export
#include "core/fno.hpp"               // IWYU pragma: export
#include "core/serialize.hpp"         // IWYU pragma: export
#include "core/spectral_conv.hpp"     // IWYU pragma: export
#include "core/workload.hpp"          // IWYU pragma: export
#include "fft/real.hpp"               // IWYU pragma: export
#include "fused/ladder.hpp"           // IWYU pragma: export
#include "net/client.hpp"             // IWYU pragma: export
#include "net/protocol.hpp"           // IWYU pragma: export
#include "net/socket_server.hpp"      // IWYU pragma: export
#include "serve/server.hpp"           // IWYU pragma: export
#include "shard/router.hpp"           // IWYU pragma: export
#include "shard/supervisor.hpp"       // IWYU pragma: export
#include "shard/topology.hpp"         // IWYU pragma: export
#include "shard/worker.hpp"           // IWYU pragma: export
#include "tensor/complex.hpp"         // IWYU pragma: export
#include "tensor/tensor.hpp"          // IWYU pragma: export
#include "trace/counters.hpp"         // IWYU pragma: export
#include "trace/table.hpp"            // IWYU pragma: export

namespace turbofno {

// The curated v2 surface, re-exported at the top level.
using core::Backend;          // = fused::Variant, including Backend::Auto
using core::Engine;
using core::EngineOptions;
using core::Fno1d;
using core::Fno1dConfig;
using core::Fno2d;
using core::Fno2dConfig;
using core::ModelHandle;
using core::Session;
using core::WeightBundle;
using core::WeightScheme;
using core::gather_weights;
using core::load_bundle;
using core::load_bundle_file;
using core::save_bundle;
using core::save_bundle_file;
using core::scatter_weights;

// Real-spectral (RFFT) lane knob: routes SpectralConv*::forward_real /
// Session::run_real between the half-spectrum RFFT schedule (default) and
// the complex C2C reference of the same truncation.  Mirrors the
// TURBOFNO_REAL_SPECTRAL environment variable.
using fft::real_spectral_enabled;
using fft::set_real_spectral;

// The v1 entry points themselves (the batch-frozen Fno1d/Fno2d
// constructors) keep compiling with [[deprecated]] warnings — see
// core/fno.hpp.  Removal horizon: TURBOFNO_API_VERSION 3.

}  // namespace turbofno
