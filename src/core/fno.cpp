#include "core/fno.hpp"

#include <stdexcept>

#include "baseline/problem.hpp"

#include "runtime/parallel.hpp"

namespace turbofno::core {

PointwiseLinear::PointwiseLinear(std::size_t in_ch, std::size_t out_ch, unsigned seed)
    : in_(in_ch), out_(out_ch), w_(in_ch * out_ch) {
  init_weights(w_.span(), in_ch, out_ch, seed);
}

void PointwiseLinear::forward(std::span<const c32> u, std::span<c32> v, std::size_t batch,
                              std::size_t spatial) const {
  runtime::parallel_for(0, batch, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      const c32* ub = u.data() + b * in_ * spatial;
      c32* vb = v.data() + b * out_ * spatial;
      for (std::size_t o = 0; o < out_; ++o) {
        c32* vrow = vb + o * spatial;
        for (std::size_t s = 0; s < spatial; ++s) vrow[s] = c32{};
        for (std::size_t k = 0; k < in_; ++k) {
          const c32 w = w_[o * in_ + k];
          const c32* urow = ub + k * spatial;
          for (std::size_t s = 0; s < spatial; ++s) {
            cmadd(vrow[s], w, urow[s]);
          }
        }
      }
    }
  });
}

void PointwiseLinear::forward_real(std::span<const float> u, std::span<float> v,
                                   std::size_t batch, std::size_t spatial) const {
  runtime::parallel_for(0, batch, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      const float* ub = u.data() + b * in_ * spatial;
      float* vb = v.data() + b * out_ * spatial;
      for (std::size_t o = 0; o < out_; ++o) {
        float* vrow = vb + o * spatial;
        for (std::size_t s = 0; s < spatial; ++s) vrow[s] = 0.0f;
        for (std::size_t k = 0; k < in_; ++k) {
          const float w = w_[o * in_ + k].re;
          const float* urow = ub + k * spatial;
          for (std::size_t s = 0; s < spatial; ++s) {
            vrow[s] += w * urow[s];
          }
        }
      }
    }
  });
}

void relu_inplace(std::span<c32> x) {
  runtime::parallel_for(0, x.size(), 1 << 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      x[i].re = x[i].re > 0.0f ? x[i].re : 0.0f;
      x[i].im = x[i].im > 0.0f ? x[i].im : 0.0f;
    }
  });
}

void relu_inplace(std::span<float> x) {
  runtime::parallel_for(0, x.size(), 1 << 16, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      x[i] = x[i] > 0.0f ? x[i] : 0.0f;
    }
  });
}

// ----------------------------------------------------------------- Fno1d

Fno1d::Fno1d(const Fno1dConfig& cfg)
    : cfg_(cfg),
      batch_(1),
      lift_(cfg.in_channels, cfg.hidden, cfg.seed),
      project_(cfg.hidden, cfg.out_channels, cfg.seed + 1000003u) {
  // hidden/n/modes are validated by the spectral layers' problem; the
  // physical channel counts are only consumed here, so guard them here
  // (the per-item element counts divide the buffer checks).
  if (cfg_.in_channels == 0 || cfg_.out_channels == 0) {
    throw std::invalid_argument("Fno1d: in_channels/out_channels must be non-zero");
  }
  spectral_.reserve(cfg_.layers);
  residual_.reserve(cfg_.layers);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    spectral_.emplace_back(batch_, cfg_.hidden, cfg_.hidden, cfg_.n, cfg_.modes, cfg_.backend,
                           cfg_.scheme, cfg_.seed + static_cast<unsigned>(l) * 7919u);
    residual_.emplace_back(cfg_.hidden, cfg_.hidden, cfg_.seed + 31u + static_cast<unsigned>(l));
  }
  const std::size_t hid = batch_ * cfg_.hidden * cfg_.n;
  h0_.resize(hid);
  h1_.resize(hid);
  hres_.resize(hid);
}

void Fno1d::reserve(std::size_t batch) {
  if (batch <= batch_) return;
  // Grow everything before bumping the capacity mark (exception safety).
  for (auto& layer : spectral_) layer.reserve(batch);
  const std::size_t hid = batch * cfg_.hidden * cfg_.n;
  h0_.resize(hid);
  h1_.resize(hid);
  hres_.resize(hid);
  batch_ = batch;
}

void Fno1d::forward(std::span<const c32> u, std::span<c32> v) {
  forward(u, v, batch_);
}

void Fno1d::forward(std::span<const c32> u, std::span<c32> v, std::size_t batch) {
  baseline::check_batch_spans(u.size(), v.size(), cfg_.in_channels * cfg_.n,
                              cfg_.out_channels * cfg_.n, batch, "Fno1d");
  reserve(batch);
  if (batch == 0) return;
  const std::size_t spatial = cfg_.n;
  const std::size_t hid = batch * cfg_.hidden * spatial;
  const auto h0 = h0_.span().first(hid);
  const auto h1 = h1_.span().first(hid);
  const auto hres = hres_.span().first(hid);
  lift_.forward(u, h0, batch, spatial);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    spectral_[l].forward(h0, h1, batch);
    residual_[l].forward(h0, hres, batch, spatial);
    // h0 <- act(spectral + residual); last layer skips the activation.
    auto* a = h1_.data();
    const auto* r = hres_.data();
    auto* dst = h0_.data();
    const bool last = (l + 1 == cfg_.layers);
    runtime::parallel_for(0, hid, 1 << 16, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        c32 s = a[i] + r[i];
        if (!last) {
          s.re = s.re > 0.0f ? s.re : 0.0f;
          s.im = s.im > 0.0f ? s.im : 0.0f;
        }
        dst[i] = s;
      }
    });
  }
  project_.forward(h0, v, batch, spatial);
}

void Fno1d::forward_real(std::span<const float> u, std::span<float> v, std::size_t batch) {
  baseline::check_batch_spans(u.size(), v.size(), cfg_.in_channels * cfg_.n,
                              cfg_.out_channels * cfg_.n, batch, "Fno1d(real)");
  reserve(batch);
  if (batch == 0) return;
  const std::size_t spatial = cfg_.n;
  const std::size_t hid = batch * cfg_.hidden * spatial;
  if (r0_.size() < hid) {
    r0_.resize(hid);
    r1_.resize(hid);
    rres_.resize(hid);
  }
  const auto r0 = r0_.span().first(hid);
  const auto r1 = r1_.span().first(hid);
  const auto rres = rres_.span().first(hid);
  lift_.forward_real(u, r0, batch, spatial);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    spectral_[l].forward_real(r0, r1, batch);
    residual_[l].forward_real(r0, rres, batch, spatial);
    // r0 <- act(spectral + residual); last layer skips the activation.
    auto* a = r1_.data();
    const auto* r = rres_.data();
    auto* dst = r0_.data();
    const bool last = (l + 1 == cfg_.layers);
    runtime::parallel_for(0, hid, 1 << 16, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        float s = a[i] + r[i];
        if (!last) s = s > 0.0f ? s : 0.0f;
        dst[i] = s;
      }
    });
  }
  project_.forward_real(r0, v, batch, spatial);
}

// ----------------------------------------------------------------- Fno2d

Fno2d::Fno2d(const Fno2dConfig& cfg)
    : cfg_(cfg),
      batch_(1),
      lift_(cfg.in_channels, cfg.hidden, cfg.seed),
      project_(cfg.hidden, cfg.out_channels, cfg.seed + 1000003u) {
  if (cfg_.in_channels == 0 || cfg_.out_channels == 0) {
    throw std::invalid_argument("Fno2d: in_channels/out_channels must be non-zero");
  }
  spectral_.reserve(cfg_.layers);
  residual_.reserve(cfg_.layers);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    spectral_.emplace_back(batch_, cfg_.hidden, cfg_.hidden, cfg_.nx, cfg_.ny, cfg_.modes_x,
                           cfg_.modes_y, cfg_.backend, cfg_.scheme,
                           cfg_.seed + static_cast<unsigned>(l) * 7919u);
    residual_.emplace_back(cfg_.hidden, cfg_.hidden, cfg_.seed + 31u + static_cast<unsigned>(l));
  }
  const std::size_t hid = batch_ * cfg_.hidden * cfg_.nx * cfg_.ny;
  h0_.resize(hid);
  h1_.resize(hid);
  hres_.resize(hid);
}

void Fno2d::reserve(std::size_t batch) {
  if (batch <= batch_) return;
  for (auto& layer : spectral_) layer.reserve(batch);
  const std::size_t hid = batch * cfg_.hidden * cfg_.nx * cfg_.ny;
  h0_.resize(hid);
  h1_.resize(hid);
  hres_.resize(hid);
  batch_ = batch;
}

void Fno2d::forward(std::span<const c32> u, std::span<c32> v) {
  forward(u, v, batch_);
}

void Fno2d::forward(std::span<const c32> u, std::span<c32> v, std::size_t batch) {
  const std::size_t field = cfg_.nx * cfg_.ny;
  baseline::check_batch_spans(u.size(), v.size(), cfg_.in_channels * field,
                              cfg_.out_channels * field, batch, "Fno2d");
  reserve(batch);
  if (batch == 0) return;
  const std::size_t spatial = field;
  const std::size_t hid = batch * cfg_.hidden * spatial;
  const auto h0 = h0_.span().first(hid);
  const auto h1 = h1_.span().first(hid);
  const auto hres = hres_.span().first(hid);
  lift_.forward(u, h0, batch, spatial);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    spectral_[l].forward(h0, h1, batch);
    residual_[l].forward(h0, hres, batch, spatial);
    auto* a = h1_.data();
    const auto* r = hres_.data();
    auto* dst = h0_.data();
    const bool last = (l + 1 == cfg_.layers);
    runtime::parallel_for(0, hid, 1 << 16, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        c32 s = a[i] + r[i];
        if (!last) {
          s.re = s.re > 0.0f ? s.re : 0.0f;
          s.im = s.im > 0.0f ? s.im : 0.0f;
        }
        dst[i] = s;
      }
    });
  }
  project_.forward(h0, v, batch, spatial);
}

void Fno2d::forward_real(std::span<const float> u, std::span<float> v, std::size_t batch) {
  const std::size_t field = cfg_.nx * cfg_.ny;
  baseline::check_batch_spans(u.size(), v.size(), cfg_.in_channels * field,
                              cfg_.out_channels * field, batch, "Fno2d(real)");
  reserve(batch);
  if (batch == 0) return;
  const std::size_t spatial = field;
  const std::size_t hid = batch * cfg_.hidden * spatial;
  if (r0_.size() < hid) {
    r0_.resize(hid);
    r1_.resize(hid);
    rres_.resize(hid);
  }
  const auto r0 = r0_.span().first(hid);
  const auto r1 = r1_.span().first(hid);
  const auto rres = rres_.span().first(hid);
  lift_.forward_real(u, r0, batch, spatial);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    spectral_[l].forward_real(r0, r1, batch);
    residual_[l].forward_real(r0, rres, batch, spatial);
    auto* a = r1_.data();
    const auto* r = rres_.data();
    auto* dst = r0_.data();
    const bool last = (l + 1 == cfg_.layers);
    runtime::parallel_for(0, hid, 1 << 16, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        float s = a[i] + r[i];
        if (!last) s = s > 0.0f ? s : 0.0f;
        dst[i] = s;
      }
    });
  }
  project_.forward_real(r0, v, batch, spatial);
}

}  // namespace turbofno::core
