// Synthetic workload generators for benches, tests, and examples.
//
// All generators are deterministic (seeded) and produce band-limited
// "PDE-like" fields: superpositions of low-frequency harmonics plus mild
// noise, the function class FNO papers evaluate on (Burgers, Darcy,
// Navier-Stokes initial conditions).
#pragma once

#include <cstddef>
#include <span>

#include "tensor/complex.hpp"

namespace turbofno::core {

/// Uniform random complex values in [-1, 1]^2 (kernel stress inputs).
void fill_random(std::span<c32> x, unsigned seed);

/// Band-limited smooth 1D field: sum of `harmonics` random sines of
/// wavelength >= n/harmonics.  Imaginary part zero (physical field).
void burgers_initial_condition(std::span<c32> x, std::size_t n, unsigned seed,
                               std::size_t harmonics = 8);

/// Batched channel version: fields [batch, channels, n].
void burgers_batch(std::span<c32> x, std::size_t batch, std::size_t channels, std::size_t n,
                   unsigned seed);

/// 2D log-normal-ish permeability field (Darcy-flow style): smooth random
/// field thresholded into two phases.  Field [nx, ny], imaginary zero.
void darcy_coefficient_field(std::span<c32> x, std::size_t nx, std::size_t ny, unsigned seed);

/// Batched version: [batch, channels, nx, ny].
void darcy_batch(std::span<c32> x, std::size_t batch, std::size_t channels, std::size_t nx,
                 std::size_t ny, unsigned seed);

/// 2D vorticity-like field for Navier-Stokes scenarios: band-limited
/// superposition of 2D harmonics with random phases.
void vorticity_field(std::span<c32> x, std::size_t nx, std::size_t ny, unsigned seed,
                     std::size_t harmonics = 6);

/// Relative L2 error ||a - b|| / ||b|| over complex spans.
double rel_l2_error(std::span<const c32> a, std::span<const c32> b);

/// Max absolute component difference.
double max_abs_error(std::span<const c32> a, std::span<const c32> b);

}  // namespace turbofno::core
