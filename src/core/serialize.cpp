#include "core/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "core/fno.hpp"

namespace turbofno::core {

const WeightBundle::Entry* WeightBundle::find(const std::string& name) const noexcept {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

namespace {

constexpr std::uint32_t kMagic = 0x4f4e4654u;  // "TFNO" little-endian

template <class T>
void put(std::vector<std::uint8_t>& out, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <class T>
T get(std::span<const std::uint8_t> bytes, std::size_t& off) {
  if (off + sizeof(T) > bytes.size()) throw std::runtime_error("weight bundle: truncated");
  T v;
  std::memcpy(&v, bytes.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

}  // namespace

std::vector<std::uint8_t> save_bundle(const WeightBundle& bundle) {
  std::vector<std::uint8_t> out;
  put(out, kMagic);
  put(out, kBundleVersion);
  put(out, static_cast<std::uint32_t>(bundle.entries.size()));
  for (const auto& e : bundle.entries) {
    put(out, static_cast<std::uint32_t>(e.name.size()));
    out.insert(out.end(), e.name.begin(), e.name.end());
    put(out, static_cast<std::uint64_t>(e.data.size()));
    if (!e.data.empty()) {
      const auto* p = reinterpret_cast<const std::uint8_t*>(e.data.data());
      out.insert(out.end(), p, p + e.data.size() * sizeof(c32));
    }
  }
  return out;
}

WeightBundle load_bundle(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  if (get<std::uint32_t>(bytes, off) != kMagic) {
    throw std::runtime_error("weight bundle: bad magic");
  }
  const auto version = get<std::uint32_t>(bytes, off);
  if (version != kBundleVersion) {
    throw std::runtime_error("weight bundle: unsupported version " + std::to_string(version));
  }
  const auto count = get<std::uint32_t>(bytes, off);
  WeightBundle bundle;
  bundle.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WeightBundle::Entry e;
    const auto name_len = get<std::uint32_t>(bytes, off);
    if (off + name_len > bytes.size()) throw std::runtime_error("weight bundle: truncated");
    e.name.assign(reinterpret_cast<const char*>(bytes.data() + off), name_len);
    off += name_len;
    const auto elems = get<std::uint64_t>(bytes, off);
    if (off + elems * sizeof(c32) > bytes.size()) {
      throw std::runtime_error("weight bundle: truncated");
    }
    e.data.resize(elems);
    // memcpy with a null destination is UB even for zero bytes, and an
    // empty vector's data() may be null — skip the copy for empty entries.
    if (elems != 0) std::memcpy(e.data.data(), bytes.data() + off, elems * sizeof(c32));
    off += elems * sizeof(c32);
    bundle.entries.push_back(std::move(e));
  }
  return bundle;
}

void save_bundle_file(const WeightBundle& bundle, const std::string& path) {
  const auto bytes = save_bundle(bundle);
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("weight bundle: cannot open " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("weight bundle: write failed for " + path);
}

WeightBundle load_bundle_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) throw std::runtime_error("weight bundle: cannot open " + path);
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  f.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!f) throw std::runtime_error("weight bundle: read failed for " + path);
  return load_bundle(bytes);
}

namespace {

WeightBundle::Entry snapshot(const std::string& name, std::span<const c32> w) {
  return {name, std::vector<c32>(w.begin(), w.end())};
}

void restore(std::span<c32> dst, const WeightBundle& bundle, const std::string& name) {
  const auto* e = bundle.find(name);
  if (e == nullptr) throw std::runtime_error("weight bundle: missing tensor " + name);
  if (e->data.size() != dst.size()) {
    throw std::runtime_error("weight bundle: size mismatch for " + name);
  }
  std::copy(e->data.begin(), e->data.end(), dst.begin());
}

}  // namespace

namespace {

// Shared across Fno1d/Fno2d: both expose the same learnable surface
// (lift / spectral.<l> / residual.<l> / project).
template <class Model>
WeightBundle gather_impl(const Model& model) {
  WeightBundle b;
  b.entries.push_back(snapshot("lift", model.lift().weights()));
  const auto& layers = model.spectral_layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    b.entries.push_back(snapshot("spectral." + std::to_string(l), layers[l].weights()));
  }
  const auto& residuals = model.residual_layers();
  for (std::size_t l = 0; l < residuals.size(); ++l) {
    b.entries.push_back(snapshot("residual." + std::to_string(l), residuals[l].weights()));
  }
  b.entries.push_back(snapshot("project", model.projection().weights()));
  return b;
}

template <class Model>
void scatter_impl(Model& model, const WeightBundle& bundle) {
  // Bundles written before checkpoints were complete carried only the
  // spectral tensors; surface that as a migration error, not a generic
  // missing-tensor one.  (The container format itself is unchanged, so
  // kBundleVersion stays at 1.)
  if (bundle.find("lift") == nullptr && bundle.find("spectral.0") != nullptr) {
    throw std::runtime_error(
        "weight bundle: spectral-only checkpoint from an older writer; re-save it with "
        "gather_weights to include the lift/residual/project tensors");
  }
  restore(model.lift().weights(), bundle, "lift");
  auto& layers = model.spectral_layers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    restore(layers[l].weights(), bundle, "spectral." + std::to_string(l));
  }
  auto& residuals = model.residual_layers();
  for (std::size_t l = 0; l < residuals.size(); ++l) {
    restore(residuals[l].weights(), bundle, "residual." + std::to_string(l));
  }
  restore(model.projection().weights(), bundle, "project");
  // Every restore above found its tensor; if the bundle holds MORE entries
  // than the model consumes, it was gathered from a deeper architecture
  // (e.g. more layers) — dropping the extras silently would serve weights
  // matching no valid model, so reject it.
  const std::size_t consumed = 2 + layers.size() + residuals.size();
  if (bundle.entries.size() > consumed) {
    throw std::runtime_error("weight bundle: " +
                             std::to_string(bundle.entries.size() - consumed) +
                             " unconsumed tensor(s) — checkpoint from a deeper architecture");
  }
}

}  // namespace

WeightBundle gather_weights(const Fno1d& model) { return gather_impl(model); }
WeightBundle gather_weights(const Fno2d& model) { return gather_impl(model); }

void scatter_weights(Fno1d& model, const WeightBundle& bundle) { scatter_impl(model, bundle); }
void scatter_weights(Fno2d& model, const WeightBundle& bundle) { scatter_impl(model, bundle); }

}  // namespace turbofno::core
