// Spectral convolution layers — the FNO building block the whole paper
// optimizes (Figure 1(a), steps 1-5).
//
// forward(): v = iFFT( pad( W x trunc( FFT(u) ) ) ), with W applied along
// the hidden dimension.  The backend selects which pipeline executes it;
// all backends are bit-compatible up to float rounding (tests assert this).
#pragma once

#include <memory>
#include <random>
#include <span>

#include "baseline/problem.hpp"
#include "core/config.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"
#include "trace/counters.hpp"

namespace turbofno::core {

class SpectralConv1d {
 public:
  /// hidden -> out_dim mixing over `modes` of `n` frequencies for signals of
  /// a fixed batch size.  Weights are initialized Glorot-style from `seed`.
  SpectralConv1d(std::size_t batch, std::size_t hidden, std::size_t out_dim, std::size_t n,
                 std::size_t modes, Backend backend, WeightScheme scheme = WeightScheme::Shared,
                 unsigned seed = 1u);
  ~SpectralConv1d();
  SpectralConv1d(SpectralConv1d&&) noexcept;
  SpectralConv1d& operator=(SpectralConv1d&&) noexcept;

  /// u [batch, hidden, n] -> v [batch, out_dim, n].
  void forward(std::span<const c32> u, std::span<c32> v);
  /// Micro-batch variant: first `batch` signals; a batch beyond the current
  /// capacity grows the workspaces in place (elastic capacity).
  void forward(std::span<const c32> u, std::span<c32> v, std::size_t batch);
  /// Real-input forward: u/v hold real samples and the spectral schedule
  /// runs on the RFFT half-spectrum (modes/2+1 retained bins,
  /// torch.fft.rfft/irfft semantics).  Requires n >= 4.  When the
  /// real-spectral knob is off (TURBOFNO_REAL_SPECTRAL=0 /
  /// fft::set_real_spectral(false)), the same truncation executes through
  /// the complex C2C plans instead (A/B reference); the two routes agree
  /// within float rounding.
  void forward_real(std::span<const float> u, std::span<float> v, std::size_t batch);
  /// Grows the layer (pipeline workspaces / per-mode buffers) to serve
  /// micro-batches up to `batch` without reallocation.  Never shrinks.
  void reserve(std::size_t batch);

  /// Mutable weight access is weight-invalidating (packed/split planes a
  /// caller derived from the old values must be re-derived); prefer the
  /// const overload for reads.
  [[nodiscard]] std::span<c32> weights() noexcept { return weights_.span(); }
  [[nodiscard]] std::span<const c32> weights() const noexcept { return weights_.span(); }
  [[nodiscard]] const baseline::Spectral1dProblem& problem() const noexcept { return prob_; }
  [[nodiscard]] const trace::PipelineCounters& counters() const;
  [[nodiscard]] WeightScheme scheme() const noexcept { return scheme_; }

 private:
  void forward_per_mode(std::span<const c32> u, std::span<c32> v, std::size_t batch);
  void forward_per_mode_real(std::span<const float> u, std::span<float> v, std::size_t batch);
  /// The pipeline serving the real lane: `pipeline_` when Auto resolves to
  /// the same row for both lanes, else a lazily built real-tuned sibling.
  fused::SpectralPipeline1d& real_pipeline();
  /// Knob-off A/B reference: the identical half-spectrum truncation routed
  /// through the complex C2C plans (pack, keep=modes/2+1 forward, CGEMM,
  /// Hermitian extension, full inverse, take the real part).
  void forward_real_reference(std::span<const float> u, std::span<float> v, std::size_t batch);

  baseline::Spectral1dProblem prob_;
  WeightScheme scheme_;
  Backend backend_ = Backend::FullyFused;
  // Shared: [out, hidden].  PerMode: [modes, out, hidden].
  AlignedBuffer<c32> weights_;
  std::unique_ptr<fused::SpectralPipeline1d> pipeline_;
  std::unique_ptr<fused::SpectralPipeline1d> pipeline_real_;  // lazy: real-lane Auto sibling
  // PerMode path state.
  AlignedBuffer<c32> freq_;
  AlignedBuffer<c32> mixed_;
  // Knob-off reference-lane scratch (lazy, grow-only).
  AlignedBuffer<c32> emu_in_;
  AlignedBuffer<c32> emu_freq_;
  AlignedBuffer<c32> emu_mixed_;
  AlignedBuffer<c32> emu_full_;
  AlignedBuffer<c32> emu_out_;
  trace::PipelineCounters permode_counters_{"per-mode-1d"};
};

class SpectralConv2d {
 public:
  SpectralConv2d(std::size_t batch, std::size_t hidden, std::size_t out_dim, std::size_t nx,
                 std::size_t ny, std::size_t modes_x, std::size_t modes_y, Backend backend,
                 WeightScheme scheme = WeightScheme::Shared, unsigned seed = 1u);
  ~SpectralConv2d();
  SpectralConv2d(SpectralConv2d&&) noexcept;
  SpectralConv2d& operator=(SpectralConv2d&&) noexcept;

  /// u [batch, hidden, nx, ny] -> v [batch, out_dim, nx, ny].
  void forward(std::span<const c32> u, std::span<c32> v);
  /// Micro-batch variant: first `batch` fields; elastic capacity growth as
  /// in SpectralConv1d.
  void forward(std::span<const c32> u, std::span<c32> v, std::size_t batch);
  /// Real-input forward on the RFFT half-spectrum: modes_x/2+1 retained
  /// x-rows (the X axis carries the real transform), modes_y unchanged.
  /// Requires nx >= 4.  See SpectralConv1d::forward_real for the knob-off
  /// A/B reference semantics.
  void forward_real(std::span<const float> u, std::span<float> v, std::size_t batch);
  /// Elastic capacity growth; see SpectralConv1d::reserve.
  void reserve(std::size_t batch);

  /// Mutable weight access is weight-invalidating; see SpectralConv1d.
  [[nodiscard]] std::span<c32> weights() noexcept { return weights_.span(); }
  [[nodiscard]] std::span<const c32> weights() const noexcept { return weights_.span(); }
  [[nodiscard]] const baseline::Spectral2dProblem& problem() const noexcept { return prob_; }
  [[nodiscard]] const trace::PipelineCounters& counters() const;

 private:
  fused::SpectralPipeline2d& real_pipeline();
  void forward_real_reference(std::span<const float> u, std::span<float> v, std::size_t batch);

  baseline::Spectral2dProblem prob_;
  WeightScheme scheme_;
  Backend backend_ = Backend::FullyFused;
  AlignedBuffer<c32> weights_;
  std::unique_ptr<fused::SpectralPipeline2d> pipeline_;
  std::unique_ptr<fused::SpectralPipeline2d> pipeline_real_;  // lazy: real-lane Auto sibling
  // Knob-off reference-lane scratch (lazy, grow-only).
  AlignedBuffer<c32> emu_in_;
  AlignedBuffer<c32> emu_xf_;
  AlignedBuffer<c32> emu_freq_;
  AlignedBuffer<c32> emu_mixed_;
  AlignedBuffer<c32> emu_xi_;
};

/// Glorot-uniform complex init used by every layer (deterministic).
void init_weights(std::span<c32> w, std::size_t fan_in, std::size_t fan_out, unsigned seed);

}  // namespace turbofno::core
