// Public configuration types of the TurboFNO core library.
#pragma once

#include <cstddef>

#include "fused/ladder.hpp"

namespace turbofno::core {

/// Which pipeline implements the spectral convolution.
using Backend = fused::Variant;

/// Weight scheme of the spectral mixing.
enum class WeightScheme {
  /// One complex matrix W[out, hidden] applied at every retained frequency —
  /// the paper's formulation (a single tall-and-skinny CGEMM).
  Shared,
  /// Canonical FNO: an independent W_f[out, hidden] per retained mode
  /// (library extension; runs on the unfused path).
  PerMode,
};

struct Fno1dConfig {
  std::size_t in_channels = 1;    // physical input channels
  std::size_t hidden = 64;        // lifted width (paper's K)
  std::size_t out_channels = 1;   // physical output channels
  std::size_t n = 256;            // spatial resolution (power of two)
  std::size_t modes = 64;         // retained frequencies
  std::size_t layers = 4;         // spectral layers
  Backend backend = Backend::FullyFused;
  WeightScheme scheme = WeightScheme::Shared;
  unsigned seed = 0x7f4a7c15u;    // weight init seed
};

struct Fno2dConfig {
  std::size_t in_channels = 1;
  std::size_t hidden = 32;
  std::size_t out_channels = 1;
  std::size_t nx = 64;
  std::size_t ny = 64;
  std::size_t modes_x = 16;
  std::size_t modes_y = 16;
  std::size_t layers = 4;
  Backend backend = Backend::FullyFused;
  WeightScheme scheme = WeightScheme::Shared;
  unsigned seed = 0x2545f491u;
};

}  // namespace turbofno::core
