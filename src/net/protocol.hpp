// TurboFNO wire protocol v1 — versioned, checksummed, length-prefixed
// binary frames for serving FNO inference over a socket.
//
// Every frame is a fixed 16-byte header followed by `body_len` body bytes:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     4  magic      "TFNO" (bytes 'T','F','N','O' on the wire)
//        4     1  version    kWireVersion (currently 1)
//        5     1  type       FrameType (1 = request, 2 = response)
//        6     2  reserved   must be 0
//        8     4  body_len   body bytes that follow the header
//       12     4  body_crc   CRC-32 (IEEE 802.3) over the body bytes
//
// Request body (payload directly after a shape-dependent prefix):
//
//   offset        size  field
//   ------        ----  -------------------------------------------------
//        0           8  correlation  client-chosen id, echoed verbatim
//        8           4  model        server-side ModelId
//       12           1  dtype        Dtype (0 = c32 interleaved, 1 = f32)
//       13           1  qos          Qos (0 = high, 1 = normal)
//       14           2  ndim         dims that follow (1..kMaxDims)
//       16           4  deadline_us  relative deadline, 0 = none
//       20      4*ndim  dims[]       logical shape, e.g. [channels, n]
//   20+4*ndim      ...  payload      dtype elements, product(dims) of them
//
// Response body:
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     8  correlation  echoed from the request (0 if undecodable)
//        8     1  status       WireStatus
//        9     1  dtype        payload element type (echoes the request)
//       10     2  reserved     must be 0
//       12     4  queue_us     latency breakdown: queue wait
//       16     4  exec_us                          model execution
//       20     4  total_us                         submission -> response
//       24     4  micro_batch  size of the micro-batch the request rode in
//       28   ...  payload      present only when status == Ok
//
// All multi-byte fields are little-endian ON THE WIRE, loaded and stored
// bytewise (shift-and-or, no type punning), so encode/decode round-trips
// identically on little- and big-endian hosts.  Both body prefixes keep
// the payload 4-byte aligned (20 + 4*ndim and 28 are multiples of 4), so a
// frame decoded into 4-byte-aligned storage can hand out f32/c32 payload
// views without copying.
//
// This header is self-contained (header-only codec): the socket server,
// the client, tests, and benches all speak the same inline functions.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "runtime/env.hpp"

namespace turbofno::net {

inline constexpr std::array<std::uint8_t, 4> kMagic = {'T', 'F', 'N', 'O'};
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::size_t kMaxDims = 4;
inline constexpr std::size_t kResponsePrefixBytes = 28;

/// Frame kinds carried in the header's `type` field.  Control frames carry
/// the shard-topology handshake/liveness traffic (Hello, Heartbeat); they
/// are additive within wire version 1 — a request/response-only peer
/// answers them with BadFrame, which the sender treats as "no control
/// support", not as stream corruption.
enum class FrameType : std::uint8_t { Request = 1, Response = 2, Control = 3 };

/// Payload element types.  C32 is interleaved re/im single-precision pairs
/// (the Session::run lane); F32 is real samples (the Session::run_real
/// RFFT half-spectrum lane).
enum class Dtype : std::uint8_t { C32 = 0, F32 = 1 };

/// Wire QoS classes, mapped onto serve::Priority.
enum class Qos : std::uint8_t { High = 0, Normal = 1 };

/// Response status codes — the documented contract of the wire protocol.
/// The first five mirror serve::Status; the rest are protocol-level errors
/// a front-end can raise before a request ever reaches the inference
/// server.  Stream-integrity errors (BadMagic, BadVersion, BadChecksum,
/// TooLarge) additionally close the connection after the error response —
/// once framing is untrustworthy, resynchronization is impossible.
enum class WireStatus : std::uint8_t {
  Ok = 0,
  Rejected = 1,       // per-model backlog full
  ShutDown = 2,       // server stopped before execution
  InvalidInput = 3,   // payload does not match the model's shape
  Shed = 4,           // admission control: deadline infeasible at submit
  BadFrame = 5,       // body prefix undecodable (bad ndim/dtype/qos/truncated)
  BadMagic = 6,       // header magic mismatch (closes the connection)
  BadVersion = 7,     // unsupported protocol version (closes the connection)
  BadChecksum = 8,    // body CRC mismatch (closes the connection)
  TooLarge = 9,       // declared body_len over the server frame limit (closes)
  ShapeMismatch = 10,  // dims product disagrees with the payload size
  UnknownModel = 11,  // model id not registered
};

[[nodiscard]] constexpr std::string_view wire_status_name(WireStatus s) noexcept {
  switch (s) {
    case WireStatus::Ok:
      return "ok";
    case WireStatus::Rejected:
      return "rejected";
    case WireStatus::ShutDown:
      return "shut-down";
    case WireStatus::InvalidInput:
      return "invalid-input";
    case WireStatus::Shed:
      return "shed";
    case WireStatus::BadFrame:
      return "bad-frame";
    case WireStatus::BadMagic:
      return "bad-magic";
    case WireStatus::BadVersion:
      return "bad-version";
    case WireStatus::BadChecksum:
      return "bad-checksum";
    case WireStatus::TooLarge:
      return "too-large";
    case WireStatus::ShapeMismatch:
      return "shape-mismatch";
    case WireStatus::UnknownModel:
      return "unknown-model";
  }
  return "?";
}

/// Decode outcomes.  NeedMoreData is progress, not failure; everything
/// else maps 1:1 onto the WireStatus error a server should answer with.
enum class DecodeError : std::uint8_t {
  None = 0,
  NeedMoreData,
  BadMagic,
  BadVersion,
  BadType,
  TooLarge,
  BadChecksum,
  BadBody,       // prefix undecodable: ndim/dtype/qos out of range, truncated
  ShapeMismatch,  // dims product disagrees with the payload bytes present
};

/// The WireStatus a server answers with for a given decode failure.
[[nodiscard]] constexpr WireStatus decode_error_status(DecodeError e) noexcept {
  switch (e) {
    case DecodeError::BadMagic:
      return WireStatus::BadMagic;
    case DecodeError::BadVersion:
      return WireStatus::BadVersion;
    case DecodeError::TooLarge:
      return WireStatus::TooLarge;
    case DecodeError::BadChecksum:
      return WireStatus::BadChecksum;
    case DecodeError::ShapeMismatch:
      return WireStatus::ShapeMismatch;
    default:
      return WireStatus::BadFrame;
  }
}

/// True when the stream can NOT be trusted past this error: the server
/// sends the typed error response and then closes the connection.
[[nodiscard]] constexpr bool decode_error_closes(DecodeError e) noexcept {
  return e == DecodeError::BadMagic || e == DecodeError::BadVersion ||
         e == DecodeError::BadType || e == DecodeError::TooLarge ||
         e == DecodeError::BadChecksum;
}

// ------------------------------------------------------- byte-order helpers
// Bytewise little-endian stores/loads: endianness-independent by
// construction (no reinterpret_cast, no host-order assumptions).

inline void store_u16le(std::byte* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::byte>(v & 0xff);
  p[1] = static_cast<std::byte>((v >> 8) & 0xff);
}

inline void store_u32le(std::byte* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::byte>(v & 0xff);
  p[1] = static_cast<std::byte>((v >> 8) & 0xff);
  p[2] = static_cast<std::byte>((v >> 16) & 0xff);
  p[3] = static_cast<std::byte>((v >> 24) & 0xff);
}

inline void store_u64le(std::byte* p, std::uint64_t v) noexcept {
  store_u32le(p, static_cast<std::uint32_t>(v & 0xffffffffu));
  store_u32le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] inline std::uint16_t load_u16le(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>(std::to_integer<std::uint16_t>(p[0]) |
                                    (std::to_integer<std::uint16_t>(p[1]) << 8));
}

[[nodiscard]] inline std::uint32_t load_u32le(const std::byte* p) noexcept {
  return std::to_integer<std::uint32_t>(p[0]) | (std::to_integer<std::uint32_t>(p[1]) << 8) |
         (std::to_integer<std::uint32_t>(p[2]) << 16) |
         (std::to_integer<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] inline std::uint64_t load_u64le(const std::byte* p) noexcept {
  return static_cast<std::uint64_t>(load_u32le(p)) |
         (static_cast<std::uint64_t>(load_u32le(p + 4)) << 32);
}

// ------------------------------------------------------------------- CRC-32
// IEEE 802.3 (reflected 0xEDB88320) — the ubiquitous zlib/Ethernet CRC, so
// non-C++ clients can use any stock implementation.

namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> data,
                                         std::uint32_t seed = 0) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : data) {
    c = detail::kCrc32Table[(c ^ std::to_integer<std::uint32_t>(b)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ------------------------------------------------------------ frame header

struct FrameHeader {
  FrameType type = FrameType::Request;
  std::uint32_t body_len = 0;
  std::uint32_t body_crc = 0;
};

/// Writes the 16-byte frame header.  `out.size() >= kHeaderBytes`.
inline void encode_header(std::span<std::byte> out, const FrameHeader& h) noexcept {
  for (std::size_t i = 0; i < kMagic.size(); ++i) out[i] = static_cast<std::byte>(kMagic[i]);
  out[4] = static_cast<std::byte>(kWireVersion);
  out[5] = static_cast<std::byte>(h.type);
  store_u16le(out.data() + 6, 0);
  store_u32le(out.data() + 8, h.body_len);
  store_u32le(out.data() + 12, h.body_crc);
}

/// Decodes a frame header.  NeedMoreData when fewer than kHeaderBytes are
/// buffered; TooLarge when the declared body exceeds `max_frame_bytes`.
[[nodiscard]] inline DecodeError decode_header(std::span<const std::byte> in, FrameHeader& h,
                                               std::size_t max_frame_bytes) noexcept {
  if (in.size() < kHeaderBytes) return DecodeError::NeedMoreData;
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (std::to_integer<std::uint8_t>(in[i]) != kMagic[i]) return DecodeError::BadMagic;
  }
  if (std::to_integer<std::uint8_t>(in[4]) != kWireVersion) return DecodeError::BadVersion;
  const auto type = std::to_integer<std::uint8_t>(in[5]);
  if (type != static_cast<std::uint8_t>(FrameType::Request) &&
      type != static_cast<std::uint8_t>(FrameType::Response) &&
      type != static_cast<std::uint8_t>(FrameType::Control)) {
    return DecodeError::BadType;
  }
  h.type = static_cast<FrameType>(type);
  h.body_len = load_u32le(in.data() + 8);
  h.body_crc = load_u32le(in.data() + 12);
  if (h.body_len > max_frame_bytes) return DecodeError::TooLarge;
  return DecodeError::None;
}

/// Verifies the body checksum once all body_len bytes are buffered.
[[nodiscard]] inline DecodeError verify_body(const FrameHeader& h,
                                             std::span<const std::byte> body) noexcept {
  if (body.size() < h.body_len) return DecodeError::NeedMoreData;
  if (crc32(body.first(h.body_len)) != h.body_crc) return DecodeError::BadChecksum;
  return DecodeError::None;
}

// ---------------------------------------------------------------- requests

struct RequestHead {
  std::uint64_t correlation = 0;
  std::uint32_t model = 0;
  Dtype dtype = Dtype::C32;
  Qos qos = Qos::Normal;
  std::uint32_t deadline_us = 0;  // relative, 0 = none
  std::uint16_t ndim = 0;
  std::array<std::uint32_t, kMaxDims> dims{};

  [[nodiscard]] std::uint64_t elems() const noexcept {
    std::uint64_t n = 1;
    for (std::uint16_t i = 0; i < ndim; ++i) n *= dims[i];
    return n;
  }
};

[[nodiscard]] constexpr std::size_t dtype_bytes(Dtype d) noexcept {
  return d == Dtype::C32 ? 8 : 4;
}

[[nodiscard]] constexpr std::size_t request_prefix_bytes(std::size_t ndim) noexcept {
  return 20 + 4 * ndim;
}

/// Total frame bytes (header + body) of a request with this shape/payload.
[[nodiscard]] constexpr std::size_t encoded_request_bytes(std::size_t ndim,
                                                          std::size_t payload_bytes) noexcept {
  return kHeaderBytes + request_prefix_bytes(ndim) + payload_bytes;
}

/// Encodes a complete request frame (header, prefix, payload, checksum)
/// into `out`, which must hold encoded_request_bytes(h.ndim,
/// payload.size()).  Returns the encoded size.
inline std::size_t encode_request(std::span<std::byte> out, const RequestHead& h,
                                  std::span<const std::byte> payload) noexcept {
  const std::size_t prefix = request_prefix_bytes(h.ndim);
  std::byte* b = out.data() + kHeaderBytes;
  store_u64le(b, h.correlation);
  store_u32le(b + 8, h.model);
  b[12] = static_cast<std::byte>(h.dtype);
  b[13] = static_cast<std::byte>(h.qos);
  store_u16le(b + 14, h.ndim);
  store_u32le(b + 16, h.deadline_us);
  for (std::uint16_t i = 0; i < h.ndim; ++i) store_u32le(b + 20 + 4 * i, h.dims[i]);
  if (!payload.empty()) {
    std::copy(payload.begin(), payload.end(), b + prefix);
  }
  const std::uint32_t body_len = static_cast<std::uint32_t>(prefix + payload.size());
  FrameHeader fh;
  fh.type = FrameType::Request;
  fh.body_len = body_len;
  fh.body_crc = crc32({out.data() + kHeaderBytes, body_len});
  encode_header(out, fh);
  return kHeaderBytes + body_len;
}

/// Decodes a request body (after verify_body).  On success `payload` views
/// the payload bytes inside `body` — alive as long as `body`'s storage.
[[nodiscard]] inline DecodeError decode_request(std::span<const std::byte> body, RequestHead& h,
                                                std::span<const std::byte>& payload) noexcept {
  if (body.size() < request_prefix_bytes(1)) return DecodeError::BadBody;
  const std::byte* b = body.data();
  h.correlation = load_u64le(b);
  h.model = load_u32le(b + 8);
  const auto dtype = std::to_integer<std::uint8_t>(b[12]);
  const auto qos = std::to_integer<std::uint8_t>(b[13]);
  if (dtype > static_cast<std::uint8_t>(Dtype::F32)) return DecodeError::BadBody;
  if (qos > static_cast<std::uint8_t>(Qos::Normal)) return DecodeError::BadBody;
  h.dtype = static_cast<Dtype>(dtype);
  h.qos = static_cast<Qos>(qos);
  h.ndim = load_u16le(b + 14);
  h.deadline_us = load_u32le(b + 16);
  if (h.ndim == 0 || h.ndim > kMaxDims) return DecodeError::BadBody;
  const std::size_t prefix = request_prefix_bytes(h.ndim);
  if (body.size() < prefix) return DecodeError::BadBody;
  for (std::uint16_t i = 0; i < h.ndim; ++i) h.dims[i] = load_u32le(b + 20 + 4 * i);
  // The declared shape must account for the payload bytes exactly; the
  // elems() product is checked in 64-bit so dims cannot overflow-collide.
  const std::uint64_t want = h.elems() * dtype_bytes(h.dtype);
  if (want != body.size() - prefix) return DecodeError::ShapeMismatch;
  payload = body.subspan(prefix);
  return DecodeError::None;
}

// --------------------------------------------------------------- responses

struct ResponseHead {
  std::uint64_t correlation = 0;
  WireStatus status = WireStatus::Ok;
  Dtype dtype = Dtype::C32;
  std::uint32_t queue_us = 0;
  std::uint32_t exec_us = 0;
  std::uint32_t total_us = 0;
  std::uint32_t micro_batch = 0;
};

/// Total frame bytes (header + body) of a response with this payload.
[[nodiscard]] constexpr std::size_t encoded_response_bytes(std::size_t payload_bytes) noexcept {
  return kHeaderBytes + kResponsePrefixBytes + payload_bytes;
}

/// Writes a response frame's prefix fields and header for a payload of
/// `payload_bytes` that will be filled in (possibly later, by the session
/// writing directly into the frame) at offset kHeaderBytes +
/// kResponsePrefixBytes.  The header's checksum is NOT yet valid — call
/// seal_response() after the payload bytes are in place.
inline void encode_response_prefix(std::span<std::byte> out, const ResponseHead& h,
                                   std::size_t payload_bytes) noexcept {
  std::byte* b = out.data() + kHeaderBytes;
  store_u64le(b, h.correlation);
  b[8] = static_cast<std::byte>(h.status);
  b[9] = static_cast<std::byte>(h.dtype);
  store_u16le(b + 10, 0);
  store_u32le(b + 12, h.queue_us);
  store_u32le(b + 16, h.exec_us);
  store_u32le(b + 20, h.total_us);
  store_u32le(b + 24, h.micro_batch);
  FrameHeader fh;
  fh.type = FrameType::Response;
  fh.body_len = static_cast<std::uint32_t>(kResponsePrefixBytes + payload_bytes);
  encode_header(out, fh);
}

/// Computes and stores the body checksum of a fully-assembled frame (the
/// header's body_len must already be final).  Returns the frame's total
/// size, kHeaderBytes + body_len.
inline std::size_t seal_response(std::span<std::byte> frame) noexcept {
  const std::uint32_t body_len = load_u32le(frame.data() + 8);
  store_u32le(frame.data() + 12, crc32({frame.data() + kHeaderBytes, body_len}));
  return kHeaderBytes + body_len;
}

/// Encodes a complete payload-less response frame (error replies).
inline std::size_t encode_response(std::span<std::byte> out, const ResponseHead& h) noexcept {
  encode_response_prefix(out, h, 0);
  return seal_response(out);
}

/// Decodes a response body (after verify_body).  `payload` views the
/// payload bytes inside `body`.
[[nodiscard]] inline DecodeError decode_response(std::span<const std::byte> body,
                                                 ResponseHead& h,
                                                 std::span<const std::byte>& payload) noexcept {
  if (body.size() < kResponsePrefixBytes) return DecodeError::BadBody;
  const std::byte* b = body.data();
  h.correlation = load_u64le(b);
  const auto status = std::to_integer<std::uint8_t>(b[8]);
  const auto dtype = std::to_integer<std::uint8_t>(b[9]);
  if (status > static_cast<std::uint8_t>(WireStatus::UnknownModel)) return DecodeError::BadBody;
  if (dtype > static_cast<std::uint8_t>(Dtype::F32)) return DecodeError::BadBody;
  h.status = static_cast<WireStatus>(status);
  h.dtype = static_cast<Dtype>(dtype);
  h.queue_us = load_u32le(b + 12);
  h.exec_us = load_u32le(b + 16);
  h.total_us = load_u32le(b + 20);
  h.micro_batch = load_u32le(b + 24);
  payload = body.subspan(kResponsePrefixBytes);
  return DecodeError::None;
}

// ---------------------------------------------------------- control frames
// Handshake/liveness traffic of the shard topology (router <-> worker, and
// the supervisor's health probes).  A control frame is a normal CRC-sealed
// frame whose 12-byte body is {kind u8, 3 reserved bytes, token u64}.

enum class ControlKind : std::uint8_t {
  Hello = 1,         // sent after connect; token = expected peer model count (0 = any)
  HelloAck = 2,      // reply; token = the server's registered model count
  Heartbeat = 3,     // liveness probe; token is an opaque nonce
  HeartbeatAck = 4,  // reply; echoes the probe's token
};

struct ControlHead {
  ControlKind kind = ControlKind::Heartbeat;
  std::uint64_t token = 0;
};

inline constexpr std::size_t kControlBodyBytes = 12;

/// Total frame bytes (header + body) of a control frame.
[[nodiscard]] constexpr std::size_t encoded_control_bytes() noexcept {
  return kHeaderBytes + kControlBodyBytes;
}

/// Encodes a complete control frame into `out` (>= encoded_control_bytes()).
/// Returns the encoded size.
inline std::size_t encode_control(std::span<std::byte> out, const ControlHead& h) noexcept {
  std::byte* b = out.data() + kHeaderBytes;
  b[0] = static_cast<std::byte>(h.kind);
  b[1] = b[2] = b[3] = std::byte{0};
  store_u64le(b + 4, h.token);
  FrameHeader fh;
  fh.type = FrameType::Control;
  fh.body_len = kControlBodyBytes;
  fh.body_crc = crc32({out.data() + kHeaderBytes, kControlBodyBytes});
  encode_header(out, fh);
  return kHeaderBytes + kControlBodyBytes;
}

/// Decodes a control body (after verify_body).
[[nodiscard]] inline DecodeError decode_control(std::span<const std::byte> body,
                                                ControlHead& h) noexcept {
  if (body.size() != kControlBodyBytes) return DecodeError::BadBody;
  const auto kind = std::to_integer<std::uint8_t>(body[0]);
  if (kind < static_cast<std::uint8_t>(ControlKind::Hello) ||
      kind > static_cast<std::uint8_t>(ControlKind::HeartbeatAck)) {
    return DecodeError::BadBody;
  }
  h.kind = static_cast<ControlKind>(kind);
  h.token = load_u64le(body.data() + 4);
  return DecodeError::None;
}

// --------------------------------------------------------------- env knobs

/// TURBOFNO_NET_PORT: default listening port of net::SocketServer when
/// Options::port is left at its sentinel.  Clamped to the valid TCP range;
/// garbage/overflow falls back to 7470 (see runtime::env_long).
[[nodiscard]] inline std::uint16_t default_port() noexcept {
  return static_cast<std::uint16_t>(
      runtime::env_long_clamped("TURBOFNO_NET_PORT", 7470, 0, 65535));
}

/// TURBOFNO_NET_MAX_FRAME: largest accepted frame body in bytes (default
/// 64 MiB).  The floor keeps every valid single-field request of modest
/// size admissible; the ceiling bounds per-connection memory a malicious
/// declared length can demand.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;
inline constexpr std::size_t kMinMaxFrameBytes = 4096;
inline constexpr std::size_t kMaxMaxFrameBytes = 1u << 30;

[[nodiscard]] inline std::size_t default_max_frame_bytes() noexcept {
  return static_cast<std::size_t>(runtime::env_long_clamped(
      "TURBOFNO_NET_MAX_FRAME", static_cast<long>(kDefaultMaxFrameBytes),
      static_cast<long>(kMinMaxFrameBytes), static_cast<long>(kMaxMaxFrameBytes)));
}

}  // namespace turbofno::net
