#include "net/socket_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>

namespace turbofno::net {

namespace {

// epoll_event.data.u64 sentinels for the two non-connection fds; every
// other event carries a Connection* in data.ptr.
constexpr std::uint64_t kEventFdTag = 0;
constexpr std::uint64_t kListenFdTag = 1;

[[nodiscard]] WireStatus wire_status(serve::Status s) noexcept {
  switch (s) {
    case serve::Status::Ok:
      return WireStatus::Ok;
    case serve::Status::Rejected:
      return WireStatus::Rejected;
    case serve::Status::ShutDown:
      return WireStatus::ShutDown;
    case serve::Status::InvalidInput:
      return WireStatus::InvalidInput;
    case serve::Status::Shed:
      return WireStatus::Shed;
  }
  return WireStatus::InvalidInput;
}

[[nodiscard]] std::uint32_t saturate_us(double seconds) noexcept {
  const double us = seconds * 1e6;
  if (us <= 0.0) return 0;
  if (us >= 4294967295.0) return 0xFFFFFFFFu;
  return static_cast<std::uint32_t>(us);
}

[[nodiscard]] std::system_error sys_error(const char* what) {
  return {errno, std::generic_category(), what};
}

}  // namespace

/// One queued outbound frame (logical length `len`, already written `off`).
struct OutBuf {
  std::vector<std::byte> data;
  std::size_t len = 0;
  std::size_t off = 0;
};

/// Everything a single in-flight request owns: the received request body
/// (the submitted input span views its payload bytes) and the response
/// frame the session writes its output payload into.  Held alive by the
/// completion callback, so a mid-request client disconnect never leaves
/// the inference server writing into freed memory.
struct SocketServer::Inflight {
  std::vector<std::byte> request_body;
  std::vector<std::byte> frame;          // header + prefix + payload area
  std::size_t payload_bytes = 0;
  RequestHead head;
};

struct SocketServer::Connection {
  int fd = -1;
  std::size_t io_index = 0;

  // ---- io-thread-owned read state (frame reassembly state machine)
  std::array<std::byte, kHeaderBytes> hdr{};
  std::size_t hdr_got = 0;
  bool have_header = false;
  FrameHeader fh;
  std::vector<std::byte> body;
  std::size_t body_got = 0;

  // ---- io-thread-owned write state
  std::deque<OutBuf> out_q;
  std::size_t out_bytes = 0;
  bool epollout_armed = false;
  bool reading_paused = false;  // backpressure parked EPOLLIN
  bool want_close = false;      // close after the outbound queue flushes

  // ---- cross-thread state
  std::atomic<bool> dead{false};
  runtime::Mutex ready_mu;  // serve-callback handoff
  std::vector<OutBuf> ready TFNO_GUARDED_BY(ready_mu);  // frames awaiting the io thread
  bool ready_close TFNO_GUARDED_BY(ready_mu) = false;  // close after sending them
};

struct SocketServer::IoThread {
  int ep = -1;
  int event_fd = -1;
  std::size_t index = 0;
  std::thread thread;

  runtime::Mutex mu;  // producers: acceptor, serve callbacks
  std::vector<std::shared_ptr<Connection>> pending
      TFNO_GUARDED_BY(mu);  // accepted, not yet registered
  std::vector<std::shared_ptr<Connection>> woken
      TFNO_GUARDED_BY(mu);  // have fresh `ready` frames

  // io-thread-private registry of live connections (keeps them alive).
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
  // Connections closed mid-batch, kept alive until the batch ends so a
  // stale epoll data.ptr later in the same batch stays dereferenceable
  // (its dead flag and the registry identity check reject it safely).
  std::vector<std::shared_ptr<Connection>> dying;
};

SocketServer::SocketServer(Options opts)
    : SocketServer(std::move(opts), nullptr) {}

SocketServer::SocketServer(Options opts, std::shared_ptr<serve::InferenceServer> server)
    : opts_(std::move(opts)),
      server_(server ? std::move(server)
                     : std::make_shared<serve::InferenceServer>(opts_.serve)) {
  max_frame_ = opts_.max_frame_bytes != 0 ? opts_.max_frame_bytes : default_max_frame_bytes();
  opts_.io_threads = std::max<std::size_t>(opts_.io_threads, 1);
  opts_.max_buffered_bytes = std::max<std::size_t>(opts_.max_buffered_bytes, kHeaderBytes);
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  const runtime::MutexLock lock(lifecycle_mu_);
  if (started_) throw std::logic_error("SocketServer::start called twice");

  const int lfd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (lfd < 0) throw sys_error("socket");
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  const int port = opts_.port >= 0 ? opts_.port : default_port();
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const auto err = sys_error("bind");
    ::close(lfd);
    throw err;
  }
  if (::listen(lfd, opts_.backlog) != 0) {
    const auto err = sys_error("listen");
    ::close(lfd);
    throw err;
  }
  socklen_t alen = sizeof addr;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen);
  bound_port_.store(ntohs(addr.sin_port), std::memory_order_release);

  io_.clear();
  for (std::size_t i = 0; i < opts_.io_threads; ++i) {
    auto t = std::make_unique<IoThread>();
    t->index = i;
    t->ep = ::epoll_create1(EPOLL_CLOEXEC);
    t->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (t->ep < 0 || t->event_fd < 0) throw sys_error("epoll/eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kEventFdTag;
    ::epoll_ctl(t->ep, EPOLL_CTL_ADD, t->event_fd, &ev);
    io_.push_back(std::move(t));
  }
  // The listen socket lives on io thread 0; accepted connections are dealt
  // round-robin across all io threads.
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenFdTag;
    ::epoll_ctl(io_[0]->ep, EPOLL_CTL_ADD, lfd, &ev);
  }
  reads_off_ = false;
  flush_exit_ = false;
  listen_fd_.store(lfd, std::memory_order_release);
  for (auto& t : io_) {
    IoThread* tp = t.get();
    t->thread = std::thread([this, tp] { io_loop(*tp); });
  }
  started_ = true;
  running_.store(true, std::memory_order_release);
}

void SocketServer::stop() {
  const runtime::MutexLock lock(lifecycle_mu_);
  if (!started_ || !running_.load(std::memory_order_acquire)) return;
  running_.store(false, std::memory_order_release);

  // 1. Stop intake: no new connections, no new frames.  Existing
  //    connections stay registered so queued responses still flush.  The
  //    listen fd is retired atomically and only shut down here; the close
  //    waits until the io threads have joined, so a concurrent accept4 on
  //    io thread 0 can never run on a closed (or recycled) descriptor.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::epoll_ctl(io_[0]->ep, EPOLL_CTL_DEL, lfd, nullptr);
    ::shutdown(lfd, SHUT_RDWR);
  }
  reads_off_ = true;
  for (auto& t : io_) wake(*t);

  // 2. Complete every request already accepted; their response frames are
  //    enqueued by the completion callbacks and written by the (still
  //    running) io threads.
  server_->drain();

  // 3. Tell the io threads to exit once their write queues are empty (or
  //    the flush deadline passes — a client that never reads cannot hold
  //    shutdown hostage), then join and tear down.
  flush_exit_ = true;
  for (auto& t : io_) wake(*t);
  for (auto& t : io_) {
    if (t->thread.joinable()) t->thread.join();
  }
  for (auto& t : io_) {
    for (auto& [fd, c] : t->conns) {
      c->dead = true;
      ::close(c->fd);
      const runtime::MutexLock stats_lock(stats_mu_);
      ++stats_.connections_closed;
    }
    t->conns.clear();
    if (t->ep >= 0) ::close(t->ep);
    if (t->event_fd >= 0) ::close(t->event_fd);
  }
  io_.clear();
  if (lfd >= 0) ::close(lfd);  // deferred: the io threads are gone now
}

SocketServer::Stats SocketServer::stats() const {
  const runtime::MutexLock lock(stats_mu_);
  return stats_;
}

void SocketServer::wake(IoThread& t) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(t.event_fd, &one, sizeof one);
}

void SocketServer::update_read_interest(IoThread& t, const std::shared_ptr<Connection>& c) {
  if (c->dead) return;
  epoll_event ev{};
  ev.data.ptr = c.get();
  const bool read_on = !c->reading_paused && !c->want_close && !reads_off_;
  ev.events = (read_on ? EPOLLIN : 0u) | (c->epollout_armed ? EPOLLOUT : 0u) | EPOLLRDHUP;
  ::epoll_ctl(t.ep, EPOLL_CTL_MOD, c->fd, &ev);
}

void SocketServer::accept_ready(IoThread& /*t*/) {
  while (true) {
    // Snapshot the fd: stop() retires listen_fd_ concurrently (it defers
    // the close until this thread has joined, so the snapshot stays valid;
    // shutdown() makes the accept below fail fast instead of blocking).
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;
    const int fd = ::accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or the listen fd is gone (shutdown race)
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (opts_.socket_sndbuf_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.socket_sndbuf_bytes,
                   sizeof opts_.socket_sndbuf_bytes);
    }
    auto c = std::make_shared<Connection>();
    c->fd = fd;
    c->io_index = next_io_.fetch_add(1) % io_.size();
    {
      const runtime::MutexLock lock(stats_mu_);
      ++stats_.connections_accepted;
    }
    IoThread& owner = *io_[c->io_index];
    {
      const runtime::MutexLock lock(owner.mu);
      owner.pending.push_back(std::move(c));
    }
    wake(owner);
  }
}

void SocketServer::close_conn(IoThread& t, const std::shared_ptr<Connection>& c) {
  if (c->dead.exchange(true)) return;
  ::epoll_ctl(t.ep, EPOLL_CTL_DEL, c->fd, nullptr);
  // Best-effort bounded drain of unread input before closing: leftover
  // received bytes (e.g. the body of a frame whose header already failed)
  // would otherwise turn the close into a TCP RST, which can destroy the
  // typed error response still in flight.  Bounded so an abusive peer
  // cannot stall the io thread.
  {
    std::array<std::byte, 4096> sink;
    for (int i = 0; i < 64; ++i) {
      if (::read(c->fd, sink.data(), sink.size()) <= 0) break;
    }
  }
  ::close(c->fd);
  t.conns.erase(c->fd);
  t.dying.push_back(c);
  const runtime::MutexLock lock(stats_mu_);
  ++stats_.connections_closed;
}

void SocketServer::enqueue_out(IoThread& t, const std::shared_ptr<Connection>& c,
                               std::vector<std::byte>&& frame, std::size_t len,
                               bool close_after) {
  OutBuf b;
  b.data = std::move(frame);
  b.len = len;
  c->out_q.push_back(std::move(b));
  c->out_bytes += len;
  if (close_after) c->want_close = true;
  handle_write(t, c);  // opportunistic immediate write
  if (c->dead) return;
  // Backpressure: a slow reader's queue grows past the cap — park its
  // reads until the queue drains below half (hysteresis, handled in
  // handle_write), bounding per-connection server memory.
  if (!c->reading_paused && c->out_bytes > opts_.max_buffered_bytes) {
    c->reading_paused = true;
    {
      const runtime::MutexLock lock(stats_mu_);
      ++stats_.backpressure_pauses;
    }
  }
  update_read_interest(t, c);
}

void SocketServer::handle_write(IoThread& t, const std::shared_ptr<Connection>& c) {
  while (!c->out_q.empty()) {
    OutBuf& b = c->out_q.front();
    const auto n = ::send(c->fd, b.data.data() + b.off, b.len - b.off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(t, c);
      return;
    }
    b.off += static_cast<std::size_t>(n);
    c->out_bytes -= static_cast<std::size_t>(n);
    if (b.off < b.len) break;  // kernel buffer full mid-frame
    c->out_q.pop_front();
    const runtime::MutexLock lock(stats_mu_);
    ++stats_.responses_sent;
  }
  if (c->out_q.empty() && c->want_close) {
    close_conn(t, c);
    return;
  }
  const bool want_out = !c->out_q.empty();
  if (c->reading_paused && c->out_bytes < opts_.max_buffered_bytes / 2) {
    c->reading_paused = false;
  }
  if (want_out != c->epollout_armed) c->epollout_armed = want_out;
  update_read_interest(t, c);
}

void SocketServer::queue_error_response(IoThread& t, const std::shared_ptr<Connection>& c,
                                        std::uint64_t correlation, std::uint8_t dtype,
                                        WireStatus status, bool close_after) {
  ResponseHead rh;
  rh.correlation = correlation;
  rh.status = status;
  rh.dtype = static_cast<Dtype>(dtype);
  std::vector<std::byte> frame(encoded_response_bytes(0));
  const std::size_t len = encode_response(frame, rh);
  {
    const runtime::MutexLock lock(stats_mu_);
    ++stats_.protocol_errors;
  }
  enqueue_out(t, c, std::move(frame), len, close_after);
}

void SocketServer::handle_read(IoThread& t, const std::shared_ptr<Connection>& c) {
  while (!c->dead && !c->want_close && !c->reading_paused && !reads_off_) {
    if (!c->have_header) {
      const auto n =
          ::read(c->fd, c->hdr.data() + c->hdr_got, kHeaderBytes - c->hdr_got);
      if (n == 0) {
        close_conn(t, c);  // peer closed (possibly mid-request: clean teardown)
        return;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        close_conn(t, c);
        return;
      }
      c->hdr_got += static_cast<std::size_t>(n);
      if (c->hdr_got < kHeaderBytes) continue;
      const DecodeError e = decode_header({c->hdr.data(), kHeaderBytes}, c->fh, max_frame_);
      if (e != DecodeError::None) {
        // Framing is untrustworthy from here on: typed error, then close.
        queue_error_response(t, c, 0, 0, decode_error_status(e), /*close_after=*/true);
        return;
      }
      c->have_header = true;
      c->body.resize(c->fh.body_len);
      c->body_got = 0;
      if (c->fh.body_len == 0) process_frame(t, c);
      continue;
    }
    const auto n = ::read(c->fd, c->body.data() + c->body_got, c->fh.body_len - c->body_got);
    if (n == 0) {
      close_conn(t, c);  // disconnected mid-body; in-flight work is unaffected
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(t, c);
      return;
    }
    c->body_got += static_cast<std::size_t>(n);
    if (c->body_got == c->fh.body_len) process_frame(t, c);
  }
}

void SocketServer::process_frame(IoThread& t, const std::shared_ptr<Connection>& c) {
  // Reset the reassembly state first: process may queue a response and the
  // next frame starts with a fresh header either way.
  std::vector<std::byte> body = std::move(c->body);
  const FrameHeader fh = c->fh;
  c->have_header = false;
  c->hdr_got = 0;
  c->body = {};
  c->body_got = 0;

  if (const DecodeError e = verify_body(fh, body); e != DecodeError::None) {
    queue_error_response(t, c, 0, 0, decode_error_status(e), /*close_after=*/true);
    return;
  }
  if (fh.type == FrameType::Control) {
    // Handshake/liveness traffic from a router or supervisor probe.  Hello
    // is answered with the registered model count (the prober checks it
    // against the topology); Heartbeat echoes the token.  An ack sent *at*
    // a server is a confused peer — well-formed stream, typed error, keep.
    ControlHead ch;
    if (decode_control(body, ch) != DecodeError::None ||
        (ch.kind != ControlKind::Hello && ch.kind != ControlKind::Heartbeat)) {
      queue_error_response(t, c, 0, 0, WireStatus::BadFrame, /*close_after=*/false);
      return;
    }
    ControlHead ack;
    ack.kind = ch.kind == ControlKind::Hello ? ControlKind::HelloAck : ControlKind::HeartbeatAck;
    ack.token = ch.kind == ControlKind::Hello ? server_->model_count() : ch.token;
    std::vector<std::byte> frame(encoded_control_bytes());
    const std::size_t len = encode_control(frame, ack);
    {
      const runtime::MutexLock lock(stats_mu_);
      ++stats_.control_frames;
    }
    enqueue_out(t, c, std::move(frame), len, /*close_after=*/false);
    return;
  }
  if (fh.type != FrameType::Request) {
    // A response frame sent at a server is a confused peer; the stream is
    // well-formed, so answer typed and keep the connection.
    queue_error_response(t, c, 0, 0, WireStatus::BadFrame, /*close_after=*/false);
    return;
  }
  auto inf = std::make_shared<Inflight>();
  std::span<const std::byte> payload;
  const DecodeError e = decode_request(body, inf->head, payload);
  if (e != DecodeError::None) {
    queue_error_response(t, c, e == DecodeError::ShapeMismatch ? inf->head.correlation : 0, 0,
                         decode_error_status(e), decode_error_closes(e));
    return;
  }
  std::size_t out_elems = 0;
  try {
    out_elems = server_->output_elems(inf->head.model);
  } catch (const std::out_of_range&) {
    queue_error_response(t, c, inf->head.correlation,
                         static_cast<std::uint8_t>(inf->head.dtype), WireStatus::UnknownModel,
                         /*close_after=*/false);
    return;
  }
  inf->request_body = std::move(body);
  inf->payload_bytes = out_elems * dtype_bytes(inf->head.dtype);
  inf->frame.resize(encoded_response_bytes(inf->payload_bytes));
  {
    const runtime::MutexLock lock(stats_mu_);
    ++stats_.frames_decoded;
  }
  submit_request(t, c, std::move(inf));
}

void SocketServer::submit_request(IoThread& t, const std::shared_ptr<Connection>& c,
                                  std::shared_ptr<Inflight> inf) {
  (void)t;
  serve::SubmitOptions so;
  so.priority = inf->head.qos == Qos::High ? serve::Priority::High : serve::Priority::Normal;
  so.deadline_s = static_cast<double>(inf->head.deadline_us) * 1e-6;

  // Zero-copy hand-off: the input span views the request payload inside
  // the received body; the output span views the response frame's payload
  // area, so a single-request micro-batch writes its result straight into
  // the bytes that go out on the wire.  Both prefixes keep the payloads
  // 4-byte aligned (see protocol.hpp), which satisfies f32/c32 alignment.
  std::byte* const in_bytes = inf->request_body.data() + request_prefix_bytes(inf->head.ndim);
  std::byte* const out_bytes = inf->frame.data() + kHeaderBytes + kResponsePrefixBytes;
  const auto elems = static_cast<std::size_t>(inf->head.elems());
  const auto model = static_cast<serve::ModelId>(inf->head.model);
  const Dtype dtype = inf->head.dtype;
  auto on_done = [this, c, inf](serve::InferResponse&& r) {
    on_inference_done(c, inf, std::move(r));
  };
  if (dtype == Dtype::C32) {
    server_->submit(model,
                    std::span<const c32>(reinterpret_cast<const c32*>(in_bytes), elems),
                    std::span<c32>(reinterpret_cast<c32*>(out_bytes),
                                   inf->payload_bytes / sizeof(c32)),
                    std::move(on_done), so);
  } else {
    server_->submit_real(model,
                         std::span<const float>(reinterpret_cast<const float*>(in_bytes), elems),
                         std::span<float>(reinterpret_cast<float*>(out_bytes),
                                          inf->payload_bytes / sizeof(float)),
                         std::move(on_done), so);
  }
}

void SocketServer::on_inference_done(const std::shared_ptr<Connection>& c,
                                     const std::shared_ptr<Inflight>& f,
                                     serve::InferResponse&& r) {
  ResponseHead rh;
  rh.correlation = f->head.correlation;
  rh.status = wire_status(r.status);
  rh.dtype = f->head.dtype;
  rh.queue_us = saturate_us(r.timing.queue_s);
  rh.exec_us = saturate_us(r.timing.exec_s);
  rh.total_us = saturate_us(r.timing.total_s);
  rh.micro_batch = static_cast<std::uint32_t>(r.timing.micro_batch);
  const std::size_t payload = rh.status == WireStatus::Ok ? f->payload_bytes : 0;
  encode_response_prefix(f->frame, rh, payload);
  const std::size_t len = seal_response(f->frame);

  if (c->dead) {
    const runtime::MutexLock lock(stats_mu_);
    ++stats_.dropped_responses;
    return;
  }
  IoThread& owner = *io_[c->io_index];
  {
    const runtime::MutexLock lock(c->ready_mu);
    OutBuf b;
    b.data = std::move(f->frame);
    b.len = len;
    c->ready.push_back(std::move(b));
  }
  {
    const runtime::MutexLock lock(owner.mu);
    owner.woken.push_back(c);
  }
  wake(owner);
}

void SocketServer::io_loop(IoThread& t) {
  std::array<epoll_event, 64> evs;
  const auto flush_deadline_at = [&] {
    return std::chrono::steady_clock::now() +
           std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(opts_.stop_flush_s));
  };
  std::chrono::steady_clock::time_point flush_deadline{};
  bool flushing = false;

  while (true) {
    const int timeout_ms = flushing ? 10 : -1;
    const int n = ::epoll_wait(t.ep, evs.data(), static_cast<int>(evs.size()), timeout_ms);

    // Collect closes to the end of the batch: a connection freed by an
    // earlier event in this batch must not be touched through a stale
    // data.ptr of a later one (shared_ptrs in t.conns keep them alive
    // until the erase, and the dead flag guards the stale handling).
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = evs[static_cast<std::size_t>(i)];
      if (ev.data.u64 == kEventFdTag) {
        std::uint64_t drain = 0;
        while (::read(t.event_fd, &drain, sizeof drain) > 0) {
        }
        std::vector<std::shared_ptr<Connection>> pending;
        std::vector<std::shared_ptr<Connection>> woken;
        {
          const runtime::MutexLock lock(t.mu);
          pending.swap(t.pending);
          woken.swap(t.woken);
        }
        for (auto& c : pending) {
          epoll_event add{};
          add.data.ptr = c.get();
          add.events = (reads_off_ ? 0u : EPOLLIN) | EPOLLRDHUP;
          t.conns.emplace(c->fd, c);
          ::epoll_ctl(t.ep, EPOLL_CTL_ADD, c->fd, &add);
        }
        for (auto& c : woken) {
          if (c->dead) continue;
          std::vector<OutBuf> ready;
          {
            const runtime::MutexLock lock(c->ready_mu);
            ready.swap(c->ready);
          }
          for (auto& b : ready) {
            const std::size_t len = b.len;
            enqueue_out(t, c, std::move(b.data), len, /*close_after=*/false);
            if (c->dead) break;
          }
        }
        continue;
      }
      if (ev.data.u64 == kListenFdTag) {
        if (listen_fd_.load(std::memory_order_acquire) >= 0) accept_ready(t);
        continue;
      }
      auto* cp = static_cast<Connection*>(ev.data.ptr);
      const auto it = t.conns.find(cp->fd);
      if (it == t.conns.end() || it->second.get() != cp || cp->dead) continue;
      const std::shared_ptr<Connection> c = it->second;
      if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
        // Flush what we can on HUP (half-close peers still read), then
        // fall through to read/write which will observe the real state.
        if ((ev.events & EPOLLERR) != 0) {
          close_conn(t, c);
          continue;
        }
      }
      if ((ev.events & EPOLLOUT) != 0) handle_write(t, c);
      if (c->dead) continue;
      if ((ev.events & (EPOLLIN | EPOLLRDHUP)) != 0) handle_read(t, c);
    }
    t.dying.clear();

    if (reads_off_ && !flushing) {
      // Quiesce: stop consuming frames on every connection.
      for (auto& [fd, c] : t.conns) update_read_interest(t, c);
    }
    if (flush_exit_) {
      if (!flushing) {
        flushing = true;
        flush_deadline = flush_deadline_at();
      }
      bool empty = true;
      for (auto& [fd, c] : t.conns) {
        if (!c->out_q.empty()) {
          empty = false;
          break;
        }
      }
      if (empty || std::chrono::steady_clock::now() >= flush_deadline) return;
    }
  }
}

}  // namespace turbofno::net
