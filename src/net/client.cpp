#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>

namespace turbofno::net {

namespace {

[[nodiscard]] std::system_error sys_error(const char* what) {
  return {errno, std::generic_category(), what};
}

void write_all(int fd, const std::byte* p, std::size_t n) {
  while (n > 0) {
    const auto w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw sys_error("send");
    }
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes; returns false on EOF before the first byte,
/// throws if the stream ends mid-read (a torn frame is never silent).
[[nodiscard]] bool read_exact(int fd, std::byte* p, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const auto r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired (set_io_timeout / ConnectOptions::io_timeout_s).
        throw std::runtime_error("net::Client: read timed out");
      }
      throw sys_error("read");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw std::runtime_error("net::Client: stream ended mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

void Client::dial_once(std::uint16_t port, const std::string& host, double timeout_s) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw sys_error("socket");
  if (rcvbuf_ > 0) {
    // Before connect(), so the clamp also bounds the advertised window.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_, sizeof rcvbuf_);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("net::Client: bad IPv4 host: " + host);
  }
  if (timeout_s <= 0.0) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const auto err = sys_error("connect");
      close();
      throw err;
    }
  } else {
    // Bounded dial: nonblocking connect, poll for writability, then read
    // the outcome back with SO_ERROR (the POSIX nonblocking-connect idiom).
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      if (errno != EINPROGRESS) {
        const auto err = sys_error("connect");
        close();
        throw err;
      }
      pollfd pfd{fd_, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_s * 1e3));
      if (ready <= 0) {
        close();
        errno = ready == 0 ? ETIMEDOUT : errno;
        throw sys_error("connect");
      }
      int soerr = 0;
      socklen_t len = sizeof soerr;
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        close();
        errno = soerr;
        throw sys_error("connect");
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::connect(std::uint16_t port, const std::string& host) {
  connect(port, host, ConnectOptions{});
}

void Client::connect(std::uint16_t port, const std::string& host, const ConnectOptions& opts) {
  const int attempts = std::max(opts.attempts, 1);
  double backoff = opts.backoff_s;
  for (int a = 0;; ++a) {
    try {
      dial_once(port, host, opts.timeout_s);
      break;
    } catch (...) {
      if (a + 1 >= attempts) throw;
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
      backoff *= 2.0;
    }
  }
  if (opts.io_timeout_s > 0.0) set_io_timeout(opts.io_timeout_s);
}

void Client::set_io_timeout(double seconds) noexcept {
  io_timeout_s_ = seconds < 0.0 ? 0.0 : seconds;
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(io_timeout_s_);
  tv.tv_usec = static_cast<suseconds_t>((io_timeout_s_ - std::floor(io_timeout_s_)) * 1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool Client::ping(double timeout_s) noexcept {
  if (fd_ < 0) return false;
  const double saved = io_timeout_s_;
  bool ok = false;
  try {
    ControlHead hb;
    hb.kind = ControlKind::Heartbeat;
    hb.token = next_correlation_++;
    std::byte frame[kHeaderBytes + kControlBodyBytes];
    const std::size_t len = encode_control({frame, sizeof frame}, hb);
    write_all(fd_, frame, len);
    set_io_timeout(timeout_s > 0.0 ? timeout_s : 1.0);
    std::byte hdr[kHeaderBytes];
    if (read_exact(fd_, hdr, kHeaderBytes)) {
      FrameHeader fh;
      if (decode_header({hdr, kHeaderBytes}, fh, kMaxMaxFrameBytes) == DecodeError::None) {
        std::vector<std::byte> body(fh.body_len);
        if (fh.body_len == 0 || read_exact(fd_, body.data(), fh.body_len)) {
          ControlHead ack;
          ok = verify_body(fh, body) == DecodeError::None && fh.type == FrameType::Control &&
               decode_control(body, ack) == DecodeError::None &&
               ack.kind == ControlKind::HeartbeatAck && ack.token == hb.token;
        }
      }
    }
  } catch (...) {
    ok = false;
  }
  set_io_timeout(saved);
  return ok;
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t Client::send_request(std::uint32_t model, Dtype dtype,
                                   std::span<const std::uint32_t> dims,
                                   std::span<const std::byte> payload, Qos qos,
                                   std::uint32_t deadline_us) {
  if (dims.empty() || dims.size() > kMaxDims) {
    throw std::invalid_argument("net::Client: ndim out of range");
  }
  RequestHead h;
  h.correlation = next_correlation_++;
  h.model = model;
  h.dtype = dtype;
  h.qos = qos;
  h.deadline_us = deadline_us;
  h.ndim = static_cast<std::uint16_t>(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) h.dims[i] = dims[i];
  scratch_.resize(encoded_request_bytes(h.ndim, payload.size()));
  const std::size_t len = encode_request(scratch_, h, payload);
  write_all(fd_, scratch_.data(), len);
  return h.correlation;
}

bool Client::recv_response(Result& out) {
  std::byte hdr[kHeaderBytes];
  if (!read_exact(fd_, hdr, kHeaderBytes)) return false;
  FrameHeader fh;
  // The client trusts its server on size (it asked for this response).
  if (decode_header({hdr, kHeaderBytes}, fh, kMaxMaxFrameBytes) != DecodeError::None) {
    throw std::runtime_error("net::Client: malformed response header");
  }
  out.body.resize(fh.body_len);
  if (fh.body_len > 0 && !read_exact(fd_, out.body.data(), fh.body_len)) {
    throw std::runtime_error("net::Client: stream ended mid-frame");
  }
  if (verify_body(fh, out.body) != DecodeError::None) {
    throw std::runtime_error("net::Client: response checksum mismatch");
  }
  if (fh.type != FrameType::Response) {
    throw std::runtime_error("net::Client: expected a response frame");
  }
  std::span<const std::byte> payload;
  if (decode_response(out.body, out.head, payload) != DecodeError::None) {
    throw std::runtime_error("net::Client: malformed response body");
  }
  return true;
}

Client::Result Client::infer(std::uint32_t model, Dtype dtype,
                             std::span<const std::uint32_t> dims,
                             std::span<const std::byte> payload, Qos qos,
                             std::uint32_t deadline_us) {
  const std::uint64_t corr = send_request(model, dtype, dims, payload, qos, deadline_us);
  Result r;
  if (!recv_response(r)) {
    throw std::runtime_error("net::Client: server closed before responding");
  }
  if (r.head.correlation != corr && r.head.correlation != 0) {
    throw std::runtime_error("net::Client: correlation mismatch (pipelining misuse?)");
  }
  return r;
}

Client::Result Client::infer_c32(std::uint32_t model, std::span<const std::uint32_t> dims,
                                 std::span<const c32> input, Qos qos,
                                 std::uint32_t deadline_us) {
  return infer(model, Dtype::C32, dims,
               {reinterpret_cast<const std::byte*>(input.data()), input.size_bytes()}, qos,
               deadline_us);
}

Client::Result Client::infer_real(std::uint32_t model, std::span<const std::uint32_t> dims,
                                  std::span<const float> input, Qos qos,
                                  std::uint32_t deadline_us) {
  return infer(model, Dtype::F32, dims,
               {reinterpret_cast<const std::byte*>(input.data()), input.size_bytes()}, qos,
               deadline_us);
}

void Client::send_bytes(std::span<const std::byte> bytes) {
  write_all(fd_, bytes.data(), bytes.size());
}

bool Client::recv_closed(double timeout_s) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - std::floor(timeout_s)) * 1e6);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::byte buf[4096];
  while (true) {
    const auto r = ::read(fd_, buf, sizeof buf);
    if (r == 0) return true;  // clean EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return true;  // peer terminated the stream
      return false;  // timeout (EAGAIN): the stream is still open
    }
  }
}

}  // namespace turbofno::net
