// Blocking TCP client for the TurboFNO wire protocol (net/protocol.hpp).
//
// Deliberately small: one synchronous request/response call for the common
// case, split send/recv for pipelining, and raw byte-level escape hatches
// (send_bytes / recv_closed) that the protocol fault-injection tests use
// to feed the server malformed frames and observe how the stream ends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "tensor/complex.hpp"

namespace turbofno::net {

class Client {
 public:
  /// One decoded response frame.  `body` owns the bytes; payload views are
  /// valid as long as the Result is alive (the response prefix keeps the
  /// payload 4-byte aligned, so the typed views are alignment-safe).
  struct Result {
    ResponseHead head;
    std::vector<std::byte> body;

    [[nodiscard]] std::span<const std::byte> payload() const noexcept {
      return std::span<const std::byte>(body).subspan(kResponsePrefixBytes);
    }
    [[nodiscard]] std::span<const c32> payload_c32() const noexcept {
      const auto p = payload();
      return {reinterpret_cast<const c32*>(p.data()), p.size() / sizeof(c32)};
    }
    [[nodiscard]] std::span<const float> payload_f32() const noexcept {
      const auto p = payload();
      return {reinterpret_cast<const float*>(p.data()), p.size() / sizeof(float)};
    }
  };

  Client() = default;
  /// Closes the socket if still open.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Clamps the socket's receive buffer (set before connect, so it also
  /// caps the advertised TCP window).  Tests use a tiny value to make the
  /// server's write backpressure deterministic; 0 keeps the OS default.
  void set_recv_buffer(int bytes) noexcept { rcvbuf_ = bytes; }

  /// Dialing knobs.  The defaults reproduce the historical behavior
  /// (single attempt, OS connect timeout, reads block forever).
  struct ConnectOptions {
    /// Per-attempt connect timeout in seconds (nonblocking connect +
    /// poll); 0 uses the OS default, which can block for minutes.
    double timeout_s = 0.0;
    /// Total connect attempts.  A refused/timed-out dial is retried after
    /// a backoff that doubles per attempt — the router uses this to
    /// re-dial workers mid-restart (ECONNREFUSED until the new process
    /// binds).
    int attempts = 1;
    /// Sleep before the first retry; doubles each further retry.
    double backoff_s = 0.05;
    /// Read/write timeout in seconds applied to the connected socket
    /// (SO_RCVTIMEO/SO_SNDTIMEO); a timed-out read throws
    /// std::runtime_error instead of blocking forever.  0 = no timeout.
    double io_timeout_s = 0.0;
  };

  /// Connects to host:port (numeric IPv4 host).  Throws std::system_error.
  void connect(std::uint16_t port, const std::string& host = "127.0.0.1");
  /// Connect with explicit timeout/retry behavior.  Throws the last
  /// attempt's error once `opts.attempts` dials have failed.
  void connect(std::uint16_t port, const std::string& host, const ConnectOptions& opts);

  /// Applies (or clears, with 0) a read/write timeout on the open socket.
  void set_io_timeout(double seconds) noexcept;

  /// Liveness probe: sends a Heartbeat control frame and waits up to
  /// `timeout_s` for the matching ack.  False on timeout, EOF, or a
  /// non-matching reply (e.g. a pre-control peer answering BadFrame) —
  /// never throws.  The supervisor health-checks workers with this.
  [[nodiscard]] bool ping(double timeout_s = 1.0) noexcept;
  void close() noexcept;
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Sends one request frame and blocks for its response.  The returned
  /// frame's correlation is chosen by the client and echoed by the server.
  /// Throws std::system_error on transport failure, std::runtime_error
  /// when the stream ends or the response frame is itself malformed.
  Result infer(std::uint32_t model, Dtype dtype, std::span<const std::uint32_t> dims,
               std::span<const std::byte> payload, Qos qos = Qos::Normal,
               std::uint32_t deadline_us = 0);

  /// Typed conveniences over infer().
  Result infer_c32(std::uint32_t model, std::span<const std::uint32_t> dims,
                   std::span<const c32> input, Qos qos = Qos::Normal,
                   std::uint32_t deadline_us = 0);
  Result infer_real(std::uint32_t model, std::span<const std::uint32_t> dims,
                    std::span<const float> input, Qos qos = Qos::Normal,
                    std::uint32_t deadline_us = 0);

  /// Pipelining: send without waiting.  Returns the frame's correlation id.
  std::uint64_t send_request(std::uint32_t model, Dtype dtype,
                             std::span<const std::uint32_t> dims,
                             std::span<const std::byte> payload, Qos qos = Qos::Normal,
                             std::uint32_t deadline_us = 0);

  /// Receives the next response frame.  Returns false on a clean EOF
  /// (server closed the stream); throws on transport errors or when the
  /// response bytes themselves fail to decode.
  bool recv_response(Result& out);

  // ---- fault-injection escape hatches ------------------------------------

  /// Writes raw bytes on the stream, framing be damned.
  void send_bytes(std::span<const std::byte> bytes);

  /// Drains and discards the stream until EOF; true when the peer closed.
  /// `timeout_s` bounds the wait (SO_RCVTIMEO); false on timeout.
  bool recv_closed(double timeout_s = 5.0);

 private:
  /// One dial attempt; throws on failure.  timeout_s <= 0 blocks.
  void dial_once(std::uint16_t port, const std::string& host, double timeout_s);

  int fd_ = -1;
  int rcvbuf_ = 0;
  double io_timeout_s_ = 0.0;
  std::uint64_t next_correlation_ = 1;
  std::vector<std::byte> scratch_;  // request encode buffer, reused
};

}  // namespace turbofno::net
