// Socket serving front-end: an epoll-based, thread-pooled TCP server that
// speaks the TurboFNO wire protocol (net/protocol.hpp) and feeds the
// in-process serve::InferenceServer.
//
// Architecture:
//
//   accept ──> io thread (epoll, round-robin conns) ──> frame decode
//                     ▲                                     │ zero-copy spans
//                     │ write queue + backpressure          ▼
//   client <── sealed response frames <── completion <── InferenceServer
//                                         callbacks        (QoS batching)
//
// Each connection is owned by exactly one io thread (no cross-thread
// connection state races); inference completions arrive on the serve
// executor threads and are handed to the owning io thread through a
// per-thread wake queue (eventfd).  A decoded request's payload is
// submitted as a zero-copy span over the connection's receive buffer, and
// the session writes the result directly into the outgoing response
// frame's payload bytes — the front-end itself copies no payload.
//
// Admission control and backpressure:
//   - A request frame carrying a deadline rides serve's QoS-class
//     admission: if the deadline is infeasible against the model's backlog
//     it is refused with WireStatus::Shed (Normal-QoS requests judge the
//     whole backlog, High only the High backlog — under saturation Normal
//     sheds first).  serve::ServerStats counts the sheds.
//   - A connection whose outbound queue exceeds Options::
//     max_buffered_bytes stops being read (EPOLLIN parked) until the
//     client drains it below half — per-connection write backpressure, so
//     one slow reader cannot balloon server memory or stall others.
//
// Malformed input never crashes the server: recoverable body errors
// (unknown model, shape/payload disagreement, bad prefix) get a typed
// error response on the still-framed stream; integrity errors (bad magic,
// wrong version, checksum mismatch, over-limit length) get the typed error
// response followed by a clean close.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/thread_annotations.hpp"

#include "net/protocol.hpp"
#include "serve/server.hpp"

namespace turbofno::net {

class SocketServer {
 public:
  struct Options {
    /// Listening port.  -1 resolves TURBOFNO_NET_PORT (default 7470);
    /// 0 binds an ephemeral port (read it back with port()).
    int port = -1;
    /// Epoll io threads; connections are assigned round-robin.
    std::size_t io_threads = 1;
    /// Largest accepted frame body; 0 resolves TURBOFNO_NET_MAX_FRAME.
    std::size_t max_frame_bytes = 0;
    /// Outbound bytes buffered per connection before its reads are parked.
    std::size_t max_buffered_bytes = 4u << 20;
    /// SO_SNDBUF for accepted sockets (0 = OS default).  Bounds how much a
    /// slow reader's data the *kernel* buffers per connection; combined
    /// with max_buffered_bytes it caps total per-connection memory.
    int socket_sndbuf_bytes = 0;
    /// listen(2) backlog.
    int backlog = 64;
    /// stop() flushes pending responses to slow readers at most this long.
    double stop_flush_s = 5.0;
    /// The embedded inference server's options (ignored when an external
    /// server is shared via the two-argument constructor).
    serve::InferenceServer::Options serve;
  };

  /// Monotonic front-end tallies (protocol-level; inference-level tallies
  /// live in serve::ServerStats, shed counters included).
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t frames_decoded = 0;      // well-formed requests submitted
    std::uint64_t responses_sent = 0;      // frames fully written back
    std::uint64_t protocol_errors = 0;     // typed error responses queued
    std::uint64_t backpressure_pauses = 0;  // times a connection's reads parked
    std::uint64_t dropped_responses = 0;   // completions after client disconnect
    std::uint64_t control_frames = 0;      // Hello/Heartbeat frames answered
  };

  SocketServer() : SocketServer(Options{}) {}
  explicit SocketServer(Options opts);
  /// Serve an existing inference server (shared with in-process callers).
  SocketServer(Options opts, std::shared_ptr<serve::InferenceServer> server);
  /// stop()s if still running.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Model registration, forwarded to the inference server.  The returned
  /// ids are what request frames carry in their `model` field.
  serve::ModelId load_model(const core::Fno1dConfig& cfg) { return server_->load_model(cfg); }
  serve::ModelId load_model(const core::Fno2dConfig& cfg) { return server_->load_model(cfg); }
  serve::ModelId load_model(const core::Fno1dConfig& cfg, const core::WeightBundle& w) {
    return server_->load_model(cfg, w);
  }
  serve::ModelId load_model(const core::Fno2dConfig& cfg, const core::WeightBundle& w) {
    return server_->load_model(cfg, w);
  }

  /// The inference server this front-end feeds.
  [[nodiscard]] const std::shared_ptr<serve::InferenceServer>& server() const noexcept {
    return server_;
  }

  /// Binds, listens, and spawns the io threads.  Throws std::system_error
  /// when the socket cannot be set up (port in use, ...).
  void start() TFNO_EXCLUDES(lifecycle_mu_);

  /// Stops accepting, quiesces reads, drains in-flight inference, flushes
  /// queued responses (bounded by Options::stop_flush_s), closes every
  /// connection, and joins the io threads.  Idempotent and safe to call
  /// concurrently from several threads (one wins; the rest block until
  /// the wind-down finishes, then return).
  void stop() TFNO_EXCLUDES(lifecycle_mu_);

  /// The bound listening port (after start(); ephemeral ports resolved).
  [[nodiscard]] std::uint16_t port() const noexcept {
    return bound_port_.load(std::memory_order_acquire);
  }

  /// Alias for port(): the OS-assigned port after binding port 0.  Benches
  /// and tests use this so parallel runs never collide on a fixed port.
  [[nodiscard]] std::uint16_t bound_port() const noexcept { return port(); }

  /// Lock-free and callable from any thread (including concurrently with
  /// start()/stop(), which it observes atomically).
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] Stats stats() const;

 private:
  struct Connection;
  struct IoThread;
  struct Inflight;

  void io_loop(IoThread& t);
  void accept_ready(IoThread& t);
  void handle_read(IoThread& t, const std::shared_ptr<Connection>& c);
  void handle_write(IoThread& t, const std::shared_ptr<Connection>& c);
  void process_frame(IoThread& t, const std::shared_ptr<Connection>& c);
  void submit_request(IoThread& t, const std::shared_ptr<Connection>& c,
                      std::shared_ptr<Inflight> inf);
  void queue_error_response(IoThread& t, const std::shared_ptr<Connection>& c,
                            std::uint64_t correlation, std::uint8_t dtype, WireStatus status,
                            bool close_after);
  void on_inference_done(const std::shared_ptr<Connection>& c, const std::shared_ptr<Inflight>& f,
                         serve::InferResponse&& r);
  void enqueue_out(IoThread& t, const std::shared_ptr<Connection>& c,
                   std::vector<std::byte>&& frame, std::size_t len, bool close_after);
  void close_conn(IoThread& t, const std::shared_ptr<Connection>& c);
  void update_read_interest(IoThread& t, const std::shared_ptr<Connection>& c);
  void wake(IoThread& t);

  Options opts_;
  std::shared_ptr<serve::InferenceServer> server_;
  std::size_t max_frame_ = 0;

  // Atomic: io thread 0 reads it (accept path) while stop() retires it.
  // stop() shuts the socket down but defers the close until the io
  // threads have joined, so the fd number can never be recycled under a
  // concurrent accept4.
  std::atomic<int> listen_fd_{-1};
  std::atomic<std::uint16_t> bound_port_{0};
  // Serializes start()/stop() against each other (stop() is idempotent
  // and may race the destructor or an ops thread).
  mutable runtime::Mutex lifecycle_mu_;
  bool started_ TFNO_GUARDED_BY(lifecycle_mu_) = false;
  std::atomic<bool> running_{false};     // lock-free running() snapshot
  std::atomic<bool> reads_off_{false};   // quiesce: stop consuming frames
  std::atomic<bool> flush_exit_{false};  // io threads exit once flushed
  std::atomic<std::size_t> next_io_{0};  // round-robin connection placement

  std::vector<std::unique_ptr<IoThread>> io_;

  mutable runtime::Mutex stats_mu_;
  Stats stats_ TFNO_GUARDED_BY(stats_mu_);
};

}  // namespace turbofno::net
