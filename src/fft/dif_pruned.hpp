// In-place decimation-in-frequency FFT kernel with branch pruning.
//
// This is the paper's Section 3.3 engine.  Two prunings compose:
//
//  * Output truncation (forward FFT in FNO keeps only the first `m` of `n`
//    frequency bins): the DIF recursion needs ceil(need/2) outputs of the
//    even-bin half and floor(need/2) of the odd-bin half; a branch whose
//    needed count reaches zero is skipped with its whole subtree, exactly
//    reproducing Figure 5's op counts (4-pt FFT: 3 ops at 25%, 6 at 50%,
//    8 unpruned).
//
//  * Input zero padding (inverse FFT in FNO reads an `p`-bin spectrum padded
//    to `n`): while the nonzero prefix z = min(p, L) fits in the lower half
//    of a length-L block, the butterfly degenerates — the even output is a
//    copy and the odd output a single twiddle scale; lanes where both inputs
//    are zero are skipped outright.
//
// Outputs land in bit-reversed order; callers gather only the `m` natural-
// order bins they need (no full bit-reversal pass).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/complex.hpp"

namespace turbofno::fft {

/// Runs the pruned in-place butterfly network on `buf` (length n, natural
/// order, bit-reversed on exit).  `m` = outputs needed (1..n), `p` = nonzero
/// input prefix (1..n).  Inverse uses conjugate twiddles (no scaling here).
/// Returns the number of "butterfly output" unit ops actually performed
/// (the Figure 5 counting convention).
std::uint64_t dif_pruned_run(std::span<c32> buf, std::size_t n, std::size_t m, std::size_t p,
                             bool inverse);

/// Gathers the first `m` natural-order bins out of the bit-reversed buffer
/// produced by dif_pruned_run, scaling by `scale`.
void dif_gather(std::span<const c32> buf, std::span<c32> out, std::size_t n, std::size_t m,
                float scale);

/// Needed-output count of the block at `block_index` among `n/L` blocks of a
/// depth-d stage (L = n >> d) when only the first `m` natural-order bins are
/// required.  Exposed for tests and for the analytic op counter.
std::size_t block_need(std::size_t block_index, std::size_t depth, std::size_t m) noexcept;

}  // namespace turbofno::fft
