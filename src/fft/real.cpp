#include "fft/real.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "fft/stockham.hpp"
#include "fft/twiddle.hpp"
#include "runtime/env.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fft {

namespace {

void check_real_size(std::size_t n) {
  if (n < 4 || !is_pow2(n)) {
    throw std::invalid_argument("real FFT: n must be a power of two >= 4");
  }
}

std::atomic<int> g_real_spectral_override{-1};

// Closed-form FLOP estimate for the half-size complex Stockham transform
// (5 n log2 n, the classic complex-FFT count) — the real plans drive the
// kernel directly rather than through an FftPlan, so they account the same
// way the 2D stage counters do.
std::uint64_t half_fft_flops(std::size_t m) {
  return static_cast<std::uint64_t>(5 * m * log2u(m));
}

}  // namespace

bool real_spectral_enabled() noexcept {
  const int ov = g_real_spectral_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  static const bool from_env = runtime::env_long("TURBOFNO_REAL_SPECTRAL", 1) != 0;
  return from_env;
}

void set_real_spectral(bool enabled) noexcept {
  g_real_spectral_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

RfftPlan::RfftPlan(std::size_t n, std::size_t keep) : n_(n), keep_(keep == 0 ? n / 2 + 1 : keep) {
  check_real_size(n);
  if (keep_ > n / 2 + 1) throw std::invalid_argument("RfftPlan: keep > n/2+1");
  w_ = twiddles_for(n).forward(n);  // W_n^k, k < n/2
  (void)twiddles_for(n / 2);
  flops_ = half_fft_flops(n / 2) + 16u * keep_;  // untangle: ~16 flops/bin
}

void RfftPlan::execute_one(const float* in, std::ptrdiff_t in_stride, c32* out,
                           std::ptrdiff_t out_stride, std::span<c32> work) const {
  using B = simd::Active;
  const std::size_t m = n_ / 2;
  assert(work.size() >= scratch_elems());
  c32* z = work.data();

  // Pack even/odd samples into a half-length complex signal.  Contiguous
  // input: (x[2j], x[2j+1]) pairs are exactly the c32 layout — one memcpy.
  if (in_stride == 1) {
    std::memcpy(z, in, m * sizeof(c32));
  } else {
    for (std::size_t j = 0; j < m; ++j) {
      z[j] = {in[static_cast<std::ptrdiff_t>(2 * j) * in_stride],
              in[static_cast<std::ptrdiff_t>(2 * j + 1) * in_stride]};
    }
  }
  stockham_forward({z, m}, work.subspan(m, m), m);

  // Untangle: E[k] = (Z[k] + conj(Z[m-k]))/2, O[k] = (Z[k]-conj(Z[m-k]))/(2i),
  // X[k] = E[k] + W_n^k O[k]; X[m] = E[0] - O[0].
  //
  // DC/Nyquist peel: both reduce to combinations of Z[0] alone and are real
  // by construction (the general k = 0 formula collapses to the same values).
  const std::size_t kmax = std::min(keep_, m);
  out[0] = c32{z[0].re + z[0].im, 0.0f};
  assert(out[0].im == 0.0f);
  if (keep_ == m + 1) {
    out[static_cast<std::ptrdiff_t>(m) * out_stride] = c32{z[0].re - z[0].im, 0.0f};
    assert(out[static_cast<std::ptrdiff_t>(m) * out_stride].im == 0.0f);
  }
  std::size_t k = 1;
  if (out_stride == 1) {
    // Lanes k..k+P-1 ascending; the conjugate-mirror operand Z[m-k] descends,
    // so it is one contiguous load at m-k-P+1 reversed in-register.
    constexpr std::size_t P = B::planes;
    for (; k + P <= kmax; k += P) {
      const auto zk = B::pload(z + k);
      const auto zmk = B::pconj(B::preverse(B::pload(z + (m - k - (P - 1)))));
      const auto e = B::pscale(B::padd(zk, zmk), 0.5f);
      const auto o = B::pmul_neg_i(B::pscale(B::psub(zk, zmk), 0.5f));
      B::pstore(out + k, B::pcmadd(e, B::pload(w_.data() + k), o));
    }
  }
  for (; k < kmax; ++k) {
    const c32 zk = z[k];
    const c32 zmk = conj(z[m - k]);
    const c32 e = 0.5f * (zk + zmk);
    const c32 o = mul_neg_i(0.5f * (zk - zmk));  // divide by 2i
    out[static_cast<std::ptrdiff_t>(k) * out_stride] = e + w_[k] * o;
  }
}

void RfftPlan::execute(std::span<const float> in, std::span<c32> out, std::size_t batch) const {
  const std::size_t n = n_;
  if (in.size() < batch * n || out.size() < batch * keep_) {
    throw std::invalid_argument("RfftPlan::execute: spans too small");
  }
  runtime::parallel_for(0, batch, std::max<std::size_t>(1, 32768 / n),
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    const std::span<c32> work = arena.alloc<c32>(scratch_elems());
    for (std::size_t b = lo; b < hi; ++b) {
      execute_one(in.data() + b * n, 1, out.data() + b * keep_, 1, work);
    }
  });
}

IrfftPlan::IrfftPlan(std::size_t n, std::size_t nonzero)
    : n_(n), nonzero_(nonzero == 0 ? n / 2 + 1 : nonzero) {
  check_real_size(n);
  if (nonzero_ > n / 2 + 1) throw std::invalid_argument("IrfftPlan: nonzero > n/2+1");
  wi_ = twiddles_for(n).inverse(n);  // conj(W_n^k), k < n/2
  (void)twiddles_for(n / 2);
  flops_ = half_fft_flops(n / 2) + 16u * (n / 2);  // retangle: ~16 flops/bin
}

void IrfftPlan::execute_one(const c32* in, std::ptrdiff_t in_stride, float* out,
                            std::ptrdiff_t out_stride, std::span<c32> work) const {
  using B = simd::Active;
  const std::size_t m = n_ / 2;
  assert(work.size() >= 3 * m + 1);
  c32* X = work.data();           // m + 1 padded half-spectrum
  c32* z = work.data() + m + 1;   // m retangled half-size signal
  const std::span<c32> fwork = work.subspan(2 * m + 1, m);

  if (in_stride == 1) {
    std::memcpy(X, in, nonzero_ * sizeof(c32));
  } else {
    for (std::size_t kk = 0; kk < nonzero_; ++kk) {
      X[kk] = in[static_cast<std::ptrdiff_t>(kk) * in_stride];
    }
  }
  for (std::size_t kk = nonzero_; kk <= m; ++kk) X[kk] = c32{};
  // Hermitian projection: the DC bin (and the Nyquist bin when stored) must
  // be real for the output to be real; drop any imaginary residue so every
  // stored prefix maps to Re(ifft(hermitian_extend(X))).
  X[0].im = 0.0f;
  if (nonzero_ == m + 1) X[m].im = 0.0f;

  // Re-tangle: E[k] = (X[k] + conj(X[m-k]))/2,
  // O[k] = conj(W^k) (X[k] - conj(X[m-k]))/2, Z[k] = E[k] + i O[k].
  std::size_t k = 0;
  {
    constexpr std::size_t P = B::planes;
    for (; k + P <= m; k += P) {
      const auto xk = B::pload(X + k);
      const auto xmk = B::pconj(B::preverse(B::pload(X + (m - k - (P - 1)))));
      const auto e = B::pscale(B::padd(xk, xmk), 0.5f);
      const auto o = B::pcmul(B::pload(wi_.data() + k), B::pscale(B::psub(xk, xmk), 0.5f));
      B::pstore(z + k, B::padd(e, B::pmul_pos_i(o)));
    }
  }
  for (; k < m; ++k) {
    const c32 xk = X[k];
    const c32 xmk = conj(X[m - k]);
    const c32 e = 0.5f * (xk + xmk);
    const c32 o = wi_[k] * (0.5f * (xk - xmk));
    z[k] = e + mul_pos_i(o);
  }
  stockham_inverse({z, m}, fwork, m, /*scale=*/true);

  // Unpack the interleaved half-size signal back into 2m real samples.
  if (out_stride == 1) {
    std::memcpy(out, z, m * sizeof(c32));
  } else {
    for (std::size_t j = 0; j < m; ++j) {
      out[static_cast<std::ptrdiff_t>(2 * j) * out_stride] = z[j].re;
      out[static_cast<std::ptrdiff_t>(2 * j + 1) * out_stride] = z[j].im;
    }
  }
}

void IrfftPlan::execute(std::span<const c32> in, std::span<float> out,
                        std::size_t batch) const {
  const std::size_t n = n_;
  if (in.size() < batch * nonzero_ || out.size() < batch * n) {
    throw std::invalid_argument("IrfftPlan::execute: spans too small");
  }
  runtime::parallel_for(0, batch, std::max<std::size_t>(1, 32768 / n),
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    const std::span<c32> work = arena.alloc<c32>(scratch_elems());
    for (std::size_t b = lo; b < hi; ++b) {
      execute_one(in.data() + b * nonzero_, 1, out.data() + b * n, 1, work);
    }
  });
}

}  // namespace turbofno::fft
