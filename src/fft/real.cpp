#include "fft/real.hpp"

#include <algorithm>
#include <stdexcept>

#include "fft/stockham.hpp"
#include "fft/twiddle.hpp"
#include "runtime/parallel.hpp"
#include "tensor/aligned_buffer.hpp"

namespace turbofno::fft {

namespace {

void check_real_size(std::size_t n) {
  if (n < 4 || !is_pow2(n)) {
    throw std::invalid_argument("real FFT: n must be a power of two >= 4");
  }
}

}  // namespace

RfftPlan::RfftPlan(std::size_t n, std::size_t keep) : n_(n), keep_(keep == 0 ? n / 2 + 1 : keep) {
  check_real_size(n);
  if (keep_ > n / 2 + 1) throw std::invalid_argument("RfftPlan: keep > n/2+1");
  (void)twiddles_for(n);
  (void)twiddles_for(n / 2);
}

void RfftPlan::execute(std::span<const float> in, std::span<c32> out, std::size_t batch) const {
  const std::size_t n = n_;
  const std::size_t m = n / 2;
  if (in.size() < batch * n || out.size() < batch * keep_) {
    throw std::invalid_argument("RfftPlan::execute: spans too small");
  }
  const TwiddleTable& tw = twiddles_for(n);
  const std::span<const c32> w = tw.forward(n);  // W_n^k, k < n/2

  runtime::parallel_for(0, batch, std::max<std::size_t>(1, 32768 / n),
                        [&](std::size_t lo, std::size_t hi) {
    AlignedBuffer<c32> z(m);
    AlignedBuffer<c32> work(m);
    AlignedBuffer<c32> zf(m);
    for (std::size_t b = lo; b < hi; ++b) {
      const float* x = in.data() + b * n;
      // Pack even/odd samples into a half-length complex signal.
      for (std::size_t j = 0; j < m; ++j) z[j] = {x[2 * j], x[2 * j + 1]};
      stockham_forward(z.span(), work.span(), m);
      std::copy_n(z.data(), m, zf.data());

      c32* X = out.data() + b * keep_;
      // Untangle: E[k] = (Z[k] + conj(Z[m-k]))/2, O[k] = (Z[k]-conj(Z[m-k]))/(2i),
      // X[k] = E[k] + W_n^k O[k]; X[m] = E[0] - O[0].
      const std::size_t kmax = std::min(keep_, m);
      for (std::size_t k = 0; k < kmax; ++k) {
        const c32 zk = zf[k];
        const c32 zmk = conj(zf[(m - k) % m]);
        const c32 e = 0.5f * (zk + zmk);
        const c32 o = mul_neg_i(0.5f * (zk - zmk));  // divide by 2i
        X[k] = e + w[k] * o;
      }
      if (keep_ == m + 1) {
        const c32 e0 = 0.5f * (zf[0] + conj(zf[0]));
        const c32 o0 = mul_neg_i(0.5f * (zf[0] - conj(zf[0])));
        X[m] = e0 - o0;
      }
    }
  });
}

IrfftPlan::IrfftPlan(std::size_t n, std::size_t nonzero)
    : n_(n), nonzero_(nonzero == 0 ? n / 2 + 1 : nonzero) {
  check_real_size(n);
  if (nonzero_ > n / 2 + 1) throw std::invalid_argument("IrfftPlan: nonzero > n/2+1");
  (void)twiddles_for(n);
  (void)twiddles_for(n / 2);
}

void IrfftPlan::execute(std::span<const c32> in, std::span<float> out,
                        std::size_t batch) const {
  const std::size_t n = n_;
  const std::size_t m = n / 2;
  if (in.size() < batch * nonzero_ || out.size() < batch * n) {
    throw std::invalid_argument("IrfftPlan::execute: spans too small");
  }
  const TwiddleTable& tw = twiddles_for(n);
  const std::span<const c32> wi = tw.inverse(n);  // conj(W_n^k)

  runtime::parallel_for(0, batch, std::max<std::size_t>(1, 32768 / n),
                        [&](std::size_t lo, std::size_t hi) {
    AlignedBuffer<c32> X(m + 1);
    AlignedBuffer<c32> z(m);
    AlignedBuffer<c32> work(m);
    for (std::size_t b = lo; b < hi; ++b) {
      const c32* src = in.data() + b * nonzero_;
      std::copy_n(src, nonzero_, X.data());
      for (std::size_t k = nonzero_; k <= m; ++k) X[k] = c32{};

      // Re-tangle: E[k] = (X[k] + conj(X[m-k]))/2,
      // O[k] = conj(W^k) (X[k] - conj(X[m-k]))/2, Z[k] = E[k] + i O[k].
      for (std::size_t k = 0; k < m; ++k) {
        const c32 xk = X[k];
        const c32 xmk = conj(X[m - k]);
        const c32 e = 0.5f * (xk + xmk);
        const c32 o = wi[k] * (0.5f * (xk - xmk));
        z[k] = e + mul_pos_i(o);
      }
      stockham_inverse(z.span(), work.span(), m, /*scale=*/true);

      float* x = out.data() + b * n;
      for (std::size_t j = 0; j < m; ++j) {
        x[2 * j] = z[j].re;
        x[2 * j + 1] = z[j].im;
      }
    }
  });
}

}  // namespace turbofno::fft
