#include "fft/fft2d.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "fft/twiddle.hpp"
#include "runtime/env.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/transpose.hpp"

namespace turbofno::fft {

namespace {

PlanDesc make_x_desc(const Plan2dDesc& d) {
  PlanDesc p;
  p.n = d.nx;
  p.dir = d.dir;
  p.scale_inverse = d.scale_inverse;
  if (d.dir == Direction::Forward) {
    p.keep = d.keep_x_or_nx();
    p.nonzero = d.nx;
  } else {
    p.keep = d.nx;
    p.nonzero = d.keep_x_or_nx();
  }
  return p;
}

PlanDesc make_y_desc(const Plan2dDesc& d) {
  PlanDesc p;
  p.n = d.ny;
  p.dir = d.dir;
  p.scale_inverse = d.scale_inverse;
  if (d.dir == Direction::Forward) {
    p.keep = d.keep_y_or_ny();
    p.nonzero = d.ny;
  } else {
    p.keep = d.ny;
    p.nonzero = d.keep_y_or_ny();
  }
  return p;
}

Plan2dDesc validated_2d(Plan2dDesc d) {
  if (!is_pow2(d.nx) || !is_pow2(d.ny)) {
    throw std::invalid_argument("FftPlan2d: nx and ny must be powers of two >= 2");
  }
  if (d.keep_x > d.nx || d.keep_y > d.ny) {
    throw std::invalid_argument("FftPlan2d: keep exceeds dimension");
  }
  return d;
}

// Columns gathered per transpose slab: 16 complexes = two cache lines per
// field row, so the gather side of the transpose consumes whole lines, and
// a slab of 16 rows x nx=1024 stays within 128 KiB of scratch.
constexpr std::size_t kSlabCols = 16;

// FftPlan2d's fused middle pays strided Y-stage gathers against the
// per-field staging tile; that trade wins only while the tile stays
// L2-resident.  Dense full-size fields at >= 512^2 (2 MiB tiles) thrash
// and measure slower than the two-pass schedule, so they keep it.  The
// FNO-shaped truncated plans (tile = ny * modes_x) are far below this.
constexpr std::size_t kFusedFieldBudgetBytes = 1u << 20;

std::atomic<int> g_transpose_override{-1};
std::atomic<int> g_fused_mid_override{-1};

// Shared slab-task geometry of the tile-granular stages: tasks enumerate
// (field, column slab) pairs so each task touches one contiguous block.
struct SlabGrid {
  std::size_t cols = 0;             // columns per slab (<= kSlabCols)
  std::size_t slabs_per_field = 0;  // ceil(ny / cols)
  std::size_t grain = 0;            // tasks per parallel chunk
};

SlabGrid slab_grid(std::size_t ny) noexcept {
  SlabGrid g;
  g.cols = std::min<std::size_t>(kSlabCols, ny);
  g.slabs_per_field = (ny + g.cols - 1) / g.cols;
  g.grain = std::max<std::size_t>(1, 64 / g.cols);
  return g;
}

// The two per-slab transform bodies, single-sourced for every consumer
// (fft2d_x_stage's transposed branch, the tile-granular stages, and
// FftPlan2d::execute_fused).  Both handle the transposed and the
// per-column schedule; `rows_in`/`rows_out` are the plan's
// nonzero_or_n()/keep_or_n().

// Columns [y0, y0+g) of `field` become y-major rows at dst (row r
// contiguous, packed rows_out apart).  `slab_in` needs cols*rows_in
// elements on the transposed schedule (unused otherwise).
void x_slab_to_rows(const FftPlan& plan, bool transposed, const c32* field, std::size_t ny,
                    std::size_t y0, std::size_t g, std::size_t rows_in, std::size_t rows_out,
                    c32* dst, std::span<c32> slab_in, std::span<c32> work) {
  if (transposed) {
    simd::transpose(field + y0, ny, slab_in.data(), rows_in, rows_in, g);
    for (std::size_t r = 0; r < g; ++r) {
      plan.execute_one(slab_in.data() + r * rows_in, 1, dst + r * rows_out, 1, work);
    }
  } else {
    for (std::size_t r = 0; r < g; ++r) {
      plan.execute_one(field + (y0 + r), static_cast<std::ptrdiff_t>(ny), dst + r * rows_out,
                       1, work);
    }
  }
}

// Inverse of the above: y-major rows at src (packed rows_in apart) are
// transformed and scattered into columns [y0, y0+g) of `field`.
// `slab_out` needs cols*rows_out elements on the transposed schedule.
void x_rows_to_slab(const FftPlan& plan, bool transposed, const c32* src, c32* field,
                    std::size_t ny, std::size_t y0, std::size_t g, std::size_t rows_in,
                    std::size_t rows_out, std::span<c32> slab_out, std::span<c32> work) {
  if (transposed) {
    for (std::size_t r = 0; r < g; ++r) {
      plan.execute_one(src + r * rows_in, 1, slab_out.data() + r * rows_out, 1, work);
    }
    simd::transpose(slab_out.data(), rows_out, field + y0, ny, g, rows_out);
  } else {
    for (std::size_t r = 0; r < g; ++r) {
      plan.execute_one(src + r * rows_in, 1, field + (y0 + r),
                       static_cast<std::ptrdiff_t>(ny), work);
    }
  }
}

}  // namespace

bool fft2d_transpose_enabled() noexcept {
  const int ov = g_transpose_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  static const bool from_env = runtime::env_long("TURBOFNO_FFT2D_TRANSPOSE", 1) != 0;
  return from_env;
}

void set_fft2d_transpose(bool enabled) noexcept {
  g_transpose_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool fused_mid_enabled() noexcept {
  const int ov = g_fused_mid_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  static const bool from_env = runtime::env_long("TURBOFNO_FUSED_MID", 1) != 0;
  return from_env;
}

void set_fused_mid(bool enabled) noexcept {
  g_fused_mid_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void fft2d_x_stage(const FftPlan& plan, const c32* in, c32* out, std::size_t fields,
                   std::size_t ny) {
  if (fields == 0 || ny == 0) return;
  const std::size_t rows_in = plan.desc().nonzero_or_n();
  const std::size_t rows_out = plan.desc().keep_or_n();

  if (!fft2d_transpose_enabled()) {
    // Legacy schedule: one strided transform per (field, y column).
    runtime::parallel_for(0, fields * ny, 64, [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
      const std::span<c32> work = arena.alloc<c32>(plan.scratch_elems());
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t f = i / ny;
        const std::size_t y = i % ny;
        plan.execute_one(in + f * rows_in * ny + y, static_cast<std::ptrdiff_t>(ny),
                         out + f * rows_out * ny + y, static_cast<std::ptrdiff_t>(ny),
                         work);
      }
      // tfno-hot-end
    });
    return;
  }

  // Transpose-based schedule: per task, gather a column slab into row-major
  // scratch, transform contiguous rows, and transpose back only the rows the
  // plan actually produces (keep_x on forward; on inverse the input slab is
  // just the nonzero prefix and the transform scatters the zero-padded
  // columns itself).
  const SlabGrid grid = slab_grid(ny);
  runtime::parallel_for(0, fields * grid.slabs_per_field, grid.grain,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    const std::span<c32> slab_in = arena.alloc<c32>(grid.cols * rows_in);
    const std::span<c32> slab_out = arena.alloc<c32>(grid.cols * rows_out);
    const std::span<c32> work = arena.alloc<c32>(plan.scratch_elems());
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t f = t / grid.slabs_per_field;
      const std::size_t y0 = (t % grid.slabs_per_field) * grid.cols;
      const std::size_t g = std::min(grid.cols, ny - y0);
      x_slab_to_rows(plan, true, in + f * rows_in * ny, ny, y0, g, rows_in, rows_out,
                     slab_out.data(), slab_in, work);
      simd::transpose(slab_out.data(), rows_out, out + f * rows_out * ny + y0, ny, g,
                      rows_out);
    }
    // tfno-hot-end
  });
}

void fft2d_x_stage_to_tiles(const FftPlan& plan, const c32* in, std::size_t fields,
                            std::size_t ny, const XStageTileDst& dst) {
  if (fields == 0 || ny == 0) return;
  const std::size_t rows_in = plan.desc().nonzero_or_n();
  const std::size_t rows_out = plan.desc().keep_or_n();
  const bool transposed = fft2d_transpose_enabled();
  const SlabGrid grid = slab_grid(ny);

  runtime::parallel_for(0, fields * grid.slabs_per_field, grid.grain,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    // The slab gather buffer is only needed on the transpose schedule; the
    // per-column schedule gathers inside execute_one.  Either way there is
    // no slab_out: transformed rows land straight in the caller's block.
    const std::span<c32> slab_in =
        transposed ? arena.alloc<c32>(grid.cols * rows_in) : std::span<c32>{};
    const std::span<c32> work = arena.alloc<c32>(plan.scratch_elems());
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t f = t / grid.slabs_per_field;
      const std::size_t y0 = (t % grid.slabs_per_field) * grid.cols;
      const std::size_t g = std::min(grid.cols, ny - y0);
      x_slab_to_rows(plan, transposed, in + f * rows_in * ny, ny, y0, g, rows_in, rows_out,
                     dst(f, y0, g), slab_in, work);
    }
    // tfno-hot-end
  });
}

void fft2d_x_stage_from_tiles(const FftPlan& plan, const XStageTileSrc& src, c32* out,
                              std::size_t fields, std::size_t ny) {
  if (fields == 0 || ny == 0) return;
  const std::size_t rows_in = plan.desc().nonzero_or_n();
  const std::size_t rows_out = plan.desc().keep_or_n();
  const bool transposed = fft2d_transpose_enabled();
  const SlabGrid grid = slab_grid(ny);

  runtime::parallel_for(0, fields * grid.slabs_per_field, grid.grain,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    const std::span<c32> slab_out =
        transposed ? arena.alloc<c32>(grid.cols * rows_out) : std::span<c32>{};
    const std::span<c32> work = arena.alloc<c32>(plan.scratch_elems());
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t f = t / grid.slabs_per_field;
      const std::size_t y0 = (t % grid.slabs_per_field) * grid.cols;
      const std::size_t g = std::min(grid.cols, ny - y0);
      x_rows_to_slab(plan, transposed, src(f, y0, g), out + f * rows_out * ny, ny, y0, g,
                     rows_in, rows_out, slab_out, work);
    }
    // tfno-hot-end
  });
}

FftPlan2d::FftPlan2d(Plan2dDesc desc)
    : desc_(validated_2d(desc)), along_x_(make_x_desc(desc_)), along_y_(make_y_desc(desc_)) {}

std::size_t FftPlan2d::in_field_elems() const noexcept {
  return desc_.dir == Direction::Forward ? desc_.nx * desc_.ny
                                         : desc_.keep_x_or_nx() * desc_.keep_y_or_ny();
}

std::size_t FftPlan2d::out_field_elems() const noexcept {
  return desc_.dir == Direction::Forward ? desc_.keep_x_or_nx() * desc_.keep_y_or_ny()
                                         : desc_.nx * desc_.ny;
}

std::uint64_t FftPlan2d::flops_per_field() const noexcept {
  if (desc_.dir == Direction::Forward) {
    // Stage 1 along X: ny columns; stage 2 along Y: keep_x rows.
    return along_x_.flops_per_signal() * desc_.ny +
           along_y_.flops_per_signal() * desc_.keep_x_or_nx();
  }
  // Inverse: stage 1 along Y on keep_x rows, stage 2 along X on ny columns.
  return along_y_.flops_per_signal() * desc_.keep_x_or_nx() +
         along_x_.flops_per_signal() * desc_.ny;
}

void FftPlan2d::execute_fused(std::span<const c32> in, std::span<c32> out,
                              std::size_t batch) const {
  // Fused middle stage: one task per field keeps that field's X spectra in a
  // y-major arena tile ([ny, kx], row y holds the kx surviving X modes of
  // column y) and runs the Y stage straight out of / into it.  The x-major
  // [kx, ny] intermediate of the unfused path never exists, and the second
  // transpose of the X stage disappears; the Y stage pays strided (stride
  // kx) gathers instead, against scratch that stays cache-resident.
  // Bitwise-identical to the unfused path: every 1D transform still gathers
  // the same values into the same contiguous work buffer.
  const std::size_t ny = desc_.ny;
  const std::size_t kx = desc_.keep_x_or_nx();
  const std::size_t in_f = in_field_elems();
  const std::size_t out_f = out_field_elems();
  const bool transposed = fft2d_transpose_enabled();
  const SlabGrid grid = slab_grid(ny);
  const std::size_t work_elems =
      std::max(along_x_.scratch_elems(), along_y_.scratch_elems());
  const std::size_t y_in_len = along_y_.desc().nonzero_or_n();
  const std::size_t y_out_len = along_y_.desc().keep_or_n();

  runtime::parallel_for(0, batch, 1, [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    const std::span<c32> staging = arena.alloc<c32>(ny * kx);
    const std::span<c32> slab =
        transposed ? arena.alloc<c32>(grid.cols * desc_.nx) : std::span<c32>{};
    const std::span<c32> work = arena.alloc<c32>(work_elems);

    for (std::size_t f = lo; f < hi; ++f) {
      if (desc_.dir == Direction::Forward) {
        // X stage into the y-major tile, slab by slab (serial within the
        // task; parallelism comes from the field loop).
        const c32* field = in.data() + f * in_f;
        for (std::size_t y0 = 0; y0 < ny; y0 += grid.cols) {
          const std::size_t g = std::min(grid.cols, ny - y0);
          x_slab_to_rows(along_x_, transposed, field, ny, y0, g, desc_.nx, kx,
                         staging.data() + y0 * kx, slab, work);
        }
        // Y stage: row x of the output gathers column x of the tile.
        for (std::size_t x = 0; x < kx; ++x) {
          along_y_.execute_one(staging.data() + x, static_cast<std::ptrdiff_t>(kx),
                               out.data() + f * out_f + x * y_out_len, 1, work);
        }
      } else {
        // Inverse: Y stage scatters into the y-major tile, then the X stage
        // consumes tile rows directly (no gather transpose).
        for (std::size_t x = 0; x < kx; ++x) {
          along_y_.execute_one(in.data() + f * in_f + x * y_in_len, 1,
                               staging.data() + x, static_cast<std::ptrdiff_t>(kx), work);
        }
        c32* field = out.data() + f * out_f;
        for (std::size_t y0 = 0; y0 < ny; y0 += grid.cols) {
          const std::size_t g = std::min(grid.cols, ny - y0);
          x_rows_to_slab(along_x_, transposed, staging.data() + y0 * kx, field, ny, y0, g,
                         kx, desc_.nx, slab, work);
        }
      }
    }
    // tfno-hot-end
  });
}

void FftPlan2d::execute(std::span<const c32> in, std::span<c32> out, std::size_t batch) const {
  const std::size_t ny = desc_.ny;
  const std::size_t kx = desc_.keep_x_or_nx();
  if (in.size() < batch * in_field_elems() || out.size() < batch * out_field_elems()) {
    throw std::invalid_argument("FftPlan2d::execute: spans too small for batch");
  }
  if (batch == 0) return;

  // The fused middle parallelizes across fields only, so it also needs
  // enough fields to feed the worker pool; small batches keep the unfused
  // schedule, whose fields*slabs / per-row loops split further (the two are
  // bitwise-identical, so this is purely a scheduling choice).
  if (fused_mid_enabled() && ny * kx * sizeof(c32) <= kFusedFieldBudgetBytes &&
      batch >= static_cast<std::size_t>(runtime::thread_count())) {
    execute_fused(in, out, batch);
    return;
  }

  // Intermediate between the stages: [keep_x, ny] per field.  One heap
  // allocation per execute call (amortized over a whole 2D transform) —
  // deliberately NOT arena-held: the grow-only thread-local arena would
  // retain this O(batch * kx * ny) block per calling thread forever.  The
  // per-chunk hot-loop buffers below do come from the arena.  (The default
  // fused-middle path above avoids this block entirely.)
  AlignedBuffer<c32> mid(batch * kx * ny);

  // Y stage: contiguous transforms over the batch * keep_x surviving rows.
  // Explicit grain of 16 rows per chunk — FftPlan::execute's 64k-element
  // grain policy would put all rows of a typical (keep_x * batch) count in
  // one chunk and serialize the stage on many-core hosts.
  const auto y_stage = [&](const c32* src, c32* dst) {
    const std::size_t in_len = along_y_.desc().nonzero_or_n();
    const std::size_t out_len = along_y_.desc().keep_or_n();
    runtime::parallel_for(0, batch * kx, 16, [&](std::size_t lo, std::size_t hi) {
      auto& a = runtime::tls_scratch();
      const auto s = a.scope();
      const std::span<c32> work = a.alloc<c32>(along_y_.scratch_elems());
      for (std::size_t r = lo; r < hi; ++r) {
        along_y_.execute_one(src + r * in_len, 1, dst + r * out_len, 1, work);
      }
    });
  };

  if (desc_.dir == Direction::Forward) {
    fft2d_x_stage(along_x_, in.data(), mid.data(), batch, ny);
    y_stage(mid.data(), out.data());
    return;
  }
  // Inverse: stage 1 along Y (zero-padded ky -> ny) on keep_x rows, then
  // stage 2 along X (zero-padded kx -> nx) over all ny columns.
  y_stage(in.data(), mid.data());
  fft2d_x_stage(along_x_, mid.data(), out.data(), batch, ny);
}

}  // namespace turbofno::fft
