#include "fft/fft2d.hpp"

#include <stdexcept>

#include "runtime/parallel.hpp"
#include "tensor/aligned_buffer.hpp"

namespace turbofno::fft {

namespace {

PlanDesc make_x_desc(const Plan2dDesc& d) {
  PlanDesc p;
  p.n = d.nx;
  p.dir = d.dir;
  p.scale_inverse = d.scale_inverse;
  if (d.dir == Direction::Forward) {
    p.keep = d.keep_x_or_nx();
    p.nonzero = d.nx;
  } else {
    p.keep = d.nx;
    p.nonzero = d.keep_x_or_nx();
  }
  return p;
}

PlanDesc make_y_desc(const Plan2dDesc& d) {
  PlanDesc p;
  p.n = d.ny;
  p.dir = d.dir;
  p.scale_inverse = d.scale_inverse;
  if (d.dir == Direction::Forward) {
    p.keep = d.keep_y_or_ny();
    p.nonzero = d.ny;
  } else {
    p.keep = d.ny;
    p.nonzero = d.keep_y_or_ny();
  }
  return p;
}

}  // namespace

FftPlan2d::FftPlan2d(Plan2dDesc desc)
    : desc_(desc), along_x_(make_x_desc(desc)), along_y_(make_y_desc(desc)) {
  if (desc_.keep_x > desc_.nx || desc_.keep_y > desc_.ny) {
    throw std::invalid_argument("FftPlan2d: keep exceeds dimension");
  }
}

std::size_t FftPlan2d::in_field_elems() const noexcept {
  return desc_.dir == Direction::Forward ? desc_.nx * desc_.ny
                                         : desc_.keep_x_or_nx() * desc_.keep_y_or_ny();
}

std::size_t FftPlan2d::out_field_elems() const noexcept {
  return desc_.dir == Direction::Forward ? desc_.keep_x_or_nx() * desc_.keep_y_or_ny()
                                         : desc_.nx * desc_.ny;
}

std::uint64_t FftPlan2d::flops_per_field() const noexcept {
  if (desc_.dir == Direction::Forward) {
    // Stage 1 along X: ny columns; stage 2 along Y: keep_x rows.
    return along_x_.flops_per_signal() * desc_.ny +
           along_y_.flops_per_signal() * desc_.keep_x_or_nx();
  }
  // Inverse: stage 1 along Y on keep_x rows, stage 2 along X on ny columns.
  return along_y_.flops_per_signal() * desc_.keep_x_or_nx() +
         along_x_.flops_per_signal() * desc_.ny;
}

void FftPlan2d::execute(std::span<const c32> in, std::span<c32> out, std::size_t batch) const {
  const std::size_t nx = desc_.nx;
  const std::size_t ny = desc_.ny;
  const std::size_t kx = desc_.keep_x_or_nx();
  const std::size_t ky = desc_.keep_y_or_ny();
  if (in.size() < batch * in_field_elems() || out.size() < batch * out_field_elems()) {
    throw std::invalid_argument("FftPlan2d::execute: spans too small for batch");
  }

  if (desc_.dir == Direction::Forward) {
    // Intermediate after the X stage: [keep_x, ny] per field.
    AlignedBuffer<c32> mid(batch * kx * ny);
    // Stage 1: FFT along X, one strided transform per (field, y column).
    runtime::parallel_for(0, batch * ny, 64, [&](std::size_t lo, std::size_t hi) {
      AlignedBuffer<c32> work(2 * nx);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t b = i / ny;
        const std::size_t y = i % ny;
        along_x_.execute_one(in.data() + b * nx * ny + y, static_cast<std::ptrdiff_t>(ny),
                             mid.data() + b * kx * ny + y, static_cast<std::ptrdiff_t>(ny),
                             work.span());
      }
    });
    // Stage 2: FFT along Y on the surviving rows (contiguous).
    runtime::parallel_for(0, batch * kx, 16, [&](std::size_t lo, std::size_t hi) {
      AlignedBuffer<c32> work(2 * ny);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t b = i / kx;
        const std::size_t x = i % kx;
        along_y_.execute_one(mid.data() + (b * kx + x) * ny, 1,
                             out.data() + (b * kx + x) * ky, 1, work.span());
      }
    });
    return;
  }

  // Inverse: stage 1 along Y (zero-padded ky -> ny) on keep_x rows, then
  // stage 2 along X (zero-padded kx -> nx) over all ny columns.
  AlignedBuffer<c32> mid(batch * kx * ny);
  runtime::parallel_for(0, batch * kx, 16, [&](std::size_t lo, std::size_t hi) {
    AlignedBuffer<c32> work(2 * ny);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t b = i / kx;
      const std::size_t x = i % kx;
      along_y_.execute_one(in.data() + (b * kx + x) * ky, 1, mid.data() + (b * kx + x) * ny, 1,
                           work.span());
    }
  });
  runtime::parallel_for(0, batch * ny, 64, [&](std::size_t lo, std::size_t hi) {
    AlignedBuffer<c32> work(2 * nx);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t b = i / ny;
      const std::size_t y = i % ny;
      along_x_.execute_one(mid.data() + b * kx * ny + y, static_cast<std::ptrdiff_t>(ny),
                           out.data() + b * nx * ny + y, static_cast<std::ptrdiff_t>(ny),
                           work.span());
    }
  });
}

}  // namespace turbofno::fft
