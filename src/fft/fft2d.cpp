#include "fft/fft2d.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "runtime/env.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "tensor/aligned_buffer.hpp"
#include "tensor/transpose.hpp"

namespace turbofno::fft {

namespace {

PlanDesc make_x_desc(const Plan2dDesc& d) {
  PlanDesc p;
  p.n = d.nx;
  p.dir = d.dir;
  p.scale_inverse = d.scale_inverse;
  if (d.dir == Direction::Forward) {
    p.keep = d.keep_x_or_nx();
    p.nonzero = d.nx;
  } else {
    p.keep = d.nx;
    p.nonzero = d.keep_x_or_nx();
  }
  return p;
}

PlanDesc make_y_desc(const Plan2dDesc& d) {
  PlanDesc p;
  p.n = d.ny;
  p.dir = d.dir;
  p.scale_inverse = d.scale_inverse;
  if (d.dir == Direction::Forward) {
    p.keep = d.keep_y_or_ny();
    p.nonzero = d.ny;
  } else {
    p.keep = d.ny;
    p.nonzero = d.keep_y_or_ny();
  }
  return p;
}

// Columns gathered per transpose slab: 16 complexes = two cache lines per
// field row, so the gather side of the transpose consumes whole lines, and
// a slab of 16 rows x nx=1024 stays within 128 KiB of scratch.
constexpr std::size_t kSlabCols = 16;

std::atomic<int> g_transpose_override{-1};

}  // namespace

bool fft2d_transpose_enabled() noexcept {
  const int ov = g_transpose_override.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  static const bool from_env = runtime::env_long("TURBOFNO_FFT2D_TRANSPOSE", 1) != 0;
  return from_env;
}

void set_fft2d_transpose(bool enabled) noexcept {
  g_transpose_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void fft2d_x_stage(const FftPlan& plan, const c32* in, c32* out, std::size_t fields,
                   std::size_t ny) {
  const std::size_t rows_in = plan.desc().nonzero_or_n();
  const std::size_t rows_out = plan.desc().keep_or_n();

  if (!fft2d_transpose_enabled()) {
    // Legacy schedule: one strided transform per (field, y column).
    runtime::parallel_for(0, fields * ny, 64, [&](std::size_t lo, std::size_t hi) {
      auto& arena = runtime::tls_scratch();
      const auto scope = arena.scope();
      const std::span<c32> work = arena.alloc<c32>(plan.scratch_elems());
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t f = i / ny;
        const std::size_t y = i % ny;
        plan.execute_one(in + f * rows_in * ny + y, static_cast<std::ptrdiff_t>(ny),
                         out + f * rows_out * ny + y, static_cast<std::ptrdiff_t>(ny),
                         work);
      }
    });
    return;
  }

  // Transpose-based schedule: per task, gather a column slab into row-major
  // scratch, transform contiguous rows, and transpose back only the rows the
  // plan actually produces (keep_x on forward; on inverse the input slab is
  // just the nonzero prefix and the transform scatters the zero-padded
  // columns itself).
  const std::size_t cols = std::min<std::size_t>(kSlabCols, ny);
  const std::size_t tasks_per_field = (ny + cols - 1) / cols;
  const std::size_t grain = std::max<std::size_t>(1, 64 / cols);
  runtime::parallel_for(0, fields * tasks_per_field, grain,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    const std::span<c32> slab_in = arena.alloc<c32>(cols * rows_in);
    const std::span<c32> slab_out = arena.alloc<c32>(cols * rows_out);
    const std::span<c32> work = arena.alloc<c32>(plan.scratch_elems());
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t f = t / tasks_per_field;
      const std::size_t y0 = (t % tasks_per_field) * cols;
      const std::size_t g = std::min(cols, ny - y0);
      simd::transpose(in + f * rows_in * ny + y0, ny, slab_in.data(), rows_in, rows_in, g);
      for (std::size_t r = 0; r < g; ++r) {
        plan.execute_one(slab_in.data() + r * rows_in, 1, slab_out.data() + r * rows_out, 1,
                         work);
      }
      simd::transpose(slab_out.data(), rows_out, out + f * rows_out * ny + y0, ny, g,
                      rows_out);
    }
  });
}

FftPlan2d::FftPlan2d(Plan2dDesc desc)
    : desc_(desc), along_x_(make_x_desc(desc)), along_y_(make_y_desc(desc)) {
  if (desc_.keep_x > desc_.nx || desc_.keep_y > desc_.ny) {
    throw std::invalid_argument("FftPlan2d: keep exceeds dimension");
  }
}

std::size_t FftPlan2d::in_field_elems() const noexcept {
  return desc_.dir == Direction::Forward ? desc_.nx * desc_.ny
                                         : desc_.keep_x_or_nx() * desc_.keep_y_or_ny();
}

std::size_t FftPlan2d::out_field_elems() const noexcept {
  return desc_.dir == Direction::Forward ? desc_.keep_x_or_nx() * desc_.keep_y_or_ny()
                                         : desc_.nx * desc_.ny;
}

std::uint64_t FftPlan2d::flops_per_field() const noexcept {
  if (desc_.dir == Direction::Forward) {
    // Stage 1 along X: ny columns; stage 2 along Y: keep_x rows.
    return along_x_.flops_per_signal() * desc_.ny +
           along_y_.flops_per_signal() * desc_.keep_x_or_nx();
  }
  // Inverse: stage 1 along Y on keep_x rows, stage 2 along X on ny columns.
  return along_y_.flops_per_signal() * desc_.keep_x_or_nx() +
         along_x_.flops_per_signal() * desc_.ny;
}

void FftPlan2d::execute(std::span<const c32> in, std::span<c32> out, std::size_t batch) const {
  const std::size_t ny = desc_.ny;
  const std::size_t kx = desc_.keep_x_or_nx();
  if (in.size() < batch * in_field_elems() || out.size() < batch * out_field_elems()) {
    throw std::invalid_argument("FftPlan2d::execute: spans too small for batch");
  }

  // Intermediate between the stages: [keep_x, ny] per field.  One heap
  // allocation per execute call (amortized over a whole 2D transform) —
  // deliberately NOT arena-held: the grow-only thread-local arena would
  // retain this O(batch * kx * ny) block per calling thread forever.  The
  // per-chunk hot-loop buffers below do come from the arena.
  AlignedBuffer<c32> mid(batch * kx * ny);

  // Y stage: contiguous transforms over the batch * keep_x surviving rows.
  // Explicit grain of 16 rows per chunk — FftPlan::execute's 64k-element
  // grain policy would put all rows of a typical (keep_x * batch) count in
  // one chunk and serialize the stage on many-core hosts.
  const auto y_stage = [&](const c32* src, c32* dst) {
    const std::size_t in_len = along_y_.desc().nonzero_or_n();
    const std::size_t out_len = along_y_.desc().keep_or_n();
    runtime::parallel_for(0, batch * kx, 16, [&](std::size_t lo, std::size_t hi) {
      auto& a = runtime::tls_scratch();
      const auto s = a.scope();
      const std::span<c32> work = a.alloc<c32>(along_y_.scratch_elems());
      for (std::size_t r = lo; r < hi; ++r) {
        along_y_.execute_one(src + r * in_len, 1, dst + r * out_len, 1, work);
      }
    });
  };

  if (desc_.dir == Direction::Forward) {
    fft2d_x_stage(along_x_, in.data(), mid.data(), batch, ny);
    y_stage(mid.data(), out.data());
    return;
  }
  // Inverse: stage 1 along Y (zero-padded ky -> ny) on keep_x rows, then
  // stage 2 along X (zero-padded kx -> nx) over all ny columns.
  y_stage(in.data(), mid.data());
  fft2d_x_stage(along_x_, mid.data(), out.data(), batch, ny);
}

}  // namespace turbofno::fft
