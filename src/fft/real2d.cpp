#include "fft/real2d.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "fft/plan_cache.hpp"
#include "fft/twiddle.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fft {

namespace {

void check_real2d(std::size_t nx, std::size_t ny, std::size_t stored) {
  if (nx < 4 || !is_pow2(nx) || !is_pow2(ny)) {
    throw std::invalid_argument("real 2D X stage: nx must be a power of two >= 4, ny >= 2");
  }
  if (stored == 0 || stored > nx / 2 + 1) {
    throw std::invalid_argument("real 2D X stage: keep_x/nonzero_x out of [1, nx/2+1]");
  }
}

// Column pairs gathered per task: matches fft2d.cpp's 16-column slabs (8
// pairs), so tile resolvers see the same y0 granularity either way.
constexpr std::size_t kSlabCols = 16;

struct PairGrid {
  std::size_t cols = 0;             // columns per slab (even)
  std::size_t slabs_per_field = 0;  // ceil(ny / cols)
  std::size_t grain = 0;
};

PairGrid pair_grid(std::size_t ny) noexcept {
  PairGrid g;
  g.cols = std::min<std::size_t>(kSlabCols, ny);  // ny is a power of two => even
  g.slabs_per_field = (ny + g.cols - 1) / g.cols;
  g.grain = std::max<std::size_t>(1, 64 / g.cols);
  return g;
}

// Untangle the packed-pair spectrum Z (full nx bins) into the first `keep`
// bins of the even column's spectrum A and the odd column's spectrum B
// (both rows contiguous).  Same lane pattern as the 1D RfftPlan untangle:
// the conjugate-mirror operand descends, so it is one contiguous load
// reversed in-register.
void untangle_pair(const c32* Z, std::size_t nx, std::size_t keep, c32* A, c32* B) {
  using B_ = simd::Active;
  A[0] = c32{Z[0].re, 0.0f};
  B[0] = c32{Z[0].im, 0.0f};
  assert(A[0].im == 0.0f && B[0].im == 0.0f);
  const std::size_t lim = std::min(keep, nx / 2);
  std::size_t k = 1;
  constexpr std::size_t P = B_::planes;
  for (; k + P <= lim; k += P) {
    const auto zk = B_::pload(Z + k);
    const auto zm = B_::pconj(B_::preverse(B_::pload(Z + (nx - k - (P - 1)))));
    B_::pstore(A + k, B_::pscale(B_::padd(zk, zm), 0.5f));
    B_::pstore(B + k, B_::pmul_neg_i(B_::pscale(B_::psub(zk, zm), 0.5f)));
  }
  for (; k < lim; ++k) {
    const c32 zk = Z[k];
    const c32 zm = conj(Z[nx - k]);
    A[k] = 0.5f * (zk + zm);
    B[k] = mul_neg_i(0.5f * (zk - zm));
  }
  if (keep == nx / 2 + 1) {
    // Nyquist: its own mirror, so the formulas collapse to the lanes of
    // Z[nx/2] — real by construction for real input columns.
    A[nx / 2] = c32{Z[nx / 2].re, 0.0f};
    B[nx / 2] = c32{Z[nx / 2].im, 0.0f};
  }
}

// Rebuild the packed full spectrum Z (nx bins) from the two stored
// `stored`-bin prefixes: Hermitian-extend each column's half-spectrum
// (projecting DC — and Nyquist, when stored — real) and recombine as
// Z = A_ext + i * B_ext.
void retangle_pair(const c32* A, const c32* B, std::size_t nx, std::size_t stored, c32* Z) {
  using B_ = simd::Active;
  const std::size_t lim = std::min(stored, nx / 2);
  // Bins with no stored source (truncation zero padding).
  for (std::size_t k = lim; k < nx - lim + 1; ++k) Z[k] = c32{};
  Z[0] = c32{A[0].re, B[0].re};  // Im projected away
  std::size_t k = 1;
  constexpr std::size_t P = B_::planes;
  for (; k + P <= lim; k += P) {
    const auto a = B_::pload(A + k);
    const auto b = B_::pload(B + k);
    B_::pstore(Z + k, B_::padd(a, B_::pmul_pos_i(b)));
    const auto m = B_::padd(B_::pconj(a), B_::pmul_pos_i(B_::pconj(b)));
    B_::pstore(Z + (nx - k - (P - 1)), B_::preverse(m));
  }
  for (; k < lim; ++k) {
    const c32 a = A[k];
    const c32 b = B[k];
    Z[k] = a + mul_pos_i(b);
    Z[nx - k] = conj(a) + mul_pos_i(conj(b));
  }
  if (stored == nx / 2 + 1) {
    Z[nx / 2] = c32{A[nx / 2].re, B[nx / 2].re};  // Im projected away
  }
}

}  // namespace

void rfft2d_x_stage_to_tiles(std::size_t nx, std::size_t keep_x, const float* in,
                             std::size_t fields, std::size_t ny, const XStageTileDst& dst) {
  check_real2d(nx, ny, keep_x);
  if (fields == 0 || ny == 0) return;
  const auto plan = acquire_plan({nx, Direction::Forward});
  const PairGrid grid = pair_grid(ny);

  runtime::parallel_for(0, fields * grid.slabs_per_field, grid.grain,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    const std::span<c32> Z = arena.alloc<c32>(nx);
    const std::span<c32> work = arena.alloc<c32>(plan->scratch_elems());
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t f = t / grid.slabs_per_field;
      const std::size_t y0 = (t % grid.slabs_per_field) * grid.cols;
      const std::size_t g = std::min(grid.cols, ny - y0);
      const float* field = in + f * nx * ny;
      c32* block = dst(f, y0, g);
      for (std::size_t p = 0; p < g / 2; ++p) {
        // Columns (y0+2p, y0+2p+1) are the re/im lanes of one strided c32
        // column of the float field (two adjacent floats per row).
        const c32* col = reinterpret_cast<const c32*>(field + (y0 + 2 * p));
        plan->execute_one(col, static_cast<std::ptrdiff_t>(ny / 2), Z.data(), 1, work);
        untangle_pair(Z.data(), nx, keep_x, block + (2 * p) * keep_x,
                      block + (2 * p + 1) * keep_x);
      }
    }
  });
}

void irfft2d_x_stage_from_tiles(std::size_t nx, std::size_t nonzero_x,
                                const XStageTileSrc& src, float* out, std::size_t fields,
                                std::size_t ny) {
  check_real2d(nx, ny, nonzero_x);
  if (fields == 0 || ny == 0) return;
  const auto plan = acquire_plan({nx, Direction::Inverse});
  const PairGrid grid = pair_grid(ny);

  runtime::parallel_for(0, fields * grid.slabs_per_field, grid.grain,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    const std::span<c32> Z = arena.alloc<c32>(nx);
    const std::span<c32> work = arena.alloc<c32>(plan->scratch_elems());
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t f = t / grid.slabs_per_field;
      const std::size_t y0 = (t % grid.slabs_per_field) * grid.cols;
      const std::size_t g = std::min(grid.cols, ny - y0);
      float* field = out + f * nx * ny;
      const c32* block = src(f, y0, g);
      for (std::size_t p = 0; p < g / 2; ++p) {
        retangle_pair(block + (2 * p) * nonzero_x, block + (2 * p + 1) * nonzero_x, nx,
                      nonzero_x, Z.data());
        // The inverse transform scatters both real columns at once: output
        // element x is {col_even[x], col_odd[x]} == the adjacent float pair.
        c32* col = reinterpret_cast<c32*>(field + (y0 + 2 * p));
        plan->execute_one(Z.data(), 1, col, static_cast<std::ptrdiff_t>(ny / 2), work);
      }
    }
  });
}

void rfft2d_x_stage(std::size_t nx, std::size_t keep_x, const float* in, c32* out,
                    std::size_t fields, std::size_t ny) {
  check_real2d(nx, ny, keep_x);
  if (fields == 0 || ny == 0) return;
  const auto plan = acquire_plan({nx, Direction::Forward});
  const PairGrid grid = pair_grid(ny);

  runtime::parallel_for(0, fields * grid.slabs_per_field, grid.grain,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    const std::span<c32> Z = arena.alloc<c32>(nx);
    const std::span<c32> rows = arena.alloc<c32>(2 * keep_x);
    const std::span<c32> work = arena.alloc<c32>(plan->scratch_elems());
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t f = t / grid.slabs_per_field;
      const std::size_t y0 = (t % grid.slabs_per_field) * grid.cols;
      const std::size_t g = std::min(grid.cols, ny - y0);
      const float* field = in + f * nx * ny;
      c32* spec = out + f * keep_x * ny;
      for (std::size_t p = 0; p < g / 2; ++p) {
        const std::size_t y = y0 + 2 * p;
        const c32* col = reinterpret_cast<const c32*>(field + y);
        plan->execute_one(col, static_cast<std::ptrdiff_t>(ny / 2), Z.data(), 1, work);
        untangle_pair(Z.data(), nx, keep_x, rows.data(), rows.data() + keep_x);
        // Scatter the two columns into the x-major spectrum: adjacent c32
        // per row, one pair-write per kept bin.
        for (std::size_t k = 0; k < keep_x; ++k) {
          spec[k * ny + y] = rows[k];
          spec[k * ny + y + 1] = rows[keep_x + k];
        }
      }
    }
  });
}

void irfft2d_x_stage(std::size_t nx, std::size_t nonzero_x, const c32* in, float* out,
                     std::size_t fields, std::size_t ny) {
  check_real2d(nx, ny, nonzero_x);
  if (fields == 0 || ny == 0) return;
  const auto plan = acquire_plan({nx, Direction::Inverse});
  const PairGrid grid = pair_grid(ny);

  runtime::parallel_for(0, fields * grid.slabs_per_field, grid.grain,
                        [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    const std::span<c32> Z = arena.alloc<c32>(nx);
    const std::span<c32> rows = arena.alloc<c32>(2 * nonzero_x);
    const std::span<c32> work = arena.alloc<c32>(plan->scratch_elems());
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t f = t / grid.slabs_per_field;
      const std::size_t y0 = (t % grid.slabs_per_field) * grid.cols;
      const std::size_t g = std::min(grid.cols, ny - y0);
      const c32* spec = in + f * nonzero_x * ny;
      float* field = out + f * nx * ny;
      for (std::size_t p = 0; p < g / 2; ++p) {
        const std::size_t y = y0 + 2 * p;
        for (std::size_t k = 0; k < nonzero_x; ++k) {
          rows[k] = spec[k * ny + y];
          rows[nonzero_x + k] = spec[k * ny + y + 1];
        }
        retangle_pair(rows.data(), rows.data() + nonzero_x, nx, nonzero_x, Z.data());
        c32* col = reinterpret_cast<c32*>(field + y);
        plan->execute_one(Z.data(), 1, col, static_cast<std::ptrdiff_t>(ny / 2), work);
      }
    }
  });
}

}  // namespace turbofno::fft
