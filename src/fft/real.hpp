// Real-input transforms (R2C / C2R) — a library extension beyond the paper.
//
// The paper's kernels are C2C with first-m truncation; canonical FNO uses
// rfft with a conjugate-symmetric half-spectrum.  These plans provide that
// formulation via the classic pack-into-half-size-complex trick: an n-point
// real transform costs one n/2-point complex FFT plus an O(n) untangle.
//
// Spectrum convention: forward produces bins 0..n/2 (n/2 + 1 entries); the
// inverse consumes a (possibly truncated) prefix of such a half-spectrum and
// treats missing bins as zero, mirroring the built-in zero padding of the
// complex plans.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/complex.hpp"

namespace turbofno::fft {

/// Forward R2C: n real samples -> the first `keep` of n/2+1 spectrum bins.
class RfftPlan {
 public:
  /// `keep == 0` means all n/2+1 bins.  n must be a power of two >= 4.
  explicit RfftPlan(std::size_t n, std::size_t keep = 0);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t keep() const noexcept { return keep_; }

  /// Batched: `in` holds batch x n floats, `out` receives batch x keep bins.
  void execute(std::span<const float> in, std::span<c32> out, std::size_t batch) const;

 private:
  std::size_t n_;
  std::size_t keep_;
};

/// Inverse C2R: a stored prefix of a conjugate-symmetric half-spectrum ->
/// n real samples.  Bins [nonzero, n/2] are implicit zeros.
class IrfftPlan {
 public:
  /// `nonzero == 0` means the full n/2+1 bins are stored.
  /// Precondition for exact reconstruction: bins 0 and n/2 (when stored)
  /// have zero imaginary part, as produced by RfftPlan.
  explicit IrfftPlan(std::size_t n, std::size_t nonzero = 0);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t nonzero() const noexcept { return nonzero_; }

  /// Batched: `in` holds batch x nonzero bins, `out` batch x n floats.
  void execute(std::span<const c32> in, std::span<float> out, std::size_t batch) const;

 private:
  std::size_t n_;
  std::size_t nonzero_;
};

}  // namespace turbofno::fft
