// Real-input transforms (R2C / C2R) — a library extension beyond the paper.
//
// The paper's kernels are C2C with first-m truncation; canonical FNO uses
// rfft with a conjugate-symmetric half-spectrum.  These plans provide that
// formulation via the classic pack-into-half-size-complex trick: an n-point
// real transform costs one n/2-point complex FFT plus an O(n) untangle.
//
// Spectrum convention: forward produces bins 0..n/2 (n/2 + 1 entries); the
// inverse consumes a (possibly truncated) prefix of such a half-spectrum and
// treats missing bins as zero, mirroring the built-in zero padding of the
// complex plans.  The inverse computes Re(ifft(hermitian_extend(Y))): the
// imaginary part of bin 0 (and of bin n/2 when stored) is projected away, so
// any stored prefix — not just one produced by RfftPlan — yields a real
// signal, matching torch.fft.irfft semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/complex.hpp"

namespace turbofno::fft {

/// True when the real-input (RFFT-based) spectral schedule is active: model
/// layers whose input field is real route their spectral convolutions
/// through the half-spectrum pipelines instead of the full complex ones.
/// Defaults to the TURBOFNO_REAL_SPECTRAL environment variable (unset means
/// on); the API override below wins over the environment.  The complex
/// schedule remains available as the A/B reference — the two agree to FFT
/// rounding, not bitwise (they evaluate different factorizations).
[[nodiscard]] bool real_spectral_enabled() noexcept;

/// Forces the real-spectral schedule choice at runtime (A/B, tests).
void set_real_spectral(bool enabled) noexcept;

/// Forward R2C: n real samples -> the first `keep` of n/2+1 spectrum bins.
class RfftPlan {
 public:
  /// `keep == 0` means all n/2+1 bins.  n must be a power of two >= 4.
  explicit RfftPlan(std::size_t n, std::size_t keep = 0);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t keep() const noexcept { return keep_; }

  /// Batched: `in` holds batch x n floats, `out` receives batch x keep bins.
  void execute(std::span<const float> in, std::span<c32> out, std::size_t batch) const;

  /// Single strided signal: n floats read at `in_stride` (float units) ->
  /// keep bins written at `out_stride` (c32 units).  `work` must hold at
  /// least scratch_elems() elements; exposed so fused pipelines can keep
  /// tile-resident data and arena scratch, mirroring FftPlan::execute_one.
  void execute_one(const float* in, std::ptrdiff_t in_stride, c32* out,
                   std::ptrdiff_t out_stride, std::span<c32> work) const;

  /// Scratch elements execute_one needs (the packed half-size signal plus
  /// the Stockham ping-pong buffer).
  [[nodiscard]] std::size_t scratch_elems() const noexcept { return n_; }

  /// Real FLOPs per signal (half-size complex FFT + untangle).
  [[nodiscard]] std::uint64_t flops_per_signal() const noexcept { return flops_; }

 private:
  std::size_t n_;
  std::size_t keep_;
  std::span<const c32> w_;  // W_n^k, k < n/2 (process-lifetime twiddle table)
  std::uint64_t flops_ = 0;
};

/// Inverse C2R: a stored prefix of a conjugate-symmetric half-spectrum ->
/// n real samples.  Bins [nonzero, n/2] are implicit zeros.
class IrfftPlan {
 public:
  /// `nonzero == 0` means the full n/2+1 bins are stored.
  explicit IrfftPlan(std::size_t n, std::size_t nonzero = 0);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t nonzero() const noexcept { return nonzero_; }

  /// Batched: `in` holds batch x nonzero bins, `out` batch x n floats.
  void execute(std::span<const c32> in, std::span<float> out, std::size_t batch) const;

  /// Single strided signal: nonzero bins read at `in_stride` (c32 units) ->
  /// n floats written at `out_stride` (float units).  `work` must hold at
  /// least scratch_elems() elements.
  void execute_one(const c32* in, std::ptrdiff_t in_stride, float* out,
                   std::ptrdiff_t out_stride, std::span<c32> work) const;

  /// Scratch elements execute_one needs (padded half-spectrum + retangled
  /// half-size signal + Stockham ping-pong buffer: 3*(n/2)+1, rounded up).
  [[nodiscard]] std::size_t scratch_elems() const noexcept { return 2 * n_; }

  /// Real FLOPs per signal (retangle + half-size complex inverse FFT).
  [[nodiscard]] std::uint64_t flops_per_signal() const noexcept { return flops_; }

 private:
  std::size_t n_;
  std::size_t nonzero_;
  std::span<const c32> wi_;  // conj(W_n^k), k < n/2
  std::uint64_t flops_ = 0;
};

}  // namespace turbofno::fft
