// Twiddle-factor tables shared by all FFT kernels.
//
// For a power-of-two size n the table stores, for every sub-transform length
// L in {2, 4, ..., n}, the segment tw[j] = exp(-2*pi*i*j/L), j < L/2.  The
// segment for length L starts at flat offset L/2 - 1, so the whole table is
// exactly n - 1 entries.  Both the Stockham kernel (which needs
// twiddle(p, 2l)) and the DIF kernel (twiddle(j, L)) index the same storage.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/aligned_buffer.hpp"
#include "tensor/complex.hpp"

namespace turbofno::fft {

class TwiddleTable {
 public:
  explicit TwiddleTable(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Forward twiddles for sub-transform length L: tw[j] = e^{-2 pi i j / L}.
  [[nodiscard]] std::span<const c32> forward(std::size_t L) const noexcept {
    return {fwd_.data() + (L / 2 - 1), L / 2};
  }
  /// Inverse twiddles (conjugates) for sub-transform length L.
  [[nodiscard]] std::span<const c32> inverse(std::size_t L) const noexcept {
    return {inv_.data() + (L / 2 - 1), L / 2};
  }

 private:
  std::size_t n_;
  AlignedBuffer<c32> fwd_;
  AlignedBuffer<c32> inv_;
};

/// Process-wide cache of twiddle tables, keyed by transform size.  Thread
/// safe; returned references stay valid for the process lifetime.
const TwiddleTable& twiddles_for(std::size_t n);

/// True iff n is a supported FFT size (power of two, >= 2).
constexpr bool is_pow2(std::size_t n) noexcept { return n >= 2 && (n & (n - 1)) == 0; }

/// log2 of a power of two.
constexpr std::size_t log2u(std::size_t n) noexcept {
  std::size_t l = 0;
  while ((std::size_t{1} << l) < n) ++l;
  return l;
}

/// Reverses the low `bits` bits of v.
constexpr std::size_t bit_reverse(std::size_t v, std::size_t bits) noexcept {
  std::size_t r = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    r = (r << 1) | ((v >> i) & 1u);
  }
  return r;
}

}  // namespace turbofno::fft
