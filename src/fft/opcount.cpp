#include "fft/opcount.hpp"

#include <algorithm>

#include "fft/dif_pruned.hpp"
#include "fft/twiddle.hpp"

namespace turbofno::fft {

OpCount count_pruned_ops(std::size_t n, std::size_t m, std::size_t p) noexcept {
  OpCount c{};
  if (!is_pow2(n)) return c;
  m = std::clamp<std::size_t>(m == 0 ? n : m, 1, n);
  p = std::clamp<std::size_t>(p == 0 ? n : p, 1, n);

  std::size_t depth = 0;
  for (std::size_t L = n; L >= 2; L /= 2, ++depth) {
    const std::size_t half = L / 2;
    const std::size_t nblocks = n / L;
    const std::size_t z = std::min(p, L);
    const std::size_t full_end = z > half ? z - half : 0;
    const std::size_t copy_end = std::min(z, half);

    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t need = block_need(b, depth, m);
      if (need == 0) continue;
      if (need >= 2) {
        // Full butterflies; j == 0 is twiddle-free when it falls in the full
        // region (mirrors the peeled loop in the kernel).
        if (full_end > 0) {
          c.unit_ops += 2;
          c.cadd += 2;
          for (std::size_t j = 1; j < full_end; ++j) {
            c.unit_ops += 2;
            c.cadd += 2;
            c.cmul += 1;
          }
        }
        // Zero upper input: odd output is a twiddle scale, even is a copy.
        for (std::size_t j = full_end; j < copy_end; ++j) {
          c.unit_ops += 1;
          c.cmul += 1;
        }
      } else {
        // Odd subtree pruned: sums only, and only where the upper input is
        // nonzero.
        c.unit_ops += full_end;
        c.cadd += full_end;
      }
    }
  }
  return c;
}

OpCount count_full_ops(std::size_t n) noexcept { return count_pruned_ops(n, n, n); }

double pruned_fraction(std::size_t n, std::size_t m, std::size_t p) noexcept {
  const OpCount full = count_full_ops(n);
  if (full.unit_ops == 0) return 0.0;
  return static_cast<double>(count_pruned_ops(n, m, p).unit_ops) /
         static_cast<double>(full.unit_ops);
}

}  // namespace turbofno::fft
