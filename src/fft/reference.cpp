#include "fft/reference.hpp"

#include <cmath>
#include <numbers>

namespace turbofno::fft {

namespace {

void dft_impl(std::span<const c32> in, std::span<c32> out, std::size_t n, double sign,
              bool scale) {
  const double w0 = sign * 2.0 * std::numbers::pi / static_cast<double>(n);
  const double s = scale ? 1.0 / static_cast<double>(n) : 1.0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    double re = 0.0;
    double im = 0.0;
    for (std::size_t j = 0; j < in.size(); ++j) {
      const double ang = w0 * static_cast<double>(j) * static_cast<double>(k % n);
      const double c = std::cos(ang);
      const double si = std::sin(ang);
      re += static_cast<double>(in[j].re) * c - static_cast<double>(in[j].im) * si;
      im += static_cast<double>(in[j].re) * si + static_cast<double>(in[j].im) * c;
    }
    out[k] = {static_cast<float>(re * s), static_cast<float>(im * s)};
  }
}

}  // namespace

void reference_dft(std::span<const c32> in, std::span<c32> out, std::size_t n) {
  dft_impl(in, out, n, -1.0, false);
}

void reference_idft(std::span<const c32> in, std::span<c32> out, std::size_t n, bool scale) {
  dft_impl(in, out, n, +1.0, scale);
}

}  // namespace turbofno::fft
