// Process-wide FFT plan cache.
//
// Plans are cheap but not free (op-count analysis + twiddle warm-up); model
// code that builds layers on the fly shares them here, keyed by the full
// descriptor.  Thread safe; references stay valid for the process lifetime.
#pragma once

#include "fft/plan.hpp"

namespace turbofno::fft {

/// Returns a shared plan for `desc`, constructing it on first use.
const FftPlan& cached_plan(const PlanDesc& desc);

/// Number of distinct plans currently cached (for tests/diagnostics).
std::size_t cached_plan_count() noexcept;

}  // namespace turbofno::fft
