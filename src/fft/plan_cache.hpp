// Process-wide FFT plan cache.
//
// Plans are cheap but not free (op-count analysis + twiddle warm-up); model
// code that builds layers on the fly shares them here, keyed by the full
// descriptor.  The cache is shared-concurrent: lookups of already-built
// plans take a reader lock only, so the serving layer's workers can hammer
// it from many threads without serializing, and a descriptor is constructed
// exactly once even when several threads miss on it simultaneously.
//
// By default the cache never evicts, so plan references live for the
// process lifetime.  An optional capacity (set_plan_cache_capacity) turns
// on least-recently-used eviction for long-lived servers that see many
// shapes; under a capacity, hold plans via acquire_plan() — the returned
// shared_ptr keeps a plan alive after eviction drops the cache's reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "fft/plan.hpp"
#include "fft/real.hpp"

namespace turbofno::fft {

/// Cache telemetry.  hits/misses/evictions are cumulative since process
/// start (or the last plan_cache_reset_stats); size/capacity are current.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;  // 0 = unbounded
};

/// Shared-ownership lookup, constructing the plan on first use.  Safe to
/// call concurrently; the result stays valid even if the plan is later
/// evicted.  This is what long-lived holders (pipelines, the serving
/// layer) should use.
std::shared_ptr<const FftPlan> acquire_plan(const PlanDesc& desc);

/// Real-transform flavors of acquire_plan, sharing the same cache, stats
/// and LRU machinery.  The cache key carries a transform-kind discriminant,
/// so an n-point RFFT never aliases an n-point C2C plan of equal shape.
/// `keep`/`nonzero` follow the RfftPlan/IrfftPlan conventions (0 = all
/// n/2+1 bins).
std::shared_ptr<const RfftPlan> acquire_rfft_plan(std::size_t n, std::size_t keep = 0);
std::shared_ptr<const IrfftPlan> acquire_irfft_plan(std::size_t n, std::size_t nonzero = 0);

/// Returns a shared plan for `desc`, constructing it on first use.  The
/// reference stays valid for the process lifetime: plans handed out here
/// are pinned against LRU eviction and plan_cache_clear().  Prefer
/// acquire_plan in new code (pinning trades memory for the old contract).
const FftPlan& cached_plan(const PlanDesc& desc);

/// Number of distinct plans currently cached (for tests/diagnostics).
std::size_t cached_plan_count() noexcept;

/// Snapshot of the cache counters.
PlanCacheStats plan_cache_stats() noexcept;

/// Zeroes the hit/miss/eviction counters (size is unaffected).
void plan_cache_reset_stats() noexcept;

/// Caps the cache at `max_plans` entries with LRU eviction; 0 restores the
/// unbounded default.  Shrinks immediately if over the new cap.
void set_plan_cache_capacity(std::size_t max_plans) noexcept;

/// Drops every cached plan (counted as evictions).  Plans still held via
/// acquire_plan shared_ptrs or pinned by cached_plan survive.  Primarily
/// for tests that need a cold cache.
void plan_cache_clear() noexcept;

}  // namespace turbofno::fft
