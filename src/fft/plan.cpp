#include "fft/plan.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "fft/dif_pruned.hpp"
#include "fft/opcount.hpp"
#include "fft/stockham.hpp"
#include "fft/twiddle.hpp"
#include "runtime/parallel.hpp"
#include "runtime/scratch.hpp"

namespace turbofno::fft {

FftPlan::FftPlan(PlanDesc desc) : desc_(desc) {
  if (!is_pow2(desc_.n)) throw std::invalid_argument("FftPlan: n must be a power of two >= 2");
  if (desc_.keep > desc_.n) throw std::invalid_argument("FftPlan: keep > n");
  if (desc_.nonzero > desc_.n) throw std::invalid_argument("FftPlan: nonzero > n");
  const std::size_t m = desc_.keep_or_n();
  const std::size_t p = desc_.nonzero_or_n();
  pruned_ = (m != desc_.n) || (p != desc_.n);
  const OpCount oc = count_pruned_ops(desc_.n, m, p);
  unit_ops_ = oc.unit_ops;
  flops_ = oc.flops();
  // Pre-build the twiddle table so execution never takes the cache lock on a
  // cold path inside a parallel region.
  (void)twiddles_for(desc_.n);
}

std::uint64_t FftPlan::bytes_read_per_signal() const noexcept {
  return desc_.nonzero_or_n() * sizeof(c32);
}

std::uint64_t FftPlan::bytes_written_per_signal() const noexcept {
  return desc_.keep_or_n() * sizeof(c32);
}

void FftPlan::execute_one(const c32* in, std::ptrdiff_t in_elem_stride, c32* out,
                          std::ptrdiff_t out_elem_stride, std::span<c32> work) const {
  const std::size_t n = desc_.n;
  const std::size_t m = desc_.keep_or_n();
  const std::size_t p = desc_.nonzero_or_n();
  const bool inverse = desc_.dir == Direction::Inverse;
  assert(work.size() >= 2 * n);

  c32* buf = work.data();
  // Gather the stored prefix; the tail is implicit zeros.
  if (in_elem_stride == 1) {
    std::copy_n(in, p, buf);
  } else {
    for (std::size_t j = 0; j < p; ++j) buf[j] = in[static_cast<std::ptrdiff_t>(j) * in_elem_stride];
  }
  for (std::size_t j = p; j < n; ++j) buf[j] = c32{};

  const float scale =
      (inverse && desc_.scale_inverse) ? 1.0f / static_cast<float>(n) : 1.0f;

  if (!pruned_) {
    // Dense fast path: Stockham autosort (natural-order output, no gather).
    std::span<c32> io{buf, n};
    std::span<c32> scratch{work.data() + n, n};
    if (inverse) {
      stockham_inverse(io, scratch, n, desc_.scale_inverse);
    } else {
      stockham_forward(io, scratch, n);
    }
    if (out_elem_stride == 1) {
      std::copy_n(buf, n, out);
    } else {
      for (std::size_t k = 0; k < n; ++k) out[static_cast<std::ptrdiff_t>(k) * out_elem_stride] = buf[k];
    }
    return;
  }

  dif_pruned_run({buf, n}, n, m, p, inverse);
  // Gather the m needed natural-order bins out of the bit-reversed buffer.
  const std::size_t bits = log2u(n);
  if (out_elem_stride == 1) {
    dif_gather({buf, n}, {out, m}, n, m, scale);
  } else {
    for (std::size_t k = 0; k < m; ++k) {
      out[static_cast<std::ptrdiff_t>(k) * out_elem_stride] = buf[bit_reverse(k, bits)] * scale;
    }
  }
}

void FftPlan::execute(std::span<const c32> in, std::span<c32> out, std::size_t batch) const {
  ExecLayout layout;
  layout.in_batch_stride = static_cast<std::ptrdiff_t>(desc_.nonzero_or_n());
  layout.out_batch_stride = static_cast<std::ptrdiff_t>(desc_.keep_or_n());
  if (in.size() < batch * desc_.nonzero_or_n() || out.size() < batch * desc_.keep_or_n()) {
    throw std::invalid_argument("FftPlan::execute: spans too small for batch");
  }
  if (in.data() == out.data() && desc_.keep_or_n() > desc_.nonzero_or_n()) {
    throw std::invalid_argument("FftPlan::execute: in-place requires keep <= nonzero");
  }
  execute_strided(in.data(), out.data(), batch, layout);
}

void FftPlan::execute_strided(const c32* in, c32* out, std::size_t batch,
                              const ExecLayout& layout) const {
  const std::ptrdiff_t ibs = layout.in_batch_stride != 0
                                 ? layout.in_batch_stride
                                 : static_cast<std::ptrdiff_t>(desc_.nonzero_or_n());
  const std::ptrdiff_t obs = layout.out_batch_stride != 0
                                 ? layout.out_batch_stride
                                 : static_cast<std::ptrdiff_t>(desc_.keep_or_n());
  const std::size_t n = desc_.n;

  // Grain: keep each task >= ~64k elements of butterfly work to amortize the
  // fork; a signal is n log n work so a handful of signals per chunk is fine.
  const std::size_t grain = std::max<std::size_t>(1, 65536 / (n == 0 ? 1 : n));
  runtime::parallel_for(0, batch, grain, [&](std::size_t lo, std::size_t hi) {
    auto& arena = runtime::tls_scratch();
    const auto scope = arena.scope();
    // tfno-hot-begin: arena-scoped worker body (heap allocation forbidden)
    const std::span<c32> work = arena.alloc<c32>(scratch_elems());
    for (std::size_t b = lo; b < hi; ++b) {
      execute_one(in + static_cast<std::ptrdiff_t>(b) * ibs, layout.in_elem_stride,
                  out + static_cast<std::ptrdiff_t>(b) * obs, layout.out_elem_stride,
                  work);
    }
    // tfno-hot-end
  });
}

}  // namespace turbofno::fft
