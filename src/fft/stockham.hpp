// Stockham autosort FFT kernel (radix-2, out-of-place, ping-pong buffers).
//
// This is the "fast path" for full (untruncated, unpadded) transforms: the
// autosort structure gives contiguous loads at every stage and natural-order
// output with no bit-reversal pass, the same property the paper relies on for
// coalesced global-memory reads (Section 3.2).
#pragma once

#include <cstddef>
#include <span>

#include "tensor/complex.hpp"

namespace turbofno::fft {

/// Forward n-point transform of `io` (natural order in and out).
/// `work` must hold at least n elements; contents are scratch.
/// Precondition: n is a power of two, io.size() == n, work.size() >= n.
/// Mixed radix-4/2: radix-4 passes with a radix-2 tail for odd log2(n).
void stockham_forward(std::span<c32> io, std::span<c32> work, std::size_t n);

/// Inverse n-point transform; when `scale` is true the result is divided by
/// n (matching cuFFT's convention of unscaled inverse is `scale = false`).
void stockham_inverse(std::span<c32> io, std::span<c32> work, std::size_t n, bool scale);

/// Pure radix-2 variants, kept as the verification twin of the mixed-radix
/// kernel (tests assert both agree to rounding).
void stockham_forward_radix2(std::span<c32> io, std::span<c32> work, std::size_t n);
void stockham_inverse_radix2(std::span<c32> io, std::span<c32> work, std::size_t n, bool scale);

}  // namespace turbofno::fft
