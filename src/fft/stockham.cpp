#include "fft/stockham.hpp"

#include <cassert>
#include <utility>

#include "fft/kernels.hpp"
#include "fft/twiddle.hpp"
#include "tensor/simd.hpp"

namespace turbofno::fft {

namespace {

// The pass kernels live in fft/kernels.hpp, templated on the SIMD backend;
// the library runs whichever backend it was compiled against.
using Backend = simd::Active;

template <bool Inverse, bool Radix2Only>
void stockham_run(std::span<c32> io, std::span<c32> work, std::size_t n) {
  assert(is_pow2(n));
  assert(io.size() == n && work.size() >= n);
  const TwiddleTable& tw = twiddles_for(n);

  c32* a = io.data();
  c32* b = work.data();
  std::size_t len = n;  // current sub-transform length
  std::size_t s = 1;
  while (len > 1) {
    if (!Radix2Only && len % 4 == 0) {
      const std::span<const c32> w = Inverse ? tw.inverse(len) : tw.forward(len);
      kernels::pass_radix4<Backend, Inverse>(a, b, len / 4, s, w);
      len /= 4;
      s *= 4;
    } else {
      const std::span<const c32> w = Inverse ? tw.inverse(len) : tw.forward(len);
      kernels::pass_radix2<Backend, Inverse>(a, b, len / 2, s, w);
      len /= 2;
      s *= 2;
    }
    std::swap(a, b);
  }
  if (a != io.data()) {
    for (std::size_t i = 0; i < n; ++i) io[i] = a[i];
  }
}

void scale_by(std::span<c32> io, std::size_t n) {
  const float inv = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) io[i] *= inv;
}

}  // namespace

void stockham_forward(std::span<c32> io, std::span<c32> work, std::size_t n) {
  stockham_run<false, false>(io, work, n);
}

void stockham_inverse(std::span<c32> io, std::span<c32> work, std::size_t n, bool scale) {
  stockham_run<true, false>(io, work, n);
  if (scale) scale_by(io, n);
}

void stockham_forward_radix2(std::span<c32> io, std::span<c32> work, std::size_t n) {
  stockham_run<false, true>(io, work, n);
}

void stockham_inverse_radix2(std::span<c32> io, std::span<c32> work, std::size_t n, bool scale) {
  stockham_run<true, true>(io, work, n);
  if (scale) scale_by(io, n);
}

}  // namespace turbofno::fft
