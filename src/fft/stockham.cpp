#include "fft/stockham.hpp"

#include <cassert>
#include <utility>

#include "fft/twiddle.hpp"

namespace turbofno::fft {

namespace {

// One DIF-Stockham radix-2 pass: combines pairs (p, p+l) with stride s into
// an interleaved output.  Data flows src -> dst; after all passes the result
// is in natural order.
//
// The j == 0 twiddle is 1 + 0i; the p == 0 iteration is peeled so the common
// case avoids a complex multiply.
template <bool Inverse>
void pass_radix2(const c32* src, c32* dst, std::size_t l, std::size_t s,
                 const TwiddleTable& tw) {
  const std::span<const c32> w = Inverse ? tw.inverse(2 * l) : tw.forward(2 * l);
  for (std::size_t q = 0; q < s; ++q) {
    const c32 a = src[q];
    const c32 b = src[q + s * l];
    dst[q] = a + b;
    dst[q + s] = a - b;
  }
  for (std::size_t p = 1; p < l; ++p) {
    const c32 wp = w[p];
    const c32* sa = src + s * p;
    const c32* sb = src + s * (p + l);
    c32* d0 = dst + s * 2 * p;
    c32* d1 = d0 + s;
    for (std::size_t q = 0; q < s; ++q) {
      const c32 a = sa[q];
      const c32 b = sb[q];
      d0[q] = a + b;
      d1[q] = (a - b) * wp;
    }
  }
}

// One DIF-Stockham radix-4 pass over a current sub-transform length L = 4*l:
// reads x[p + j*l] (j = 0..3, stride s), writes the four interleaved outputs
// at 4p..4p+3.  The quarter-turn factor is -i forward / +i inverse.
//
// Twiddles w1 = W(p, L), w2 = W(2p, L), w3 = W(3p, L); the table stores only
// the first half of the circle, so 2p/3p fold with W(j + L/2) = -W(j).
template <bool Inverse>
void pass_radix4(const c32* src, c32* dst, std::size_t l, std::size_t s,
                 const TwiddleTable& tw) {
  const std::size_t L = 4 * l;
  const std::span<const c32> w = Inverse ? tw.inverse(L) : tw.forward(L);
  const std::size_t half = L / 2;

  auto tw_at = [&](std::size_t j) -> c32 { return j < half ? w[j] : -w[j - half]; };

  for (std::size_t p = 0; p < l; ++p) {
    const c32 w1 = tw_at(p);
    const c32 w2 = tw_at(2 * p);
    const c32 w3 = tw_at(3 * p);
    const c32* s0 = src + s * p;
    const c32* s1 = src + s * (p + l);
    const c32* s2 = src + s * (p + 2 * l);
    const c32* s3 = src + s * (p + 3 * l);
    c32* d0 = dst + s * 4 * p;
    c32* d1 = d0 + s;
    c32* d2 = d1 + s;
    c32* d3 = d2 + s;
    if (p == 0) {
      // All twiddles are 1: pure butterfly.
      for (std::size_t q = 0; q < s; ++q) {
        const c32 a = s0[q];
        const c32 b = s1[q];
        const c32 c = s2[q];
        const c32 d = s3[q];
        const c32 t0 = a + c;
        const c32 t1 = a - c;
        const c32 t2 = b + d;
        const c32 t3 = Inverse ? mul_pos_i(b - d) : mul_neg_i(b - d);
        d0[q] = t0 + t2;
        d1[q] = t1 + t3;
        d2[q] = t0 - t2;
        d3[q] = t1 - t3;
      }
      continue;
    }
    for (std::size_t q = 0; q < s; ++q) {
      const c32 a = s0[q];
      const c32 b = s1[q];
      const c32 c = s2[q];
      const c32 d = s3[q];
      const c32 t0 = a + c;
      const c32 t1 = a - c;
      const c32 t2 = b + d;
      const c32 t3 = Inverse ? mul_pos_i(b - d) : mul_neg_i(b - d);
      d0[q] = t0 + t2;
      d1[q] = (t1 + t3) * w1;
      d2[q] = (t0 - t2) * w2;
      d3[q] = (t1 - t3) * w3;
    }
  }
}

template <bool Inverse, bool Radix2Only>
void stockham_run(std::span<c32> io, std::span<c32> work, std::size_t n) {
  assert(is_pow2(n));
  assert(io.size() == n && work.size() >= n);
  const TwiddleTable& tw = twiddles_for(n);

  c32* a = io.data();
  c32* b = work.data();
  std::size_t len = n;  // current sub-transform length
  std::size_t s = 1;
  while (len > 1) {
    if (!Radix2Only && len % 4 == 0) {
      pass_radix4<Inverse>(a, b, len / 4, s, tw);
      len /= 4;
      s *= 4;
    } else {
      pass_radix2<Inverse>(a, b, len / 2, s, tw);
      len /= 2;
      s *= 2;
    }
    std::swap(a, b);
  }
  if (a != io.data()) {
    for (std::size_t i = 0; i < n; ++i) io[i] = a[i];
  }
}

void scale_by(std::span<c32> io, std::size_t n) {
  const float inv = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) io[i] *= inv;
}

}  // namespace

void stockham_forward(std::span<c32> io, std::span<c32> work, std::size_t n) {
  stockham_run<false, false>(io, work, n);
}

void stockham_inverse(std::span<c32> io, std::span<c32> work, std::size_t n, bool scale) {
  stockham_run<true, false>(io, work, n);
  if (scale) scale_by(io, n);
}

void stockham_forward_radix2(std::span<c32> io, std::span<c32> work, std::size_t n) {
  stockham_run<false, true>(io, work, n);
}

void stockham_inverse_radix2(std::span<c32> io, std::span<c32> work, std::size_t n, bool scale) {
  stockham_run<true, true>(io, work, n);
  if (scale) scale_by(io, n);
}

}  // namespace turbofno::fft
